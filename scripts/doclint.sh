#!/bin/sh
# doclint: every package in the module must carry a package (godoc)
# comment — the block directly above its `package` clause in at least
# one non-test file. The comment is where each package states its role
# and its determinism/ordering guarantees (see docs/ARCHITECTURE.md),
# so a missing one is a CI failure, not a style nit.
#
# Dependency-free on purpose: the container bakes in only the Go
# toolchain, so the check is go list + awk instead of a linter binary.
set -eu
fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    ok=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        # A doc comment is a // or */ line immediately preceding the
        # package clause (build constraints don't qualify: gofmt keeps a
        # blank line between them and the package clause).
        if awk '
            /^package[ \t]/ { if (prev ~ /^\/\// || prev ~ /\*\/[ \t]*$/) found = 1 }
            { prev = $0 }
            END { exit found ? 0 : 1 }
        ' "$f"; then
            ok=1
            break
        fi
    done
    if [ "$ok" -eq 0 ]; then
        echo "doclint: package in $dir has no package comment" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "doclint: add a package comment stating the package's role and its determinism/ordering guarantees" >&2
fi
exit $fail
