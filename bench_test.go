// Benchmarks regenerating every table and figure of the paper's
// evaluation (§III), plus the component and ablation benches DESIGN.md §5
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment index mapping benches to paper artifacts is in
// DESIGN.md §4; measured outputs are recorded in EXPERIMENTS.md.
package anomalyx_test

import (
	"fmt"
	"sync"
	"testing"

	"anomalyx"
	"anomalyx/internal/detector"
	"anomalyx/internal/experiments"
	"anomalyx/internal/flow"
	"anomalyx/internal/flowcache"
	"anomalyx/internal/histogram"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/mining/fpgrowth"
	"anomalyx/internal/mining/multilevel"
	"anomalyx/internal/mining/topk"
	"anomalyx/internal/netflow"
	"anomalyx/internal/prefilter"
	"anomalyx/internal/stats"
	"anomalyx/internal/tracegen"
)

// Shared fixtures, built once.
var (
	tableIIOnce sync.Once
	tableIITxs  []itemset.Transaction
	tableIIData *tracegen.TableIIData

	runOnce sync.Once
	quickTR *experiments.TraceRun
)

func tableIIFixture(b *testing.B) ([]itemset.Transaction, *tracegen.TableIIData) {
	b.Helper()
	tableIIOnce.Do(func() {
		tableIIData = tracegen.TableIIScenario(20071203)
		tableIITxs = itemset.FromFlows(tableIIData.Flows)
	})
	return tableIITxs, tableIIData
}

func quickRun(b *testing.B) *experiments.TraceRun {
	b.Helper()
	runOnce.Do(func() {
		tr, err := experiments.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		quickTR = tr
	})
	return quickTR
}

// BenchmarkTableII regenerates the §II-B worked example: modified Apriori
// over the 350 872-flow input at minimum support 10 000.
func BenchmarkTableII(b *testing.B) {
	txs, data := tableIIFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := apriori.New().Mine(txs, data.MinSupport)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Maximal) == 0 {
			b.Fatal("no item-sets")
		}
	}
}

// BenchmarkTableIV regenerates the per-class detection/extraction summary
// over the quick trace (full pipeline pass cached outside the timer).
func BenchmarkTableIV(b *testing.B) {
	tr := quickRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIV(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 extracts the srcIP KL time series from a cached run.
func BenchmarkFig4(b *testing.B) {
	tr := quickRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 reruns detection to the first flood and measures the
// iterative anomalous-bin identification.
func BenchmarkFig5(b *testing.B) {
	tr := quickRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 computes per-clone ROC curves over the cached run.
func BenchmarkFig6(b *testing.B) {
	tr := quickRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 evaluates the Eq. (2) voting-miss bound grid.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.Fig7(0.97); len(res.N) != 25 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkFig8 evaluates the Eq. (3) normal-leak grid for b=1 and b=5.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(1, 1024)
		experiments.Fig8(5, 1024)
	}
}

// BenchmarkFig9Fig10Sweep runs the support sweep behind Figs. 9 and 10
// over the anomalous intervals at a single support value (the full sweep
// scales linearly in supports).
func BenchmarkFig9Fig10Sweep(b *testing.B) {
	tr := quickRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := experiments.RunSweep(tr, []int{1000})
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig9(sw)
		experiments.Fig10(sw)
	}
}

// Miner comparison (§III-E): identical workload, all three algorithms.

func benchMiner(b *testing.B, m mining.Miner) {
	txs, data := tableIIFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(txs, data.MinSupport); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinerApriori(b *testing.B)  { benchMiner(b, apriori.New()) }
func BenchmarkMinerFPGrowth(b *testing.B) { benchMiner(b, fpgrowth.New()) }
func BenchmarkMinerEclat(b *testing.B)    { benchMiner(b, eclat.New()) }

// BenchmarkMinerSlidingWindow measures streaming ingestion plus a mine of
// a 50k-transaction window.
func BenchmarkMinerSlidingWindow(b *testing.B) {
	txs, _ := tableIIFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := eclat.NewWindow(50000)
		for j := 0; j < 100000 && j < len(txs); j++ {
			w.Push(txs[j])
		}
		if _, err := w.Mine(5000); err != nil {
			b.Fatal(err)
		}
	}
}

// Prefilter ablation (§II-A): union vs intersection over the Sasser
// interval.

func benchPrefilter(b *testing.B, s prefilter.Strategy) {
	d := tracegen.SasserScenario(1, 20000)
	meta := detector.NewMetaData()
	for _, stage := range d.Meta {
		for _, fv := range stage {
			meta.Add(fv.Kind, fv.Value)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefilter.Count(s, meta, d.Flows)
	}
}

func BenchmarkPrefilterUnion(b *testing.B)        { benchPrefilter(b, prefilter.Union{}) }
func BenchmarkPrefilterIntersection(b *testing.B) { benchPrefilter(b, prefilter.Intersection{}) }

// BenchmarkExtract measures the extraction stage alone — chunked
// parallel prefilter plus mining — via ExtractOffline over a 50k-flow
// interval with an injected dstPort flood. workers=1 is the sequential
// baseline; workers=0 fans the prefilter scan out over GOMAXPROCS
// chunks (the output is byte-identical, so the sweep measures pure
// scan parallelism; run with -cpu 1,4 to contrast).
func BenchmarkExtract(b *testing.B) {
	r := stats.NewRand(13)
	recs := make([]anomalyx.Flow, 50000)
	for i := range recs {
		recs[i] = anomalyx.Flow{
			SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
		}
		if i%3 == 0 {
			recs[i].DstAddr, recs[i].DstPort = 42, 31337
			recs[i].Packets, recs[i].Bytes = 1, 40
		}
	}
	meta := anomalyx.NewMetaData()
	meta.Add(anomalyx.DstPort, 31337)
	meta.Add(anomalyx.DstIP, 42)
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := anomalyx.Config{Workers: workers}
			b.SetBytes(int64(len(recs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := anomalyx.ExtractOffline(cfg, recs, meta)
				if err != nil {
					b.Fatal(err)
				}
				if rep.SuspiciousFlows == 0 {
					b.Fatal("nothing extracted")
				}
			}
		})
	}
}

// BenchmarkEclatParallel sweeps the Eclat miner's equivalence-class
// worker pool over the Table II workload. Results are byte-identical
// across the sweep; speedup needs real cores (the dev container has
// one — CI's bench artifact is the multi-core datapoint).
func BenchmarkEclatParallel(b *testing.B) {
	txs, data := tableIIFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := eclat.New().Parallel(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Mine(txs, data.MinSupport); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Maximal-output ablation: the cost of the paper's "modified" step.
func BenchmarkFilterMaximal(b *testing.B) {
	txs, data := tableIIFixture(b)
	res, err := apriori.New().Mine(txs, data.MinSupport)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.FilterMaximal(res.All)
	}
}

// Component benches: the per-flow hot path.

func BenchmarkHistogramAdd(b *testing.B) {
	h := histogram.New(1024, hashFunc(), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i))
	}
}

func BenchmarkKL1024(b *testing.B) {
	p := make([]uint64, 1024)
	q := make([]uint64, 1024)
	r := stats.NewRand(1)
	for i := range p {
		p[i] = uint64(r.IntN(1000))
		q[i] = uint64(r.IntN(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		histogram.KL(p, q)
	}
}

// BenchmarkDetectorInterval measures one full detector interval: 10k
// flows observed plus the end-of-interval KL/threshold work.
func BenchmarkDetectorInterval(b *testing.B) {
	d, err := detector.New(detector.Config{Feature: flow.DstPort, Bins: 1024})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(2)
	recs := make([]flow.Record, 10000)
	for i := range recs {
		recs[i] = flow.Record{DstPort: uint16(r.IntN(5000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			d.Observe(&recs[j])
		}
		d.EndInterval()
	}
}

// BenchmarkPipelineInterval measures a full pipeline interval (five
// detectors, three clones) over one generated interval.
func BenchmarkPipelineInterval(b *testing.B) {
	tr := quickRun(b)
	recs := tr.Gen.Interval(3)
	p, err := newBenchPipeline()
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessInterval(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkPipelineParallel measures batched detector-bank throughput
// with the worker pool sized by GOMAXPROCS, so a -cpu sweep contrasts
// the sequential path (-cpu 1 collapses the pool to one worker) with the
// parallel fan-out over the (detector, clone) tasks:
//
//	go test -bench=PipelineParallel -cpu 1,4
func BenchmarkPipelineParallel(b *testing.B) {
	r := stats.NewRand(8)
	recs := make([]flow.Record, 20000)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
		}
	}
	p, err := anomalyx.NewPipeline(anomalyx.Config{
		Detector: anomalyx.DetectorConfig{Bins: 1024, TrainIntervals: 4},
		Workers:  0, // GOMAXPROCS at construction — tracks the -cpu sweep
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ObserveBatch(recs)
		if _, err := p.EndInterval(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// Extension benches.

// BenchmarkMinerTopK mines the 20 most frequent item-sets of the Table
// II workload without a preset support.
func BenchmarkMinerTopK(b *testing.B) {
	txs, _ := tableIIFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := topk.Mine(txs, 20, topk.Options{MinSize: 2})
		if len(res.Sets) != 20 {
			b.Fatal("short result")
		}
	}
}

// BenchmarkMultilevelMine mines the Table II workload at /32, /24 and
// /16 address generalizations.
func BenchmarkMultilevelMine(b *testing.B) {
	txs, data := tableIIFixture(b)
	m := multilevel.New(fpgrowth.New(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(txs, data.MinSupport); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV9Codec round-trips 1000 flows through the v9 wire format.
func BenchmarkV9Codec(b *testing.B) {
	tr := quickRun(b)
	recs := tr.Gen.Interval(1)
	if len(recs) > 1000 {
		recs = recs[:1000]
	}
	bootMs := tr.Gen.Config().IntervalStart(0)
	enc := netflow.NewV9Encoder(bootMs, 559)
	dec := netflow.NewV9Decoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := enc.Encode(recs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkFlowCache meters 100k packets of a synthetic mix.
func BenchmarkFlowCache(b *testing.B) {
	r := stats.NewRand(5)
	pkts := make([]flowcache.Packet, 100000)
	ts := int64(0)
	for i := range pkts {
		ts += int64(r.IntN(3))
		pkts[i] = flowcache.Packet{
			SrcAddr: uint32(r.IntN(5000)), DstAddr: uint32(r.IntN(500)),
			SrcPort: uint16(r.IntN(30000)), DstPort: uint16(r.IntN(1000)),
			Protocol: 6, Bytes: 500, TsMs: ts,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := flowcache.New(flowcache.Config{})
		for j := range pkts {
			c.Observe(pkts[j])
		}
		c.Flush()
	}
	b.SetBytes(int64(len(pkts)))
}
