// Package anomalyx is a Go implementation of the anomaly-extraction
// system of Brauckhoff, Dimitropoulos, Wagner and Salamatian, "Anomaly
// Extraction in Backbone Networks Using Association Rules" (ACM IMC 2009;
// extended in IEEE/ACM ToN 20(6), 2012).
//
// The pipeline monitors NetFlow traffic with histogram-based detectors
// (randomized histogram clones, Kullback–Leibler distance against the
// previous interval, a robust MAD threshold), consolidates alarm
// meta-data by l-of-n voting and cross-detector union, prefilters the
// suspicious flows, and summarizes them into maximal frequent item-sets
// with a modified Apriori — the item-sets an operator inspects instead of
// hundreds of thousands of raw flows.
//
// This package is the public facade: it re-exports the pipeline types so
// that applications need a single import.
//
// Every configuration of the system — workers, shards, or distributed
// agents and a collector — produces byte-identical reports for the same
// input records; see docs/ARCHITECTURE.md "The determinism contract"
// for how parallel state merges and sorted report boundaries keep that
// guarantee.
//
//	p, _ := anomalyx.NewPipeline(anomalyx.Config{})
//	for _, rec := range intervalFlows {
//		p.Observe(rec)
//	}
//	rep, _ := p.EndInterval()
//	if rep.Alarm {
//		for _, set := range rep.ItemSets {
//			fmt.Println(set.String())
//		}
//	}
package anomalyx

import (
	"runtime"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/engine"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/mining/fpgrowth"
	"anomalyx/internal/netflow"
	"anomalyx/internal/prefilter"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// Core model types.
type (
	// Flow is one unidirectional flow record (the NetFlow v5
	// abstraction: 5-tuple plus packet and byte counts).
	Flow = flow.Record
	// FeatureKind identifies one of the seven transaction features.
	FeatureKind = flow.FeatureKind
	// Item is one (feature, value) pair; ItemSet a frequent item-set.
	Item = itemset.Item
	// ItemSet is a frequent item-set with its support count.
	ItemSet = itemset.Set
	// Transaction is a flow viewed as a seven-item transaction.
	Transaction = itemset.Transaction
	// MetaData is the per-feature alarm annotation driving prefiltering.
	MetaData = detector.MetaData
)

// Pipeline types.
type (
	// Config parameterizes the extraction pipeline (Table III).
	Config = core.Config
	// DetectorConfig parameterizes one histogram-based detector.
	DetectorConfig = detector.Config
	// Pipeline is the online anomaly-extraction engine.
	Pipeline = core.Pipeline
	// Report is the per-interval outcome.
	Report = core.Report
	// MiningResult is a frequent item-set mining outcome.
	MiningResult = mining.Result
	// Miner is a frequent item-set mining algorithm.
	Miner = mining.Miner
)

// MetricKind selects the detector's distribution-change measure.
type MetricKind = detector.MetricKind

// Detector metrics: the paper's KL distance and the entropy distance of
// Table I's entropy-based detectors.
const (
	MetricKL      = detector.MetricKL
	MetricEntropy = detector.MetricEntropy
)

// The seven transaction features.
const (
	SrcIP   = flow.SrcIP
	DstIP   = flow.DstIP
	SrcPort = flow.SrcPort
	DstPort = flow.DstPort
	Proto   = flow.Proto
	Packets = flow.Packets
	Bytes   = flow.Bytes
)

// Streaming engine types.
type (
	// Engine is the channel-based streaming front end: submit flows
	// (Submit or the batched SubmitBatch, which returns how many
	// intervals the batch closed), receive one Report per measurement
	// interval, with interval sharding by flow start time and
	// bounded-buffer backpressure.
	Engine = engine.Engine
	// EngineConfig parameterizes a streaming engine; set Shards > 1 for
	// hash-partitioned multi-pipeline sharding behind the engine.
	EngineConfig = engine.Config
)

// Sharding types.
type (
	// ShardedPipeline hash-partitions flows across N independent
	// pipelines by the stable flow key and closes intervals in lockstep
	// with a deterministic cross-shard merge: reports are byte-identical
	// to an unsharded pipeline over the same records.
	ShardedPipeline = shard.ShardedPipeline
	// ShardConfig parameterizes a sharded pipeline.
	ShardConfig = shard.Config
)

// NewPipeline builds an extraction pipeline; zero-value Config fields take
// the paper's defaults (five features, k=1024, n=l=3, alpha=3, modified
// Apriori, union prefilter, minimum support 5% of the suspicious flows).
// Set Config.Workers to run the detector bank's batched ingestion and the
// extraction stage's prefilter scan on a worker pool (0 = GOMAXPROCS);
// parallel reports are byte-identical to sequential ones.
func NewPipeline(cfg Config) (*Pipeline, error) { return core.New(cfg) }

// NewEngine builds and starts a streaming engine around a pipeline
// (or, with cfg.Shards > 1, around a sharded pipeline).
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// NewShardedEngine builds and starts a streaming engine around a
// hash-partitioned ShardedPipeline of the given shard count (0 =
// GOMAXPROCS; negative counts are rejected, as everywhere in the
// sharding API). It is NewEngine with cfg.Shards set.
func NewShardedEngine(cfg EngineConfig, shards int) (*Engine, error) {
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg.Shards = shards
	return engine.New(cfg)
}

// NewShardedPipeline builds a sharded pipeline: cfg.Shards independent
// pipelines (default GOMAXPROCS) partitioned by flow key, merged
// deterministically at every EndInterval. Call Close when done to
// release the shards' worker pools.
func NewShardedPipeline(cfg ShardConfig) (*ShardedPipeline, error) { return shard.New(cfg) }

// ExtractOffline runs the extraction stage alone on a recorded interval:
// prefilter recs with meta and mine the suspicious set (the post-mortem
// alarm-investigation mode). cfg.Workers parallelizes the prefilter scan
// with output identical to the sequential one.
func ExtractOffline(cfg Config, recs []Flow, meta MetaData) (*Report, error) {
	return core.ExtractOffline(cfg, recs, meta)
}

// NewMetaData returns an empty alarm annotation for offline extraction.
func NewMetaData() MetaData { return detector.NewMetaData() }

// Apriori returns the paper's modified level-wise miner (§II-B).
func Apriori() Miner { return apriori.New() }

// FPGrowth returns the FP-tree miner; same item-sets as Apriori.
func FPGrowth() Miner { return fpgrowth.New() }

// Eclat returns the vertical tid-list miner; same item-sets as Apriori.
func Eclat() Miner { return eclat.New() }

// EclatParallel returns an Eclat miner that fans the depth-first
// tid-list search out over first-item equivalence classes on a pool of
// workers goroutines (0 = GOMAXPROCS, 1 = sequential). The mining
// result is byte-identical to the sequential Eclat on every input.
func EclatParallel(workers int) Miner { return eclat.New().Parallel(workers) }

// PrefilterUnion returns the paper's union prefilter strategy.
func PrefilterUnion() prefilter.Strategy { return prefilter.Union{} }

// PrefilterIntersection returns the intersection baseline (§II-A shows it
// can miss multistage anomalies entirely).
func PrefilterIntersection() prefilter.Strategy { return prefilter.Intersection{} }

// Distributed deployment: the wire protocol that lets shards live on
// separate machines. Agents accumulate partitions of the flow stream
// and ship each measurement interval's drained state (mergeable
// histogram clones + buffered flows) to a collector, which absorbs the
// snapshots in agent-ID order and runs detection — with reports
// byte-identical to a single process running the same partitions as
// in-process shards. Sessions survive their transports: agents buffer
// unacked intervals, redial, and resume; the collector deduplicates
// replays and can restart from a checkpoint. See docs/ARCHITECTURE.md
// for the full contract and failure model.
type (
	// WireAgent is the sending half: one logical stream to a collector
	// that survives connection loss via ack-gated replay.
	WireAgent = wire.Agent
	// WireCollector merges N agents' interval frames and owns all
	// detection state.
	WireCollector = wire.Collector
	// PipelineSnapshot is a pipeline's exported state — a lossless,
	// canonically-encoded checkpoint.
	PipelineSnapshot = core.PipelineSnapshot
	// RetryConfig parameterizes an agent's redial backoff (capped
	// exponential with seeded jitter).
	RetryConfig = wire.RetryConfig
	// CollectorConfig parameterizes a collector session: fleet size,
	// partial-interval policy, checkpoint/resume, metrics address.
	CollectorConfig = wire.CollectorConfig
	// PartialPolicy selects what the collector does with an interval
	// pending while an agent is disconnected (HoldWithTimeout or
	// CloseWithout).
	PartialPolicy = wire.PartialPolicy
	// ConfigMismatchError reports a handshake rejected over differing
	// detection-config digests; match it with errors.As.
	ConfigMismatchError = wire.ConfigMismatchError
	// WireRelay is an intermediate federation node: a collector facing
	// child agents below and an agent facing a parent collector above.
	// It merges its children's interval frames and ships the merged
	// open interval upward without ever running detection — only the
	// tree's root owns detection history and emits reports.
	WireRelay = wire.Relay
	// RelayConfig parameterizes a relay node: fan-in, position in the
	// tree, upstream address, and checkpoint/resume options.
	RelayConfig = wire.RelayConfig
)

// The partial-interval policies; see PartialPolicy.
const (
	// HoldWithTimeout holds a pending interval for a disconnected agent
	// up to CollectorConfig.HoldTimeout (0 = forever) before closing
	// without it.
	HoldWithTimeout = wire.HoldWithTimeout
	// CloseWithout closes pending intervals immediately without
	// disconnected agents, flagging Report.Partial.
	CloseWithout = wire.CloseWithout
)

// AgentConfig parameterizes the agent side of a distributed session.
type AgentConfig struct {
	// Addr is the collector's TCP address.
	Addr string
	// AgentID is this agent's ID in [0, CollectorConfig.Agents).
	AgentID int
	// Retry is the redial policy; the zero value means 8 attempts with
	// 100ms-base jittered exponential backoff capped at 10s.
	Retry RetryConfig
	// Shards is the local shard count behind the engine (0 =
	// GOMAXPROCS), as in NewShardedEngine.
	Shards int
	// ReplayBuffer bounds the unacked-frame replay buffer (0 = 64);
	// when full, interval closes block until the collector acks —
	// backpressure, never data loss.
	ReplayBuffer int
}

// AgentSession is a running distributed agent: a streaming Engine whose
// interval closes ship drained snapshots to the collector, plus the
// wire stream itself. Submit flows and read Reports exactly as with a
// local Engine (the reports are local stubs; detection happens at the
// collector). Close shuts both down in the required order.
type AgentSession struct {
	*Engine
	agent *WireAgent
}

// Agent exposes the underlying wire stream (for Acked-boundary
// inspection; closing it is Close's job).
func (s *AgentSession) Agent() *WireAgent { return s.agent }

// Close flushes and stops the engine (shipping the final partial
// interval), then closes the wire stream so the Bye frame trails the
// final snapshot. It returns the first error.
func (s *AgentSession) Close() error {
	err := s.Engine.Close()
	if cerr := s.agent.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewAgent dials the collector and starts a distributed agent session:
// a streaming engine draining a locally sharded pipeline into the wire
// stream each interval. cfg.Pipeline must match the collector's
// configuration (digest-checked in the handshake; a mismatch surfaces
// as a *ConfigMismatchError). The session survives collector outages
// per ac.Retry: unacked intervals are buffered and replayed after a
// redial.
func NewAgent(cfg EngineConfig, ac AgentConfig) (*AgentSession, error) {
	agent, err := wire.DialAgent(ac.Addr, ac.AgentID, cfg.Pipeline, wire.AgentOptions{
		Retry:        ac.Retry,
		ReplayBuffer: ac.ReplayBuffer,
	})
	if err != nil {
		return nil, err
	}
	eng, err := NewAgentEngine(cfg, agent, ac.Shards)
	if err != nil {
		agent.Close()
		return nil, err
	}
	return &AgentSession{Engine: eng, agent: agent}, nil
}

// NewCollectorWithConfig builds the collector side from a
// CollectorConfig; drive it with Serve on a TCP listener. (The name
// differs from NewAgent's pattern because the original positional
// NewCollector is kept compiling below.)
func NewCollectorWithConfig(cfg Config, cc CollectorConfig) (*WireCollector, error) {
	return wire.NewCollector(cfg, cc)
}

// NewRelay builds a federation relay node; drive it with Serve on a
// TCP listener facing its children. cfg must match the whole tree's
// detection configuration (digest-checked on every edge). A relay
// never acks a child's boundary before the boundary is either acked by
// its own parent or durably checkpointed, so no tier of the tree can
// lose or duplicate an interval.
func NewRelay(cfg Config, rc RelayConfig) (*WireRelay, error) {
	return wire.NewRelay(cfg, rc)
}

// DialCollector connects to a collector and performs the handshake for
// the given agent ID. cfg must match the collector's configuration (its
// detection parameters are digested into the handshake).
//
// Deprecated: use NewAgent, which bundles the dial, the retry/replay
// options, and the engine into one AgentSession; DialCollector is the
// default-options dial alone.
func DialCollector(addr string, agentID int, cfg Config) (*WireAgent, error) {
	return wire.Dial(addr, agentID, cfg)
}

// NewCollector builds the collector side for the given agent count;
// drive it with Serve on a TCP listener.
//
// Deprecated: use NewCollectorWithConfig, which exposes the partial-
// interval policy, checkpoint/resume, and metrics options; NewCollector
// is NewCollectorWithConfig with only the agent count set.
func NewCollector(cfg Config, agents int) (*WireCollector, error) {
	return wire.NewCollector(cfg, wire.CollectorConfig{Agents: agents})
}

// NewAgentEngine builds and starts a streaming engine whose interval
// closes drain a locally sharded pipeline (shards as in
// NewShardedEngine; 0 = GOMAXPROCS) and ship the drained snapshots
// through agent instead of running detection locally. Close the engine
// first, then the agent — the Bye frame must trail the final flushed
// interval.
//
// Deprecated: use NewAgent, which owns the dial and the close ordering
// in one AgentSession; NewAgentEngine remains for callers that manage
// the wire stream themselves.
func NewAgentEngine(cfg EngineConfig, agent *WireAgent, shards int) (*Engine, error) {
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sp, err := shard.New(shard.Config{Shards: shards, Pipeline: cfg.Pipeline})
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewWithSink(cfg, wire.NewAgentSink(agent, sp))
	if err != nil {
		// Release the shards' detector-bank worker pools: the engine was
		// never built, so nothing else will Close them.
		sp.Close()
		return nil, err
	}
	return eng, nil
}

// EncodePipelineSnapshot serializes a pipeline snapshot with the
// canonical versioned codec; DecodePipelineSnapshot is its inverse.
func EncodePipelineSnapshot(s PipelineSnapshot) []byte { return wire.EncodePipelineSnapshot(s) }

// DecodePipelineSnapshot parses an EncodePipelineSnapshot payload.
func DecodePipelineSnapshot(b []byte) (PipelineSnapshot, error) {
	return wire.DecodePipelineSnapshot(b)
}

// EncodeOpenIntervalSnapshot serializes a drained open interval in the
// lean form agents ship every interval boundary — clone histograms and
// flow buffer only. It errors on snapshots carrying detection history;
// use EncodePipelineSnapshot for full checkpoints.
func EncodeOpenIntervalSnapshot(s PipelineSnapshot) ([]byte, error) {
	return wire.EncodeOpenIntervalSnapshot(s)
}

// DecodeOpenIntervalSnapshot parses an EncodeOpenIntervalSnapshot
// payload into a full snapshot with canonical empty history.
func DecodeOpenIntervalSnapshot(b []byte) (PipelineSnapshot, error) {
	return wire.DecodeOpenIntervalSnapshot(b)
}

// ConfigDigest hashes the detection-relevant configuration — what both
// ends of a wire connection must agree on for snapshots to merge
// meaningfully.
func ConfigDigest(cfg Config) uint64 { return wire.ConfigDigest(cfg) }

// NetFlow I/O.
type (
	// FlowReader streams flow records from concatenated NetFlow v5
	// export packets.
	FlowReader = netflow.Reader
	// FlowWriter batches flow records into NetFlow v5 export packets.
	FlowWriter = netflow.Writer
	// V9Decoder parses NetFlow v9 export datagrams (template-based,
	// RFC 3954) into flow records.
	V9Decoder = netflow.V9Decoder
	// V9Encoder serializes flow records as v9 export datagrams.
	V9Encoder = netflow.V9Encoder
)

// NewV9Decoder returns a v9 decoder with an empty template cache.
var NewV9Decoder = netflow.NewV9Decoder

// NewV9Encoder returns a v9 encoder for an exporter booted at bootMs.
var NewV9Encoder = netflow.NewV9Encoder

// NewFlowReader wraps an io.Reader of concatenated v5 packets.
var NewFlowReader = netflow.NewReader

// NewFlowWriter wraps an io.Writer; bootMs is the simulated exporter boot
// time in Unix milliseconds.
var NewFlowWriter = netflow.NewWriter
