// Command tracegen writes a synthetic SWITCH-like NetFlow trace — the
// substitute for the paper's proprietary two-week capture — to a file, as
// concatenated NetFlow v5 export packets or as CSV.
//
// Usage:
//
//	tracegen -out trace.nf5 [-format netflow|csv] [-scale full|small]
//	         [-seed N] [-intervals N] [-flows N] [-start N] [-list-events]
package main

import (
	"flag"
	"fmt"
	"os"

	"anomalyx/internal/netflow"
	"anomalyx/internal/tracegen"
)

func main() {
	var (
		out        = flag.String("out", "", "output file (required unless -list-events)")
		format     = flag.String("format", "netflow", "output format: netflow (v5 packets) or csv")
		scale      = flag.String("scale", "small", "base configuration: full (two weeks) or small (two days)")
		seed       = flag.Uint64("seed", 0, "override the trace seed (0 keeps the default)")
		intervals  = flag.Int("intervals", 0, "override the number of intervals (0 keeps the default)")
		flows      = flag.Int("flows", 0, "override mean benign flows per interval (0 keeps the default)")
		start      = flag.Int("start", 0, "first interval to emit")
		count      = flag.Int("count", 0, "number of intervals to emit (0 = through the end)")
		listEvents = flag.Bool("list-events", false, "print the ground-truth schedule and exit")
	)
	flag.Parse()

	cfg := tracegen.SmallConfig()
	if *scale == "full" {
		cfg = tracegen.DefaultConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *intervals > 0 {
		cfg.Intervals = *intervals
	}
	if *flows > 0 {
		cfg.BaseFlows = *flows
	}
	if *seed != 0 || *intervals > 0 || *flows > 0 {
		cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	}
	g := tracegen.New(cfg)

	if *listEvents {
		fmt.Printf("# %d events, %d anomalous intervals\n", len(g.GroundTruth()), len(g.AnomalousIntervals()))
		for _, ev := range g.GroundTruth() {
			fmt.Printf("event %2d  intervals %4d-%4d  %-18s  ~%6d flows/interval  %s\n",
				ev.ID, ev.Start, ev.End, ev.Class, ev.Flows, ev.Name)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required (or use -list-events)")
		os.Exit(2)
	}

	end := cfg.Intervals
	if *count > 0 && *start+*count < end {
		end = *start + *count
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	total := 0
	switch *format {
	case "netflow":
		w := netflow.NewWriter(f, cfg.IntervalStart(0))
		for idx := *start; idx < end; idx++ {
			for _, rec := range g.Interval(idx) {
				if err := w.Write(rec); err != nil {
					fatal(err)
				}
				total++
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "csv":
		for idx := *start; idx < end; idx++ {
			if err := netflow.WriteCSV(f, g.Interval(idx)); err != nil {
				fatal(err)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		os.Exit(2)
	}
	fmt.Printf("wrote intervals %d-%d (%d flows) to %s\n", *start, end-1, total, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
