// Command tracegen writes a synthetic SWITCH-like NetFlow trace — the
// substitute for the paper's proprietary two-week capture — to a file, as
// concatenated NetFlow v5 export packets or as CSV.
//
// The generator is fully seeded: the same flags produce byte-identical
// trace files on every run, which is what lets every downstream
// determinism test pin its expectations.
//
// Usage:
//
//	tracegen -out trace.nf5 [-format netflow|csv] [-scale full|small]
//	         [-seed N] [-intervals N] [-flows N] [-start N] [-list-events]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anomalyx/internal/netflow"
	"anomalyx/internal/tracegen"
)

// options carries the parsed command line.
type options struct {
	out        string
	format     string
	scale      string
	seed       uint64
	intervals  int
	flows      int
	start      int
	count      int
	listEvents bool
}

// parseArgs parses the command line (without the program name) into
// options, validating flag values. It returns flag.ErrHelp for -h.
func parseArgs(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{}
	fs.StringVar(&o.out, "out", "", "output file (required unless -list-events)")
	fs.StringVar(&o.format, "format", "netflow", "output format: netflow (v5 packets) or csv")
	fs.StringVar(&o.scale, "scale", "small", "base configuration: full (two weeks) or small (two days)")
	fs.Uint64Var(&o.seed, "seed", 0, "override the trace seed (0 keeps the default)")
	fs.IntVar(&o.intervals, "intervals", 0, "override the number of intervals (0 keeps the default)")
	fs.IntVar(&o.flows, "flows", 0, "override mean benign flows per interval (0 keeps the default)")
	fs.IntVar(&o.start, "start", 0, "first interval to emit")
	fs.IntVar(&o.count, "count", 0, "number of intervals to emit (0 = through the end)")
	fs.BoolVar(&o.listEvents, "list-events", false, "print the ground-truth schedule and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("tracegen: unexpected arguments %q", fs.Args())
	}
	if o.format != "netflow" && o.format != "csv" {
		return nil, fmt.Errorf("tracegen: unknown format %q (want netflow or csv)", o.format)
	}
	if o.scale != "small" && o.scale != "full" {
		return nil, fmt.Errorf("tracegen: unknown scale %q (want small or full)", o.scale)
	}
	if o.start < 0 {
		return nil, fmt.Errorf("tracegen: -start must be >= 0")
	}
	if o.out == "" && !o.listEvents {
		return nil, fmt.Errorf("tracegen: -out is required (or use -list-events)")
	}
	return o, nil
}

// config resolves the options into the generator configuration.
func (o *options) config() tracegen.Config {
	cfg := tracegen.SmallConfig()
	if o.scale == "full" {
		cfg = tracegen.DefaultConfig()
	}
	if o.seed != 0 {
		cfg.Seed = o.seed
	}
	if o.intervals > 0 {
		cfg.Intervals = o.intervals
	}
	if o.flows > 0 {
		cfg.BaseFlows = o.flows
	}
	if o.seed != 0 || o.intervals > 0 || o.flows > 0 {
		cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	}
	return cfg
}

// listEvents prints the ground-truth schedule to w.
func listEvents(g *tracegen.Generator, w io.Writer) {
	fmt.Fprintf(w, "# %d events, %d anomalous intervals\n", len(g.GroundTruth()), len(g.AnomalousIntervals()))
	for _, ev := range g.GroundTruth() {
		fmt.Fprintf(w, "event %2d  intervals %4d-%4d  %-18s  ~%6d flows/interval  %s\n",
			ev.ID, ev.Start, ev.End, ev.Class, ev.Flows, ev.Name)
	}
}

// writeTrace emits the selected interval range to w in the selected
// format and returns the number of flow records written.
func writeTrace(o *options, g *tracegen.Generator, cfg tracegen.Config, w io.Writer) (int, error) {
	end := cfg.Intervals
	if o.count > 0 && o.start+o.count < end {
		end = o.start + o.count
	}
	total := 0
	switch o.format {
	case "netflow":
		nw := netflow.NewWriter(w, cfg.IntervalStart(0))
		for idx := o.start; idx < end; idx++ {
			for _, rec := range g.Interval(idx) {
				if err := nw.Write(rec); err != nil {
					return total, err
				}
				total++
			}
		}
		if err := nw.Flush(); err != nil {
			return total, err
		}
	case "csv":
		for idx := o.start; idx < end; idx++ {
			recs := g.Interval(idx)
			if err := netflow.WriteCSV(w, recs); err != nil {
				return total, err
			}
			total += len(recs)
		}
	}
	return total, nil
}

// run executes the parsed options, printing the summary line to stdout.
func run(o *options, stdout io.Writer) error {
	cfg := o.config()
	g := tracegen.New(cfg)
	if o.listEvents {
		listEvents(g, stdout)
		return nil
	}
	f, err := os.Create(o.out)
	if err != nil {
		return err
	}
	total, werr := writeTrace(o, g, cfg, f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	end := cfg.Intervals
	if o.count > 0 && o.start+o.count < end {
		end = o.start + o.count
	}
	fmt.Fprintf(stdout, "wrote intervals %d-%d (%d flows) to %s\n", o.start, end-1, total, o.out)
	return nil
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
