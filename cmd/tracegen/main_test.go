package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anomalyx/internal/netflow"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
		check   func(t *testing.T, o *options)
	}{
		{
			name: "defaults",
			args: []string{"-out", "x.nf5"},
			check: func(t *testing.T, o *options) {
				if o.format != "netflow" || o.scale != "small" || o.out != "x.nf5" {
					t.Fatalf("unexpected defaults: %+v", o)
				}
			},
		},
		{
			name: "overrides",
			args: []string{"-out", "x.csv", "-format", "csv", "-scale", "full", "-seed", "7", "-intervals", "5", "-flows", "100", "-start", "2", "-count", "3"},
			check: func(t *testing.T, o *options) {
				if o.format != "csv" || o.scale != "full" || o.seed != 7 || o.intervals != 5 || o.flows != 100 || o.start != 2 || o.count != 3 {
					t.Fatalf("overrides not applied: %+v", o)
				}
			},
		},
		{name: "list events without out", args: []string{"-list-events"}},
		{name: "missing out", args: nil, wantErr: "-out is required"},
		{name: "bad format", args: []string{"-out", "x", "-format", "xml"}, wantErr: "unknown format"},
		{name: "bad scale", args: []string{"-out", "x", "-scale", "huge"}, wantErr: "unknown scale"},
		{name: "negative start", args: []string{"-out", "x", "-start", "-1"}, wantErr: "-start must be >= 0"},
		{name: "positional args", args: []string{"-out", "x", "trailing"}, wantErr: "unexpected arguments"},
		{name: "unknown flag", args: []string{"-nope"}, wantErr: "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			o, err := parseArgs(c.args, &stderr)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error()+stderr.String(), c.wantErr) {
					t.Fatalf("parseArgs(%v) err = %v, want %q", c.args, err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%v): %v", c.args, err)
			}
			if c.check != nil {
				c.check(t, o)
			}
		})
	}
}

func TestParseArgsHelp(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-h"}, &stderr); err != flag.ErrHelp {
		t.Fatalf("parseArgs(-h) err = %v, want flag.ErrHelp", err)
	}
}

// TestConfigOverridesRegenerateSchedule pins that any seed/size override
// rebuilds the ground-truth schedule so it stays consistent with the
// overridden trace dimensions.
func TestConfigOverridesRegenerateSchedule(t *testing.T) {
	o, err := parseArgs([]string{"-out", "x", "-intervals", "8", "-flows", "200"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.config()
	if cfg.Intervals != 8 || cfg.BaseFlows != 200 {
		t.Fatalf("overrides not applied: intervals=%d flows=%d", cfg.Intervals, cfg.BaseFlows)
	}
	for _, ev := range cfg.Events {
		if ev.End >= cfg.Intervals {
			t.Fatalf("event %d ends at interval %d, beyond the overridden %d", ev.ID, ev.End, cfg.Intervals)
		}
	}
}

func TestRunListEvents(t *testing.T) {
	o, err := parseArgs([]string{"-list-events"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events") || !strings.Contains(out.String(), "intervals") {
		t.Fatalf("unexpected -list-events output:\n%s", out.String())
	}
}

// TestRunWritesReadableTrace writes a tiny netflow trace and reads it
// back; the same flags must stay byte-identical across runs.
func TestRunWritesReadableTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.nf5")
	args := []string{"-out", path, "-intervals", "2", "-flows", "50"}

	o, err := parseArgs(args, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote intervals 0-1") {
		t.Fatalf("unexpected summary: %s", out.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := netflow.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("written trace does not parse as NetFlow v5: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("trace has no flow records")
	}

	path2 := filepath.Join(dir, "trace2.nf5")
	o2, err := parseArgs([]string{"-out", path2, "-intervals", "2", "-flows", "50"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o2, &out); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("same flags produced different trace bytes")
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	o, err := parseArgs([]string{"-out", path, "-format", "csv", "-intervals", "2", "-flows", "50", "-count", "1"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		t.Fatal("CSV trace is empty")
	}
	if !strings.Contains(out.String(), "wrote intervals 0-0") {
		t.Fatalf("-count not honored: %s", out.String())
	}
}
