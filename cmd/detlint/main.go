// Command detlint runs the determinism-contract analyzer suite of
// internal/lint over the whole module and exits non-zero on any finding.
// It is the machine-checked form of docs/ARCHITECTURE.md "The
// determinism contract": map iteration sorted at the boundary
// (maprange), no wall clock or seedless randomness in
// determinism-critical packages (wallclock), fan-out only in the audited
// concurrency packages (goroutines), package comments that state each
// package's determinism/ordering guarantees (pkgdoc), and no stale
// //detlint:ok suppressions (staledirective). Output is deterministic:
// findings print in file/line/column order.
//
// Usage:
//
//	detlint [-json] ./...
//
// Findings print one per line as file:line:col: analyzer: message, or as
// a JSON array with -json. Exit status: 0 clean, 1 findings, 2 usage or
// load error. Dependency-free by design — stdlib go/parser + go/types
// with source-mode imports — so CI needs nothing beyond the Go
// toolchain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"anomalyx/internal/lint"
)

// options carries the parsed command line.
type options struct {
	json bool
	dir  string // directory whose module is linted (default ".")
}

// parseArgs parses the command line (without the program name) into
// options. The only accepted pattern is "./..." — detlint always checks
// the whole module, so suppressions and package policies are judged
// against the full tree. It returns flag.ErrHelp for -h.
func parseArgs(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{dir: "."}
	fs.BoolVar(&o.json, "json", false, "emit findings as a JSON array instead of file:line:col lines")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: detlint [-json] ./...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		if rest[0] != "./..." {
			return nil, fmt.Errorf("detlint: only the ./... pattern is supported (the suite judges the whole module), got %q", rest[0])
		}
	default:
		return nil, fmt.Errorf("detlint: at most one package pattern (./...) is supported")
	}
	return o, nil
}

// run loads the module containing o.dir, checks every package, and
// writes findings to stdout; it returns the process exit code.
func run(o *options, stdout, stderr io.Writer) int {
	root, err := lint.FindModuleRoot(o.dir)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, lint.Check(pkg)...)
	}
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	if o.json {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s); fix, sort at the boundary, or annotate with //detlint:ok <analyzer> -- <reason>\n", len(findings))
		return 1
	}
	return 0
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(run(o, os.Stdout, os.Stderr))
}
