package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"anomalyx/internal/lint"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		json    bool
		wantErr string
	}{
		{name: "empty", args: nil},
		{name: "pattern", args: []string{"./..."}},
		{name: "json", args: []string{"-json", "./..."}, json: true},
		{name: "bad pattern", args: []string{"./internal/lint"}, wantErr: "only the ./... pattern"},
		{name: "extra args", args: []string{"./...", "./..."}, wantErr: "at most one package pattern"},
		{name: "unknown flag", args: []string{"-nope"}, wantErr: "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			o, err := parseArgs(c.args, &stderr)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error()+stderr.String(), c.wantErr) {
					t.Fatalf("parseArgs(%v) err = %v, want %q", c.args, err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%v): %v", c.args, err)
			}
			if o.json != c.json {
				t.Fatalf("parseArgs(%v) json = %v, want %v", c.args, o.json, c.json)
			}
		})
	}
}

// TestRunCleanTree is the acceptance check in test form: the suite must
// exit 0 over the repository itself, and the -json mode must emit a
// valid (empty) findings array. Skipped under -short — the dedicated CI
// step runs the command directly.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck; covered by the CI detlint step")
	}
	var out, errb bytes.Buffer
	if code := run(&options{dir: "."}, &out, &errb); code != 0 {
		t.Fatalf("detlint over the tree exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", out.String())
	}

	out.Reset()
	if code := run(&options{dir: ".", json: true}, &out, io.Discard); code != 0 {
		t.Fatalf("json run exited %d", code)
	}
	var findings []lint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Fatalf("clean run reported %d findings", len(findings))
	}
}
