package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"anomalyx"
	"anomalyx/internal/netflow"
	"anomalyx/internal/tracegen"
)

func TestParseArgsFlagPlumbing(t *testing.T) {
	o, err := parseArgs([]string{
		"-in", "trace.nf5", "-shards", "4", "-workers", "2", "-miner", "eclat",
		"-prefilter", "intersection", "-interval", "5m", "-bins", "256",
		"-train", "3", "-minsup", "11", "-top", "7", "-pipeline-depth", "3", "-v",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.in != "trace.nf5" || o.shards != 4 || o.workers != 2 || o.miner != "eclat" ||
		o.prefilt != "intersection" || o.interval != 5*time.Minute || o.bins != 256 ||
		o.train != 3 || o.minsup != 11 || o.top != 7 || o.depth != 3 || !o.verbose {
		t.Fatalf("flags not plumbed: %+v", o)
	}
	cfg, err := o.engineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PipelineDepth != 3 {
		t.Fatalf("pipeline depth not plumbed into engine config: %+v", cfg)
	}
}

func TestParseArgsDefaultsAndErrors(t *testing.T) {
	o, err := parseArgs([]string{"-in", "x"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.shards != 1 || o.workers != 0 || o.miner != "apriori" || o.prefilt != "union" || o.depth != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if _, err := parseArgs(nil, io.Discard); err == nil {
		t.Fatal("missing -in accepted")
	}
	if _, err := parseArgs([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseArgs([]string{"-in", "x", "-pipeline-depth", "0"}, io.Discard); err == nil {
		t.Fatal("-pipeline-depth 0 accepted")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	base := func() *options {
		o, err := parseArgs([]string{"-in", "x"}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	for _, miner := range []string{"apriori", "fp-growth", "eclat"} {
		o := base()
		o.miner = miner
		if _, err := o.engineConfig(); err != nil {
			t.Fatalf("miner %q rejected: %v", miner, err)
		}
	}
	o := base()
	o.miner = "magic"
	if _, err := o.engineConfig(); err == nil {
		t.Fatal("unknown miner accepted")
	}
	o = base()
	o.prefilt = "none"
	if _, err := o.engineConfig(); err == nil {
		t.Fatal("unknown prefilter accepted")
	}
	// Workers must reach the pipeline config and pick the right eclat
	// variant (1 = sequential miner, anything else = parallel).
	for _, workers := range []int{0, 1, 4} {
		o = base()
		o.miner = "eclat"
		o.workers = workers
		cfg, err := o.engineConfig()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Pipeline.Workers != workers {
			t.Fatalf("workers=%d not plumbed into pipeline config: %+v", workers, cfg.Pipeline)
		}
		if cfg.Pipeline.Miner.Name() != "eclat" {
			t.Fatalf("miner = %q", cfg.Pipeline.Miner.Name())
		}
	}
}

// testTraceV5 renders a small seeded trace — benign background plus a
// dstPort flood in interval floodAt — as concatenated NetFlow v5 export
// packets, the CLI's input format.
func testTraceV5(t *testing.T, intervals, baseFlows, floodAt int) []byte {
	t.Helper()
	cfg := tracegen.SmallConfig()
	cfg.Intervals = intervals
	cfg.BaseFlows = baseFlows
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	var buf bytes.Buffer
	w := netflow.NewWriter(&buf, cfg.IntervalStart(0))
	for i := 0; i < intervals; i++ {
		recs := gen.Interval(i)
		if i == floodAt {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunShardsWorkersDeterminism runs the full CLI path — v5 decode,
// streaming engine, sharded or not, parallel workers or not — and
// requires byte-identical stdout for every (shards, workers)
// combination, including an alarming interval.
func TestRunShardsWorkersDeterminism(t *testing.T) {
	trace := testTraceV5(t, 8, 1500, 6)
	baseArgs := []string{
		"-in", "unused", "-interval", "15m", "-bins", "256", "-train", "4", "-v",
	}
	runWith := func(extra ...string) (string, int, int) {
		o, err := parseArgs(append(append([]string{}, baseArgs...), extra...), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		intervals, alarms, err := run(o, bytes.NewReader(trace), &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), intervals, alarms
	}

	want, wantIntervals, wantAlarms := runWith("-shards", "1", "-workers", "1")
	if wantIntervals != 8 {
		t.Fatalf("intervals = %d, want 8", wantIntervals)
	}
	if wantAlarms == 0 {
		t.Fatal("no alarm in reference run; extraction path not covered")
	}
	if !strings.Contains(want, "ALARM") {
		t.Fatal("report output missing alarm line")
	}
	for _, combo := range [][]string{
		{"-shards", "2", "-workers", "2"},
		{"-shards", "4", "-workers", "4"},
		{"-shards", "2", "-workers", "0", "-miner", "eclat"},
		{"-shards", "2", "-workers", "2", "-pipeline-depth", "3"},
	} {
		got, intervals, alarms := runWith(combo...)
		if intervals != wantIntervals || alarms != wantAlarms {
			t.Fatalf("%v: counts (%d, %d) diverged from (%d, %d)",
				combo, intervals, alarms, wantIntervals, wantAlarms)
		}
		// The eclat run mines the same item-sets by the cross-miner
		// equivalence; all runs must render byte-identical reports.
		if got != want {
			t.Fatalf("%v: output diverged\ngot:\n%s\nwant:\n%s", combo, got, want)
		}
	}
}

// TestParseArgsModes pins the per-mode flag requirements: agent mode
// needs an input, a collector address, and an ID; collector mode needs
// a listen address and an agent count; unknown modes are rejected.
func TestParseArgsModes(t *testing.T) {
	o, err := parseArgs([]string{
		"-mode", "agent", "-in", "x", "-connect", "h:1", "-agent-id", "2",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.mode != "agent" || o.connect != "h:1" || o.agentID != 2 {
		t.Fatalf("agent flags not plumbed: %+v", o)
	}
	o, err = parseArgs([]string{
		"-mode", "collector", "-listen", ":1", "-agents", "3",
		"-partial", "close", "-hold-timeout", "30s",
		"-checkpoint", "cp.axcp", "-resume", "-metrics", ":9000",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.mode != "collector" || o.listen != ":1" || o.agents != 3 {
		t.Fatalf("collector flags not plumbed: %+v", o)
	}
	if o.partial != "close" || o.holdTimeout != 30*time.Second ||
		o.checkpoint != "cp.axcp" || !o.resume || o.metricsAddr != ":9000" {
		t.Fatalf("fault-tolerance flags not plumbed: %+v", o)
	}
	// Relay mode is both halves at once: it must name its upstream like
	// an agent and its fan-in like a collector.
	o, err = parseArgs([]string{
		"-mode", "relay", "-listen", ":2", "-connect", "root:1",
		"-agent-id", "1", "-agents", "2", "-leaf-base", "6",
		"-partial", "close", "-checkpoint", "relay.axrp", "-resume",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.mode != "relay" || o.listen != ":2" || o.connect != "root:1" ||
		o.agentID != 1 || o.agents != 2 || o.leafBase != 6 {
		t.Fatalf("relay flags not plumbed: %+v", o)
	}
	if o.partial != "close" || o.checkpoint != "relay.axrp" || !o.resume {
		t.Fatalf("relay fault-tolerance flags not plumbed: %+v", o)
	}
	for _, bad := range [][]string{
		{"-mode", "agent", "-connect", "h:1", "-agent-id", "0"}, // no -in
		{"-mode", "agent", "-in", "x", "-agent-id", "0"},        // no -connect
		{"-mode", "agent", "-in", "x", "-connect", "h:1"},       // no -agent-id
		{"-mode", "collector", "-agents", "2"},                  // no -listen
		{"-mode", "collector", "-listen", ":1"},                 // no -agents
		{"-mode", "collector", "-listen", ":1", "-agents", "2",
			"-partial", "sometimes"}, // bogus partial policy
		{"-mode", "collector", "-listen", ":1", "-agents", "2", "-resume"},       // -resume without -checkpoint
		{"-mode", "relay", "-connect", "r:1", "-agent-id", "0", "-agents", "2"},  // no -listen
		{"-mode", "relay", "-listen", ":2", "-agent-id", "0", "-agents", "2"},    // no -connect
		{"-mode", "relay", "-listen", ":2", "-connect", "r:1", "-agents", "2"},   // no -agent-id
		{"-mode", "relay", "-listen", ":2", "-connect", "r:1", "-agent-id", "0"}, // no -agents
		{"-mode", "relay", "-listen", ":2", "-connect", "r:1", "-agent-id", "0",
			"-agents", "2", "-partial", "maybe"}, // bogus partial policy
		{"-mode", "relay", "-listen", ":2", "-connect", "r:1", "-agent-id", "0",
			"-agents", "2", "-resume"}, // -resume without -checkpoint
		{"-mode", "swarm", "-in", "x"}, // unknown mode
	} {
		if _, err := parseArgs(bad, io.Discard); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}

// TestDistributedModesMatchLocalRun drives the CLI's agent and
// collector paths end to end over loopback: two agents stream disjoint
// halves of a trace to a collector, whose printed reports must be
// byte-identical to a local -mode run over the whole trace.
func TestDistributedModesMatchLocalRun(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Intervals, cfg.BaseFlows = 8, 1500
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	var whole, part0, part1 bytes.Buffer
	writers := []*netflow.Writer{
		netflow.NewWriter(&whole, cfg.IntervalStart(0)),
		netflow.NewWriter(&part0, cfg.IntervalStart(0)),
		netflow.NewWriter(&part1, cfg.IntervalStart(0)),
	}
	for i := 0; i < cfg.Intervals; i++ {
		recs := gen.Interval(i)
		if i == 6 {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		for j, rec := range recs {
			if err := writers[0].Write(rec); err != nil {
				t.Fatal(err)
			}
			if err := writers[1+j%2].Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range writers {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	baseArgs := []string{"-interval", "15m", "-bins", "256", "-train", "4", "-v"}
	localOpts, err := parseArgs(append([]string{"-in", "x"}, baseArgs...), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var localOut bytes.Buffer
	wantIntervals, wantAlarms, err := run(localOpts, bytes.NewReader(whole.Bytes()), &localOut)
	if err != nil {
		t.Fatal(err)
	}
	if wantAlarms == 0 {
		t.Fatal("local reference run never alarmed")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	collOpts, err := parseArgs(append([]string{
		"-mode", "collector", "-listen", "ignored", "-agents", "2",
	}, baseArgs...), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var collOut bytes.Buffer
	type collResult struct {
		intervals, alarms int
		err               error
	}
	collDone := make(chan collResult, 1)
	go func() {
		intervals, alarms, err := serveCollector(collOpts, ln, &collOut)
		collDone <- collResult{intervals, alarms, err}
	}()

	parts := [][]byte{part0.Bytes(), part1.Bytes()}
	agentErrs := make(chan error, len(parts))
	for id := range parts {
		go func(id int) {
			o, err := parseArgs(append([]string{
				"-mode", "agent", "-in", "x", "-connect", ln.Addr().String(),
				"-agent-id", fmt.Sprint(id),
			}, baseArgs...), io.Discard)
			if err != nil {
				agentErrs <- err
				return
			}
			_, err = runAgent(o, bytes.NewReader(parts[id]), io.Discard)
			agentErrs <- err
		}(id)
	}
	for range parts {
		if err := <-agentErrs; err != nil {
			t.Fatal(err)
		}
	}
	res := <-collDone
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.intervals != wantIntervals || res.alarms != wantAlarms {
		t.Fatalf("collector counts (%d, %d) diverged from local run (%d, %d)",
			res.intervals, res.alarms, wantIntervals, wantAlarms)
	}
	if collOut.String() != localOut.String() {
		t.Fatalf("collector output diverged from local run\ngot:\n%s\nwant:\n%s",
			collOut.String(), localOut.String())
	}
}

// TestRelayModeMatchesLocalRun drives the CLI's relay path end to end:
// four agents stream quarter-traces to two relays, the relays ship the
// merged intervals to a root collector, and the root's printed reports
// must be byte-identical to a local -mode run over the whole trace.
func TestRelayModeMatchesLocalRun(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Intervals, cfg.BaseFlows = 8, 1500
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	var whole bytes.Buffer
	var parts [4]bytes.Buffer
	writers := []*netflow.Writer{netflow.NewWriter(&whole, cfg.IntervalStart(0))}
	for i := range parts {
		writers = append(writers, netflow.NewWriter(&parts[i], cfg.IntervalStart(0)))
	}
	for i := 0; i < cfg.Intervals; i++ {
		recs := gen.Interval(i)
		if i == 6 {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		for j, rec := range recs {
			if err := writers[0].Write(rec); err != nil {
				t.Fatal(err)
			}
			if err := writers[1+j%4].Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range writers {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	baseArgs := []string{"-interval", "15m", "-bins", "256", "-train", "4", "-v"}
	localOpts, err := parseArgs(append([]string{"-in", "x"}, baseArgs...), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var localOut bytes.Buffer
	wantIntervals, wantAlarms, err := run(localOpts, bytes.NewReader(whole.Bytes()), &localOut)
	if err != nil {
		t.Fatal(err)
	}
	if wantAlarms == 0 {
		t.Fatal("local reference run never alarmed")
	}

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootLn.Close()
	collOpts, err := parseArgs(append([]string{
		"-mode", "collector", "-listen", "ignored", "-agents", "2",
	}, baseArgs...), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var collOut bytes.Buffer
	type collResult struct {
		intervals, alarms int
		err               error
	}
	collDone := make(chan collResult, 1)
	go func() {
		intervals, alarms, err := serveCollector(collOpts, rootLn, &collOut)
		collDone <- collResult{intervals, alarms, err}
	}()

	relayLns := make([]net.Listener, 2)
	relayDone := make(chan error, 2)
	for r := 0; r < 2; r++ {
		relayLns[r], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		relayOpts, err := parseArgs(append([]string{
			"-mode", "relay", "-listen", "ignored", "-connect", rootLn.Addr().String(),
			"-agent-id", fmt.Sprint(r), "-agents", "2",
		}, baseArgs...), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		go func(o *options, ln net.Listener) {
			relayDone <- runRelay(o, ln)
		}(relayOpts, relayLns[r])
	}

	agentErrs := make(chan error, len(parts))
	for leaf := range parts {
		go func(leaf int) {
			o, err := parseArgs(append([]string{
				"-mode", "agent", "-in", "x",
				"-connect", relayLns[leaf/2].Addr().String(),
				"-agent-id", fmt.Sprint(leaf % 2),
			}, baseArgs...), io.Discard)
			if err != nil {
				agentErrs <- err
				return
			}
			_, err = runAgent(o, bytes.NewReader(parts[leaf].Bytes()), io.Discard)
			agentErrs <- err
		}(leaf)
	}
	for range parts {
		if err := <-agentErrs; err != nil {
			t.Fatal(err)
		}
	}
	for range relayLns {
		if err := <-relayDone; err != nil {
			t.Fatalf("relay: %v", err)
		}
	}
	res := <-collDone
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.intervals != wantIntervals || res.alarms != wantAlarms {
		t.Fatalf("root counts (%d, %d) diverged from local run (%d, %d)",
			res.intervals, res.alarms, wantIntervals, wantAlarms)
	}
	if collOut.String() != localOut.String() {
		t.Fatalf("root output diverged from local run\ngot:\n%s\nwant:\n%s",
			collOut.String(), localOut.String())
	}
}

// TestRelayModeConfigMismatchSurfaces pins the exit-3 path through a
// relay: when the relay's detection flags disagree with its upstream
// collector's, runRelay must surface a *ConfigMismatchError — the error
// fatal maps to exit code 3 — rather than a generic dial failure.
func TestRelayModeConfigMismatchSurfaces(t *testing.T) {
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootLn.Close()
	collOpts, err := parseArgs([]string{
		"-mode", "collector", "-listen", "ignored", "-agents", "1", "-bins", "512",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	collDone := make(chan error, 1)
	go func() {
		_, _, err := serveCollector(collOpts, rootLn, io.Discard)
		collDone <- err
	}()

	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relayOpts, err := parseArgs([]string{
		"-mode", "relay", "-listen", "ignored", "-connect", rootLn.Addr().String(),
		"-agent-id", "0", "-agents", "1", "-bins", "256",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	err = runRelay(relayOpts, relayLn)
	var mismatch *anomalyx.ConfigMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("runRelay returned %v, want a *ConfigMismatchError", err)
	}
	// The root is still waiting for its one agent; tear it down and let
	// the expected teardown error go.
	rootLn.Close()
	<-collDone
}

// TestRunSurfacesBadInput covers the decode-error path.
func TestRunSurfacesBadInput(t *testing.T) {
	o, err := parseArgs([]string{"-in", "x"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, _, err := run(o, strings.NewReader("not a netflow packet"), &out); err == nil {
		t.Fatal("garbage input accepted")
	}
}

// TestRunRejectsNegativeShards: invalid shard counts error out instead
// of silently running unsharded or resolving to GOMAXPROCS.
func TestRunRejectsNegativeShards(t *testing.T) {
	o, err := parseArgs([]string{"-in", "x", "-shards", "-3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, _, err := run(o, strings.NewReader(""), &out); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
