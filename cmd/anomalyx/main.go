// Command anomalyx runs the anomaly-extraction pipeline over a NetFlow v5
// trace file (as written by cmd/tracegen or any collector dumping v5
// export packets) and reports, per measurement interval, the detector
// alarms and the extracted maximal item-sets.
//
// Usage:
//
//	anomalyx -in trace.nf5 [-interval 15m] [-minsup N | -relsup 0.05]
//	         [-miner apriori|fp-growth|eclat] [-prefilter union|intersection]
//	         [-bins 1024] [-clones 3] [-votes 3] [-alpha 3] [-top 20]
//	         [-shards N] [-workers N] [-pipeline-depth N] [-v]
//
//	anomalyx -mode agent -in part0.nf5 -connect host:4711 -agent-id 0 [-shards N] ...
//	anomalyx -mode collector -listen :4711 -agents 2 ...
//	anomalyx -mode relay -listen :4712 -connect root:4711 -agent-id 0 -agents 2 ...
//
// With -shards N > 1 the engine hash-partitions flows across N
// independent pipelines and merges the per-shard state at every interval
// close; with -workers N != 1 each pipeline additionally fans its
// detector updates, prefilter scan, and (for -miner eclat) the miner's
// equivalence-class search out over N goroutines (0 = GOMAXPROCS).
// Reports are byte-identical to an unsharded single-worker run in every
// combination. With -pipeline-depth N > 1 the engine additionally
// overlaps each interval's close (detection + extraction) with the next
// interval's ingestion, keeping up to N intervals open at once; reports
// still arrive in interval order, byte-identical to -pipeline-depth 1.
//
// The agent and collector modes split that same computation across
// machines: each agent streams its own trace partition through a local
// (optionally -shards-sharded) pipeline and ships every measurement
// interval's drained histogram state and flow buffer to the collector,
// which absorbs the snapshots in agent-ID order and runs detection and
// extraction exactly as a single process would — reports stay
// byte-identical. Detection parameters (-bins, -clones, -votes, -alpha,
// -train, and the detector seed) must match between agents and
// collector; the connection handshake enforces this with a config
// digest. See docs/ARCHITECTURE.md, "Distributed deployment".
//
// Relay mode federates collectors into a tree: a relay accepts -agents
// child connections on -listen (leaves or deeper relays), merges their
// interval frames without running detection, and ships the merged
// interval to its parent at -connect as agent -agent-id. Only the
// tree's root (a plain collector) emits reports, still byte-identical
// to a flat deployment over the same leaves. See docs/ARCHITECTURE.md,
// "Federation".
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"anomalyx"
	"anomalyx/internal/mining"
)

// options carries the parsed command line.
type options struct {
	mode     string
	in       string
	connect  string
	listen   string
	agents   int
	agentID  int
	leafBase int
	interval time.Duration
	minsup   int
	relsup   float64
	miner    string
	prefilt  string
	bins     int
	clones   int
	votes    int
	alpha    float64
	train    int
	shards   int
	workers  int
	depth    int
	top      int
	verbose  bool

	// Fault-tolerance knobs (protocol v3).
	metricsAddr string
	partial     string
	holdTimeout time.Duration
	checkpoint  string
	resume      bool
	retryMax    int
	retryBase   time.Duration
}

// parseArgs parses the command line (without the program name) into
// options. It returns flag.ErrHelp for -h.
func parseArgs(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("anomalyx", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{}
	fs.StringVar(&o.mode, "mode", "run", "run (local), agent (ship intervals to a collector), collector (merge agents), or relay (merge children and ship upward)")
	fs.StringVar(&o.in, "in", "", "input NetFlow v5 trace file (required for run and agent modes)")
	fs.StringVar(&o.connect, "connect", "", "upstream collector address to ship to (agent and relay modes)")
	fs.StringVar(&o.listen, "listen", "", "address to accept child connections on (collector and relay modes)")
	fs.IntVar(&o.agents, "agents", 0, "number of child connections to accept (collector and relay modes)")
	fs.IntVar(&o.agentID, "agent-id", -1, "this node's agent ID on its upstream, in [0, upstream fan-in) (agent and relay modes)")
	fs.IntVar(&o.leafBase, "leaf-base", 0, "first global leaf ID under this relay (0 = agent-id times agents, the balanced-tree numbering) (relay mode)")
	fs.DurationVar(&o.interval, "interval", 15*time.Minute, "measurement interval length")
	fs.IntVar(&o.minsup, "minsup", 0, "absolute minimum support (0 = use -relsup)")
	fs.Float64Var(&o.relsup, "relsup", 0.05, "minimum support as a fraction of the suspicious flows")
	fs.StringVar(&o.miner, "miner", "apriori", "mining algorithm: apriori, fp-growth, or eclat")
	fs.StringVar(&o.prefilt, "prefilter", "union", "prefilter strategy: union or intersection")
	fs.IntVar(&o.bins, "bins", 1024, "histogram bins k")
	fs.IntVar(&o.clones, "clones", 3, "histogram clones n")
	fs.IntVar(&o.votes, "votes", 3, "votes l required to keep a feature value")
	fs.Float64Var(&o.alpha, "alpha", 3, "MAD threshold multiplier")
	fs.IntVar(&o.train, "train", 12, "training intervals before alarms may fire")
	fs.IntVar(&o.shards, "shards", 1, "hash-partitioned pipeline shards (0 = GOMAXPROCS)")
	fs.IntVar(&o.workers, "workers", 0, "per-pipeline worker goroutines for detector, prefilter, and eclat fan-out (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&o.depth, "pipeline-depth", 1, "measurement intervals open at once: 1 closes intervals inline, N > 1 overlaps up to N-1 interval closes with ingestion (reports stay byte-identical)")
	fs.IntVar(&o.top, "top", 20, "item-sets to print per alarm")
	fs.BoolVar(&o.verbose, "v", false, "print every interval, not only alarms")
	fs.StringVar(&o.metricsAddr, "metrics", "", "serve expvar session metrics over HTTP on this address (collector mode)")
	fs.StringVar(&o.partial, "partial", "hold", "partial-interval policy when an agent is down: hold (wait up to -hold-timeout) or close (close without it) (collector mode)")
	fs.DurationVar(&o.holdTimeout, "hold-timeout", 0, "how long -partial hold waits for a disconnected agent before closing without it (0 = forever) (collector mode)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "write a durable session checkpoint to this path after every interval (collector mode)")
	fs.BoolVar(&o.resume, "resume", false, "resume the session from -checkpoint instead of starting fresh (collector mode)")
	fs.IntVar(&o.retryMax, "retry-max", 0, "redial attempts per lost collector connection (0 = default 8, negative disables) (agent mode)")
	fs.DurationVar(&o.retryBase, "retry-base", 0, "base redial backoff delay (0 = default 100ms) (agent mode)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.depth < 1 {
		return nil, fmt.Errorf("anomalyx: -pipeline-depth must be >= 1, got %d", o.depth)
	}
	switch o.mode {
	case "run":
		if o.in == "" {
			return nil, fmt.Errorf("anomalyx: -in is required")
		}
	case "agent":
		if o.in == "" {
			return nil, fmt.Errorf("anomalyx: -in is required")
		}
		if o.connect == "" {
			return nil, fmt.Errorf("anomalyx: agent mode requires -connect")
		}
		if o.agentID < 0 {
			return nil, fmt.Errorf("anomalyx: agent mode requires -agent-id >= 0")
		}
	case "collector":
		if o.listen == "" {
			return nil, fmt.Errorf("anomalyx: collector mode requires -listen")
		}
		if o.agents < 1 {
			return nil, fmt.Errorf("anomalyx: collector mode requires -agents >= 1")
		}
		if o.partial != "hold" && o.partial != "close" {
			return nil, fmt.Errorf("anomalyx: -partial must be hold or close, got %q", o.partial)
		}
		if o.resume && o.checkpoint == "" {
			return nil, fmt.Errorf("anomalyx: -resume requires -checkpoint")
		}
	case "relay":
		if o.listen == "" {
			return nil, fmt.Errorf("anomalyx: relay mode requires -listen")
		}
		if o.connect == "" {
			return nil, fmt.Errorf("anomalyx: relay mode requires -connect")
		}
		if o.agentID < 0 {
			return nil, fmt.Errorf("anomalyx: relay mode requires -agent-id >= 0")
		}
		if o.agents < 1 {
			return nil, fmt.Errorf("anomalyx: relay mode requires -agents >= 1")
		}
		if o.partial != "hold" && o.partial != "close" {
			return nil, fmt.Errorf("anomalyx: -partial must be hold or close, got %q", o.partial)
		}
		if o.resume && o.checkpoint == "" {
			return nil, fmt.Errorf("anomalyx: -resume requires -checkpoint")
		}
	default:
		return nil, fmt.Errorf("anomalyx: unknown mode %q", o.mode)
	}
	return o, nil
}

// engineConfig resolves the options into the streaming-engine
// configuration, validating the miner and prefilter names.
func (o *options) engineConfig() (anomalyx.EngineConfig, error) {
	cfg := anomalyx.Config{
		Detector: anomalyx.DetectorConfig{
			Bins: o.bins, Clones: o.clones, Votes: o.votes,
			Alpha: o.alpha, TrainIntervals: o.train,
		},
		MinSupport:      o.minsup,
		RelativeSupport: o.relsup,
		Workers:         o.workers,
	}
	switch o.miner {
	case "apriori":
		cfg.Miner = anomalyx.Apriori()
	case "fp-growth":
		cfg.Miner = anomalyx.FPGrowth()
	case "eclat":
		// EclatParallel(1) is the sequential search, so one constructor
		// covers every worker count.
		cfg.Miner = anomalyx.EclatParallel(o.workers)
	default:
		return anomalyx.EngineConfig{}, fmt.Errorf("unknown miner %q", o.miner)
	}
	switch o.prefilt {
	case "union":
		cfg.Prefilter = anomalyx.PrefilterUnion()
	case "intersection":
		cfg.Prefilter = anomalyx.PrefilterIntersection()
	default:
		return anomalyx.EngineConfig{}, fmt.Errorf("unknown prefilter %q", o.prefilt)
	}
	return anomalyx.EngineConfig{
		Pipeline:      cfg,
		IntervalLen:   o.interval,
		PipelineDepth: o.depth,
	}, nil
}

// run streams the v5 trace from in through the engine and prints the
// per-interval reports to out; it returns the interval and alarm counts.
func run(o *options, in io.Reader, out io.Writer) (intervals, alarms int, err error) {
	engCfg, err := o.engineConfig()
	if err != nil {
		return 0, 0, err
	}
	var eng *anomalyx.Engine
	if o.shards == 1 {
		eng, err = anomalyx.NewEngine(engCfg)
	} else {
		eng, err = anomalyx.NewShardedEngine(engCfg, o.shards)
	}
	if err != nil {
		return 0, 0, err
	}

	// Consume interval reports concurrently with trace parsing; the
	// engine's bounded buffers keep the two sides in step.
	//detlint:ok goroutines -- single consumer of the engine's ordered Reports channel; joined via done before return
	done := make(chan error, 1)
	//detlint:ok goroutines -- see above: one reader, sequenced by the Reports stream (contract: fan-ins are sequenced)
	go func() {
		for rep := range eng.Reports() {
			if rep.Alarm || o.verbose {
				printReport(out, rep, intervals, o.top)
			}
			if rep.Alarm {
				alarms++
			}
			intervals++
		}
		// Reports closes early on a pipeline error; surface it now
		// rather than after the (possibly endless) input drains.
		done <- eng.Err()
	}()

	// Read in batches: SubmitBatch skips the per-record channel overhead
	// (the intervals-closed return is consumed by the report goroutine
	// via the Reports channel, so it is not needed here).
	submitErr := submitTrace(eng, in)
	// Always close the engine and join the report consumer before
	// returning: the counts it writes are only settled after done.
	closeErr := eng.Close()
	repErr := <-done
	switch {
	case submitErr != nil:
		err = submitErr
	case closeErr != nil:
		err = closeErr
	default:
		err = repErr
	}
	return intervals, alarms, err
}

// submitTrace streams the v5 trace from in into the engine in batches
// of 512 records.
func submitTrace(eng *anomalyx.Engine, in io.Reader) error {
	r := anomalyx.NewFlowReader(in)
	batch := make([]anomalyx.Flow, 0, 512)
	flush := func() error {
		_, err := eng.SubmitBatch(batch)
		batch = batch[:0]
		return err
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// runAgent streams the trace through a local pipeline that drains and
// ships every interval to the collector at o.connect; it returns the
// number of intervals shipped. No detection happens here — the stub
// per-interval reports carry only flow counts.
func runAgent(o *options, in io.Reader, out io.Writer) (intervals int, err error) {
	engCfg, err := o.engineConfig()
	if err != nil {
		return 0, err
	}
	sess, err := anomalyx.NewAgent(engCfg, anomalyx.AgentConfig{
		Addr:    o.connect,
		AgentID: o.agentID,
		Shards:  o.shards,
		Retry: anomalyx.RetryConfig{
			MaxAttempts: o.retryMax,
			BaseDelay:   o.retryBase,
		},
	})
	if err != nil {
		return 0, err
	}
	//detlint:ok goroutines -- single consumer of the engine's ordered Reports channel; joined via done before return
	done := make(chan error, 1)
	//detlint:ok goroutines -- see above: one reader, sequenced by the Reports stream (contract: fan-ins are sequenced)
	go func() {
		for rep := range sess.Reports() {
			if o.verbose {
				fmt.Fprintf(out, "interval %4d: %7d flows shipped\n", intervals, rep.TotalFlows)
			}
			intervals++
		}
		done <- sess.Err()
	}()
	submitErr := submitTrace(sess.Engine, in)
	// Session close flushes the engine, then sends Bye trailing the
	// final interval.
	closeErr := sess.Close()
	repErr := <-done
	for _, e := range []error{submitErr, closeErr, repErr} {
		if e != nil {
			return intervals, e
		}
	}
	return intervals, nil
}

// serveCollector accepts o.agents connections on ln and prints the
// merged per-interval reports, exactly as a local run would.
func serveCollector(o *options, ln net.Listener, out io.Writer) (intervals, alarms int, err error) {
	engCfg, err := o.engineConfig()
	if err != nil {
		return 0, 0, err
	}
	policy := anomalyx.HoldWithTimeout
	if o.partial == "close" {
		policy = anomalyx.CloseWithout
	}
	coll, err := anomalyx.NewCollectorWithConfig(engCfg.Pipeline, anomalyx.CollectorConfig{
		Agents:         o.agents,
		Policy:         policy,
		HoldTimeout:    o.holdTimeout,
		CheckpointPath: o.checkpoint,
		Resume:         o.resume,
		MetricsAddr:    o.metricsAddr,
	})
	if err != nil {
		return 0, 0, err
	}
	defer coll.Close()
	if o.metricsAddr != "" {
		// Also publish on the process-global expvar registry, so a
		// /debug/vars scraper pointed at -metrics sees the session under
		// a stable name.
		expvar.Publish("anomalyx.collector", coll.Metrics())
	}
	err = coll.Serve(context.Background(), ln, func(rep *anomalyx.Report) error {
		if rep.Alarm || o.verbose {
			// Number by the report's own interval index, not a session
			// counter: a collector resumed from a checkpoint continues the
			// original numbering.
			printReport(out, rep, rep.Interval, o.top)
		}
		if rep.Alarm {
			alarms++
		}
		intervals++
		return nil
	})
	return intervals, alarms, err
}

// runRelay accepts o.agents child connections on ln, merges their
// interval frames, and ships each merged interval to the parent at
// o.connect. No detection happens here and nothing is printed per
// interval — the tree's root emits the reports.
func runRelay(o *options, ln net.Listener) error {
	engCfg, err := o.engineConfig()
	if err != nil {
		return err
	}
	policy := anomalyx.HoldWithTimeout
	if o.partial == "close" {
		policy = anomalyx.CloseWithout
	}
	rel, err := anomalyx.NewRelay(engCfg.Pipeline, anomalyx.RelayConfig{
		Children:       o.agents,
		AgentID:        o.agentID,
		Parent:         o.connect,
		LeafBase:       o.leafBase,
		Policy:         policy,
		HoldTimeout:    o.holdTimeout,
		CheckpointPath: o.checkpoint,
		Resume:         o.resume,
		MetricsAddr:    o.metricsAddr,
		Retry: anomalyx.RetryConfig{
			MaxAttempts: o.retryMax,
			BaseDelay:   o.retryBase,
		},
	})
	if err != nil {
		return err
	}
	defer rel.Close()
	if o.metricsAddr != "" {
		expvar.Publish("anomalyx.relay", rel.Metrics())
	}
	return rel.Serve(context.Background(), ln)
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(0) // help was requested and printed — a success
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch o.mode {
	case "collector":
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		intervals, alarms, err := serveCollector(o, ln, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nmerged %d intervals from %d agents, %d alarms\n", intervals, o.agents, alarms)
	case "relay":
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		if err := runRelay(o, ln); err != nil {
			fatal(err)
		}
		fmt.Printf("\nrelayed %d children to %s\n", o.agents, o.connect)
	case "agent":
		f, err := os.Open(o.in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		intervals, err := runAgent(o, f, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nshipped %d intervals to %s\n", intervals, o.connect)
	default:
		f, err := os.Open(o.in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		intervals, alarms, err := run(o, f, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nprocessed %d intervals, %d alarms\n", intervals, alarms)
	}
}

func printReport(w io.Writer, rep *anomalyx.Report, idx, top int) {
	partial := ""
	if len(rep.Partial) > 0 {
		ids := make([]string, len(rep.Partial))
		for i, id := range rep.Partial {
			ids[i] = fmt.Sprint(id)
		}
		partial = "  PARTIAL(missing agents " + strings.Join(ids, ",") + ")"
	}
	if !rep.Alarm {
		fmt.Fprintf(w, "interval %4d: %7d flows, no alarm%s\n", idx, rep.TotalFlows, partial)
		return
	}
	fmt.Fprintf(w, "interval %4d: %7d flows  ALARM  suspicious=%d minsup=%d itemsets=%d (R=%.0f)%s\n",
		idx, rep.TotalFlows, rep.SuspiciousFlows, rep.MinSupport, len(rep.ItemSets), rep.CostReduction, partial)
	sets := rep.ItemSets
	if top < len(sets) {
		sets = mining.TopK(sets, top)
	}
	for i := range sets {
		fmt.Fprintf(w, "    %s\n", sets[i].String())
	}
}

// Exit codes: 1 for runtime errors, 2 for usage errors, and
// exitConfigMismatch when the agent/collector handshake rejects the
// session over differing detection configurations — scripts can
// distinguish "fix the flags" from "fix the network".
const exitConfigMismatch = 3

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anomalyx:", err)
	var mismatch *anomalyx.ConfigMismatchError
	if errors.As(err, &mismatch) {
		os.Exit(exitConfigMismatch)
	}
	os.Exit(1)
}
