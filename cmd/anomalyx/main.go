// Command anomalyx runs the anomaly-extraction pipeline over a NetFlow v5
// trace file (as written by cmd/tracegen or any collector dumping v5
// export packets) and reports, per measurement interval, the detector
// alarms and the extracted maximal item-sets.
//
// Usage:
//
//	anomalyx -in trace.nf5 [-interval 15m] [-minsup N | -relsup 0.05]
//	         [-miner apriori|fp-growth|eclat] [-prefilter union|intersection]
//	         [-bins 1024] [-clones 3] [-votes 3] [-alpha 3] [-top 20]
//	         [-shards N] [-v]
//
// With -shards N > 1 the engine hash-partitions flows across N
// independent pipelines and merges the per-shard state at every interval
// close; reports are byte-identical to an unsharded run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"anomalyx"
	"anomalyx/internal/mining"
)

func main() {
	var (
		in       = flag.String("in", "", "input NetFlow v5 trace file (required)")
		interval = flag.Duration("interval", 15*time.Minute, "measurement interval length")
		minsup   = flag.Int("minsup", 0, "absolute minimum support (0 = use -relsup)")
		relsup   = flag.Float64("relsup", 0.05, "minimum support as a fraction of the suspicious flows")
		miner    = flag.String("miner", "apriori", "mining algorithm: apriori, fp-growth, or eclat")
		prefilt  = flag.String("prefilter", "union", "prefilter strategy: union or intersection")
		bins     = flag.Int("bins", 1024, "histogram bins k")
		clones   = flag.Int("clones", 3, "histogram clones n")
		votes    = flag.Int("votes", 3, "votes l required to keep a feature value")
		alpha    = flag.Float64("alpha", 3, "MAD threshold multiplier")
		train    = flag.Int("train", 12, "training intervals before alarms may fire")
		shards   = flag.Int("shards", 1, "hash-partitioned pipeline shards (0 = GOMAXPROCS)")
		top      = flag.Int("top", 20, "item-sets to print per alarm")
		verbose  = flag.Bool("v", false, "print every interval, not only alarms")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "anomalyx: -in is required")
		os.Exit(2)
	}

	cfg := anomalyx.Config{
		Detector: anomalyx.DetectorConfig{
			Bins: *bins, Clones: *clones, Votes: *votes,
			Alpha: *alpha, TrainIntervals: *train,
		},
		MinSupport:      *minsup,
		RelativeSupport: *relsup,
	}
	switch *miner {
	case "apriori":
		cfg.Miner = anomalyx.Apriori()
	case "fp-growth":
		cfg.Miner = anomalyx.FPGrowth()
	case "eclat":
		cfg.Miner = anomalyx.Eclat()
	default:
		fmt.Fprintf(os.Stderr, "anomalyx: unknown miner %q\n", *miner)
		os.Exit(2)
	}
	switch *prefilt {
	case "union":
		cfg.Prefilter = anomalyx.PrefilterUnion()
	case "intersection":
		cfg.Prefilter = anomalyx.PrefilterIntersection()
	default:
		fmt.Fprintf(os.Stderr, "anomalyx: unknown prefilter %q\n", *prefilt)
		os.Exit(2)
	}

	engCfg := anomalyx.EngineConfig{
		Pipeline:    cfg,
		IntervalLen: *interval,
	}
	var eng *anomalyx.Engine
	var err error
	if *shards == 1 {
		eng, err = anomalyx.NewEngine(engCfg)
	} else {
		eng, err = anomalyx.NewShardedEngine(engCfg, *shards)
	}
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	// Consume interval reports concurrently with trace parsing; the
	// engine's bounded buffers keep the two sides in step.
	idx := 0
	alarms := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			if rep.Alarm || *verbose {
				printReport(rep, idx, *top)
			}
			if rep.Alarm {
				alarms++
			}
			idx++
		}
		// Reports closes early on a pipeline error; surface it now
		// rather than after the (possibly endless) input drains.
		if err := eng.Err(); err != nil {
			fatal(err)
		}
	}()

	// Read in batches: SubmitBatch skips the per-record channel overhead
	// (the intervals-closed return is consumed by the report goroutine
	// via the Reports channel, so it is not needed here).
	r := anomalyx.NewFlowReader(f)
	batch := make([]anomalyx.Flow, 0, 512)
	flush := func() {
		if _, err := eng.SubmitBatch(batch); err != nil {
			fatal(err)
		}
		batch = batch[:0]
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	if err := eng.Close(); err != nil {
		fatal(err)
	}
	<-done
	fmt.Printf("\nprocessed %d intervals, %d alarms\n", idx, alarms)
}

func printReport(rep *anomalyx.Report, idx, top int) {
	if !rep.Alarm {
		fmt.Printf("interval %4d: %7d flows, no alarm\n", idx, rep.TotalFlows)
		return
	}
	fmt.Printf("interval %4d: %7d flows  ALARM  suspicious=%d minsup=%d itemsets=%d (R=%.0f)\n",
		idx, rep.TotalFlows, rep.SuspiciousFlows, rep.MinSupport, len(rep.ItemSets), rep.CostReduction)
	sets := rep.ItemSets
	if top < len(sets) {
		sets = mining.TopK(sets, top)
	}
	for i := range sets {
		fmt.Printf("    %s\n", sets[i].String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anomalyx:", err)
	os.Exit(1)
}
