// Command experiments regenerates every table and figure of the paper's
// evaluation (§III) on the synthetic trace. Run with no arguments for the
// full set at quick scale, name specific experiments, or pass -scale full
// for the two-week evaluation (minutes of runtime).
//
// Every experiment is seeded, so regenerated tables and figures are
// reproducible; only the progress messages on stderr read the clock.
//
// Usage:
//
//	experiments [-scale quick|full] [table2 table3 table4 fig4 fig5 fig6
//	             fig7 fig8 fig9 fig10 sasser miners voting]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"anomalyx/internal/experiments"
)

var order = []string{
	"table2", "table3", "table4", "fig4", "fig5", "fig6",
	"fig7", "fig8", "fig9", "fig10", "sasser", "miners", "voting",
	"sketch", "hhh",
}

// options carries the parsed command line.
type options struct {
	scale string
	seed  uint64
	names []string // lower-cased experiment names; empty = all
}

// parseArgs parses the command line (without the program name) into
// options, validating the scale and every experiment name against the
// known set. It returns flag.ErrHelp for -h.
func parseArgs(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{}
	fs.StringVar(&o.scale, "scale", "quick", "trace scale: quick (two days) or full (two weeks)")
	fs.Uint64Var(&o.seed, "seed", 20071203, "scenario seed for table2/sasser/miners")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.scale != "quick" && o.scale != "full" {
		return nil, fmt.Errorf("experiments: unknown scale %q (want quick or full)", o.scale)
	}
	for _, name := range fs.Args() {
		name = strings.ToLower(name)
		if !slices.Contains(order, name) {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", name, strings.Join(order, " "))
		}
		o.names = append(o.names, name)
	}
	return o, nil
}

// selection expands the requested names (empty = everything) into the
// selected set and reports whether the shared trace pass and the
// support sweep are needed.
func selection(names []string) (sel map[string]bool, needsRun, needsSweep bool) {
	if len(names) == 0 {
		names = order
	}
	sel = map[string]bool{}
	for _, w := range names {
		sel[w] = true
	}
	// Experiments that need a trace run share one pass.
	for _, name := range []string{"table4", "fig4", "fig5", "fig6", "fig9", "fig10", "voting", "sketch", "hhh"} {
		if sel[name] {
			needsRun = true
		}
	}
	return sel, needsRun, sel["fig9"] || sel["fig10"]
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale := experiments.Quick
	if o.scale == "full" {
		scale = experiments.Full
	}
	sel, needsRun, needsSweep := selection(o.names)
	var tr *experiments.TraceRun
	if needsRun {
		fmt.Fprintf(os.Stderr, "running %s trace pass...\n", o.scale)
		t0 := time.Now()
		var err error
		tr, err = experiments.Run(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace pass done in %v\n\n", time.Since(t0).Round(time.Second))
	}
	var sweep *experiments.SweepResult
	if needsSweep {
		fmt.Fprintln(os.Stderr, "running support sweep over anomalous intervals...")
		var err error
		sweep, err = experiments.RunSweep(tr, nil)
		if err != nil {
			fatal(err)
		}
	}

	for _, name := range order {
		if !sel[name] {
			continue
		}
		switch name {
		case "table2":
			res, err := experiments.TableII(o.seed)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
			fmt.Println(res.Levels.String())
			fmt.Printf("maximal item-sets: %d; carrying dstPort=7000: %d (paper: 15 and 3)\n\n",
				len(res.Mining.Maximal), res.PortSevenK)
		case "table3":
			fmt.Println(experiments.TableIII(scale).String())
		case "table4":
			res, err := experiments.TableIV(tr)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
		case "fig4":
			res, err := experiments.Fig4(tr)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Figure.String())
			fmt.Printf("threshold crossings in window: %d\n\n", res.AlarmsAboveThreshold)
		case "fig5":
			res, err := experiments.Fig5(tr)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Figure.String())
			fmt.Printf("bins removed: %d, converged: %v\n\n", res.BinsRemoved, res.Converged)
		case "fig6":
			res, err := experiments.Fig6(tr)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Figure.String())
			for c, auc := range res.AUC {
				fmt.Printf("clone %d AUC: %.4f  TPR@FPR0.05: %.2f  TPR@FPR0.10: %.2f\n",
					c, auc, res.Curves[c].TPRAt(0.05), res.Curves[c].TPRAt(0.10))
			}
			fmt.Println()
		case "fig7":
			fmt.Println(experiments.Fig7(0.97).Figure.String())
		case "fig8":
			fmt.Println(experiments.Fig8(1, 1024).Figure.String())
			fmt.Println(experiments.Fig8(5, 1024).Figure.String())
		case "fig9":
			res := experiments.Fig9(sweep)
			fmt.Println(res.Figure.String())
			fmt.Printf("intervals: %d, always-zero-FP: %d (%.0f%%), extraction misses at lowest support: %d\n",
				res.Intervals, res.ZeroFPIntervals,
				100*float64(res.ZeroFPIntervals)/float64(res.Intervals), res.MissedEvents)
			fmt.Printf("zero-FP intervals per support: %v\n\n", res.ZeroFPPerSupport)
		case "fig10":
			fmt.Println(experiments.Fig10(sweep).Figure.String())
		case "sasser":
			res, err := experiments.Sasser(o.seed, 20000, 500)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
			for i := range res.UnionItemSets {
				fmt.Printf("    %s\n", res.UnionItemSets[i].String())
			}
			fmt.Println()
		case "miners":
			res, err := experiments.MinerComparison(o.seed, nil, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
		case "voting":
			res, err := experiments.VotingAblation(tr)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
		case "sketch":
			res, err := experiments.SketchVsClones(tr, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
		case "hhh":
			res, err := experiments.HHHBaseline(tr, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println(res.Report.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
