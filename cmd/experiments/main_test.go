package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
		check   func(t *testing.T, o *options)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.scale != "quick" || o.seed != 20071203 || len(o.names) != 0 {
					t.Fatalf("unexpected defaults: %+v", o)
				}
			},
		},
		{
			name: "named experiments lower-cased",
			args: []string{"-scale", "full", "-seed", "9", "Table2", "FIG9"},
			check: func(t *testing.T, o *options) {
				if o.scale != "full" || o.seed != 9 {
					t.Fatalf("flags not applied: %+v", o)
				}
				if len(o.names) != 2 || o.names[0] != "table2" || o.names[1] != "fig9" {
					t.Fatalf("names = %v, want [table2 fig9]", o.names)
				}
			},
		},
		{name: "bad scale", args: []string{"-scale", "huge"}, wantErr: "unknown scale"},
		{name: "unknown experiment", args: []string{"fig99"}, wantErr: "unknown experiment"},
		{name: "unknown flag", args: []string{"-nope"}, wantErr: "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			o, err := parseArgs(c.args, &stderr)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error()+stderr.String(), c.wantErr) {
					t.Fatalf("parseArgs(%v) err = %v, want %q", c.args, err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%v): %v", c.args, err)
			}
			if c.check != nil {
				c.check(t, o)
			}
		})
	}
}

func TestParseArgsHelp(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-h"}, &stderr); err != flag.ErrHelp {
		t.Fatalf("parseArgs(-h) err = %v, want flag.ErrHelp", err)
	}
}

func TestSelection(t *testing.T) {
	cases := []struct {
		name      string
		names     []string
		selected  []string
		needsRun  bool
		needsSwp  bool
		unselName string
	}{
		{
			name: "empty selects everything", names: nil,
			selected: order, needsRun: true, needsSwp: true,
		},
		{
			name: "table2 alone needs no trace pass", names: []string{"table2"},
			selected: []string{"table2"}, needsRun: false, needsSwp: false,
			unselName: "fig9",
		},
		{
			name: "fig4 needs the trace pass only", names: []string{"fig4"},
			selected: []string{"fig4"}, needsRun: true, needsSwp: false,
		},
		{
			name: "fig9 needs trace pass and sweep", names: []string{"fig9"},
			selected: []string{"fig9"}, needsRun: true, needsSwp: true,
		},
		{
			name: "fig10 needs trace pass and sweep", names: []string{"fig10"},
			selected: []string{"fig10"}, needsRun: true, needsSwp: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sel, needsRun, needsSweep := selection(c.names)
			for _, name := range c.selected {
				if !sel[name] {
					t.Errorf("selection(%v) dropped %q", c.names, name)
				}
			}
			if c.unselName != "" && sel[c.unselName] {
				t.Errorf("selection(%v) unexpectedly selected %q", c.names, c.unselName)
			}
			if needsRun != c.needsRun || needsSweep != c.needsSwp {
				t.Errorf("selection(%v) = run:%v sweep:%v, want run:%v sweep:%v",
					c.names, needsRun, needsSweep, c.needsRun, c.needsSwp)
			}
		})
	}
}
