// Sasser: the union-vs-intersection argument of §II-A on a multistage
// worm. The three propagation stages (port-445 scans, port-9996 backdoor
// connections, 16 kB executable downloads) have pairwise flow-disjoint
// meta-data: intersecting the meta-data selects zero flows, while the
// union covers every stage and lets Apriori summarize each one.
//
// The scenario is seeded, so the printed comparison is reproducible run
// to run.
//
// Run with: go run ./examples/sasser
package main

import (
	"fmt"
	"log"

	"anomalyx"
	"anomalyx/internal/tracegen"
)

func main() {
	d := tracegen.SasserScenario(20071203, 20000)
	fmt.Printf("interval: %d flows total; worm stages: scans=%d backdoor=%d downloads=%d\n\n",
		len(d.Flows), d.StageFlows[0], d.StageFlows[1], d.StageFlows[2])

	// The alarm meta-data a detector bank would provide: the SYN-scan
	// port, the backdoor port, and the characteristic flow size.
	meta := anomalyx.NewMetaData()
	for _, stage := range d.Meta {
		for _, fv := range stage {
			meta.Add(fv.Kind, fv.Value)
			fmt.Printf("meta-data: %s\n", fv)
		}
	}

	for _, strat := range []struct {
		name string
		cfg  anomalyx.Config
	}{
		{"union", anomalyx.Config{Prefilter: anomalyx.PrefilterUnion(), MinSupport: 400, KeepSuspicious: true}},
		{"intersection", anomalyx.Config{Prefilter: anomalyx.PrefilterIntersection(), MinSupport: 400, KeepSuspicious: true}},
	} {
		rep, err := anomalyx.ExtractOffline(strat.cfg, d.Flows, meta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s prefilter ---\n", strat.name)
		fmt.Printf("suspicious flows: %d\n", rep.SuspiciousFlows)
		if rep.SuspiciousFlows == 0 {
			fmt.Println("nothing selected: the multistage anomaly is invisible to this strategy")
			continue
		}
		fmt.Printf("maximal item-sets (minsup %d):\n", rep.MinSupport)
		for i := range rep.ItemSets {
			fmt.Println("  ", rep.ItemSets[i].String())
		}
	}
}
