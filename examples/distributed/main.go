// Distributed: cross-process shard snapshots over loopback TCP. Three
// players run concurrently in one process, standing in for three
// machines: two agents each stream their hash partition of a synthetic
// trace through a local pipeline, drain the open interval at every
// measurement-interval close, and ship the drained snapshot — merged
// histogram clones plus the buffered flows — to a collector, which
// absorbs the snapshots in agent-ID order and runs detection and
// extraction over the merged state.
//
// Because equal-seed histogram clones are exact mergeable sketches, the
// collector's reports are byte-identical to a single process running
// both partitions as in-process shards (the internal/wire tests pin
// this down); the example demonstrates it by running the same trace
// through a local sharded pipeline and diffing the rendered reports.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"anomalyx"
	"anomalyx/internal/tracegen"
)

const (
	agents    = 2
	intervals = 12
)

func main() {
	tcfg := tracegen.SmallConfig()
	tcfg.Intervals = intervals
	tcfg.BaseFlows = 6000
	tcfg.Events = tracegen.Schedule(tcfg.Intervals, tcfg.BaseFlows)
	gen := tracegen.New(tcfg)

	pcfg := anomalyx.Config{
		Detector: anomalyx.DetectorConfig{Bins: 256, TrainIntervals: 4, Seed: 7},
	}

	// Partition every interval's flows across the agents exactly as an
	// in-process sharded pipeline would, and run that sharded pipeline
	// as the single-process reference.
	ref, err := anomalyx.NewShardedPipeline(anomalyx.ShardConfig{Shards: agents, Pipeline: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	parts := make([][][]anomalyx.Flow, agents)
	for id := range parts {
		parts[id] = make([][]anomalyx.Flow, intervals)
	}
	want := make([]string, intervals)
	for i := 0; i < intervals; i++ {
		recs := gen.Interval(i)
		for j := range recs {
			id := ref.ShardOf(&recs[j])
			parts[id][i] = append(parts[id][i], recs[j])
		}
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			log.Fatal(err)
		}
		want[i] = render(rep)
	}

	// Collector: accept both agents and print each merged interval.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	coll, err := anomalyx.NewCollectorWithConfig(pcfg, anomalyx.CollectorConfig{Agents: agents})
	if err != nil {
		log.Fatal(err)
	}
	defer coll.Close()
	var got []string
	//detlint:ok goroutines -- demo stands in for three machines; the collector sequences agent snapshots in agent-ID order
	serveErr := make(chan error, 1)
	//detlint:ok goroutines -- see above: collector goroutine, joined on serveErr before the parity check
	go func() {
		serveErr <- coll.Serve(context.Background(), ln, func(rep *anomalyx.Report) error {
			got = append(got, render(rep))
			status := "no alarm"
			if rep.Alarm {
				status = fmt.Sprintf("ALARM suspicious=%d itemsets=%d", rep.SuspiciousFlows, len(rep.ItemSets))
			}
			fmt.Printf("collector: interval %2d  %6d flows  %s\n", rep.Interval, rep.TotalFlows, status)
			return nil
		})
	}()

	// Agents: one goroutine per "machine", each with its own engine.
	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		//detlint:ok goroutines -- one goroutine per simulated agent machine; reports merge collector-side in agent-ID order
		go func(id int) {
			defer wg.Done()
			sess, err := anomalyx.NewAgent(anomalyx.EngineConfig{
				Pipeline:    pcfg,
				IntervalLen: 15 * time.Minute,
			}, anomalyx.AgentConfig{
				Addr:    ln.Addr().String(),
				AgentID: id,
				Shards:  1,
			})
			if err != nil {
				log.Fatal(err)
			}
			//detlint:ok goroutines -- drains stub agent reports; carries no detection state
			go func() {
				for range sess.Reports() { // local stubs; detection is remote
				}
			}()
			for i := 0; i < intervals; i++ {
				if _, err := sess.SubmitBatch(parts[id][i]); err != nil {
					log.Fatal(err)
				}
			}
			// One Close flushes the engine and trails the Bye frame after
			// the final shipped interval.
			if err := sess.Close(); err != nil {
				log.Fatal(err)
			}
		}(id)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		log.Fatal(err)
	}

	// The punchline: distributed reports match the single-process
	// sharded run byte for byte.
	if len(got) != len(want) {
		log.Fatalf("collector closed %d intervals, reference closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("interval %d diverged between collector and single process:\n%s\nvs\n%s",
				i, got[i], want[i])
		}
	}
	fmt.Printf("\nall %d collector reports byte-identical to the single-process %d-shard run\n",
		len(got), agents)
}

// render serializes a report's deterministic fields for comparison.
func render(rep *anomalyx.Report) string {
	return fmt.Sprintf("%d|%v|%d|%d|%d|%v|%+v|%v",
		rep.Interval, rep.Alarm, rep.TotalFlows, rep.SuspiciousFlows,
		rep.MinSupport, rep.CostReduction, rep.Detection, rep.ItemSets)
}
