// Streaming: online detection over a NetFlow byte stream plus
// sliding-window mining. A generator goroutine writes NetFlow v5 packets
// into a pipe (standing in for a router's export stream); the consumer
// side parses flows as they arrive, feeds the pipeline at interval
// boundaries, and keeps a sliding-window Eclat miner with the most recent
// flows for ad-hoc "what is frequent right now" queries — the streaming
// extension of §V.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"io"
	"log"

	"anomalyx"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/tracegen"
)

func main() {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = 30
	cfg.BaseFlows = 8000
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	fmt.Printf("streaming %d intervals; ground-truth events at intervals: ", cfg.Intervals)
	for _, ev := range gen.GroundTruth() {
		fmt.Printf("%d(%s) ", ev.Start, ev.Class)
	}
	fmt.Println()

	// Producer: serialize the trace as NetFlow v5 packets into a pipe.
	pr, pw := io.Pipe()
	go func() {
		w := anomalyx.NewFlowWriter(pw, cfg.IntervalStart(0))
		for idx := 0; idx < cfg.Intervals; idx++ {
			for _, rec := range gen.Interval(idx) {
				if err := w.Write(rec); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
		}
		if err := w.Flush(); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.Close()
	}()

	// Consumer: parse flows, close pipeline intervals on time
	// boundaries, and keep a sliding window of the last 20k flows.
	p, err := anomalyx.NewPipeline(anomalyx.Config{
		Detector:        anomalyx.DetectorConfig{Bins: 512, TrainIntervals: 6},
		RelativeSupport: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	window := eclat.NewWindow(20000)

	r := anomalyx.NewFlowReader(pr)
	intervalMs := cfg.IntervalLen.Milliseconds()
	boundary := cfg.IntervalStart(0) + intervalMs
	idx := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for rec.Start >= boundary {
			report(p, window, idx)
			boundary += intervalMs
			idx++
		}
		p.Observe(rec)
		window.Push(itemset.FromFlow(&rec))
	}
	report(p, window, idx)
}

func report(p *anomalyx.Pipeline, window *eclat.Window, idx int) {
	rep, err := p.EndInterval()
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Alarm {
		fmt.Printf("interval %2d: %6d flows, quiet\n", idx, rep.TotalFlows)
		return
	}
	fmt.Printf("interval %2d: %6d flows, ALARM -> %d item-sets\n",
		idx, rep.TotalFlows, len(rep.ItemSets))
	for i := range rep.ItemSets {
		fmt.Printf("     pipeline: %s\n", rep.ItemSets[i].String())
	}
	// Ad-hoc query against the sliding window: what is frequent in the
	// most recent traffic right now, without waiting for the interval?
	res, err := window.Mine(window.Len() / 10)
	if err != nil {
		log.Fatal(err)
	}
	top := res.Maximal
	if len(top) > 3 {
		top = top[:3]
	}
	for i := range top {
		fmt.Printf("     window  : %s\n", top[i].String())
	}
}
