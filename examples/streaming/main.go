// Streaming: online detection over a NetFlow byte stream plus
// sliding-window mining. A generator goroutine writes NetFlow v5 packets
// into a pipe (standing in for a router's export stream); the consumer
// side parses flows as they arrive and submits them to the streaming
// engine, which shards the stream into measurement intervals, batches
// the detector updates, and delivers one report per interval on a
// channel. A sliding-window Eclat miner over the most recent flows
// answers ad-hoc "what is frequent right now" queries — the streaming
// extension of §V.
//
// The parsing loop submits flows in small batches with SubmitBatch,
// whose return value says how many measurement intervals the batch
// closed — the engine owns the boundary arithmetic, the consumer just
// reads that many reports. Reports are consumed before the batch's
// flows enter the window, so every window query reflects the traffic up
// to the interval being reported (within one batch of slack). The
// engine itself runs sharded: flows are hash-partitioned across two
// pipelines and merged deterministically at each interval close.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"io"
	"log"

	"anomalyx"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/tracegen"
)

func main() {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = 30
	cfg.BaseFlows = 8000
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	fmt.Printf("streaming %d intervals; ground-truth events at intervals: ", cfg.Intervals)
	for _, ev := range gen.GroundTruth() {
		fmt.Printf("%d(%s) ", ev.Start, ev.Class)
	}
	fmt.Println()

	// Producer: serialize the trace as NetFlow v5 packets into a pipe.
	pr, pw := io.Pipe()
	//detlint:ok goroutines -- trace producer writing one ordered byte stream into a pipe; the consumer preserves arrival order
	go func() {
		w := anomalyx.NewFlowWriter(pw, cfg.IntervalStart(0))
		for idx := 0; idx < cfg.Intervals; idx++ {
			for _, rec := range gen.Interval(idx) {
				if err := w.Write(rec); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
		}
		if err := w.Flush(); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.Close()
	}()

	// The engine shards the stream into intervals and reports on a
	// channel; its bounded buffers give backpressure against the parser.
	// Shards = 2: flows are hash-partitioned across two pipelines.
	eng, err := anomalyx.NewShardedEngine(anomalyx.EngineConfig{
		Pipeline: anomalyx.Config{
			Detector:        anomalyx.DetectorConfig{Bins: 512, TrainIntervals: 6},
			RelativeSupport: 0.05,
		},
		IntervalLen: cfg.IntervalLen,
	}, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Sliding window of the last 20k flows for ad-hoc queries.
	window := eclat.NewWindow(20000)

	// Consumer: parse flows off the wire and submit them in batches.
	// SubmitBatch reports how many intervals each batch closed, so the
	// lockstep consume needs no boundary arithmetic of its own.
	r := anomalyx.NewFlowReader(pr)
	batch := make([]anomalyx.Flow, 0, 256)
	idx := 0
	flush := func() {
		crossed, err := eng.SubmitBatch(batch)
		if err != nil {
			log.Fatal(err) // pipeline failed; SubmitBatch surfaces it
		}
		for i := 0; i < crossed; i++ {
			rep, ok := <-eng.Reports()
			if !ok {
				log.Fatal(eng.Err()) // pipeline failed; Reports closed early
			}
			report(rep, window, idx)
			idx++
		}
		for i := range batch {
			window.Push(itemset.FromFlow(&batch[i]))
		}
		batch = batch[:0]
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	for rep := range eng.Reports() {
		report(rep, window, idx)
		idx++
	}
}

func report(rep *anomalyx.Report, window *eclat.Window, idx int) {
	if !rep.Alarm {
		fmt.Printf("interval %2d: %6d flows, quiet\n", idx, rep.TotalFlows)
		return
	}
	fmt.Printf("interval %2d: %6d flows, ALARM -> %d item-sets\n",
		idx, rep.TotalFlows, len(rep.ItemSets))
	for i := range rep.ItemSets {
		fmt.Printf("     pipeline: %s\n", rep.ItemSets[i].String())
	}
	// Ad-hoc query against the sliding window: what is frequent in the
	// most recent traffic right now, without waiting for the interval?
	res, err := window.Mine(window.Len() / 10)
	if err != nil {
		log.Fatal(err)
	}
	top := res.Maximal
	if len(top) > 3 {
		top = top[:3]
	}
	for i := range top {
		fmt.Printf("     window  : %s\n", top[i].String())
	}
}
