// Streaming: online detection over a NetFlow byte stream plus
// sliding-window mining. A generator goroutine writes NetFlow v5 packets
// into a pipe (standing in for a router's export stream); the consumer
// side parses flows as they arrive and submits them to the streaming
// engine, which shards the stream into measurement intervals, batches
// the detector updates, and delivers one report per interval on a
// channel. A sliding-window Eclat miner over the most recent flows
// answers ad-hoc "what is frequent right now" queries — the streaming
// extension of §V.
//
// The parsing loop mirrors the engine's interval-boundary grid and
// consumes each interval's report before pushing newer flows into the
// window, so every window query reflects exactly the traffic up to the
// interval being reported.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"io"
	"log"

	"anomalyx"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/tracegen"
)

func main() {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = 30
	cfg.BaseFlows = 8000
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	fmt.Printf("streaming %d intervals; ground-truth events at intervals: ", cfg.Intervals)
	for _, ev := range gen.GroundTruth() {
		fmt.Printf("%d(%s) ", ev.Start, ev.Class)
	}
	fmt.Println()

	// Producer: serialize the trace as NetFlow v5 packets into a pipe.
	pr, pw := io.Pipe()
	go func() {
		w := anomalyx.NewFlowWriter(pw, cfg.IntervalStart(0))
		for idx := 0; idx < cfg.Intervals; idx++ {
			for _, rec := range gen.Interval(idx) {
				if err := w.Write(rec); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
		}
		if err := w.Flush(); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.Close()
	}()

	// The engine shards the stream into intervals and reports on a
	// channel; its bounded buffers give backpressure against the parser.
	eng, err := anomalyx.NewEngine(anomalyx.EngineConfig{
		Pipeline: anomalyx.Config{
			Detector:        anomalyx.DetectorConfig{Bins: 512, TrainIntervals: 6},
			RelativeSupport: 0.05,
		},
		IntervalLen: cfg.IntervalLen,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sliding window of the last 20k flows for ad-hoc queries.
	window := eclat.NewWindow(20000)

	// Consumer: parse flows off the wire and submit them to the engine,
	// tracking the same boundary grid the engine uses so each interval's
	// report is consumed while the window still holds that interval.
	r := anomalyx.NewFlowReader(pr)
	intervalMs := cfg.IntervalLen.Milliseconds()
	var boundary int64 // end of the current interval; seeded by the first flow
	idx := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if boundary == 0 {
			boundary = eng.BoundaryAfter(rec.Start) // the engine's own grid
		}
		crossed := 0
		for rec.Start >= boundary {
			crossed++
			boundary += intervalMs
		}
		eng.Submit(rec) // the engine closes `crossed` intervals on this record
		for i := 0; i < crossed; i++ {
			rep, ok := <-eng.Reports()
			if !ok {
				log.Fatal(eng.Err()) // pipeline failed; Reports closed early
			}
			report(rep, window, idx)
			idx++
		}
		window.Push(itemset.FromFlow(&rec))
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	for rep := range eng.Reports() {
		report(rep, window, idx)
		idx++
	}
}

func report(rep *anomalyx.Report, window *eclat.Window, idx int) {
	if !rep.Alarm {
		fmt.Printf("interval %2d: %6d flows, quiet\n", idx, rep.TotalFlows)
		return
	}
	fmt.Printf("interval %2d: %6d flows, ALARM -> %d item-sets\n",
		idx, rep.TotalFlows, len(rep.ItemSets))
	for i := range rep.ItemSets {
		fmt.Printf("     pipeline: %s\n", rep.ItemSets[i].String())
	}
	// Ad-hoc query against the sliding window: what is frequent in the
	// most recent traffic right now, without waiting for the interval?
	res, err := window.Mine(window.Len() / 10)
	if err != nil {
		log.Fatal(err)
	}
	top := res.Maximal
	if len(top) > 3 {
		top = top[:3]
	}
	for i := range top {
		fmt.Printf("     window  : %s\n", top[i].String())
	}
}
