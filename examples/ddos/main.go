// DDoS extraction walk-through: run the pipeline over the synthetic
// backbone trace until the first DDoS event, then show each stage of the
// extraction — the per-feature alarms, the voted meta-data, the
// prefiltering ratio, and the final item-sets — the way §II's Fig. 3
// presents the system.
//
// The trace is seeded, so the printed output is reproducible run to
// run.
//
// Run with: go run ./examples/ddos
package main

import (
	"fmt"
	"log"

	"anomalyx"
	"anomalyx/internal/experiments"
	"anomalyx/internal/tracegen"
)

func main() {
	trc := experiments.TraceConfig(experiments.Quick)
	gen := tracegen.New(trc)

	// Find the first DDoS or Flooding event in the ground truth.
	var target *tracegen.GroundTruthEvent
	for _, ev := range gen.GroundTruth() {
		ev := ev
		if ev.Class == tracegen.DDoS || ev.Class == tracegen.Flooding {
			if target == nil || ev.Start < target.Start {
				target = &ev
			}
		}
	}
	if target == nil {
		log.Fatal("no DDoS/flooding event in schedule")
	}
	fmt.Printf("ground truth: %s at interval %d (~%d flows/interval)\n\n",
		target.Name, target.Start, target.Flows)

	// Run the parallel extraction path end to end: Workers = 0 fans the
	// detector bank and the prefilter scan out over GOMAXPROCS
	// goroutines, and the parallel Eclat miner splits the search across
	// first-item equivalence classes. Reports are byte-identical to the
	// sequential defaults — all three miners produce the same item-sets,
	// and every parallel stage merges its results deterministically.
	cfg := experiments.PipelineConfig(experiments.Quick)
	cfg.Workers = 0
	cfg.Miner = anomalyx.EclatParallel(0)
	p, err := anomalyx.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	var rep *anomalyx.Report
	for idx := 0; idx <= target.Start; idx++ {
		if rep, err = p.ProcessInterval(gen.Interval(idx)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("interval %d: %d flows, alarm=%v\n", target.Start, rep.TotalFlows, rep.Alarm)
	if !rep.Alarm {
		log.Fatal("event not detected — unexpected for the default seed")
	}

	fmt.Println("\nper-feature detector outcomes:")
	for _, fres := range rep.Detection.PerFeature {
		status := "quiet"
		if fres.Alarm {
			status = "ALARM"
		}
		fmt.Printf("  %-8s %s  threshold=%.4f  voted values=%d\n",
			fres.Feature, status, fres.Threshold, len(fres.Meta))
		for c, cres := range fres.Clones {
			fmt.Printf("      clone %d: KL=%.4f diff=%+.4f alarm=%v\n",
				c, cres.KL, cres.Diff, cres.Alarm)
		}
	}

	fmt.Println("\nconsolidated meta-data (union across detectors):")
	for _, kind := range []anomalyx.FeatureKind{
		anomalyx.SrcIP, anomalyx.DstIP, anomalyx.SrcPort, anomalyx.DstPort, anomalyx.Packets,
	} {
		vals := rep.Detection.Meta.Values(kind)
		if len(vals) == 0 {
			continue
		}
		fmt.Printf("  %s: %d value(s)\n", kind, len(vals))
	}

	fmt.Printf("\nprefilter: %d of %d flows suspicious (%.1f%%)\n",
		rep.SuspiciousFlows, rep.TotalFlows,
		100*float64(rep.SuspiciousFlows)/float64(rep.TotalFlows))
	fmt.Printf("mining: minsup=%d -> %d maximal item-sets (R = %.0fx)\n\n",
		rep.MinSupport, len(rep.ItemSets), rep.CostReduction)

	for i := range rep.ItemSets {
		marker := "  "
		fvs := make([]tracegen.FeatureValue, len(rep.ItemSets[i].Items))
		for j, it := range rep.ItemSets[i].Items {
			fvs[j] = tracegen.FeatureValue{Kind: it.Kind, Value: it.Value}
		}
		if target.Matches(fvs) {
			marker = "TP" // matches the injected event's signature
		}
		fmt.Printf("%s %s\n", marker, rep.ItemSets[i].String())
	}
}
