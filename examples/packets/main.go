// Packets: feed the pipeline from packet-level input. A synthetic packet
// stream (benign web/DNS traffic plus a SYN flood) runs through the
// flow-metering cache — the same active/idle-timeout semantics a NetFlow
// router applies — and the exported flow records drive detection and
// extraction. This demonstrates the full paper data path: packets →
// flow metering → histogram detectors → item-set mining.
//
// The packet stream is seeded, so the printed output is reproducible
// run to run.
//
// Run with: go run ./examples/packets
package main

import (
	"fmt"
	"log"

	"anomalyx"
	"anomalyx/internal/flowcache"
	"anomalyx/internal/stats"
)

const intervalMs = 60 * 1000 // 1-minute intervals keep the demo short

func main() {
	meter := flowcache.New(flowcache.Config{
		IdleTimeoutMs:   5 * 1000,
		ActiveTimeoutMs: 30 * 1000,
	})
	p, err := anomalyx.NewPipeline(anomalyx.Config{
		Detector:        anomalyx.DetectorConfig{Bins: 256, TrainIntervals: 6},
		RelativeSupport: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	r := stats.NewRand(7)
	now := int64(1_700_000_000_000)
	interval := 0
	boundary := now + intervalMs

	feed := func(rec anomalyx.Flow) {
		p.Observe(rec)
	}
	closeInterval := func() {
		rep, err := p.EndInterval()
		if err != nil {
			log.Fatal(err)
		}
		status := "quiet"
		if rep.Alarm {
			status = "ALARM"
		}
		fmt.Printf("interval %2d: %5d flows metered, %s\n", interval, rep.TotalFlows, status)
		for i := range rep.ItemSets {
			fmt.Printf("    %s\n", rep.ItemSets[i].String())
		}
		interval++
	}

	// 14 minutes of packets; the flood starts at minute 12.
	for ts := now; ts < now+14*intervalMs; ts += 2 {
		var pk flowcache.Packet
		switch {
		case ts >= now+12*intervalMs && r.Bernoulli(0.45):
			// SYN flood: single-packet flows from random sources.
			pk = flowcache.Packet{
				SrcAddr: r.Uint32N(1 << 30), DstAddr: 0x0a000042,
				SrcPort: uint16(1024 + r.IntN(60000)), DstPort: 80,
				Protocol: 6, TCPFlags: 0x02, Bytes: 40, TsMs: ts,
			}
		case r.Bernoulli(0.3):
			// DNS: one-packet UDP exchanges.
			pk = flowcache.Packet{
				SrcAddr: uint32(r.IntN(4096)), DstAddr: uint32(r.IntN(8)),
				SrcPort: uint16(1024 + r.IntN(60000)), DstPort: 53,
				Protocol: 17, Bytes: 80, TsMs: ts,
			}
		default:
			// Web: a packet of some ongoing TCP flow; FIN occasionally.
			flags := uint8(0x10)
			if r.Bernoulli(0.05) {
				flags |= 0x01 // FIN terminates the flow at the meter
			}
			pk = flowcache.Packet{
				SrcAddr: uint32(r.IntN(2048)), DstAddr: uint32(r.IntN(64)),
				SrcPort: uint16(10000 + r.IntN(500)), DstPort: 443,
				Protocol: 6, TCPFlags: flags, Bytes: uint32(100 + r.IntN(1300)), TsMs: ts,
			}
		}
		for _, rec := range meter.Observe(pk) {
			for rec.End >= boundary {
				closeInterval()
				boundary += intervalMs
			}
			feed(rec)
		}
	}
	for _, rec := range meter.Flush() {
		feed(rec)
	}
	closeInterval()
	fmt.Printf("\nmeter cache residue: %d flows\n", meter.Len())
}
