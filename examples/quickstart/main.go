// Quickstart: feed two intervals of traffic through the extraction
// pipeline — a calm baseline and one containing a flood — and print the
// extracted item-sets.
//
// Traffic comes from a seeded generator, so the printed item-sets are
// reproducible run to run.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"anomalyx"
)

func main() {
	// Paper defaults: five feature detectors, k=1024 bins, n=l=3 clones,
	// 3-sigma MAD threshold, modified Apriori over the union prefilter.
	// We shorten training so the demo alarms after a few intervals.
	p, err := anomalyx.NewPipeline(anomalyx.Config{
		Detector:        anomalyx.DetectorConfig{TrainIntervals: 6},
		RelativeSupport: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	r := rand.New(rand.NewPCG(42, 43))
	benign := func() anomalyx.Flow {
		return anomalyx.Flow{
			SrcAddr: r.Uint32N(100000), DstAddr: r.Uint32N(5000),
			SrcPort: uint16(1024 + r.IntN(60000)), DstPort: uint16(r.IntN(2000)),
			Protocol: 6, Packets: uint32(1 + r.IntN(30)), Bytes: uint64(100 + r.IntN(4000)),
		}
	}

	// Several calm intervals teach the detector what "normal" looks
	// like — no model fitting, just the previous-interval KL reference
	// plus a robust estimate of its natural variation.
	for i := 0; i < 12; i++ {
		for j := 0; j < 20000; j++ {
			p.Observe(benign())
		}
		rep, err := p.EndInterval()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval %2d: %d flows, alarm=%v\n", i, rep.TotalFlows, rep.Alarm)
	}

	// Interval 12: a flood of small SYN flows from many sources toward
	// one victim host and port rides on top of the usual traffic.
	victim := anomalyx.Flow{DstAddr: 0x0a00002a, DstPort: 7000}
	for j := 0; j < 8000; j++ {
		p.Observe(anomalyx.Flow{
			SrcAddr: r.Uint32N(1 << 30), DstAddr: victim.DstAddr,
			SrcPort: uint16(1024 + r.IntN(60000)), DstPort: victim.DstPort,
			Protocol: 6, Packets: 1, Bytes: 40,
		})
	}
	for j := 0; j < 20000; j++ {
		p.Observe(benign())
	}
	rep, err := p.EndInterval()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ninterval 12: %d flows, alarm=%v\n", rep.TotalFlows, rep.Alarm)
	if !rep.Alarm {
		fmt.Println("no alarm — try a different seed")
		return
	}
	fmt.Printf("suspicious flows after prefiltering: %d (of %d)\n",
		rep.SuspiciousFlows, rep.TotalFlows)
	fmt.Printf("classification cost reduction R = %.0fx\n", rep.CostReduction)
	fmt.Println("\nextracted maximal item-sets:")
	for i := range rep.ItemSets {
		fmt.Println("  ", rep.ItemSets[i].String())
	}
}
