package flow

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestFeatureRoundTrip(t *testing.T) {
	r := Record{
		SrcAddr: 0x82380101, DstAddr: 0x08080808,
		SrcPort: 54321, DstPort: 80,
		Protocol: ProtoTCP, Packets: 12, Bytes: 3456,
	}
	want := map[FeatureKind]uint64{
		SrcIP: 0x82380101, DstIP: 0x08080808,
		SrcPort: 54321, DstPort: 80,
		Proto: 6, Packets: 12, Bytes: 3456,
	}
	for k, v := range want {
		if got := r.Feature(k); got != v {
			t.Errorf("Feature(%v) = %d, want %d", k, got, v)
		}
	}
}

func TestSetFeatureInverse(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, pkts uint32, bytes uint64) bool {
		var r Record
		r.SetFeature(SrcIP, uint64(src))
		r.SetFeature(DstIP, uint64(dst))
		r.SetFeature(SrcPort, uint64(sp))
		r.SetFeature(DstPort, uint64(dp))
		r.SetFeature(Proto, uint64(proto))
		r.SetFeature(Packets, uint64(pkts))
		r.SetFeature(Bytes, bytes)
		for _, k := range AllFeatures {
			var want uint64
			switch k {
			case SrcIP:
				want = uint64(src)
			case DstIP:
				want = uint64(dst)
			case SrcPort:
				want = uint64(sp)
			case DstPort:
				want = uint64(dp)
			case Proto:
				want = uint64(proto)
			case Packets:
				want = uint64(pkts)
			case Bytes:
				want = bytes
			}
			if r.Feature(k) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureKindString(t *testing.T) {
	names := map[FeatureKind]string{
		SrcIP: "srcIP", DstIP: "dstIP", SrcPort: "srcPort",
		DstPort: "dstPort", Proto: "proto", Packets: "packets", Bytes: "bytes",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), want)
		}
		if !k.Valid() {
			t.Errorf("Valid(%v) = false", k)
		}
	}
	if FeatureKind(99).Valid() {
		t.Error("FeatureKind(99).Valid() = true")
	}
	if FeatureKind(99).String() != "feature(99)" {
		t.Errorf("unexpected name %q", FeatureKind(99).String())
	}
}

func TestFeaturePanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Feature(invalid) did not panic")
		}
	}()
	var r Record
	r.Feature(FeatureKind(42))
}

func TestAddrConversions(t *testing.T) {
	cases := []struct {
		s string
		v uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"130.59.1.2", 0x823b0102},
		{"10.0.0.1", 0x0a000001},
	}
	for _, c := range cases {
		if got := MustParseU32(c.s); got != c.v {
			t.Errorf("MustParseU32(%q) = %#x, want %#x", c.s, got, c.v)
		}
		if got := U32ToAddr(c.v).String(); got != c.s {
			t.Errorf("U32ToAddr(%#x) = %q, want %q", c.v, got, c.s)
		}
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return AddrToU32(U32ToAddr(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrToU32PanicsOnIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddrToU32(v6) did not panic")
		}
	}()
	AddrToU32(netip.MustParseAddr("::1"))
}

func TestDuration(t *testing.T) {
	r := Record{Start: 100, End: 350}
	if r.Duration() != 250 {
		t.Errorf("Duration = %d, want 250", r.Duration())
	}
	r = Record{Start: 100, End: 50}
	if r.Duration() != 0 {
		t.Errorf("inverted Duration = %d, want 0", r.Duration())
	}
}

func TestFormatValue(t *testing.T) {
	if got := FormatValue(DstIP, uint64(MustParseU32("8.8.4.4"))); got != "8.8.4.4" {
		t.Errorf("FormatValue(DstIP) = %q", got)
	}
	if got := FormatValue(DstPort, 443); got != "443" {
		t.Errorf("FormatValue(DstPort) = %q", got)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{
		SrcAddr: MustParseU32("1.2.3.4"), DstAddr: MustParseU32("5.6.7.8"),
		SrcPort: 1000, DstPort: 80, Protocol: 6, Packets: 3, Bytes: 120,
	}
	want := "1.2.3.4:1000 -> 5.6.7.8:80 proto=6 pkts=3 bytes=120"
	if r.String() != want {
		t.Errorf("String = %q, want %q", r.String(), want)
	}
}
