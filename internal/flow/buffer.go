package flow

// Buffer is the columnar (structure-of-arrays) form of a flow-record
// batch: one slice per Record field, index-aligned, so row i of the
// buffer is the record gathered from every column at i. The extraction
// pipeline buffers each measurement interval's flows in this layout
// because all of its bulk operations are column-shaped — prefilter scans
// test one feature column at a time, the wire codec delta-packs each
// column independently, and an interval drain hands off whole columns —
// while the row form is only materialized for the handful of flows that
// survive prefiltering.
//
// Invariant: all columns have equal length (Len). Appending through the
// Buffer methods preserves it; code that assembles a Buffer by hand owns
// the invariant itself.
//
// Determinism: a Buffer is plain data with no maps or pointers shared
// across rows; every derived form (Records, Clone, the wire encoding)
// is a pure function of the column contents and their order.
type Buffer struct {
	SrcAddr  []uint32
	DstAddr  []uint32
	SrcPort  []uint16
	DstPort  []uint16
	Protocol []uint8
	TCPFlags []uint8
	Packets  []uint32
	Bytes    []uint64
	Start    []int64
	End      []int64
}

// Len returns the number of buffered rows.
func (b *Buffer) Len() int { return len(b.SrcAddr) }

// Append adds one record as a new row.
func (b *Buffer) Append(rec Record) {
	b.SrcAddr = append(b.SrcAddr, rec.SrcAddr)
	b.DstAddr = append(b.DstAddr, rec.DstAddr)
	b.SrcPort = append(b.SrcPort, rec.SrcPort)
	b.DstPort = append(b.DstPort, rec.DstPort)
	b.Protocol = append(b.Protocol, rec.Protocol)
	b.TCPFlags = append(b.TCPFlags, rec.TCPFlags)
	b.Packets = append(b.Packets, rec.Packets)
	b.Bytes = append(b.Bytes, rec.Bytes)
	b.Start = append(b.Start, rec.Start)
	b.End = append(b.End, rec.End)
}

// AppendRecords adds a batch of records as new rows, in order.
func (b *Buffer) AppendRecords(recs []Record) {
	b.Grow(len(recs))
	for i := range recs {
		b.Append(recs[i])
	}
}

// AppendBuffer adds every row of other to the end of b, in order.
// other is unchanged.
func (b *Buffer) AppendBuffer(other *Buffer) {
	b.SrcAddr = append(b.SrcAddr, other.SrcAddr...)
	b.DstAddr = append(b.DstAddr, other.DstAddr...)
	b.SrcPort = append(b.SrcPort, other.SrcPort...)
	b.DstPort = append(b.DstPort, other.DstPort...)
	b.Protocol = append(b.Protocol, other.Protocol...)
	b.TCPFlags = append(b.TCPFlags, other.TCPFlags...)
	b.Packets = append(b.Packets, other.Packets...)
	b.Bytes = append(b.Bytes, other.Bytes...)
	b.Start = append(b.Start, other.Start...)
	b.End = append(b.End, other.End...)
}

// Grow reserves capacity for n additional rows in every column.
func (b *Buffer) Grow(n int) {
	if n <= 0 {
		return
	}
	need := b.Len() + n
	if cap(b.SrcAddr) >= need {
		return
	}
	grow32 := func(col []uint32) []uint32 { return append(make([]uint32, 0, need), col...) }
	b.SrcAddr = grow32(b.SrcAddr)
	b.DstAddr = grow32(b.DstAddr)
	grow16 := func(col []uint16) []uint16 { return append(make([]uint16, 0, need), col...) }
	b.SrcPort = grow16(b.SrcPort)
	b.DstPort = grow16(b.DstPort)
	grow8 := func(col []uint8) []uint8 { return append(make([]uint8, 0, need), col...) }
	b.Protocol = grow8(b.Protocol)
	b.TCPFlags = grow8(b.TCPFlags)
	b.Packets = grow32(b.Packets)
	b.Bytes = append(make([]uint64, 0, need), b.Bytes...)
	grow64 := func(col []int64) []int64 { return append(make([]int64, 0, need), col...) }
	b.Start = grow64(b.Start)
	b.End = grow64(b.End)
}

// Reset truncates every column to zero length, retaining capacity — the
// per-interval recycle, so a steady-state pipeline stops allocating for
// its buffer once the columns reach the interval's working size.
func (b *Buffer) Reset() {
	b.SrcAddr = b.SrcAddr[:0]
	b.DstAddr = b.DstAddr[:0]
	b.SrcPort = b.SrcPort[:0]
	b.DstPort = b.DstPort[:0]
	b.Protocol = b.Protocol[:0]
	b.TCPFlags = b.TCPFlags[:0]
	b.Packets = b.Packets[:0]
	b.Bytes = b.Bytes[:0]
	b.Start = b.Start[:0]
	b.End = b.End[:0]
}

// Record gathers row i into the row form.
func (b *Buffer) Record(i int) Record {
	return Record{
		SrcAddr:  b.SrcAddr[i],
		DstAddr:  b.DstAddr[i],
		SrcPort:  b.SrcPort[i],
		DstPort:  b.DstPort[i],
		Protocol: b.Protocol[i],
		TCPFlags: b.TCPFlags[i],
		Packets:  b.Packets[i],
		Bytes:    b.Bytes[i],
		Start:    b.Start[i],
		End:      b.End[i],
	}
}

// Feature returns the value of feature k at row i, widened to uint64 —
// the columnar counterpart of Record.Feature.
func (b *Buffer) Feature(i int, k FeatureKind) uint64 {
	switch k {
	case SrcIP:
		return uint64(b.SrcAddr[i])
	case DstIP:
		return uint64(b.DstAddr[i])
	case SrcPort:
		return uint64(b.SrcPort[i])
	case DstPort:
		return uint64(b.DstPort[i])
	case Proto:
		return uint64(b.Protocol[i])
	case Packets:
		return uint64(b.Packets[i])
	case Bytes:
		return b.Bytes[i]
	default:
		panic("flow: invalid feature kind")
	}
}

// Records materializes the whole buffer in row form, preserving order.
// An empty buffer returns nil, matching the append-to-nil shape the
// sequential collection paths produce.
func (b *Buffer) Records() []Record {
	if b.Len() == 0 {
		return nil
	}
	out := make([]Record, b.Len())
	for i := range out {
		out[i] = b.Record(i)
	}
	return out
}

// Clone returns a deep copy sharing no memory with b. The zero-row case
// clones to the zero-value Buffer (nil columns), so clones of equal
// buffers are deeply equal regardless of retained capacity.
func (b *Buffer) Clone() Buffer {
	if b.Len() == 0 {
		return Buffer{}
	}
	var out Buffer
	out.AppendBuffer(b)
	return out
}

// BufferOf builds a Buffer holding recs, in order — the row→column
// transpose, used by tests and by callers bridging row-form batches into
// columnar APIs.
func BufferOf(recs []Record) Buffer {
	var b Buffer
	b.AppendRecords(recs)
	return b
}
