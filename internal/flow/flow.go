// Package flow defines the flow-record model used throughout the anomaly
// extraction pipeline.
//
// A flow record mirrors the unidirectional NetFlow v5 abstraction the paper
// works with: the 5-tuple (source IP, destination IP, source port,
// destination port, IP protocol) plus the number of packets and bytes of
// the flow. Section II-B of the paper maps each record to a transaction of
// exactly seven items, one per feature; the FeatureKind enumeration below
// fixes that feature space.
//
// Determinism: records are plain values and every derived quantity
// (feature extraction, the stable partitioning Key) is a pure function
// of the record, so shard assignment and transaction contents are
// reproducible everywhere.
package flow

import (
	"fmt"
	"net/netip"
)

// FeatureKind identifies one of the seven flow features the paper mines
// over (§II-B: srcIP, dstIP, srcPort, dstPort, protocol, #packets, #bytes).
type FeatureKind uint8

// The seven transaction features, in the paper's order.
const (
	SrcIP FeatureKind = iota
	DstIP
	SrcPort
	DstPort
	Proto
	Packets
	Bytes

	// NumFeatures is the transaction width: every flow record yields
	// exactly this many items (§II-B).
	NumFeatures = 7
)

// DetectorFeatures lists the five features monitored by histogram-based
// detectors in the paper's evaluation (§II-E: source and destination IP
// addresses, source and destination ports, and packets per flow).
var DetectorFeatures = [5]FeatureKind{SrcIP, DstIP, SrcPort, DstPort, Packets}

// AllFeatures lists every transaction feature in canonical order.
var AllFeatures = [NumFeatures]FeatureKind{SrcIP, DstIP, SrcPort, DstPort, Proto, Packets, Bytes}

var featureNames = [NumFeatures]string{
	"srcIP", "dstIP", "srcPort", "dstPort", "proto", "packets", "bytes",
}

// String returns the feature's short name as used in the paper's item-set
// notation, e.g. "dstPort".
func (k FeatureKind) String() string {
	if int(k) < len(featureNames) {
		return featureNames[k]
	}
	return fmt.Sprintf("feature(%d)", uint8(k))
}

// Valid reports whether k names one of the seven transaction features.
func (k FeatureKind) Valid() bool { return k < NumFeatures }

// Record is a single unidirectional flow record. IPv4 addresses are stored
// as big-endian uint32 (the SWITCH traces the paper uses are IPv4).
type Record struct {
	SrcAddr  uint32 // source IPv4 address
	DstAddr  uint32 // destination IPv4 address
	SrcPort  uint16 // source transport port
	DstPort  uint16 // destination transport port
	Protocol uint8  // IP protocol number (6=TCP, 17=UDP, 1=ICMP, ...)
	TCPFlags uint8  // cumulative OR of TCP flags (NetFlow v5 tcp_flags)

	Packets uint32 // packets in the flow
	Bytes   uint64 // total layer-3 bytes in the flow

	// Start and End are flow timestamps in milliseconds since the Unix
	// epoch (NetFlow v5 expresses these relative to router boot; the
	// trace container normalizes them to absolute time).
	Start int64
	End   int64
}

// Common IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP flag bits as used in the NetFlow v5 tcp_flags field.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Feature returns the value of feature k for the record, widened to
// uint64. Feature values are the "items" of §II-B: the pair (kind, value)
// identifies an item, and a transaction cannot contain two items of the
// same kind by construction.
func (r *Record) Feature(k FeatureKind) uint64 {
	switch k {
	case SrcIP:
		return uint64(r.SrcAddr)
	case DstIP:
		return uint64(r.DstAddr)
	case SrcPort:
		return uint64(r.SrcPort)
	case DstPort:
		return uint64(r.DstPort)
	case Proto:
		return uint64(r.Protocol)
	case Packets:
		return uint64(r.Packets)
	case Bytes:
		return r.Bytes
	default:
		panic(fmt.Sprintf("flow: invalid feature kind %d", k))
	}
}

// SetFeature sets feature k to value v, truncating to the feature's native
// width. It is the inverse of Feature and exists mainly for test and
// generator code.
func (r *Record) SetFeature(k FeatureKind, v uint64) {
	switch k {
	case SrcIP:
		r.SrcAddr = uint32(v)
	case DstIP:
		r.DstAddr = uint32(v)
	case SrcPort:
		r.SrcPort = uint16(v)
	case DstPort:
		r.DstPort = uint16(v)
	case Proto:
		r.Protocol = uint8(v)
	case Packets:
		r.Packets = uint32(v)
	case Bytes:
		r.Bytes = v
	default:
		panic(fmt.Sprintf("flow: invalid feature kind %d", k))
	}
}

// Key folds the 5-tuple into a stable 64-bit flow key: equal tuples give
// equal keys in every run and on every platform, so it is a valid
// partitioning key for hash-sharded deployments (internal/shard). The
// fold is a fixed-constant multiply-add, not a hash — partitioners
// should pass it through a seeded hash.Func before reducing to a shard
// index.
func (r *Record) Key() uint64 {
	k := uint64(r.SrcAddr)<<32 | uint64(r.DstAddr)
	return k*0x9e3779b97f4a7c15 +
		(uint64(r.SrcPort)<<24 | uint64(r.DstPort)<<8 | uint64(r.Protocol))
}

// Duration returns the flow duration in milliseconds (End - Start); flows
// with End < Start report 0.
func (r *Record) Duration() int64 {
	if r.End < r.Start {
		return 0
	}
	return r.End - r.Start
}

// SrcIPAddr returns the source address as a netip.Addr.
func (r *Record) SrcIPAddr() netip.Addr { return U32ToAddr(r.SrcAddr) }

// DstIPAddr returns the destination address as a netip.Addr.
func (r *Record) DstIPAddr() netip.Addr { return U32ToAddr(r.DstAddr) }

// String renders the record in a compact human-readable form.
func (r *Record) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d proto=%d pkts=%d bytes=%d",
		r.SrcIPAddr(), r.SrcPort, r.DstIPAddr(), r.DstPort,
		r.Protocol, r.Packets, r.Bytes)
}

// U32ToAddr converts a big-endian uint32 IPv4 address to netip.Addr.
func U32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// AddrToU32 converts an IPv4 netip.Addr to its big-endian uint32 form.
// It panics if the address is not IPv4.
func AddrToU32(a netip.Addr) uint32 {
	if !a.Is4() {
		panic("flow: AddrToU32 requires an IPv4 address")
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// MustParseU32 parses a dotted-quad IPv4 string into its uint32 form,
// panicking on malformed input. Intended for constants in tests,
// generators, and examples.
func MustParseU32(s string) uint32 {
	return AddrToU32(netip.MustParseAddr(s))
}

// FormatValue renders a feature value the way an operator would read it in
// an item-set report: IPs as dotted quads, everything else as decimal.
func FormatValue(k FeatureKind, v uint64) string {
	switch k {
	case SrcIP, DstIP:
		return U32ToAddr(uint32(v)).String()
	default:
		return fmt.Sprintf("%d", v)
	}
}
