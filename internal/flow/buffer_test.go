package flow

import (
	"reflect"
	"testing"
)

func bufTestRecords() []Record {
	return []Record{
		{SrcAddr: 0xC0A80001, DstAddr: 0x0A000001, SrcPort: 1234, DstPort: 445, Protocol: 6, TCPFlags: 0x12, Packets: 3, Bytes: 144, Start: 1000, End: 1500},
		{SrcAddr: 0xC0A80002, DstAddr: 0x0A000001, SrcPort: 5353, DstPort: 53, Protocol: 17, Packets: 1, Bytes: 64, Start: -250, End: -250},
		{SrcAddr: 0xFFFFFFFF, DstAddr: 0, SrcPort: 65535, DstPort: 0, Protocol: 255, TCPFlags: 255, Packets: 1<<32 - 1, Bytes: 1<<64 - 1, Start: 0, End: 0},
	}
}

// TestBufferRoundTrip: the row→column→row transpose is lossless, in
// both the per-row Record gather and the bulk Records form.
func TestBufferRoundTrip(t *testing.T) {
	recs := bufTestRecords()
	buf := BufferOf(recs)
	if buf.Len() != len(recs) {
		t.Fatalf("Len() = %d, want %d", buf.Len(), len(recs))
	}
	for i := range recs {
		if got := buf.Record(i); got != recs[i] {
			t.Fatalf("Record(%d) = %+v, want %+v", i, got, recs[i])
		}
	}
	if got := buf.Records(); !reflect.DeepEqual(got, recs) {
		t.Fatalf("Records() = %+v, want %+v", got, recs)
	}
}

// TestBufferFeatureParity: Buffer.Feature agrees with Record.Feature
// for every feature kind and row.
func TestBufferFeatureParity(t *testing.T) {
	recs := bufTestRecords()
	buf := BufferOf(recs)
	for i, rec := range recs {
		for _, k := range AllFeatures {
			if got, want := buf.Feature(i, k), rec.Feature(k); got != want {
				t.Fatalf("Feature(%d, %v) = %d, want %d", i, k, got, want)
			}
		}
	}
}

// TestBufferAppendAndReset: the append forms agree, Reset keeps
// capacity, and appending after Reset reuses it.
func TestBufferAppendAndReset(t *testing.T) {
	recs := bufTestRecords()
	var one, batch Buffer
	for _, rec := range recs {
		one.Append(rec)
	}
	batch.AppendRecords(recs)
	if !reflect.DeepEqual(one, batch) {
		t.Fatal("Append and AppendRecords built different buffers")
	}
	var joined Buffer
	joined.AppendBuffer(&one)
	joined.AppendBuffer(&batch)
	if joined.Len() != 2*len(recs) {
		t.Fatalf("joined Len() = %d, want %d", joined.Len(), 2*len(recs))
	}
	if got := joined.Record(len(recs)); got != recs[0] {
		t.Fatalf("row after concatenation = %+v, want %+v", got, recs[0])
	}

	batch.Reset()
	if batch.Len() != 0 {
		t.Fatalf("Len() after Reset = %d", batch.Len())
	}
	if cap(batch.SrcAddr) == 0 {
		t.Fatal("Reset dropped column capacity")
	}
	base := &batch.SrcAddr[:1][0]
	batch.AppendRecords(recs)
	if &batch.SrcAddr[0] != base {
		t.Fatal("append after Reset reallocated despite retained capacity")
	}
}

// TestBufferGrow: growing reserves capacity across all columns so the
// following appends do not reallocate.
func TestBufferGrow(t *testing.T) {
	var buf Buffer
	buf.Grow(64)
	if cap(buf.SrcAddr) < 64 || cap(buf.Bytes) < 64 || cap(buf.End) < 64 {
		t.Fatalf("Grow(64) left capacities %d/%d/%d", cap(buf.SrcAddr), cap(buf.Bytes), cap(buf.End))
	}
	base := &buf.SrcAddr[:1][0]
	for i := 0; i < 64; i++ {
		buf.Append(Record{SrcAddr: uint32(i)})
	}
	if &buf.SrcAddr[0] != base {
		t.Fatal("appends within grown capacity reallocated")
	}
}

// TestBufferClone: clones share no memory and the zero-row clone is the
// zero-value Buffer, so clones of equal buffers are deeply equal
// regardless of retained capacity.
func TestBufferClone(t *testing.T) {
	recs := bufTestRecords()
	buf := BufferOf(recs)
	clone := buf.Clone()
	if !reflect.DeepEqual(clone.Records(), recs) {
		t.Fatal("clone does not hold the original rows")
	}
	buf.SrcAddr[0] = 7
	if clone.SrcAddr[0] == 7 {
		t.Fatal("clone shares column memory with the original")
	}

	buf.Reset() // non-nil zero-length columns
	if got := buf.Clone(); !reflect.DeepEqual(got, Buffer{}) {
		t.Fatalf("zero-row clone = %+v, want zero value", got)
	}
	if buf.Records() != nil {
		t.Fatal("zero-row Records() not nil")
	}
}
