// Package hhh implements exact offline hierarchical heavy-hitter (HHH)
// detection over IPv4 prefixes — the related-work comparator of the
// paper's §IV ([7], [36]) and its §III-D suggestion for capturing
// anomalies that affect whole network ranges (outages, routing shifts)
// rather than single feature values.
//
// A prefix is a hierarchical heavy hitter when its traffic count,
// *discounted by the counts of its descendant HHHs*, still reaches the
// threshold phi*N. The discounting is what separates HHH from plain
// per-prefix heavy hitters: a /16 only surfaces if its traffic is not
// already explained by heavier /24s inside it.
//
// Results are deterministic: detection is exact (no sketching), counts
// depend only on the flow multiset, and each level's HHH list is sorted
// by descending discounted count with the prefix address as tiebreak,
// so the same input yields the same output in the same order every run.
package hhh

import (
	"fmt"
	"sort"

	"anomalyx/internal/flow"
)

// Prefix is an IPv4 prefix.
type Prefix struct {
	Addr uint32 // masked address
	Len  int    // prefix length in bits
}

// String renders the prefix in CIDR form.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", flow.U32ToAddr(p.Addr), p.Len)
}

// Contains reports whether p covers q (q at least as specific).
func (p Prefix) Contains(q Prefix) bool {
	if q.Len < p.Len {
		return false
	}
	return q.Addr&mask(p.Len) == p.Addr
}

// HeavyHitter is one detected hierarchical heavy hitter.
type HeavyHitter struct {
	Prefix Prefix
	// Count is the prefix's total flow count; Discounted the count after
	// subtracting descendant HHHs (the value compared to the threshold).
	Count      uint64
	Discounted uint64
}

// Levels is the default prefix-length hierarchy (byte boundaries, the
// granularity of [36]).
var Levels = []int{32, 24, 16, 8, 0}

// Detector finds exact HHHs over one interval of addresses.
type Detector struct {
	levels []int
	counts map[Prefix]uint64
	total  uint64
}

// New creates a detector over the given prefix-length hierarchy (most
// specific first); nil selects byte boundaries.
func New(levels []int) *Detector {
	if levels == nil {
		levels = Levels
	}
	cp := make([]int, len(levels))
	copy(cp, levels)
	sort.Sort(sort.Reverse(sort.IntSlice(cp)))
	return &Detector{levels: cp, counts: make(map[Prefix]uint64)}
}

// Add records n flows for address a.
func (d *Detector) Add(a uint32, n uint64) {
	for _, l := range d.levels {
		d.counts[Prefix{Addr: a & mask(l), Len: l}] += n
	}
	d.total += n
}

// AddFlows records the chosen address feature of each flow.
func (d *Detector) AddFlows(recs []flow.Record, kind flow.FeatureKind) error {
	if kind != flow.SrcIP && kind != flow.DstIP {
		return fmt.Errorf("hhh: feature %v is not an address", kind)
	}
	for i := range recs {
		d.Add(uint32(recs[i].Feature(kind)), 1)
	}
	return nil
}

// Total returns the number of observations.
func (d *Detector) Total() uint64 { return d.total }

// Detect returns the hierarchical heavy hitters at threshold phi (a
// fraction of the total count), most specific levels first, each level
// sorted by descending discounted count.
func (d *Detector) Detect(phi float64) []HeavyHitter {
	if phi <= 0 || phi > 1 {
		panic("hhh: phi must be in (0, 1]")
	}
	threshold := uint64(phi * float64(d.total))
	if threshold == 0 {
		threshold = 1
	}

	var result []HeavyHitter
	// hhhAt[i] lists the HHHs found at level index i (levels are most
	// specific first).
	hhhAt := make([][]HeavyHitter, len(d.levels))

	for li, l := range d.levels {
		var found []HeavyHitter
		for p, c := range d.counts {
			if p.Len != l {
				continue
			}
			disc := c
			// Subtract descendant HHHs from more specific levels.
			for mi := 0; mi < li; mi++ {
				for _, h := range hhhAt[mi] {
					if p.Contains(h.Prefix) && isDirectHHHChild(hhhAt, mi, li, p, h.Prefix) {
						if h.Count > disc {
							disc = 0
						} else {
							disc -= h.Count
						}
					}
				}
			}
			if disc >= threshold {
				found = append(found, HeavyHitter{Prefix: p, Count: c, Discounted: disc})
			}
		}
		sort.Slice(found, func(i, j int) bool {
			if found[i].Discounted != found[j].Discounted {
				return found[i].Discounted > found[j].Discounted
			}
			return found[i].Prefix.Addr < found[j].Prefix.Addr
		})
		hhhAt[li] = found
		result = append(result, found...)
	}
	return result
}

// isDirectHHHChild reports whether child (an HHH at level index childLi)
// should be discounted from parent at level index parentLi: it must not
// be covered by an intermediate HHH that is itself discounted from the
// parent (avoiding double subtraction).
func isDirectHHHChild(hhhAt [][]HeavyHitter, childLi, parentLi int, parent, child Prefix) bool {
	for mi := childLi + 1; mi < parentLi; mi++ {
		for _, h := range hhhAt[mi] {
			if parent.Contains(h.Prefix) && h.Prefix.Contains(child) {
				return false // already folded into the intermediate HHH
			}
		}
	}
	return true
}

func mask(l int) uint32 {
	if l <= 0 {
		return 0
	}
	if l >= 32 {
		return 0xffffffff
	}
	return ^uint32(0) << (32 - l)
}
