package hhh

import (
	"testing"

	"anomalyx/internal/flow"
)

func ip(s string) uint32 { return flow.MustParseU32(s) }

func TestPrefixContains(t *testing.T) {
	p24 := Prefix{Addr: ip("10.1.2.0"), Len: 24}
	if !p24.Contains(Prefix{Addr: ip("10.1.2.99"), Len: 32}) {
		t.Error("/24 should contain its /32")
	}
	if p24.Contains(Prefix{Addr: ip("10.1.3.99"), Len: 32}) {
		t.Error("/24 must not contain a foreign /32")
	}
	if p24.Contains(Prefix{Addr: ip("10.1.0.0"), Len: 16}) {
		t.Error("/24 must not contain its /16 parent")
	}
}

func TestPrefixString(t *testing.T) {
	p := Prefix{Addr: ip("192.168.0.0"), Len: 16}
	if p.String() != "192.168.0.0/16" {
		t.Errorf("String = %q", p.String())
	}
}

func TestSingleHeavyAddress(t *testing.T) {
	d := New(nil)
	d.Add(ip("10.0.0.1"), 900)
	for i := uint32(0); i < 100; i++ {
		d.Add(ip("172.16.0.0")+i*257, 1)
	}
	hh := d.Detect(0.5)
	if len(hh) == 0 {
		t.Fatal("no HHH found")
	}
	if hh[0].Prefix != (Prefix{Addr: ip("10.0.0.1"), Len: 32}) {
		t.Errorf("top HHH %v", hh[0].Prefix)
	}
	// Parents of the heavy /32 are fully discounted and must not appear.
	for _, h := range hh {
		if h.Prefix.Len < 32 && h.Prefix.Contains(Prefix{Addr: ip("10.0.0.1"), Len: 32}) {
			t.Errorf("discounted parent still reported: %v (disc %d)", h.Prefix, h.Discounted)
		}
	}
}

func TestDiscountingSurfacesDiffuseParent(t *testing.T) {
	// 300 flows spread over a /24 with no single address heavy: the /24
	// is the HHH, not any /32.
	d := New(nil)
	for i := uint32(0); i < 100; i++ {
		d.Add(ip("10.1.2.0")+i, 3)
	}
	d.Add(ip("99.9.9.9"), 100) // background
	hh := d.Detect(0.5)
	found24 := false
	for _, h := range hh {
		if h.Prefix.Len == 32 && h.Prefix.Addr != ip("99.9.9.9") {
			t.Errorf("no /32 inside the diffuse range should be heavy: %v", h)
		}
		if h.Prefix == (Prefix{Addr: ip("10.1.2.0"), Len: 24}) {
			found24 = true
			if h.Discounted != 300 {
				t.Errorf("/24 discounted = %d, want 300", h.Discounted)
			}
		}
	}
	if !found24 {
		t.Errorf("diffuse /24 not detected: %v", hh)
	}
}

func TestMixedLevels(t *testing.T) {
	// One heavy /32 inside a /24 that also has diffuse traffic: both
	// surface, with the /24 discounted by the /32's count.
	d := New(nil)
	d.Add(ip("10.1.2.42"), 500)
	for i := uint32(0); i < 250; i++ {
		d.Add(ip("10.1.2.0")+i%250, 2)
	}
	hh := d.Detect(0.3)
	var h32, h24 *HeavyHitter
	for i := range hh {
		h := &hh[i]
		if h.Prefix == (Prefix{Addr: ip("10.1.2.42"), Len: 32}) {
			h32 = h
		}
		if h.Prefix == (Prefix{Addr: ip("10.1.2.0"), Len: 24}) {
			h24 = h
		}
	}
	if h32 == nil {
		t.Fatalf("heavy /32 missing: %v", hh)
	}
	if h24 == nil {
		t.Fatalf("diffuse /24 missing: %v", hh)
	}
	// /32 got 500 + 2*2 (42 is also hit by the diffuse loop at i=42 and
	// i=42+... no: i%250 over 250 values hits each of 250 addrs twice).
	if h32.Count < 500 {
		t.Errorf("/32 count %d", h32.Count)
	}
	if h24.Discounted >= h24.Count {
		t.Error("/24 not discounted by its heavy child")
	}
}

func TestAddFlows(t *testing.T) {
	recs := []flow.Record{
		{DstAddr: ip("10.0.0.1")},
		{DstAddr: ip("10.0.0.1")},
		{DstAddr: ip("10.0.0.2")},
	}
	d := New(nil)
	if err := d.AddFlows(recs, flow.DstIP); err != nil {
		t.Fatal(err)
	}
	if d.Total() != 3 {
		t.Errorf("Total = %d", d.Total())
	}
	if err := New(nil).AddFlows(recs, flow.DstPort); err == nil {
		t.Error("non-address feature accepted")
	}
}

func TestDetectPanicsOnBadPhi(t *testing.T) {
	d := New(nil)
	d.Add(1, 1)
	for _, phi := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("phi=%v accepted", phi)
				}
			}()
			d.Detect(phi)
		}()
	}
}

func TestCustomLevels(t *testing.T) {
	d := New([]int{32, 16})
	d.Add(ip("10.1.2.3"), 10)
	hh := d.Detect(0.5)
	for _, h := range hh {
		if h.Prefix.Len != 32 && h.Prefix.Len != 16 {
			t.Errorf("unexpected level %d", h.Prefix.Len)
		}
	}
}

func TestScanFootprint(t *testing.T) {
	// A scan sweeping an internal /16 produces a diffuse HHH on that
	// /16 — the §III-D argument for HHH on range anomalies.
	d := New(nil)
	for i := 0; i < 3000; i++ {
		d.Add(ip("130.59.0.0")+uint32(i*17%65536), 1)
	}
	for i := 0; i < 1000; i++ {
		d.Add(ip("8.8.8.8"), 1) // plus one fat benign server
	}
	hh := d.Detect(0.25)
	found := false
	for _, h := range hh {
		if h.Prefix == (Prefix{Addr: ip("130.59.0.0"), Len: 16}) {
			found = true
		}
	}
	if !found {
		t.Errorf("scanned /16 not detected: %v", hh)
	}
}
