package detector

import (
	"anomalyx/internal/flow"
)

// BankConfig parameterizes a bank of per-feature detectors — the "d
// histogram-based detectors" of §II (default: the five features of
// §II-E).
type BankConfig struct {
	// Features lists the monitored features; defaults to the paper's
	// five (srcIP, dstIP, srcPort, dstPort, packets).
	Features []flow.FeatureKind
	// Template provides the shared per-detector parameters; its Feature
	// field is overwritten per detector.
	Template Config
}

// Bank runs one detector per traffic feature and consolidates their
// alarm meta-data by union (Fig. 3).
type Bank struct {
	detectors []*Detector
}

// BankResult is the outcome of one interval across all features.
type BankResult struct {
	Interval int
	// Alarm is true when any feature detector alarmed.
	Alarm bool
	// PerFeature holds each detector's result, in Features order.
	PerFeature []Result
	// Meta is the union of the voted feature values across features —
	// the prefilter input.
	Meta MetaData
}

// NewBank builds one detector per feature.
func NewBank(cfg BankConfig) (*Bank, error) {
	feats := cfg.Features
	if len(feats) == 0 {
		feats = flow.DetectorFeatures[:]
	}
	b := &Bank{}
	for _, f := range feats {
		dcfg := cfg.Template
		dcfg.Feature = f
		d, err := New(dcfg)
		if err != nil {
			return nil, err
		}
		b.detectors = append(b.detectors, d)
	}
	return b, nil
}

// Detectors exposes the underlying per-feature detectors (read-only use).
func (b *Bank) Detectors() []*Detector { return b.detectors }

// Observe feeds one flow into every feature detector.
func (b *Bank) Observe(rec *flow.Record) {
	for _, d := range b.detectors {
		d.Observe(rec)
	}
}

// EndInterval closes the interval on every detector and merges their
// meta-data (union across detectors, §II-A).
func (b *Bank) EndInterval() BankResult {
	res := BankResult{Meta: NewMetaData()}
	for _, d := range b.detectors {
		r := d.EndInterval()
		res.Interval = r.Interval
		res.PerFeature = append(res.PerFeature, r)
		if r.Alarm {
			res.Alarm = true
			for _, v := range r.Meta {
				res.Meta.Add(r.Feature, v)
			}
		}
	}
	return res
}
