package detector

import (
	"fmt"
	"runtime"
	"sync"

	"anomalyx/internal/flow"
	"anomalyx/internal/histogram"
)

// BankConfig parameterizes a bank of per-feature detectors — the "d
// histogram-based detectors" of §II (default: the five features of
// §II-E).
type BankConfig struct {
	// Features lists the monitored features; defaults to the paper's
	// five (srcIP, dstIP, srcPort, dstPort, packets).
	Features []flow.FeatureKind
	// Workers sizes the bank's persistent worker pool. NewBank spawns
	// the pool goroutines once — they live for the bank's lifetime, fed
	// by a task channel, and are shut down by Close — so ObserveBatch and
	// EndInterval pay no per-call spawn cost. 0 means GOMAXPROCS at
	// construction time; 1 keeps the bank fully sequential (no pool
	// goroutines at all).
	Workers int
	// Template provides the shared per-detector parameters; its Feature
	// field is overwritten per detector.
	Template Config
}

// Bank runs one detector per traffic feature and consolidates their
// alarm meta-data by union (Fig. 3). Its methods are safe for concurrent
// use: observes and interval closes are linearized by an internal mutex,
// while the batch work itself fans out over the persistent worker pool.
// Call Close when done with a pooled bank to release its goroutines; a
// closed bank must not observe further batches.
type Bank struct {
	mu        sync.Mutex
	detectors []*Detector
	units     []cloneUnit // the (detector, clone) fan-out tasks, fixed at construction
	workers   int

	// tasks feeds the persistent pool; nil when workers == 1 (sequential
	// bank, no goroutines).
	tasks     chan func()
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// minParallelBatch is the batch size below which the pool's handoff and
// wait overhead exceeds the win and ObserveBatch stays sequential.
const minParallelBatch = 256

// cloneUnit is one schedulable unit of batch work: a single histogram
// clone of a single feature detector.
type cloneUnit struct {
	d     *Detector
	clone int
}

// BankResult is the outcome of one interval across all features.
type BankResult struct {
	Interval int
	// Alarm is true when any feature detector alarmed.
	Alarm bool
	// PerFeature holds each detector's result, in Features order.
	PerFeature []Result
	// Meta is the union of the voted feature values across features —
	// the prefilter input.
	Meta MetaData
}

// NewBank builds one detector per feature and starts the worker pool.
func NewBank(cfg BankConfig) (*Bank, error) {
	feats := cfg.Features
	if len(feats) == 0 {
		feats = flow.DetectorFeatures[:]
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &Bank{workers: workers}
	for _, f := range feats {
		dcfg := cfg.Template
		dcfg.Feature = f
		d, err := New(dcfg)
		if err != nil {
			return nil, err
		}
		b.detectors = append(b.detectors, d)
		for c := range d.cur {
			b.units = append(b.units, cloneUnit{d, c})
		}
	}
	if workers > 1 {
		b.tasks = make(chan func(), 4*workers)
		b.workerWG.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer b.workerWG.Done()
				for fn := range b.tasks {
					fn()
				}
			}()
		}
	}
	return b, nil
}

// Detectors exposes the underlying per-feature detectors (read-only use).
func (b *Bank) Detectors() []*Detector { return b.detectors }

// Workers returns the effective worker-pool size (1 = sequential).
func (b *Bank) Workers() int { return b.workers }

// Close shuts the worker pool down and waits for its goroutines to
// exit. It is idempotent. The bank must not be used after Close.
func (b *Bank) Close() {
	b.closeOnce.Do(func() {
		if b.tasks != nil {
			close(b.tasks)
		}
		b.workerWG.Wait()
	})
}

// runTasks executes n tasks produced by gen(i) on the pool and waits for
// all of them; with a sequential bank it just runs them inline.
func (b *Bank) runTasks(n int, gen func(i int) func()) {
	if b.tasks == nil {
		for i := 0; i < n; i++ {
			gen(i)()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		fn := gen(i)
		b.tasks <- func() {
			defer wg.Done()
			fn()
		}
	}
	wg.Wait()
}

// Observe feeds one flow into every feature detector.
func (b *Bank) Observe(rec *flow.Record) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.detectors {
		d.Observe(rec)
	}
}

// ObserveBatch feeds a batch of flows into every feature detector,
// fanning the (detector, clone) histogram updates out over the worker
// pool. The result is identical to observing each record sequentially:
// histogram updates commute and each clone is owned by one task.
func (b *Bank) ObserveBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tasks == nil || len(recs) < minParallelBatch {
		for _, d := range b.detectors {
			d.ObserveBatch(recs)
		}
		return
	}
	b.runTasks(len(b.units), func(i int) func() {
		u := b.units[i]
		return func() { u.d.observeClone(u.clone, recs) }
	})
}

// EndInterval closes the interval on every detector and merges their
// meta-data (union across detectors, §II-A). The per-detector interval
// close runs on the worker pool; results are merged in feature order, so
// the report is identical to the sequential path.
func (b *Bank) EndInterval() BankResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	results := make([]Result, len(b.detectors))
	b.runTasks(len(b.detectors), func(i int) func() {
		return func() { results[i] = b.detectors[i].EndInterval() }
	})
	return mergeResults(results)
}

// mergeResults consolidates per-detector interval results in feature
// order (union across detectors, §II-A).
func mergeResults(results []Result) BankResult {
	res := BankResult{Meta: NewMetaData()}
	for _, r := range results {
		res.Interval = r.Interval
		res.PerFeature = append(res.PerFeature, r)
		if r.Alarm {
			res.Alarm = true
			for _, v := range r.Meta {
				res.Meta.Add(r.Feature, v)
			}
		}
	}
	return res
}

// SwapInterval exchanges every detector's current-interval clone set for
// the corresponding entry of repl — a reset set previously returned by
// SwapInterval, or nil to allocate fresh sets — and returns the drained
// sets, index-aligned with Detectors(). repl's outer slice is reused as
// the return container, so a caller cycling sets through a freelist
// allocates nothing. The swap takes the bank mutex and is therefore
// atomic with respect to ObserveBatch; the expensive close math runs
// later via FinishInterval.
func (b *Bank) SwapInterval(repl [][]*histogram.Histogram) [][]*histogram.Histogram {
	b.mu.Lock()
	defer b.mu.Unlock()
	if repl == nil {
		repl = make([][]*histogram.Histogram, len(b.detectors))
	}
	for i, d := range b.detectors {
		repl[i] = d.SwapInterval(repl[i])
	}
	return repl
}

// FinishInterval closes the interval whose clone sets were drained by
// SwapInterval. It deliberately does NOT take the bank mutex: cur is
// private to the caller and each detector's interval history is touched
// only by finish calls, so detection here may overlap ObserveBatch on
// the swapped-in sets. The caller must serialize FinishInterval calls in
// swap order — the KL scheme compares each interval against the previous
// one. cur's histograms are reset in place for recycling.
func (b *Bank) FinishInterval(cur [][]*histogram.Histogram) BankResult {
	results := make([]Result, len(b.detectors))
	b.runTasks(len(b.detectors), func(i int) func() {
		return func() { results[i] = b.detectors[i].FinishInterval(cur[i]) }
	})
	return mergeResults(results)
}

// AbsorbGroup folds every sibling bank's in-progress interval into b in
// sibling order, fanning one task per detector across the worker pool —
// detector columns are independent, so the parallel merge is
// byte-identical to absorbing each sibling sequentially. This is the
// cross-shard merge of the interval close; serializing it on the
// closing goroutine was the scaling bottleneck the multi-core curves
// exposed (every added shard lengthened the serial section by a full
// clones × bins fold).
func (b *Bank) AbsorbGroup(others []*Bank) error {
	// Lock in caller order: the fold goes toward a single primary bank
	// (shard merges), so no cycle can form.
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, o := range others {
		if o == b {
			return fmt.Errorf("detector: bank cannot absorb itself")
		}
		o.mu.Lock()
		defer o.mu.Unlock()
		if len(b.detectors) != len(o.detectors) {
			return fmt.Errorf("detector: absorb across banks with %d and %d detectors",
				len(b.detectors), len(o.detectors))
		}
	}
	errs := make([]error, len(b.detectors))
	b.runTasks(len(b.detectors), func(i int) func() {
		return func() {
			for _, o := range others {
				if err := b.detectors[i].Absorb(o.detectors[i]); err != nil {
					errs[i] = err
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MergeDrained folds sibling drained clone sets into dst in sibling
// order, one task per detector on the worker pool — AbsorbGroup's
// counterpart for the pipelined close, operating on sets returned by
// SwapInterval instead of live banks. Like FinishInterval it takes no
// bank mutex: every set involved is private to the caller. The sibling
// histograms keep their counts; the caller resets them when recycling.
func (b *Bank) MergeDrained(dst [][]*histogram.Histogram, siblings [][][]*histogram.Histogram) {
	b.runTasks(len(dst), func(i int) func() {
		return func() {
			for _, sib := range siblings {
				for c, h := range sib[i] {
					dst[i][c].Merge(h)
				}
			}
		}
	})
}

// Absorb folds other's in-progress interval into b — each detector
// absorbs its counterpart's clone histograms — and resets other's
// current interval (see Detector.Absorb). Both banks must monitor the
// same features with the same detector parameters. It is the cross-shard
// merge step: shard banks accumulate partitions of the stream, the
// primary bank absorbs them at the interval boundary and runs detection
// over the union, yielding exactly the unsharded detector state.
func (b *Bank) Absorb(other *Bank) error {
	if other == b {
		return fmt.Errorf("detector: bank cannot absorb itself")
	}
	// Lock in caller order: Absorb is only ever fanned in toward a single
	// primary bank (shard merges), so no cycle can form.
	b.mu.Lock()
	defer b.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	if len(b.detectors) != len(other.detectors) {
		return fmt.Errorf("detector: absorb across banks with %d and %d detectors",
			len(b.detectors), len(other.detectors))
	}
	for i, d := range b.detectors {
		if err := d.Absorb(other.detectors[i]); err != nil {
			return err
		}
	}
	return nil
}
