package detector

import (
	"runtime"
	"sync"

	"anomalyx/internal/flow"
)

// BankConfig parameterizes a bank of per-feature detectors — the "d
// histogram-based detectors" of §II (default: the five features of
// §II-E).
type BankConfig struct {
	// Features lists the monitored features; defaults to the paper's
	// five (srcIP, dstIP, srcPort, dstPort, packets).
	Features []flow.FeatureKind
	// Template provides the shared per-detector parameters; its Feature
	// field is overwritten per detector.
	Template Config
	// Workers bounds the per-call goroutine fan-out ObserveBatch and
	// EndInterval use to run the d detectors and their n histogram
	// clones concurrently (workers are spawned per call, not pooled
	// across calls). 0 means GOMAXPROCS (resolved at call time, so it
	// tracks -cpu sweeps); 1 forces the sequential path.
	Workers int
}

// Bank runs one detector per traffic feature and consolidates their
// alarm meta-data by union (Fig. 3). Its methods are safe for concurrent
// use: observes and interval closes are linearized by an internal mutex,
// while the batch work itself fans out over up to Workers goroutines
// spawned for the duration of the call.
type Bank struct {
	mu        sync.Mutex
	detectors []*Detector
	workers   int
}

// minParallelBatch is the batch size below which fan-out overhead
// exceeds the win and ObserveBatch stays sequential.
const minParallelBatch = 256

// BankResult is the outcome of one interval across all features.
type BankResult struct {
	Interval int
	// Alarm is true when any feature detector alarmed.
	Alarm bool
	// PerFeature holds each detector's result, in Features order.
	PerFeature []Result
	// Meta is the union of the voted feature values across features —
	// the prefilter input.
	Meta MetaData
}

// NewBank builds one detector per feature.
func NewBank(cfg BankConfig) (*Bank, error) {
	feats := cfg.Features
	if len(feats) == 0 {
		feats = flow.DetectorFeatures[:]
	}
	b := &Bank{workers: cfg.Workers}
	for _, f := range feats {
		dcfg := cfg.Template
		dcfg.Feature = f
		d, err := New(dcfg)
		if err != nil {
			return nil, err
		}
		b.detectors = append(b.detectors, d)
	}
	return b, nil
}

// Detectors exposes the underlying per-feature detectors (read-only use).
func (b *Bank) Detectors() []*Detector { return b.detectors }

// poolSize resolves the effective worker count for one call.
func (b *Bank) poolSize() int {
	if b.workers > 0 {
		return b.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Observe feeds one flow into every feature detector.
func (b *Bank) Observe(rec *flow.Record) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.detectors {
		d.Observe(rec)
	}
}

// ObserveBatch feeds a batch of flows into every feature detector,
// fanning the (detector, clone) histogram updates out over the worker
// pool. The result is identical to observing each record sequentially:
// histogram updates commute and each clone is owned by one task.
func (b *Bank) ObserveBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	workers := b.poolSize()
	if workers <= 1 || len(recs) < minParallelBatch {
		for _, d := range b.detectors {
			d.ObserveBatch(recs)
		}
		return
	}
	type task struct {
		d     *Detector
		clone int
	}
	ntasks := 0
	for _, d := range b.detectors {
		ntasks += len(d.cur)
	}
	if workers > ntasks {
		workers = ntasks
	}
	tasks := make(chan task, ntasks)
	for _, d := range b.detectors {
		for c := range d.cur {
			tasks <- task{d, c}
		}
	}
	close(tasks)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range tasks {
				t.d.observeClone(t.clone, recs)
			}
		}()
	}
	wg.Wait()
}

// EndInterval closes the interval on every detector and merges their
// meta-data (union across detectors, §II-A). The per-detector interval
// close runs on the worker pool; results are merged in feature order, so
// the report is identical to the sequential path.
func (b *Bank) EndInterval() BankResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	results := make([]Result, len(b.detectors))
	if workers := b.poolSize(); workers <= 1 {
		for i, d := range b.detectors {
			results[i] = d.EndInterval()
		}
	} else {
		if workers > len(b.detectors) {
			workers = len(b.detectors)
		}
		idx := make(chan int, len(b.detectors))
		for i := range b.detectors {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = b.detectors[i].EndInterval()
				}
			}()
		}
		wg.Wait()
	}

	res := BankResult{Meta: NewMetaData()}
	for _, r := range results {
		res.Interval = r.Interval
		res.PerFeature = append(res.PerFeature, r)
		if r.Alarm {
			res.Alarm = true
			for _, v := range r.Meta {
				res.Meta.Add(r.Feature, v)
			}
		}
	}
	return res
}
