package detector

import (
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// feedInterval feeds n flows with feature values drawn by gen, then closes
// the interval.
func feedInterval(d *Detector, n int, gen func(i int) uint64) Result {
	for i := 0; i < n; i++ {
		rec := flow.Record{}
		rec.SetFeature(d.Config().Feature, gen(i))
		d.Observe(&rec)
	}
	return d.EndInterval()
}

// steadyGen returns a stable heavy-ish value mix driven by a deterministic
// RNG: 60% on 16 popular values, the rest uniform over 10k values.
func steadyGen(r *stats.Rand) func(i int) uint64 {
	return func(i int) uint64 {
		if r.Bernoulli(0.6) {
			return uint64(r.IntN(16))
		}
		return uint64(1000 + r.IntN(10000))
	}
}

func newTestDetector(t *testing.T, cfg Config) *Detector {
	t.Helper()
	cfg.Feature = flow.DstPort
	if cfg.Bins == 0 {
		cfg.Bins = 256
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Feature: flow.FeatureKind(99)}); err == nil {
		t.Error("invalid feature accepted")
	}
	if _, err := New(Config{Feature: flow.SrcIP, Bins: 1}); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := New(Config{Feature: flow.SrcIP, Clones: 2, Votes: 3}); err == nil {
		t.Error("votes > clones accepted")
	}
	d, err := New(Config{Feature: flow.SrcIP})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	if cfg.Bins != 1024 || cfg.Clones != 3 || cfg.Votes != 3 || cfg.Alpha != 3 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestNoAlarmDuringTraining(t *testing.T) {
	d := newTestDetector(t, Config{TrainIntervals: 10})
	r := stats.NewRand(1)
	gen := steadyGen(r)
	for i := 0; i < 5; i++ {
		res := feedInterval(d, 5000, gen)
		if res.Alarm {
			t.Fatalf("alarm during training at interval %d", i)
		}
		if res.Trained {
			t.Fatalf("trained after %d intervals, need 10 diffs", i)
		}
	}
}

func TestStableTrafficNoAlarm(t *testing.T) {
	d := newTestDetector(t, Config{TrainIntervals: 8})
	r := stats.NewRand(2)
	gen := steadyGen(r)
	alarms := 0
	for i := 0; i < 40; i++ {
		if feedInterval(d, 5000, gen).Alarm {
			alarms++
		}
	}
	// A 3-sigma one-sided test fires on ~0.1% of normal intervals; a few
	// alarms can happen on 40 intervals x small samples, but not many.
	if alarms > 3 {
		t.Errorf("%d alarms on stable traffic", alarms)
	}
}

func TestDetectsInjectedSpike(t *testing.T) {
	d := newTestDetector(t, Config{TrainIntervals: 8})
	r := stats.NewRand(3)
	gen := steadyGen(r)
	for i := 0; i < 20; i++ {
		feedInterval(d, 5000, gen)
	}
	// Anomalous interval: 40% extra flows all on one port.
	res := feedInterval(d, 7000, func(i int) uint64 {
		if i < 2000 {
			return 7000
		}
		return gen(i)
	})
	if !res.Alarm {
		t.Fatal("spike not detected")
	}
	found := false
	for _, v := range res.Meta {
		if v == 7000 {
			found = true
		}
	}
	if !found {
		t.Errorf("value 7000 not in voted meta-data: %v", res.Meta)
	}
}

func TestMetaDataVotingFiltersCollisions(t *testing.T) {
	// With l = n = 3 the meta-data should contain few values beyond the
	// anomalous one: normal values must collide in all three clones to
	// leak (probability (b/k)^3 each).
	d := newTestDetector(t, Config{TrainIntervals: 8, Bins: 1024})
	r := stats.NewRand(4)
	gen := steadyGen(r)
	for i := 0; i < 20; i++ {
		feedInterval(d, 5000, gen)
	}
	res := feedInterval(d, 7500, func(i int) uint64 {
		if i < 2500 {
			return 31337
		}
		return gen(i)
	})
	if !res.Alarm {
		t.Fatal("spike not detected")
	}
	if len(res.Meta) > 25 {
		t.Errorf("voting leaked %d values; expected a handful", len(res.Meta))
	}
}

func TestNegativeSpikeDoesNotAlarm(t *testing.T) {
	// The threshold is one-sided: the *end* of an anomaly (KL drop)
	// must not raise an alarm.
	d := newTestDetector(t, Config{TrainIntervals: 8})
	r := stats.NewRand(5)
	gen := steadyGen(r)
	for i := 0; i < 20; i++ {
		feedInterval(d, 5000, gen)
	}
	// Interval with anomaly.
	res := feedInterval(d, 7000, func(i int) uint64 {
		if i < 2000 {
			return 4242
		}
		return gen(i)
	})
	if !res.Alarm {
		t.Fatal("anomaly start not detected")
	}
	// Anomaly ends: distribution reverts. The KL spike at the end shows
	// up as a *positive* KL vs the anomalous reference interval... the
	// first difference, however, is what matters. Feed two calm
	// intervals; by the second, differences are negative or small.
	_ = feedInterval(d, 5000, gen)
	res2 := feedInterval(d, 5000, gen)
	if res2.Alarm {
		t.Error("alarm after anomaly ended (negative spike should not fire)")
	}
}

func TestIdentificationReportedOnAlarm(t *testing.T) {
	d := newTestDetector(t, Config{TrainIntervals: 8})
	r := stats.NewRand(6)
	gen := steadyGen(r)
	for i := 0; i < 15; i++ {
		feedInterval(d, 4000, gen)
	}
	res := feedInterval(d, 6000, func(i int) uint64 {
		if i < 2000 {
			return 5555
		}
		return gen(i)
	})
	if !res.Alarm {
		t.Fatal("no alarm")
	}
	sawIdent := false
	for _, rep := range res.Clones {
		if rep.Alarm {
			if len(rep.Identification.Bins) == 0 {
				t.Error("alarming clone has no identified bins")
			}
			if len(rep.Identification.KLSeries) != len(rep.Identification.Bins)+1 {
				t.Error("KL series length mismatch")
			}
			if len(rep.Values) == 0 {
				t.Error("alarming clone has no candidate values")
			}
			sawIdent = true
		}
	}
	if !sawIdent {
		t.Fatal("alarm raised but no clone reports")
	}
}

func TestIntervalCounter(t *testing.T) {
	d := newTestDetector(t, Config{})
	r := stats.NewRand(7)
	gen := steadyGen(r)
	for i := 0; i < 5; i++ {
		res := feedInterval(d, 100, gen)
		if res.Interval != i {
			t.Fatalf("interval %d reported as %d", i, res.Interval)
		}
	}
}

func TestVotesOneIsUnion(t *testing.T) {
	// With l=1 every clone's candidate values enter the meta-data, so
	// meta size with l=1 >= meta size with l=n on the same traffic.
	run := func(votes int) int {
		cfg := Config{Feature: flow.DstPort, Bins: 256, Clones: 3, Votes: votes, TrainIntervals: 8}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(8)
		gen := steadyGen(r)
		for i := 0; i < 15; i++ {
			feedInterval(d, 4000, gen)
		}
		res := feedInterval(d, 6000, func(i int) uint64 {
			if i < 2000 {
				return 9999
			}
			return gen(i)
		})
		if !res.Alarm {
			t.Fatal("no alarm")
		}
		return len(res.Meta)
	}
	if run(1) < run(3) {
		t.Error("union voting produced fewer values than intersection")
	}
}

func TestMetaDataOps(t *testing.T) {
	m := NewMetaData()
	m.Add(flow.DstPort, 80)
	m.Add(flow.DstPort, 443)
	m.Add(flow.SrcIP, 12345)
	if !m.Contains(flow.DstPort, 80) || m.Contains(flow.DstPort, 81) {
		t.Error("Contains wrong")
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	vals := m.Values(flow.DstPort)
	if len(vals) != 2 || vals[0] != 80 || vals[1] != 443 {
		t.Errorf("Values = %v", vals)
	}

	other := NewMetaData()
	other.Add(flow.DstPort, 80) // duplicate
	other.Add(flow.Bytes, 16384)
	m.Merge(other)
	if m.Count() != 4 {
		t.Errorf("Count after merge = %d", m.Count())
	}

	clone := m.Clone()
	clone.Add(flow.Proto, 6)
	if m.Contains(flow.Proto, 6) {
		t.Error("Clone is not deep")
	}
}

func TestMetaDataFlowMatching(t *testing.T) {
	m := NewMetaData()
	m.Add(flow.DstPort, 445)
	m.Add(flow.Bytes, 16384)

	scan := flow.Record{DstPort: 445, Bytes: 48}
	download := flow.Record{DstPort: 5554, Bytes: 16384}
	benign := flow.Record{DstPort: 80, Bytes: 100}

	if !m.MatchesFlow(&scan) || !m.MatchesFlow(&download) {
		t.Error("union must match flows hitting any value")
	}
	if m.MatchesFlow(&benign) {
		t.Error("union matched an unrelated flow")
	}
	// Intersection semantics: no flow carries both values.
	if m.MatchesFlowAll(&scan) || m.MatchesFlowAll(&download) {
		t.Error("intersection should match nothing here")
	}
	both := flow.Record{DstPort: 445, Bytes: 16384}
	if !m.MatchesFlowAll(&both) {
		t.Error("intersection must match a flow hitting all values")
	}
	if NewMetaData().MatchesFlowAll(&benign) {
		t.Error("empty meta-data must match nothing under intersection")
	}
}

func TestBankUnionAcrossFeatures(t *testing.T) {
	bank, err := NewBank(BankConfig{
		Features: []flow.FeatureKind{flow.DstPort, flow.Packets},
		Template: Config{Bins: 256, Clones: 3, Votes: 2, TrainIntervals: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(9)
	feed := func(n int, anomalous bool) BankResult {
		for i := 0; i < n; i++ {
			rec := flow.Record{
				DstPort: uint16(r.IntN(2000)),
				Packets: uint32(1 + r.IntN(30)),
			}
			if anomalous && i < n/3 {
				rec.DstPort = 31337
				rec.Packets = 2
			}
			bank.Observe(&rec)
		}
		return bank.EndInterval()
	}
	for i := 0; i < 20; i++ {
		if res := feed(4000, false); res.Alarm && i > 10 {
			t.Logf("benign alarm at %d (tolerated)", i)
		}
	}
	res := feed(6000, true)
	if !res.Alarm {
		t.Fatal("bank did not alarm on anomaly")
	}
	if len(res.PerFeature) != 2 {
		t.Fatalf("PerFeature size %d", len(res.PerFeature))
	}
	if !res.Meta.Contains(flow.DstPort, 31337) {
		t.Error("dstPort 31337 missing from bank meta-data")
	}
}

func TestBankDefaultFeatures(t *testing.T) {
	bank, err := NewBank(BankConfig{Template: Config{Bins: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bank.Detectors()) != 5 {
		t.Fatalf("default bank has %d detectors, want 5", len(bank.Detectors()))
	}
	feats := map[flow.FeatureKind]bool{}
	for _, d := range bank.Detectors() {
		feats[d.Config().Feature] = true
	}
	for _, f := range flow.DetectorFeatures {
		if !feats[f] {
			t.Errorf("feature %v missing from default bank", f)
		}
	}
}

func TestBankPropagatesConfigError(t *testing.T) {
	_, err := NewBank(BankConfig{Template: Config{Clones: 2, Votes: 5}})
	if err == nil {
		t.Fatal("bad template accepted")
	}
}

func TestEntropyMetricDetectsScan(t *testing.T) {
	// A scan disperses the dstIP distribution: entropy rises. The
	// entropy-metric detector must catch it just like the KL detector.
	cfg := Config{Feature: flow.DstIP, Bins: 256, Clones: 3, Votes: 2,
		TrainIntervals: 8, Metric: MetricEntropy}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(11)
	// Baseline: concentrated on few servers.
	gen := func(i int) uint64 { return uint64(r.IntN(50)) }
	for i := 0; i < 20; i++ {
		feedInterval(d, 4000, gen)
	}
	// Scan interval: 2000 extra flows to random addresses.
	res := feedInterval(d, 6000, func(i int) uint64 {
		if i < 2000 {
			return uint64(1e6 + r.IntN(1<<20))
		}
		return gen(i)
	})
	if !res.Alarm {
		t.Fatal("entropy detector missed the dispersion")
	}
}

func TestEntropyMetricDetectsFlood(t *testing.T) {
	// A flood concentrates the distribution: entropy falls, and the
	// absolute entropy distance still spikes.
	cfg := Config{Feature: flow.DstIP, Bins: 256, Clones: 3, Votes: 3,
		TrainIntervals: 8, Metric: MetricEntropy}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(12)
	gen := func(i int) uint64 { return uint64(r.IntN(5000)) }
	for i := 0; i < 20; i++ {
		feedInterval(d, 4000, gen)
	}
	res := feedInterval(d, 7000, func(i int) uint64 {
		if i < 3000 {
			return 424242 // the victim
		}
		return gen(i)
	})
	if !res.Alarm {
		t.Fatal("entropy detector missed the concentration")
	}
	found := false
	for _, v := range res.Meta {
		if v == 424242 {
			found = true
		}
	}
	if !found {
		t.Errorf("victim not in meta-data: %d values", len(res.Meta))
	}
}

func TestMetricDefaultIsKL(t *testing.T) {
	d, err := New(Config{Feature: flow.SrcIP})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().Metric != MetricKL {
		t.Error("default metric should be KL")
	}
}
