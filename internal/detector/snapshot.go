package detector

import (
	"fmt"

	"anomalyx/internal/histogram"
)

// Snapshot is the exported, plain-data state of a Detector: the open
// interval's clone histograms plus the full detection history (reference
// counts, KL series, first-difference samples, interval counter).
// Restoring a snapshot into a detector constructed from the same Config
// reproduces the original exactly — its subsequent reports are
// byte-identical to the original's, the wire package's round-trip
// guarantee. The snapshot shares no memory with the detector, and every
// slice is in a canonical order (clones in construction order, tracked
// values sorted ascending), so equal detector states yield deeply equal
// snapshots.
//
// Like histogram.Snapshot, a Snapshot carries state, not configuration:
// the receiving detector must be built from the same Config (features,
// bins, clones, seed, thresholds) for the restore to be meaningful. The
// wire protocol enforces this with a config digest in its handshake.
type Snapshot struct {
	// Clones holds the open interval's histogram state, one per clone in
	// construction order.
	Clones []histogram.Snapshot
	// Prev holds the previous interval's per-clone bin counts — the KL
	// reference distributions.
	Prev [][]uint64
	// KLPrev is the previous interval's KL distance per clone (for the
	// first difference).
	KLPrev []float64
	// HavePrev records whether Prev holds a complete interval; HaveKL
	// whether KLPrev holds a valid distance (needs two intervals).
	HavePrev bool
	HaveKL   bool
	// Diffs is the pooled first-difference history feeding the MAD
	// threshold, oldest first.
	Diffs []float64
	// Interval is the number of intervals closed so far.
	Interval int
}

// Snapshot captures the detector's full state. The result shares no
// memory with the detector.
func (d *Detector) Snapshot() Snapshot {
	s := Snapshot{
		Clones:   make([]histogram.Snapshot, len(d.cur)),
		Prev:     make([][]uint64, len(d.prev)),
		KLPrev:   append([]float64(nil), d.klPrev...),
		HavePrev: d.havePrev,
		HaveKL:   d.haveKL,
		Diffs:    append([]float64(nil), d.diffs...),
		Interval: d.interval,
	}
	for c, h := range d.cur {
		s.Clones[c] = h.Snapshot()
	}
	for c, prev := range d.prev {
		s.Prev[c] = append([]uint64(nil), prev...)
	}
	return s
}

// RestoreSnapshot replaces the detector's state with s. The detector
// must have been constructed with the snapshot's clone and bin counts;
// see Snapshot for the configuration-matching caveat.
func (d *Detector) RestoreSnapshot(s Snapshot) error {
	if len(s.Clones) != len(d.cur) || len(s.Prev) != len(d.prev) || len(s.KLPrev) != len(d.klPrev) {
		return fmt.Errorf("detector: restore snapshot with %d/%d/%d clones into detector with %d",
			len(s.Clones), len(s.Prev), len(s.KLPrev), len(d.cur))
	}
	for _, prev := range s.Prev {
		if len(prev) != d.cfg.Bins {
			return fmt.Errorf("detector: restore snapshot with %d reference bins into detector with %d", len(prev), d.cfg.Bins)
		}
	}
	for c, hs := range s.Clones {
		if err := d.cur[c].RestoreSnapshot(hs); err != nil {
			return err
		}
	}
	for c, prev := range s.Prev {
		copy(d.prev[c], prev)
	}
	copy(d.klPrev, s.KLPrev)
	d.havePrev = s.HavePrev
	d.haveKL = s.HaveKL
	d.diffs = append(d.diffs[:0], s.Diffs...)
	d.interval = s.Interval
	return nil
}

// ResetInterval discards the open interval's observations — every clone
// histogram resets — without touching the detection history (reference
// counts, KL series, threshold samples) or the interval counter. It is
// the post-drain step of the distributed agent path: an agent snapshots
// its open interval, ships it to the collector, and resets to accumulate
// the next interval while the collector owns detection.
func (d *Detector) ResetInterval() {
	for _, h := range d.cur {
		h.Reset()
	}
}

// DrainInterval snapshots the open interval's clone histograms and
// resets them, without touching — or copying — the detection history.
// It is Snapshot restricted to the fields an interval drain actually
// moves: the distributed agent path drains every boundary, and paying a
// deep copy of reference counts, KL series, and threshold samples that
// are all zero on an agent (it never closes detection) was pure waste.
func (d *Detector) DrainInterval() []histogram.Snapshot {
	clones := make([]histogram.Snapshot, len(d.cur))
	for c, h := range d.cur {
		clones[c] = h.Snapshot()
		h.Reset()
	}
	return clones
}

// AbsorbClones folds drained clone-histogram snapshots into the open
// interval additively — Absorb with the sibling's state in snapshot
// form, so a collector can merge a shipped interval without restoring
// it into a scratch detector first. clones must be in clone order and
// match the detector's clone count; the usual mergeable-sketch caveat
// applies (both sides built from the same Config and Seed).
func (d *Detector) AbsorbClones(clones []histogram.Snapshot) error {
	if len(clones) != len(d.cur) {
		return fmt.Errorf("detector: absorb %d clone snapshots into detector with %d clones", len(clones), len(d.cur))
	}
	for c, hs := range clones {
		if err := d.cur[c].MergeSnapshot(hs); err != nil {
			return err
		}
	}
	return nil
}

// BankSnapshot is the exported state of a Bank: one detector snapshot
// per monitored feature, in the bank's feature order.
type BankSnapshot struct {
	Detectors []Snapshot
}

// Snapshot captures every detector's state, in feature order. It locks
// the bank, so it must not run concurrently with an in-flight
// ObserveBatch from the same goroutine chain that would deadlock.
func (b *Bank) Snapshot() BankSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BankSnapshot{Detectors: make([]Snapshot, len(b.detectors))}
	for i, d := range b.detectors {
		s.Detectors[i] = d.Snapshot()
	}
	return s
}

// RestoreSnapshot replaces every detector's state with the snapshot's,
// in feature order. The bank must monitor the same number of features
// with the same detector parameters as the snapshot's source.
func (b *Bank) RestoreSnapshot(s BankSnapshot) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(s.Detectors) != len(b.detectors) {
		return fmt.Errorf("detector: restore bank snapshot with %d detectors into bank with %d",
			len(s.Detectors), len(b.detectors))
	}
	for i, d := range b.detectors {
		if err := d.RestoreSnapshot(s.Detectors[i]); err != nil {
			return err
		}
	}
	return nil
}

// DrainInterval snapshots and resets every detector's open interval in
// feature order (see Detector.DrainInterval), leaving detection history
// untouched and uncopied — the agent-path replacement for Snapshot +
// ResetInterval.
func (b *Bank) DrainInterval() [][]histogram.Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]histogram.Snapshot, len(b.detectors))
	for i, d := range b.detectors {
		out[i] = d.DrainInterval()
	}
	return out
}

// AbsorbInterval folds drained clone snapshots — one slice per detector
// in feature order, as DrainInterval returns them — into the open
// interval (see Detector.AbsorbClones).
func (b *Bank) AbsorbInterval(clones [][]histogram.Snapshot) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(clones) != len(b.detectors) {
		return fmt.Errorf("detector: absorb %d detector intervals into bank with %d detectors",
			len(clones), len(b.detectors))
	}
	for i, d := range b.detectors {
		if err := d.AbsorbClones(clones[i]); err != nil {
			return err
		}
	}
	return nil
}

// ResetInterval discards every detector's open interval (see
// Detector.ResetInterval); detection history is untouched.
func (b *Bank) ResetInterval() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.detectors {
		d.ResetInterval()
	}
}
