package detector

import (
	"fmt"
	"slices"

	"anomalyx/internal/flow"
	"anomalyx/internal/hash"
	"anomalyx/internal/histogram"
	"anomalyx/internal/stats"
)

// Config parameterizes one per-feature detector (Table III).
type Config struct {
	// Feature is the monitored traffic feature.
	Feature flow.FeatureKind
	// Bins is k = 2^m, the number of histogram bins (default 1024).
	Bins int
	// Clones is n, the number of histogram clones with independent hash
	// functions (default 3).
	Clones int
	// Votes is l: a feature value enters the meta-data when at least l
	// clones selected it (l=1 is the union of clones, l=n the
	// intersection; default 3).
	Votes int
	// Alpha is the one-sided alarm threshold multiplier on the robust
	// standard deviation of the KL first difference (default 3).
	Alpha float64
	// TrainIntervals is the minimum number of first-difference samples
	// required before the detector may raise alarms (default 12).
	TrainIntervals int
	// HistoryWindow caps the number of first-difference samples kept for
	// the MAD estimate (default 192 = two days of 15-minute intervals).
	HistoryWindow int
	// MaxRemoveBins bounds the iterative anomalous-bin identification
	// (default 32; ≤0 means unbounded).
	MaxRemoveBins int
	// Seed derives the clones' independent hash functions.
	Seed uint64
	// Metric selects the distribution-change measure: the paper's KL
	// distance (default) or the entropy distance of Table I's
	// entropy-based detectors.
	Metric MetricKind
}

// MetricKind selects the detector's distribution-change measure.
type MetricKind uint8

const (
	// MetricKL is the Kullback–Leibler distance of §II-C (default).
	MetricKL MetricKind = iota
	// MetricEntropy is the absolute entropy difference — the measure of
	// entropy-based detectors (Table I, [33]).
	MetricEntropy
)

// metricFunc resolves the configured measure.
func (c Config) metricFunc() histogram.Metric {
	if c.Metric == MetricEntropy {
		return histogram.EntropyDistance
	}
	return histogram.KL
}

// WithDefaults returns c with unset fields filled with the paper's
// defaults — the exact normalization New applies before construction.
// Exported so other packages can compare or digest *effective*
// configurations (the wire handshake hashes the defaulted config, so an
// explicit Bins: 1024 and an implicit zero digest identically).
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Defaults fills unset fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.Bins == 0 {
		c.Bins = 1024
	}
	if c.Clones == 0 {
		c.Clones = 3
	}
	if c.Votes == 0 {
		c.Votes = c.Clones
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	if c.TrainIntervals == 0 {
		c.TrainIntervals = 12
	}
	if c.HistoryWindow == 0 {
		c.HistoryWindow = 192
	}
	if c.MaxRemoveBins == 0 {
		c.MaxRemoveBins = 32
	}
	return c
}

func (c Config) validate() error {
	if !c.Feature.Valid() {
		return fmt.Errorf("detector: invalid feature %d", c.Feature)
	}
	if c.Bins < 2 {
		return fmt.Errorf("detector: need at least 2 bins, got %d", c.Bins)
	}
	if c.Clones < 1 {
		return fmt.Errorf("detector: need at least 1 clone, got %d", c.Clones)
	}
	if c.Votes < 1 || c.Votes > c.Clones {
		return fmt.Errorf("detector: votes l=%d out of range [1,%d]", c.Votes, c.Clones)
	}
	return nil
}

// CloneReport is the per-clone outcome of one interval.
type CloneReport struct {
	KL             float64                  // KL(current || previous interval)
	Diff           float64                  // first difference of the KL series
	Alarm          bool                     // Diff exceeded the threshold
	Identification histogram.Identification // set only when Alarm
	Values         []uint64                 // feature values in the identified anomalous bins
}

// Result is the outcome of one interval for one feature detector.
type Result struct {
	Feature   flow.FeatureKind
	Interval  int
	Alarm     bool    // at least one clone alarmed
	Threshold float64 // alpha * robust sigma, NaN-free; 0 while training
	Trained   bool    // enough history for a threshold
	Clones    []CloneReport
	// Meta holds the voted feature values (≥ Votes clones selected
	// them). Empty unless Alarm.
	Meta []uint64
}

// Detector monitors one traffic feature with n histogram clones and the
// previous-interval KL scheme of §II-C. It is not safe for concurrent
// use.
type Detector struct {
	cfg    Config
	metric histogram.Metric

	cur  []*histogram.Histogram // current-interval histograms, value-tracked
	prev [][]uint64             // previous-interval counts per clone

	klPrev   []float64 // previous KL per clone (for the first difference)
	havePrev bool      // prev holds a complete interval
	haveKL   bool      // klPrev holds a valid KL (needs two intervals)

	diffs    []float64 // history of first differences (all clones pooled)
	interval int

	// binValues is the scratch buffer for the anomalous-bin → value
	// mapping, reused across clones and intervals so the bin sweep
	// (histogram.AppendValuesInBins) allocates only when an alarm needs
	// more room than any previous one. Safe because the values are
	// copied into the report before the next clone overwrites them.
	binValues []uint64
}

// New builds a detector, applying defaults to unset Config fields.
func New(cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, metric: cfg.metricFunc()}
	d.cur = newCloneSet(cfg)
	for c := 0; c < cfg.Clones; c++ {
		d.prev = append(d.prev, make([]uint64, cfg.Bins))
	}
	d.klPrev = make([]float64, cfg.Clones)
	return d, nil
}

// newCloneSet builds the per-clone value-tracked histograms for cfg. The
// hash functions are derived from (Seed, Feature, clone) only, so two
// sets built from the same effective Config are interchangeable — the
// property the pipelined close's recycling freelist relies on.
func newCloneSet(cfg Config) []*histogram.Histogram {
	set := make([]*histogram.Histogram, cfg.Clones)
	for c := range set {
		fn := hash.New(cfg.Seed ^ uint64(cfg.Feature)<<32 ^ uint64(c)*0x9e3779b97f4a7c15)
		set[c] = histogram.New(cfg.Bins, fn, true)
	}
	return set
}

// Config returns the detector's effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe feeds one flow record into the current interval.
func (d *Detector) Observe(rec *flow.Record) {
	v := rec.Feature(d.cfg.Feature)
	for _, h := range d.cur {
		h.Add(v)
	}
}

// ObserveBatch feeds a batch of flow records into the current interval.
// It is equivalent to calling Observe on each record but amortizes the
// per-record call overhead.
func (d *Detector) ObserveBatch(recs []flow.Record) {
	for c := range d.cur {
		d.observeClone(c, recs)
	}
}

// observeClone feeds the batch into clone c's histogram only — the unit
// of work the parallel bank schedules on its worker pool.
func (d *Detector) observeClone(c int, recs []flow.Record) {
	h := d.cur[c]
	k := d.cfg.Feature
	for i := range recs {
		h.Add(recs[i].Feature(k))
	}
}

// Absorb folds other's in-progress interval into d and resets other's
// current-interval histograms, leaving other ready to accumulate the
// next interval. Only the open interval moves: other's interval history
// (previous-interval reference, KL series, threshold samples) is neither
// consulted nor modified, which is exactly the shard pattern — N
// detectors accumulate partitions of the stream in parallel, one primary
// detector absorbs the clones' histograms at the interval boundary and
// owns the detection state. Both detectors must share Feature, Bins,
// Clones and Seed (equal hash functions); Absorb returns an error
// otherwise.
func (d *Detector) Absorb(other *Detector) error {
	if other == d {
		return fmt.Errorf("detector: cannot absorb self")
	}
	if d.cfg.Feature != other.cfg.Feature {
		return fmt.Errorf("detector: absorb across features %v and %v", d.cfg.Feature, other.cfg.Feature)
	}
	if len(d.cur) != len(other.cur) {
		return fmt.Errorf("detector: absorb across clone counts %d and %d", len(d.cur), len(other.cur))
	}
	if d.cfg.Bins != other.cfg.Bins || d.cfg.Seed != other.cfg.Seed {
		return fmt.Errorf("detector: absorb across bins/seed (%d,%d) and (%d,%d)",
			d.cfg.Bins, d.cfg.Seed, other.cfg.Bins, other.cfg.Seed)
	}
	for c := range d.cur {
		d.cur[c].Merge(other.cur[c])
		other.cur[c].Reset()
	}
	return nil
}

// Threshold returns the current alarm threshold (alpha * robust sigma of
// the pooled first-difference history) and whether enough history exists.
// The history pools one sample per clone per interval, so training
// requires TrainIntervals full intervals.
func (d *Detector) Threshold() (float64, bool) {
	if len(d.diffs) < d.cfg.TrainIntervals*d.cfg.Clones {
		return 0, false
	}
	return d.cfg.Alpha * stats.RobustSigma(d.diffs), true
}

// EndInterval closes the current interval: computes per-clone KL
// distances and first differences, raises an alarm if any clone's
// difference exceeds the threshold, identifies anomalous bins, votes on
// feature values, and rotates the histograms. The previous interval
// becomes the new reference (§II-C: no training or recalibration).
func (d *Detector) EndInterval() Result { return d.FinishInterval(d.cur) }

// SwapInterval exchanges the current-interval histograms for repl — a
// reset clone set previously returned by SwapInterval (or nil, which
// allocates a fresh set) — and returns the set that was accumulating.
// This is the cheap synchronous half of a pipelined close: the caller
// drains the open interval here and runs the expensive detection math
// later via FinishInterval while new records flow into repl. The
// returned set must be passed to exactly one FinishInterval call, and
// FinishInterval calls must happen in swap order — the KL scheme is
// sequential (each interval is compared against the previous one).
func (d *Detector) SwapInterval(repl []*histogram.Histogram) []*histogram.Histogram {
	if repl == nil {
		repl = newCloneSet(d.cfg)
	}
	cur := d.cur
	d.cur = repl
	return cur
}

// FinishInterval runs the interval close against cur, a clone set drained
// by SwapInterval (EndInterval passes the live set directly). It computes
// the per-clone distances against the detector's history, rotates that
// history, and resets cur in place so the caller can recycle it. Calls
// must be sequential and in swap order; FinishInterval never touches
// d.cur, so it may run concurrently with Observe/ObserveBatch on the
// swapped-in set.
func (d *Detector) FinishInterval(cur []*histogram.Histogram) Result {
	res := Result{
		Feature:  d.cfg.Feature,
		Interval: d.interval,
		Clones:   make([]CloneReport, d.cfg.Clones),
	}
	threshold, trained := d.Threshold()
	res.Threshold = threshold
	res.Trained = trained

	votes := make(map[uint64]int)
	for c, h := range cur {
		rep := &res.Clones[c]
		if d.havePrev {
			rep.KL = d.metric(h.Counts(), d.prev[c])
			if d.haveKL {
				rep.Diff = rep.KL - d.klPrev[c]
				// One-sided test: only positive spikes alarm (§II-C).
				if trained && rep.Diff > threshold {
					rep.Alarm = true
					res.Alarm = true
					rep.Identification = histogram.IdentifyAnomalousBinsMetric(
						h.Counts(), d.prev[c], d.klPrev[c], threshold, d.cfg.MaxRemoveBins, d.metric)
					// One table sweep for all identified bins (grouped
					// in identification order, values ascending per
					// bin — the same concatenation the per-bin loop
					// produced). A value lands in exactly one bin per
					// clone, so each flagged value votes once here.
					d.binValues = h.AppendValuesInBins(d.binValues[:0], rep.Identification.Bins)
					rep.Values = append(rep.Values, d.binValues...)
					for _, v := range d.binValues {
						votes[v]++
					}
				}
			}
		}
	}

	if res.Alarm {
		for v, n := range votes {
			if n >= d.cfg.Votes {
				res.Meta = append(res.Meta, v)
			}
		}
		// Sort so results are deterministic regardless of map iteration
		// order — the parallel bank's byte-identical-merge contract.
		slices.Sort(res.Meta)
	}

	d.rotate(cur, res)
	return res
}

// rotate archives the interval accumulated in cur and prepares the next
// one, resetting cur's histograms in place.
func (d *Detector) rotate(cur []*histogram.Histogram, res Result) {
	for c, h := range cur {
		copy(d.prev[c], h.Counts())
		if d.havePrev {
			if d.haveKL {
				d.diffs = append(d.diffs, res.Clones[c].Diff)
			}
			d.klPrev[c] = res.Clones[c].KL
		}
		h.Reset()
	}
	if d.havePrev {
		d.haveKL = true
	}
	d.havePrev = true
	if w := d.cfg.HistoryWindow * d.cfg.Clones; len(d.diffs) > w {
		d.diffs = d.diffs[len(d.diffs)-w:]
	}
	d.interval++
}
