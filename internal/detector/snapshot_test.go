package detector

import (
	"fmt"
	"reflect"
	"testing"

	"anomalyx/internal/flow"
)

// snapTestRecords deterministically synthesizes one interval's records:
// a stable popular set plus an optional dstPort flood.
func snapTestRecords(interval, n int, flood bool) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr: uint32(i%97) + 1,
			DstAddr: uint32(i%61) + 1,
			SrcPort: uint16(i % 53),
			DstPort: uint16(i % 23),
			Packets: uint32(i%7) + 1,
			Start:   int64(interval) * 1000,
		}
		if flood && i%2 == 0 {
			recs[i].DstAddr, recs[i].DstPort = 42, 31337
			recs[i].Packets = 1
		}
	}
	return recs
}

func snapTestBankConfig() BankConfig {
	return BankConfig{
		Template: Config{Bins: 64, TrainIntervals: 3, Seed: 5},
		Workers:  1,
	}
}

// TestDetectorSnapshotRoundTrip: restoring a mid-stream snapshot into a
// fresh same-config detector reproduces its subsequent results exactly,
// including thresholds and alarms (the full history — prev counts, KL
// series, diff samples — must survive the trip).
func TestDetectorSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Feature: flow.DstPort, Bins: 64, TrainIntervals: 3, Seed: 5}
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		orig.ObserveBatch(snapTestRecords(i, 800, false))
		orig.EndInterval()
	}
	orig.ObserveBatch(snapTestRecords(6, 300, false)) // partial open interval

	s := orig.Snapshot()
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Snapshot(), s) {
		t.Fatal("restored detector re-snapshots differently")
	}
	for i := 6; i < 10; i++ {
		rest := snapTestRecords(i, 800, i == 7)
		if i == 6 {
			rest = rest[300:]
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		want := fmt.Sprintf("%+v", orig.EndInterval())
		got := fmt.Sprintf("%+v", restored.EndInterval())
		if got != want {
			t.Fatalf("interval %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestDetectorSnapshotRejectsShape: clone/bin mismatches error.
func TestDetectorSnapshotRejectsShape(t *testing.T) {
	d, err := New(Config{Feature: flow.DstPort, Bins: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveBatch(snapTestRecords(0, 100, false))
	s := d.Snapshot()

	other, err := New(Config{Feature: flow.DstPort, Bins: 64, Clones: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreSnapshot(s); err == nil {
		t.Error("restore across clone counts accepted")
	}
	narrow, err := New(Config{Feature: flow.DstPort, Bins: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := narrow.RestoreSnapshot(s); err == nil {
		t.Error("restore across bin counts accepted")
	}
	bad := s
	bad.Prev = [][]uint64{{1, 2}, {3}, {4}}
	if err := d.RestoreSnapshot(bad); err == nil {
		t.Error("restore with malformed reference counts accepted")
	}
}

// TestResetIntervalKeepsHistory: ResetInterval clears only the open
// interval — the detection history (and therefore subsequent
// thresholds) is untouched, while the cleared observations are gone.
func TestResetIntervalKeepsHistory(t *testing.T) {
	cfg := Config{Feature: flow.DstPort, Bins: 64, TrainIntervals: 3, Seed: 5}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		recs := snapTestRecords(i, 600, false)
		a.ObserveBatch(recs)
		b.ObserveBatch(recs)
		a.EndInterval()
		b.EndInterval()
	}
	// b additionally accumulates garbage that ResetInterval must wipe.
	b.ObserveBatch(snapTestRecords(99, 400, true))
	b.ResetInterval()
	recs := snapTestRecords(5, 600, false)
	a.ObserveBatch(recs)
	b.ObserveBatch(recs)
	want := fmt.Sprintf("%+v", a.EndInterval())
	got := fmt.Sprintf("%+v", b.EndInterval())
	if got != want {
		t.Fatalf("ResetInterval leaked state:\n got %s\nwant %s", got, want)
	}
}

// TestBankSnapshotRoundTrip: the bank-level wrappers snapshot and
// restore every detector in feature order; shape mismatches error.
func TestBankSnapshotRoundTrip(t *testing.T) {
	orig, err := NewBank(snapTestBankConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for i := 0; i < 5; i++ {
		orig.ObserveBatch(snapTestRecords(i, 700, false))
		orig.EndInterval()
	}
	orig.ObserveBatch(snapTestRecords(5, 250, false))

	s := orig.Snapshot()
	if len(s.Detectors) != len(orig.Detectors()) {
		t.Fatalf("snapshot has %d detectors, bank %d", len(s.Detectors), len(orig.Detectors()))
	}
	restored, err := NewBank(snapTestBankConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 9; i++ {
		rest := snapTestRecords(i, 700, i == 6)
		if i == 5 {
			rest = rest[250:]
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		want := fmt.Sprintf("%+v", orig.EndInterval())
		got := fmt.Sprintf("%+v", restored.EndInterval())
		if got != want {
			t.Fatalf("interval %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}

	small, err := NewBank(BankConfig{
		Features: []flow.FeatureKind{flow.SrcIP},
		Template: snapTestBankConfig().Template,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if err := small.RestoreSnapshot(s); err == nil {
		t.Error("restore across feature counts accepted")
	}

	// Bank-level ResetInterval wipes the open interval of every
	// detector (history stays — see TestResetIntervalKeepsHistory): the
	// re-snapshot shows empty clone histograms.
	restored.ObserveBatch(snapTestRecords(50, 300, true))
	restored.ResetInterval()
	for di, ds := range restored.Snapshot().Detectors {
		for ci, hs := range ds.Clones {
			if hs.Total != 0 {
				t.Fatalf("detector %d clone %d still holds %d observations after ResetInterval",
					di, ci, hs.Total)
			}
		}
	}
}
