package detector

import (
	"reflect"
	"sync"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// testBatch synthesizes one interval's worth of flows (deterministic in
// the rand seed) with enough records to cross minParallelBatch.
func testBatch(r *stats.Rand, n int) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
		}
	}
	return recs
}

// TestBankParallelMatchesSequential verifies the deterministic-merge
// contract: the parallel bank produces results identical to the
// sequential path on the same stream, including alarming intervals.
func TestBankParallelMatchesSequential(t *testing.T) {
	tmpl := Config{Bins: 256, TrainIntervals: 4, Seed: 11}
	seq, err := NewBank(BankConfig{Template: tmpl, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewBank(BankConfig{Template: tmpl, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	r := stats.NewRand(42)
	alarmed := false
	for interval := 0; interval < 10; interval++ {
		recs := testBatch(r, 4000)
		if interval == 9 {
			// A dstPort flood in the final interval forces alarms so the
			// identification + voting path is compared too.
			flood := make([]flow.Record, 2000)
			for i := range flood {
				flood[i] = flow.Record{
					SrcAddr: uint32(r.IntN(1 << 28)), DstAddr: 42,
					SrcPort: uint16(r.IntN(60000)), DstPort: 31337,
					Protocol: 6, Packets: 1, Bytes: 40,
				}
			}
			recs = append(recs, flood...)
		}
		for _, rec := range recs {
			seq.Observe(&rec)
		}
		par.ObserveBatch(recs)
		sres := seq.EndInterval()
		pres := par.EndInterval()
		if !reflect.DeepEqual(sres, pres) {
			t.Fatalf("interval %d: parallel result diverged\nseq: %+v\npar: %+v", interval, sres, pres)
		}
		if sres.Alarm {
			alarmed = true
		}
	}
	if !alarmed {
		t.Error("no interval alarmed; flood comparison not exercised")
	}
}

// TestBankConcurrentObserveBatch drives ObserveBatch from many
// goroutines at once (run under -race). Histogram updates commute, so
// the end state must match a single-goroutine feed of the same batches.
func TestBankConcurrentObserveBatch(t *testing.T) {
	tmpl := Config{Bins: 128, Seed: 7}
	ref, err := NewBank(BankConfig{Template: tmpl, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewBank(BankConfig{Template: tmpl, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	const producers = 8
	batches := make([][]flow.Record, producers)
	r := stats.NewRand(3)
	for i := range batches {
		batches[i] = testBatch(r, 1000)
	}
	for _, recs := range batches {
		ref.ObserveBatch(recs)
	}

	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func(recs []flow.Record) {
			defer wg.Done()
			conc.ObserveBatch(recs)
		}(batches[i])
	}
	wg.Wait()

	if got, want := conc.EndInterval(), ref.EndInterval(); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent feed diverged from sequential feed\ngot:  %+v\nwant: %+v", got, want)
	}
}
