// Package detector implements the histogram-based anomaly detectors of
// §II-C/D: per-feature KL detectors over cloned randomized histograms,
// the MAD-based alarm threshold on the first difference of the KL time
// series, and the l-of-n voting that turns anomalous bins into alarm
// meta-data.
//
// Determinism: histogram updates commute and each (detector, clone) is
// owned by one worker task, so parallel ingestion needs no ordering;
// everything read out — voted meta-data values, KL series, snapshots —
// is sorted at the boundary, and Bank merges absorb sibling state in
// fixed feature order (docs/ARCHITECTURE.md "The determinism
// contract").
package detector

import (
	"sort"

	"anomalyx/internal/flow"
)

// MetaData is the alarm annotation the extraction stage consumes: for
// each traffic feature, the set of feature values the detectors associate
// with the anomaly (Table I / §II-A). Prefiltering keeps every flow that
// matches *any* entry — the union semantics the paper argues for.
type MetaData map[flow.FeatureKind]map[uint64]struct{}

// NewMetaData returns an empty annotation.
func NewMetaData() MetaData { return make(MetaData) }

// Add inserts value v for feature kind k.
func (m MetaData) Add(k flow.FeatureKind, v uint64) {
	set := m[k]
	if set == nil {
		set = make(map[uint64]struct{})
		m[k] = set
	}
	set[v] = struct{}{}
}

// Merge adds every entry of other into m (the union of detector views,
// Fig. 2/3).
func (m MetaData) Merge(other MetaData) {
	//detlint:ok maprange -- set union commutes; no iteration order reaches a report (contract: histogram updates commute)
	for k, vals := range other {
		//detlint:ok maprange -- inserts into a set; order-insensitive
		for v := range vals {
			m.Add(k, v)
		}
	}
}

// Contains reports whether value v is annotated for feature kind k.
func (m MetaData) Contains(k flow.FeatureKind, v uint64) bool {
	_, ok := m[k][v]
	return ok
}

// MatchesFlow reports whether any feature value of rec is annotated —
// the union prefilter predicate.
func (m MetaData) MatchesFlow(rec *flow.Record) bool {
	//detlint:ok maprange -- existence test over a fixed record; any-match is order-insensitive
	for k, vals := range m {
		if _, ok := vals[rec.Feature(k)]; ok {
			return true
		}
	}
	return false
}

// MatchesFlowAll reports whether rec matches an annotated value in every
// annotated feature — the intersection semantics the paper shows to be
// inferior (§II-A); kept for the comparison baseline.
func (m MetaData) MatchesFlowAll(rec *flow.Record) bool {
	if len(m) == 0 {
		return false
	}
	//detlint:ok maprange -- existence test over a fixed record; all-match is order-insensitive
	for k, vals := range m {
		if _, ok := vals[rec.Feature(k)]; !ok {
			return false
		}
	}
	return true
}

// Values returns the annotated values for feature kind k in ascending
// order.
func (m MetaData) Values(k flow.FeatureKind) []uint64 {
	set := m[k]
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the total number of (feature, value) annotations.
func (m MetaData) Count() int {
	n := 0
	//detlint:ok maprange -- summing set sizes commutes
	for _, set := range m {
		n += len(set)
	}
	return n
}

// Clone returns a deep copy of m.
func (m MetaData) Clone() MetaData {
	out := NewMetaData()
	out.Merge(m)
	return out
}
