package flowcache

import (
	"testing"

	"anomalyx/internal/flow"
)

func pkt(ts int64, sport uint16, flags uint8) Packet {
	return Packet{
		SrcAddr: 1, DstAddr: 2, SrcPort: sport, DstPort: 80,
		Protocol: flow.ProtoTCP, TCPFlags: flags, Bytes: 100, TsMs: ts,
	}
}

func TestAggregation(t *testing.T) {
	c := New(Config{})
	for i := int64(0); i < 5; i++ {
		if got := c.Observe(pkt(1000+i*10, 5555, flow.FlagACK)); len(got) != 0 {
			t.Fatalf("unexpected export: %v", got)
		}
	}
	recs := c.Flush()
	if len(recs) != 1 {
		t.Fatalf("flushed %d flows, want 1", len(recs))
	}
	r := recs[0]
	if r.Packets != 5 || r.Bytes != 500 {
		t.Errorf("packets=%d bytes=%d", r.Packets, r.Bytes)
	}
	if r.Start != 1000 || r.End != 1040 {
		t.Errorf("start=%d end=%d", r.Start, r.End)
	}
}

func TestDistinctTuplesDistinctFlows(t *testing.T) {
	c := New(Config{})
	c.Observe(pkt(0, 1111, 0))
	c.Observe(pkt(0, 2222, 0))
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if recs := c.Flush(); len(recs) != 2 {
		t.Fatalf("flushed %d", len(recs))
	}
}

func TestIdleTimeout(t *testing.T) {
	c := New(Config{IdleTimeoutMs: 1000})
	c.Observe(pkt(0, 1111, 0))
	// A packet for another flow 1500ms later expires the first.
	out := c.Observe(pkt(1500, 2222, 0))
	if len(out) != 1 || out[0].SrcPort != 1111 {
		t.Fatalf("idle expiry: %v", out)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestActiveTimeoutSplitsLongFlow(t *testing.T) {
	c := New(Config{ActiveTimeoutMs: 1000, IdleTimeoutMs: 10000})
	var exported []flow.Record
	for ts := int64(0); ts <= 2500; ts += 100 {
		exported = append(exported, c.Observe(pkt(ts, 1111, flow.FlagACK))...)
	}
	exported = append(exported, c.Flush()...)
	// 0..2500 with active timeout 1000 → split into 3 records.
	if len(exported) != 3 {
		t.Fatalf("long flow split into %d records, want 3", len(exported))
	}
	var pkts uint32
	for _, r := range exported {
		pkts += r.Packets
	}
	if pkts != 26 {
		t.Errorf("total packets %d, want 26 (no loss across splits)", pkts)
	}
}

func TestFINExportsImmediately(t *testing.T) {
	c := New(Config{})
	c.Observe(pkt(0, 1111, flow.FlagSYN))
	c.Observe(pkt(10, 1111, flow.FlagACK))
	out := c.Observe(pkt(20, 1111, flow.FlagFIN|flow.FlagACK))
	if len(out) != 1 {
		t.Fatalf("FIN export: %v", out)
	}
	r := out[0]
	if r.Packets != 3 {
		t.Errorf("packets = %d", r.Packets)
	}
	if r.TCPFlags&flow.FlagSYN == 0 || r.TCPFlags&flow.FlagFIN == 0 {
		t.Errorf("flags not ORed: %08b", r.TCPFlags)
	}
	if c.Len() != 0 {
		t.Error("flow still cached after FIN")
	}
}

func TestRSTExportsImmediately(t *testing.T) {
	c := New(Config{})
	out := c.Observe(pkt(0, 1111, flow.FlagRST))
	if len(out) != 1 {
		t.Fatalf("RST export: %v", out)
	}
}

func TestUDPFlagsDoNotTerminate(t *testing.T) {
	c := New(Config{})
	p := Packet{SrcAddr: 1, DstAddr: 2, SrcPort: 53, DstPort: 53,
		Protocol: flow.ProtoUDP, TCPFlags: flow.FlagFIN, Bytes: 60, TsMs: 0}
	if out := c.Observe(p); len(out) != 0 {
		t.Error("UDP flow terminated by flag bits")
	}
}

func TestMaxEntriesEvictsOldest(t *testing.T) {
	c := New(Config{MaxEntries: 2, IdleTimeoutMs: 1 << 40})
	c.Observe(pkt(0, 1111, 0))
	c.Observe(pkt(1, 2222, 0))
	out := c.Observe(pkt(2, 3333, 0))
	if len(out) != 1 || out[0].SrcPort != 1111 {
		t.Fatalf("eviction: %v", out)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLRUOrderFollowsUpdates(t *testing.T) {
	c := New(Config{MaxEntries: 2, IdleTimeoutMs: 1 << 40})
	c.Observe(pkt(0, 1111, 0))
	c.Observe(pkt(1, 2222, 0))
	c.Observe(pkt(2, 1111, 0)) // refresh 1111; 2222 becomes oldest
	out := c.Observe(pkt(3, 3333, 0))
	if len(out) != 1 || out[0].SrcPort != 2222 {
		t.Fatalf("LRU eviction picked %v", out)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ActiveTimeoutMs != 30*60*1000 || cfg.IdleTimeoutMs != 15000 || cfg.MaxEntries != 65536 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestFlushEmpty(t *testing.T) {
	c := New(Config{})
	if out := c.Flush(); len(out) != 0 {
		t.Errorf("empty flush: %v", out)
	}
}
