// Package flowcache implements the flow-metering process that produces
// NetFlow records from packets — the upstream half of the paper's data
// path. The SWITCH routers meter packets into unidirectional flow
// records keyed by the 5-tuple and export a flow when it goes idle, when
// it exceeds the active timeout, or when the cache is full (the standard
// NetFlow expiry semantics). The synthetic trace generator produces flow
// records directly; this package exists so that the pipeline can also be
// fed from packet-level input, and so that metering effects (timeout
// splitting of long flows) can be studied.
//
// Determinism: expiry is driven purely by packet timestamps and the
// configured timeouts — no wall clock — and a full cache evicts in
// least-recently-used order, so the same packet sequence always meters
// into the same flow-record sequence.
package flowcache

import (
	"container/list"

	"anomalyx/internal/flow"
)

// Packet is the per-packet observation the meter consumes.
type Packet struct {
	SrcAddr  uint32
	DstAddr  uint32
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
	TCPFlags uint8
	Bytes    uint32
	// TsMs is the packet timestamp in Unix milliseconds. Packets must be
	// fed in non-decreasing timestamp order.
	TsMs int64
}

// Config carries the metering parameters (Cisco NetFlow defaults:
// 30 min active, 15 s inactive).
type Config struct {
	// ActiveTimeoutMs exports a flow still receiving packets after this
	// duration, restarting the record (default 30 min).
	ActiveTimeoutMs int64
	// IdleTimeoutMs exports a flow that has not seen a packet for this
	// duration (default 15 s).
	IdleTimeoutMs int64
	// MaxEntries bounds the cache; the least recently updated flow is
	// force-exported when full (default 65536).
	MaxEntries int
}

func (c Config) withDefaults() Config {
	if c.ActiveTimeoutMs == 0 {
		c.ActiveTimeoutMs = 30 * 60 * 1000
	}
	if c.IdleTimeoutMs == 0 {
		c.IdleTimeoutMs = 15 * 1000
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 65536
	}
	return c
}

// key is the unidirectional 5-tuple.
type key struct {
	src, dst     uint32
	sport, dport uint16
	proto        uint8
}

type entry struct {
	key  key
	rec  flow.Record
	elem *list.Element // position in the LRU list (front = oldest)
}

// Cache meters packets into flow records.
type Cache struct {
	cfg     Config
	entries map[key]*entry
	lru     *list.List // of *entry, least-recently-updated first
}

// New builds a flow cache.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:     cfg.withDefaults(),
		entries: make(map[key]*entry),
		lru:     list.New(),
	}
}

// Len returns the number of active (unexported) flows.
func (c *Cache) Len() int { return len(c.entries) }

// Observe meters one packet and returns any flow records expired by it
// (idle timeouts are evaluated lazily against the packet's timestamp).
func (c *Cache) Observe(p Packet) []flow.Record {
	out := c.expireIdle(p.TsMs)

	k := key{p.SrcAddr, p.DstAddr, p.SrcPort, p.DstPort, p.Protocol}
	e, ok := c.entries[k]
	if ok && p.TsMs-e.rec.Start >= c.cfg.ActiveTimeoutMs {
		// Active timeout: export and restart the record.
		out = append(out, e.rec)
		c.remove(e)
		ok = false
	}
	if !ok {
		if len(c.entries) >= c.cfg.MaxEntries {
			// Cache full: force-export the least recently updated flow.
			oldest := c.lru.Front().Value.(*entry)
			out = append(out, oldest.rec)
			c.remove(oldest)
		}
		e = &entry{key: k, rec: flow.Record{
			SrcAddr: p.SrcAddr, DstAddr: p.DstAddr,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Protocol: p.Protocol,
			Start:    p.TsMs, End: p.TsMs,
		}}
		e.elem = c.lru.PushBack(e)
		c.entries[k] = e
	}
	e.rec.Packets++
	e.rec.Bytes += uint64(p.Bytes)
	e.rec.TCPFlags |= p.TCPFlags
	e.rec.End = p.TsMs
	c.lru.MoveToBack(e.elem)

	// TCP FIN/RST terminate the flow immediately (standard expiry).
	if p.Protocol == flow.ProtoTCP && p.TCPFlags&(flow.FlagFIN|flow.FlagRST) != 0 {
		out = append(out, e.rec)
		c.remove(e)
	}
	return out
}

// expireIdle exports every flow idle at time nowMs.
func (c *Cache) expireIdle(nowMs int64) []flow.Record {
	var out []flow.Record
	for {
		front := c.lru.Front()
		if front == nil {
			break
		}
		e := front.Value.(*entry)
		if nowMs-e.rec.End < c.cfg.IdleTimeoutMs {
			break // LRU order: everything behind is fresher
		}
		out = append(out, e.rec)
		c.remove(e)
	}
	return out
}

// Flush exports every remaining flow (end of input).
func (c *Cache) Flush() []flow.Record {
	out := make([]flow.Record, 0, len(c.entries))
	for {
		front := c.lru.Front()
		if front == nil {
			break
		}
		e := front.Value.(*entry)
		out = append(out, e.rec)
		c.remove(e)
	}
	return out
}

func (c *Cache) remove(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}
