// Package engine provides a channel-based streaming front end for the
// anomaly-extraction pipeline: callers submit flow records as they
// arrive (from a collector socket, a trace file, a message queue) and
// receive one Report per measurement interval on a channel.
//
// The engine shards the incoming stream into measurement intervals by
// flow start time — the boundary grid is aligned to IntervalLen, like a
// router's export clock. Boundary crossings are detected on the submit
// side, so SubmitBatch can synchronously return how many intervals a
// batch closed (lockstep consumers need no boundary arithmetic of their
// own), while the processing goroutine just executes the resulting
// record/cut stream: records are grouped into batches to amortize
// per-record pipeline overhead via ObserveBatch, and each cut closes an
// interval (detection + extraction). Both channels are bounded, so a
// slow consumer exerts backpressure all the way back to Submit instead
// of growing an unbounded queue. With Config.Shards > 1 the engine
// drives a hash-partitioned shard.ShardedPipeline instead of a single
// pipeline, parallelizing ingestion across shards with a deterministic
// cross-shard merge at each interval close.
//
//	eng, _ := engine.New(engine.Config{IntervalLen: 15 * time.Minute})
//	go func() {
//		for rep := range eng.Reports() {
//			handle(rep)
//		}
//	}()
//	for recs := range source {
//		eng.SubmitBatch(recs)
//	}
//	if err := eng.Close(); err != nil {
//		log.Fatal(err)
//	}
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
)

// Config parameterizes a streaming engine.
type Config struct {
	// Pipeline configures the underlying extraction pipeline; zero-value
	// fields take the paper's defaults (see core.Config).
	Pipeline core.Config
	// Shards selects hash-partitioned multi-pipeline sharding: when > 1
	// the engine drives a shard.ShardedPipeline of that many pipelines
	// (flows partitioned by the stable hash of the flow key, reports
	// merged deterministically at each interval close). 0 or 1 runs a
	// single pipeline.
	Shards int
	// IntervalLen is the measurement-interval length Delta (default the
	// paper's 15 minutes). Interval boundaries are aligned to multiples
	// of IntervalLen from the epoch, seeded by the first record.
	IntervalLen time.Duration
	// BatchSize is the number of Submit records grouped into one
	// ObserveBatch call (default 512). SubmitBatch batches bypass this
	// grouping — they are already batches.
	BatchSize int
	// Buffer is the input-channel capacity — the backpressure bound.
	// Submit blocks once Buffer messages are queued (default 8192).
	Buffer int
	// PipelineDepth is the maximum number of measurement intervals the
	// engine may have open at once: the interval accumulating records,
	// plus up to PipelineDepth-1 drained closes finishing (detection +
	// extraction) on an asynchronous close worker. 1 (the default) runs
	// every close inline on the processing goroutine — today's fully
	// synchronous behavior. Depths > 1 overlap the expensive close with
	// the next interval's ingestion: each cut swaps the closed interval's
	// state out of the hot path in O(1) and hands it to the worker, which
	// finishes closes strictly in boundary order, so reports are
	// byte-identical to the synchronous path (see PipelinedSink). Once
	// PipelineDepth-1 closes are in flight, the next cut blocks — close
	// backpressure propagates to Submit exactly like full input buffers.
	// Depths > 1 require a sink implementing PipelinedSink (the built-in
	// pipeline and sharded backends do); for other sinks the engine falls
	// back to the synchronous close.
	PipelineDepth int
}

func (c Config) withDefaults() Config {
	if c.IntervalLen <= 0 {
		c.IntervalLen = 15 * time.Minute
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	return c
}

// Sink is the extraction backend an engine drives: a single
// core.Pipeline, a hash-partitioned shard.ShardedPipeline, or a custom
// backend injected with NewWithSink (the wire package's distributed
// agent, which ships each interval to a remote collector instead of
// closing detection locally). All accumulate observed flows into the
// current measurement interval and close it on EndInterval.
type Sink interface {
	ObserveBatch([]flow.Record)
	EndInterval() (*core.Report, error)
	Close()
}

// BoundarySink is an optional Sink extension for backends that need to
// know *which* interval is closing: EndIntervalAt receives the grid end
// of the closing interval (Unix milliseconds — the boundary the records
// crossed, or the in-progress interval's boundary for the final flush at
// Close; 0 when the stream held no records at all). The engine calls
// EndIntervalAt instead of EndInterval when the sink implements it. The
// distributed agent uses this to tag shipped snapshots with an absolute
// boundary, so a collector can merge intervals from agents whose streams
// started or ended at different times.
type BoundarySink interface {
	Sink
	EndIntervalAt(boundary int64) (*core.Report, error)
}

// PipelinedSink is an optional Sink extension for backends whose
// interval close splits into a cheap synchronous drain and a deferred
// finish. BeginClose atomically swaps the open interval's state (clone
// histograms + flow buffer) out of the hot path and returns a
// core.PendingClose; the engine's close worker calls Finish — the
// expensive detection + extraction — while the next interval's records
// keep flowing. Finishes run strictly in drain order on one worker, the
// ordering the sequential KL scheme requires, so reports stay
// byte-identical to the synchronous path. core.Pipeline and
// shard.ShardedPipeline implement it; the engine uses it only when
// Config.PipelineDepth > 1.
type PipelinedSink interface {
	Sink
	BeginClose() (*core.PendingClose, error)
}

// msg is one unit of the submit→process stream: a single record, a
// pre-formed batch, or an interval-cut marker. Cuts are generated on the
// submit side, so their position in the channel order is authoritative —
// the processor closes intervals exactly where the submitters crossed
// the boundary grid. Consecutive cuts collapse into one counted message:
// a quiet gap spanning thousands of empty intervals costs one channel
// slot, so a lockstep consumer (submit, then read the returned number of
// reports) cannot wedge the input buffer no matter how long the gap.
type msg struct {
	rec      flow.Record
	recs     []flow.Record // batch; nil for single-record and cut messages
	cuts     int           // close this many intervals; no payload
	boundary int64         // grid end of the first closed interval (cut messages only)
}

// Engine is the streaming front end. Submit and SubmitBatch may be
// called from multiple goroutines; Reports delivers interval reports in
// interval order.
//
// On a pipeline error the engine settles Err, closes Reports
// immediately — even while producers are still submitting — and
// silently discards further input until Close, so a consumer on a live
// stream learns about the failure right away.
type Engine struct {
	cfg  Config
	sink Sink
	p    *core.Pipeline // the unsharded pipeline; nil when Shards > 1

	// submitMu guards the boundary grid and orders messages from
	// concurrent producers into the input channel.
	submitMu sync.Mutex
	boundary int64 // end of the current interval; meaningless until seeded
	// seeded records whether the first record has seeded the boundary
	// grid. It is an explicit flag rather than a boundary==0 sentinel
	// because 0 is a legitimate grid boundary: a pre-epoch stream (e.g.
	// starting at -500 ms) has its first interval end exactly at 0.
	seeded bool

	in   chan msg
	out  chan *core.Report
	fin  chan struct{} // closed once err is settled, before out closes
	done chan struct{} // closed when the processing goroutine exits

	closeOnce sync.Once
	err       error // settled before fin closes
}

// New builds an engine and starts its processing goroutine.
func New(cfg Config) (*Engine, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg = e.cfg; cfg.Shards > 1 {
		sp, err := shard.New(shard.Config{Shards: cfg.Shards, Pipeline: cfg.Pipeline})
		if err != nil {
			return nil, err
		}
		e.sink = sp
	} else {
		p, err := core.New(cfg.Pipeline)
		if err != nil {
			return nil, err
		}
		e.p, e.sink = p, p
	}
	go e.run()
	return e, nil
}

// NewWithSink builds an engine around a caller-provided extraction
// backend and starts its processing goroutine. The engine owns the
// stream mechanics — interval sharding by flow start time, batching,
// backpressure — while the sink decides what an interval close means;
// the wire package's distributed agent injects a sink that drains its
// pipeline's open interval and ships it to a collector. cfg.Pipeline and
// cfg.Shards are ignored (the sink already embodies them); the engine
// Closes the sink when it is Closed, and Pipeline() returns nil.
func NewWithSink(cfg Config, sink Sink) (*Engine, error) {
	if sink == nil {
		return nil, fmt.Errorf("engine: nil sink")
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	e.sink = sink
	go e.run()
	return e, nil
}

// newEngine validates cfg and builds the channel plumbing; the caller
// sets the sink and starts run.
func newEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.IntervalLen < time.Millisecond {
		// Flow timestamps are in milliseconds; anything finer truncates
		// to a zero-length boundary grid.
		return nil, fmt.Errorf("engine: interval length %v below 1ms resolution", cfg.IntervalLen)
	}
	if cfg.Shards < 0 {
		// Reject rather than silently running unsharded: shard.New
		// errors on the same input, and the two entry points should
		// agree.
		return nil, fmt.Errorf("engine: negative shard count %d", cfg.Shards)
	}
	return &Engine{
		cfg:  cfg,
		in:   make(chan msg, cfg.Buffer),
		out:  make(chan *core.Report, 16),
		fin:  make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// BoundaryAfter returns the end of the measurement interval containing
// timestamp ms (Unix milliseconds) on the engine's boundary grid —
// intervals are aligned to multiples of IntervalLen from the epoch, on
// both sides of it. The modulo is floored, not truncated: Go's `%`
// follows the dividend's sign, so `ms - ms%step + step` would round
// pre-epoch timestamps toward zero and misalign their grid (with a 1 s
// interval, BoundaryAfter(-500) must be 0, not 1000).
func (e *Engine) BoundaryAfter(ms int64) int64 {
	step := e.cfg.IntervalLen.Milliseconds()
	rem := ms % step
	if rem < 0 {
		rem += step
	}
	return ms - rem + step
}

// Sink exposes the extraction backend (read-only use; mutating it
// concurrently with a running engine races with the processing
// goroutine).
func (e *Engine) Sink() Sink { return e.sink }

// Pipeline exposes the underlying unsharded extraction pipeline; it is
// nil when the engine runs sharded (Config.Shards > 1) or around an
// injected sink (NewWithSink) — use Sink then.
func (e *Engine) Pipeline() *core.Pipeline { return e.p }

// maxGapIntervals bounds how many empty intervals one timestamp gap may
// close. A single corrupt or far-future flow timestamp would otherwise
// make the processor grind through millions of empty detection rounds
// and flood Reports; past the bound the engine treats the gap as a
// clock jump instead — close the current interval once and re-seed the
// boundary grid from the new timestamp, exactly as it was seeded by the
// first record.
const maxGapIntervals = 4096

// advanceLocked seeds or advances the boundary grid past timestamp ts,
// enqueueing one counted cut marker covering every crossed boundary; it
// returns the number of cuts. submitMu must be held.
func (e *Engine) advanceLocked(ts int64) int {
	if !e.seeded {
		e.seeded = true
		e.boundary = e.BoundaryAfter(ts)
		return 0
	}
	if ts < e.boundary {
		return 0
	}
	step := e.cfg.IntervalLen.Milliseconds()
	first := e.boundary // grid end of the first interval this run closes
	n := (ts-e.boundary)/step + 1
	if n > maxGapIntervals {
		// Clock jump: one cut for the interval in progress, fresh grid.
		e.boundary = e.BoundaryAfter(ts)
		n = 1
	} else {
		e.boundary += n * step
	}
	e.in <- msg{cuts: int(n), boundary: first}
	return int(n)
}

// Submit queues one flow record, blocking when the input buffer is full
// (backpressure). It must not be called after Close.
func (e *Engine) Submit(rec flow.Record) {
	e.submitMu.Lock()
	defer e.submitMu.Unlock()
	e.advanceLocked(rec.Start)
	e.in <- msg{rec: rec}
}

// SubmitBatch queues a batch of flow records in one step — collectors
// that already batch skip the per-record channel overhead — and returns
// the number of measurement intervals the batch closed: boundary
// crossings are detected here, on the submit side, so lockstep consumers
// can read exactly that many reports without mirroring the engine's
// boundary arithmetic. The records are copied; the caller may reuse
// recs. Like Submit it blocks for backpressure and must not be called
// after Close. The returned error is the pipeline error that has
// terminated the engine, if any (further input is discarded once it is
// set); the cut count is still returned for bookkeeping.
//
// A lockstep consumer may read exactly intervalsClosed reports after
// each call from the same goroutine: SubmitBatch enqueues at most two
// messages per record that crosses an interval boundary (gaps of any
// length collapse into one counted cut), so with the default Buffer a
// single batch would need thousands of boundary-crossing records to
// fill the input channel before returning. Split such batches — or
// consume reports concurrently — if records are that sparse.
func (e *Engine) SubmitBatch(recs []flow.Record) (intervalsClosed int, err error) {
	if len(recs) == 0 {
		return 0, e.Err()
	}
	buf := make([]flow.Record, len(recs))
	copy(buf, recs)
	e.submitMu.Lock()
	defer e.submitMu.Unlock()
	closed := 0
	start := 0
	for i := range buf {
		if !e.seeded || buf[i].Start >= e.boundary {
			// Flush the records before the crossing, then cut.
			if i > start {
				e.in <- msg{recs: buf[start:i]}
				start = i
			}
			closed += e.advanceLocked(buf[i].Start)
		}
	}
	if start < len(buf) {
		e.in <- msg{recs: buf[start:]}
	}
	return closed, e.Err()
}

// Reports returns the channel of per-interval reports. It is closed
// after the final interval has been emitted (following Close) or after
// a pipeline error; Err reports the cause in the latter case.
func (e *Engine) Reports() <-chan *core.Report { return e.out }

// Close ends the stream: the current partial interval is flushed, its
// report emitted, and the Reports channel closed. Close blocks until the
// processing goroutine has drained, releases the pipeline's worker
// pools, and returns the first pipeline error, if any. It is idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() { close(e.in) })
	<-e.done
	e.sink.Close()
	return e.err
}

// Err returns the pipeline error that terminated the engine, if any.
// It is meaningful once the Reports channel has closed: the error is
// settled before Reports closes, so a consumer that observed the close
// always sees the cause.
func (e *Engine) Err() error {
	select {
	case <-e.fin:
		return e.err
	default:
		return nil
	}
}

// run is the processing goroutine: process the stream, settle the
// error, close Reports, and keep draining input until the producers
// Close so a failed pipeline never blocks a live stream.
func (e *Engine) run() {
	defer close(e.done)
	e.err = e.process()
	close(e.fin)
	close(e.out)
	if e.err != nil {
		// Discard further input until Close; the error is surfaced
		// through Err (Reports just closed) and Close.
		for range e.in {
		}
	}
}

// process executes the record/cut stream: it groups single records into
// batches, forwards pre-formed batches as-is, and closes an interval at
// every cut marker; it returns the first pipeline error. Cut messages
// carry the grid end of the first interval they close, so a BoundarySink
// receives the absolute boundary of every closed interval.
func (e *Engine) process() error {
	if ps, ok := e.sink.(PipelinedSink); ok && e.cfg.PipelineDepth > 1 {
		return e.processPipelined(ps)
	}
	batch := make([]flow.Record, 0, e.cfg.BatchSize)
	bs, _ := e.sink.(BoundarySink)
	step := e.cfg.IntervalLen.Milliseconds()

	flushBatch := func() {
		e.sink.ObserveBatch(batch)
		batch = batch[:0]
	}
	endInterval := func(boundary int64) error {
		flushBatch()
		var rep *core.Report
		var err error
		if bs != nil {
			rep, err = bs.EndIntervalAt(boundary)
		} else {
			rep, err = e.sink.EndInterval()
		}
		if err != nil {
			// Attribute the failure to its grid boundary: a distributed
			// sink error ("collector unreachable") is actionable only
			// with the interval it lost.
			return fmt.Errorf("engine: closing interval at boundary %d: %w", boundary, err)
		}
		e.out <- rep
		return nil
	}

	for m := range e.in {
		switch {
		case m.cuts > 0:
			for i := 0; i < m.cuts; i++ {
				if err := endInterval(m.boundary + int64(i)*step); err != nil {
					return err
				}
			}
		case m.recs != nil:
			// Pre-formed batch: flush pending singles first to preserve
			// submission order, then observe it whole.
			flushBatch()
			e.sink.ObserveBatch(m.recs)
		default:
			batch = append(batch, m.rec)
			if len(batch) >= e.cfg.BatchSize {
				flushBatch()
			}
		}
	}
	// Final flush: close the in-progress interval. Its boundary is the
	// submit side's current grid end — settled, since Close forbids
	// further submits before closing the input channel (taking submitMu
	// also orders this read after any straggling Submit returned).
	e.submitMu.Lock()
	final := e.boundary
	e.submitMu.Unlock()
	return endInterval(final)
}

// pendingClose pairs a drained interval close with the grid boundary it
// covers, for error attribution on the close worker.
type pendingClose struct {
	pc       *core.PendingClose
	boundary int64
}

// processPipelined is the PipelineDepth > 1 variant of process: cuts
// drain the closing interval in O(1) via PipelinedSink.BeginClose and
// hand it to a single close-worker goroutine, which finishes closes
// strictly in drain order and emits their reports — the ordered
// completion queue. Ingestion continues on this goroutine while up to
// PipelineDepth-1 finishes are in flight; a full close queue blocks the
// next cut, propagating backpressure to Submit. The final flush at Close
// drains the last interval, then joins the worker so every in-flight
// report is emitted before Reports closes.
func (e *Engine) processPipelined(ps PipelinedSink) error {
	batch := make([]flow.Record, 0, e.cfg.BatchSize)
	step := e.cfg.IntervalLen.Milliseconds()

	closeCh := make(chan pendingClose, e.cfg.PipelineDepth-1)
	failed := make(chan struct{}) // closed by the worker on its first error
	workerDone := make(chan struct{})
	var workerErr error // written before failed closes, read after workerDone
	go func() {
		defer close(workerDone)
		for pc := range closeCh {
			if workerErr != nil {
				continue // drop: the engine is terminating
			}
			// The channel send that delivered pc promoted this goroutine to
			// the scheduler's next slot, ahead of the producer the cut just
			// unblocked. Yield before the long finish so that on saturated
			// GOMAXPROCS the ingest path resumes first — deferred work must
			// never cut the submit-latency line it exists to shorten.
			runtime.Gosched()
			rep, err := pc.pc.Finish()
			if err != nil {
				workerErr = fmt.Errorf("engine: closing interval at boundary %d: %w", pc.boundary, err)
				close(failed)
				continue
			}
			e.out <- rep
		}
	}()
	// join stops the worker, waits for in-flight finishes, and returns
	// the first worker error — every return path funnels through it so
	// reports of completed closes are always emitted before Reports
	// closes.
	join := func() error {
		close(closeCh)
		<-workerDone
		return workerErr
	}

	flushBatch := func() {
		ps.ObserveBatch(batch)
		batch = batch[:0]
	}
	beginClose := func(boundary int64) error {
		flushBatch()
		pc, err := ps.BeginClose()
		if err != nil {
			return fmt.Errorf("engine: draining interval at boundary %d: %w", boundary, err)
		}
		select {
		case closeCh <- pendingClose{pc, boundary}:
		case <-failed:
			// The worker has failed; drop this drain and let the caller
			// observe failed on its next check.
		}
		return nil
	}

	for {
		var m msg
		var ok bool
		// Also watch for worker failure while idle, so the engine settles
		// Err and closes Reports promptly even if producers go quiet.
		select {
		case m, ok = <-e.in:
		case <-failed:
			return join()
		}
		if !ok {
			break
		}
		switch {
		case m.cuts > 0:
			for i := 0; i < m.cuts; i++ {
				select {
				case <-failed:
					return join()
				default:
				}
				if err := beginClose(m.boundary + int64(i)*step); err != nil {
					if werr := join(); werr != nil {
						return werr
					}
					return err
				}
			}
		case m.recs != nil:
			flushBatch()
			ps.ObserveBatch(m.recs)
		default:
			batch = append(batch, m.rec)
			if len(batch) >= e.cfg.BatchSize {
				flushBatch()
			}
		}
	}
	// Final flush, as in process: drain the in-progress interval at the
	// submit side's settled grid end, then join the worker.
	e.submitMu.Lock()
	final := e.boundary
	e.submitMu.Unlock()
	if err := beginClose(final); err != nil {
		if werr := join(); werr != nil {
			return werr
		}
		return err
	}
	return join()
}
