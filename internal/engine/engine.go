// Package engine provides a channel-based streaming front end for the
// anomaly-extraction pipeline: callers submit flow records as they
// arrive (from a collector socket, a trace file, a message queue) and
// receive one Report per measurement interval on a channel.
//
// The engine shards the incoming stream into measurement intervals by
// flow start time — the boundary grid is aligned to IntervalLen, like a
// router's export clock — groups records into batches to amortize
// per-record pipeline overhead via Pipeline.ObserveBatch, and closes an
// interval (detection + extraction) whenever a record crosses the
// current boundary. Both channels are bounded, so a slow consumer
// exerts backpressure all the way back to Submit instead of growing an
// unbounded queue.
//
//	eng, _ := engine.New(engine.Config{IntervalLen: 15 * time.Minute})
//	go func() {
//		for rep := range eng.Reports() {
//			handle(rep)
//		}
//	}()
//	for rec := range source {
//		eng.Submit(rec)
//	}
//	if err := eng.Close(); err != nil {
//		log.Fatal(err)
//	}
package engine

import (
	"fmt"
	"sync"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
)

// Config parameterizes a streaming engine.
type Config struct {
	// Pipeline configures the underlying extraction pipeline; zero-value
	// fields take the paper's defaults (see core.Config).
	Pipeline core.Config
	// IntervalLen is the measurement-interval length Delta (default the
	// paper's 15 minutes). Interval boundaries are aligned to multiples
	// of IntervalLen from the epoch, seeded by the first record.
	IntervalLen time.Duration
	// BatchSize is the number of records grouped into one ObserveBatch
	// call (default 512).
	BatchSize int
	// Buffer is the input-channel capacity — the backpressure bound.
	// Submit blocks once Buffer records are queued (default 8192).
	Buffer int
}

func (c Config) withDefaults() Config {
	if c.IntervalLen <= 0 {
		c.IntervalLen = 15 * time.Minute
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
	return c
}

// Engine is the streaming front end. Submit may be called from multiple
// goroutines; Reports delivers interval reports in interval order.
//
// On a pipeline error the engine settles Err, closes Reports
// immediately — even while producers are still submitting — and
// silently discards further input until Close, so a consumer on a live
// stream learns about the failure right away.
type Engine struct {
	cfg Config
	p   *core.Pipeline

	in   chan flow.Record
	out  chan *core.Report
	fin  chan struct{} // closed once err is settled, before out closes
	done chan struct{} // closed when the processing goroutine exits

	closeOnce sync.Once
	err       error // settled before fin closes
}

// New builds an engine and starts its processing goroutine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.IntervalLen < time.Millisecond {
		// Flow timestamps are in milliseconds; anything finer truncates
		// to a zero-length boundary grid.
		return nil, fmt.Errorf("engine: interval length %v below 1ms resolution", cfg.IntervalLen)
	}
	p, err := core.New(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		p:    p,
		in:   make(chan flow.Record, cfg.Buffer),
		out:  make(chan *core.Report, 16),
		fin:  make(chan struct{}),
		done: make(chan struct{}),
	}
	go e.run()
	return e, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// BoundaryAfter returns the end of the measurement interval containing
// timestamp ms (Unix milliseconds) on the engine's boundary grid —
// intervals are aligned to multiples of IntervalLen from the epoch.
// Callers that mirror the engine's interval sharding (to line external
// state up with the reports) must use this rather than re-deriving the
// grid.
func (e *Engine) BoundaryAfter(ms int64) int64 {
	step := e.cfg.IntervalLen.Milliseconds()
	return ms - ms%step + step
}

// Pipeline exposes the underlying extraction pipeline (read-only use;
// mutating it concurrently with a running engine races with the
// processing goroutine).
func (e *Engine) Pipeline() *core.Pipeline { return e.p }

// Submit queues one flow record, blocking when the input buffer is full
// (backpressure). It must not be called after Close.
func (e *Engine) Submit(rec flow.Record) { e.in <- rec }

// Reports returns the channel of per-interval reports. It is closed
// after the final interval has been emitted (following Close) or after
// a pipeline error; Err reports the cause in the latter case.
func (e *Engine) Reports() <-chan *core.Report { return e.out }

// Close ends the stream: the current partial interval is flushed, its
// report emitted, and the Reports channel closed. Close blocks until the
// processing goroutine has drained and returns the first pipeline error,
// if any. It is idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() { close(e.in) })
	<-e.done
	return e.err
}

// Err returns the pipeline error that terminated the engine, if any.
// It is meaningful once the Reports channel has closed: the error is
// settled before Reports closes, so a consumer that observed the close
// always sees the cause.
func (e *Engine) Err() error {
	select {
	case <-e.fin:
		return e.err
	default:
		return nil
	}
}

// run is the processing goroutine: process the stream, settle the
// error, close Reports, and keep draining input until the producers
// Close so a failed pipeline never blocks a live stream.
func (e *Engine) run() {
	defer close(e.done)
	e.err = e.process()
	close(e.fin)
	close(e.out)
	if e.err != nil {
		// Discard further input until Close; the error is surfaced
		// through Err (Reports just closed) and Close.
		for range e.in {
		}
	}
}

// process batches records, cuts intervals at the time-boundary grid,
// and emits reports; it returns the first pipeline error.
func (e *Engine) process() error {
	batch := make([]flow.Record, 0, e.cfg.BatchSize)
	var boundary int64 // end of the current interval; 0 until the first record

	flushBatch := func() {
		e.p.ObserveBatch(batch)
		batch = batch[:0]
	}
	endInterval := func() error {
		flushBatch()
		rep, err := e.p.EndInterval()
		if err != nil {
			return err
		}
		e.out <- rep
		return nil
	}

	intervalMs := e.cfg.IntervalLen.Milliseconds()
	for rec := range e.in {
		if boundary == 0 {
			boundary = e.BoundaryAfter(rec.Start)
		}
		for rec.Start >= boundary {
			if err := endInterval(); err != nil {
				return err
			}
			boundary += intervalMs
		}
		batch = append(batch, rec)
		if len(batch) >= e.cfg.BatchSize {
			flushBatch()
		}
	}
	return endInterval()
}
