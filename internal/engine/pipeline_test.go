package engine

import (
	"fmt"
	"reflect"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
)

// runEngine streams recs through one engine built from cfg and returns
// the emitted reports in order.
func runEngine(t *testing.T, cfg Config, recs []flow.Record) []*core.Report {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*core.Report
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			reports = append(reports, rep)
		}
	}()
	if _, err := eng.SubmitBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	return reports
}

// diffReports fails the test on the first divergence between two report
// sequences.
func diffReports(t *testing.T, got, want []*core.Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("pipelined engine emitted %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("interval %d: pipelined report diverged\ngot:  %+v\nwant: %+v", i, got[i], want[i])
		}
	}
}

// TestPipelinedMatchesSyncGrid pins the tentpole determinism bar: with
// PipelineDepth > 1 the asynchronous close worker must emit reports
// byte-identical to the synchronous inline close, across the full
// Workers × shards grid (run under -race).
func TestPipelinedMatchesSyncGrid(t *testing.T) {
	stream := makeStream(11, 8, 1200, 7)
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				cfg := Config{Pipeline: testConfig(workers), Shards: shards, IntervalLen: intervalLen}
				want := runEngine(t, cfg, stream)
				cfg.PipelineDepth = 3
				got := runEngine(t, cfg, stream)
				diffReports(t, got, want)
				alarmed := false
				for _, rep := range want {
					if rep.Alarm {
						alarmed = true
					}
				}
				if !alarmed {
					t.Error("no alarm in the stream; extraction path not compared")
				}
			})
		}
	}
}

// TestPipelinedDepthSweep varies the close-queue depth on one grid cell:
// any depth must reproduce the synchronous reports exactly, in order.
func TestPipelinedDepthSweep(t *testing.T) {
	stream := makeStream(12, 8, 900, 7)
	base := Config{Pipeline: testConfig(2), Shards: 2, IntervalLen: intervalLen}
	want := runEngine(t, base, stream)
	for _, depth := range []int{2, 4, 8} {
		cfg := base
		cfg.PipelineDepth = depth
		diffReports(t, runEngine(t, cfg, stream), want)
	}
}

// TestPipelinedGapsAndClockJump drives the counted-cut paths through the
// close worker: multi-interval gaps (one cut message closing several
// empty intervals) and a clock jump past maxGapIntervals (close once,
// re-seed the grid) must both match the synchronous close.
func TestPipelinedGapsAndClockJump(t *testing.T) {
	stream := makeStream(13, 3, 600, -1)
	step := intervalLen.Milliseconds()
	last := stream[len(stream)-1].Start
	// A 5-interval quiet gap, then one record, then a clock jump far past
	// the gap bound.
	rec := stream[0]
	rec.Start = last + 5*step
	rec.End = rec.Start
	stream = append(stream, rec)
	rec.Start += int64(maxGapIntervals+10) * step
	rec.End = rec.Start
	stream = append(stream, rec)

	cfg := Config{Pipeline: testConfig(1), IntervalLen: intervalLen}
	want := runEngine(t, cfg, stream)
	cfg.PipelineDepth = 4
	diffReports(t, runEngine(t, cfg, stream), want)
}

// TestPipelinedErrorSurfacesOnLiveStream mirrors the synchronous error
// contract for the close worker: a Finish failure must settle Err, close
// Reports early, and never wedge producers that keep submitting.
func TestPipelinedErrorSurfacesOnLiveStream(t *testing.T) {
	cfg := testConfig(2)
	cfg.Miner = errMiner{}
	eng, err := New(Config{Pipeline: cfg, IntervalLen: intervalLen, Buffer: 64, PipelineDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	errAtClose := make(chan error, 1)
	go func() {
		for range eng.Reports() {
		}
		errAtClose <- eng.Err()
	}()
	for _, rec := range makeStream(2, 8, 3000, 6) {
		eng.Submit(rec) // must not block after the close worker dies
	}
	if err := eng.Close(); err == nil {
		t.Fatal("Close error = nil, want the mining failure")
	}
	if err := <-errAtClose; err == nil {
		t.Fatal("Err() was nil when Reports closed")
	}
}

// countingSink is a minimal non-pipelined Sink: PipelineDepth > 1 with a
// sink that cannot split its close must fall back to the synchronous
// path rather than fail or change behavior.
type countingSink struct {
	flows  int
	closes int
}

func (s *countingSink) ObserveBatch(recs []flow.Record) { s.flows += len(recs) }
func (s *countingSink) EndInterval() (*core.Report, error) {
	s.closes++
	return &core.Report{Interval: s.closes - 1}, nil
}
func (s *countingSink) Close() {}

func TestPipelinedFallsBackForPlainSink(t *testing.T) {
	sink := &countingSink{}
	eng, err := NewWithSink(Config{IntervalLen: intervalLen, PipelineDepth: 4}, sink)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range eng.Reports() {
			n++
		}
		done <- n
	}()
	stream := makeStream(3, 4, 50, -1)
	if _, err := eng.SubmitBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != 4 || sink.closes != 4 {
		t.Fatalf("got %d reports / %d closes, want 4 / 4", got, sink.closes)
	}
	if sink.flows != len(stream) {
		t.Fatalf("sink observed %d flows, want %d", sink.flows, len(stream))
	}
}
