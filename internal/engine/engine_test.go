package engine

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/stats"
)

const intervalLen = time.Minute

// makeStream synthesizes a timestamped stream spanning several
// measurement intervals, with a dstPort flood in interval floodAt.
func makeStream(seed uint64, intervals, perInterval, floodAt int) []flow.Record {
	r := stats.NewRand(seed)
	base := int64(1_700_000_000_000)
	base -= base % intervalLen.Milliseconds() // align so intervals split evenly
	var out []flow.Record
	for i := 0; i < intervals; i++ {
		start := base + int64(i)*intervalLen.Milliseconds()
		for j := 0; j < perInterval; j++ {
			rec := flow.Record{
				SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
				SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
				Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
			}
			if i == floodAt && j%3 == 0 {
				rec.DstAddr, rec.DstPort, rec.Packets, rec.Bytes = 42, 31337, 1, 40
			}
			rec.Start = start + int64(j)%intervalLen.Milliseconds()
			rec.End = rec.Start
			out = append(out, rec)
		}
	}
	return out
}

func testConfig(workers int) core.Config {
	return core.Config{
		Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 3},
		Workers:  workers,
	}
}

// TestEngineMatchesManualLoop verifies the engine's interval sharding:
// submitting a timestamped stream produces exactly the reports a manual
// Observe/EndInterval loop over the same boundary grid produces.
func TestEngineMatchesManualLoop(t *testing.T) {
	stream := makeStream(1, 8, 3000, 7)

	// Manual reference: per-record loop with the cmd/anomalyx boundary
	// arithmetic on a sequential pipeline.
	ref, err := core.New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	intervalMs := intervalLen.Milliseconds()
	var want []*core.Report
	var boundary int64
	for _, rec := range stream {
		if boundary == 0 {
			boundary = rec.Start - rec.Start%intervalMs + intervalMs
		}
		for rec.Start >= boundary {
			rep, err := ref.EndInterval()
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, rep)
			boundary += intervalMs
		}
		ref.Observe(rec)
	}
	rep, err := ref.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, rep)

	eng, err := New(Config{Pipeline: testConfig(0), IntervalLen: intervalLen, BatchSize: 700})
	if err != nil {
		t.Fatal(err)
	}
	var got []*core.Report
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			got = append(got, rep)
		}
	}()
	for _, rec := range stream {
		eng.Submit(rec)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	if len(got) != len(want) {
		t.Fatalf("engine emitted %d reports, want %d", len(got), len(want))
	}
	alarmed := false
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("interval %d: engine report diverged\ngot:  %+v\nwant: %+v", i, got[i], want[i])
		}
		if want[i].Alarm {
			alarmed = true
		}
	}
	if !alarmed {
		t.Error("no alarm in the stream; extraction path not compared")
	}
}

// TestEngineConcurrentProducers submits from many goroutines at once
// (run under -race). All records carry timestamps inside one interval,
// so exactly one report must account for every submitted flow.
func TestEngineConcurrentProducers(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(4), IntervalLen: intervalLen, Buffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const perProducer = 5000
	base := int64(1_700_000_000_000)
	base -= base % intervalLen.Milliseconds()

	var total int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			total += rep.TotalFlows
		}
	}()

	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRand(seed)
			for j := 0; j < perProducer; j++ {
				eng.Submit(flow.Record{
					SrcAddr: uint32(r.IntN(10000)), DstPort: uint16(r.IntN(1000)),
					Protocol: 6, Packets: 1, Bytes: 100,
					Start: base + int64(j)%intervalLen.Milliseconds(),
				})
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	if want := producers * perProducer; total != want {
		t.Fatalf("reports account for %d flows, want %d", total, want)
	}
	if eng.Err() != nil {
		t.Fatalf("engine error: %v", eng.Err())
	}
}

// errMiner fails every Mine call, simulating a mid-stream pipeline
// failure on the first alarming interval.
type errMiner struct{}

func (errMiner) Mine([]itemset.Transaction, int) (*mining.Result, error) {
	return nil, errors.New("miner exploded")
}
func (errMiner) Name() string { return "err" }

// TestEngineErrorSurfacesOnLiveStream injects a failing miner and keeps
// submitting after the failure, as a live collector would: the Reports
// channel must close early with Err settled, Submit must never block on
// the dead pipeline, and Close must return the error.
func TestEngineErrorSurfacesOnLiveStream(t *testing.T) {
	cfg := testConfig(2)
	cfg.Miner = errMiner{}
	eng, err := New(Config{Pipeline: cfg, IntervalLen: intervalLen, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Consumer: when Reports closes, the cause must already be visible.
	errAtClose := make(chan error, 1)
	go func() {
		for range eng.Reports() {
		}
		errAtClose <- eng.Err()
	}()

	// A stream whose flood sits one interval before the end: mining
	// fails when the boundary after it is crossed, records keep coming.
	for _, rec := range makeStream(2, 8, 3000, 6) {
		eng.Submit(rec) // must not block after the pipeline dies
	}

	if err := eng.Close(); err == nil || err.Error() == "" {
		t.Fatalf("Close error = %v, want the mining failure", err)
	}
	if err := <-errAtClose; err == nil {
		t.Fatal("Err() was nil when Reports closed")
	}
}

// TestEngineRejectsSubMillisecondInterval: flow timestamps have 1ms
// resolution; a finer interval would truncate to a zero-length grid and
// divide by zero in the processing goroutine.
func TestEngineRejectsSubMillisecondInterval(t *testing.T) {
	if _, err := New(Config{Pipeline: testConfig(1), IntervalLen: 500 * time.Microsecond}); err == nil {
		t.Fatal("sub-millisecond interval accepted")
	}
}

// TestEngineCloseIdempotent double-closes and checks the empty-stream
// behavior (one empty report, like the CLI's EOF flush).
func TestEngineCloseIdempotent(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eng.Reports() {
			n++
		}
	}()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if n != 1 {
		t.Fatalf("empty stream emitted %d reports, want 1", n)
	}
}

// TestSubmitBatchMatchesSubmit verifies the batch path end to end:
// chunked SubmitBatch produces exactly the reports of per-record Submit
// over the same stream, and the returned intervals-closed counts sum to
// the number of boundary crossings.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	stream := makeStream(3, 8, 3000, 6)

	collect := func(submit func(*Engine)) []*core.Report {
		t.Helper()
		eng, err := New(Config{Pipeline: testConfig(0), IntervalLen: intervalLen, BatchSize: 700})
		if err != nil {
			t.Fatal(err)
		}
		var got []*core.Report
		done := make(chan struct{})
		go func() {
			defer close(done)
			for rep := range eng.Reports() {
				got = append(got, rep)
			}
		}()
		submit(eng)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		return got
	}

	want := collect(func(eng *Engine) {
		for _, rec := range stream {
			eng.Submit(rec)
		}
	})

	var closedTotal int
	got := collect(func(eng *Engine) {
		// Deliberately awkward chunk size so batches straddle interval
		// boundaries and single records interleave with batches.
		const chunk = 1217
		for i := 0; i < len(stream); i += chunk {
			end := min(i+chunk, len(stream))
			n, err := eng.SubmitBatch(stream[i:end])
			if err != nil {
				t.Error(err)
				return
			}
			closedTotal += n
		}
	})

	if len(got) != len(want) {
		t.Fatalf("batch path emitted %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("interval %d: batch-path report diverged\ngot:  %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	// Every report except the Close flush corresponds to one returned cut.
	if closedTotal != len(want)-1 {
		t.Fatalf("SubmitBatch counted %d closed intervals, want %d", closedTotal, len(want)-1)
	}
}

// TestSubmitBatchCallerMayReuseSlice pins the copy semantics: mutating
// the submitted slice after SubmitBatch returns must not corrupt the
// stream (run under -race to catch aliasing).
func TestSubmitBatchCallerMayReuseSlice(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(1), IntervalLen: intervalLen})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			total += rep.TotalFlows
		}
	}()
	base := int64(1_700_000_000_000)
	buf := make([]flow.Record, 100)
	for round := 0; round < 50; round++ {
		for i := range buf {
			buf[i] = flow.Record{SrcAddr: uint32(round), DstPort: uint16(i), Start: base}
		}
		if _, err := eng.SubmitBatch(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if want := 50 * len(buf); total != want {
		t.Fatalf("reports account for %d flows, want %d", total, want)
	}
}

// TestSubmitBatchConcurrentProducers hammers SubmitBatch from many
// goroutines at once (run under -race). Cuts are counted by exactly the
// producer that enqueued them, so the per-producer closed counts plus
// the Close flush must account for every emitted report, and the
// reports for every submitted flow.
func TestSubmitBatchConcurrentProducers(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(4), IntervalLen: intervalLen, Buffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const batches = 40
	const perBatch = 250
	base := int64(1_700_000_000_000)
	base -= base % intervalLen.Milliseconds()

	var reports, total int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			reports++
			total += rep.TotalFlows
		}
	}()

	var closed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRand(seed)
			buf := make([]flow.Record, perBatch)
			for j := 0; j < batches; j++ {
				for k := range buf {
					buf[k] = flow.Record{
						SrcAddr: uint32(r.IntN(10000)), DstPort: uint16(r.IntN(1000)),
						Protocol: 6, Packets: 1, Bytes: 100,
						// Timestamps wander forward over ~3 intervals.
						Start: base + int64(j)*intervalLen.Milliseconds()/16 + int64(r.IntN(1000)),
					}
				}
				n, err := eng.SubmitBatch(buf)
				if err != nil {
					t.Error(err)
					return
				}
				closed.Add(int64(n))
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	if want := producers * batches * perBatch; total != want {
		t.Fatalf("reports account for %d flows, want %d", total, want)
	}
	if want := int(closed.Load()) + 1; reports != want {
		t.Fatalf("engine emitted %d reports, want %d (sum of closed counts + final flush)", reports, want)
	}
}

// TestShardedEngineMatchesUnsharded runs the same stream through an
// unsharded and a 4-shard engine: the report sequences must be
// identical (the cross-shard merge determinism contract at the engine
// level).
func TestShardedEngineMatchesUnsharded(t *testing.T) {
	stream := makeStream(5, 8, 3000, 6)

	run := func(shards int) []*core.Report {
		t.Helper()
		eng, err := New(Config{Pipeline: testConfig(1), Shards: shards, IntervalLen: intervalLen})
		if err != nil {
			t.Fatal(err)
		}
		var got []*core.Report
		done := make(chan struct{})
		go func() {
			defer close(done)
			for rep := range eng.Reports() {
				got = append(got, rep)
			}
		}()
		for i := 0; i < len(stream); i += 900 {
			end := min(i+900, len(stream))
			if _, err := eng.SubmitBatch(stream[i:end]); err != nil {
				t.Error(err)
				break
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		return got
	}

	want := run(1)
	got := run(4)
	if len(got) != len(want) {
		t.Fatalf("sharded engine emitted %d reports, want %d", len(got), len(want))
	}
	alarmed := false
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("interval %d: sharded report diverged\ngot:  %+v\nwant: %+v", i, got[i], want[i])
		}
		alarmed = alarmed || want[i].Alarm
	}
	if !alarmed {
		t.Error("no alarm in the stream; extraction path not compared")
	}
}

// benchStream is a single-interval stream for the submit-path benches.
func benchStream(n int) []flow.Record {
	r := stats.NewRand(9)
	base := int64(1_700_000_000_000)
	base -= base % intervalLen.Milliseconds()
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr: uint32(r.IntN(50000)), DstPort: uint16(r.IntN(1500)),
			Protocol: 6, Packets: 1, Bytes: 100,
			Start: base + int64(i)%intervalLen.Milliseconds(),
		}
	}
	return recs
}

// BenchmarkEngineSubmit measures the per-record channel path.
func BenchmarkEngineSubmit(b *testing.B) {
	recs := benchStream(20000)
	eng, err := New(Config{Pipeline: testConfig(1), IntervalLen: intervalLen})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range eng.Reports() {
		}
	}()
	b.SetBytes(int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			eng.Submit(recs[j])
		}
	}
	b.StopTimer()
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineSubmitBatch measures the batched submit path over the
// same stream (one copy + a handful of channel messages per batch).
func BenchmarkEngineSubmitBatch(b *testing.B) {
	recs := benchStream(20000)
	eng, err := New(Config{Pipeline: testConfig(1), IntervalLen: intervalLen})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range eng.Reports() {
		}
	}()
	b.SetBytes(int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < len(recs); j += 512 {
			end := min(j+512, len(recs))
			if _, err := eng.SubmitBatch(recs[j:end]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}

// TestEngineClockJump pins the corrupt-timestamp guard: a record with a
// far-future Start must not make the engine close millions of empty
// intervals — the gap collapses into one cut and the boundary grid
// re-seeds from the new timestamp.
func TestEngineClockJump(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(1), IntervalLen: intervalLen})
	if err != nil {
		t.Fatal(err)
	}
	reports := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eng.Reports() {
			reports++
		}
	}()
	base := int64(1_700_000_000_000)
	eng.Submit(flow.Record{DstPort: 1, Start: base})
	// ~136 years ahead — far beyond maxGapIntervals at any sane length.
	jump := base + int64(4_300_000_000)*1000
	n, err := eng.SubmitBatch([]flow.Record{{DstPort: 2, Start: jump}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("clock jump closed %d intervals, want 1", n)
	}
	// A record just after the jump lands on the re-seeded grid without
	// further cuts.
	if n, _ := eng.SubmitBatch([]flow.Record{{DstPort: 3, Start: jump + 1}}); n != 0 {
		t.Fatalf("record on re-seeded grid closed %d intervals, want 0", n)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if reports != 2 {
		t.Fatalf("engine emitted %d reports, want 2 (jump cut + final flush)", reports)
	}
}

// boundarySink records every interval close it is handed — the
// boundary values are the engine's contract with distributed sinks
// (the wire package's agent ships snapshots keyed by them).
type boundarySink struct {
	mu         sync.Mutex
	boundaries []int64
	batches    int
}

func (s *boundarySink) ObserveBatch(recs []flow.Record) {
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
}

func (s *boundarySink) EndIntervalAt(boundary int64) (*core.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boundaries = append(s.boundaries, boundary)
	return &core.Report{Interval: len(s.boundaries) - 1}, nil
}

func (s *boundarySink) EndInterval() (*core.Report, error) {
	return nil, errors.New("engine must prefer EndIntervalAt for a BoundarySink")
}

func (s *boundarySink) Close() {}

// TestNewWithSinkBoundaries: an injected BoundarySink receives the
// absolute grid end of every closed interval — for plain cuts, for
// counted multi-interval gaps, and for the final flush at Close.
func TestNewWithSinkBoundaries(t *testing.T) {
	sink := &boundarySink{}
	eng, err := NewWithSink(Config{IntervalLen: intervalLen}, sink)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Reports() {
		}
	}()

	step := intervalLen.Milliseconds()
	base := int64(1_700_000_000_000)
	base -= base % step
	// Interval 0: two records; then a gap straight to interval 3 (the
	// cut message carries 3 counted cuts); then Close flushes interval 3.
	eng.Submit(flow.Record{DstPort: 1, Start: base + 10})
	eng.Submit(flow.Record{DstPort: 2, Start: base + 20})
	n, err := eng.SubmitBatch([]flow.Record{{DstPort: 3, Start: base + 3*step + 5}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("gap closed %d intervals, want 3", n)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	want := []int64{base + step, base + 2*step, base + 3*step, base + 4*step}
	if !reflect.DeepEqual(sink.boundaries, want) {
		t.Fatalf("sink saw boundaries %v, want %v", sink.boundaries, want)
	}
	if sink.batches == 0 {
		t.Fatal("sink never observed a batch")
	}
}

// TestNewWithSinkEmptyStream: with no records at all the final flush
// reports boundary 0 (unseeded grid) — the documented "no grid slot"
// sentinel distributed sinks rely on.
func TestNewWithSinkEmptyStream(t *testing.T) {
	sink := &boundarySink{}
	eng, err := NewWithSink(Config{IntervalLen: intervalLen}, sink)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Reports() {
		}
	}()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if want := []int64{0}; !reflect.DeepEqual(sink.boundaries, want) {
		t.Fatalf("sink saw boundaries %v, want %v", sink.boundaries, want)
	}
}

// TestNewWithSinkRejectsNil: a nil sink is a construction error.
func TestNewWithSinkRejectsNil(t *testing.T) {
	if _, err := NewWithSink(Config{}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

// TestBoundaryAfter pins the boundary grid on both sides of the epoch.
// This is the failing-first regression for the truncating-modulo bug:
// Go's `%` follows the dividend's sign, so the old `ms - ms%step + step`
// rounded pre-epoch timestamps toward zero — BoundaryAfter(-500)
// returned 1000 instead of 0, shifting the whole pre-epoch grid one
// interval late.
func TestBoundaryAfter(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(1), IntervalLen: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	go func() {
		for range eng.Reports() {
		}
	}()
	cases := []struct{ ms, want int64 }{
		{-1500, -1000}, // pre-epoch interior
		{-1000, 0},     // exact pre-epoch multiple belongs to the next interval
		{-500, 0},      // the bug's probe: was 1000
		{-1, 0},
		{0, 1000}, // exact multiple at the epoch
		{1, 1000},
		{999, 1000},
		{1000, 2000}, // exact post-epoch multiple
		{1500, 2000},
	}
	for _, tc := range cases {
		if got := eng.BoundaryAfter(tc.ms); got != tc.want {
			t.Errorf("BoundaryAfter(%d) = %d, want %d", tc.ms, got, tc.want)
		}
	}
}

// TestEnginePreEpochStream runs the bug end to end: a stream starting
// before the epoch must close intervals on the aligned grid. With the
// truncating modulo the first record at -500 ms seeded the boundary at
// 1000 instead of 0, so the stream below closed one interval instead of
// two — and the misalignment doubled as a boundary==0 sentinel
// collision, since the correct first boundary here *is* 0.
func TestEnginePreEpochStream(t *testing.T) {
	sink := &boundarySink{}
	eng, err := NewWithSink(Config{IntervalLen: time.Second}, sink)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Reports() {
		}
	}()
	closed, err := eng.SubmitBatch([]flow.Record{
		{DstPort: 1, Start: -500}, // seeds the grid: first boundary 0
		{DstPort: 2, Start: 600},  // crosses 0, lands in (0, 1000]
		{DstPort: 3, Start: 1200}, // crosses 1000
	})
	if err != nil {
		t.Fatal(err)
	}
	if closed != 2 {
		t.Fatalf("pre-epoch stream closed %d intervals, want 2", closed)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1000, 2000}
	if !reflect.DeepEqual(sink.boundaries, want) {
		t.Fatalf("sink saw boundaries %v, want %v", sink.boundaries, want)
	}
}

// TestNewWithSinkClockJump: past the maxGapIntervals bound the engine
// re-seeds the grid, and the sink sees the pre-jump boundary once, then
// boundaries on the new grid.
func TestNewWithSinkClockJump(t *testing.T) {
	sink := &boundarySink{}
	eng, err := NewWithSink(Config{IntervalLen: intervalLen}, sink)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Reports() {
		}
	}()
	step := intervalLen.Milliseconds()
	base := int64(1_700_000_000_000)
	base -= base % step
	jump := base + (maxGapIntervals+10)*step
	eng.Submit(flow.Record{DstPort: 1, Start: base})
	eng.Submit(flow.Record{DstPort: 2, Start: jump + 5})
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	want := []int64{base + step, jump + step}
	if !reflect.DeepEqual(sink.boundaries, want) {
		t.Fatalf("sink saw boundaries %v, want %v", sink.boundaries, want)
	}
}
