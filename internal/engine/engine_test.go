package engine

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/stats"
)

const intervalLen = time.Minute

// makeStream synthesizes a timestamped stream spanning several
// measurement intervals, with a dstPort flood in interval floodAt.
func makeStream(seed uint64, intervals, perInterval, floodAt int) []flow.Record {
	r := stats.NewRand(seed)
	base := int64(1_700_000_000_000)
	base -= base % intervalLen.Milliseconds() // align so intervals split evenly
	var out []flow.Record
	for i := 0; i < intervals; i++ {
		start := base + int64(i)*intervalLen.Milliseconds()
		for j := 0; j < perInterval; j++ {
			rec := flow.Record{
				SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
				SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
				Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
			}
			if i == floodAt && j%3 == 0 {
				rec.DstAddr, rec.DstPort, rec.Packets, rec.Bytes = 42, 31337, 1, 40
			}
			rec.Start = start + int64(j)%intervalLen.Milliseconds()
			rec.End = rec.Start
			out = append(out, rec)
		}
	}
	return out
}

func testConfig(workers int) core.Config {
	return core.Config{
		Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 3},
		Workers:  workers,
	}
}

// TestEngineMatchesManualLoop verifies the engine's interval sharding:
// submitting a timestamped stream produces exactly the reports a manual
// Observe/EndInterval loop over the same boundary grid produces.
func TestEngineMatchesManualLoop(t *testing.T) {
	stream := makeStream(1, 8, 3000, 7)

	// Manual reference: per-record loop with the cmd/anomalyx boundary
	// arithmetic on a sequential pipeline.
	ref, err := core.New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	intervalMs := intervalLen.Milliseconds()
	var want []*core.Report
	var boundary int64
	for _, rec := range stream {
		if boundary == 0 {
			boundary = rec.Start - rec.Start%intervalMs + intervalMs
		}
		for rec.Start >= boundary {
			rep, err := ref.EndInterval()
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, rep)
			boundary += intervalMs
		}
		ref.Observe(rec)
	}
	rep, err := ref.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, rep)

	eng, err := New(Config{Pipeline: testConfig(0), IntervalLen: intervalLen, BatchSize: 700})
	if err != nil {
		t.Fatal(err)
	}
	var got []*core.Report
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			got = append(got, rep)
		}
	}()
	for _, rec := range stream {
		eng.Submit(rec)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	if len(got) != len(want) {
		t.Fatalf("engine emitted %d reports, want %d", len(got), len(want))
	}
	alarmed := false
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("interval %d: engine report diverged\ngot:  %+v\nwant: %+v", i, got[i], want[i])
		}
		if want[i].Alarm {
			alarmed = true
		}
	}
	if !alarmed {
		t.Error("no alarm in the stream; extraction path not compared")
	}
}

// TestEngineConcurrentProducers submits from many goroutines at once
// (run under -race). All records carry timestamps inside one interval,
// so exactly one report must account for every submitted flow.
func TestEngineConcurrentProducers(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(4), IntervalLen: intervalLen, Buffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const perProducer = 5000
	base := int64(1_700_000_000_000)
	base -= base % intervalLen.Milliseconds()

	var total int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range eng.Reports() {
			total += rep.TotalFlows
		}
	}()

	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRand(seed)
			for j := 0; j < perProducer; j++ {
				eng.Submit(flow.Record{
					SrcAddr: uint32(r.IntN(10000)), DstPort: uint16(r.IntN(1000)),
					Protocol: 6, Packets: 1, Bytes: 100,
					Start: base + int64(j)%intervalLen.Milliseconds(),
				})
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	if want := producers * perProducer; total != want {
		t.Fatalf("reports account for %d flows, want %d", total, want)
	}
	if eng.Err() != nil {
		t.Fatalf("engine error: %v", eng.Err())
	}
}

// errMiner fails every Mine call, simulating a mid-stream pipeline
// failure on the first alarming interval.
type errMiner struct{}

func (errMiner) Mine([]itemset.Transaction, int) (*mining.Result, error) {
	return nil, errors.New("miner exploded")
}
func (errMiner) Name() string { return "err" }

// TestEngineErrorSurfacesOnLiveStream injects a failing miner and keeps
// submitting after the failure, as a live collector would: the Reports
// channel must close early with Err settled, Submit must never block on
// the dead pipeline, and Close must return the error.
func TestEngineErrorSurfacesOnLiveStream(t *testing.T) {
	cfg := testConfig(2)
	cfg.Miner = errMiner{}
	eng, err := New(Config{Pipeline: cfg, IntervalLen: intervalLen, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Consumer: when Reports closes, the cause must already be visible.
	errAtClose := make(chan error, 1)
	go func() {
		for range eng.Reports() {
		}
		errAtClose <- eng.Err()
	}()

	// A stream whose flood sits one interval before the end: mining
	// fails when the boundary after it is crossed, records keep coming.
	for _, rec := range makeStream(2, 8, 3000, 6) {
		eng.Submit(rec) // must not block after the pipeline dies
	}

	if err := eng.Close(); err == nil || err.Error() == "" {
		t.Fatalf("Close error = %v, want the mining failure", err)
	}
	if err := <-errAtClose; err == nil {
		t.Fatal("Err() was nil when Reports closed")
	}
}

// TestEngineRejectsSubMillisecondInterval: flow timestamps have 1ms
// resolution; a finer interval would truncate to a zero-length grid and
// divide by zero in the processing goroutine.
func TestEngineRejectsSubMillisecondInterval(t *testing.T) {
	if _, err := New(Config{Pipeline: testConfig(1), IntervalLen: 500 * time.Microsecond}); err == nil {
		t.Fatal("sub-millisecond interval accepted")
	}
}

// TestEngineCloseIdempotent double-closes and checks the empty-stream
// behavior (one empty report, like the CLI's EOF flush).
func TestEngineCloseIdempotent(t *testing.T) {
	eng, err := New(Config{Pipeline: testConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eng.Reports() {
			n++
		}
	}()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if n != 1 {
		t.Fatalf("empty stream emitted %d reports, want 1", n)
	}
}
