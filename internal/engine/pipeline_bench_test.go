package engine

import (
	"fmt"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// BenchmarkSubmitDuringClose measures the submit-stall across an
// interval cut: the time a producer spends blocked in SubmitBatch while
// the engine deals with a boundary crossing. The input buffer is 1, so
// the measured boundary-crossing submit cannot complete until the
// processing goroutine is past the cut — the whole inline detection run
// at depth 1, an O(1) state swap at depth 2.
//
// The unmeasured section between cuts retires the previous interval's
// report before the next measured submit, so each measurement starts
// from an idle engine. That makes this an enqueue-latency measure, not a
// throughput one — deliberately, because on a single-core host (like the
// CI container) the deferred close still consumes the same CPU; what
// pipelining buys is that it consumes it outside the producer's critical
// path, in the slack a paced real-world stream has between batches.
func BenchmarkSubmitDuringClose(b *testing.B) {
	const perInterval = 20000
	step := intervalLen.Milliseconds()
	base := int64(1_700_000_000_000)
	base -= base % step

	// Production-shaped detection state (the paper's 1024-bin default
	// would do; 8192 keeps the close well above scheduler jitter on small
	// CI machines): the interval close is dominated by per-clone KL and
	// the prev-counts rotate across bins × clones × features.
	pcfg := testConfig(1)
	pcfg.Detector.Bins = 8192

	for _, depth := range []int{1, 2} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			eng, err := New(Config{
				Pipeline: pcfg, IntervalLen: intervalLen,
				Buffer: 1, PipelineDepth: depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			reports := eng.Reports()

			r := stats.NewRand(17)
			bulk := make([]flow.Record, perInterval)
			for i := range bulk {
				bulk[i] = flow.Record{
					SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
					SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
					Protocol: 6, Packets: 1, Bytes: 100,
				}
			}
			probe := make([]flow.Record, 1)

			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				// Retire the previous cut's report. At depth 2 this blocks
				// until the close worker has finished the deferred close —
				// charging that work to the unmeasured slack, exactly where
				// a paced stream would absorb it.
				if n > 0 {
					<-reports
				}
				lo := base + int64(n)*step
				for i := range bulk {
					bulk[i].Start = lo + int64(i)%step
					bulk[i].End = bulk[i].Start
				}
				if _, err := eng.SubmitBatch(bulk); err != nil {
					b.Fatal(err)
				}
				// Quiesce: with Buffer 1 each sentinel submit blocks until
				// the previous message was consumed, so after four of them
				// the bulk ObserveBatch is done and the processor is idle
				// but for a couple of single-record appends — the measured
				// section starts with an (almost) idle engine.
				sentinel := bulk[0]
				eng.Submit(sentinel)
				eng.Submit(sentinel)
				eng.Submit(sentinel)
				eng.Submit(sentinel)
				b.StartTimer()
				// The measured op: a submit whose record crosses the
				// boundary. It enqueues the cut marker and then its record,
				// and the record cannot be accepted until the processor is
				// past the cut — inline detection at depth 1, an O(1) drain
				// at depth 2 — so the call blocks for exactly the close
				// stall a producer sees.
				probe[0] = bulk[0]
				probe[0].Start = lo + step
				probe[0].End = probe[0].Start
				if _, err := eng.SubmitBatch(probe); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range reports {
				}
			}()
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			<-done
		})
	}
}
