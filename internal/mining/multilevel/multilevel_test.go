package multilevel

import (
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/stats"
)

// scanTxs builds a distributed scan: one source sweeping distinct
// addresses inside 10.1.2.0/24 on port 445, plus diffuse background.
func scanTxs(n int) []itemset.Transaction {
	r := stats.NewRand(1)
	var txs []itemset.Transaction
	base := flow.MustParseU32("10.1.2.0")
	for i := 0; i < n; i++ {
		rec := flow.Record{
			SrcAddr: flow.MustParseU32("203.0.113.7"),
			DstAddr: base + uint32(i%256),
			SrcPort: uint16(1024 + r.IntN(60000)), DstPort: 445,
			Protocol: 6, Packets: 1, Bytes: 48,
		}
		txs = append(txs, itemset.FromFlow(&rec))
	}
	for i := 0; i < n; i++ {
		rec := flow.Record{
			SrcAddr: uint32(r.IntN(1 << 30)), DstAddr: uint32(r.IntN(1 << 30)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(60000)),
			Protocol: 6, Packets: uint32(1 + r.IntN(50)), Bytes: uint64(100 + r.IntN(9000)),
		}
		txs = append(txs, itemset.FromFlow(&rec))
	}
	return txs
}

func TestGeneralizeMasksAddresses(t *testing.T) {
	rec := flow.Record{
		SrcAddr: flow.MustParseU32("192.168.34.56"),
		DstAddr: flow.MustParseU32("10.1.2.3"),
		DstPort: 80,
	}
	txs := []itemset.Transaction{itemset.FromFlow(&rec)}
	g := Generalize(txs, Level{SrcLen: 16, DstLen: 24})
	if g[0][flow.SrcIP] != uint64(flow.MustParseU32("192.168.0.0")) {
		t.Errorf("srcIP = %v", flow.U32ToAddr(uint32(g[0][flow.SrcIP])))
	}
	if g[0][flow.DstIP] != uint64(flow.MustParseU32("10.1.2.0")) {
		t.Errorf("dstIP = %v", flow.U32ToAddr(uint32(g[0][flow.DstIP])))
	}
	if g[0][flow.DstPort] != 80 {
		t.Error("non-address feature modified")
	}
	// Input untouched.
	if txs[0][flow.SrcIP] != uint64(flow.MustParseU32("192.168.34.56")) {
		t.Error("Generalize mutated its input")
	}
}

func TestScanInvisibleAt32VisibleAt24(t *testing.T) {
	txs := scanTxs(2000)
	minsup := 900 // each /32 target sees ~2000/256 ≈ 8 flows

	m := New(apriori.New(), nil)
	results, err := m.Mine(txs, minsup)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultLevels) {
		t.Fatalf("levels = %d", len(results))
	}

	hasDstNet := func(res []itemset.Set, want uint32) bool {
		for i := range res {
			for _, it := range res[i].Items {
				if it.Kind == flow.DstIP && it.Value == uint64(want) {
					return true
				}
			}
		}
		return false
	}
	// Level /32: no dstIP item is frequent.
	for i := range results[0].Result.All {
		for _, it := range results[0].Result.All[i].Items {
			if it.Kind == flow.DstIP {
				t.Fatalf("unexpected frequent dstIP at /32: %v", results[0].Result.All[i])
			}
		}
	}
	// Level /24: the scanned range is frequent.
	if !hasDstNet(results[1].Result.All, flow.MustParseU32("10.1.2.0")) {
		t.Error("scanned /24 not frequent at level /24")
	}
	// And it combines with the scan port into a multi-item set.
	found := false
	for i := range results[1].Result.Maximal {
		s := &results[1].Result.Maximal[i]
		hasNet, hasPort := false, false
		for _, it := range s.Items {
			if it.Kind == flow.DstIP && it.Value == uint64(flow.MustParseU32("10.1.2.0")) {
				hasNet = true
			}
			if it.Kind == flow.DstPort && it.Value == 445 {
				hasPort = true
			}
		}
		if hasNet && hasPort {
			found = true
		}
	}
	if !found {
		t.Errorf("no {dstNet, dstPort=445} item-set at /24: %v", results[1].Result.Maximal)
	}
}

func TestMineValidatesInput(t *testing.T) {
	m := New(apriori.New(), nil)
	if _, err := m.Mine(nil, 0); err == nil {
		t.Error("minsup 0 accepted")
	}
}

func TestFormatItem(t *testing.T) {
	l := Level{SrcLen: 32, DstLen: 24}
	dst := itemset.Item{Kind: flow.DstIP, Value: uint64(flow.MustParseU32("10.1.2.0"))}
	if got := FormatItem(dst, l); got != "dstIP=10.1.2.0/24" {
		t.Errorf("FormatItem = %q", got)
	}
	src := itemset.Item{Kind: flow.SrcIP, Value: uint64(flow.MustParseU32("1.2.3.4"))}
	if got := FormatItem(src, l); got != "srcIP=1.2.3.4" {
		t.Errorf("ungeneralized src = %q", got)
	}
	port := itemset.Item{Kind: flow.DstPort, Value: 80}
	if got := FormatItem(port, l); got != "dstPort=80" {
		t.Errorf("port = %q", got)
	}
}

func TestLevelString(t *testing.T) {
	if (Level{32, 24}).String() != "src/32 dst/24" {
		t.Error("level string")
	}
}
