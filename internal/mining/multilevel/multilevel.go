// Package multilevel implements multi-level frequent item-set mining
// over IP-prefix generalizations — the extension §III-D proposes for
// anomalies that affect whole network ranges ("outages or routing
// anomalies can be ... captured by using IP address prefixes as
// additional dimensions for item-set mining") and §V lists as future
// work ("mining on multilevel, multidimensional, or quantitative
// features").
//
// The implementation mines the transaction set repeatedly, with the
// source and destination addresses rolled up to configurable prefix
// lengths: a distributed scan whose individual /32 targets are all
// infrequent becomes a frequent {dstNet=a.b.c.0/24, dstPort=...}
// item-set once destinations are generalized.
//
// Determinism: levels are mined in their configured order by the
// order-insensitive base miner, and merged output is canonically sorted
// (itemset.SortSets), so results do not depend on transaction order.
package multilevel

import (
	"fmt"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// Level is one generalization: the prefix lengths applied to the source
// and destination address features (32 = no generalization, 0 = drop the
// feature entirely into a single value).
type Level struct {
	SrcLen int
	DstLen int
}

// String renders the level, e.g. "src/32 dst/24".
func (l Level) String() string { return fmt.Sprintf("src/%d dst/%d", l.SrcLen, l.DstLen) }

// DefaultLevels mines exact addresses, then /24s, then /16s.
var DefaultLevels = []Level{{32, 32}, {24, 24}, {16, 16}}

// Generalize returns a copy of txs with the address features masked to
// the level's prefix lengths. Non-address features are untouched.
func Generalize(txs []itemset.Transaction, l Level) []itemset.Transaction {
	sm, dm := mask(l.SrcLen), mask(l.DstLen)
	out := make([]itemset.Transaction, len(txs))
	for i, tx := range txs {
		tx[flow.SrcIP] = uint64(uint32(tx[flow.SrcIP]) & sm)
		tx[flow.DstIP] = uint64(uint32(tx[flow.DstIP]) & dm)
		out[i] = tx
	}
	return out
}

// LevelResult pairs a generalization level with its mining result.
type LevelResult struct {
	Level  Level
	Result *mining.Result
}

// Miner mines a transaction set at every configured level using a base
// algorithm.
type Miner struct {
	Base   mining.Miner
	Levels []Level
}

// New returns a multilevel miner over base; nil levels selects
// DefaultLevels.
func New(base mining.Miner, levels []Level) *Miner {
	if levels == nil {
		levels = DefaultLevels
	}
	return &Miner{Base: base, Levels: levels}
}

// Mine runs the base miner once per level. Results at coarser levels
// subsume finer ones in coverage but not in specificity; callers
// typically scan levels in order and stop at the first that explains the
// anomaly.
func (m *Miner) Mine(txs []itemset.Transaction, minsup int) ([]LevelResult, error) {
	if err := mining.ValidateInput(txs, minsup); err != nil {
		return nil, err
	}
	var out []LevelResult
	for _, l := range m.Levels {
		in := txs
		if l.SrcLen < 32 || l.DstLen < 32 {
			in = Generalize(txs, l)
		}
		res, err := m.Base.Mine(in, minsup)
		if err != nil {
			return nil, fmt.Errorf("multilevel: level %v: %w", l, err)
		}
		out = append(out, LevelResult{Level: l, Result: res})
	}
	return out, nil
}

// FormatItem renders an item under a level: generalized addresses print
// in CIDR form, everything else as usual.
func FormatItem(it itemset.Item, l Level) string {
	var length int
	switch it.Kind {
	case flow.SrcIP:
		length = l.SrcLen
	case flow.DstIP:
		length = l.DstLen
	default:
		return it.String()
	}
	if length >= 32 {
		return it.String()
	}
	return fmt.Sprintf("%s=%s/%d", it.Kind, flow.U32ToAddr(uint32(it.Value)), length)
}

func mask(l int) uint32 {
	if l <= 0 {
		return 0
	}
	if l >= 32 {
		return 0xffffffff
	}
	return ^uint32(0) << (32 - l)
}
