// Package fpgrowth implements the FP-Growth frequent item-set miner — the
// faster FP-tree alternative the paper's §III-E cites ("progressive
// implementations that use FP-trees ... have been shown to outperform
// standard hash tree implementations"). It produces exactly the same
// frequent item-sets as the Apriori implementation and serves as the
// performance baseline in the §III-E benchmarks.
//
// Determinism: header items are sorted by (count, canonical item order)
// before the tree is built, map iterations only filter into maps, and
// mining.BuildResult sorts all output — the result is a pure function
// of the transaction multiset (mining is order-insensitive).
package fpgrowth

import (
	"sort"

	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// Miner is the FP-Growth implementation of mining.Miner.
type Miner struct{}

// New returns an FP-Growth miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "fp-growth" }

type node struct {
	item     itemset.Item
	count    int
	parent   *node
	children map[itemset.Item]*node
	next     *node // header-table chain
}

type header struct {
	item  itemset.Item
	count int
	head  *node
}

type tree struct {
	root    *node
	headers []header // ascending total count (mining order)
	index   map[itemset.Item]int
}

func newTree() *tree {
	return &tree{
		root:  &node{children: make(map[itemset.Item]*node)},
		index: make(map[itemset.Item]int),
	}
}

// build constructs an FP-tree from (items, count) rows. counts maps each
// frequent item to its total support; rows must contain frequent items
// only.
func build(rows []row, counts map[itemset.Item]int) *tree {
	t := newTree()
	// Header order: ascending support, canonical tie-break. Insertion
	// uses the reverse (descending) order for maximal path sharing.
	for it, n := range counts {
		t.headers = append(t.headers, header{item: it, count: n})
	}
	sort.Slice(t.headers, func(i, j int) bool {
		if t.headers[i].count != t.headers[j].count {
			return t.headers[i].count < t.headers[j].count
		}
		return t.headers[i].item.Less(t.headers[j].item)
	})
	for i := range t.headers {
		t.index[t.headers[i].item] = i
	}

	scratch := make([]itemset.Item, 0, 8)
	for _, r := range rows {
		scratch = scratch[:0]
		scratch = append(scratch, r.items...)
		// Descending support order = reverse header order.
		idx := t.index
		sort.Slice(scratch, func(i, j int) bool { return idx[scratch[i]] > idx[scratch[j]] })
		t.insert(scratch, r.count)
	}
	return t
}

func (t *tree) insert(items []itemset.Item, count int) {
	cur := t.root
	for _, it := range items {
		child := cur.children[it]
		if child == nil {
			child = &node{item: it, parent: cur, children: make(map[itemset.Item]*node)}
			h := &t.headers[t.index[it]]
			child.next = h.head
			h.head = child
			cur.children[it] = child
		}
		child.count += count
		cur = child
	}
}

// row is a conditional-pattern-base entry: an item list with a count.
type row struct {
	items []itemset.Item
	count int
}

// Mine implements mining.Miner.
func (m *Miner) Mine(txs []itemset.Transaction, minsup int) (*mining.Result, error) {
	if err := mining.ValidateInput(txs, minsup); err != nil {
		return nil, err
	}

	counts := make(map[itemset.Item]int)
	for i := range txs {
		for _, it := range txs[i].Items() {
			counts[it]++
		}
	}
	frequent := make(map[itemset.Item]int)
	//detlint:ok maprange -- filters a map into a map; no order is observable
	for it, n := range counts {
		if n >= minsup {
			frequent[it] = n
		}
	}
	if len(frequent) == 0 {
		return mining.BuildResult(nil, len(txs), minsup), nil
	}

	rows := make([]row, 0, len(txs))
	for i := range txs {
		var p []itemset.Item
		for _, it := range txs[i].Items() {
			if _, ok := frequent[it]; ok {
				p = append(p, it)
			}
		}
		if len(p) > 0 {
			rows = append(rows, row{items: p, count: 1})
		}
	}

	t := build(rows, frequent)
	var all []itemset.Set
	var suffix []itemset.Item
	mineTree(t, minsup, suffix, &all)

	return mining.BuildResult(all, len(txs), minsup), nil
}

// mineTree recursively mines t, emitting every frequent item-set that
// extends suffix.
func mineTree(t *tree, minsup int, suffix []itemset.Item, out *[]itemset.Set) {
	// Headers are in ascending support order; process least frequent
	// first (the classic bottom-up sweep).
	for hi := range t.headers {
		h := &t.headers[hi]
		if h.count < minsup {
			continue
		}
		// New frequent item-set: suffix + h.item.
		pattern := make([]itemset.Item, 0, len(suffix)+1)
		pattern = append(pattern, h.item)
		pattern = append(pattern, suffix...)
		*out = append(*out, itemset.NewSet(pattern, h.count))

		// Conditional pattern base: prefix paths of every node of item.
		var base []row
		condCounts := make(map[itemset.Item]int)
		for n := h.head; n != nil; n = n.next {
			var path []itemset.Item
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			base = append(base, row{items: path, count: n.count})
			for _, it := range path {
				condCounts[it] += n.count
			}
		}
		// Keep only conditionally frequent items.
		condFrequent := make(map[itemset.Item]int)
		//detlint:ok maprange -- filters a map into a map; no order is observable
		for it, n := range condCounts {
			if n >= minsup {
				condFrequent[it] = n
			}
		}
		if len(condFrequent) == 0 {
			continue
		}
		filtered := make([]row, 0, len(base))
		for _, r := range base {
			var p []itemset.Item
			for _, it := range r.items {
				if _, ok := condFrequent[it]; ok {
					p = append(p, it)
				}
			}
			if len(p) > 0 {
				filtered = append(filtered, row{items: p, count: r.count})
			}
		}
		cond := build(filtered, condFrequent)
		mineTree(cond, minsup, pattern, out)
	}
}
