package fpgrowth

import (
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
)

func item(k flow.FeatureKind, v uint64) itemset.Item {
	return itemset.Item{Kind: k, Value: v}
}

func TestTreePathSharing(t *testing.T) {
	// Two identical rows must share one path; a divergent row forks.
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	c := item(flow.DstPort, 3)
	counts := map[itemset.Item]int{a: 3, b: 2, c: 1}
	rows := []row{
		{items: []itemset.Item{a, b}, count: 1},
		{items: []itemset.Item{a, b}, count: 1},
		{items: []itemset.Item{a, c}, count: 1},
	}
	tr := build(rows, counts)
	// Root has exactly one child (a, count 3).
	if len(tr.root.children) != 1 {
		t.Fatalf("root children = %d, want 1", len(tr.root.children))
	}
	na := tr.root.children[a]
	if na == nil || na.count != 3 {
		t.Fatalf("node a = %+v", na)
	}
	if len(na.children) != 2 {
		t.Errorf("a children = %d, want 2 (b and c)", len(na.children))
	}
	if nb := na.children[b]; nb == nil || nb.count != 2 {
		t.Errorf("node b = %+v", nb)
	}
}

func TestHeaderOrderAscendingSupport(t *testing.T) {
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	counts := map[itemset.Item]int{a: 10, b: 3}
	tr := build(nil, counts)
	if len(tr.headers) != 2 {
		t.Fatalf("headers = %d", len(tr.headers))
	}
	if tr.headers[0].item != b || tr.headers[1].item != a {
		t.Errorf("header order wrong: %v then %v", tr.headers[0].item, tr.headers[1].item)
	}
}

func TestHeaderChainsLinkAllNodes(t *testing.T) {
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	c := item(flow.DstPort, 3)
	// c is the least frequent item, so it is inserted deepest and ends
	// up under both the a- and the b-branch.
	counts := map[itemset.Item]int{a: 5, b: 4, c: 2}
	rows := []row{
		{items: []itemset.Item{a, c}, count: 1},
		{items: []itemset.Item{b, c}, count: 1},
	}
	tr := build(rows, counts)
	// c appears under both branches: its header chain must have 2 nodes.
	n := 0
	for node := tr.headers[tr.index[c]].head; node != nil; node = node.next {
		n++
	}
	if n != 2 {
		t.Errorf("c chain length = %d, want 2", n)
	}
}

func TestMineSingleItem(t *testing.T) {
	recs := make([]itemset.Transaction, 5)
	for i := range recs {
		rec := flow.Record{DstPort: 80, SrcAddr: uint32(i * 1000), DstAddr: uint32(i * 777), SrcPort: uint16(i), Protocol: uint8(i + 10), Packets: uint32(i + 100), Bytes: uint64(i + 1e6)}
		recs[i] = itemset.FromFlow(&rec)
	}
	res, err := New().Mine(recs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 1 {
		t.Fatalf("sets = %v", res.All)
	}
	if res.All[0].Items[0] != item(flow.DstPort, 80) || res.All[0].Support != 5 {
		t.Errorf("got %v", res.All[0])
	}
}

func TestConditionalTreeRecursion(t *testing.T) {
	// Construct a case that requires a two-deep conditional tree:
	// {a,b,c} x4, {a,b} x2, {c} x1 at minsup 3.
	mk := func(src, dst uint32, port uint16) itemset.Transaction {
		rec := flow.Record{SrcAddr: src, DstAddr: dst, DstPort: port,
			SrcPort: 9, Protocol: 6, Packets: 1, Bytes: 1}
		return itemset.FromFlow(&rec)
	}
	var txs []itemset.Transaction
	for i := 0; i < 4; i++ {
		txs = append(txs, mk(1, 2, 3))
	}
	// Vary everything else so only the target items are frequent.
	txs = append(txs, mk(1, 2, 1000), mk(1, 2, 2000), mk(500, 600, 3))

	res, err := New().Mine(txs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// srcIP=1 (6), dstIP=2 (6), dstPort=3 (5), srcPort=9 (7), proto (7),
	// packets (7), bytes (7) are frequent; the full 7-item-set has
	// support 4 and must be found via deep recursion.
	var full *itemset.Set
	for i := range res.All {
		if res.All[i].Size() == 7 {
			full = &res.All[i]
		}
	}
	if full == nil || full.Support != 4 {
		t.Fatalf("7-item-set missing or wrong: %v", full)
	}
}

func TestMinerName(t *testing.T) {
	if New().Name() != "fp-growth" {
		t.Error("name")
	}
}
