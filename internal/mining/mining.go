// Package mining defines the shared frequent item-set mining contract —
// the Miner interface, the Result/level statistics the paper's Table II
// reports, and the maximal-item-set filter of the "modified Apriori"
// (§II-B) — used by the apriori, fpgrowth, and eclat implementations.
//
// The contract is deterministic and order-insensitive: a Result depends
// only on the multiset of input transactions and the minimum support,
// never on transaction order, and its item-set slices are in the
// canonical itemset.SortSets order. That insensitivity is what lets
// sharded and distributed interval closes concatenate suspicious flows
// in shard or agent order and still produce byte-identical reports.
package mining

import (
	"errors"
	"fmt"

	"anomalyx/internal/itemset"
)

// ErrBadSupport is returned for non-positive minimum support values.
var ErrBadSupport = errors.New("mining: minimum support must be positive")

// LevelStat records, for one item-set size k, how many frequent
// k-item-sets were found and how many survived the maximality filter —
// the per-round narrative of Table II ("60 frequent 1-item-sets were
// found; 58 of these were removed from the output as subsets of at least
// one frequent 2-item-set...").
type LevelStat struct {
	Level    int // the k of k-item-sets
	Frequent int // frequent k-item-sets found
	Maximal  int // of those, maximal (not subset of a frequent superset)
}

// Result is the outcome of one mining run.
type Result struct {
	// All holds every frequent item-set, in the canonical report order.
	All []itemset.Set
	// Maximal holds only the maximal frequent item-sets — the modified
	// Apriori output the operator reads.
	Maximal []itemset.Set
	// Levels holds per-size statistics, index 0 = 1-item-sets.
	Levels []LevelStat
	// Transactions is the input size, MinSupport the threshold used.
	Transactions int
	MinSupport   int
}

// Miner is a frequent item-set mining algorithm over flow transactions.
type Miner interface {
	// Mine returns the frequent item-sets of txs at minimum support
	// minsup (an absolute transaction count, as in the paper).
	Mine(txs []itemset.Transaction, minsup int) (*Result, error)
	// Name identifies the algorithm ("apriori", "fp-growth", "eclat").
	Name() string
}

// BuildResult assembles a Result from the complete collection of frequent
// item-sets: it computes the maximality filter, level statistics, and the
// canonical orderings. Every miner funnels through here so that all
// algorithms produce identical, comparable results.
func BuildResult(all []itemset.Set, transactions, minsup int) *Result {
	itemset.SortSets(all)
	maximal := FilterMaximal(all)

	maxLevel := 0
	for i := range all {
		if all[i].Size() > maxLevel {
			maxLevel = all[i].Size()
		}
	}
	levels := make([]LevelStat, maxLevel)
	for i := range levels {
		levels[i].Level = i + 1
	}
	for i := range all {
		levels[all[i].Size()-1].Frequent++
	}
	for i := range maximal {
		levels[maximal[i].Size()-1].Maximal++
	}
	return &Result{
		All: all, Maximal: maximal, Levels: levels,
		Transactions: transactions, MinSupport: minsup,
	}
}

// FilterClosed returns the closed sets of a complete frequent
// collection: those with no frequent superset of *equal support*. Closed
// item-sets are the §V extension between "all" and "maximal": they lose
// no support information (every frequent set's support is derivable from
// its smallest closed superset) while still pruning redundancy. By
// support monotonicity it suffices to compare immediate supersets.
func FilterClosed(all []itemset.Set) []itemset.Set {
	support := make(map[itemset.Key]int, len(all))
	for i := range all {
		support[all[i].Key()] = all[i].Support
	}
	closedOut := make(map[itemset.Key]bool, len(all))
	for i := range all {
		s := &all[i]
		n := s.Size()
		if n < 2 {
			continue
		}
		for drop := 0; drop < n; drop++ {
			var k itemset.Key
			for j, it := range s.Items {
				if j != drop {
					k = k.Add(it)
				}
			}
			if sub, ok := support[k]; ok && sub == s.Support {
				closedOut[k] = true // subset absorbed by equal-support superset
			}
		}
	}
	var out []itemset.Set
	for i := range all {
		if !closedOut[all[i].Key()] {
			out = append(out, all[i])
		}
	}
	itemset.SortSets(out)
	return out
}

// FilterMaximal returns the maximal sets of a complete frequent
// collection: those that are not a subset of any other frequent set. By
// downward closure it suffices to check immediate (size+1) supersets,
// which the implementation does by marking every size-k subset of every
// (k+1)-set.
func FilterMaximal(all []itemset.Set) []itemset.Set {
	subsumed := make(map[itemset.Key]bool, len(all))
	for i := range all {
		s := &all[i]
		n := s.Size()
		if n < 2 {
			continue
		}
		// Mark each (n-1)-subset (drop one item at a time).
		for drop := 0; drop < n; drop++ {
			var k itemset.Key
			for j, it := range s.Items {
				if j != drop {
					k = k.Add(it)
				}
			}
			subsumed[k] = true
		}
	}
	var out []itemset.Set
	for i := range all {
		if !subsumed[all[i].Key()] {
			out = append(out, all[i])
		}
	}
	itemset.SortSets(out)
	return out
}

// ValidateInput performs the shared argument checks.
func ValidateInput(txs []itemset.Transaction, minsup int) error {
	if minsup <= 0 {
		return fmt.Errorf("%w: %d", ErrBadSupport, minsup)
	}
	return nil
}

// TopK returns the k highest-support sets of a sorted result slice (the
// paper's §II-E suggestion of ranking item-sets by frequency and keeping
// the top 10 or 20).
func TopK(sets []itemset.Set, k int) []itemset.Set {
	if k >= len(sets) {
		return sets
	}
	return sets[:k]
}

// Equal reports whether two mining results contain the same frequent
// item-sets with the same supports (used by cross-algorithm property
// tests: Apriori, FP-Growth, and Eclat must agree exactly).
func Equal(a, b *Result) bool {
	if len(a.All) != len(b.All) {
		return false
	}
	am := make(map[itemset.Key]int, len(a.All))
	for i := range a.All {
		am[a.All[i].Key()] = a.All[i].Support
	}
	for i := range b.All {
		if sup, ok := am[b.All[i].Key()]; !ok || sup != b.All[i].Support {
			return false
		}
	}
	return true
}
