// Package apriori implements the paper's modified Apriori algorithm
// (§II-B): level-wise candidate generation over seven-feature flow
// transactions, with output restricted to maximal frequent item-sets.
//
// Each round k computes the support of all candidate k-item-sets; the
// frequent ones seed the candidate generation of round k+1; the algorithm
// stops when a round finds no frequent item-sets. Because every
// transaction has exactly seven items, at most seven rounds run. Support
// counting exploits the narrow transactions: instead of a hash tree, each
// transaction is first projected onto the frequent 1-items it contains,
// and then its k-subsets (at most C(7,k) ≤ 35) are enumerated and looked
// up in the candidate table.
package apriori

import (
	"sort"

	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// Miner is the Apriori implementation of mining.Miner.
type Miner struct{}

// New returns an Apriori miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "apriori" }

// Mine implements mining.Miner.
func (m *Miner) Mine(txs []itemset.Transaction, minsup int) (*mining.Result, error) {
	if err := mining.ValidateInput(txs, minsup); err != nil {
		return nil, err
	}

	// Round 1: count every item.
	oneCounts := make(map[itemset.Item]int)
	for i := range txs {
		for _, it := range txs[i].Items() {
			oneCounts[it]++
		}
	}
	frequent1 := make(map[itemset.Item]bool)
	var all []itemset.Set
	//detlint:ok maprange -- fills a set and appends to all, which BuildResult sorts via itemset.SortSets (contract: mining is order-insensitive)
	for it, n := range oneCounts {
		if n >= minsup {
			frequent1[it] = true
			all = append(all, itemset.NewSet([]itemset.Item{it}, n))
		}
	}
	if len(frequent1) == 0 {
		return mining.BuildResult(nil, len(txs), minsup), nil
	}

	// Project every transaction onto its frequent 1-items (canonical
	// order is preserved because Items() iterates kinds in order).
	projected := make([][]itemset.Item, 0, len(txs))
	for i := range txs {
		var p []itemset.Item
		for _, it := range txs[i].Items() {
			if frequent1[it] {
				p = append(p, it)
			}
		}
		if len(p) >= 2 {
			projected = append(projected, p)
		}
	}

	// Seed the level loop with the frequent 1-item-sets.
	prev := make([][]itemset.Item, 0, len(frequent1))
	prevSupport := make(map[itemset.Key]int, len(frequent1))
	//detlint:ok maprange -- prev is re-sorted by sortSetsLex on the line after the loop
	for it := range frequent1 {
		prev = append(prev, []itemset.Item{it})
		prevSupport[itemset.KeyOf([]itemset.Item{it})] = oneCounts[it]
	}
	sortSetsLex(prev)

	for k := 2; k <= len(txs[0]); k++ {
		candidates := generateCandidates(prev, prevSupport)
		if len(candidates) == 0 {
			break
		}
		counts := make(map[itemset.Key]int, len(candidates))
		//detlint:ok maprange -- zero-initializes a map from a map; no order is observable
		for key := range candidates {
			counts[key] = 0
		}
		for _, p := range projected {
			if len(p) < k {
				continue
			}
			forEachSubset(p, k, func(key itemset.Key) {
				if _, ok := counts[key]; ok {
					counts[key]++
				}
			})
		}

		var next [][]itemset.Item
		nextSupport := make(map[itemset.Key]int)
		//detlint:ok maprange -- next is sortSetsLex-sorted below and all is sorted by BuildResult (contract: mining is order-insensitive)
		for key, n := range counts {
			if n >= minsup {
				items := key.Items()
				next = append(next, items)
				nextSupport[key] = n
				all = append(all, itemset.NewSet(items, n))
			}
		}
		if len(next) == 0 {
			break
		}
		sortSetsLex(next)
		prev, prevSupport = next, nextSupport
	}

	return mining.BuildResult(all, len(txs), minsup), nil
}

// generateCandidates performs the classic Apriori join+prune: two
// frequent (k-1)-item-sets sharing their first k-2 items join into a
// k-candidate, which is kept only if all its (k-1)-subsets are frequent.
func generateCandidates(prev [][]itemset.Item, prevSupport map[itemset.Key]int) map[itemset.Key]bool {
	out := make(map[itemset.Key]bool)
	n := len(prev)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := prev[i], prev[j]
			if !samePrefix(a, b) {
				// prev is sorted lexicographically, so once the prefix
				// changes no later j can match i.
				break
			}
			la, lb := a[len(a)-1], b[len(b)-1]
			if la.Kind == lb.Kind {
				// Two items of the same feature kind can never co-occur
				// in a transaction.
				continue
			}
			cand := make([]itemset.Item, len(a)+1)
			copy(cand, a)
			cand[len(a)] = lb
			sort.Slice(cand, func(x, y int) bool { return cand[x].Less(cand[y]) })

			if prunedByInfrequentSubset(cand, prevSupport) {
				continue
			}
			out[itemset.KeyOf(cand)] = true
		}
	}
	return out
}

// prunedByInfrequentSubset applies the Apriori property: a candidate with
// any infrequent (k-1)-subset cannot be frequent.
func prunedByInfrequentSubset(cand []itemset.Item, prevSupport map[itemset.Key]int) bool {
	for drop := 0; drop < len(cand); drop++ {
		var key itemset.Key
		for j, it := range cand {
			if j != drop {
				key = key.Add(it)
			}
		}
		if _, ok := prevSupport[key]; !ok {
			return true
		}
	}
	return false
}

// samePrefix reports whether a and b agree on all but their last item.
func samePrefix(a, b []itemset.Item) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forEachSubset enumerates all k-subsets of items (in canonical order)
// and invokes fn with each subset's key.
func forEachSubset(items []itemset.Item, k int, fn func(itemset.Key)) {
	var rec func(start int, picked int, key itemset.Key)
	rec = func(start, picked int, key itemset.Key) {
		if picked == k {
			fn(key)
			return
		}
		// Not enough items left to complete the subset.
		for i := start; len(items)-i >= k-picked; i++ {
			rec(i+1, picked+1, key.Add(items[i]))
		}
	}
	rec(0, 0, itemset.Key{})
}

// sortSetsLex orders item slices lexicographically so the join can use
// the sorted-prefix early exit.
func sortSetsLex(sets [][]itemset.Item) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k].Less(b[k])
			}
		}
		return len(a) < len(b)
	})
}
