package apriori

import (
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
)

func item(k flow.FeatureKind, v uint64) itemset.Item {
	return itemset.Item{Kind: k, Value: v}
}

func TestGenerateCandidatesJoin(t *testing.T) {
	// {a,b} and {a,c} share prefix {a} -> candidate {a,b,c} iff all
	// 2-subsets are frequent.
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	c := item(flow.DstPort, 3)
	prev := [][]itemset.Item{{a, b}, {a, c}, {b, c}}
	support := map[itemset.Key]int{
		itemset.KeyOf([]itemset.Item{a, b}): 5,
		itemset.KeyOf([]itemset.Item{a, c}): 5,
		itemset.KeyOf([]itemset.Item{b, c}): 5,
	}
	sortSetsLex(prev)
	cands := generateCandidates(prev, support)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	want := itemset.KeyOf([]itemset.Item{a, b, c})
	if !cands[want] {
		t.Errorf("missing candidate {a,b,c}")
	}
}

func TestGenerateCandidatesPrunesInfrequentSubset(t *testing.T) {
	// Without {b,c} frequent, {a,b,c} must be pruned.
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	c := item(flow.DstPort, 3)
	prev := [][]itemset.Item{{a, b}, {a, c}}
	support := map[itemset.Key]int{
		itemset.KeyOf([]itemset.Item{a, b}): 5,
		itemset.KeyOf([]itemset.Item{a, c}): 5,
	}
	sortSetsLex(prev)
	if cands := generateCandidates(prev, support); len(cands) != 0 {
		t.Errorf("candidates = %v, want none", cands)
	}
}

func TestGenerateCandidatesSkipsSameKind(t *testing.T) {
	// {a, port80} and {a, port443} share the prefix but their last items
	// have the same feature kind: no transaction can contain both.
	a := item(flow.SrcIP, 1)
	p80 := item(flow.DstPort, 80)
	p443 := item(flow.DstPort, 443)
	prev := [][]itemset.Item{{a, p80}, {a, p443}}
	support := map[itemset.Key]int{
		itemset.KeyOf([]itemset.Item{a, p80}):  5,
		itemset.KeyOf([]itemset.Item{a, p443}): 5,
	}
	sortSetsLex(prev)
	if cands := generateCandidates(prev, support); len(cands) != 0 {
		t.Errorf("same-kind join produced candidates: %v", cands)
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	items := []itemset.Item{
		item(flow.SrcIP, 1), item(flow.DstIP, 2),
		item(flow.DstPort, 3), item(flow.Proto, 4),
	}
	for k, want := range map[int]int{1: 4, 2: 6, 3: 4, 4: 1} {
		got := 0
		forEachSubset(items, k, func(itemset.Key) { got++ })
		if got != want {
			t.Errorf("C(4,%d): got %d subsets, want %d", k, got, want)
		}
	}
	// k > len(items): nothing.
	got := 0
	forEachSubset(items, 5, func(itemset.Key) { got++ })
	if got != 0 {
		t.Errorf("C(4,5) = %d", got)
	}
}

func TestForEachSubsetKeysAreCorrect(t *testing.T) {
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	c := item(flow.DstPort, 3)
	seen := map[itemset.Key]bool{}
	forEachSubset([]itemset.Item{a, b, c}, 2, func(k itemset.Key) { seen[k] = true })
	for _, pair := range [][]itemset.Item{{a, b}, {a, c}, {b, c}} {
		if !seen[itemset.KeyOf(pair)] {
			t.Errorf("missing subset %v", pair)
		}
	}
}

func TestSamePrefix(t *testing.T) {
	a := item(flow.SrcIP, 1)
	b := item(flow.DstIP, 2)
	c := item(flow.DstPort, 3)
	if !samePrefix([]itemset.Item{a, b}, []itemset.Item{a, c}) {
		t.Error("shared prefix not recognized")
	}
	if samePrefix([]itemset.Item{a, b}, []itemset.Item{b, c}) {
		t.Error("different prefix accepted")
	}
	// 1-item-sets: the empty prefix always matches.
	if !samePrefix([]itemset.Item{a}, []itemset.Item{b}) {
		t.Error("empty prefix should match")
	}
}

func TestMinerName(t *testing.T) {
	if New().Name() != "apriori" {
		t.Error("name")
	}
}

func TestSevenPassBound(t *testing.T) {
	// Identical transactions: the full 7-item-set is frequent, and the
	// algorithm must terminate after at most seven levels.
	rec := flow.Record{SrcAddr: 1, DstAddr: 2, SrcPort: 3, DstPort: 4, Protocol: 6, Packets: 5, Bytes: 6}
	txs := make([]itemset.Transaction, 10)
	for i := range txs {
		txs[i] = itemset.FromFlow(&rec)
	}
	res, err := New().Mine(txs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != flow.NumFeatures {
		t.Errorf("levels = %d, want 7", len(res.Levels))
	}
	// 2^7 - 1 frequent item-sets, exactly one maximal.
	if len(res.All) != 127 {
		t.Errorf("frequent sets = %d, want 127", len(res.All))
	}
	if len(res.Maximal) != 1 || res.Maximal[0].Size() != 7 {
		t.Errorf("maximal = %v", res.Maximal)
	}
}
