package mining_test

import (
	"fmt"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining/apriori"
)

// Mining the §II-B way: flows become seven-item transactions, and the
// modified Apriori reports only maximal frequent item-sets.
func Example() {
	var flows []flow.Record
	// A small flood: 6 identical-signature flows to one victim...
	for i := 0; i < 6; i++ {
		flows = append(flows, flow.Record{
			SrcAddr: uint32(100 + i), DstAddr: flow.MustParseU32("10.0.0.42"),
			SrcPort: uint16(40000 + i), DstPort: 7000,
			Protocol: flow.ProtoTCP, Packets: 1, Bytes: 40,
		})
	}
	// ...plus unrelated background flows.
	for i := 0; i < 4; i++ {
		flows = append(flows, flow.Record{
			SrcAddr: uint32(i), DstAddr: uint32(1000 + i),
			SrcPort: uint16(i), DstPort: uint16(i),
			Protocol: flow.ProtoUDP, Packets: uint32(10 + i), Bytes: uint64(900 + i),
		})
	}

	res, err := apriori.New().Mine(itemset.FromFlows(flows), 5)
	if err != nil {
		panic(err)
	}
	for _, s := range res.Maximal {
		fmt.Println(s.String())
	}
	// Output:
	// {dstIP=10.0.0.42, dstPort=7000, proto=6, packets=1, bytes=40} (support 6)
}
