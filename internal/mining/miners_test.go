package mining_test

import (
	"testing"
	"testing/quick"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/mining/fpgrowth"
	"anomalyx/internal/stats"
)

var allMiners = []mining.Miner{apriori.New(), fpgrowth.New(), eclat.New()}

// bruteForce is the oracle: enumerate every subset of every transaction
// and count supports directly.
func bruteForce(txs []itemset.Transaction, minsup int) *mining.Result {
	counts := make(map[itemset.Key]int)
	for t := range txs {
		items := txs[t].Items()
		// All 2^7-1 nonempty subsets.
		for mask := 1; mask < 1<<len(items); mask++ {
			var key itemset.Key
			for b := 0; b < len(items); b++ {
				if mask&(1<<b) != 0 {
					key = key.Add(items[b])
				}
			}
			counts[key]++
		}
	}
	var all []itemset.Set
	for key, n := range counts {
		if n >= minsup {
			all = append(all, itemset.NewSet(key.Items(), n))
		}
	}
	return mining.BuildResult(all, len(txs), minsup)
}

// randomTxs generates small random transactions with limited value
// cardinality so frequent sets actually occur.
func randomTxs(seed uint64, n int) []itemset.Transaction {
	r := stats.NewRand(seed)
	txs := make([]itemset.Transaction, n)
	for i := range txs {
		rec := flow.Record{
			SrcAddr: uint32(r.IntN(4)), DstAddr: uint32(r.IntN(3)),
			SrcPort: uint16(r.IntN(5)), DstPort: uint16(r.IntN(3)),
			Protocol: uint8(6 + 11*r.IntN(2)),
			Packets:  uint32(1 + r.IntN(3)), Bytes: uint64(40 * (1 + r.IntN(3))),
		}
		txs[i] = itemset.FromFlow(&rec)
	}
	return txs
}

func TestMinersMatchBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		txs := randomTxs(seed, 200)
		for _, minsup := range []int{20, 50, 120} {
			want := bruteForce(txs, minsup)
			for _, m := range allMiners {
				got, err := m.Mine(txs, minsup)
				if err != nil {
					t.Fatalf("%s: %v", m.Name(), err)
				}
				if !mining.Equal(got, want) {
					t.Errorf("seed=%d minsup=%d: %s disagrees with brute force (%d vs %d sets)",
						seed, minsup, m.Name(), len(got.All), len(want.All))
				}
			}
		}
	}
}

func TestMinersAgreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw, supRaw uint8) bool {
		n := 50 + int(nRaw)%200
		minsup := 5 + int(supRaw)%40
		txs := randomTxs(seed, n)
		ref, err := allMiners[0].Mine(txs, minsup)
		if err != nil {
			return false
		}
		for _, m := range allMiners[1:] {
			got, err := m.Mine(txs, minsup)
			if err != nil || !mining.Equal(got, ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMinersSupportMonotonicity(t *testing.T) {
	// Raising the minimum support can only shrink the result set.
	txs := randomTxs(7, 300)
	for _, m := range allMiners {
		prevCount := -1
		for _, minsup := range []int{10, 30, 60, 120, 250} {
			res, err := m.Mine(txs, minsup)
			if err != nil {
				t.Fatal(err)
			}
			if prevCount >= 0 && len(res.All) > prevCount {
				t.Errorf("%s: result grew when support rose", m.Name())
			}
			prevCount = len(res.All)
			// Every reported support must meet the threshold.
			for i := range res.All {
				if res.All[i].Support < minsup {
					t.Errorf("%s: set below minsup: %v", m.Name(), res.All[i])
				}
			}
		}
	}
}

func TestMinersDownwardClosure(t *testing.T) {
	// Every subset of a frequent item-set must be frequent with at
	// least the same support.
	txs := randomTxs(11, 400)
	for _, m := range allMiners {
		res, err := m.Mine(txs, 25)
		if err != nil {
			t.Fatal(err)
		}
		bySupport := make(map[itemset.Key]int)
		for i := range res.All {
			bySupport[res.All[i].Key()] = res.All[i].Support
		}
		for i := range res.All {
			s := &res.All[i]
			if s.Size() < 2 {
				continue
			}
			for drop := 0; drop < s.Size(); drop++ {
				var key itemset.Key
				for j, it := range s.Items {
					if j != drop {
						key = key.Add(it)
					}
				}
				sub, ok := bySupport[key]
				if !ok {
					t.Fatalf("%s: subset of frequent set missing", m.Name())
				}
				if sub < s.Support {
					t.Fatalf("%s: subset support %d < superset %d", m.Name(), sub, s.Support)
				}
			}
		}
	}
}

func TestMinersMaximalSetsAreMaximal(t *testing.T) {
	txs := randomTxs(13, 300)
	for _, m := range allMiners {
		res, err := m.Mine(txs, 20)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Maximal {
			for j := range res.All {
				if res.Maximal[i].Size() < res.All[j].Size() &&
					res.Maximal[i].SubsetOf(&res.All[j]) {
					t.Fatalf("%s: %v is subset of frequent %v",
						m.Name(), res.Maximal[i], res.All[j])
				}
			}
		}
		// And every non-maximal frequent set must have a frequent
		// superset.
		maximal := make(map[itemset.Key]bool)
		for i := range res.Maximal {
			maximal[res.Maximal[i].Key()] = true
		}
		for i := range res.All {
			if maximal[res.All[i].Key()] {
				continue
			}
			hasSuper := false
			for j := range res.All {
				if res.All[i].Size() < res.All[j].Size() && res.All[i].SubsetOf(&res.All[j]) {
					hasSuper = true
					break
				}
			}
			if !hasSuper {
				t.Fatalf("%s: non-maximal %v has no frequent superset", m.Name(), res.All[i])
			}
		}
	}
}

func TestMinersRejectBadSupport(t *testing.T) {
	txs := randomTxs(1, 10)
	for _, m := range allMiners {
		if _, err := m.Mine(txs, 0); err == nil {
			t.Errorf("%s accepted minsup 0", m.Name())
		}
	}
}

func TestMinersEmptyInput(t *testing.T) {
	for _, m := range allMiners {
		res, err := m.Mine(nil, 5)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res.All) != 0 || len(res.Maximal) != 0 {
			t.Errorf("%s: empty input produced sets", m.Name())
		}
	}
}

func TestMinersNothingFrequent(t *testing.T) {
	// All-distinct transactions, minsup 2: nothing is frequent.
	r := stats.NewRand(5)
	txs := make([]itemset.Transaction, 50)
	for i := range txs {
		rec := flow.Record{
			SrcAddr: uint32(i), DstAddr: uint32(1000 + i),
			SrcPort: uint16(i), DstPort: uint16(2000 + i),
			Protocol: uint8(i % 250), Packets: uint32(10000 + i), Bytes: uint64(90000 + i),
		}
		_ = r
		txs[i] = itemset.FromFlow(&rec)
	}
	for _, m := range allMiners {
		res, err := m.Mine(txs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.All) != 0 {
			t.Errorf("%s found %d sets in all-distinct input", m.Name(), len(res.All))
		}
	}
}

func TestMinersKnownExample(t *testing.T) {
	// 10 identical flows + 5 sharing only the port: the full 7-item-set
	// of the identical flows is frequent and maximal at minsup 8.
	rec := flow.Record{SrcAddr: 1, DstAddr: 2, SrcPort: 3, DstPort: 4, Protocol: 6, Packets: 5, Bytes: 200}
	var txs []itemset.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, itemset.FromFlow(&rec))
	}
	for i := 0; i < 5; i++ {
		other := flow.Record{SrcAddr: uint32(100 + i), DstAddr: uint32(200 + i), SrcPort: uint16(i), DstPort: 4, Protocol: 6, Packets: uint32(20 + i), Bytes: uint64(1000 + i)}
		txs = append(txs, itemset.FromFlow(&other))
	}
	for _, m := range allMiners {
		res, err := m.Mine(txs, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Maximal) != 1 {
			t.Fatalf("%s: maximal = %v, want the single 7-item-set", m.Name(), res.Maximal)
		}
		if res.Maximal[0].Size() != flow.NumFeatures || res.Maximal[0].Support != 10 {
			t.Errorf("%s: got %v", m.Name(), res.Maximal[0])
		}
		// At minsup 8 the pair {dstPort=4, proto=6} has support 15; it
		// is subsumed by the 7-item-set only when... it is NOT: support
		// 15 > 10, but maximality ignores support. Check it is pruned.
		for i := range res.Maximal {
			if res.Maximal[i].Size() == 2 {
				t.Errorf("%s: 2-item-set should be subsumed: %v", m.Name(), res.Maximal[i])
			}
		}
	}
}

func TestWindowMatchesBatchEclat(t *testing.T) {
	txs := randomTxs(21, 500)
	const capacity = 200
	w := eclat.NewWindow(capacity)
	for _, tx := range txs {
		w.Push(tx)
	}
	if w.Len() != capacity {
		t.Fatalf("window length %d, want %d", w.Len(), capacity)
	}
	got, err := w.Mine(15)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eclat.New().Mine(txs[len(txs)-capacity:], 15)
	if err != nil {
		t.Fatal(err)
	}
	if !mining.Equal(got, want) {
		t.Errorf("window mining (%d sets) != batch mining of suffix (%d sets)",
			len(got.All), len(want.All))
	}
}

func TestWindowPartialFill(t *testing.T) {
	txs := randomTxs(22, 50)
	w := eclat.NewWindow(100)
	for _, tx := range txs {
		w.Push(tx)
	}
	if w.Len() != 50 {
		t.Fatalf("Len = %d", w.Len())
	}
	got, err := w.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eclat.New().Mine(txs, 10)
	if !mining.Equal(got, want) {
		t.Error("partially filled window disagrees with batch")
	}
}

func TestWindowSlidesOldDataOut(t *testing.T) {
	// Fill with port-7777 flows, then push enough other flows to evict
	// them all; port 7777 must vanish from the result.
	w := eclat.NewWindow(100)
	anomalous := itemset.FromFlow(&flow.Record{DstPort: 7777, Protocol: 6, Packets: 1, Bytes: 40})
	for i := 0; i < 100; i++ {
		w.Push(anomalous)
	}
	res, _ := w.Mine(50)
	if len(res.All) == 0 {
		t.Fatal("full window of identical flows must be frequent")
	}
	benign := itemset.FromFlow(&flow.Record{DstPort: 80, Protocol: 6, Packets: 2, Bytes: 99})
	for i := 0; i < 100; i++ {
		w.Push(benign)
	}
	res, _ = w.Mine(50)
	for i := range res.All {
		for _, it := range res.All[i].Items {
			if it.Kind == flow.DstPort && it.Value == 7777 {
				t.Fatal("evicted flows still frequent")
			}
		}
	}
}

func TestWindowCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	eclat.NewWindow(0)
}

func TestWindowCompactionKeepsResults(t *testing.T) {
	// Push far beyond capacity to force repeated compaction, then
	// verify agreement with batch mining of the suffix.
	txs := randomTxs(23, 2000)
	const capacity = 150
	w := eclat.NewWindow(capacity)
	for _, tx := range txs {
		w.Push(tx)
	}
	got, err := w.Mine(20)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eclat.New().Mine(txs[len(txs)-capacity:], 20)
	if !mining.Equal(got, want) {
		t.Error("compacted window disagrees with batch suffix")
	}
}
