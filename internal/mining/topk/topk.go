// Package topk implements top-k frequent item-set mining — the §II-E
// operational mode ("one can keep only the top item-sets according to
// the frequency ranking ... the top 10 or 20 as desired") and a §V
// extension ("mining top-k item-sets"). Instead of guessing a minimum
// support by trial and error, the operator asks for the k most frequent
// item-sets; the miner raises its support threshold dynamically as
// better candidates accumulate, pruning the search the same way a
// well-chosen support would.
//
// The result is deterministic: the search visits candidates in a fixed
// (support, item) order and the output is itemset.SortSets-sorted, so
// the same transaction multiset yields the same top-k slice — including
// which sets survive a tie at the k-th support — regardless of
// transaction order.
package topk

import (
	"container/heap"
	"sort"

	"anomalyx/internal/itemset"
)

// Options tune the search.
type Options struct {
	// MinSize ignores item-sets smaller than this (size-1 item-sets are
	// usually uninformative for extraction; the default keeps all).
	MinSize int
	// Floor is the initial support threshold (default 2: singletons
	// never dominate the budget).
	Floor int
}

// Result holds the k highest-support item-sets in canonical report
// order, plus the support threshold the search converged to.
type Result struct {
	Sets []itemset.Set
	// FinalSupport is the dynamic threshold at termination: the support
	// of the k-th best set (or the floor when fewer than k exist).
	FinalSupport int
}

// Mine returns the k most frequent item-sets of txs. It runs an
// Eclat-style vertical search whose support threshold rises to the
// current k-th best support, so the search space shrinks as results
// accumulate.
func Mine(txs []itemset.Transaction, k int, opts Options) *Result {
	if k <= 0 {
		return &Result{FinalSupport: opts.Floor}
	}
	if opts.Floor < 1 {
		opts.Floor = 2
	}

	lists := make(map[itemset.Item][]int32)
	for i := range txs {
		for _, it := range txs[i].Items() {
			lists[it] = append(lists[it], int32(i))
		}
	}

	h := &setHeap{}
	heap.Init(h)
	threshold := opts.Floor
	push := func(s itemset.Set) {
		if s.Size() < opts.MinSize {
			return
		}
		if h.Len() < k {
			heap.Push(h, s)
		} else if s.Support > (*h)[0].Support {
			(*h)[0] = s
			heap.Fix(h, 0)
		}
		if h.Len() == k && (*h)[0].Support+1 > threshold {
			threshold = (*h)[0].Support + 1
		}
	}

	type vert struct {
		item itemset.Item
		tids []int32
	}
	var roots []vert
	for it, tids := range lists {
		if len(tids) >= opts.Floor {
			roots = append(roots, vert{item: it, tids: tids})
		}
	}
	// Visit the most frequent roots first so the threshold rises early.
	sort.Slice(roots, func(i, j int) bool {
		if len(roots[i].tids) != len(roots[j].tids) {
			return len(roots[i].tids) > len(roots[j].tids)
		}
		return roots[i].item.Less(roots[j].item)
	})

	// Every item-set is pushed when it is *created* (roots below, larger
	// sets inside the pair loop) rather than when the recursion visits
	// it, so the heap fills — and the threshold rises — during the very
	// first sweep. dfs assumes ext is sorted by descending tid count, so
	// both loops stop outright at the first entry below the threshold.
	for i := range roots {
		push(itemset.NewSet([]itemset.Item{roots[i].item}, len(roots[i].tids)))
	}
	var dfs func(prefix []itemset.Item, ext []vert)
	dfs = func(prefix []itemset.Item, ext []vert) {
		for i := range ext {
			if len(ext[i].tids) < threshold && h.Len() == k {
				break // sorted: every later entry is at most as frequent
			}
			withItem := append(prefix, ext[i].item)

			var next []vert
			for j := i + 1; j < len(ext); j++ {
				// Upper bound: an intersection cannot beat the shorter
				// list, and ext is sorted by descending tid count.
				if h.Len() == k && len(ext[j].tids) < threshold {
					break
				}
				if ext[j].item.Kind == ext[i].item.Kind {
					continue
				}
				tids := intersect(ext[i].tids, ext[j].tids)
				if len(tids) < opts.Floor {
					continue
				}
				push(itemset.NewSet(append(withItem, ext[j].item), len(tids)))
				// Anti-monotonicity: once the top-k heap is full, any
				// extension below the risen threshold can neither enter
				// the result nor produce descendants that could.
				eff := opts.Floor
				if h.Len() == k && threshold > eff {
					eff = threshold
				}
				if len(tids) >= eff {
					next = append(next, vert{item: ext[j].item, tids: tids})
				}
			}
			if len(next) > 0 {
				sort.Slice(next, func(a, b int) bool {
					if len(next[a].tids) != len(next[b].tids) {
						return len(next[a].tids) > len(next[b].tids)
					}
					return next[a].item.Less(next[b].item)
				})
				dfs(withItem, next)
			}
		}
	}
	dfs(nil, roots)

	out := &Result{FinalSupport: threshold}
	out.Sets = make([]itemset.Set, h.Len())
	for i := h.Len() - 1; i >= 0; i-- {
		out.Sets[i] = heap.Pop(h).(itemset.Set)
	}
	itemset.SortSets(out.Sets)
	return out
}

// setHeap is a min-heap by support (worst of the current top-k on top).
type setHeap []itemset.Set

func (h setHeap) Len() int           { return len(h) }
func (h setHeap) Less(i, j int) bool { return h[i].Support < h[j].Support }
func (h setHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *setHeap) Push(x any)        { *h = append(*h, x.(itemset.Set)) }
func (h *setHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func intersect(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
