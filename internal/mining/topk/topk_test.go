package topk

import (
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/stats"
)

func randomTxs(seed uint64, n int) []itemset.Transaction {
	r := stats.NewRand(seed)
	txs := make([]itemset.Transaction, n)
	for i := range txs {
		rec := flow.Record{
			SrcAddr: uint32(r.IntN(5)), DstAddr: uint32(r.IntN(4)),
			SrcPort: uint16(r.IntN(6)), DstPort: uint16(r.IntN(3)),
			Protocol: uint8(6 + 11*r.IntN(2)),
			Packets:  uint32(1 + r.IntN(3)), Bytes: uint64(40 * (1 + r.IntN(2))),
		}
		txs[i] = itemset.FromFlow(&rec)
	}
	return txs
}

// TestMatchesExhaustiveRanking: the top-k result must equal the k best of
// a full Eclat run at the floor support.
func TestMatchesExhaustiveRanking(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		txs := randomTxs(seed, 300)
		for _, k := range []int{1, 5, 20, 100} {
			got := Mine(txs, k, Options{})
			full, err := eclat.New().Mine(txs, 2)
			if err != nil {
				t.Fatal(err)
			}
			want := full.All
			if k < len(want) {
				want = want[:k]
			}
			if len(got.Sets) != len(want) {
				t.Fatalf("seed %d k=%d: got %d sets, want %d", seed, k, len(got.Sets), len(want))
			}
			// Supports must match position-wise (set identity can differ
			// on ties).
			for i := range want {
				if got.Sets[i].Support != want[i].Support {
					t.Errorf("seed %d k=%d pos %d: support %d, want %d",
						seed, k, i, got.Sets[i].Support, want[i].Support)
				}
			}
		}
	}
}

func TestThresholdRises(t *testing.T) {
	txs := randomTxs(7, 500)
	res := Mine(txs, 5, Options{})
	if res.FinalSupport <= 2 {
		t.Errorf("threshold did not rise: %d", res.FinalSupport)
	}
	// The 5th best support must be >= threshold-1.
	if len(res.Sets) == 5 && res.Sets[4].Support < res.FinalSupport-1 {
		t.Errorf("kth support %d vs threshold %d", res.Sets[4].Support, res.FinalSupport)
	}
}

func TestMinSizeFilter(t *testing.T) {
	txs := randomTxs(9, 300)
	res := Mine(txs, 10, Options{MinSize: 2})
	if len(res.Sets) == 0 {
		t.Fatal("no sets")
	}
	for i := range res.Sets {
		if res.Sets[i].Size() < 2 {
			t.Errorf("size-%d set passed the filter", res.Sets[i].Size())
		}
	}
}

func TestKZeroAndEmptyInput(t *testing.T) {
	if res := Mine(randomTxs(1, 10), 0, Options{}); len(res.Sets) != 0 {
		t.Error("k=0 returned sets")
	}
	if res := Mine(nil, 5, Options{}); len(res.Sets) != 0 {
		t.Error("empty input returned sets")
	}
}

func TestKLargerThanUniverse(t *testing.T) {
	txs := randomTxs(3, 100)
	res := Mine(txs, 100000, Options{})
	full, _ := eclat.New().Mine(txs, 2)
	if len(res.Sets) != len(full.All) {
		t.Errorf("got %d sets, universe has %d", len(res.Sets), len(full.All))
	}
}

func TestDeterministicOutput(t *testing.T) {
	txs := randomTxs(5, 400)
	a := Mine(txs, 15, Options{})
	b := Mine(txs, 15, Options{})
	if len(a.Sets) != len(b.Sets) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Sets {
		if a.Sets[i].String() != b.Sets[i].String() {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a.Sets[i], b.Sets[i])
		}
	}
}
