package eclat

import (
	"reflect"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
)

// fuzzTxs decodes data into low-cardinality transactions, 7 bytes per
// flow record, so random inputs still produce frequent co-occurrences.
func fuzzTxs(data []byte) []itemset.Transaction {
	var txs []itemset.Transaction
	for len(data) >= 7 {
		b := data[:7]
		data = data[7:]
		rec := flow.Record{
			SrcAddr: uint32(b[0] % 8), DstAddr: uint32(b[1] % 6),
			SrcPort: uint16(b[2] % 8), DstPort: uint16(b[3] % 4),
			Protocol: b[4] % 3,
			Packets:  uint32(b[5]%4) + 1, Bytes: uint64(b[6]%4+1) * 40,
		}
		txs = append(txs, itemset.FromFlow(&rec))
	}
	return txs
}

// FuzzEclatParallel drives the parallel miner against the sequential one
// on random transaction sets: for any input, minimum support, and worker
// count, the two Results must be deeply equal (same frequent sets,
// supports, canonical order, and level statistics).
func FuzzEclatParallel(f *testing.F) {
	f.Add([]byte{}, byte(1), byte(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 1, 2, 3, 4, 5, 6, 7, 9, 9, 9, 9, 9, 9, 9}, byte(2), byte(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 7, 7, 7, 7, 7, 7, 7}, byte(1), byte(8))
	f.Fuzz(func(t *testing.T, data []byte, minsupRaw, workers byte) {
		txs := fuzzTxs(data)
		minsup := 1 + int(minsupRaw)%(len(txs)+1)
		w := int(workers%12) + 1

		want, err := New().Mine(txs, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := New().Parallel(w).Mine(txs, minsup)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minsup=%d workers=%d: parallel result diverged\ngot:  %+v\nwant: %+v",
				minsup, w, got, want)
		}
	})
}
