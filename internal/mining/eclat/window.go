package eclat

import (
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// Window is a sliding-window frequent item-set miner: it keeps the most
// recent capacity transactions in vertical form and mines the window on
// demand — the streaming extension the paper lists as related/future work
// (Li & Deng's sliding-window Eclat [21], §IV/§V). Push is O(items per
// transaction) amortized; Mine runs Eclat over the current window without
// rescanning the transaction history.
type Window struct {
	capacity int
	seq      int64 // next transaction id
	lists    map[itemset.Item][]int64
	live     int   // transactions currently inside the window
	stale    int64 // tids dropped from the window so far (= seq - live)
}

// NewWindow creates a sliding window over the most recent capacity
// transactions. It panics if capacity is not positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("eclat: window capacity must be positive")
	}
	return &Window{capacity: capacity, lists: make(map[itemset.Item][]int64)}
}

// Len returns the number of transactions currently in the window.
func (w *Window) Len() int { return w.live }

// Capacity returns the window size.
func (w *Window) Capacity() int { return w.capacity }

// Push appends one transaction, evicting the oldest when full.
func (w *Window) Push(tx itemset.Transaction) {
	tid := w.seq
	w.seq++
	for _, it := range tx.Items() {
		w.lists[it] = append(w.lists[it], tid)
	}
	if w.live < w.capacity {
		w.live++
	} else {
		w.stale++
	}
	// Compact lazily: when more than half of a hot list would be stale
	// the next Mine pays for it; global compaction keeps memory bounded.
	if w.stale > int64(w.capacity) {
		w.compact()
	}
}

// compact drops evicted tids from every list.
func (w *Window) compact() {
	min := w.minTid()
	//detlint:ok maprange -- trims each tid-list independently; per-key mutation is order-insensitive
	for it, tids := range w.lists {
		i := lowerBound(tids, min)
		if i == len(tids) {
			delete(w.lists, it)
			continue
		}
		if i > 0 {
			w.lists[it] = append(tids[:0], tids[i:]...)
		}
	}
	w.stale = 0
}

// minTid returns the smallest tid still inside the window.
func (w *Window) minTid() int64 { return w.seq - int64(w.live) }

// Mine returns the frequent item-sets of the current window contents at
// the given absolute minimum support.
func (w *Window) Mine(minsup int) (*mining.Result, error) {
	if err := mining.ValidateInput(nil, minsup); err != nil {
		return nil, err
	}
	min := w.minTid()
	var roots []vert
	//detlint:ok maprange -- mineVertical sorts roots into canonical item order before the DFS (contract: mining is order-insensitive)
	for it, tids := range w.lists {
		i := lowerBound(tids, min)
		livePart := tids[i:]
		if len(livePart) < minsup {
			continue
		}
		// Re-base onto int32 offsets for the shared DFS.
		rebased := make([]int32, len(livePart))
		for j, t := range livePart {
			rebased[j] = int32(t - min)
		}
		roots = append(roots, vert{item: it, tids: rebased})
	}
	all := mineVertical(roots, minsup, 1)
	return mining.BuildResult(all, w.live, minsup), nil
}

// lowerBound returns the first index whose tid is >= min.
func lowerBound(tids []int64, min int64) int {
	lo, hi := 0, len(tids)
	for lo < hi {
		mid := (lo + hi) / 2
		if tids[mid] < min {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
