// Package eclat implements the Eclat frequent item-set miner (vertical
// tid-list intersection, Zaki [35] in the paper's bibliography) plus the
// sliding-window variant sketched by Li and Deng [21] for monitoring
// flows in motion. Both produce exactly the same frequent item-sets as
// the Apriori and FP-Growth implementations.
//
// The miner optionally parallelizes over first-item equivalence classes
// (Parallel): the depth-first search below each frequent 1-item prefix
// touches only tid-list intersections of that prefix, so the classes
// mine independently and their results concatenate in canonical item
// order — the exact slice the sequential search produces.
package eclat

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// Miner is the Eclat implementation of mining.Miner.
type Miner struct {
	// workers is the equivalence-class fan-out; <= 1 mines sequentially.
	workers int
}

// New returns a sequential Eclat miner.
func New() *Miner { return &Miner{} }

// Parallel sets the miner's worker count for the first-item
// equivalence-class fan-out and returns the miner for chaining
// (eclat.New().Parallel(8)). 0 resolves to GOMAXPROCS; 1 restores the
// sequential search. The mining result is byte-identical to the
// sequential miner's on every input.
func (m *Miner) Parallel(workers int) *Miner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m.workers = workers
	return m
}

// Name implements mining.Miner.
func (m *Miner) Name() string { return "eclat" }

// vert is one item with its transaction-id list (always sorted).
type vert struct {
	item itemset.Item
	tids []int32
}

// Mine implements mining.Miner.
func (m *Miner) Mine(txs []itemset.Transaction, minsup int) (*mining.Result, error) {
	if err := mining.ValidateInput(txs, minsup); err != nil {
		return nil, err
	}

	lists := make(map[itemset.Item][]int32)
	for i := range txs {
		for _, it := range txs[i].Items() {
			lists[it] = append(lists[it], int32(i))
		}
	}
	var roots []vert
	//detlint:ok maprange -- mineVertical sorts roots into canonical item order before the DFS (contract: mining is order-insensitive)
	for it, tids := range lists {
		if len(tids) >= minsup {
			roots = append(roots, vert{item: it, tids: tids})
		}
	}
	all := mineVertical(roots, minsup, m.workers)
	return mining.BuildResult(all, len(txs), minsup), nil
}

// mineVertical runs the tid-list search from the given frequent 1-item
// verticals: sorted into canonical order, then one equivalence class per
// root, mined sequentially or over a worker pool. Class results always
// concatenate in root order, so the output is independent of the worker
// count.
func mineVertical(roots []vert, minsup, workers int) []itemset.Set {
	// Canonical order keeps the DFS deterministic.
	sort.Slice(roots, func(i, j int) bool { return roots[i].item.Less(roots[j].item) })

	if workers > len(roots) {
		workers = len(roots)
	}
	if workers <= 1 {
		var all []itemset.Set
		for i := range roots {
			all = mineClass(all, roots, i, minsup)
		}
		return all
	}

	// Parallel: classes are independent (class i only intersects
	// roots[i].tids with roots[i+1:]), so a worker pool drains an atomic
	// class counter and the per-class slices merge in class order.
	results := make([][]itemset.Set, len(roots))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(roots) {
					return
				}
				results[i] = mineClass(nil, roots, i, minsup)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	all := make([]itemset.Set, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	return all
}

// mineClass appends to out every frequent item-set of the equivalence
// class rooted at roots[i] — the sets whose smallest item (in canonical
// order) is roots[i].item — in depth-first order, and returns out.
func mineClass(out []itemset.Set, roots []vert, i, minsup int) []itemset.Set {
	prefix := []itemset.Item{roots[i].item}
	out = append(out, itemset.NewSet(prefix, len(roots[i].tids)))
	var next []vert
	for j := i + 1; j < len(roots); j++ {
		// Two items of the same feature kind never co-occur.
		if roots[j].item.Kind == roots[i].item.Kind {
			continue
		}
		tids := intersect(roots[i].tids, roots[j].tids)
		if len(tids) >= minsup {
			next = append(next, vert{item: roots[j].item, tids: tids})
		}
	}
	if len(next) > 0 {
		out = dfs(out, prefix, next, minsup)
	}
	return out
}

// dfs extends prefix with every frequent combination of ext (ordered
// candidate verticals whose tid-lists are already restricted to the
// prefix), appending each discovered set to out in depth-first order.
func dfs(out []itemset.Set, prefix []itemset.Item, ext []vert, minsup int) []itemset.Set {
	for i := range ext {
		withItem := append(prefix, ext[i].item)
		out = append(out, itemset.NewSet(withItem, len(ext[i].tids)))

		var next []vert
		for j := i + 1; j < len(ext); j++ {
			if ext[j].item.Kind == ext[i].item.Kind {
				continue
			}
			tids := intersect(ext[i].tids, ext[j].tids)
			if len(tids) >= minsup {
				next = append(next, vert{item: ext[j].item, tids: tids})
			}
		}
		if len(next) > 0 {
			out = dfs(out, withItem, next, minsup)
		}
	}
	return out
}

// intersect merges two sorted tid-lists.
func intersect(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
