// Package eclat implements the Eclat frequent item-set miner (vertical
// tid-list intersection, Zaki [35] in the paper's bibliography) plus the
// sliding-window variant sketched by Li and Deng [21] for monitoring
// flows in motion. Both produce exactly the same frequent item-sets as
// the Apriori and FP-Growth implementations.
package eclat

import (
	"sort"

	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// Miner is the Eclat implementation of mining.Miner.
type Miner struct{}

// New returns an Eclat miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "eclat" }

// vert is one item with its transaction-id list (always sorted).
type vert struct {
	item itemset.Item
	tids []int32
}

// Mine implements mining.Miner.
func (m *Miner) Mine(txs []itemset.Transaction, minsup int) (*mining.Result, error) {
	if err := mining.ValidateInput(txs, minsup); err != nil {
		return nil, err
	}

	lists := make(map[itemset.Item][]int32)
	for i := range txs {
		for _, it := range txs[i].Items() {
			lists[it] = append(lists[it], int32(i))
		}
	}
	var roots []vert
	for it, tids := range lists {
		if len(tids) >= minsup {
			roots = append(roots, vert{item: it, tids: tids})
		}
	}
	all := mineVertical(roots, minsup)
	return mining.BuildResult(all, len(txs), minsup), nil
}

// mineVertical runs the shared depth-first tid-list search from the given
// frequent 1-item verticals.
func mineVertical(roots []vert, minsup int) []itemset.Set {
	// Canonical order keeps the DFS deterministic.
	sort.Slice(roots, func(i, j int) bool { return roots[i].item.Less(roots[j].item) })

	var all []itemset.Set
	var dfs func(prefix []itemset.Item, ext []vert)
	dfs = func(prefix []itemset.Item, ext []vert) {
		for i := range ext {
			withItem := append(prefix, ext[i].item)
			all = append(all, itemset.NewSet(withItem, len(ext[i].tids)))

			var next []vert
			for j := i + 1; j < len(ext); j++ {
				// Two items of the same feature kind never co-occur.
				if ext[j].item.Kind == ext[i].item.Kind {
					continue
				}
				tids := intersect(ext[i].tids, ext[j].tids)
				if len(tids) >= minsup {
					next = append(next, vert{item: ext[j].item, tids: tids})
				}
			}
			if len(next) > 0 {
				dfs(withItem, next)
			}
		}
	}
	dfs(nil, roots)
	return all
}

// intersect merges two sorted tid-lists.
func intersect(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
