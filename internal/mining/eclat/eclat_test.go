package eclat

import (
	"testing"
	"testing/quick"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
)

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want []int32
	}{
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, []int32{2, 3}},
		{[]int32{1, 5, 9}, []int32{2, 6, 10}, []int32{}},
		{nil, []int32{1}, []int32{}},
		{[]int32{7}, []int32{7}, []int32{7}},
		{[]int32{1, 2, 3, 4, 5}, []int32{3}, []int32{3}},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestIntersectCommutative(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		a := sortedTids(aRaw)
		b := sortedTids(bRaw)
		x := intersect(a, b)
		y := intersect(b, a)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortedTids(raw []uint16) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, v := range raw {
		seen[int32(v)] = true
	}
	for v := int32(0); v < 65536; v++ {
		if seen[v] {
			out = append(out, v)
		}
	}
	return out
}

func TestMineVerticalDFS(t *testing.T) {
	a := itemset.Item{Kind: flow.SrcIP, Value: 1}
	b := itemset.Item{Kind: flow.DstIP, Value: 2}
	roots := []vert{
		{item: a, tids: []int32{0, 1, 2, 3}},
		{item: b, tids: []int32{0, 1, 2}},
	}
	all := mineVertical(roots, 3, 1)
	// {a}:4, {b}:3, {a,b}:3.
	if len(all) != 3 {
		t.Fatalf("sets = %v", all)
	}
	found := map[string]int{}
	for i := range all {
		found[all[i].String()] = all[i].Support
	}
	if found["{srcIP=0.0.0.1} (support 4)"] != 4 {
		t.Errorf("missing {a}: %v", found)
	}
}

func TestMineVerticalSkipsSameKind(t *testing.T) {
	p80 := itemset.Item{Kind: flow.DstPort, Value: 80}
	p443 := itemset.Item{Kind: flow.DstPort, Value: 443}
	roots := []vert{
		{item: p80, tids: []int32{0, 1}},
		{item: p443, tids: []int32{2, 3}},
	}
	all := mineVertical(roots, 2, 1)
	for i := range all {
		if all[i].Size() > 1 {
			t.Errorf("same-kind combination emitted: %v", all[i])
		}
	}
}

func TestWindowLowerBound(t *testing.T) {
	tids := []int64{1, 3, 5, 7, 9}
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 5: 2, 6: 3, 9: 4, 10: 5}
	for min, want := range cases {
		if got := lowerBound(tids, min); got != want {
			t.Errorf("lowerBound(%d) = %d, want %d", min, got, want)
		}
	}
	if lowerBound(nil, 5) != 0 {
		t.Error("empty list")
	}
}

func TestWindowCompactDropsDeadItems(t *testing.T) {
	w := NewWindow(10)
	old := itemset.FromFlow(&flow.Record{DstPort: 7777})
	for i := 0; i < 10; i++ {
		w.Push(old)
	}
	fresh := itemset.FromFlow(&flow.Record{DstPort: 80})
	// Push enough to evict all old transactions and trigger compaction.
	for i := 0; i < 25; i++ {
		w.Push(fresh)
	}
	if _, ok := w.lists[itemset.Item{Kind: flow.DstPort, Value: 7777}]; ok {
		t.Error("evicted item still holds a tid-list after compaction")
	}
	if w.Len() != 10 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestWindowMineRespectsMinsupValidation(t *testing.T) {
	w := NewWindow(5)
	if _, err := w.Mine(0); err == nil {
		t.Error("minsup 0 accepted")
	}
}

func TestMinerName(t *testing.T) {
	if New().Name() != "eclat" {
		t.Error("name")
	}
}

func TestMineEndToEnd(t *testing.T) {
	var txs []itemset.Transaction
	for i := 0; i < 20; i++ {
		rec := flow.Record{DstPort: 445, Protocol: 6, Packets: 1, Bytes: 48,
			SrcAddr: 99, DstAddr: uint32(i), SrcPort: uint16(i + 1000)}
		txs = append(txs, itemset.FromFlow(&rec))
	}
	res, err := New().Mine(txs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maximal) != 1 {
		t.Fatalf("maximal = %v", res.Maximal)
	}
	// The shared items {srcIP, dstPort, proto, packets, bytes} all
	// co-occur in every transaction.
	if res.Maximal[0].Size() != 5 || res.Maximal[0].Support != 20 {
		t.Errorf("got %v", res.Maximal[0])
	}
	if _, err := New().Mine(txs, 0); err == nil {
		t.Error("minsup 0 accepted")
	}
}

func TestWindowAccessors(t *testing.T) {
	w := NewWindow(7)
	if w.Capacity() != 7 || w.Len() != 0 {
		t.Errorf("capacity %d len %d", w.Capacity(), w.Len())
	}
	w.Push(itemset.FromFlow(&flow.Record{DstPort: 1}))
	if w.Len() != 1 {
		t.Errorf("len %d", w.Len())
	}
}

func TestWindowMineFindsCooccurrence(t *testing.T) {
	w := NewWindow(50)
	for i := 0; i < 30; i++ {
		w.Push(itemset.FromFlow(&flow.Record{
			DstPort: 9996, Protocol: 6, Packets: 3, Bytes: 300,
			SrcAddr: uint32(i), DstAddr: uint32(2 * i), SrcPort: uint16(i),
		}))
	}
	res, err := w.Mine(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maximal) != 1 || res.Maximal[0].Support != 30 {
		t.Fatalf("maximal = %v", res.Maximal)
	}
	if res.Transactions != 30 {
		t.Errorf("Transactions = %d", res.Transactions)
	}
}
