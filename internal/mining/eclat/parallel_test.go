package eclat

import (
	"reflect"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/stats"
)

// lowCardTxs generates random transactions with limited value
// cardinality so frequent sets actually occur at the tested supports.
func lowCardTxs(seed uint64, n int) []itemset.Transaction {
	r := stats.NewRand(seed)
	txs := make([]itemset.Transaction, n)
	for i := range txs {
		rec := flow.Record{
			SrcAddr: uint32(r.IntN(5)), DstAddr: uint32(r.IntN(4)),
			SrcPort: uint16(r.IntN(6)), DstPort: uint16(r.IntN(3)),
			Protocol: uint8(6 + 11*r.IntN(2)),
			Packets:  uint32(1 + r.IntN(3)), Bytes: uint64(40 * (1 + r.IntN(3))),
		}
		txs[i] = itemset.FromFlow(&rec)
	}
	return txs
}

// TestParallelMatchesSequential is the miner's determinism contract:
// for every worker count the equivalence-class fan-out returns a Result
// deeply equal to the sequential miner's — same sets, same supports,
// same order, same level statistics.
func TestParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 25, 400, 2000} {
		for _, minsup := range []int{1, 3, 50} {
			if minsup > n && n > 0 {
				continue
			}
			txs := lowCardTxs(uint64(n*10+minsup), n)
			want, err := New().Mine(txs, minsup)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 4, 8, 33} {
				got, err := New().Parallel(workers).Mine(txs, minsup)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d minsup=%d workers=%d: parallel result diverged\ngot:  %+v\nwant: %+v",
						n, minsup, workers, got, want)
				}
			}
		}
	}
}

// TestParallelChainingAndName covers the option API: Parallel returns
// the miner for chaining, resolves 0 to a positive pool size, and the
// algorithm identity is unchanged.
func TestParallelChainingAndName(t *testing.T) {
	m := New()
	if m.Parallel(4) != m {
		t.Fatal("Parallel must return the receiver for chaining")
	}
	if m.workers != 4 {
		t.Fatalf("workers = %d, want 4", m.workers)
	}
	if New().Parallel(0).workers < 1 {
		t.Fatal("Parallel(0) must resolve to GOMAXPROCS")
	}
	if New().Parallel(-3).workers < 1 {
		t.Fatal("negative worker count must resolve to a positive pool")
	}
	if New().Parallel(2).Name() != "eclat" {
		t.Fatal("parallel option must not change the miner name")
	}
}

// TestParallelValidatesInput mirrors the sequential validation.
func TestParallelValidatesInput(t *testing.T) {
	txs := lowCardTxs(1, 10)
	if _, err := New().Parallel(4).Mine(txs, 0); err == nil {
		t.Fatal("minsup 0 accepted by parallel miner")
	}
}
