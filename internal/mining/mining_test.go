package mining

import (
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
)

func set(support int, items ...itemset.Item) itemset.Set {
	return itemset.NewSet(items, support)
}

func TestFilterMaximal(t *testing.T) {
	all := []itemset.Set{
		set(100, itemset.Item{Kind: flow.DstPort, Value: 7000}),
		set(100, itemset.Item{Kind: flow.Proto, Value: 6}),
		set(100, itemset.Item{Kind: flow.DstPort, Value: 7000}, itemset.Item{Kind: flow.Proto, Value: 6}),
		set(50, itemset.Item{Kind: flow.DstPort, Value: 25}),
	}
	max := FilterMaximal(all)
	if len(max) != 2 {
		t.Fatalf("got %d maximal sets: %v", len(max), max)
	}
	// The 2-item-set and the lone dstPort=25 survive.
	foundPair, found25 := false, false
	for i := range max {
		switch max[i].Size() {
		case 2:
			foundPair = true
		case 1:
			if max[i].Items[0].Value == 25 {
				found25 = true
			}
		}
	}
	if !foundPair || !found25 {
		t.Errorf("wrong maximal sets: %v", max)
	}
}

func TestFilterMaximalEmptyAndSingle(t *testing.T) {
	if got := FilterMaximal(nil); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
	one := []itemset.Set{set(5, itemset.Item{Kind: flow.DstPort, Value: 80})}
	if got := FilterMaximal(one); len(got) != 1 {
		t.Errorf("single set should be maximal: %v", got)
	}
}

func TestFilterMaximalDeepChain(t *testing.T) {
	// A chain {a} ⊂ {a,b} ⊂ {a,b,c}: only the largest is maximal.
	a := itemset.Item{Kind: flow.SrcIP, Value: 1}
	b := itemset.Item{Kind: flow.DstIP, Value: 2}
	c := itemset.Item{Kind: flow.DstPort, Value: 3}
	all := []itemset.Set{set(9, a), set(8, a, b), set(7, a, b, c), set(8, b)}
	max := FilterMaximal(all)
	if len(max) != 1 || max[0].Size() != 3 {
		t.Fatalf("maximal = %v, want only the 3-item-set", max)
	}
}

func TestBuildResultLevels(t *testing.T) {
	a := itemset.Item{Kind: flow.SrcIP, Value: 1}
	b := itemset.Item{Kind: flow.DstIP, Value: 2}
	all := []itemset.Set{set(9, a), set(8, b), set(7, a, b)}
	res := BuildResult(all, 100, 5)
	if res.Transactions != 100 || res.MinSupport != 5 {
		t.Error("metadata wrong")
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels %v", res.Levels)
	}
	if res.Levels[0].Frequent != 2 || res.Levels[0].Maximal != 0 {
		t.Errorf("level 1 stats %+v", res.Levels[0])
	}
	if res.Levels[1].Frequent != 1 || res.Levels[1].Maximal != 1 {
		t.Errorf("level 2 stats %+v", res.Levels[1])
	}
	if len(res.Maximal) != 1 {
		t.Errorf("maximal %v", res.Maximal)
	}
	// Sorted by support descending.
	if res.All[0].Support < res.All[1].Support {
		t.Error("All not sorted")
	}
}

func TestValidateInput(t *testing.T) {
	if err := ValidateInput(nil, 0); err == nil {
		t.Error("minsup 0 accepted")
	}
	if err := ValidateInput(nil, -3); err == nil {
		t.Error("negative minsup accepted")
	}
	if err := ValidateInput(nil, 1); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestTopK(t *testing.T) {
	sets := []itemset.Set{
		set(30, itemset.Item{Kind: flow.DstPort, Value: 1}),
		set(20, itemset.Item{Kind: flow.DstPort, Value: 2}),
		set(10, itemset.Item{Kind: flow.DstPort, Value: 3}),
	}
	if got := TopK(sets, 2); len(got) != 2 || got[0].Support != 30 {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := TopK(sets, 10); len(got) != 3 {
		t.Errorf("TopK(10) = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := itemset.Item{Kind: flow.SrcIP, Value: 1}
	b := itemset.Item{Kind: flow.DstIP, Value: 2}
	r1 := BuildResult([]itemset.Set{set(9, a), set(7, a, b)}, 10, 2)
	r2 := BuildResult([]itemset.Set{set(7, a, b), set(9, a)}, 10, 2)
	if !Equal(r1, r2) {
		t.Error("order must not matter")
	}
	r3 := BuildResult([]itemset.Set{set(8, a), set(7, a, b)}, 10, 2)
	if Equal(r1, r3) {
		t.Error("different supports must differ")
	}
	r4 := BuildResult([]itemset.Set{set(9, a)}, 10, 2)
	if Equal(r1, r4) {
		t.Error("different sizes must differ")
	}
}

func TestFilterClosed(t *testing.T) {
	a := itemset.Item{Kind: flow.SrcIP, Value: 1}
	b := itemset.Item{Kind: flow.DstIP, Value: 2}
	c := itemset.Item{Kind: flow.DstPort, Value: 3}
	// {a}:10 is closed (superset has lower support); {b}:7 is NOT closed
	// ({a,b}:7 has equal support); {a,b}:7 closed; {a,b,c}:4 closed.
	all := []itemset.Set{
		set(10, a), set(7, b), set(7, a, b), set(4, a, b, c),
		set(4, a, c), set(4, c),
	}
	closed := FilterClosed(all)
	want := map[string]bool{}
	for i := range closed {
		want[closed[i].String()] = true
	}
	if len(closed) != 3 {
		t.Fatalf("closed = %v", closed)
	}
	for _, s := range []itemset.Set{set(10, a), set(7, a, b), set(4, a, b, c)} {
		if !want[s.String()] {
			t.Errorf("missing closed set %v", s.String())
		}
	}
}

func TestClosedSupersetOfMaximal(t *testing.T) {
	// Every maximal set is closed (no superset at all, hence none with
	// equal support).
	a := itemset.Item{Kind: flow.SrcIP, Value: 1}
	b := itemset.Item{Kind: flow.DstIP, Value: 2}
	all := []itemset.Set{set(9, a), set(9, b), set(9, a, b), set(3, a)}
	_ = all
	all = []itemset.Set{set(9, a), set(8, b), set(7, a, b)}
	maximal := FilterMaximal(all)
	closed := FilterClosed(all)
	closedKeys := map[itemset.Key]bool{}
	for i := range closed {
		closedKeys[closed[i].Key()] = true
	}
	for i := range maximal {
		if !closedKeys[maximal[i].Key()] {
			t.Errorf("maximal %v not closed", maximal[i])
		}
	}
}
