package sketch

import (
	"testing"

	"anomalyx/internal/stats"
)

func TestNeverUnderestimates(t *testing.T) {
	cm := New(256, 4, 1)
	truth := map[uint64]uint64{}
	r := stats.NewRand(1)
	for i := 0; i < 20000; i++ {
		v := uint64(r.IntN(2000))
		cm.Add(v, 1)
		truth[v]++
	}
	for v, want := range truth {
		if got := cm.Estimate(v); got < want {
			t.Fatalf("underestimate for %d: %d < %d", v, got, want)
		}
	}
}

func TestExactWhenSparse(t *testing.T) {
	// Few distinct values, wide sketch: estimates are exact.
	cm := New(4096, 4, 2)
	for v := uint64(0); v < 10; v++ {
		cm.Add(v, (v+1)*100)
	}
	for v := uint64(0); v < 10; v++ {
		if got := cm.Estimate(v); got != (v+1)*100 {
			t.Errorf("Estimate(%d) = %d, want %d", v, got, (v+1)*100)
		}
	}
}

func TestErrorBound(t *testing.T) {
	// Additive error should stay within ~2N/w for most queries.
	const w, d = 512, 5
	cm := New(w, d, 3)
	r := stats.NewRand(4)
	truth := map[uint64]uint64{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := uint64(r.IntN(50000))
		cm.Add(v, 1)
		truth[v]++
	}
	bound := uint64(2 * n / w)
	bad := 0
	for v, want := range truth {
		if cm.Estimate(v)-want > bound {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(truth)); frac > 0.05 {
		t.Errorf("%.2f%% of estimates exceed the 2N/w bound", 100*frac)
	}
}

func TestNewForError(t *testing.T) {
	cm := NewForError(0.01, 0.01, 5)
	if cm.Width() < 271 { // e/0.01 ≈ 272
		t.Errorf("width %d too small", cm.Width())
	}
	if cm.Depth() < 4 { // ln(100) ≈ 4.6
		t.Errorf("depth %d too small", cm.Depth())
	}
}

func TestHeavyCandidates(t *testing.T) {
	cm := New(1024, 4, 6)
	cm.Add(7, 1000)
	cm.Add(8, 10)
	got := cm.HeavyCandidates([]uint64{7, 8, 9}, 500)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("HeavyCandidates = %v, want [7]", got)
	}
}

func TestReset(t *testing.T) {
	cm := New(64, 2, 7)
	cm.Add(1, 5)
	cm.Reset()
	if cm.Total() != 0 || cm.Estimate(1) != 0 {
		t.Error("reset incomplete")
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 0) },
		func() { New(1, 0, 0) },
		func() { NewForError(0, 0.5, 0) },
		func() { NewForError(0.5, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
