// Package sketch implements a count-min sketch. Footnote 1 of the paper
// distinguishes histogram cloning from sketch data structures: sketches
// summarize a stream compactly to answer point queries, whereas cloning
// randomly bins histograms without targeting summarization. The sketch
// here backs the cloning-vs-sketch ablation (DESIGN.md §5): both use
// random projections, but the sketch answers "how many flows carried
// value v" while the clones answer "which values disrupted the
// distribution". Like the histogram clones, the sketch is seeded and
// deterministic: equal seeds give identical row hashes on every
// platform and updates commute, so the same stream multiset always
// produces the same counters.
package sketch

import (
	"math"

	"anomalyx/internal/hash"
)

// CountMin is a count-min sketch with d rows of w counters.
type CountMin struct {
	w, d  int
	rows  [][]uint64
	fns   []hash.Func
	total uint64
}

// New creates a sketch with the given width (counters per row) and depth
// (rows, i.e. independent hash functions). Standard guarantees: a point
// estimate exceeds the true count by more than 2N/w with probability at
// most (1/2)^d.
func New(width, depth int, seed uint64) *CountMin {
	if width <= 0 || depth <= 0 {
		panic("sketch: width and depth must be positive")
	}
	cm := &CountMin{w: width, d: depth}
	for i := 0; i < depth; i++ {
		cm.rows = append(cm.rows, make([]uint64, width))
		cm.fns = append(cm.fns, hash.New(seed^uint64(i)*0x9e3779b97f4a7c15))
	}
	return cm
}

// NewForError sizes a sketch for additive error at most eps*N with
// probability at least 1-delta: w = ceil(e/eps), d = ceil(ln(1/delta)).
func NewForError(eps, delta float64, seed uint64) *CountMin {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: eps and delta must be in (0,1)")
	}
	w := int(math.Ceil(math.E / eps))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return New(w, d, seed)
}

// Width returns counters per row; Depth the number of rows.
func (cm *CountMin) Width() int { return cm.w }

// Depth returns the number of rows.
func (cm *CountMin) Depth() int { return cm.d }

// Total returns the number of observations added.
func (cm *CountMin) Total() uint64 { return cm.total }

// Add records n observations of value v.
func (cm *CountMin) Add(v uint64, n uint64) {
	for i, fn := range cm.fns {
		cm.rows[i][fn.Bin(v, cm.w)] += n
	}
	cm.total += n
}

// Estimate returns the point estimate for value v: the minimum counter
// across rows. It never underestimates the true count.
func (cm *CountMin) Estimate(v uint64) uint64 {
	min := uint64(math.MaxUint64)
	for i, fn := range cm.fns {
		if c := cm.rows[i][fn.Bin(v, cm.w)]; c < min {
			min = c
		}
	}
	return min
}

// HeavyCandidates filters candidates to those whose estimate reaches
// threshold — the sketch-side analogue of meta-data identification, used
// by the cloning-vs-sketch ablation. Unlike histogram cloning, the sketch
// cannot enumerate values: the candidate list must come from elsewhere.
func (cm *CountMin) HeavyCandidates(candidates []uint64, threshold uint64) []uint64 {
	var out []uint64
	for _, v := range candidates {
		if cm.Estimate(v) >= threshold {
			out = append(out, v)
		}
	}
	return out
}

// Reset zeroes the sketch.
func (cm *CountMin) Reset() {
	for _, row := range cm.rows {
		for i := range row {
			row[i] = 0
		}
	}
	cm.total = 0
}
