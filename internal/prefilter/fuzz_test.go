package prefilter

import (
	"reflect"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
)

// fuzzRecords decodes data into a low-cardinality record set, tiled past
// the parallel threshold so the chunked scan actually runs: 7 bytes per
// base record, repeated with a deterministic per-tile perturbation. The
// same bytes always yield the same records.
func fuzzRecords(data []byte) []flow.Record {
	var base []flow.Record
	for len(data) >= 7 {
		b := data[:7]
		data = data[7:]
		base = append(base, flow.Record{
			SrcAddr: uint32(b[0] % 16), DstAddr: uint32(b[1] % 8),
			SrcPort: uint16(b[2] % 32), DstPort: uint16(b[3] % 8),
			Protocol: b[4] % 4,
			Packets:  uint32(b[5]%4) + 1, Bytes: uint64(b[6]%8+1) * 40,
		})
	}
	if len(base) == 0 {
		base = []flow.Record{{}}
	}
	recs := make([]flow.Record, minParallelRecords*5/2)
	for i := range recs {
		recs[i] = base[i%len(base)]
		recs[i].SrcAddr = (recs[i].SrcAddr + uint32(i/len(base))%5) % 16
		recs[i].Start = int64(i)
	}
	return recs
}

// fuzzMeta decodes up to six (feature, value) annotations from data,
// over the same small value domain fuzzRecords generates.
func fuzzMeta(data []byte) detector.MetaData {
	m := detector.NewMetaData()
	for i := 0; i+1 < len(data) && i < 12; i += 2 {
		kind := flow.FeatureKind(data[i] % uint8(flow.NumFeatures))
		m.Add(kind, uint64(data[i+1]%32))
	}
	return m
}

// FuzzPrefilterParity fuzzes the two §II-A invariants at once: the
// chunked parallel scan is byte-identical to the sequential one for both
// strategies and any worker count, and the union selection contains the
// intersection selection pointwise (a flow matching every annotated
// feature necessarily matches at least one).
func FuzzPrefilterParity(f *testing.F) {
	f.Add([]byte{}, byte(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, byte(4))
	f.Add([]byte{0, 7, 1, 13, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 6, 1, 80, 3, 1, 2, 200}, byte(8))
	f.Fuzz(func(t *testing.T, data []byte, workers byte) {
		w := int(workers % 16)
		var metaBytes, recBytes []byte
		if len(data) > 8 {
			metaBytes, recBytes = data[:8], data[8:]
		} else {
			metaBytes = data
		}
		m := fuzzMeta(metaBytes)
		recs := fuzzRecords(recBytes)

		for _, s := range []Strategy{Union{}, Intersection{}} {
			want := Filter(s, m, recs)
			if got := FilterParallel(s, m, recs, w); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: FilterParallel diverged: %d vs %d records",
					s.Name(), w, len(got), len(want))
			}
			if got, wantN := CountParallel(s, m, recs, w), len(want); got != wantN {
				t.Fatalf("%s workers=%d: CountParallel = %d, want %d", s.Name(), w, got, wantN)
			}
		}

		// Union ⊇ Intersection, pointwise: the intersection predicate
		// implies the union predicate on every record.
		for i := range recs {
			if m.MatchesFlowAll(&recs[i]) && !m.MatchesFlow(&recs[i]) {
				t.Fatalf("record %d in intersection but not union: %+v", i, recs[i])
			}
		}
	})
}
