package prefilter

import (
	"sync"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
)

// This file is the columnar face of the package: the same strategies,
// scanning a flow.Buffer column by column instead of gathering rows. A
// strategy that implements ColumnStrategy is driven one feature column
// at a time — the scan touches only the columns the meta-data actually
// annotates, cache-linear over each — and rows are materialized only
// for the matches. Strategies without a columnar form fall back to a
// row gather per record, preserving exact Match semantics.
//
// Ordering guarantee: like Filter/FilterParallel, the buffer variants
// return matches in row order, and the parallel variant concatenates
// per-chunk output in range order — byte-identical to the sequential
// scan for every worker count, and element-identical to the row-form
// Filter over the same records (the differential tests pin both).

// ColumnStrategy is implemented by strategies that can evaluate a
// columnar chunk directly. MatchColumns must set matched[i-lo] to true
// for exactly the rows i in [lo, hi) the strategy's Match would select,
// and leave other entries false; matched arrives zeroed with length
// hi-lo.
type ColumnStrategy interface {
	Strategy
	MatchColumns(m detector.MetaData, buf *flow.Buffer, lo, hi int, matched []bool)
}

// featureColumns visits the annotated feature columns of buf[lo:hi] in
// canonical feature order, calling mark with the annotated value set
// and a typed column visitor. It is the shared traversal of both
// columnar strategies.
func markColumn(vals map[uint64]struct{}, buf *flow.Buffer, k flow.FeatureKind, lo, hi int, mark func(row int, in bool)) {
	switch k {
	case flow.SrcIP:
		for i, v := range buf.SrcAddr[lo:hi] {
			_, ok := vals[uint64(v)]
			mark(i, ok)
		}
	case flow.DstIP:
		for i, v := range buf.DstAddr[lo:hi] {
			_, ok := vals[uint64(v)]
			mark(i, ok)
		}
	case flow.SrcPort:
		for i, v := range buf.SrcPort[lo:hi] {
			_, ok := vals[uint64(v)]
			mark(i, ok)
		}
	case flow.DstPort:
		for i, v := range buf.DstPort[lo:hi] {
			_, ok := vals[uint64(v)]
			mark(i, ok)
		}
	case flow.Proto:
		for i, v := range buf.Protocol[lo:hi] {
			_, ok := vals[uint64(v)]
			mark(i, ok)
		}
	case flow.Packets:
		for i, v := range buf.Packets[lo:hi] {
			_, ok := vals[uint64(v)]
			mark(i, ok)
		}
	case flow.Bytes:
		for i, v := range buf.Bytes[lo:hi] {
			_, ok := vals[v]
			mark(i, ok)
		}
	}
}

// MatchColumns implements ColumnStrategy: a row matches when any
// annotated feature column holds an annotated value at it. Only the
// annotated columns are read.
func (Union) MatchColumns(m detector.MetaData, buf *flow.Buffer, lo, hi int, matched []bool) {
	for _, k := range flow.AllFeatures {
		vals := m[k]
		if len(vals) == 0 {
			continue
		}
		markColumn(vals, buf, k, lo, hi, func(row int, in bool) {
			if in {
				matched[row] = true
			}
		})
	}
}

// MatchColumns implements ColumnStrategy: a row matches when every
// annotated feature column holds an annotated value at it (and at
// least one feature is annotated, mirroring MatchesFlowAll on the
// empty annotation).
func (Intersection) MatchColumns(m detector.MetaData, buf *flow.Buffer, lo, hi int, matched []bool) {
	any := false
	for _, k := range flow.AllFeatures {
		vals := m[k]
		if len(vals) == 0 {
			continue
		}
		if !any {
			any = true
			markColumn(vals, buf, k, lo, hi, func(row int, in bool) {
				matched[row] = in
			})
			continue
		}
		markColumn(vals, buf, k, lo, hi, func(row int, in bool) {
			if !in {
				matched[row] = false
			}
		})
	}
}

// scanBuffer is the columnar counterpart of scan: it evaluates strategy
// s over rows [lo, hi) of buf, returning the match count and, when
// collect is set, the matching rows gathered in row order (nil
// otherwise, and nil on no matches).
func scanBuffer(s Strategy, m detector.MetaData, buf *flow.Buffer, lo, hi int, collect bool) ([]flow.Record, int) {
	cs, columnar := s.(ColumnStrategy)
	if !columnar {
		// Row-gather fallback for strategies without a columnar form.
		var out []flow.Record
		n := 0
		for i := lo; i < hi; i++ {
			rec := buf.Record(i)
			if s.Match(m, &rec) {
				n++
				if collect {
					out = append(out, rec)
				}
			}
		}
		return out, n
	}
	matched := make([]bool, hi-lo)
	cs.MatchColumns(m, buf, lo, hi, matched)
	n := 0
	for _, ok := range matched {
		if ok {
			n++
		}
	}
	if !collect || n == 0 {
		return nil, n
	}
	out := make([]flow.Record, 0, n)
	for i, ok := range matched {
		if ok {
			out = append(out, buf.Record(lo+i))
		}
	}
	return out, n
}

// FilterBuffer returns the rows of buf selected by strategy s under
// meta-data m, in row order — Filter over the columnar buffer.
func FilterBuffer(s Strategy, m detector.MetaData, buf *flow.Buffer) []flow.Record {
	out, _ := scanBuffer(s, m, buf, 0, buf.Len(), true)
	return out
}

// CountBuffer returns how many rows of buf strategy s selects, without
// materializing them.
func CountBuffer(s Strategy, m detector.MetaData, buf *flow.Buffer) int {
	_, n := scanBuffer(s, m, buf, 0, buf.Len(), false)
	return n
}

// FilterBufferParallel is FilterBuffer over the chunked worker fan-out
// of FilterParallel: contiguous row ranges scanned concurrently,
// per-chunk output concatenated in range order — byte-identical to the
// sequential FilterBuffer for every worker count. workers follows the
// Config.Workers convention (0 = GOMAXPROCS, <= 1 or small inputs run
// sequentially).
func FilterBufferParallel(s Strategy, m detector.MetaData, buf *flow.Buffer, workers int) []flow.Record {
	n := buf.Len()
	workers = resolveWorkers(workers, n)
	if workers <= 1 || n < minParallelRecords {
		return FilterBuffer(s, m, buf)
	}
	parts := make([][]flow.Record, workers)
	counts := make([]int, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w], counts[w] = scanBuffer(s, m, buf, lo, hi, true)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]flow.Record, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}
