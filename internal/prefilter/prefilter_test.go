package prefilter

import (
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
)

func sasserMeta(d *tracegen.SasserData) detector.MetaData {
	m := detector.NewMetaData()
	for _, stage := range d.Meta {
		for _, fv := range stage {
			m.Add(fv.Kind, fv.Value)
		}
	}
	return m
}

func TestUnionCoversAllSasserStages(t *testing.T) {
	d := tracegen.SasserScenario(1, 3000)
	m := sasserMeta(d)
	got := Filter(Union{}, m, d.Flows)
	wantMin := d.StageFlows[0] + d.StageFlows[1] + d.StageFlows[2]
	if len(got) < wantMin {
		t.Fatalf("union selected %d flows, worm injected %d", len(got), wantMin)
	}
	// Every stage must be represented.
	for s, stage := range d.Meta {
		found := false
		for i := range got {
			if got[i].Feature(stage[0].Kind) == stage[0].Value {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("stage %d missing from union selection", s)
		}
	}
}

func TestIntersectionMissesMultistageAnomaly(t *testing.T) {
	// The paper's §II-A argument: the Sasser stages are flow-disjoint,
	// so intersecting the meta-data selects nothing.
	d := tracegen.SasserScenario(1, 3000)
	m := sasserMeta(d)
	if n := Count(Intersection{}, m, d.Flows); n != 0 {
		t.Fatalf("intersection selected %d flows; multistage meta-data should intersect to empty", n)
	}
}

func TestUnionSupersetOfIntersection(t *testing.T) {
	// On single-feature meta-data union == intersection; in general
	// union ⊇ intersection.
	d := tracegen.SasserScenario(2, 2000)
	m := sasserMeta(d)
	u := Filter(Union{}, m, d.Flows)
	i := Filter(Intersection{}, m, d.Flows)
	if len(i) > len(u) {
		t.Fatalf("intersection (%d) larger than union (%d)", len(i), len(u))
	}
	inter := make(map[flow.Record]bool, len(i))
	for _, r := range i {
		inter[r] = true
	}
	uset := make(map[flow.Record]bool, len(u))
	for _, r := range u {
		uset[r] = true
	}
	for r := range inter {
		if !uset[r] {
			t.Fatal("flow in intersection missing from union")
		}
	}
}

func TestUnionRemovesNormalTraffic(t *testing.T) {
	// Prefiltering should eliminate a large share of benign flows
	// ("prefiltering usually removes a large part of the normal
	// traffic").
	d := tracegen.SasserScenario(3, 20000)
	m := sasserMeta(d)
	kept := Count(Union{}, m, d.Flows)
	worm := d.StageFlows[0] + d.StageFlows[1] + d.StageFlows[2]
	benignKept := kept - worm
	if benignKept < 0 {
		benignKept = 0
	}
	total := len(d.Flows)
	if float64(kept)/float64(total) > 0.8 {
		t.Errorf("prefilter kept %d/%d flows, should drop most benign traffic", kept, total)
	}
	t.Logf("kept %d of %d (worm %d, benign leak %d)", kept, total, worm, benignKept)
}

func TestEmptyMetaSelectsNothing(t *testing.T) {
	d := tracegen.SasserScenario(4, 1000)
	m := detector.NewMetaData()
	if n := Count(Union{}, m, d.Flows); n != 0 {
		t.Errorf("empty meta-data selected %d flows under union", n)
	}
	if n := Count(Intersection{}, m, d.Flows); n != 0 {
		t.Errorf("empty meta-data selected %d flows under intersection", n)
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	recs := []flow.Record{
		{DstPort: 445, Start: 1},
		{DstPort: 80, Start: 2},
		{DstPort: 445, Start: 3},
	}
	m := detector.NewMetaData()
	m.Add(flow.DstPort, 445)
	got := Filter(Union{}, m, recs)
	if len(got) != 2 || got[0].Start != 1 || got[1].Start != 3 {
		t.Errorf("order not preserved: %v", got)
	}
}

func TestStrategyNames(t *testing.T) {
	if (Union{}).Name() != "union" || (Intersection{}).Name() != "intersection" {
		t.Error("strategy names wrong")
	}
}
