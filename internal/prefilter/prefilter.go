// Package prefilter selects the suspicious-flow set from alarm meta-data
// (§II-A). The paper's key design decision is to keep every flow matching
// *any* meta-data value (the union) rather than flows matching all values
// (the intersection): multistage anomalies such as the Sasser worm have
// flow-disjoint meta-data, for which the intersection is empty while the
// union covers every stage. Both strategies are provided; Intersection
// exists as the DoWitcher-style comparison baseline (§IV).
package prefilter

import (
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
)

// Strategy selects flows given meta-data.
type Strategy interface {
	// Match reports whether rec belongs to the suspicious set under m.
	Match(m detector.MetaData, rec *flow.Record) bool
	// Name identifies the strategy.
	Name() string
}

// Union keeps flows matching at least one meta-data value — the paper's
// choice.
type Union struct{}

// Match implements Strategy.
func (Union) Match(m detector.MetaData, rec *flow.Record) bool {
	return m.MatchesFlow(rec)
}

// Name implements Strategy.
func (Union) Name() string { return "union" }

// Intersection keeps flows matching a meta-data value in every annotated
// feature — the baseline the paper shows can miss anomalies entirely.
type Intersection struct{}

// Match implements Strategy.
func (Intersection) Match(m detector.MetaData, rec *flow.Record) bool {
	return m.MatchesFlowAll(rec)
}

// Name implements Strategy.
func (Intersection) Name() string { return "intersection" }

// Filter returns the flows of recs selected by strategy s under
// meta-data m, preserving input order.
func Filter(s Strategy, m detector.MetaData, recs []flow.Record) []flow.Record {
	var out []flow.Record
	for i := range recs {
		if s.Match(m, &recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

// Count returns how many flows of recs strategy s selects, without
// materializing them.
func Count(s Strategy, m detector.MetaData, recs []flow.Record) int {
	n := 0
	for i := range recs {
		if s.Match(m, &recs[i]) {
			n++
		}
	}
	return n
}
