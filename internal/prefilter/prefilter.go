// Package prefilter selects the suspicious-flow set from alarm meta-data
// (§II-A). The paper's key design decision is to keep every flow matching
// *any* meta-data value (the union) rather than flows matching all values
// (the intersection): multistage anomalies such as the Sasser worm have
// flow-disjoint meta-data, for which the intersection is empty while the
// union covers every stage. Both strategies are provided; Intersection
// exists as the DoWitcher-style comparison baseline (§IV).
//
// Ordering guarantee: Filter returns the matching flows in input order,
// and FilterParallel chunks the scan across workers but concatenates
// the per-chunk output in range order, so both are byte-identical for
// every worker count — the property FuzzPrefilterParity pins down.
package prefilter

import (
	"runtime"
	"sync"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
)

// Strategy selects flows given meta-data.
type Strategy interface {
	// Match reports whether rec belongs to the suspicious set under m.
	Match(m detector.MetaData, rec *flow.Record) bool
	// Name identifies the strategy.
	Name() string
}

// Union keeps flows matching at least one meta-data value — the paper's
// choice.
type Union struct{}

// Match implements Strategy.
func (Union) Match(m detector.MetaData, rec *flow.Record) bool {
	return m.MatchesFlow(rec)
}

// Name implements Strategy.
func (Union) Name() string { return "union" }

// Intersection keeps flows matching a meta-data value in every annotated
// feature — the baseline the paper shows can miss anomalies entirely.
type Intersection struct{}

// Match implements Strategy.
func (Intersection) Match(m detector.MetaData, rec *flow.Record) bool {
	return m.MatchesFlowAll(rec)
}

// Name implements Strategy.
func (Intersection) Name() string { return "intersection" }

// scan is the single match traversal every Filter/Count variant funnels
// through: it walks recs, returns how many records strategy s selects
// and, when collect is set, the selected records themselves in input
// order (nil otherwise).
func scan(s Strategy, m detector.MetaData, recs []flow.Record, collect bool) ([]flow.Record, int) {
	var out []flow.Record
	n := 0
	for i := range recs {
		if s.Match(m, &recs[i]) {
			n++
			if collect {
				out = append(out, recs[i])
			}
		}
	}
	return out, n
}

// Filter returns the flows of recs selected by strategy s under
// meta-data m, preserving input order.
func Filter(s Strategy, m detector.MetaData, recs []flow.Record) []flow.Record {
	out, _ := scan(s, m, recs, true)
	return out
}

// Count returns how many flows of recs strategy s selects, without
// materializing them.
func Count(s Strategy, m detector.MetaData, recs []flow.Record) int {
	_, n := scan(s, m, recs, false)
	return n
}

// minParallelRecords is the input size below which the parallel variants
// fall back to the sequential scan: the chunk bookkeeping and goroutine
// fan-out cost more than they save on small inputs.
const minParallelRecords = 2048

// resolveWorkers maps the Config.Workers convention (0 = GOMAXPROCS,
// 1 = sequential) onto an effective chunk count for n records.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// parallelScan splits recs into workers contiguous ranges, scans them
// concurrently, and returns the per-chunk results in range order plus
// the total match count. Chunk boundaries only partition the traversal;
// because the per-chunk outputs are kept in range order, concatenating
// them reproduces the sequential scan exactly.
func parallelScan(s Strategy, m detector.MetaData, recs []flow.Record, workers int, collect bool) ([][]flow.Record, []int) {
	parts := make([][]flow.Record, workers)
	counts := make([]int, workers)
	chunk := (len(recs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(recs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []flow.Record) {
			defer wg.Done()
			parts[w], counts[w] = scan(s, m, part, collect)
		}(w, recs[lo:hi])
	}
	wg.Wait()
	return parts, counts
}

// FilterParallel is Filter over a chunked worker fan-out: recs is split
// into contiguous ranges matched concurrently, and the per-chunk
// selections are concatenated in range order, so the output is
// byte-identical to the sequential Filter. workers follows the
// Config.Workers convention (0 = GOMAXPROCS, <= 1 or small inputs run
// sequentially).
func FilterParallel(s Strategy, m detector.MetaData, recs []flow.Record, workers int) []flow.Record {
	workers = resolveWorkers(workers, len(recs))
	if workers <= 1 || len(recs) < minParallelRecords {
		return Filter(s, m, recs)
	}
	parts, counts := parallelScan(s, m, recs, workers, true)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return nil
	}
	out := make([]flow.Record, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// CountParallel is Count over the same chunked fan-out as
// FilterParallel, without materializing the selection.
func CountParallel(s Strategy, m detector.MetaData, recs []flow.Record, workers int) int {
	workers = resolveWorkers(workers, len(recs))
	if workers <= 1 || len(recs) < minParallelRecords {
		return Count(s, m, recs)
	}
	_, counts := parallelScan(s, m, recs, workers, false)
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}
