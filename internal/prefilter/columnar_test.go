package prefilter

import (
	"math/rand"
	"reflect"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
)

// rowOnly wraps a strategy while hiding its ColumnStrategy face, forcing
// scanBuffer down the row-gather fallback.
type rowOnly struct{ s Strategy }

func (r rowOnly) Name() string                                     { return r.s.Name() }
func (r rowOnly) Match(m detector.MetaData, rec *flow.Record) bool { return r.s.Match(m, rec) }

// randomMeta draws a meta-data annotation from the records themselves
// (so some rows match) plus a few absent values (so some do not).
func randomMeta(rng *rand.Rand, recs []flow.Record) detector.MetaData {
	m := detector.NewMetaData()
	for _, k := range flow.AllFeatures {
		if rng.Intn(3) == 0 {
			continue // leave some features unannotated
		}
		for j := 0; j < 1+rng.Intn(4); j++ {
			m.Add(k, recs[rng.Intn(len(recs))].Feature(k))
		}
		if rng.Intn(2) == 0 {
			m.Add(k, uint64(1<<40)+uint64(rng.Intn(1000))) // matches nothing
		}
	}
	return m
}

// TestFilterBufferMatchesFilter is the prefilter half of the AoS/SoA
// differential harness: over seeded tracegen traffic and randomized
// meta-data, the columnar scan of a flow.Buffer — both strategies'
// MatchColumns fast path and the row-gather fallback — returns exactly
// the records (values and order) the retained row-form Filter selects,
// and FilterBufferParallel matches for every worker count.
func TestFilterBufferMatchesFilter(t *testing.T) {
	d := tracegen.SasserScenario(1, 2500)
	recs := d.Flows
	buf := flow.BufferOf(recs)
	rng := rand.New(rand.NewSource(11))

	metas := []detector.MetaData{sasserMeta(d), detector.NewMetaData()}
	for i := 0; i < 8; i++ {
		metas = append(metas, randomMeta(rng, recs))
	}
	for mi, m := range metas {
		for _, s := range []Strategy{Union{}, Intersection{}} {
			want := Filter(s, m, recs)
			for _, scan := range []struct {
				name string
				got  []flow.Record
			}{
				{"columnar", FilterBuffer(s, m, &buf)},
				{"fallback", FilterBuffer(rowOnly{s}, m, &buf)},
			} {
				if !reflect.DeepEqual(scan.got, want) {
					t.Fatalf("meta %d %s %s: %d records, row-form Filter selected %d",
						mi, s.Name(), scan.name, len(scan.got), len(want))
				}
			}
			if n := CountBuffer(s, m, &buf); n != len(want) {
				t.Fatalf("meta %d %s: CountBuffer %d, want %d", mi, s.Name(), n, len(want))
			}
			for _, workers := range []int{1, 2, 4, 8} {
				if got := FilterBufferParallel(s, m, &buf, workers); !reflect.DeepEqual(got, want) {
					t.Fatalf("meta %d %s workers=%d: parallel buffer scan diverged (%d vs %d records)",
						mi, s.Name(), workers, len(got), len(want))
				}
			}
		}
	}
}

// TestFilterBufferEmpty: the no-match and no-row cases return nil,
// matching Filter's append-to-nil shape.
func TestFilterBufferEmpty(t *testing.T) {
	var empty flow.Buffer
	if got := FilterBuffer(Union{}, detector.NewMetaData(), &empty); got != nil {
		t.Fatalf("empty buffer filtered to %v, want nil", got)
	}
	buf := flow.BufferOf([]flow.Record{{SrcAddr: 1}, {SrcAddr: 2}})
	if got := FilterBufferParallel(Union{}, detector.NewMetaData(), &buf, 4); got != nil {
		t.Fatalf("empty meta filtered to %v, want nil", got)
	}
}
