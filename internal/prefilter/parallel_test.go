package prefilter

import (
	"reflect"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// syntheticRecs builds n low-cardinality records so meta actually
// matches a nontrivial subset.
func syntheticRecs(seed uint64, n int) []flow.Record {
	r := stats.NewRand(seed)
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr: uint32(r.IntN(200)), DstAddr: uint32(r.IntN(50)),
			SrcPort: uint16(r.IntN(400)), DstPort: uint16(r.IntN(30)),
			Protocol: uint8(6 + 11*r.IntN(2)),
			Packets:  uint32(1 + r.IntN(5)), Bytes: uint64(40 * (1 + r.IntN(8))),
			Start: int64(i),
		}
	}
	return recs
}

func syntheticMeta() detector.MetaData {
	m := detector.NewMetaData()
	m.Add(flow.DstPort, 7)
	m.Add(flow.DstPort, 13)
	m.Add(flow.SrcIP, 42)
	m.Add(flow.DstIP, 3)
	return m
}

// TestFilterParallelMatchesSequential is the prefilter determinism
// contract: for every worker count and input size — above and below the
// parallel threshold, divisible by the worker count or not — the chunked
// parallel scan returns byte-identical output to the sequential Filter,
// in the same order.
func TestFilterParallelMatchesSequential(t *testing.T) {
	m := syntheticMeta()
	for _, n := range []int{0, 1, 7, 100, minParallelRecords - 1, minParallelRecords, 5000, 8191} {
		recs := syntheticRecs(uint64(n)+1, n)
		for _, s := range []Strategy{Union{}, Intersection{}} {
			want := Filter(s, m, recs)
			wantN := Count(s, m, recs)
			for _, workers := range []int{0, 1, 2, 3, 4, 8, 64} {
				got := FilterParallel(s, m, recs, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s n=%d workers=%d: FilterParallel diverged (got %d recs, want %d)",
						s.Name(), n, workers, len(got), len(want))
				}
				if gotN := CountParallel(s, m, recs, workers); gotN != wantN {
					t.Fatalf("%s n=%d workers=%d: CountParallel = %d, want %d",
						s.Name(), n, workers, gotN, wantN)
				}
			}
		}
	}
}

// TestFilterParallelPreservesOrder pins the range-order concatenation:
// matches come back in input order even when every chunk contributes.
func TestFilterParallelPreservesOrder(t *testing.T) {
	recs := make([]flow.Record, 4*minParallelRecords)
	for i := range recs {
		recs[i] = flow.Record{DstPort: uint16(i % 2 * 445), Start: int64(i)}
	}
	m := detector.NewMetaData()
	m.Add(flow.DstPort, 445)
	got := FilterParallel(Union{}, m, recs, 8)
	if len(got) != len(recs)/2 {
		t.Fatalf("selected %d of %d", len(got), len(recs))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start <= got[i-1].Start {
			t.Fatalf("order violated at %d: %d after %d", i, got[i].Start, got[i-1].Start)
		}
	}
}

// TestParallelNoMatchesReturnsNil mirrors the sequential Filter's nil
// return on an empty selection.
func TestParallelNoMatchesReturnsNil(t *testing.T) {
	recs := syntheticRecs(3, 3*minParallelRecords)
	m := detector.NewMetaData()
	m.Add(flow.DstPort, 65000) // never generated
	if got := FilterParallel(Union{}, m, recs, 4); got != nil {
		t.Fatalf("expected nil for no matches, got %d records", len(got))
	}
	if n := CountParallel(Union{}, m, recs, 4); n != 0 {
		t.Fatalf("CountParallel = %d, want 0", n)
	}
}
