package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	f1 := New(7)
	f2 := New(7)
	for v := uint64(0); v < 1000; v++ {
		if f1.Sum64(v) != f2.Sum64(v) {
			t.Fatalf("same seed disagrees at %d", v)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	// Different seeds must produce different mappings: over 4096 values
	// into 1024 bins, two independent functions should agree on only
	// ~1/1024 of values.
	f1, f2 := New(1), New(2)
	const n, k = 4096, 1024
	agree := 0
	for v := uint64(0); v < n; v++ {
		if f1.Bin(v, k) == f2.Bin(v, k) {
			agree++
		}
	}
	// Expected ~4 agreements; flag anything over 32 as correlated.
	if agree > 32 {
		t.Errorf("seeds 1 and 2 agree on %d/%d bins, look correlated", agree, n)
	}
}

func TestSequentialSeedsDiffer(t *testing.T) {
	// Clones are seeded 0,1,2,...; ensure those are pairwise distinct.
	const clones = 25
	fs := make([]Func, clones)
	for i := range fs {
		fs[i] = New(uint64(i))
	}
	for i := 0; i < clones; i++ {
		for j := i + 1; j < clones; j++ {
			if fs[i].Sum64(12345) == fs[j].Sum64(12345) && fs[i].Sum64(999) == fs[j].Sum64(999) {
				t.Errorf("seeds %d and %d collide on probe values", i, j)
			}
		}
	}
}

func TestBinRange(t *testing.T) {
	f := New(3)
	check := func(v uint64, kRaw uint16) bool {
		k := int(kRaw)%4096 + 1
		b := f.Bin(v, k)
		return b >= 0 && b < k
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bin(k=0) did not panic")
		}
	}()
	New(1).Bin(5, 0)
}

func TestBinUniformity(t *testing.T) {
	// Sequential feature values (ports 0..65535) must spread evenly over
	// 1024 bins: chi-squared against uniform with generous tolerance.
	f := New(42)
	const k = 1024
	counts := make([]int, k)
	const n = 65536
	for v := 0; v < n; v++ {
		counts[f.Bin(uint64(v), k)]++
	}
	expected := float64(n) / k
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// df = 1023; mean 1023, sd ~45. 5 sigma ≈ 1250.
	if chi2 > 1250 {
		t.Errorf("chi2 = %.1f, distribution too lumpy", chi2)
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits on
	// average.
	f := New(9)
	total := 0.0
	samples := 0
	for v := uint64(1); v < 1<<16; v += 997 {
		h0 := f.Sum64(v)
		for bit := 0; bit < 64; bit += 7 {
			h1 := f.Sum64(v ^ (1 << bit))
			total += float64(popcount(h0 ^ h1))
			samples++
		}
	}
	avg := total / float64(samples)
	if math.Abs(avg-32) > 3 {
		t.Errorf("avalanche average %.2f bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
