// Package hash provides the seeded 64-bit hash family used by histogram
// clones (§II-D of the paper).
//
// Each histogram clone needs an independent hash function that randomly
// places feature values into one of k bins; independence across clones is
// what makes voting drive down the probability that a normal feature value
// collides with an anomalous bin in l of n clones. The family here is a
// Murmur3-style finalizer strengthened with a splitmix64 seed schedule:
// cheap (a handful of multiplies and xors per value), stateless, and with
// good avalanche behaviour so that adjacent feature values (sequential IP
// addresses, neighbouring ports) land in unrelated bins.
package hash

// Func is a seeded hash function over 64-bit feature values.
type Func struct {
	k0, k1 uint64
}

// New derives an independent hash function from seed. Distinct seeds give
// functions that behave as independently drawn members of the family.
func New(seed uint64) Func {
	// splitmix64 on the seed twice to derive two whitening keys; this
	// decorrelates functions created from small sequential seeds
	// (0, 1, 2, ...), the common way clones are constructed.
	s := seed
	return Func{k0: splitmix64(&s), k1: splitmix64(&s)}
}

// Sum64 hashes value v to a 64-bit digest.
func (f Func) Sum64(v uint64) uint64 {
	x := v ^ f.k0
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	x ^= f.k1
	// One extra mix round so that k1 influences every output bit.
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// Bin maps value v to a bin index in [0, k). k must be positive. When k is
// a power of two (the paper uses k = 2^m) the mapping reduces to a mask of
// the high-quality low bits.
func (f Func) Bin(v uint64, k int) int {
	if k <= 0 {
		panic("hash: Bin requires k > 0")
	}
	h := f.Sum64(v)
	if k&(k-1) == 0 {
		return int(h & uint64(k-1))
	}
	return int(h % uint64(k))
}

// splitmix64 advances *s and returns the next output of the splitmix64
// sequence; it is the standard seed-expansion generator.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
