package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-5, 0, 5}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	Median(in)
	want := []float64{5, 1, 4, 2, 3}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("Median mutated input: %v", in)
		}
	}
}

func TestMAD(t *testing.T) {
	// Median 3, deviations {2,1,0,1,2} -> MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD(nil) should be NaN")
	}
}

func TestMADRobustToOutliers(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5}
	spiked := []float64{1, 2, 3, 4, 1e9}
	if MAD(spiked) != MAD(base) {
		t.Errorf("MAD not robust: %v vs %v", MAD(spiked), MAD(base))
	}
}

func TestRobustSigmaOnNormalData(t *testing.T) {
	// RobustSigma should recover sigma of a normal sample within ~10%.
	r := NewRand(1)
	const sigma = 2.5
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = sigma * r.NormFloat64()
	}
	got := RobustSigma(xs)
	if !almost(got, sigma, 0.25) {
		t.Errorf("RobustSigma = %v, want ~%v", got, sigma)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); !almost(got, 2.138, 0.001) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("StdDev of one sample should be NaN")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 25} {
		for _, p := range []float64{0.01, 0.5, 0.97} {
			var s float64
			for i := 0; i <= n; i++ {
				s += BinomPMF(n, i, p)
			}
			if !almost(s, 1, 1e-9) {
				t.Errorf("sum PMF(n=%d,p=%v) = %v", n, p, s)
			}
		}
	}
}

func TestBinomPMFKnownValues(t *testing.T) {
	// C(4,2) 0.5^4 = 0.375
	if got := BinomPMF(4, 2, 0.5); !almost(got, 0.375, 1e-12) {
		t.Errorf("PMF(4,2,0.5) = %v", got)
	}
	if BinomPMF(4, 5, 0.5) != 0 || BinomPMF(4, -1, 0.5) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
	if BinomPMF(3, 0, 0) != 1 || BinomPMF(3, 3, 1) != 1 {
		t.Error("degenerate p cases wrong")
	}
}

func TestBinomTailGE(t *testing.T) {
	// P[X>=1] = 1-(1-p)^n
	for _, n := range []int{1, 3, 10} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			want := 1 - math.Pow(1-p, float64(n))
			if got := BinomTailGE(n, 1, p); !almost(got, want, 1e-10) {
				t.Errorf("TailGE(n=%d,l=1,p=%v) = %v, want %v", n, p, got, want)
			}
		}
	}
	if BinomTailGE(5, 0, 0.3) != 1 {
		t.Error("l=0 tail must be 1")
	}
	if BinomTailGE(5, 6, 0.3) != 0 {
		t.Error("l>n tail must be 0")
	}
}

func TestVoteBoundsPaperShapes(t *testing.T) {
	// Fig. 7 shape: for l=n, beta increases with n (p=0.97).
	prev := -1.0
	for n := 1; n <= 25; n++ {
		beta := VoteMissUB(n, n, 0.97)
		if beta < prev {
			t.Fatalf("beta(l=n) not increasing at n=%d: %v < %v", n, beta, prev)
		}
		prev = beta
	}
	// Known anchors: beta(l=n=5) = 1-0.97^5.
	if got, want := VoteMissUB(5, 5, 0.97), 1-math.Pow(0.97, 5); !almost(got, want, 1e-12) {
		t.Errorf("beta(5,5) = %v, want %v", got, want)
	}
	// For fixed n, beta has its minimum at l=1.
	for l := 1; l <= 10; l++ {
		if VoteMissUB(10, 1, 0.97) > VoteMissUB(10, l, 0.97)+1e-15 {
			t.Errorf("beta(l=1) should be minimal, l=%d", l)
		}
	}
}

func TestNormalLeakPaperShapes(t *testing.T) {
	// Fig. 8 shape: gamma decreases with l for fixed n, and increases
	// with b for fixed (n, l).
	const k = 1024
	for n := 2; n <= 25; n += 3 {
		prev := math.Inf(1)
		for l := 1; l <= n; l++ {
			g := NormalLeak(n, l, 1, k)
			if g > prev+1e-18 {
				t.Fatalf("gamma not decreasing in l at n=%d l=%d", n, l)
			}
			prev = g
		}
	}
	if NormalLeak(5, 3, 5, k) <= NormalLeak(5, 3, 1, k) {
		t.Error("gamma should grow with the number of anomalous bins b")
	}
	// Anchor: n=l=3, b=1, k=1024 -> (1/1024)^3.
	want := math.Pow(1.0/1024, 3)
	if got := NormalLeak(3, 3, 1, k); !almost(got, want, want*1e-6) {
		t.Errorf("gamma(3,3,1,1024) = %v, want %v", got, want)
	}
}

func TestVoteComplementarity(t *testing.T) {
	// Eq (1) + Eq (2) must sum to 1 for all parameters.
	f := func(n8, l8 uint8, pRaw uint16) bool {
		n := int(n8%25) + 1
		l := int(l8%uint8(n)) + 1
		p := float64(pRaw) / 65535
		return almost(VoteIncludeLB(n, l, p)+VoteMissUB(n, l, p), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Quantile(0.25) = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}
