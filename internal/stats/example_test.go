package stats_test

import (
	"fmt"

	"anomalyx/internal/stats"
)

// The voting bounds of §II-D: with n=3 clones, l=3 votes, and per-clone
// detection probability p=0.97, an anomalous feature value is missed
// with probability at most beta, while a normal value colliding on b=1
// of k=1024 anomalous bins survives voting with probability gamma.
func Example() {
	beta := stats.VoteMissUB(3, 3, 0.97)
	gamma := stats.NormalLeak(3, 3, 1, 1024)
	fmt.Printf("beta  <= %.4f\n", beta)
	fmt.Printf("gamma  = %.2e\n", gamma)
	// Output:
	// beta  <= 0.0873
	// gamma  = 9.31e-10
}

// RobustSigma estimates a standard deviation via the median absolute
// deviation — insensitive to the anomaly spikes that pollute the KL
// first-difference history.
func ExampleRobustSigma() {
	clean := []float64{-1, 0.5, 0, -0.5, 1, 0.2, -0.3, 0.8, -0.7, 0.1}
	spiked := append(append([]float64{}, clean...), 500) // one anomaly
	fmt.Printf("clean:  %.3f\n", stats.RobustSigma(clean))
	fmt.Printf("spiked: %.3f\n", stats.RobustSigma(spiked))
	// The spike barely moves the estimate (it would explode a plain
	// standard deviation to ~150).
	// Output:
	// clean:  0.741
	// spiked: 0.890
}
