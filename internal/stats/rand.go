package stats

import "math/rand/v2"

// Rand is a deterministic PRNG handle. Every stochastic component of the
// repository (traffic generator, simulations, property tests) draws from an
// explicitly seeded Rand so that experiments are exactly reproducible — the
// substitute for the fixed two-week SWITCH trace is a fixed seed.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a Rand seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint32N returns a uniform uint32 in [0, n). It panics if n == 0.
func (r *Rand) Uint32N(n uint32) uint32 { return uint32(r.src.Uint64N(uint64(n))) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.src.Float64() < p }

// NormFloat64 returns a standard normal variate.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Split derives an independent child generator; id selects the stream.
// Children of the same parent with different ids are decorrelated, which
// lets the trace generator give every interval and every injector its own
// stream without cross-talk when parameters change.
func (r *Rand) Split(id uint64) *Rand {
	s := r.src.Uint64() // advance parent so sequential Splits differ
	return NewRand(s ^ (id+1)*0xd1342543de82ef95)
}
