package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with different ids should produce different streams.
	parent := NewRand(7)
	c1 := parent.Split(1)
	parent2 := NewRand(7)
	c2 := parent2.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams correlated: %d/64 equal", same)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRand(3)
	const alpha, xm = 1.5, 2.0
	n := 50000
	var ge4 int
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto below xm: %v", v)
		}
		if v >= 4 {
			ge4++
		}
	}
	// P[X >= 4] = (xm/4)^alpha = 0.5^1.5 ≈ 0.3536
	got := float64(ge4) / float64(n)
	if math.Abs(got-0.3536) > 0.015 {
		t.Errorf("Pareto tail P[X>=4] = %.4f, want ~0.354", got)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.2, 2, 100)
		if v < 2 || v > 100 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
	if got := r.BoundedPareto(1.2, 5, 5); got != 5 {
		t.Errorf("degenerate bounds should return xm, got %v", got)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(5)
	const mu = 2.0
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.LogNormal(mu, 0.7)
	}
	med := Median(xs)
	want := math.Exp(mu)
	if math.Abs(med-want)/want > 0.05 {
		t.Errorf("lognormal median %v, want ~%v", med, want)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("weight[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{5, 1, 3, 1}
	a := NewAlias(weights)
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	r := NewRand(6)
	counts := make([]int, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	total := 10.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasZipfIsMonotone(t *testing.T) {
	a := NewZipfAlias(100, 1.1)
	r := NewRand(8)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[a.Sample(r)]++
	}
	// Rank 0 must dominate rank 10 must dominate rank 90.
	if !(counts[0] > counts[10] && counts[10] > counts[90]) {
		t.Errorf("zipf ranks not ordered: %d, %d, %d", counts[0], counts[10], counts[90])
	}
}

func TestAliasPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) did not panic", weights)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRand(10)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %.4f", got)
	}
}

func TestUint32N(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		if v := r.Uint32N(17); v >= 17 {
			t.Fatalf("Uint32N(17) = %d", v)
		}
	}
}
