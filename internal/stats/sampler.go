package stats

import (
	"math"
)

// Backbone traffic is dominated by heavy-tailed popularity: a few services
// (ports) and a few hosts carry most flows, with a long tail of rare
// values, while flow sizes in packets/bytes follow heavy-tailed laws. The
// samplers here reproduce those marginal distributions for the synthetic
// SWITCH-like trace (DESIGN.md §3).

// Pareto samples a Pareto(alpha, xm) variate: xm * U^(-1/alpha).
func (r *Rand) Pareto(alpha, xm float64) float64 {
	u := 1 - r.Float64() // (0, 1]
	return xm * math.Pow(u, -1/alpha)
}

// LogNormal samples exp(mu + sigma*Z).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// BoundedPareto samples a Pareto(alpha, xm) truncated to [xm, max] by
// resampling via inverse CDF of the truncated law (no rejection loop).
func (r *Rand) BoundedPareto(alpha, xm, max float64) float64 {
	if max <= xm {
		return xm
	}
	// Inverse CDF of the bounded Pareto.
	u := r.Float64()
	ha := math.Pow(max, -alpha)
	la := math.Pow(xm, -alpha)
	return math.Pow(la-u*(la-ha), -1/alpha)
}

// ZipfWeights returns the unnormalized Zipf(s) weights 1/rank^s for ranks
// 1..n; element i holds the weight of rank i+1.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// Alias is a Walker alias-method sampler over a fixed discrete
// distribution: O(n) setup, O(1) per sample. The generator uses one per
// popularity table (service ports, busy hosts, flow-length classes).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias sampler from non-negative weights. It panics if
// weights is empty or sums to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("stats: NewAlias requires at least one weight")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: NewAlias requires non-negative weights")
		}
		sum += w
	}
	if sum == 0 {
		panic("stats: NewAlias requires a positive total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// N returns the number of categories.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws a category index in [0, N).
func (a *Alias) Sample(r *Rand) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// NewZipfAlias builds an alias sampler over ranks 0..n-1 with Zipf
// exponent s — the workhorse popularity law of the traffic model.
func NewZipfAlias(n int, s float64) *Alias {
	return NewAlias(ZipfWeights(n, s))
}
