// Package stats collects the statistical primitives the pipeline relies
// on: robust scale estimation for the detector threshold (§II-C), the
// binomial voting bounds of Eqs. (1)–(3) (§II-D), and the heavy-tailed
// samplers that drive the synthetic backbone traffic model (§III-A
// substitution, see DESIGN.md §3).
//
// Everything here is deterministic: the estimators are pure functions
// of their sample slices (sorting internal copies, never the caller's
// slice), and the samplers are seeded generators that replay the same
// sequence for the same seed on every platform.
package stats

import (
	"math"
	"sort"
)

// MADScale is the consistency constant that turns a median absolute
// deviation into an estimate of the standard deviation of a normal
// distribution: sigma ≈ 1.4826 * MAD.
const MADScale = 1.4826022185056018

// Median returns the median of xs. It copies and sorts the input and
// returns NaN for an empty slice. For even lengths it returns the mean of
// the two central order statistics.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MAD returns the median absolute deviation of xs around its median:
// median(|x_i - median(x)|). It returns NaN for an empty slice.
func MAD(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, n)
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// RobustSigma estimates the standard deviation of xs via the MAD,
// assuming approximate normality — exactly the paper's §II-C estimator
// for the first difference of the KL time series: sigma_hat = 1.4826*MAD.
func RobustSigma(xs []float64) float64 {
	return MADScale * MAD(xs)
}

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (NaN for fewer than
// two observations).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// BinomPMF returns C(n,i) p^i (1-p)^(n-i), computed in log space for
// numerical stability at the extreme tail values Figures 7 and 8 plot on
// logarithmic axes.
func BinomPMF(n, i int, p float64) float64 {
	if i < 0 || i > n || n < 0 {
		return 0
	}
	switch {
	case p <= 0:
		if i == 0 {
			return 1
		}
		return 0
	case p >= 1:
		if i == n {
			return 1
		}
		return 0
	}
	lg := logChoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log1p(-p)
	return math.Exp(lg)
}

// BinomTailGE returns P[X >= l] for X ~ Binomial(n, p): the probability
// that at least l of n independent clones select a feature value.
func BinomTailGE(n, l int, p float64) float64 {
	if l <= 0 {
		return 1
	}
	if l > n {
		return 0
	}
	// Sum the smaller tail for accuracy.
	if float64(l) > float64(n)*p {
		var s float64
		for i := l; i <= n; i++ {
			s += BinomPMF(n, i, p)
		}
		return math.Min(1, s)
	}
	var s float64
	for i := 0; i < l; i++ {
		s += BinomPMF(n, i, p)
	}
	return math.Max(0, 1-s)
}

// VoteIncludeLB is Eq. (1): a lower bound on the probability that an
// anomalous feature value (selected by each clone independently with
// probability p) survives l-of-n voting.
func VoteIncludeLB(n, l int, p float64) float64 {
	return BinomTailGE(n, l, p)
}

// VoteMissUB is Eq. (2): the corresponding upper bound beta on the
// probability that an anomalous feature value is eliminated by voting.
func VoteMissUB(n, l int, p float64) float64 {
	return 1 - VoteIncludeLB(n, l, p)
}

// NormalLeak is Eq. (3): the probability gamma that a normal feature value
// survives l-of-n voting, when each clone selects it independently with
// probability q = b/k (b anomalous bins out of k total).
func NormalLeak(n, l, b, k int) float64 {
	if k <= 0 {
		return 0
	}
	q := float64(b) / float64(k)
	if q > 1 {
		q = 1
	}
	return BinomTailGE(n, l, q)
}

// logChoose returns log C(n, i) via log-gamma.
func logChoose(n, i int) float64 {
	lg1, _ := math.Lgamma(float64(n + 1))
	lg2, _ := math.Lgamma(float64(i + 1))
	lg3, _ := math.Lgamma(float64(n - i + 1))
	return lg1 - lg2 - lg3
}

// Quantile returns the qth empirical quantile of xs (0 <= q <= 1) using
// linear interpolation between order statistics; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}
