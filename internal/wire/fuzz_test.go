package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/wire"
)

// FuzzWireRoundTrip drives a small pipeline from arbitrary bytes —
// records, interval closes, and a drain are all derived from the input
// — then checks the codec's two standing invariants on the resulting
// snapshot:
//
//  1. canonical round trip: decode(encode(s)) is deeply equal to s and
//     re-encodes byte-identically;
//  2. lossless restore: a fresh pipeline restored from the decoded
//     snapshot re-snapshots to the same canonical bytes.
//
// The raw input is also fed to the decoder directly, which must reject
// or accept it without panicking, and accepted parses must re-encode
// byte-identically (decode is the codec's inverse on its own image and
// total everywhere else).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 250, 251, 252, 253, 254, 255})
	f.Add([]byte("interval\x00close\x07and\x0edrain\x15markers"))
	f.Add(bytes.Repeat([]byte{7, 0, 130, 200, 13, 80, 80, 1}, 40))

	cfg := core.Config{
		Features: []flow.FeatureKind{flow.SrcIP, flow.DstPort},
		Detector: detector.Config{Bins: 16, Clones: 2, Votes: 1, TrainIntervals: 2, Seed: 11},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic the decoder; valid parses
		// must re-encode to the same bytes.
		if s, err := wire.DecodePipelineSnapshot(data); err == nil {
			if enc := wire.EncodePipelineSnapshot(s); !bytes.Equal(enc, data) {
				t.Fatalf("accepted input re-encodes differently:\n in %x\nout %x", data, enc)
			}
		}

		p, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		// Interpret the input as a little op program: every 8 bytes form
		// one record, and op bytes ending in 0x0 close the interval so
		// the snapshot carries detection history, not just open state.
		for len(data) >= 8 {
			op, chunk := data[0], data[1:8]
			data = data[8:]
			if op&0xf == 0 {
				if _, err := p.EndInterval(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			rec := flow.Record{
				SrcAddr: uint32(chunk[0])<<8 | uint32(chunk[1]),
				DstAddr: uint32(chunk[2]),
				SrcPort: uint16(chunk[3]),
				DstPort: uint16(chunk[4]),
				Packets: uint32(chunk[5]) + 1,
				Bytes:   uint64(chunk[6]) * 40,
				Start:   int64(op) * 1000,
			}
			rec.Protocol = []byte{flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP}[int(chunk[6])%3]
			p.ObserveBatch([]flow.Record{rec})
		}

		snap := p.Snapshot()
		enc := wire.EncodePipelineSnapshot(snap)
		dec, err := wire.DecodePipelineSnapshot(enc)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(dec, snap) {
			t.Fatal("decoded snapshot differs from the original")
		}
		if enc2 := wire.EncodePipelineSnapshot(dec); !bytes.Equal(enc, enc2) {
			t.Fatal("re-encoding the decoded snapshot changed the bytes")
		}

		restored, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer restored.Close()
		if err := restored.RestoreSnapshot(dec); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if enc3 := wire.EncodePipelineSnapshot(restored.Snapshot()); !bytes.Equal(enc, enc3) {
			t.Fatal("restored pipeline re-snapshots to different bytes")
		}
	})
}
