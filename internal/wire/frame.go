package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
)

// Frame types of the agent→collector stream.
const (
	// frameHello opens a connection: magic, protocol version, agent ID,
	// and the detection-config digest.
	frameHello = 1
	// frameSnapshot carries one drained interval: the absolute grid
	// boundary (Unix ms) followed by a version-prefixed pipeline
	// snapshot.
	frameSnapshot = 2
	// frameBye announces a clean end of stream; the agent has already
	// shipped its final partial interval as an ordinary open-interval
	// (or snapshot) frame.
	frameBye = 3
	// frameOpenInterval carries one drained interval in the lean
	// open-interval-only encoding: the grid boundary followed by a
	// version-prefixed open-interval body (clone histograms + flow
	// buffer, no detection history — an agent never accumulates any).
	// This is what agents ship each interval; frameSnapshot remains for
	// full-state checkpoints.
	frameOpenInterval = 4
	// frameAck flows collector→agent: a varint boundary b meaning every
	// interval frame with boundary <= b has been absorbed (and, when
	// checkpointing is on, made durable). The agent drops those frames
	// from its replay buffer; acks are cumulative, so a lost ack is
	// repaired by any later one.
	frameAck = 5
	// frameHelloOK flows collector→agent in reply to a v3 Hello: a
	// varint boundary the agent must resume *after* (the collector's
	// dedup line for this agent). The agent trims its replay buffer to
	// frames beyond it before resending.
	frameHelloOK = 6
	// frameError flows collector→agent when a handshake or stream is
	// rejected: a uvarint errorCode* and a human-readable message, so an
	// operator sees "config mismatch" instead of a dropped connection.
	frameError = 7
	// frameByeOK flows collector→agent confirming a Bye was applied, so
	// the agent's Close can distinguish "stream ended cleanly" from "the
	// connection died and the Bye may be lost" — in the latter case it
	// redials and resends the Bye, keeping the collector from holding a
	// finished session open for an agent that will never return.
	frameByeOK = 8
	// frameRelayInterval carries one merged interval shipped by a relay
	// node (see Relay): the grid boundary and codec version as in
	// frameOpenInterval, then a relay header — the half-open span of
	// global leaf IDs the relay aggregates and the ascending in-span
	// leaf IDs this boundary closed without — followed by the merged
	// open-interval body. The span lets the root attribute Partial
	// reports (and a silent relay) to leaf agents instead of relay IDs.
	frameRelayInterval = 9
)

// Error codes carried by frameError.
const (
	errCodeOther = iota
	errCodeConfigMismatch
	errCodeBadAgentID
	errCodeBadVersion
	errCodeSessionEnded
)

// errSessionEnded is the decoded form of an errCodeSessionEnded
// rejection: the collector already applied this agent's Bye. An agent
// redialing to resend a Bye whose ByeOK was lost treats it as the
// confirmation it was waiting for.
var errSessionEnded = errors.New("wire: collector already ended this agent's stream")

// protoVersion is the framing/handshake version; bump together with any
// protocol-shape change. Version 2 added the open-interval frame agents
// now emit. Version 3 made the stream survivable and bidirectional:
// Hello carries a resume boundary, and the collector answers with
// HelloOK, per-boundary Acks, and Error frames. Collectors accept
// minProtoVersion..protoVersion, so v2 agents still work (one-way,
// crash-stop: a v2 connection that drops cannot replay, and the
// collector marks its agent dead instead of aborting the session).
const (
	protoVersion    = 3
	minProtoVersion = 2
)

// helloMagic starts every Hello payload, so a collector fed a stray
// connection fails with a clear error instead of a codec one.
var helloMagic = [4]byte{'A', 'X', 'W', 'P'}

// maxFrameLen bounds a frame payload (1 GiB). Snapshot frames carry a
// whole interval's flow buffer, so the bound is generous; anything
// larger is treated as stream corruption.
const maxFrameLen = 1 << 30

// writeFrame writes one length-prefixed frame: uint32 big-endian payload
// length (including the type byte), the type byte, then the payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrameLen {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return hdr[4], payload, nil
}

// ConfigDigest hashes the detection-relevant configuration — the
// monitored feature list and the *defaulted* detector template — into a
// 64-bit value both ends of a connection must agree on. Two processes
// with equal digests build histogram clones over the same feature
// space, bin count, and seeded hash functions, which is exactly the
// precondition for the Absorb merge path to be meaningful; mining-side
// settings (miner choice, support, prefilter strategy) are deliberately
// excluded, since only the collector's copies of those ever run.
func ConfigDigest(cfg core.Config) uint64 {
	feats := cfg.Features
	if len(feats) == 0 {
		feats = flow.DetectorFeatures[:]
	}
	d := cfg.Detector.WithDefaults()
	var b []byte
	b = appendUvarint(b, uint64(len(feats)))
	for _, f := range feats {
		b = appendUvarint(b, uint64(f))
	}
	b = appendUvarint(b, uint64(d.Bins))
	b = appendUvarint(b, uint64(d.Clones))
	b = appendUvarint(b, uint64(d.Votes))
	b = appendFloat64(b, d.Alpha)
	b = appendUvarint(b, uint64(d.TrainIntervals))
	b = appendUvarint(b, uint64(d.HistoryWindow))
	b = appendVarint(b, int64(d.MaxRemoveBins))
	b = appendUvarint(b, d.Seed)
	b = appendUvarint(b, uint64(d.Metric))
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// hello is the decoded handshake.
type hello struct {
	version int
	agentID int
	// resume is the last boundary the agent knows to be acked (v3 only;
	// 0 for none, and always 0 on a v2 hello). Frames the agent resends
	// after a reconnect start beyond it.
	resume int64
	digest uint64
}

// appendHello encodes the handshake payload for the given protocol
// version: magic, version, agent ID, the v3 resume boundary, and the
// config digest as the trailing 8 bytes.
func appendHello(b []byte, version int, agentID int, resume int64, digest uint64) []byte {
	b = append(b, helloMagic[:]...)
	b = appendUvarint(b, uint64(version))
	b = appendUvarint(b, uint64(agentID))
	if version >= 3 {
		b = appendVarint(b, resume)
	}
	return binary.LittleEndian.AppendUint64(b, digest)
}

// errBadHelloVersion marks an out-of-range protocol version so the
// collector can answer with a versioned frameError instead of silently
// dropping the connection.
type errBadHelloVersion int

// Error satisfies error with the version range the collector speaks.
func (v errBadHelloVersion) Error() string {
	return fmt.Sprintf("wire: unsupported protocol version %d (want %d..%d)",
		int(v), minProtoVersion, protoVersion)
}

// decodeHello parses a v2 or v3 Hello payload.
func decodeHello(payload []byte) (hello, error) {
	r := &reader{buf: payload}
	var magic [4]byte
	for i := range magic {
		magic[i] = r.byte()
	}
	if r.err() == nil && magic != helloMagic {
		return hello{}, fmt.Errorf("wire: bad hello magic %q", magic[:])
	}
	v := r.uvarint()
	if r.err() == nil && (v < minProtoVersion || v > protoVersion) {
		return hello{}, errBadHelloVersion(v)
	}
	h := hello{version: int(v), agentID: int(r.uvarint())}
	if h.version >= 3 {
		h.resume = r.varint()
	}
	if r.rem() != 8 {
		r.fail("hello digest is not the trailing 8 bytes")
	}
	if r.err() != nil {
		return hello{}, r.err()
	}
	h.digest = binary.LittleEndian.Uint64(payload[len(payload)-8:])
	r.off += 8
	r.expectEOF()
	return h, r.err()
}

// appendBoundary encodes the payload of an Ack or HelloOK frame: the
// boundary alone.
func appendBoundary(b []byte, boundary int64) []byte {
	return appendVarint(b, boundary)
}

// decodeBoundary parses an Ack or HelloOK payload.
func decodeBoundary(payload []byte) (int64, error) {
	r := &reader{buf: payload}
	b := r.varint()
	r.expectEOF()
	return b, r.err()
}

// appendError encodes a frameError payload: code, then the message
// bytes to the end of the frame.
func appendError(b []byte, code uint64, msg string) []byte {
	b = appendUvarint(b, code)
	return append(b, msg...)
}

// decodeError parses a frameError payload into the error the agent
// surfaces: a ConfigMismatchError for errCodeConfigMismatch, a plain
// error otherwise.
func decodeError(payload []byte) error {
	r := &reader{buf: payload}
	code := r.uvarint()
	if r.err() != nil {
		return fmt.Errorf("wire: malformed error frame: %w", r.err())
	}
	msg := string(payload[r.off:])
	switch code {
	case errCodeConfigMismatch:
		var e ConfigMismatchError
		if _, err := fmt.Sscanf(msg, configMismatchFormat, &e.Agent, &e.Collector); err == nil {
			return &e
		}
	case errCodeSessionEnded:
		return errSessionEnded
	}
	return fmt.Errorf("wire: collector rejected the connection: %s", msg)
}

// configMismatchFormat is the message layout of a digest-mismatch
// rejection; both ends use it so the agent can reconstruct the digests.
const configMismatchFormat = "config mismatch: agent=%x collector=%x"

// ConfigMismatchError reports a handshake rejected because the agent's
// detection-config digest differs from the collector's — the two would
// merge incompatible histogram spaces. It carries both digests so an
// operator can diff the configurations; cmd/anomalyx maps it to a
// distinct exit code.
type ConfigMismatchError struct {
	// Agent and Collector are the two ConfigDigest values that differed.
	Agent, Collector uint64
}

// Error renders the mismatch with both digests.
func (e *ConfigMismatchError) Error() string {
	return "wire: " + fmt.Sprintf(configMismatchFormat, e.Agent, e.Collector)
}
