package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
)

// Frame types of the agent→collector stream.
const (
	// frameHello opens a connection: magic, protocol version, agent ID,
	// and the detection-config digest.
	frameHello = 1
	// frameSnapshot carries one drained interval: the absolute grid
	// boundary (Unix ms) followed by a version-prefixed pipeline
	// snapshot.
	frameSnapshot = 2
	// frameBye announces a clean end of stream; the agent has already
	// shipped its final partial interval as an ordinary open-interval
	// (or snapshot) frame.
	frameBye = 3
	// frameOpenInterval carries one drained interval in the lean
	// open-interval-only encoding: the grid boundary followed by a
	// version-prefixed open-interval body (clone histograms + flow
	// buffer, no detection history — an agent never accumulates any).
	// This is what agents ship each interval; frameSnapshot remains for
	// full-state checkpoints.
	frameOpenInterval = 4
)

// protoVersion is the framing/handshake version; bump together with any
// protocol-shape change. Collectors reject other versions. Version 2
// added the open-interval frame agents now emit, so a v1 collector
// refuses the handshake instead of choking mid-stream.
const protoVersion = 2

// helloMagic starts every Hello payload, so a collector fed a stray
// connection fails with a clear error instead of a codec one.
var helloMagic = [4]byte{'A', 'X', 'W', 'P'}

// maxFrameLen bounds a frame payload (1 GiB). Snapshot frames carry a
// whole interval's flow buffer, so the bound is generous; anything
// larger is treated as stream corruption.
const maxFrameLen = 1 << 30

// writeFrame writes one length-prefixed frame: uint32 big-endian payload
// length (including the type byte), the type byte, then the payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrameLen {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return hdr[4], payload, nil
}

// ConfigDigest hashes the detection-relevant configuration — the
// monitored feature list and the *defaulted* detector template — into a
// 64-bit value both ends of a connection must agree on. Two processes
// with equal digests build histogram clones over the same feature
// space, bin count, and seeded hash functions, which is exactly the
// precondition for the Absorb merge path to be meaningful; mining-side
// settings (miner choice, support, prefilter strategy) are deliberately
// excluded, since only the collector's copies of those ever run.
func ConfigDigest(cfg core.Config) uint64 {
	feats := cfg.Features
	if len(feats) == 0 {
		feats = flow.DetectorFeatures[:]
	}
	d := cfg.Detector.WithDefaults()
	var b []byte
	b = appendUvarint(b, uint64(len(feats)))
	for _, f := range feats {
		b = appendUvarint(b, uint64(f))
	}
	b = appendUvarint(b, uint64(d.Bins))
	b = appendUvarint(b, uint64(d.Clones))
	b = appendUvarint(b, uint64(d.Votes))
	b = appendFloat64(b, d.Alpha)
	b = appendUvarint(b, uint64(d.TrainIntervals))
	b = appendUvarint(b, uint64(d.HistoryWindow))
	b = appendVarint(b, int64(d.MaxRemoveBins))
	b = appendUvarint(b, d.Seed)
	b = appendUvarint(b, uint64(d.Metric))
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// hello is the decoded handshake.
type hello struct {
	agentID int
	digest  uint64
}

// appendHello encodes the handshake payload.
func appendHello(b []byte, agentID int, digest uint64) []byte {
	b = append(b, helloMagic[:]...)
	b = appendUvarint(b, protoVersion)
	b = appendUvarint(b, uint64(agentID))
	return binary.LittleEndian.AppendUint64(b, digest)
}

// decodeHello parses a Hello payload.
func decodeHello(payload []byte) (hello, error) {
	r := &reader{buf: payload}
	var magic [4]byte
	for i := range magic {
		magic[i] = r.byte()
	}
	if r.err() == nil && magic != helloMagic {
		return hello{}, fmt.Errorf("wire: bad hello magic %q", magic[:])
	}
	if v := r.uvarint(); r.err() == nil && v != protoVersion {
		return hello{}, fmt.Errorf("wire: unsupported protocol version %d (want %d)", v, protoVersion)
	}
	h := hello{agentID: int(r.uvarint())}
	if r.rem() < 8 {
		r.fail("truncated hello digest")
	}
	if r.err() != nil {
		return hello{}, r.err()
	}
	h.digest = binary.LittleEndian.Uint64(payload[len(payload)-8:])
	r.off += 8
	r.expectEOF()
	return h, r.err()
}
