package wire_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/engine"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// TestDistributedPipelinedAgents pins the pipelined close across the
// wire: agent engines run with PipelineDepth > 1 — which falls back to
// the synchronous close because AgentSink drains-and-ships inline — and
// the collector's merged reports must be byte-identical to a local
// pipelined engine (same shard count, same depth) consuming the whole
// trace in one process. This ties all three closing modes together:
// local sync, local pipelined, and distributed.
func TestDistributedPipelinedAgents(t *testing.T) {
	const agents = 2
	trace := testTrace(10, 3000, 8)
	cfg := testPipelineConfig()

	// Reference: a local pipelined engine sharded the same way the
	// agents partition the trace.
	ref, err := engine.New(engine.Config{
		Pipeline: cfg, Shards: agents, IntervalLen: 15 * time.Minute, PipelineDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	alarmed := false
	refDone := make(chan struct{})
	go func() {
		defer close(refDone)
		for rep := range ref.Reports() {
			want = append(want, renderReport(rep))
			alarmed = alarmed || rep.Alarm
		}
	}()
	for _, recs := range trace {
		if _, err := ref.SubmitBatch(recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	<-refDone
	if !alarmed {
		t.Fatal("pipelined reference run never alarmed; the test would not cover extraction")
	}

	// Partition the trace exactly as the sharded reference does.
	sp, err := shard.New(shard.Config{Shards: agents, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][][]flow.Record, agents)
	for id := range parts {
		parts[id] = make([][]flow.Record, len(trace))
	}
	for i, recs := range trace {
		for j := range recs {
			id := sp.ShardOf(&recs[j])
			parts[id][i] = append(parts[id][i], recs[j])
		}
	}
	sp.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: agents})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	var got []string
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runPipelinedAgent(t, ln.Addr().String(), id, cfg, parts[id])
		}(id)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}
	ln.Close()

	if len(got) != len(want) {
		t.Fatalf("collector closed %d intervals, pipelined local run closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: collector report differs from local pipelined run:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}

// runPipelinedAgent is runAgent with PipelineDepth set on the agent
// engine: the AgentSink cannot split its close, so the engine must fall
// back to the synchronous path and ship identical snapshots.
func runPipelinedAgent(t *testing.T, addr string, id int, cfg core.Config, part [][]flow.Record) {
	t.Helper()
	agent, err := wire.Dial(addr, id, cfg)
	if err != nil {
		t.Errorf("agent %d: dial: %v", id, err)
		return
	}
	sp, err := shard.New(shard.Config{Shards: 1, Pipeline: cfg})
	if err != nil {
		t.Errorf("agent %d: %v", id, err)
		agent.Close()
		return
	}
	eng, err := engine.NewWithSink(
		engine.Config{IntervalLen: 15 * time.Minute, PipelineDepth: 3},
		wire.NewAgentSink(agent, sp),
	)
	if err != nil {
		t.Errorf("agent %d: %v", id, err)
		agent.Close()
		return
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Reports() {
		}
	}()
	for _, recs := range part {
		if _, err := eng.SubmitBatch(recs); err != nil {
			t.Errorf("agent %d: submit: %v", id, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Errorf("agent %d: engine close: %v", id, err)
	}
	<-drained
	if err := agent.Close(); err != nil {
		t.Errorf("agent %d: close: %v", id, err)
	}
}
