package wire_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
	"anomalyx/internal/wire"
)

// testTrace generates a seeded tracegen trace with an injected dstPort
// flood in interval floodAt so detection, prefiltering, and mining are
// all exercised. Records keep their tracegen timestamps, which fall
// inside aligned 15-minute interval windows — the engine's boundary
// grid therefore reproduces the tracegen interval structure exactly.
func testTrace(intervals, baseFlows, floodAt int) [][]flow.Record {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = intervals
	cfg.BaseFlows = baseFlows
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	out := make([][]flow.Record, intervals)
	for i := range out {
		recs := gen.Interval(i)
		if i == floodAt {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		out[i] = recs
	}
	return out
}

func testPipelineConfig() core.Config {
	return core.Config{
		Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 3},
	}
}

// renderReport serializes every deterministic report field so two
// reports can be compared for byte identity (the KeepSuspicious
// forensic slice is excluded, as in the shard determinism tests).
func renderReport(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "interval=%d alarm=%v total=%d suspicious=%d minsup=%d R=%v partial=%v\n",
		rep.Interval, rep.Alarm, rep.TotalFlows, rep.SuspiciousFlows,
		rep.MinSupport, rep.CostReduction, rep.Partial)
	fmt.Fprintf(&b, "detection=%+v\n", rep.Detection)
	if rep.Mining != nil {
		fmt.Fprintf(&b, "mining=%+v\n", *rep.Mining)
	}
	for i := range rep.ItemSets {
		fmt.Fprintf(&b, "set %s sup=%d\n", rep.ItemSets[i].String(), rep.ItemSets[i].Support)
	}
	return b.String()
}

// TestBankSnapshotRoundTrip pins the codec's lossless-checkpoint
// guarantee at the bank level: snapshot a bank with real detection
// history and a partially accumulated interval, push it through
// encode/decode, restore into a fresh bank, and both banks must produce
// byte-identical results for every subsequent interval. The decoded
// snapshot must also be deeply equal to the original and re-encode to
// identical bytes (the canonical-form property).
func TestBankSnapshotRoundTrip(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	bcfg := detector.BankConfig{Template: cfg.Detector, Workers: 1}

	orig, err := detector.NewBank(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	// Build history over five intervals, then leave a sixth partially
	// accumulated so the open-interval state is non-trivial too.
	for i := 0; i < 5; i++ {
		orig.ObserveBatch(trace[i])
		orig.EndInterval()
	}
	orig.ObserveBatch(trace[5][:900])

	snap := orig.Snapshot()
	enc := wire.EncodeBankSnapshot(snap)
	dec, err := wire.DecodeBankSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec, snap) {
		t.Fatal("decoded bank snapshot differs from the original")
	}
	if enc2 := wire.EncodeBankSnapshot(dec); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}

	restored, err := detector.NewBank(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Subsequent reports must be byte-identical, interval for interval.
	for i := 5; i < len(trace); i++ {
		rest := trace[i]
		if i == 5 {
			rest = trace[i][900:] // the first 900 are already in both banks
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		want := fmt.Sprintf("%+v", orig.EndInterval())
		got := fmt.Sprintf("%+v", restored.EndInterval())
		if got != want {
			t.Fatalf("interval %d diverged after restore:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestPipelineSnapshotRoundTrip is the pipeline-level version: the
// snapshot additionally carries the interval's flow buffer, so the
// restored pipeline's extraction stage (prefilter + mining) must also
// match byte for byte.
func TestPipelineSnapshotRoundTrip(t *testing.T) {
	trace := testTrace(10, 2000, 8)
	cfg := testPipelineConfig()

	orig, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for i := 0; i < 7; i++ {
		if _, err := orig.ProcessInterval(trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	orig.ObserveBatch(trace[7][:1200])

	snap := orig.Snapshot()
	enc := wire.EncodePipelineSnapshot(snap)
	dec, err := wire.DecodePipelineSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec, snap) {
		t.Fatal("decoded pipeline snapshot differs from the original")
	}
	if enc2 := wire.EncodePipelineSnapshot(dec); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}

	restored, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	alarmed := false
	for i := 7; i < len(trace); i++ {
		rest := trace[i]
		if i == 7 {
			rest = trace[i][1200:]
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		wantRep, err := orig.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := restored.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		alarmed = alarmed || wantRep.Alarm
		if got, want := renderReport(gotRep), renderReport(wantRep); got != want {
			t.Fatalf("interval %d diverged after restore:\n got %s\nwant %s", i, got, want)
		}
	}
	if !alarmed {
		t.Fatal("post-restore intervals never alarmed; extraction path was not compared")
	}
}

// TestDrainAbsorbEquivalence pins the agent-side primitive: draining a
// pipeline's open interval and absorbing the (decoded) snapshot into a
// second pipeline leaves the second exactly as if it had observed the
// flows itself, and leaves the drained pipeline empty.
func TestDrainAbsorbEquivalence(t *testing.T) {
	trace := testTrace(6, 1500, 4)
	cfg := testPipelineConfig()

	direct, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	primary, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	agent, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	scratch, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close()

	for i, recs := range trace {
		direct.ObserveBatch(recs)
		agent.ObserveBatch(recs)

		snap := agent.DrainSnapshot()
		dec, err := wire.DecodePipelineSnapshot(wire.EncodePipelineSnapshot(snap))
		if err != nil {
			t.Fatal(err)
		}
		if err := scratch.RestoreSnapshot(dec); err != nil {
			t.Fatal(err)
		}
		if err := primary.Absorb(scratch); err != nil {
			t.Fatal(err)
		}

		wantRep, err := direct.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := primary.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderReport(gotRep), renderReport(wantRep); got != want {
			t.Fatalf("interval %d: drained/absorbed report diverged:\n got %s\nwant %s", i, got, want)
		}
	}
	// The drained agent must be empty: closing its interval reports no
	// flows.
	rep, err := agent.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFlows != 0 {
		t.Fatalf("drained pipeline still buffers %d flows", rep.TotalFlows)
	}
}

// TestDecodeRejects exercises the codec's corruption handling: version
// mismatches, truncation, and trailing bytes must all fail cleanly.
func TestDecodeRejects(t *testing.T) {
	p, err := core.New(testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ObserveBatch(testTrace(1, 200, 0)[0])
	enc := wire.EncodePipelineSnapshot(p.Snapshot())

	if _, err := wire.DecodePipelineSnapshot(nil); err == nil {
		t.Error("decoding empty input succeeded")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := wire.DecodePipelineSnapshot(bad); err == nil {
		t.Error("decoding a wrong codec version succeeded")
	}
	if _, err := wire.DecodePipelineSnapshot(enc[:len(enc)/2]); err == nil {
		t.Error("decoding truncated input succeeded")
	}
	if _, err := wire.DecodePipelineSnapshot(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("decoding input with trailing bytes succeeded")
	}
	// Non-minimal varints (0x80 0x00 encodes 0 in two bytes) must be
	// rejected: the codec is canonical, so decode accepts exactly what
	// encode produces — the FuzzWireRoundTrip re-encode invariant.
	if _, err := wire.DecodePipelineSnapshot([]byte{1, 0x80, 0x00, 0x00}); err == nil {
		t.Error("decoding a non-minimal uvarint succeeded")
	}
}

// TestConfigDigest pins the handshake contract: implicit defaults and
// their explicit spellings digest identically, while any change to the
// histogram space (seed, bins, features) digests differently.
func TestConfigDigest(t *testing.T) {
	implicit := core.Config{}
	explicit := core.Config{
		Features: flow.DetectorFeatures[:],
		Detector: detector.Config{}.WithDefaults(),
	}
	if wire.ConfigDigest(implicit) != wire.ConfigDigest(explicit) {
		t.Error("defaulted and explicit configurations digest differently")
	}
	base := testPipelineConfig()
	variants := []core.Config{
		{Detector: detector.Config{Bins: 512, TrainIntervals: 4, Seed: 3}},
		{Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 4}},
		{Detector: detector.Config{Bins: 256, TrainIntervals: 5, Seed: 3}},
		{Features: []flow.FeatureKind{flow.SrcIP}, Detector: base.Detector},
	}
	for i, v := range variants {
		if wire.ConfigDigest(v) == wire.ConfigDigest(base) {
			t.Errorf("variant %d digests equal to base", i)
		}
	}
}

// --- raw-stream helpers for the error-path tests ---
//
// These speak the wire protocol byte-for-byte, independent of the
// Agent implementation, so malformed streams can be crafted exactly.

// Protocol constants mirrored from the wire package (which keeps them
// unexported); the error-path tests pin them as wire-format facts.
const (
	rawFrameHello   = 1
	rawFrameBye     = 3
	rawFrameHelloOK = 6
	rawFrameError   = 7
	rawFrameByeOK   = 8
)

// writeRawFrame writes one length-prefixed frame: uint32 big-endian
// payload length including the type byte, the type byte, the payload.
func writeRawFrame(t *testing.T, w io.Writer, typ byte, payload []byte) {
	t.Helper()
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(append(hdr, payload...)); err != nil {
		t.Fatalf("writing raw frame: %v", err)
	}
}

// readRawFrame reads one frame off a raw connection.
func readRawFrame(conn io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > 1<<30 {
		return 0, nil, fmt.Errorf("frame length %d out of range", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// rawHello builds a Hello payload: magic, uvarint version and agent ID,
// the v3 zigzag-varint resume offset, and the trailing 8-byte digest.
func rawHello(magic string, version, agentID uint64, resume int64, digest uint64) []byte {
	p := []byte(magic)
	p = binary.AppendUvarint(p, version)
	p = binary.AppendUvarint(p, agentID)
	if version >= 3 {
		p = binary.AppendVarint(p, resume)
	}
	return binary.LittleEndian.AppendUint64(p, digest)
}

// errorPathCollector serves a 1-agent collector session for one
// error-path case and returns the listener plus channels carrying the
// emitted report count and Serve's error.
func errorPathCollector(t *testing.T, cfg core.Config) (net.Listener, *wire.Collector, <-chan int, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 1})
	if err != nil {
		t.Fatal(err)
	}
	emitted := make(chan int, 1)
	serveErr := make(chan error, 1)
	go func() {
		n := 0
		serveErr <- coll.Serve(context.Background(), ln, func(*core.Report) error {
			n++
			emitted <- n
			return nil
		})
	}()
	return ln, coll, emitted, serveErr
}

// TestCollectorRejectsMalformedStreams drives the collector's framing
// and handshake error paths over real connections: each malformed
// stream must be rejected — with a typed frameError reply where the
// protocol defines one, a silent close otherwise — WITHOUT killing the
// session, which a well-behaved agent then finishes normally.
func TestCollectorRejectsMalformedStreams(t *testing.T) {
	cfg := testPipelineConfig()
	digest := wire.ConfigDigest(cfg)

	cases := []struct {
		name string
		// send writes the malformed bytes; it returns true when a
		// frameError reply is expected (vs a silent connection close).
		send     func(t *testing.T, conn net.Conn)
		wantCode uint64
		wantMsg  string
		silent   bool
	}{
		{
			name: "hello protocol version too old",
			send: func(t *testing.T, conn net.Conn) {
				writeRawFrame(t, conn, rawFrameHello, rawHello("AXWP", 1, 0, 0, digest))
			},
			wantCode: 3, // errCodeBadVersion
			wantMsg:  "unsupported protocol version 1",
		},
		{
			name: "hello protocol version too new",
			send: func(t *testing.T, conn net.Conn) {
				writeRawFrame(t, conn, rawFrameHello, rawHello("AXWP", 99, 0, 0, digest))
			},
			wantCode: 3,
			wantMsg:  "unsupported protocol version 99",
		},
		{
			name: "hello bad magic",
			send: func(t *testing.T, conn net.Conn) {
				writeRawFrame(t, conn, rawFrameHello, rawHello("NOPE", 3, 0, 0, digest))
			},
			wantCode: 0, // errCodeOther
			wantMsg:  "bad hello magic",
		},
		{
			name: "hello config digest mismatch",
			send: func(t *testing.T, conn net.Conn) {
				writeRawFrame(t, conn, rawFrameHello, rawHello("AXWP", 3, 0, 0, digest+1))
			},
			wantCode: 1, // errCodeConfigMismatch
			wantMsg:  "config mismatch: agent=",
		},
		{
			name: "hello agent ID out of range",
			send: func(t *testing.T, conn net.Conn) {
				writeRawFrame(t, conn, rawFrameHello, rawHello("AXWP", 3, 5, 0, digest))
			},
			wantCode: 2, // errCodeBadAgentID
			wantMsg:  "out of range",
		},
		{
			name: "truncated frame",
			send: func(t *testing.T, conn net.Conn) {
				// A header promising 64 payload bytes, then only 3 and EOF.
				hdr := []byte{0, 0, 0, 64, rawFrameHello, 'A', 'X', 'W'}
				if _, err := conn.Write(hdr); err != nil {
					t.Fatal(err)
				}
				conn.(*net.TCPConn).CloseWrite()
			},
			silent: true,
		},
		{
			name: "oversized frame",
			send: func(t *testing.T, conn net.Conn) {
				// Length 1 GiB + 1: over maxFrameLen, rejected at the header.
				if _, err := conn.Write([]byte{0x40, 0, 0, 1, rawFrameHello}); err != nil {
					t.Fatal(err)
				}
			},
			silent: true,
		},
		{
			name: "zero-length frame",
			send: func(t *testing.T, conn net.Conn) {
				if _, err := conn.Write([]byte{0, 0, 0, 0, 0}); err != nil {
					t.Fatal(err)
				}
			},
			silent: true,
		},
		{
			name: "first frame not hello",
			send: func(t *testing.T, conn net.Conn) {
				writeRawFrame(t, conn, rawFrameBye, nil)
			},
			silent: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, coll, emitted, serveErr := errorPathCollector(t, cfg)
			defer coll.Close()

			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			tc.send(t, conn)
			if tc.silent {
				// The collector must close the connection without a reply.
				if typ, _, err := readRawFrame(conn); err == nil {
					t.Fatalf("expected silent close, got frame type %d", typ)
				}
			} else {
				typ, payload, err := readRawFrame(conn)
				if err != nil {
					t.Fatalf("reading rejection reply: %v", err)
				}
				if typ != rawFrameError {
					t.Fatalf("reply frame type = %d, want %d (error)", typ, rawFrameError)
				}
				code, n := binary.Uvarint(payload)
				if n <= 0 {
					t.Fatalf("malformed error payload % x", payload)
				}
				if code != tc.wantCode {
					t.Errorf("error code = %d, want %d", code, tc.wantCode)
				}
				if msg := string(payload[n:]); !strings.Contains(msg, tc.wantMsg) {
					t.Errorf("error message %q does not contain %q", msg, tc.wantMsg)
				}
			}
			conn.Close()

			// The rejection must not have hurt the session: a well-behaved
			// agent connects, ends cleanly, and the session closes with the
			// empty-stream parity report.
			agent, err := wire.Dial(ln.Addr().String(), 0, cfg)
			if err != nil {
				t.Fatalf("well-behaved agent after rejection: %v", err)
			}
			if err := agent.Close(); err != nil {
				t.Fatalf("well-behaved agent close: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Fatalf("collector: %v", err)
			}
			if n := <-emitted; n != 1 {
				t.Fatalf("session emitted %d reports, want 1 parity report", n)
			}
		})
	}
}

// TestDuplicateAgentIDNewestWins pins the replacement-connection
// semantics: a second Hello for an already-connected agent ID takes
// over the stream (the legitimate owner of an ID is whoever can still
// dial), and the collector closes the superseded connection.
func TestDuplicateAgentIDNewestWins(t *testing.T) {
	cfg := testPipelineConfig()
	digest := wire.ConfigDigest(cfg)
	ln, coll, emitted, serveErr := errorPathCollector(t, cfg)
	defer coll.Close()

	connA, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	writeRawFrame(t, connA, rawFrameHello, rawHello("AXWP", 3, 0, 0, digest))
	if typ, _, err := readRawFrame(connA); err != nil || typ != rawFrameHelloOK {
		t.Fatalf("first hello reply: type %d, err %v; want HelloOK", typ, err)
	}

	connB, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	writeRawFrame(t, connB, rawFrameHello, rawHello("AXWP", 3, 0, 0, digest))
	if typ, _, err := readRawFrame(connB); err != nil || typ != rawFrameHelloOK {
		t.Fatalf("second hello reply: type %d, err %v; want HelloOK", typ, err)
	}

	// The first connection is superseded: the collector closes it, so
	// the next read fails instead of delivering a frame.
	if typ, _, err := readRawFrame(connA); err == nil {
		t.Fatalf("superseded connection still delivered frame type %d", typ)
	}
	connA.Close()

	// The replacement connection owns the stream: its Bye ends the
	// session and is confirmed with ByeOK.
	writeRawFrame(t, connB, rawFrameBye, nil)
	if typ, _, err := readRawFrame(connB); err != nil || typ != rawFrameByeOK {
		t.Fatalf("bye reply: type %d, err %v; want ByeOK", typ, err)
	}
	connB.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}
	if n := <-emitted; n != 1 {
		t.Fatalf("session emitted %d reports, want 1 parity report", n)
	}
}

// TestV2AgentStillAccepted pins backward compatibility: a protocol-v2
// Hello (no resume offset, no reply expected) is accepted, and the v2
// stream's Bye ends the session without any collector→agent traffic.
func TestV2AgentStillAccepted(t *testing.T) {
	cfg := testPipelineConfig()
	ln, coll, emitted, serveErr := errorPathCollector(t, cfg)
	defer coll.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	writeRawFrame(t, conn, rawFrameHello, rawHello("AXWP", 2, 0, 0, wire.ConfigDigest(cfg)))
	writeRawFrame(t, conn, rawFrameBye, nil)
	// v2 is one-way: the collector applies the Bye and closes the
	// connection without writing anything.
	if typ, _, err := readRawFrame(conn); err == nil {
		t.Fatalf("v2 connection received unexpected frame type %d", typ)
	}
	conn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}
	if n := <-emitted; n != 1 {
		t.Fatalf("session emitted %d reports, want 1 parity report", n)
	}
}
