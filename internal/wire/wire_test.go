package wire_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
	"anomalyx/internal/wire"
)

// testTrace generates a seeded tracegen trace with an injected dstPort
// flood in interval floodAt so detection, prefiltering, and mining are
// all exercised. Records keep their tracegen timestamps, which fall
// inside aligned 15-minute interval windows — the engine's boundary
// grid therefore reproduces the tracegen interval structure exactly.
func testTrace(intervals, baseFlows, floodAt int) [][]flow.Record {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = intervals
	cfg.BaseFlows = baseFlows
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	out := make([][]flow.Record, intervals)
	for i := range out {
		recs := gen.Interval(i)
		if i == floodAt {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		out[i] = recs
	}
	return out
}

func testPipelineConfig() core.Config {
	return core.Config{
		Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 3},
	}
}

// renderReport serializes every deterministic report field so two
// reports can be compared for byte identity (the KeepSuspicious
// forensic slice is excluded, as in the shard determinism tests).
func renderReport(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "interval=%d alarm=%v total=%d suspicious=%d minsup=%d R=%v\n",
		rep.Interval, rep.Alarm, rep.TotalFlows, rep.SuspiciousFlows,
		rep.MinSupport, rep.CostReduction)
	fmt.Fprintf(&b, "detection=%+v\n", rep.Detection)
	if rep.Mining != nil {
		fmt.Fprintf(&b, "mining=%+v\n", *rep.Mining)
	}
	for i := range rep.ItemSets {
		fmt.Fprintf(&b, "set %s sup=%d\n", rep.ItemSets[i].String(), rep.ItemSets[i].Support)
	}
	return b.String()
}

// TestBankSnapshotRoundTrip pins the codec's lossless-checkpoint
// guarantee at the bank level: snapshot a bank with real detection
// history and a partially accumulated interval, push it through
// encode/decode, restore into a fresh bank, and both banks must produce
// byte-identical results for every subsequent interval. The decoded
// snapshot must also be deeply equal to the original and re-encode to
// identical bytes (the canonical-form property).
func TestBankSnapshotRoundTrip(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	bcfg := detector.BankConfig{Template: cfg.Detector, Workers: 1}

	orig, err := detector.NewBank(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	// Build history over five intervals, then leave a sixth partially
	// accumulated so the open-interval state is non-trivial too.
	for i := 0; i < 5; i++ {
		orig.ObserveBatch(trace[i])
		orig.EndInterval()
	}
	orig.ObserveBatch(trace[5][:900])

	snap := orig.Snapshot()
	enc := wire.EncodeBankSnapshot(snap)
	dec, err := wire.DecodeBankSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec, snap) {
		t.Fatal("decoded bank snapshot differs from the original")
	}
	if enc2 := wire.EncodeBankSnapshot(dec); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}

	restored, err := detector.NewBank(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Subsequent reports must be byte-identical, interval for interval.
	for i := 5; i < len(trace); i++ {
		rest := trace[i]
		if i == 5 {
			rest = trace[i][900:] // the first 900 are already in both banks
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		want := fmt.Sprintf("%+v", orig.EndInterval())
		got := fmt.Sprintf("%+v", restored.EndInterval())
		if got != want {
			t.Fatalf("interval %d diverged after restore:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestPipelineSnapshotRoundTrip is the pipeline-level version: the
// snapshot additionally carries the interval's flow buffer, so the
// restored pipeline's extraction stage (prefilter + mining) must also
// match byte for byte.
func TestPipelineSnapshotRoundTrip(t *testing.T) {
	trace := testTrace(10, 2000, 8)
	cfg := testPipelineConfig()

	orig, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for i := 0; i < 7; i++ {
		if _, err := orig.ProcessInterval(trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	orig.ObserveBatch(trace[7][:1200])

	snap := orig.Snapshot()
	enc := wire.EncodePipelineSnapshot(snap)
	dec, err := wire.DecodePipelineSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec, snap) {
		t.Fatal("decoded pipeline snapshot differs from the original")
	}
	if enc2 := wire.EncodePipelineSnapshot(dec); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}

	restored, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	alarmed := false
	for i := 7; i < len(trace); i++ {
		rest := trace[i]
		if i == 7 {
			rest = trace[i][1200:]
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		wantRep, err := orig.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := restored.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		alarmed = alarmed || wantRep.Alarm
		if got, want := renderReport(gotRep), renderReport(wantRep); got != want {
			t.Fatalf("interval %d diverged after restore:\n got %s\nwant %s", i, got, want)
		}
	}
	if !alarmed {
		t.Fatal("post-restore intervals never alarmed; extraction path was not compared")
	}
}

// TestDrainAbsorbEquivalence pins the agent-side primitive: draining a
// pipeline's open interval and absorbing the (decoded) snapshot into a
// second pipeline leaves the second exactly as if it had observed the
// flows itself, and leaves the drained pipeline empty.
func TestDrainAbsorbEquivalence(t *testing.T) {
	trace := testTrace(6, 1500, 4)
	cfg := testPipelineConfig()

	direct, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	primary, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	agent, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	scratch, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close()

	for i, recs := range trace {
		direct.ObserveBatch(recs)
		agent.ObserveBatch(recs)

		snap := agent.DrainSnapshot()
		dec, err := wire.DecodePipelineSnapshot(wire.EncodePipelineSnapshot(snap))
		if err != nil {
			t.Fatal(err)
		}
		if err := scratch.RestoreSnapshot(dec); err != nil {
			t.Fatal(err)
		}
		if err := primary.Absorb(scratch); err != nil {
			t.Fatal(err)
		}

		wantRep, err := direct.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := primary.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderReport(gotRep), renderReport(wantRep); got != want {
			t.Fatalf("interval %d: drained/absorbed report diverged:\n got %s\nwant %s", i, got, want)
		}
	}
	// The drained agent must be empty: closing its interval reports no
	// flows.
	rep, err := agent.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFlows != 0 {
		t.Fatalf("drained pipeline still buffers %d flows", rep.TotalFlows)
	}
}

// TestDecodeRejects exercises the codec's corruption handling: version
// mismatches, truncation, and trailing bytes must all fail cleanly.
func TestDecodeRejects(t *testing.T) {
	p, err := core.New(testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ObserveBatch(testTrace(1, 200, 0)[0])
	enc := wire.EncodePipelineSnapshot(p.Snapshot())

	if _, err := wire.DecodePipelineSnapshot(nil); err == nil {
		t.Error("decoding empty input succeeded")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := wire.DecodePipelineSnapshot(bad); err == nil {
		t.Error("decoding a wrong codec version succeeded")
	}
	if _, err := wire.DecodePipelineSnapshot(enc[:len(enc)/2]); err == nil {
		t.Error("decoding truncated input succeeded")
	}
	if _, err := wire.DecodePipelineSnapshot(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("decoding input with trailing bytes succeeded")
	}
	// Non-minimal varints (0x80 0x00 encodes 0 in two bytes) must be
	// rejected: the codec is canonical, so decode accepts exactly what
	// encode produces — the FuzzWireRoundTrip re-encode invariant.
	if _, err := wire.DecodePipelineSnapshot([]byte{1, 0x80, 0x00, 0x00}); err == nil {
		t.Error("decoding a non-minimal uvarint succeeded")
	}
}

// TestConfigDigest pins the handshake contract: implicit defaults and
// their explicit spellings digest identically, while any change to the
// histogram space (seed, bins, features) digests differently.
func TestConfigDigest(t *testing.T) {
	implicit := core.Config{}
	explicit := core.Config{
		Features: flow.DetectorFeatures[:],
		Detector: detector.Config{}.WithDefaults(),
	}
	if wire.ConfigDigest(implicit) != wire.ConfigDigest(explicit) {
		t.Error("defaulted and explicit configurations digest differently")
	}
	base := testPipelineConfig()
	variants := []core.Config{
		{Detector: detector.Config{Bins: 512, TrainIntervals: 4, Seed: 3}},
		{Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 4}},
		{Detector: detector.Config{Bins: 256, TrainIntervals: 5, Seed: 3}},
		{Features: []flow.FeatureKind{flow.SrcIP}, Detector: base.Detector},
	}
	for i, v := range variants {
		if wire.ConfigDigest(v) == wire.ConfigDigest(base) {
			t.Errorf("variant %d digests equal to base", i)
		}
	}
}
