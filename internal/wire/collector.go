package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/wire/metrics"
)

// PartialPolicy selects what the collector does with an interval whose
// boundary is pending while some agent is disconnected.
type PartialPolicy int

const (
	// HoldWithTimeout (the default) holds the interval open waiting for
	// the missing agent to reconnect and deliver; after HoldTimeout the
	// agent is declared dead and the interval closes without it, flagged
	// Partial. A zero HoldTimeout holds forever.
	HoldWithTimeout PartialPolicy = iota
	// CloseWithout closes intervals immediately without disconnected
	// agents, flagging them Partial. Connected agents are always waited
	// for (their frames are in flight or their connection will break),
	// so this policy only degrades reports when a connection is
	// actually down.
	CloseWithout
)

// String names the policy.
func (p PartialPolicy) String() string {
	switch p {
	case HoldWithTimeout:
		return "hold-with-timeout"
	case CloseWithout:
		return "close-without"
	default:
		return fmt.Sprintf("partial-policy(%d)", int(p))
	}
}

// CollectorConfig parameterizes a collector session beyond the pipeline
// configuration: fleet size, partial-interval policy, checkpointing,
// and the metrics listener.
type CollectorConfig struct {
	// Agents is the fleet size; agent IDs must be in [0, Agents).
	Agents int
	// Policy selects the partial-interval behavior; see PartialPolicy.
	Policy PartialPolicy
	// HoldTimeout bounds how long HoldWithTimeout waits for a
	// disconnected agent before closing without it. 0 holds forever.
	HoldTimeout time.Duration
	// CheckpointPath, when non-empty, makes the collector write its
	// durable state there (atomic temp+rename) after every closed
	// interval, before acking the interval's frames.
	CheckpointPath string
	// Resume makes Serve rehydrate from CheckpointPath before accepting
	// connections: the pipeline state, interval numbering, and per-agent
	// dedup lines continue where the checkpointed session stopped.
	Resume bool
	// MetricsAddr, when non-empty, serves the session's expvar metrics
	// over HTTP on that address for the lifetime of Serve.
	MetricsAddr string

	// queueCap bounds the per-agent pending-frame queue via ingest
	// credits; 0 takes the default (4). Unexported: tests tune it.
	queueCap int
}

// withDefaults resolves the zero values.
func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.queueCap == 0 {
		c.queueCap = 4
	}
	return c
}

// agentStatus is the collector's per-agent connection-state machine.
type agentStatus uint8

const (
	// statusPending: never connected this session. Blocks interval
	// closes under both policies — the session has no grid information
	// from the agent yet, and startup skew must not produce partial
	// reports.
	statusPending agentStatus = iota
	// statusLive: connected. Blocks closes until its next frame arrives
	// (in-order delivery means the frame is coming or the connection
	// will break).
	statusLive
	// statusDown: disconnected, expected back (v3, HoldWithTimeout).
	// Blocks closes until it reconnects or the hold timer fires.
	statusDown
	// statusDead: disconnected and not waited for — a v2 drop (cannot
	// replay), a drop under CloseWithout, or a hold timeout. Never
	// blocks; intervals close without it, flagged Partial. A v3 agent
	// may still reconnect out of it.
	statusDead
	// statusBye: ended its stream cleanly. Never blocks; a later hello
	// for the same ID is rejected.
	statusBye
)

func (s agentStatus) metricsName() string {
	switch s {
	case statusLive:
		return metrics.StatusLive
	case statusDown:
		return metrics.StatusDown
	case statusDead:
		return metrics.StatusDead
	case statusBye:
		return metrics.StatusBye
	default:
		return metrics.StatusPending
	}
}

// Collector is the receiving half of the protocol. It merges the
// agents' drained interval frames by absolute grid boundary, absorbing
// each boundary's frames into its primary pipeline in agent-ID order
// (the same Absorb merge path in-process sharding uses) and closing
// detection there, so the merged report stream is byte-identical to a
// single process having run all agent partitions as local shards.
//
// Unlike the pre-v3 collector, a session survives its transports:
// connections may drop and reconnect freely (agents replay unacked
// frames; the collector deduplicates against its per-agent absorbed
// line and queue tail), a replacement connection for an agent ID
// supersedes the old one (newest wins — the legitimate owner of an ID
// is whoever can still dial), and a permanently missing agent degrades
// reports per the PartialPolicy instead of killing the session. Only
// listener, pipeline, emit, checkpoint, and context errors are fatal.
type Collector struct {
	cc      CollectorConfig
	digest  uint64
	primary *core.Pipeline // owns all detection state
	scratch *core.Pipeline // decode target, reused across snapshots
	met     *metrics.Session
	// fwd, when non-nil, puts the collector in forward mode: it is the
	// child-facing half of a Relay, and every closed boundary is drained
	// and shipped upstream instead of closing detection. See relay.go.
	fwd *forwarder
}

// NewCollector builds a collector. cfg is the full pipeline
// configuration — detection parameters must match the agents' (enforced
// via the handshake digest), and the mining-side settings (miner,
// support, prefilter) are the ones that actually run.
func NewCollector(cfg core.Config, cc CollectorConfig) (*Collector, error) {
	cc = cc.withDefaults()
	if cc.Agents < 1 {
		return nil, fmt.Errorf("wire: collector needs at least 1 agent, got %d", cc.Agents)
	}
	if cc.Resume && cc.CheckpointPath == "" {
		return nil, fmt.Errorf("wire: Resume requires CheckpointPath")
	}
	primary, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	scratch, err := core.New(cfg)
	if err != nil {
		primary.Close()
		return nil, err
	}
	return &Collector{
		cc:      cc,
		digest:  ConfigDigest(cfg),
		primary: primary,
		scratch: scratch,
		met:     metrics.NewSession(cc.Agents),
	}, nil
}

// Metrics returns the session's metrics surface, for callers that want
// to expvar.Publish it or serve it themselves (MetricsAddr does the
// latter in-process).
func (c *Collector) Metrics() *metrics.Session { return c.met }

// Close releases the collector's pipelines. It must not be called while
// Serve is running.
func (c *Collector) Close() {
	c.primary.Close()
	c.scratch.Close()
}

// Event kinds of the merge loop. Everything that happens to a session —
// handshakes, frames, disconnects, timeouts — is serialized into one
// event stream consumed by a single goroutine that owns all merge
// state.
type eventKind int

const (
	evHello eventKind = iota
	evFrame
	evBye
	evConnErr
	evAcceptErr
	evHoldTimeout
	// evUpstreamAck (forward mode only): the relay's parent advanced its
	// cumulative ack line to boundary; children may now be settled up to
	// it.
	evUpstreamAck
)

// event is one merge-loop input.
type event struct {
	kind  eventKind
	conn  net.Conn
	hello hello
	reply chan helloReply

	id, gen  int
	boundary int64
	frame    queuedFrame
	err      error
}

// helloReply is the merge loop's answer to a handshake: either a
// rejection (err + frame error code) or the attachment the connection
// handler reads frames under.
type helloReply struct {
	err     error
	code    uint64
	gen     int
	credits chan struct{}
}

// queuedFrame is one received-but-unabsorbed interval frame: exactly
// one of oi (the lean open-interval form, absorbed additively) and snap
// (a full snapshot, restored into the scratch pipeline and merged) is
// set.
type queuedFrame struct {
	boundary int64
	oi       *core.OpenInterval
	snap     *core.PipelineSnapshot
	// Relay frames additionally carry the sender's global leaf span and
	// the in-span leaf IDs its boundary closed without; spanLen is 0 for
	// plain agent frames.
	missing         []int
	spanLo, spanLen int
}

// agentState is the merge loop's per-agent record.
type agentState struct {
	status   agentStatus
	gen      int           // connection generation; stale events carry an older one
	conn     net.Conn      // live connection, nil otherwise
	ackCh    chan int64    // latest-wins ack channel to the connection's ack writer (v3 only)
	credits  chan struct{} // ingest tokens the connection's reader consumes
	v2       bool          // protocol v2: no acks, a drop is final
	queue    []queuedFrame // pending frames, boundary ascending
	absorbed int64         // highest boundary absorbed into the primary
	// emittedAtAbsorb is the session's emitted count when the agent last
	// participated in a close; emitted - emittedAtAbsorb is its lag.
	emittedAtAbsorb int64
	// spanLo/spanLen remember the leaf span of an agent that is itself a
	// relay (learned from its frames; spanLen 0 for plain agents), so a
	// fully silent relay degrades Partial attribution to its leaves.
	spanLo, spanLen int
}

// tail returns the agent's highest queued boundary, or its absorbed
// line when the queue is empty — the dedup line replayed frames must
// exceed.
func (a *agentState) tail() int64 {
	if n := len(a.queue); n > 0 {
		return a.queue[n-1].boundary
	}
	return a.absorbed
}

// session is the per-Serve mutable state, owned by the merge loop.
type session struct {
	ag         []*agentState
	lastClosed int64
	emitted    int64
	// acked is the line agents may be acked up to. At the root (and in a
	// checkpointed relay) it tracks lastClosed; in an ack-gated relay it
	// is min(upstream ack line, lastClosed) — the ack-after-upstream
	// ordering rule that makes a relay crash unable to lose a boundary.
	acked  int64
	events chan event
	done   chan struct{}
	// forget removes a connection from Serve's teardown set — called when
	// a Bye hands the connection to its ack writer, whose final ByeOK
	// write must not race the session-end mass close.
	forget func(net.Conn)
	// writers counts live ack-writer goroutines. Serve waits for them on
	// return so a collector process exiting right after the session ends
	// cannot kill a pending ByeOK write — in-process the goroutine would
	// finish anyway, but process exit would sever it mid-confirmation and
	// strand the agent redialing a dead listener.
	writers sync.WaitGroup

	holdTimer *time.Timer
	holdFor   int64 // boundary the armed timer covers, -1 when disarmed
}

// Serve runs one collector session on ln until every agent has ended
// (Bye) or been abandoned (dead with nothing pending), calling emit for
// each closed interval's report in boundary order. It accepts
// connections for the whole session — initial connects, reconnects, and
// replacements — and closes ln on return. Cancelling ctx shuts the
// session down and returns ctx.Err().
func (c *Collector) Serve(ctx context.Context, ln net.Listener, emit func(*core.Report) error) error {
	s := &session{
		events:  make(chan event, 16),
		done:    make(chan struct{}),
		holdFor: -1,
	}
	s.ag = make([]*agentState, c.cc.Agents)
	for i := range s.ag {
		s.ag[i] = &agentState{}
	}
	if c.cc.Resume {
		if err := c.restore(s); err != nil {
			return err
		}
	}
	if c.fwd != nil {
		if cp := c.fwd.restored; cp != nil {
			c.restoreForward(s, cp)
		}
		go c.watchUpstreamAcks(s)
	}

	if c.cc.MetricsAddr != "" {
		mln, err := net.Listen("tcp", c.cc.MetricsAddr)
		if err != nil {
			return fmt.Errorf("wire: metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: c.met.Handler()}
		go msrv.Serve(mln)
		defer msrv.Close()
	}

	// Track every accepted connection so session teardown can unblock
	// handler goroutines parked in reads.
	var cmu sync.Mutex
	conns := make(map[net.Conn]struct{})
	s.forget = func(conn net.Conn) {
		cmu.Lock()
		delete(conns, conn)
		cmu.Unlock()
	}
	defer func() {
		close(s.done)
		ln.Close()
		s.stopHold()
		cmu.Lock()
		//detlint:ok maprange -- teardown closes every tracked conn; Close order is unobservable
		for conn := range conns {
			conn.Close()
		}
		cmu.Unlock()
		s.writers.Wait()
	}()

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case s.events <- event{kind: evAcceptErr, err: err}:
				case <-s.done:
				}
				return
			}
			cmu.Lock()
			conns[conn] = struct{}{}
			cmu.Unlock()
			go c.handleConn(conn, s.events, s.done)
		}
	}()

	return c.merge(ctx, s, emit)
}

// restore rehydrates the session from the last checkpoint.
func (c *Collector) restore(s *session) error {
	cp, err := loadCheckpointFile(c.cc.CheckpointPath)
	if err != nil {
		return err
	}
	if len(cp.absorbed) != len(s.ag) {
		return fmt.Errorf("wire: checkpoint has %d agents, collector configured for %d",
			len(cp.absorbed), len(s.ag))
	}
	if err := c.primary.RestoreSnapshot(cp.snap); err != nil {
		return fmt.Errorf("wire: restoring checkpoint pipeline: %w", err)
	}
	s.lastClosed = cp.lastClosed
	s.emitted = cp.emitted
	s.acked = cp.lastClosed
	for id, st := range s.ag {
		st.absorbed = cp.absorbed[id]
		st.emittedAtAbsorb = cp.emitted
		// Every agent is disconnected at restart: finished ones stay
		// finished, everyone else is down (they will redial and resume).
		switch cp.statuses[id] {
		case statusBye:
			st.status = statusBye
		case statusDead:
			st.status = statusDead
		default:
			st.status = statusDown
		}
		c.met.Agent(id).SetStatus(st.status.metricsName())
	}
	c.met.SetLastClosed(s.lastClosed)
	return nil
}

// handleConn owns one accepted connection: it performs the handshake
// against the merge loop, then decodes the agent→collector frame stream
// into merge events, consuming one ingest credit per frame so a fast
// agent cannot outrun the merge unboundedly. All collector→agent frames
// on an accepted v3 connection are written by its ack writer; rejection
// errors are written here, before any ack writer exists.
func (c *Collector) handleConn(conn net.Conn, events chan<- event, done <-chan struct{}) {
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameHello {
		conn.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		code := uint64(errCodeOther)
		if _, ok := err.(errBadHelloVersion); ok {
			code = errCodeBadVersion
		}
		writeFrame(conn, frameError, appendError(nil, code, err.Error()))
		conn.Close()
		return
	}
	reply := make(chan helloReply, 1)
	select {
	case events <- event{kind: evHello, conn: conn, hello: h, reply: reply}:
	case <-done:
		conn.Close()
		return
	}
	var r helloReply
	select {
	case r = <-reply:
	case <-done:
		conn.Close()
		return
	}
	if r.err != nil {
		writeFrame(conn, frameError, appendError(nil, r.code, r.err.Error()))
		conn.Close()
		return
	}

	id, gen := h.agentID, r.gen
	fail := func(err error) {
		select {
		case events <- event{kind: evConnErr, id: id, gen: gen, err: err}:
		case <-done:
		}
	}
	br := bufio.NewReader(conn)
	var last int64
	for {
		select {
		case <-r.credits:
		case <-done:
			return
		}
		typ, payload, err := readFrame(br)
		if err != nil {
			fail(err)
			return
		}
		switch typ {
		case frameSnapshot, frameOpenInterval, frameRelayInterval:
			frame, err := decodeIntervalPayload(typ, payload, c.fwd != nil)
			if err == nil && frame.boundary <= last {
				err = fmt.Errorf("wire: boundary %d not after %d on one connection", frame.boundary, last)
			}
			if err != nil {
				fail(err)
				return
			}
			last = frame.boundary
			select {
			case events <- event{kind: evFrame, id: id, gen: gen, boundary: frame.boundary, frame: frame}:
			case <-done:
				return
			}
		case frameBye:
			select {
			case events <- event{kind: evBye, id: id, gen: gen}:
			case <-done:
			}
			return
		default:
			fail(fmt.Errorf("wire: unexpected frame type %d", typ))
			return
		}
	}
}

// byeOKSentinel on the ack channel makes the ack writer emit a ByeOK
// confirmation instead of an Ack; it is pushed (then the channel
// closed) when the merge loop applies the agent's Bye.
const byeOKSentinel int64 = -1

// ackWriter is the sole writer on an accepted v3 connection: first the
// HelloOK reply carrying the agent's resume line, then an Ack frame per
// value received on ch (or the ByeOK confirmation for the sentinel). It
// exits on write error (the read side will notice the broken connection
// independently), when the merge loop closes ch on retiring the
// connection, or — for a session that ends abnormally with the
// connection still live — on done, after draining any confirmation the
// merge loop queued before ending. It closes conn on the way out; after
// a confirmed Bye it is the connection's last user.
func ackWriter(conn net.Conn, ch <-chan int64, resume int64, done <-chan struct{}) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	if err := writeFrame(w, frameHelloOK, appendBoundary(nil, resume)); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	write := func(b int64) bool {
		typ := byte(frameAck)
		var payload []byte
		if b == byeOKSentinel {
			typ = frameByeOK
		} else {
			payload = appendBoundary(nil, b)
		}
		if err := writeFrame(w, typ, payload); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for {
		select {
		case b, ok := <-ch:
			if !ok || !write(b) {
				return
			}
		case <-done:
			// Nothing further is owed, but a confirmation the merge loop
			// queued just before the session ended must still go out.
			for {
				select {
				case b, ok := <-ch:
					if !ok || !write(b) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// pushLatest delivers b on a capacity-1 channel, displacing a pending
// older value — acks are cumulative, only the newest matters.
func pushLatest(ch chan int64, b int64) {
	for {
		select {
		case ch <- b:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}

// merge is the collector's heart: a single goroutine that owns all
// session state, closes every ready boundary, and applies one event at
// a time.
func (c *Collector) merge(ctx context.Context, s *session, emit func(*core.Report) error) error {
	for {
		for {
			b, ok := s.minQueued()
			if !ok || !s.ready(b, c.cc.Policy) {
				break
			}
			s.stopHold()
			if err := c.closeNext(s, b, emit); err != nil {
				return err
			}
		}
		c.armHold(s)

		if s.finished() {
			if c.fwd != nil {
				// A relay ends silently: the empty-stream parity report is
				// the root's to emit, once, for the whole tree.
				return nil
			}
			if s.emitted == 0 {
				// Parity with a single process over an empty stream: its
				// engine still flushes one (empty) final interval on
				// Close.
				rep, err := c.primary.EndInterval()
				if err != nil {
					return err
				}
				return emit(rep)
			}
			return nil
		}

		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-s.events:
			if err := c.handleEvent(s, ev, ctx); err != nil {
				return err
			}
		}
	}
}

// minQueued returns the smallest queued boundary across all agents.
func (s *session) minQueued() (int64, bool) {
	var b int64
	ok := false
	for _, st := range s.ag {
		if len(st.queue) > 0 && (!ok || st.queue[0].boundary < b) {
			b = st.queue[0].boundary
			ok = true
		}
	}
	return b, ok
}

// blocks reports whether the agent's state forbids closing a boundary
// it has no queued frame for yet.
func (a *agentState) blocks(policy PartialPolicy) bool {
	if len(a.queue) > 0 {
		return false // its earliest frame is known; at worst it skips this boundary
	}
	switch a.status {
	case statusLive, statusPending:
		return true
	case statusDown:
		return policy == HoldWithTimeout
	default: // dead, bye
		return false
	}
}

// ready reports whether boundary b can close now: no agent that might
// still contribute to it is missing its frame.
func (s *session) ready(_ int64, policy PartialPolicy) bool {
	for _, st := range s.ag {
		if st.blocks(policy) {
			return false
		}
	}
	return true
}

// finished reports session completion: every agent ended or abandoned,
// nothing left to absorb.
func (s *session) finished() bool {
	for _, st := range s.ag {
		if len(st.queue) > 0 {
			return false
		}
		if st.status != statusBye && st.status != statusDead {
			return false
		}
	}
	return true
}

// stopHold disarms the hold timer.
func (s *session) stopHold() {
	if s.holdTimer != nil {
		s.holdTimer.Stop()
		s.holdTimer = nil
	}
	s.holdFor = -1
}

// armHold arms the partial-interval timer when a pending boundary is
// blocked only by disconnected (or never-connected) agents. Blockage by
// a connected agent never times out: its frame is in flight, or its
// connection will break and reclassify it.
func (c *Collector) armHold(s *session) {
	if c.cc.Policy != HoldWithTimeout || c.cc.HoldTimeout <= 0 {
		return
	}
	b, ok := s.minQueued()
	if !ok || s.ready(b, c.cc.Policy) {
		s.stopHold()
		return
	}
	for _, st := range s.ag {
		if st.blocks(c.cc.Policy) && st.status == statusLive {
			s.stopHold()
			return
		}
	}
	if s.holdFor == b {
		return // already armed for this boundary
	}
	s.stopHold()
	s.holdFor = b
	boundary := b
	s.holdTimer = time.AfterFunc(c.cc.HoldTimeout, func() {
		select {
		case s.events <- event{kind: evHoldTimeout, boundary: boundary}:
		case <-s.done:
		}
	})
}

// refund returns one ingest credit to the agent's current connection.
func (a *agentState) refund() {
	if a.credits == nil {
		return
	}
	select {
	case a.credits <- struct{}{}:
	default:
	}
}

// retireConn drops the agent's current connection (if any), terminating
// its ack writer and invalidating in-flight events from its reader.
func (a *agentState) retireConn() {
	if a.ackCh != nil {
		close(a.ackCh)
		a.ackCh = nil
	}
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
	a.credits = nil
	a.gen++
}

// finishConn ends the agent's connection after a Bye: the ack writer
// emits the ByeOK confirmation, then exits and closes the connection
// itself — closing here would race the confirmation off the wire and
// leave the agent's Close redialing a session that already ended. v2
// connections (no ack writer) close immediately; they never wait.
func (a *agentState) finishConn() {
	if a.ackCh != nil {
		pushLatest(a.ackCh, byeOKSentinel)
		close(a.ackCh)
		a.ackCh = nil
		a.conn = nil // the ack writer owns closing it
	} else if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
	a.credits = nil
	a.gen++
}

// closeNext closes boundary b on whichever path the collector runs:
// the root's emit path or a relay's forward path.
func (c *Collector) closeNext(s *session, b int64, emit func(*core.Report) error) error {
	if c.fwd != nil {
		return c.closeBoundaryForward(s, b)
	}
	return c.closeBoundary(s, b, emit)
}

// closeBoundary absorbs every agent's frame for boundary b in agent-ID
// order, closes the interval on the primary pipeline, emits the report
// (flagging agents the interval closed without), checkpoints when
// configured, and only then acks b to the connected agents — so an
// acked frame is never one a restarted collector would need again.
func (c *Collector) closeBoundary(s *session, b int64, emit func(*core.Report) error) error {
	var frameMissing []int
	for id, st := range s.ag {
		if len(st.queue) == 0 || st.queue[0].boundary != b {
			continue
		}
		if fr := st.queue[0]; fr.oi != nil {
			// Lean open-interval frame: fold the clone snapshots and flow
			// buffer straight into the primary — no scratch restore, no
			// history copy.
			if err := c.primary.AbsorbOpenInterval(*fr.oi); err != nil {
				return fmt.Errorf("wire: absorbing agent %d: %w", id, err)
			}
			frameMissing = append(frameMissing, fr.missing...)
		} else {
			if err := c.scratch.RestoreSnapshot(*fr.snap); err != nil {
				return fmt.Errorf("wire: agent %d snapshot: %w", id, err)
			}
			if err := c.primary.Absorb(c.scratch); err != nil {
				return fmt.Errorf("wire: absorbing agent %d: %w", id, err)
			}
		}
		st.queue[0] = queuedFrame{}
		st.queue = st.queue[1:]
		st.absorbed = b
		st.emittedAtAbsorb = s.emitted + 1
		st.refund()
		c.met.Agent(id).SetQueueDepth(int64(len(st.queue)))
	}
	rep, err := c.primary.EndInterval()
	if err != nil {
		return err
	}
	// Flag the leaf agents this interval closed without: the missing
	// lists carried by relay frames, plus every disconnected agent whose
	// frame for b is neither queued nor just absorbed (absorbed advances
	// to b in the loop above for every contributor, so an agent that
	// delivered b and then dropped is not flagged). A silent relay
	// expands to its remembered leaf span.
	rep.Partial = s.missingFor(b, frameMissing, 0)
	if err := emit(rep); err != nil {
		return err
	}
	s.lastClosed = b
	s.emitted++
	c.met.SetLastClosed(b)
	c.met.IncEmitted()
	if c.cc.CheckpointPath != "" {
		if err := c.writeCheckpoint(s); err != nil {
			return err
		}
	}
	s.acked = b
	c.ackChildren(s)
	for id, st := range s.ag {
		c.met.Agent(id).SetLag(s.emitted - st.emittedAtAbsorb)
	}
	return nil
}

// writeCheckpoint persists the session's durable state.
func (c *Collector) writeCheckpoint(s *session) error {
	cp := checkpoint{
		lastClosed: s.lastClosed,
		emitted:    s.emitted,
		absorbed:   make([]int64, len(s.ag)),
		statuses:   make([]agentStatus, len(s.ag)),
		snap:       c.primary.Snapshot(),
	}
	for id, st := range s.ag {
		cp.absorbed[id] = st.absorbed
		cp.statuses[id] = st.status
	}
	return writeCheckpointFile(c.cc.CheckpointPath, cp)
}

// handleEvent applies one event to the session. Only accept and
// hold-timeout handling can end the session; connection-scoped failures
// retire the connection and reclassify the agent instead.
func (c *Collector) handleEvent(s *session, ev event, ctx context.Context) error {
	switch ev.kind {
	case evHello:
		c.handleHello(s, ev)
	case evFrame:
		st := s.ag[ev.id]
		if ev.gen != st.gen {
			return nil // stale connection; its frames replay on the new one
		}
		if ev.frame.spanLen > 0 {
			// The agent is itself a relay; remember its leaf span so
			// Partial attribution can name its leaves if it goes silent.
			st.spanLo, st.spanLen = ev.frame.spanLo, ev.frame.spanLen
		}
		if ev.boundary <= s.lastClosed || ev.boundary <= st.tail() {
			// Already held or already closed: drop and re-ack (up to the
			// settled line — never past an upstream ack a relay is still
			// waiting for) so the agent trims its replay buffer.
			if ev.boundary > st.absorbed && ev.boundary <= s.lastClosed {
				c.met.Agent(ev.id).IncLateDrops()
			} else {
				c.met.Agent(ev.id).IncDupDrops()
			}
			st.refund()
			if st.ackCh != nil && s.acked > 0 {
				pushLatest(st.ackCh, s.acked)
				c.met.Agent(ev.id).SetLastAcked(s.acked)
			}
			return nil
		}
		st.queue = append(st.queue, ev.frame)
		c.met.Agent(ev.id).SetQueueDepth(int64(len(st.queue)))
	case evBye:
		st := s.ag[ev.id]
		if ev.gen != st.gen {
			return nil
		}
		if st.conn != nil && st.ackCh != nil && s.forget != nil {
			s.forget(st.conn) // the ack writer closes it after the ByeOK
		}
		st.finishConn()
		st.status = statusBye
		c.met.Agent(ev.id).SetStatus(metrics.StatusBye)
	case evConnErr:
		st := s.ag[ev.id]
		if ev.gen != st.gen {
			return nil
		}
		st.retireConn()
		if st.v2 || c.cc.Policy == CloseWithout {
			st.status = statusDead
		} else {
			st.status = statusDown
		}
		c.met.Agent(ev.id).SetStatus(st.status.metricsName())
	case evAcceptErr:
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("wire: accepting agent connection: %w", ev.err)
	case evHoldTimeout:
		if s.holdFor != ev.boundary {
			return nil // stale timer; the boundary already closed or moved
		}
		s.stopHold()
		for id, st := range s.ag {
			if st.blocks(c.cc.Policy) && st.status != statusLive {
				st.status = statusDead
				c.met.Agent(id).SetStatus(metrics.StatusDead)
			}
		}
	case evUpstreamAck:
		c.met.SetFramesHeld(int64(c.fwd.agent.unackedFrames()))
		if c.fwd.ckptPath == "" {
			// Ack-after-upstream: children settle only once the merged
			// frames containing their boundaries are acked by the parent.
			if line := min(ev.boundary, s.lastClosed); line > s.acked {
				s.acked = line
				c.ackChildren(s)
			}
		}
	}
	return nil
}

// handleHello validates a handshake and, on success, attaches the
// connection as the agent's current one — newest wins: a replacement
// connection supersedes and closes the previous, since the legitimate
// owner of an agent ID is whoever can still dial (a half-open TCP
// remnant must not lock a restarted agent out).
func (c *Collector) handleHello(s *session, ev event) {
	h := ev.hello
	if h.agentID < 0 || h.agentID >= len(s.ag) {
		ev.reply <- helloReply{
			err:  fmt.Errorf("agent ID %d out of range [0,%d)", h.agentID, len(s.ag)),
			code: errCodeBadAgentID,
		}
		return
	}
	if h.digest != c.digest {
		ev.reply <- helloReply{
			err:  fmt.Errorf(configMismatchFormat, h.digest, c.digest),
			code: errCodeConfigMismatch,
		}
		return
	}
	st := s.ag[h.agentID]
	if st.status == statusBye {
		ev.reply <- helloReply{
			err:  fmt.Errorf("agent %d already ended its stream", h.agentID),
			code: errCodeSessionEnded,
		}
		return
	}
	if st.status != statusPending {
		c.met.Agent(h.agentID).IncReconnects()
	}
	st.retireConn()
	st.conn = ev.conn
	st.v2 = h.version < 3
	st.status = statusLive
	st.credits = make(chan struct{}, c.cc.queueCap)
	for i := 0; i < c.cc.queueCap; i++ {
		st.credits <- struct{}{}
	}
	resume := st.tail()
	if !st.v2 {
		st.ackCh = make(chan int64, 1)
		s.writers.Add(1)
		ch := st.ackCh
		go func() {
			defer s.writers.Done()
			ackWriter(ev.conn, ch, resume, s.done)
		}()
		c.met.Agent(h.agentID).SetLastAcked(resume)
	}
	c.met.Agent(h.agentID).SetStatus(metrics.StatusLive)
	ev.reply <- helloReply{gen: st.gen, credits: st.credits}
}
