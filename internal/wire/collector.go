package wire

import (
	"bufio"
	"fmt"
	"net"

	"anomalyx/internal/core"
)

// Collector is the receiving half of the protocol: it accepts one
// connection per agent, groups incoming interval snapshots by their
// absolute grid boundary, absorbs each group into its primary pipeline
// in agent-ID order (the same Absorb merge path in-process sharding
// uses), and closes detection there. Because the agents' histogram
// clones are built from the same seeds as the collector's, the merged
// state — and therefore every report — is byte-identical to a single
// process having run all agent partitions as local shards.
//
// Agents whose streams start late or end early are handled by the
// boundary keying: an agent contributes to exactly the grid intervals
// its records fell into, and intervals it never saw merge without it —
// just as its partition would have contributed nothing to them in a
// single-process run.
type Collector struct {
	agents  int
	digest  uint64
	primary *core.Pipeline // owns all detection state
	scratch *core.Pipeline // decode target, reused across snapshots
}

// NewCollector builds a collector for the given number of agents. cfg
// is the full pipeline configuration — detection parameters must match
// the agents' (enforced via the handshake digest), and the mining-side
// settings (miner, support, prefilter) are the ones that actually run.
func NewCollector(cfg core.Config, agents int) (*Collector, error) {
	if agents < 1 {
		return nil, fmt.Errorf("wire: collector needs at least 1 agent, got %d", agents)
	}
	primary, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	scratch, err := core.New(cfg)
	if err != nil {
		primary.Close()
		return nil, err
	}
	return &Collector{
		agents:  agents,
		digest:  ConfigDigest(cfg),
		primary: primary,
		scratch: scratch,
	}, nil
}

// Close releases the collector's pipelines. It must not be called while
// Serve is running.
func (c *Collector) Close() {
	c.primary.Close()
	c.scratch.Close()
}

// agentFrame is one decoded message from an agent's read loop.
type agentFrame struct {
	boundary int64
	snap     core.PipelineSnapshot
	bye      bool
	err      error
}

// Serve accepts exactly the configured number of agent connections on
// ln, then runs the merge loop until every agent has said Bye, calling
// emit for each closed interval's report in boundary order. It returns
// the first protocol, pipeline, or emit error. Serve runs the whole
// session; it does not accept replacement connections.
func (c *Collector) Serve(ln net.Listener, emit func(*core.Report) error) error {
	conns := make([]net.Conn, c.agents)
	defer func() {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
	}()
	// Handshake: every agent ID in [0, agents), each exactly once. The
	// conns slice is indexed by agent ID, fixing the merge order no
	// matter the connection order.
	for i := 0; i < c.agents; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: accepting agent connection: %w", err)
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			conn.Close()
			return err
		}
		if typ != frameHello {
			conn.Close()
			return fmt.Errorf("wire: expected hello frame, got type %d", typ)
		}
		h, err := decodeHello(payload)
		if err != nil {
			conn.Close()
			return err
		}
		if h.agentID < 0 || h.agentID >= c.agents {
			conn.Close()
			return fmt.Errorf("wire: agent ID %d out of range [0,%d)", h.agentID, c.agents)
		}
		if conns[h.agentID] != nil {
			conn.Close()
			return fmt.Errorf("wire: duplicate agent ID %d", h.agentID)
		}
		if h.digest != c.digest {
			conn.Close()
			return fmt.Errorf("wire: agent %d config digest %#x does not match collector %#x",
				h.agentID, h.digest, c.digest)
		}
		conns[h.agentID] = conn
	}

	chans := make([]chan agentFrame, c.agents)
	for id, conn := range conns {
		chans[id] = make(chan agentFrame, 4)
		go readAgent(conn, chans[id])
	}
	err := c.merge(chans, emit)
	// Unblock any reader still sending after an early merge exit: the
	// deferred conn closes error their reads out, and these drainers
	// consume whatever they had in flight so they can terminate.
	for _, ch := range chans {
		go func(ch <-chan agentFrame) {
			for range ch {
			}
		}(ch)
	}
	return err
}

// readAgent decodes one agent's frame stream into ch; it terminates on
// Bye or error and always closes ch.
func readAgent(conn net.Conn, ch chan<- agentFrame) {
	defer close(ch)
	br := bufio.NewReader(conn)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			ch <- agentFrame{err: err}
			return
		}
		switch typ {
		case frameSnapshot, frameOpenInterval:
			r := &reader{buf: payload}
			boundary := r.varint()
			if v := r.byte(); r.err() == nil && v != codecVersion {
				r.fail("unsupported codec version %d (want %d)", v, codecVersion)
			}
			var snap core.PipelineSnapshot
			if typ == frameOpenInterval {
				snap = decodeOpenIntervalBody(r)
			} else {
				snap = decodePipelineBody(r)
			}
			r.expectEOF()
			if r.err() == nil && boundary <= 0 {
				r.fail("non-positive snapshot boundary %d", boundary)
			}
			if r.err() != nil {
				ch <- agentFrame{err: r.err()}
				return
			}
			ch <- agentFrame{boundary: boundary, snap: snap}
		case frameBye:
			ch <- agentFrame{bye: true}
			return
		default:
			ch <- agentFrame{err: fmt.Errorf("wire: unexpected frame type %d", typ)}
			return
		}
	}
}

// merge is the collector's heart: it keeps one pending snapshot per
// live agent, repeatedly picks the smallest pending boundary, absorbs
// every agent's snapshot for that boundary in agent-ID order, and
// closes the interval on the primary pipeline.
func (c *Collector) merge(chans []chan agentFrame, emit func(*core.Report) error) error {
	heads := make([]*agentFrame, len(chans))
	done := make([]bool, len(chans))
	last := make([]int64, len(chans)) // per-agent boundary monotonicity check
	closed := 0
	for {
		// Fill every live agent's head so the minimum below is over the
		// complete frontier; a lagging agent blocks here (lockstep).
		live := false
		for id := range chans {
			for !done[id] && heads[id] == nil {
				f, ok := <-chans[id]
				if !ok || f.bye {
					done[id] = true
					break
				}
				if f.err != nil {
					return fmt.Errorf("wire: agent %d: %w", id, f.err)
				}
				if f.boundary <= last[id] {
					return fmt.Errorf("wire: agent %d boundary %d not after %d", id, f.boundary, last[id])
				}
				last[id] = f.boundary
				fr := f
				heads[id] = &fr
			}
			live = live || heads[id] != nil
		}
		if !live {
			break
		}
		var b int64
		for _, h := range heads {
			if h != nil && (b == 0 || h.boundary < b) {
				b = h.boundary
			}
		}
		// Absorb this boundary's snapshots in agent-ID order, then close
		// the interval on the primary — exactly the in-process shard
		// merge, with the wire in between.
		for id, h := range heads {
			if h == nil || h.boundary != b {
				continue
			}
			if err := c.scratch.RestoreSnapshot(h.snap); err != nil {
				return fmt.Errorf("wire: agent %d snapshot: %w", id, err)
			}
			if err := c.primary.Absorb(c.scratch); err != nil {
				return fmt.Errorf("wire: absorbing agent %d: %w", id, err)
			}
			heads[id] = nil
		}
		rep, err := c.primary.EndInterval()
		if err != nil {
			return err
		}
		if err := emit(rep); err != nil {
			return err
		}
		closed++
	}
	if closed == 0 {
		// Parity with a single process over an empty stream: its engine
		// still flushes one (empty) final interval on Close.
		rep, err := c.primary.EndInterval()
		if err != nil {
			return err
		}
		return emit(rep)
	}
	return nil
}
