// Package wire is the cross-process snapshot protocol: a versioned,
// length-prefixed binary codec for the pipeline's mergeable detector
// state, and the agent/collector roles that ship that state over TCP so
// shards can live on separate machines.
//
// The codec serializes the exported snapshot types of the state-owning
// packages — histogram.Snapshot, detector.Snapshot/BankSnapshot,
// core.PipelineSnapshot — into a canonical byte form: varint-packed
// counts, IEEE-754 bit-exact floats, and tracked feature values in
// ascending order. Canonical means deterministic: two equal snapshot
// values always encode to the same bytes, and decode(encode(s))
// re-encodes byte-identically (the FuzzWireRoundTrip invariant). A
// snapshot restored into a pipeline built from the same configuration
// reproduces the original's state exactly, so its subsequent reports are
// byte-identical to the original's — snapshots are lossless checkpoints,
// not approximations.
//
// On top of the codec sit the distributed roles. An Agent runs a local
// (optionally sharded) pipeline as an accumulator: at each measurement
// interval close it drains the open interval — merged clone histograms
// plus the buffered flows — and ships it as one open-interval frame
// tagged with the interval's absolute grid boundary. The open-interval
// form is the full snapshot minus the detection history an agent never
// accumulates (all-zero reference counts, empty KL series); the full
// Snapshot frame remains for true checkpoints, so one codec serves
// both at the right sizes. A Collector accepts N
// agent connections, groups frames by boundary, absorbs each group into
// its primary pipeline in agent-ID order via the same Absorb merge path
// the in-process shard package uses, and closes detection there. Because
// equal-seed histogram clones are exact mergeable sketches, the
// collector's reports are byte-identical to a single process having run
// all N partitions as local shards — the property the loopback
// end-to-end tests pin down for N ∈ {2, 4}.
//
// Framing is length-prefixed (uint32 big-endian length, one type byte,
// payload) with a Hello handshake carrying the protocol version and a
// digest of the detection configuration, so mismatched histogram spaces
// fail fast instead of merging garbage. The protocol is trusted-network
// plumbing: it authenticates nothing and assumes agents and collector
// were launched with the same configuration, as a deployment script
// would.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// codecVersion is the snapshot encoding version; bump it on any change
// to the byte layout. Decoders reject other versions. Version 2
// replaced the row-wise record section with the columnar encoding of
// records.go.
const codecVersion = 2

// appendUvarint, appendVarint, and appendFloat64 are the codec's three
// primitive writers. Floats are stored as their IEEE-754 bit pattern in
// little-endian order — bit-exact round trips, no formatting ambiguity.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// reader is a fail-soft cursor over an encoded snapshot: after the first
// malformed field every subsequent read returns zero values and err()
// reports the failure, so decoders can be written as straight-line code.
type reader struct {
	buf []byte
	off int
	e   error
}

func (r *reader) fail(format string, args ...any) {
	if r.e == nil {
		r.e = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) err() error { return r.e }

// rem returns the number of unread bytes.
func (r *reader) rem() int { return len(r.buf) - r.off }

func (r *reader) byte() byte {
	if r.e != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated input at byte %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.e != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("malformed uvarint at byte %d", r.off)
		return 0
	}
	// Reject non-minimal encodings (e.g. 0x80 0x00 for 0): the codec is
	// canonical — every value has exactly one byte form — so decode must
	// only accept what encode produces, or decode∘encode would not be
	// the identity on accepted inputs.
	if n != uvarintLen(v) {
		r.fail("non-minimal uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// uvarintLen returns the length of the minimal uvarint encoding of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (r *reader) varint() int64 {
	// Decode via uvarint so the minimality check applies: AppendVarint
	// is the zigzag transform over AppendUvarint.
	ux := r.uvarint()
	v := int64(ux >> 1)
	if ux&1 != 0 {
		v = ^v
	}
	return v
}

// bytes reads n raw bytes into a fresh slice.
func (r *reader) bytes(n int) []byte {
	if r.e != nil {
		return nil
	}
	if r.rem() < n {
		r.fail("truncated %d-byte column at byte %d", n, r.off)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

func (r *reader) float64() float64 {
	if r.e != nil {
		return 0
	}
	if r.rem() < 8 {
		r.fail("truncated float64 at byte %d", r.off)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return f
}

// length reads a uvarint element count and bounds it by the remaining
// input, assuming each element occupies at least minBytes bytes — a
// corrupt length field then fails cleanly instead of triggering a huge
// allocation.
func (r *reader) length(minBytes int) int {
	n := r.uvarint()
	if r.e != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.rem()/minBytes) {
		r.fail("length %d exceeds remaining input (%d bytes)", n, r.rem())
		return 0
	}
	return int(n)
}

// expectEOF fails unless the reader consumed its whole buffer — the
// codec never leaves trailing bytes, so any remainder is corruption.
func (r *reader) expectEOF() {
	if r.e == nil && r.off != len(r.buf) {
		r.fail("%d trailing bytes after snapshot", len(r.buf)-r.off)
	}
}
