package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/wire"
)

// TestOpenIntervalRoundTrip pins the lean codec's contract: the
// encoding of a drained interval is smaller than the full form, decodes
// deeply equal to the drained snapshot (canonical empty history
// reconstructed), re-encodes byte-identically, and restores into a
// pipeline that re-snapshots to the same full-codec bytes as one
// restored from the full encoding.
func TestOpenIntervalRoundTrip(t *testing.T) {
	p, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ObserveBatch(testTrace(1, 3000, 0)[0])
	snap := p.DrainSnapshot()

	lean, err := wire.EncodeOpenIntervalSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	full := wire.EncodePipelineSnapshot(snap)
	if len(lean) >= len(full) {
		t.Fatalf("lean frame (%d bytes) not smaller than full (%d bytes)", len(lean), len(full))
	}
	t.Logf("lean %d bytes vs full %d bytes (%.1f%% saved)",
		len(lean), len(full), 100*float64(len(full)-len(lean))/float64(len(full)))

	dec, err := wire.DecodeOpenIntervalSnapshot(lean)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, snap) {
		t.Fatal("decoded open-interval snapshot differs from the drained original")
	}
	re, err := wire.EncodeOpenIntervalSnapshot(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, lean) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}

	restored, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(dec); err != nil {
		t.Fatal(err)
	}
	if got := wire.EncodePipelineSnapshot(restored.Snapshot()); !bytes.Equal(got, full) {
		t.Fatal("pipeline restored from the lean form re-snapshots differently from the full form")
	}
}

// TestOpenIntervalRejectsHistory: the lean form refuses snapshots that
// carry detection history (it would silently discard them), and refuses
// corrupt payloads.
func TestOpenIntervalRejectsHistory(t *testing.T) {
	p, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ObserveBatch(testTrace(1, 200, 0)[0])
	if _, err := p.EndInterval(); err != nil {
		t.Fatal(err)
	}
	p.ObserveBatch(testTrace(1, 200, 0)[0])
	if _, err := wire.EncodeOpenIntervalSnapshot(p.Snapshot()); err == nil {
		t.Fatal("open-interval encoding accepted a snapshot with detection history")
	}

	snap := p.DrainSnapshot() // drain keeps history: still refused
	if _, err := wire.EncodeOpenIntervalSnapshot(snap); err == nil {
		t.Fatal("open-interval encoding accepted a drained snapshot with history")
	}

	if _, err := wire.DecodeOpenIntervalSnapshot(nil); err == nil {
		t.Fatal("decoder accepted empty input")
	}
	fresh, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	lean, err := wire.EncodeOpenIntervalSnapshot(fresh.DrainSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeOpenIntervalSnapshot(lean[:len(lean)-1]); err == nil {
		t.Fatal("decoder accepted truncated input")
	}
	if _, err := wire.DecodeOpenIntervalSnapshot(append(append([]byte(nil), lean...), 7)); err == nil {
		t.Fatal("decoder accepted trailing bytes")
	}
}
