package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
)

// FrameKind selects the encoding Ship uses for a drained interval.
type FrameKind byte

// The two interval encodings: the lean open-interval form agents ship
// every boundary (clone histograms + flow buffer, no detection
// history), and the full snapshot form for checkpoint-style transfers
// where history matters.
const (
	// KindOpenInterval is the per-interval lean encoding; Ship refuses
	// snapshots that carry detection history (an agent never does).
	KindOpenInterval FrameKind = iota
	// KindSnapshot is the full pipeline snapshot, history included.
	KindSnapshot
)

// AgentOptions parameterizes the survivable agent session: the redial
// policy and the replay-buffer bound. The zero value is a working
// default (8 redials with jittered backoff, 64 buffered frames).
type AgentOptions struct {
	// Retry is the redial policy after a lost connection; see
	// RetryConfig for zero-value defaults.
	Retry RetryConfig
	// ReplayBuffer bounds how many shipped-but-unacked interval frames
	// the agent retains for replay after a reconnect. When the buffer
	// is full, Ship blocks until the collector acks (backpressure
	// through the engine) — frames are never silently dropped. 0 takes
	// the default (64).
	ReplayBuffer int
	// Dialer opens a new collector connection for the initial connect
	// and every redial. DialAgent fills it with a TCP dial of its addr;
	// leave it nil with NewAgent and the agent cannot redial (a lost
	// connection is then a permanent error, the pre-v3 behavior).
	Dialer func() (net.Conn, error)
}

// withDefaults resolves the zero values.
func (o AgentOptions) withDefaults() AgentOptions {
	o.Retry = o.Retry.withDefaults()
	if o.ReplayBuffer == 0 {
		o.ReplayBuffer = 64
	}
	if o.ReplayBuffer < 1 {
		o.ReplayBuffer = 1
	}
	return o
}

// replayEntry is one shipped interval frame retained until acked: the
// frame type, its grid boundary, and the encoded payload ready to be
// rewritten verbatim on a replacement connection.
type replayEntry struct {
	typ      byte
	boundary int64
	payload  []byte
}

// Agent is the sending half of the protocol: it owns one logical stream
// to a collector that survives connection loss. Shipped interval frames
// stay in a bounded replay buffer until the collector acks their
// boundary; on a broken connection the agent redials with jittered
// exponential backoff, re-Hellos with a resume offset, and resends the
// unacked frames — the collector deduplicates, so the report stream is
// unaffected by drops and reconnects (determinism: replayed boundaries
// absorb exactly once, in the same agent-ID order as an undisturbed
// run). Methods are serialized by an internal mutex; frames appear on
// each connection in ship order, the per-agent boundary monotonicity
// the collector checks.
type Agent struct {
	id     int
	digest uint64
	opts   AgentOptions
	rng    *rand.Rand // seeded jitter source; never influences report bytes

	mu   sync.Mutex
	cond *sync.Cond // signals ack progress and connection-state changes
	conn net.Conn   // nil while disconnected
	w    *bufio.Writer
	gen  int // connection generation; stale readLoops see a mismatch and exit

	replay     []replayEntry // unacked frames, boundary ascending
	acked      int64         // highest collector-acked boundary
	reconnects int
	permErr    error // the stream is dead after it
	closed     bool
	byeOK      bool // the collector confirmed our Bye

	buf []byte // encode scratch, reused across snapshots
}

// DialAgent connects to a collector at addr, performs the v3 handshake
// for the given agent ID, and returns the ready agent. cfg must be the
// pipeline configuration the collector was started with (its detection
// digest is what the handshake carries; a mismatch surfaces as a
// *ConfigMismatchError). The initial connect uses the same retry policy
// as redials, so an agent may come up before its collector.
func DialAgent(addr string, agentID int, cfg core.Config, opts AgentOptions) (*Agent, error) {
	if agentID < 0 {
		return nil, fmt.Errorf("wire: negative agent ID %d", agentID)
	}
	opts = opts.withDefaults()
	if opts.Dialer == nil {
		opts.Dialer = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	a := newAgent(agentID, cfg, opts)
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.reconnectLocked(max(1, a.redialAttempts())); err != nil {
		return nil, err
	}
	return a, nil
}

// Dial connects to a collector with default options.
//
// Deprecated: use DialAgent, which exposes the retry and replay-buffer
// options; Dial is DialAgent with the zero AgentOptions.
func Dial(addr string, agentID int, cfg core.Config) (*Agent, error) {
	return DialAgent(addr, agentID, cfg, AgentOptions{})
}

// NewAgent wraps an established connection, performing the v3
// handshake on it. An agent built this way has no dialer: it still
// buffers frames until acked, but a lost connection is a permanent
// error (set AgentOptions.Dialer via DialAgent for redials).
func NewAgent(conn net.Conn, agentID int, cfg core.Config) (*Agent, error) {
	if agentID < 0 {
		return nil, fmt.Errorf("wire: negative agent ID %d", agentID)
	}
	a := newAgent(agentID, cfg, AgentOptions{}.withDefaults())
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.handshakeLocked(conn); err != nil {
		return nil, err
	}
	return a, nil
}

// newAgent builds the shared state; the caller connects.
func newAgent(agentID int, cfg core.Config, opts AgentOptions) *Agent {
	a := &Agent{
		id:     agentID,
		digest: ConfigDigest(cfg),
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Retry.Seed)),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// redialAttempts resolves the configured redial budget: negative
// MaxAttempts disables reconnection.
func (a *Agent) redialAttempts() int {
	if a.opts.Retry.MaxAttempts < 0 {
		return 0
	}
	return a.opts.Retry.MaxAttempts
}

// handshakeLocked performs the v3 handshake on conn — Hello carrying
// the resume offset (the highest acked boundary), then the collector's
// HelloOK or Error reply — trims the replay buffer to the collector's
// resume line, resends the remaining unacked frames in boundary order,
// and installs conn as the live connection with a fresh read loop.
// a.mu must be held. On error the caller owns closing conn.
func (a *Agent) handshakeLocked(conn net.Conn) error {
	w := bufio.NewWriter(conn)
	if err := writeFrame(w, frameHello, appendHello(nil, protoVersion, a.id, a.acked, a.digest)); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("wire: sending hello: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("wire: reading hello reply: %w", err)
	}
	switch typ {
	case frameHelloOK:
	case frameError:
		return decodeError(payload)
	default:
		return fmt.Errorf("wire: expected hello reply, got frame type %d", typ)
	}
	resume, err := decodeBoundary(payload)
	if err != nil {
		return err
	}
	a.ackLocked(resume) // frames at or below the collector's line are settled
	for i := range a.replay {
		if err := writeFrame(w, a.replay[i].typ, a.replay[i].payload); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("wire: replaying unacked frames: %w", err)
	}
	a.conn, a.w = conn, w
	a.gen++
	go a.readLoop(conn, a.gen)
	return nil
}

// reconnectLocked redials up to attempts times with jittered backoff,
// handshaking each new connection; it settles permErr when the budget
// is exhausted or the collector rejects the stream. a.mu must be held.
func (a *Agent) reconnectLocked(attempts int) error {
	if a.opts.Dialer == nil {
		a.permErr = fmt.Errorf("wire: agent %d: connection lost and no dialer configured", a.id)
		a.cond.Broadcast()
		return a.permErr
	}
	var lastErr error = fmt.Errorf("wire: agent %d: reconnection disabled", a.id)
	for attempt := 0; attempt < attempts; attempt++ {
		if a.closed {
			return fmt.Errorf("wire: agent %d closed", a.id)
		}
		delay := a.opts.Retry.backoff(attempt, a.rng)
		a.mu.Unlock()
		if delay > 0 {
			a.opts.Retry.Sleep(delay)
		}
		conn, err := a.opts.Dialer()
		a.mu.Lock()
		if a.closed {
			if err == nil {
				conn.Close()
			}
			return fmt.Errorf("wire: agent %d closed", a.id)
		}
		if err != nil {
			lastErr = err
			continue
		}
		if err := a.handshakeLocked(conn); err != nil {
			conn.Close()
			var mismatch *ConfigMismatchError
			if errors.As(err, &mismatch) || errors.Is(err, errSessionEnded) {
				a.permErr = err
				a.cond.Broadcast()
				return err
			}
			lastErr = err
			continue
		}
		a.reconnects++
		return nil
	}
	a.permErr = fmt.Errorf("wire: agent %d: collector unreachable after %d attempts: %w",
		a.id, attempts, lastErr)
	a.cond.Broadcast()
	return a.permErr
}

// ackLocked advances the cumulative ack line to boundary and drops the
// settled prefix of the replay buffer. a.mu must be held.
func (a *Agent) ackLocked(boundary int64) {
	if boundary <= a.acked {
		return
	}
	a.acked = boundary
	n := 0
	for n < len(a.replay) && a.replay[n].boundary <= boundary {
		n++
	}
	if n > 0 {
		a.replay = append(a.replay[:0], a.replay[n:]...)
	}
	a.cond.Broadcast()
}

// readLoop consumes the collector→agent side of one connection: Ack
// frames advance the ack line, an Error frame kills the stream, and a
// read failure marks the connection lost (the next Ship redials).
func (a *Agent) readLoop(conn net.Conn, gen int) {
	br := bufio.NewReader(conn)
	for {
		typ, payload, err := readFrame(br)
		a.mu.Lock()
		if gen != a.gen || a.closed {
			a.mu.Unlock()
			return // a newer connection took over, or Close ran
		}
		if err != nil {
			a.conn, a.w = nil, nil
			a.cond.Broadcast()
			a.mu.Unlock()
			conn.Close()
			return
		}
		switch typ {
		case frameAck:
			if b, derr := decodeBoundary(payload); derr == nil {
				a.ackLocked(b)
			}
		case frameByeOK:
			a.byeOK = true
			a.cond.Broadcast()
		case frameError:
			a.permErr = decodeError(payload)
			a.conn, a.w = nil, nil
			a.cond.Broadcast()
			a.mu.Unlock()
			conn.Close()
			return
		default:
			// Unknown collector frames are skipped for forward
			// compatibility; the length prefix delimits them.
		}
		a.mu.Unlock()
	}
}

// Ship sends one drained interval tagged with its absolute grid
// boundary (Unix ms), in the encoding kind selects. The frame enters
// the replay buffer first and leaves it only when the collector acks
// the boundary, so a connection lost at any point is survivable: Ship
// redials and replays per the retry policy, blocking (backpressure)
// rather than dropping when the buffer is full. Boundaries must be
// strictly increasing per agent. A permanent failure — retry budget
// exhausted, config mismatch, no dialer — is returned and sticks.
func (a *Agent) Ship(boundary int64, s core.PipelineSnapshot, kind FrameKind) error {
	switch kind {
	case KindOpenInterval:
		if err := openIntervalOnly(s); err != nil {
			return err
		}
		return a.shipFrame(boundary, frameOpenInterval, func(b []byte) []byte {
			return appendOpenInterval(b, openIntervalOf(s))
		})
	case KindSnapshot:
		return a.shipFrame(boundary, frameSnapshot, func(b []byte) []byte {
			return AppendPipelineSnapshot(b, s)
		})
	default:
		return fmt.Errorf("wire: unknown frame kind %d", kind)
	}
}

// ShipOpenInterval ships a lean drained interval (see
// Pipeline.DrainOpenInterval) with Ship's delivery semantics. This is
// the preferred agent path: the lean drain never copies — and this
// frame never carries — the detection history an agent keeps empty.
func (a *Agent) ShipOpenInterval(boundary int64, oi core.OpenInterval) error {
	return a.shipFrame(boundary, frameOpenInterval, func(b []byte) []byte {
		return appendOpenInterval(b, oi)
	})
}

// shipFrame is the shared delivery path: encode under the lock, enter
// the replay buffer, write or redial.
func (a *Agent) shipFrame(boundary int64, typ byte, encodeBody func([]byte) []byte) error {
	_, err := a.ship(boundary, typ, encodeBody, false)
	return err
}

// ship implements shipFrame, with one extra mode for relays: when
// skipStale is set, a boundary at or below the collector's ack line (or
// the replay-buffer tail) returns (false, nil) instead of an error — a
// resumed relay legitimately re-closes boundaries its parent already
// holds, and must settle its children for them without resending.
func (a *Agent) ship(boundary int64, typ byte, encodeBody func([]byte) []byte, skipStale bool) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false, fmt.Errorf("wire: agent %d closed", a.id)
	}
	if a.permErr != nil {
		return false, a.permErr
	}
	if boundary <= a.acked {
		if skipStale {
			return false, nil
		}
		return false, fmt.Errorf("wire: agent %d boundary %d not after acked %d", a.id, boundary, a.acked)
	}
	if n := len(a.replay); n > 0 && boundary <= a.replay[n-1].boundary {
		if skipStale {
			return false, nil
		}
		return false, fmt.Errorf("wire: agent %d boundary %d not after %d", a.id, boundary, a.replay[n-1].boundary)
	}

	// Wait for replay space; acks free it, a dead connection has to be
	// redialed first for them to arrive.
	for len(a.replay) >= a.opts.ReplayBuffer {
		if a.permErr != nil {
			return false, a.permErr
		}
		if a.closed {
			return false, fmt.Errorf("wire: agent %d closed", a.id)
		}
		if a.conn == nil {
			if err := a.reconnectLocked(a.redialAttempts()); err != nil {
				return false, err
			}
			continue
		}
		a.cond.Wait()
	}
	if skipStale && boundary <= a.acked {
		// The ack line moved past this boundary while waiting for replay
		// space (a reconnect handshake can advance it): already settled.
		return false, nil
	}

	a.buf = appendVarint(a.buf[:0], boundary)
	a.buf = append(a.buf, codecVersion)
	a.buf = encodeBody(a.buf)
	entry := replayEntry{typ: typ, boundary: boundary, payload: append([]byte(nil), a.buf...)}
	a.replay = append(a.replay, entry)

	if a.conn == nil {
		// The reconnect handshake replays the whole buffer, the new
		// entry included.
		return true, a.reconnectLocked(a.redialAttempts())
	}
	if err := writeFrame(a.w, entry.typ, entry.payload); err == nil {
		if err = a.w.Flush(); err == nil {
			return true, nil
		}
	}
	// The write broke the connection; the entry is safe in the replay
	// buffer, so redialing both repairs the stream and resends it.
	a.dropConnLocked()
	return true, a.reconnectLocked(a.redialAttempts())
}

// shipRelayInterval ships a relay's merged interval upstream as a
// frameRelayInterval, with Ship's delivery semantics plus stale-skip:
// the reported bool is false when the boundary was already settled
// upstream (acked or still buffered from before a resume) and nothing
// was sent. spanLo/spanLen describe the relay's global leaf span and
// missing lists the in-span leaf IDs this boundary closed without.
func (a *Agent) shipRelayInterval(boundary int64, spanLo, spanLen int, missing []int, oi core.OpenInterval) (bool, error) {
	return a.ship(boundary, frameRelayInterval, func(b []byte) []byte {
		b = appendRelayHeader(b, spanLo, spanLen, missing)
		return appendOpenInterval(b, oi)
	}, true)
}

// connect performs the initial dial-and-handshake for an agent built
// with newAgent and an explicit dialer (the relay's upstream face);
// DialAgent does the equivalent itself.
func (a *Agent) connect() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconnectLocked(max(1, a.redialAttempts()))
}

// waitAckedAbove blocks until the collector's cumulative ack line
// exceeds prev, returning the new line. ok=false means no further
// progress will come: the agent was closed or its stream failed
// permanently with the line still at or below prev.
func (a *Agent) waitAckedAbove(prev int64) (line int64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.acked <= prev && !a.closed && a.permErr == nil {
		a.cond.Wait()
	}
	return a.acked, a.acked > prev
}

// unackedFrames returns how many shipped frames await an upstream ack.
func (a *Agent) unackedFrames() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.replay)
}

// replayState copies the unacked replay entries, boundary ascending —
// what a relay checkpoint must persist so a restart can re-offer them.
// Payload slices are shared; entries are immutable once buffered.
func (a *Agent) replayState() []replayEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]replayEntry(nil), a.replay...)
}

// preloadReplay seeds the replay buffer from a relay checkpoint before
// the first dial. The handshake's HelloOK line then trims whatever the
// collector already holds and resends the rest.
func (a *Agent) preloadReplay(entries []replayEntry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.replay = append(a.replay[:0], entries...)
}

// abort ends the agent without the Bye handshake: the stream is not
// cleanly finished — a relay session failed mid-flight — and the
// collector must keep treating this agent as resumable (statusDown, not
// statusBye). Unacked frames are deliberately left undelivered; a
// checkpointed restart re-offers them.
func (a *Agent) abort() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	a.gen++
	if a.conn != nil {
		a.conn.Close()
		a.conn, a.w = nil, nil
	}
	a.cond.Broadcast()
}

// dropConnLocked closes and forgets the current connection. a.mu must
// be held.
func (a *Agent) dropConnLocked() {
	if a.conn != nil {
		a.conn.Close()
		a.conn, a.w = nil, nil
		a.gen++ // retire the read loop
	}
}

// Acked returns the highest boundary the collector has acknowledged —
// every frame at or below it is absorbed (and durable when the
// collector checkpoints).
func (a *Agent) Acked() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acked
}

// Close ends the stream: it sends the Bye frame, waits for the
// collector's ByeOK confirmation, and closes the connection. The final
// partial interval must already have been shipped (the engine's Close
// flushes it through the sink before the sink's Close runs). Delivery
// is at-least-once end to end: a connection that dies before the
// confirmation — unacked frames included — is redialed per the retry
// policy and the Bye resent, so a collector holding the session open
// for this agent always learns it ended.
func (a *Agent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	var err error
	if a.permErr == nil {
		err = a.sendByeLocked()
	}
	a.closed = true
	a.gen++
	if a.conn != nil {
		if cerr := a.conn.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("wire: closing agent connection: %w", cerr)
		}
		a.conn, a.w = nil, nil
	}
	a.cond.Broadcast()
	return err
}

// sendByeLocked delivers the end-of-stream marker reliably: write Bye,
// wait until the collector confirms it with ByeOK, and if the
// connection dies first, redial (replaying any unacked frames) and
// resend. Without the confirmation a Bye swallowed by a dying
// connection would leave the collector waiting forever for an agent
// that already exited. a.mu must be held.
func (a *Agent) sendByeLocked() error {
	for {
		if a.conn == nil {
			if a.opts.Dialer == nil && len(a.replay) == 0 {
				// Nothing undelivered and no way to redial: end without
				// the marker (the pre-v3 contract for wrapped conns).
				return nil
			}
			if err := a.reconnectLocked(a.redialAttempts()); err != nil {
				if errors.Is(err, errSessionEnded) {
					return nil // the Bye landed; only its confirmation was lost
				}
				return err
			}
		}
		if err := writeFrame(a.w, frameBye, nil); err == nil {
			if err = a.w.Flush(); err == nil {
				for !a.byeOK && a.conn != nil && a.permErr == nil {
					a.cond.Wait()
				}
				if a.permErr != nil {
					return a.permErr
				}
				if a.byeOK {
					return nil
				}
				continue // connection died before ByeOK; resend
			}
		}
		a.dropConnLocked()
	}
}

// AgentSink adapts an agent and a local sharded pipeline into an
// engine.Sink: ObserveBatch accumulates into the pipeline, and each
// interval close drains the open interval (merging local shards) and
// ships it to the collector instead of running detection. The engine
// invokes the BoundarySink form, so every shipped snapshot carries the
// interval's absolute grid boundary. The stub reports it emits locally
// carry only the interval ordinal and flow count — detection happens at
// the collector.
type AgentSink struct {
	agent    *Agent
	sp       *shard.ShardedPipeline
	interval int
}

// NewAgentSink builds the sink. The sink takes ownership of sp (Close
// closes it) but not of agent — callers close the agent after the
// engine, so the Bye frame follows the final flushed snapshot.
func NewAgentSink(agent *Agent, sp *shard.ShardedPipeline) *AgentSink {
	return &AgentSink{agent: agent, sp: sp}
}

// ObserveBatch feeds a batch into the local pipeline.
func (s *AgentSink) ObserveBatch(recs []flow.Record) { s.sp.ObserveBatch(recs) }

// EndIntervalAt drains the open interval — the lean drain, which never
// copies the detection history an agent keeps empty — and ships it
// tagged with the grid boundary. A boundary of 0 (stream held no
// records at all) ships nothing — there is no grid slot to merge it
// into, and the drained interval is empty by construction.
func (s *AgentSink) EndIntervalAt(boundary int64) (*core.Report, error) {
	oi, err := s.sp.DrainOpenInterval()
	if err != nil {
		return nil, err
	}
	rep := &core.Report{Interval: s.interval, TotalFlows: oi.Buffer.Len()}
	s.interval++
	if boundary == 0 {
		return rep, nil
	}
	if err := s.agent.ShipOpenInterval(boundary, oi); err != nil {
		return nil, err
	}
	return rep, nil
}

// EndInterval exists to satisfy engine.Sink; the engine always uses
// EndIntervalAt (the sink implements BoundarySink) and a shipped
// snapshot is meaningless without its boundary.
func (s *AgentSink) EndInterval() (*core.Report, error) {
	return nil, fmt.Errorf("wire: agent sink requires a boundary; drive it through the engine")
}

// Close releases the local pipeline's worker pools. The agent
// connection stays open — close it after the engine, so Bye trails the
// final snapshot.
func (s *AgentSink) Close() { s.sp.Close() }
