package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
)

// Agent is the sending half of the protocol: it owns one connection to
// a collector and ships drained interval snapshots over it. Methods are
// serialized by an internal mutex; frames therefore appear on the wire
// in ship order, which is the per-agent boundary monotonicity the
// collector relies on.
type Agent struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
	buf  []byte // encode scratch, reused across snapshots
	err  error  // first write error; the stream is dead after it
}

// Dial connects to a collector, performs the Hello handshake for the
// given agent ID, and returns the ready agent. cfg must be the same
// pipeline configuration the collector was started with (its detection
// digest is what the handshake carries).
func Dial(addr string, agentID int, cfg core.Config) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing collector: %w", err)
	}
	a, err := NewAgent(conn, agentID, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgent wraps an established connection, sending the Hello frame.
func NewAgent(conn net.Conn, agentID int, cfg core.Config) (*Agent, error) {
	if agentID < 0 {
		return nil, fmt.Errorf("wire: negative agent ID %d", agentID)
	}
	a := &Agent{conn: conn, w: bufio.NewWriter(conn)}
	if err := writeFrame(a.w, frameHello, appendHello(nil, agentID, ConfigDigest(cfg))); err != nil {
		return nil, err
	}
	if err := a.w.Flush(); err != nil {
		return nil, fmt.Errorf("wire: sending hello: %w", err)
	}
	return a, nil
}

// ShipSnapshot sends one drained interval as a full snapshot frame: the
// absolute grid boundary (Unix ms) and the complete pipeline snapshot,
// detection history included. Each snapshot is flushed whole, so the
// collector sees complete intervals or nothing. For the per-interval
// agent cadence prefer ShipOpenInterval — an agent's history is always
// empty, and the lean frame skips its zero bytes.
func (a *Agent) ShipSnapshot(boundary int64, s core.PipelineSnapshot) error {
	return a.ship(frameSnapshot, boundary, s)
}

// ShipOpenInterval sends one drained interval in the lean
// open-interval-only encoding (clone histograms and flow buffer, no
// detection history). It errors — before touching the stream — if the
// snapshot carries history, which a drained agent pipeline never does;
// use ShipSnapshot for full checkpoints.
func (a *Agent) ShipOpenInterval(boundary int64, s core.PipelineSnapshot) error {
	if err := openIntervalOnly(s); err != nil {
		return err
	}
	return a.ship(frameOpenInterval, boundary, s)
}

// ship frames, encodes, and flushes one drained interval.
func (a *Agent) ship(typ byte, boundary int64, s core.PipelineSnapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	a.buf = appendVarint(a.buf[:0], boundary)
	a.buf = append(a.buf, codecVersion)
	if typ == frameOpenInterval {
		a.buf = appendOpenInterval(a.buf, s)
	} else {
		a.buf = AppendPipelineSnapshot(a.buf, s)
	}
	if err := writeFrame(a.w, typ, a.buf); err != nil {
		a.err = err
		return err
	}
	if err := a.w.Flush(); err != nil {
		a.err = fmt.Errorf("wire: flushing snapshot: %w", err)
		return a.err
	}
	return nil
}

// Close sends the Bye frame and closes the connection. The final
// partial interval must already have been shipped (the engine's Close
// flushes it through the sink before the sink's Close runs).
func (a *Agent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	if a.err == nil {
		err = writeFrame(a.w, frameBye, nil)
		if err == nil {
			err = a.w.Flush()
		}
	}
	if cerr := a.conn.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wire: closing agent connection: %w", cerr)
	}
	return err
}

// AgentSink adapts an agent and a local sharded pipeline into an
// engine.Sink: ObserveBatch accumulates into the pipeline, and each
// interval close drains the open interval (merging local shards) and
// ships it to the collector instead of running detection. The engine
// invokes the BoundarySink form, so every shipped snapshot carries the
// interval's absolute grid boundary. The stub reports it emits locally
// carry only the interval ordinal and flow count — detection happens at
// the collector.
type AgentSink struct {
	agent    *Agent
	sp       *shard.ShardedPipeline
	interval int
}

// NewAgentSink builds the sink. The sink takes ownership of sp (Close
// closes it) but not of agent — callers close the agent after the
// engine, so the Bye frame follows the final flushed snapshot.
func NewAgentSink(agent *Agent, sp *shard.ShardedPipeline) *AgentSink {
	return &AgentSink{agent: agent, sp: sp}
}

// ObserveBatch feeds a batch into the local pipeline.
func (s *AgentSink) ObserveBatch(recs []flow.Record) { s.sp.ObserveBatch(recs) }

// EndIntervalAt drains the open interval and ships it tagged with the
// grid boundary. A boundary of 0 (stream held no records at all) ships
// nothing — there is no grid slot to merge it into, and the drained
// snapshot is empty by construction.
func (s *AgentSink) EndIntervalAt(boundary int64) (*core.Report, error) {
	snap, err := s.sp.DrainSnapshot()
	if err != nil {
		return nil, err
	}
	rep := &core.Report{Interval: s.interval, TotalFlows: len(snap.Buffer)}
	s.interval++
	if boundary == 0 {
		return rep, nil
	}
	// The drained snapshot of a pipeline that never closes detection
	// carries no history, so the lean open-interval frame is lossless
	// here and skips the all-zero reference/KL bytes a full frame would
	// spend on every interval.
	if err := s.agent.ShipOpenInterval(boundary, snap); err != nil {
		return nil, err
	}
	return rep, nil
}

// EndInterval exists to satisfy engine.Sink; the engine always uses
// EndIntervalAt (the sink implements BoundarySink) and a shipped
// snapshot is meaningless without its boundary.
func (s *AgentSink) EndInterval() (*core.Report, error) {
	return nil, fmt.Errorf("wire: agent sink requires a boundary; drive it through the engine")
}

// Close releases the local pipeline's worker pools. The agent
// connection stays open — close it after the engine, so Bye trails the
// final snapshot.
func (s *AgentSink) Close() { s.sp.Close() }
