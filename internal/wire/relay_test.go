package wire_test

import (
	"context"
	"net"
	"sync"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// shardParts hash-partitions the trace into n per-leaf partitions using
// the same ShardOf placement an in-process n-shard run uses, so
// distributed runs are comparable to the local reference shard by
// shard.
func shardParts(t *testing.T, cfg core.Config, trace [][]flow.Record, n int) [][][]flow.Record {
	t.Helper()
	ref, err := shard.New(shard.Config{Shards: n, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	parts := make([][][]flow.Record, n)
	for id := range parts {
		parts[id] = make([][]flow.Record, len(trace))
	}
	for i, recs := range trace {
		for j := range recs {
			id := ref.ShardOf(&recs[j])
			parts[id][i] = append(parts[id][i], recs[j])
		}
	}
	return parts
}

// runRelayTree runs a two-level tree on loopback TCP — a root collector
// over `relays` relay nodes, each fanning in `children` leaf agents —
// and returns the root's rendered reports. parts is indexed by global
// leaf ID (relay·children + child); leading empty intervals of a
// partition are dropped so a late leaf seeds its grid at its first real
// record, as a live deployment would.
func runRelayTree(t *testing.T, cfg core.Config, parts [][][]flow.Record, relays, children int) []string {
	t.Helper()
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: relays})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	relayLns := make([]net.Listener, relays)
	relayObjs := make([]*wire.Relay, relays)
	relayErr := make(chan error, relays)
	for r := 0; r < relays; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rel, err := wire.NewRelay(cfg, wire.RelayConfig{
			Children: children,
			AgentID:  r,
			Parent:   rootLn.Addr().String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		relayLns[r], relayObjs[r] = ln, rel
		go func(rel *wire.Relay, ln net.Listener) {
			relayErr <- rel.Serve(context.Background(), ln)
		}(rel, ln)
	}

	var wg sync.WaitGroup
	for leaf := 0; leaf < relays*children; leaf++ {
		r, c := leaf/children, leaf%children
		part := parts[leaf]
		for len(part) > 0 && len(part[0]) == 0 {
			part = part[1:]
		}
		localShards := 1
		if leaf == 0 {
			localShards = 2 // cover the locally-sharded drain through the relay path
		}
		wg.Add(1)
		go func(addr string, c, localShards int, part [][]flow.Record) {
			defer wg.Done()
			runAgent(t, addr, c, localShards, cfg, part)
		}(relayLns[r].Addr().String(), c, localShards, part)
	}
	wg.Wait()
	for r := 0; r < relays; r++ {
		if err := <-relayErr; err != nil {
			t.Fatalf("relay: %v", err)
		}
	}
	for _, rel := range relayObjs {
		rel.Close()
	}
	if err := <-rootErr; err != nil {
		t.Fatalf("root collector: %v", err)
	}
	return got
}

// TestRelayTreeByteIdentical is the federation tentpole check: the same
// 4 leaf partitions run three ways — a single process with 4 local
// shards, a flat 4-agent collector, and a 2×2 relay tree — and all
// three report streams must be byte-identical. The tree adds two merge
// tiers (leaf → relay → root) to the frame path, so equality here pins
// the associativity of the open-interval absorb end to end.
func TestRelayTreeByteIdentical(t *testing.T) {
	trace := testTrace(10, 3000, 8)
	cfg := testPipelineConfig()

	// Reference: single-process 4-shard run.
	ref, err := shard.New(shard.Config{Shards: 4, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	alarmed := false
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
		alarmed = alarmed || rep.Alarm
	}
	ref.Close()
	if !alarmed {
		t.Fatal("reference run never alarmed; the test would not cover extraction")
	}
	parts := shardParts(t, cfg, trace, 4)

	// Flat: one collector, 4 direct agents.
	flatLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 4})
	if err != nil {
		t.Fatal(err)
	}
	var flatGot []string
	flatErr := make(chan error, 1)
	go func() {
		flatErr <- flat.Serve(context.Background(), flatLn, func(rep *core.Report) error {
			flatGot = append(flatGot, renderReport(rep))
			return nil
		})
	}()
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runAgent(t, flatLn.Addr().String(), id, 1, cfg, parts[id])
		}(id)
	}
	wg.Wait()
	if err := <-flatErr; err != nil {
		t.Fatalf("flat collector: %v", err)
	}
	flat.Close()

	// Tree: 2 relays × 2 leaves each.
	treeGot := runRelayTree(t, cfg, parts, 2, 2)

	if len(flatGot) != len(want) || len(treeGot) != len(want) {
		t.Fatalf("closed intervals differ: single=%d flat=%d tree=%d", len(want), len(flatGot), len(treeGot))
	}
	for i := range want {
		if flatGot[i] != want[i] {
			t.Fatalf("interval %d: flat run differs from single-process run:\n got %s\nwant %s", i, flatGot[i], want[i])
		}
		if treeGot[i] != want[i] {
			t.Fatalf("interval %d: relay tree differs from single-process run:\n got %s\nwant %s", i, treeGot[i], want[i])
		}
	}
}

// TestRelayTreeLateAndEarlyLeaves pushes the grid-alignment cases of
// TestDistributedLateAndEarlyAgents through a relay tier: one leaf's
// partition is withheld from the first two intervals (it seeds its grid
// late) and another leaf's from the last two (it Byes early), each
// behind a different relay. The root must still line every interval up
// by absolute boundary and match a single pipeline over the union —
// with no Partial flags, since a late or early leaf is never
// disconnected, just silent.
func TestRelayTreeLateAndEarlyLeaves(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()

	parts := shardParts(t, cfg, trace, 4)
	// Leaf 0 (relay 0, child 0) misses intervals 0-1; leaf 3 (relay 1,
	// child 1) misses the last two.
	for i := range trace {
		if i < 2 {
			parts[0][i] = nil
		}
		if i >= len(trace)-2 {
			parts[3][i] = nil
		}
	}

	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := make([]string, 0, len(trace))
	for i := range trace {
		for leaf := range parts {
			single.ObserveBatch(parts[leaf][i])
		}
		rep, err := single.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, renderReport(rep))
	}

	got := runRelayTree(t, cfg, parts, 2, 2)
	if len(got) != len(want) {
		t.Fatalf("root closed %d intervals, single-process run closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: relay tree differs from single-process run:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// rawFrameRelayInterval mirrors the wire package's unexported relay
// frame type, pinned as a wire-format fact like the rawFrame* set in
// wire_test.go.
const rawFrameRelayInterval = 9

// TestRelayRejectsMalformedChildFrame holds the fuzz target's promise
// at the session level: a child connection that delivers a malformed
// relay frame is dropped without wedging the relay or propagating
// anything upstream, and a well-formed agent can then take over the
// same child slot and complete the stream.
func TestRelayRejectsMalformedChildFrame(t *testing.T) {
	trace := testTrace(4, 1500, 2)
	cfg := testPipelineConfig()

	// Reference over the whole trace (the single leaf carries it all).
	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := make([]string, 0, len(trace))
	for _, recs := range trace {
		single.ObserveBatch(recs)
		rep, err := single.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, renderReport(rep))
	}

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children: 1,
		AgentID:  0,
		Parent:   rootLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	relayErr := make(chan error, 1)
	go func() { relayErr <- rel.Serve(context.Background(), relayLn) }()

	// A hand-rolled connection handshakes correctly, then sends a relay
	// frame whose payload is garbage.
	conn, err := net.Dial("tcp", relayLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	writeRawFrame(t, conn, rawFrameHello, rawHello("AXWP", 3, 0, 0, wire.ConfigDigest(cfg)))
	typ, _, err := readRawFrame(conn)
	if err != nil || typ != rawFrameHelloOK {
		t.Fatalf("handshake reply: type %d err %v", typ, err)
	}
	writeRawFrame(t, conn, rawFrameRelayInterval, []byte{0x80, 0xff, 0x03, 0x01, 0x02})
	// The relay must sever the connection (a hang here fails on the test
	// timeout); acks may arrive first, nothing else will.
	drainUntilClosed(conn)
	conn.Close()

	// A legitimate agent takes over the slot and delivers the stream.
	runAgent(t, relayLn.Addr().String(), 0, 1, cfg, trace)

	if err := <-relayErr; err != nil {
		t.Fatalf("relay: %v", err)
	}
	rel.Close()
	if err := <-rootErr; err != nil {
		t.Fatalf("root: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("root closed %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs after malformed-frame recovery:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// drainUntilClosed reads conn until the peer severs it (EOF or reset).
func drainUntilClosed(conn net.Conn) {
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// TestNewRelayValidation pins the relay constructor's contract: the
// rejections, the derived LeafBase numbering, and the metrics surface.
func TestNewRelayValidation(t *testing.T) {
	cfg := testPipelineConfig()
	for _, tc := range []struct {
		name string
		rc   wire.RelayConfig
	}{
		{"zero children", wire.RelayConfig{Children: 0, Parent: "h:1"}},
		{"negative agent ID", wire.RelayConfig{Children: 1, AgentID: -1, Parent: "h:1"}},
		{"no parent", wire.RelayConfig{Children: 1}},
		{"resume without checkpoint", wire.RelayConfig{Children: 1, Parent: "h:1", Resume: true}},
		{"leaf span too wide", wire.RelayConfig{Children: 2, Parent: "h:1", LeafBase: 1 << 20}},
		{"missing checkpoint file", wire.RelayConfig{
			Children: 1, Parent: "h:1", Resume: true, CheckpointPath: "no/such/checkpoint",
		}},
	} {
		if _, err := wire.NewRelay(cfg, tc.rc); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	rel, err := wire.NewRelay(cfg, wire.RelayConfig{Children: 2, AgentID: 1, Parent: "h:1"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Metrics() == nil {
		t.Error("relay has no metrics surface")
	}
	rel.Close()
}
