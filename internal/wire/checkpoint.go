package wire

import (
	"fmt"
	"os"

	"anomalyx/internal/core"
)

// checkpointMagic starts every checkpoint file, so a collector pointed
// at the wrong path fails with a clear error instead of a codec one.
var checkpointMagic = [4]byte{'A', 'X', 'C', 'P'}

// checkpoint is a collector session's durable state: everything a
// restarted collector needs to resume emitting the exact report stream
// an unrestarted run would have produced from the next interval on.
// Frames absorbed after the checkpoint was written are covered by the
// ack protocol instead: acks are sent only after the checkpoint that
// contains their boundary, so whatever a restart loses is still in
// some agent's replay buffer.
type checkpoint struct {
	lastClosed int64
	emitted    int64
	absorbed   []int64       // per-agent absorbed boundary, indexed by ID
	statuses   []agentStatus // per-agent status at checkpoint time
	snap       core.PipelineSnapshot
}

// appendCheckpoint encodes a checkpoint: magic, codec version, session
// counters, the per-agent table, then the full pipeline snapshot.
func appendCheckpoint(b []byte, c checkpoint) []byte {
	b = append(b, checkpointMagic[:]...)
	b = append(b, codecVersion)
	b = appendVarint(b, c.lastClosed)
	b = appendVarint(b, c.emitted)
	b = appendUvarint(b, uint64(len(c.absorbed)))
	for i := range c.absorbed {
		b = appendVarint(b, c.absorbed[i])
		b = append(b, byte(c.statuses[i]))
	}
	return AppendPipelineSnapshot(b, c.snap)
}

// decodeCheckpoint parses a checkpoint file's contents.
func decodeCheckpoint(payload []byte) (checkpoint, error) {
	r := &reader{buf: payload}
	var magic [4]byte
	for i := range magic {
		magic[i] = r.byte()
	}
	if r.err() == nil && magic != checkpointMagic {
		return checkpoint{}, fmt.Errorf("wire: bad checkpoint magic %q", magic[:])
	}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		r.fail("unsupported checkpoint codec version %d (want %d)", v, codecVersion)
	}
	var c checkpoint
	c.lastClosed = r.varint()
	c.emitted = r.varint()
	n := r.length(2)
	c.absorbed = make([]int64, n)
	c.statuses = make([]agentStatus, n)
	for i := 0; i < n; i++ {
		c.absorbed[i] = r.varint()
		s := agentStatus(r.byte())
		if r.err() == nil && s > statusBye {
			r.fail("invalid agent status %d", s)
		}
		c.statuses[i] = s
	}
	c.snap = decodePipelineBody(r)
	r.expectEOF()
	if r.err() != nil {
		return checkpoint{}, r.err()
	}
	return c, nil
}

// writeCheckpointFile atomically replaces path with the encoded
// checkpoint: write to a sibling temp file, then rename over, so a
// crash mid-write leaves the previous checkpoint intact.
func writeCheckpointFile(path string, c checkpoint) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, appendCheckpoint(nil, c), 0o644); err != nil {
		return fmt.Errorf("wire: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wire: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpointFile reads and decodes the checkpoint at path.
func loadCheckpointFile(path string) (checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return checkpoint{}, fmt.Errorf("wire: reading checkpoint: %w", err)
	}
	return decodeCheckpoint(b)
}
