package wire_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// TestThreeTierRelayTreeByteIdentical is the deferred deeper-than-two
// e2e: leaf → relay → relay → root. Four leaves hang off two mid-tier
// relays, both mid relays feed one top relay, and the top relay is the
// root collector's only agent. A relay's parent can itself be a relay
// by construction (its child-facing collector absorbs
// frameRelayInterval like any other interval frame); this pins that the
// double merge tier still reproduces the single-process 4-shard run
// byte for byte.
func TestThreeTierRelayTreeByteIdentical(t *testing.T) {
	trace := testTrace(10, 2500, 8)
	cfg := testPipelineConfig()

	// Reference: single-process 4-shard run.
	ref, err := shard.New(shard.Config{Shards: 4, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	alarmed := false
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
		alarmed = alarmed || rep.Alarm
	}
	ref.Close()
	if !alarmed {
		t.Fatal("reference run never alarmed; the test would not cover extraction")
	}
	parts := shardParts(t, cfg, trace, 4)

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v; no leaf was lost", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	// Top tier: one relay whose two children are the mid relays.
	topLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	top, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children: 2,
		AgentID:  0,
		Parent:   rootLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	topErr := make(chan error, 1)
	go func() { topErr <- top.Serve(context.Background(), topLn) }()

	// Mid tier: two relays of two leaves each, parented on the top relay.
	midLns := make([]net.Listener, 2)
	mids := make([]*wire.Relay, 2)
	midErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rel, err := wire.NewRelay(cfg, wire.RelayConfig{
			Children: 2,
			AgentID:  r,
			Parent:   topLn.Addr().String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		midLns[r], mids[r] = ln, rel
		go func(rel *wire.Relay, ln net.Listener) {
			midErr <- rel.Serve(context.Background(), ln)
		}(rel, ln)
	}

	var wg sync.WaitGroup
	for leaf := 0; leaf < 4; leaf++ {
		r, c := leaf/2, leaf%2
		wg.Add(1)
		go func(addr string, c, leaf int) {
			defer wg.Done()
			runAgent(t, addr, c, 1, cfg, parts[leaf])
		}(midLns[r].Addr().String(), c, leaf)
	}
	wg.Wait()
	// Joins cascade tier by tier: leaves Bye the mid relays, the mid
	// Serves return after Byeing the top relay, whose Serve returns after
	// Byeing the root.
	for r := 0; r < 2; r++ {
		if err := <-midErr; err != nil {
			t.Fatalf("mid relay: %v", err)
		}
	}
	for _, rel := range mids {
		rel.Close()
	}
	if err := <-topErr; err != nil {
		t.Fatalf("top relay: %v", err)
	}
	top.Close()
	if err := <-rootErr; err != nil {
		t.Fatalf("root collector: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("root closed %d intervals, single-process run closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: three-tier tree differs from single-process run:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}

// TestThreeTierMidRelayCrashResume kills the middle tier of a
// leaf→mid→top→root chain mid-session and restarts it from its
// checkpoint on a new address. The ack-after-upstream rule must hold
// through the extra tier: the leaves (barriered until the mid relay's
// checkpoint covers their first half) redial the replacement, it
// re-offers its held frames to the top relay, and the root's report
// stream is byte-identical to an undisturbed run with no boundary lost,
// duplicated, or flagged Partial.
func TestThreeTierMidRelayCrashResume(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	parts := partition(t, trace, 2, cfg)
	const barrierAt = 4

	ref, err := shard.New(shard.Config{Shards: 2, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
	}
	ref.Close()

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v across the mid-tier restart", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	topLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	top, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children: 1,
		AgentID:  0,
		Parent:   rootLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	topErr := make(chan error, 1)
	go func() { topErr <- top.Serve(context.Background(), topLn) }()

	cpPath := filepath.Join(t.TempDir(), "mid.ckpt")
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var midAddr atomic.Value
	midAddr.Store(lnA.Addr().String())
	leafDialer := func() (net.Conn, error) {
		return net.Dial("tcp", midAddr.Load().(string))
	}

	midA, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children:       2,
		AgentID:        0,
		Parent:         topLn.Addr().String(),
		CheckpointPath: cpPath,
		Retry:          fastRetry(41),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	serveA := make(chan error, 1)
	go func() { serveA <- midA.Serve(ctxA, lnA) }()

	// Leaves ship the first half, wait for the mid relay's durable ack
	// line to cover it, and hold at the barrier across the crash.
	atBarrier := make(chan struct{}, 2)
	resume := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			agent, err := wire.DialAgent(lnA.Addr().String(), id, cfg, wire.AgentOptions{
				Retry:  fastRetry(int64(50 + id)),
				Dialer: leafDialer,
			})
			if err != nil {
				t.Errorf("leaf %d: dial: %v", id, err)
				atBarrier <- struct{}{}
				return
			}
			shipIntervals(t, agent, cfg, parts[id], 0, barrierAt)
			for agent.Acked() < bnd(barrierAt-1) {
				time.Sleep(time.Millisecond)
			}
			atBarrier <- struct{}{}
			<-resume
			shipIntervals(t, agent, cfg, parts[id], barrierAt, len(trace))
			if err := agent.Close(); err != nil {
				t.Errorf("leaf %d: close: %v", id, err)
			}
		}(id)
	}
	<-atBarrier
	<-atBarrier
	cancelA()
	if err := <-serveA; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid relay A exited with %v, want context.Canceled", err)
	}
	midA.Close()

	// Restart: the replacement mid relay resumes from the checkpoint on a
	// new address, still parented on the (undisturbed) top relay.
	midB, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children:       2,
		AgentID:        0,
		Parent:         topLn.Addr().String(),
		CheckpointPath: cpPath,
		Resume:         true,
		Retry:          fastRetry(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	midAddr.Store(lnB.Addr().String())
	serveB := make(chan error, 1)
	go func() { serveB <- midB.Serve(context.Background(), lnB) }()
	close(resume)
	wg.Wait()
	if err := <-serveB; err != nil {
		t.Fatalf("restarted mid relay: %v", err)
	}
	midB.Close()
	if err := <-topErr; err != nil {
		t.Fatalf("top relay: %v", err)
	}
	top.Close()
	if err := <-rootErr; err != nil {
		t.Fatalf("root collector: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("crash+restart closed %d intervals, undisturbed run closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs across the mid-tier restart:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}
