package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestSessionJSONShape pins the exported JSON: field names are an
// operational interface (dashboards scrape them), so a rename must be
// deliberate.
func TestSessionJSONShape(t *testing.T) {
	s := NewSession(2)
	s.SetLastClosed(1800000)
	s.IncEmitted()
	s.IncEmitted()

	a0 := s.Agent(0)
	a0.SetStatus(StatusLive)
	a0.SetLastAcked(1800000)
	a0.SetLag(0)
	a0.SetQueueDepth(3)
	a0.IncReconnects()
	a0.IncReconnects()
	a0.IncLateDrops()
	a0.IncDupDrops()

	if got := s.Emitted(); got != 2 {
		t.Fatalf("Emitted() = %d, want 2", got)
	}

	var v struct {
		LastClosed int64 `json:"last_closed_boundary"`
		Emitted    int64 `json:"reports_emitted"`
		Agents     []struct {
			Status     string `json:"status"`
			LastAcked  int64  `json:"last_acked_boundary"`
			Lag        int64  `json:"lag_intervals"`
			QueueDepth int64  `json:"queue_depth"`
			Reconnects int64  `json:"reconnects"`
			LateDrops  int64  `json:"late_drops"`
			DupDrops   int64  `json:"dup_drops"`
		} `json:"agents"`
	}
	if err := json.Unmarshal([]byte(s.String()), &v); err != nil {
		t.Fatalf("session JSON does not parse: %v\n%s", err, s.String())
	}
	if v.LastClosed != 1800000 || v.Emitted != 2 || len(v.Agents) != 2 {
		t.Fatalf("session view = %+v", v)
	}
	got := v.Agents[0]
	if got.Status != StatusLive || got.LastAcked != 1800000 || got.Lag != 0 ||
		got.QueueDepth != 3 || got.Reconnects != 2 || got.LateDrops != 1 || got.DupDrops != 1 {
		t.Fatalf("agent 0 view = %+v", got)
	}
	// An untouched agent reads as pending with zero counters.
	if want := v.Agents[0]; reflect.DeepEqual(v.Agents[1], want) {
		t.Fatalf("agent views unexpectedly equal: %+v", want)
	}
	if v.Agents[1].Status != StatusPending {
		t.Fatalf("untouched agent status = %q, want %q", v.Agents[1].Status, StatusPending)
	}
}

// TestNilSafety pins the no-branching contract: every method no-ops on
// a nil Session or nil AgentMetrics, and out-of-range Agent lookups
// return nil rather than panicking.
func TestNilSafety(t *testing.T) {
	var s *Session
	s.SetLastClosed(1)
	s.IncEmitted()
	if got := s.Emitted(); got != 0 {
		t.Fatalf("nil session Emitted() = %d", got)
	}
	if got := s.String(); got != "null" {
		t.Fatalf("nil session String() = %q, want null", got)
	}

	real := NewSession(1)
	for _, a := range []*AgentMetrics{s.Agent(0), real.Agent(-1), real.Agent(1)} {
		if a != nil {
			t.Fatalf("out-of-range Agent lookup returned %v, want nil", a)
		}
		a.SetLastAcked(1)
		a.SetLag(1)
		a.SetQueueDepth(1)
		a.IncReconnects()
		a.IncLateDrops()
		a.IncDupDrops()
		a.SetStatus(StatusDead)
	}

	if NewSession(-1).String() == "" {
		t.Fatal("negative-size session did not render")
	}
}

// TestHandler pins the /debug/vars-compatible HTTP shape.
func TestHandler(t *testing.T) {
	s := NewSession(1)
	s.Agent(0).SetStatus(StatusBye)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var v struct {
		Collector struct {
			Agents []struct {
				Status string `json:"status"`
			} `json:"agents"`
		} `json:"collector"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("handler body does not parse: %v\n%s", err, rec.Body.String())
	}
	if len(v.Collector.Agents) != 1 || v.Collector.Agents[0].Status != StatusBye {
		t.Fatalf("handler view = %+v", v)
	}
}
