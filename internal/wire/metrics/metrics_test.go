package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestSessionJSONShape pins the exported JSON: field names are an
// operational interface (dashboards scrape them), so a rename must be
// deliberate.
func TestSessionJSONShape(t *testing.T) {
	s := NewSession(2)
	s.SetLastClosed(1800000)
	s.IncEmitted()
	s.IncEmitted()

	a0 := s.Agent(0)
	a0.SetStatus(StatusLive)
	a0.SetLastAcked(1800000)
	a0.SetLag(0)
	a0.SetQueueDepth(3)
	a0.IncReconnects()
	a0.IncReconnects()
	a0.IncLateDrops()
	a0.IncDupDrops()

	if got := s.Emitted(); got != 2 {
		t.Fatalf("Emitted() = %d, want 2", got)
	}

	var v struct {
		LastClosed int64 `json:"last_closed_boundary"`
		Emitted    int64 `json:"reports_emitted"`
		Agents     []struct {
			Status     string `json:"status"`
			LastAcked  int64  `json:"last_acked_boundary"`
			Lag        int64  `json:"lag_intervals"`
			QueueDepth int64  `json:"queue_depth"`
			Reconnects int64  `json:"reconnects"`
			LateDrops  int64  `json:"late_drops"`
			DupDrops   int64  `json:"dup_drops"`
		} `json:"agents"`
	}
	if err := json.Unmarshal([]byte(s.String()), &v); err != nil {
		t.Fatalf("session JSON does not parse: %v\n%s", err, s.String())
	}
	if v.LastClosed != 1800000 || v.Emitted != 2 || len(v.Agents) != 2 {
		t.Fatalf("session view = %+v", v)
	}
	got := v.Agents[0]
	if got.Status != StatusLive || got.LastAcked != 1800000 || got.Lag != 0 ||
		got.QueueDepth != 3 || got.Reconnects != 2 || got.LateDrops != 1 || got.DupDrops != 1 {
		t.Fatalf("agent 0 view = %+v", got)
	}
	// An untouched agent reads as pending with zero counters.
	if want := v.Agents[0]; reflect.DeepEqual(v.Agents[1], want) {
		t.Fatalf("agent views unexpectedly equal: %+v", want)
	}
	if v.Agents[1].Status != StatusPending {
		t.Fatalf("untouched agent status = %q, want %q", v.Agents[1].Status, StatusPending)
	}
}

// TestNilSafety pins the no-branching contract: every method no-ops on
// a nil Session or nil AgentMetrics, and out-of-range Agent lookups
// return nil rather than panicking.
func TestNilSafety(t *testing.T) {
	var s *Session
	s.SetLastClosed(1)
	s.IncEmitted()
	if got := s.Emitted(); got != 0 {
		t.Fatalf("nil session Emitted() = %d", got)
	}
	if got := s.String(); got != "null" {
		t.Fatalf("nil session String() = %q, want null", got)
	}

	real := NewSession(1)
	for _, a := range []*AgentMetrics{s.Agent(0), real.Agent(-1), real.Agent(1)} {
		if a != nil {
			t.Fatalf("out-of-range Agent lookup returned %v, want nil", a)
		}
		a.SetLastAcked(1)
		a.SetLag(1)
		a.SetQueueDepth(1)
		a.IncReconnects()
		a.IncLateDrops()
		a.IncDupDrops()
		a.SetStatus(StatusDead)
	}

	if NewSession(-1).String() == "" {
		t.Fatal("negative-size session did not render")
	}
}

// TestHandler pins the /debug/vars-compatible HTTP shape, served on
// every path except /metrics.
func TestHandler(t *testing.T) {
	s := NewSession(1)
	s.Agent(0).SetStatus(StatusBye)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var v struct {
		Collector struct {
			Agents []struct {
				Status string `json:"status"`
			} `json:"agents"`
		} `json:"collector"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("handler body does not parse: %v\n%s", err, rec.Body.String())
	}
	if len(v.Collector.Agents) != 1 || v.Collector.Agents[0].Status != StatusBye {
		t.Fatalf("handler view = %+v", v)
	}
}

// promSampleRe matches one Prometheus text-format sample line: a legal
// metric name, an optional label set of quoted values, and an integer
// value (every counter here is integral).
var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?\d+)$`)

// promHeaderRe matches a # HELP or # TYPE family header.
var promHeaderRe = regexp.MustCompile(
	`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge))$`)

// TestPrometheusExposition scrapes /metrics as a Prometheus server
// would: every line must be a well-formed header or sample, every
// sample's family must have been declared by a preceding # TYPE,
// counters must carry the _total suffix, and the sampled values must
// match what was recorded — including the one-hot status vector.
func TestPrometheusExposition(t *testing.T) {
	s := NewSession(2)
	s.SetLastClosed(1800000)
	s.IncEmitted()
	s.IncFramesRelayed()
	s.SetFramesHeld(3)
	a0 := s.Agent(0)
	a0.SetStatus(StatusLive)
	a0.SetLastAcked(1800000)
	a0.SetLag(1)
	a0.SetQueueDepth(4)
	a0.IncReconnects()
	a0.IncLateDrops()
	a0.IncDupDrops()

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition does not end in a newline")
	}

	typed := map[string]string{} // family -> counter|gauge
	samples := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			m := promHeaderRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed header line %q", line)
			}
			fields := strings.Fields(m[1])
			if fields[0] == "TYPE" {
				typed[fields[1]] = fields[2]
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name := m[1]
		typ, ok := typed[name]
		if !ok {
			t.Fatalf("sample %q precedes its # TYPE declaration", line)
		}
		if strings.HasSuffix(name, "_total") != (typ == "counter") {
			t.Fatalf("metric %q: _total suffix and type %q disagree", name, typ)
		}
		v, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		samples[name+m[2]] = v
	}

	for key, want := range map[string]int64{
		"anomalyx_last_closed_boundary":                     1800000,
		"anomalyx_reports_emitted_total":                    1,
		"anomalyx_frames_relayed_total":                     1,
		"anomalyx_frames_held":                              3,
		`anomalyx_agent_last_acked_boundary{agent="0"}`:     1800000,
		`anomalyx_agent_lag_intervals{agent="0"}`:           1,
		`anomalyx_agent_queue_depth{agent="0"}`:             4,
		`anomalyx_agent_reconnects_total{agent="0"}`:        1,
		`anomalyx_agent_late_drops_total{agent="0"}`:        1,
		`anomalyx_agent_dup_drops_total{agent="0"}`:         1,
		`anomalyx_agent_reconnects_total{agent="1"}`:        0,
		`anomalyx_agent_status{agent="0",status="live"}`:    1,
		`anomalyx_agent_status{agent="0",status="dead"}`:    0,
		`anomalyx_agent_status{agent="1",status="pending"}`: 1,
	} {
		got, ok := samples[key]
		if !ok {
			t.Errorf("exposition is missing %s", key)
		} else if got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	// One-hot invariant: each agent's status vector sums to exactly 1.
	for agent := 0; agent < 2; agent++ {
		sum := int64(0)
		for _, st := range statuses {
			sum += samples[`anomalyx_agent_status{agent="`+strconv.Itoa(agent)+`",status="`+st+`"}`]
		}
		if sum != 1 {
			t.Errorf("agent %d status vector sums to %d, want 1", agent, sum)
		}
	}
	if s = nil; s.PrometheusText() != "" {
		t.Error("nil session exposition not empty")
	}
}
