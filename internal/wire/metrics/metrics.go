// Package metrics is the collector's operational-visibility surface:
// per-agent ack/lag/queue/reconnect counters updated by the wire
// collector and exported over HTTP — in expvar JSON format on every
// path but /metrics, and in Prometheus text exposition format on
// /metrics.
//
// Determinism note: metrics are observational only. The collector
// writes them with atomic stores as the session progresses and nothing
// ever reads them back into the merge path, so the counters cannot
// influence report bytes; only their observed values depend on timing.
package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// Agent statuses exported per agent, mirroring the collector's
// connection-state machine.
const (
	// StatusPending marks an agent that has never connected.
	StatusPending = "pending"
	// StatusLive marks a connected agent.
	StatusLive = "live"
	// StatusDown marks a disconnected agent the collector still waits
	// for (HoldWithTimeout policy, timer not yet fired).
	StatusDown = "down"
	// StatusDead marks a disconnected agent the collector no longer
	// waits for; intervals close without it, flagged Partial, until it
	// reconnects.
	StatusDead = "dead"
	// StatusBye marks an agent that ended its stream cleanly.
	StatusBye = "bye"
)

// AgentMetrics holds one agent's counters. All methods are safe on a
// nil receiver (they no-op), so collector code can update
// unconditionally whether or not a session is being observed.
type AgentMetrics struct {
	lastAcked  atomic.Int64
	lag        atomic.Int64
	queueDepth atomic.Int64
	reconnects atomic.Int64
	lateDrops  atomic.Int64
	dupDrops   atomic.Int64
	status     atomic.Value // string
}

// SetLastAcked records the boundary last acknowledged to the agent.
func (a *AgentMetrics) SetLastAcked(boundary int64) {
	if a != nil {
		a.lastAcked.Store(boundary)
	}
}

// SetLag records how many closed intervals the agent is behind the
// session (0 when it contributed to the latest closed interval).
func (a *AgentMetrics) SetLag(intervals int64) {
	if a != nil {
		a.lag.Store(intervals)
	}
}

// SetQueueDepth records the collector-side pending-frame queue depth —
// frames received from the agent but not yet absorbed, the mirror of
// the agent's replay buffer.
func (a *AgentMetrics) SetQueueDepth(depth int64) {
	if a != nil {
		a.queueDepth.Store(depth)
	}
}

// IncReconnects counts a handshake beyond the agent's first.
func (a *AgentMetrics) IncReconnects() {
	if a != nil {
		a.reconnects.Add(1)
	}
}

// IncLateDrops counts a frame dropped because its interval was already
// closed without this agent — the data-loss path behind a Partial flag.
func (a *AgentMetrics) IncLateDrops() {
	if a != nil {
		a.lateDrops.Add(1)
	}
}

// IncDupDrops counts a frame dropped as an already-held duplicate (a
// benign replay overlap after a reconnect).
func (a *AgentMetrics) IncDupDrops() {
	if a != nil {
		a.dupDrops.Add(1)
	}
}

// SetStatus records the agent's connection status (one of the Status*
// constants).
func (a *AgentMetrics) SetStatus(status string) {
	if a != nil {
		a.status.Store(status)
	}
}

// agentView is the JSON shape of one agent's counters.
type agentView struct {
	Status     string `json:"status"`
	LastAcked  int64  `json:"last_acked_boundary"`
	Lag        int64  `json:"lag_intervals"`
	QueueDepth int64  `json:"queue_depth"`
	Reconnects int64  `json:"reconnects"`
	LateDrops  int64  `json:"late_drops"`
	DupDrops   int64  `json:"dup_drops"`
}

func (a *AgentMetrics) view() agentView {
	v := agentView{
		Status:     StatusPending,
		LastAcked:  a.lastAcked.Load(),
		Lag:        a.lag.Load(),
		QueueDepth: a.queueDepth.Load(),
		Reconnects: a.reconnects.Load(),
		LateDrops:  a.lateDrops.Load(),
		DupDrops:   a.dupDrops.Load(),
	}
	if s, ok := a.status.Load().(string); ok {
		v.Status = s
	}
	return v
}

// Session aggregates one collector session's metrics: session-wide
// progress plus one AgentMetrics per agent ID. It implements
// expvar.Var, so callers may expvar.Publish it under a name of their
// choosing; Handler serves the same JSON without touching expvar's
// process-global registry (which a multi-session test process must not
// share).
type Session struct {
	lastClosed    atomic.Int64
	emitted       atomic.Int64
	framesRelayed atomic.Int64
	framesHeld    atomic.Int64
	agents        []AgentMetrics
}

// NewSession builds a session for the given number of agents.
func NewSession(agents int) *Session {
	if agents < 0 {
		agents = 0
	}
	return &Session{agents: make([]AgentMetrics, agents)}
}

// Agent returns the metrics slot for an agent ID, or nil when the
// receiver is nil or the ID is out of range — composing with the
// nil-safe AgentMetrics methods, so call sites never branch.
func (s *Session) Agent(id int) *AgentMetrics {
	if s == nil || id < 0 || id >= len(s.agents) {
		return nil
	}
	return &s.agents[id]
}

// SetLastClosed records the boundary of the most recently closed
// interval.
func (s *Session) SetLastClosed(boundary int64) {
	if s != nil {
		s.lastClosed.Store(boundary)
	}
}

// IncEmitted counts an emitted report.
func (s *Session) IncEmitted() {
	if s != nil {
		s.emitted.Add(1)
	}
}

// Emitted returns the number of reports emitted so far.
func (s *Session) Emitted() int64 {
	if s == nil {
		return 0
	}
	return s.emitted.Load()
}

// IncFramesRelayed counts a merged interval frame a relay actually
// shipped upstream (boundaries a resumed relay re-closed but the parent
// already held are not counted).
func (s *Session) IncFramesRelayed() {
	if s != nil {
		s.framesRelayed.Add(1)
	}
}

// SetFramesHeld records how many shipped-but-unacked frames the relay's
// upstream face currently holds in its replay buffer — the boundaries a
// relay crash would have to recover from its checkpoint or its
// children's replays.
func (s *Session) SetFramesHeld(n int64) {
	if s != nil {
		s.framesHeld.Store(n)
	}
}

// sessionView is the JSON shape of the session.
type sessionView struct {
	LastClosedBoundary int64       `json:"last_closed_boundary"`
	ReportsEmitted     int64       `json:"reports_emitted"`
	FramesRelayed      int64       `json:"frames_relayed"`
	FramesHeld         int64       `json:"frames_held"`
	Agents             []agentView `json:"agents"`
}

func (s *Session) view() sessionView {
	v := sessionView{
		LastClosedBoundary: s.lastClosed.Load(),
		ReportsEmitted:     s.emitted.Load(),
		FramesRelayed:      s.framesRelayed.Load(),
		FramesHeld:         s.framesHeld.Load(),
		Agents:             make([]agentView, len(s.agents)),
	}
	for i := range s.agents {
		v.Agents[i] = s.agents[i].view()
	}
	return v
}

// String renders the session as JSON, satisfying expvar.Var.
func (s *Session) String() string {
	if s == nil {
		return "null"
	}
	b, err := json.Marshal(s.view())
	if err != nil {
		return "null"
	}
	return string(b)
}

// statuses is the fixed status vocabulary, in exposition order, for
// the one-hot anomalyx_agent_status metric.
var statuses = []string{StatusPending, StatusLive, StatusDown, StatusDead, StatusBye}

// promFamily writes one metric family header pair.
func promFamily(b *strings.Builder, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// PrometheusText renders the session in Prometheus text exposition
// format (version 0.0.4): the same counters the JSON view carries, as
// session-level samples plus per-agent samples labeled agent="<id>".
// Connection status is exposed one-hot over the fixed status
// vocabulary. Agents appear in ID order, so the output for a settled
// session is reproducible.
func (s *Session) PrometheusText() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	v := s.view()
	promFamily(&b, "anomalyx_last_closed_boundary", "Boundary (ms) of the most recently closed interval.", "gauge")
	fmt.Fprintf(&b, "anomalyx_last_closed_boundary %d\n", v.LastClosedBoundary)
	promFamily(&b, "anomalyx_reports_emitted_total", "Reports emitted by this session.", "counter")
	fmt.Fprintf(&b, "anomalyx_reports_emitted_total %d\n", v.ReportsEmitted)
	promFamily(&b, "anomalyx_frames_relayed_total", "Merged interval frames a relay shipped upstream.", "counter")
	fmt.Fprintf(&b, "anomalyx_frames_relayed_total %d\n", v.FramesRelayed)
	promFamily(&b, "anomalyx_frames_held", "Shipped-but-unacked frames held for upstream replay.", "gauge")
	fmt.Fprintf(&b, "anomalyx_frames_held %d\n", v.FramesHeld)

	promFamily(&b, "anomalyx_agent_last_acked_boundary", "Boundary (ms) last acknowledged to the agent.", "gauge")
	for i := range v.Agents {
		fmt.Fprintf(&b, "anomalyx_agent_last_acked_boundary{agent=%q} %d\n", fmt.Sprint(i), v.Agents[i].LastAcked)
	}
	promFamily(&b, "anomalyx_agent_lag_intervals", "Closed intervals the agent is behind the session.", "gauge")
	for i := range v.Agents {
		fmt.Fprintf(&b, "anomalyx_agent_lag_intervals{agent=%q} %d\n", fmt.Sprint(i), v.Agents[i].Lag)
	}
	promFamily(&b, "anomalyx_agent_queue_depth", "Frames received from the agent but not yet absorbed.", "gauge")
	for i := range v.Agents {
		fmt.Fprintf(&b, "anomalyx_agent_queue_depth{agent=%q} %d\n", fmt.Sprint(i), v.Agents[i].QueueDepth)
	}
	promFamily(&b, "anomalyx_agent_reconnects_total", "Handshakes beyond the agent's first.", "counter")
	for i := range v.Agents {
		fmt.Fprintf(&b, "anomalyx_agent_reconnects_total{agent=%q} %d\n", fmt.Sprint(i), v.Agents[i].Reconnects)
	}
	promFamily(&b, "anomalyx_agent_late_drops_total", "Frames dropped because their interval closed without this agent.", "counter")
	for i := range v.Agents {
		fmt.Fprintf(&b, "anomalyx_agent_late_drops_total{agent=%q} %d\n", fmt.Sprint(i), v.Agents[i].LateDrops)
	}
	promFamily(&b, "anomalyx_agent_dup_drops_total", "Frames dropped as already-held duplicates after a reconnect.", "counter")
	for i := range v.Agents {
		fmt.Fprintf(&b, "anomalyx_agent_dup_drops_total{agent=%q} %d\n", fmt.Sprint(i), v.Agents[i].DupDrops)
	}
	promFamily(&b, "anomalyx_agent_status", "Agent connection status, one-hot over the status vocabulary.", "gauge")
	for i := range v.Agents {
		for _, st := range statuses {
			hot := 0
			if v.Agents[i].Status == st {
				hot = 1
			}
			fmt.Fprintf(&b, "anomalyx_agent_status{agent=%q,status=%q} %d\n", fmt.Sprint(i), st, hot)
		}
	}
	return b.String()
}

// Handler returns an HTTP handler serving the session both ways:
// Prometheus text exposition on /metrics, and expvar's /debug/vars
// shape ({"collector": {...}}) on every other path — so one listener
// serves dashboards scraping either format.
func (s *Session) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(s.PrometheusText()))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write([]byte("{\n\"collector\": " + s.String() + "\n}\n"))
	})
	return mux
}
