package wire_test

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/engine"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// fastRetry is the redial policy the fault tests give their agents:
// plenty of attempts with millisecond backoff, so a scripted cut heals
// in wall-time noise instead of the production default's seconds.
func fastRetry(seed int64) wire.RetryConfig {
	return wire.RetryConfig{
		MaxAttempts: 400,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Seed:        seed,
	}
}

// chaosProxy forwards agent connections to a collector and cuts them at
// scripted points: the k-th accepted connection is killed after
// forwarding cuts[k] agent→collector frames (the Hello counts), so a
// test can break the transport at exact protocol positions — mid
// handshake, between interval frames — while the collector and agent
// under test see only an ordinary broken TCP connection. Connections
// beyond the script pass through untouched.
type chaosProxy struct {
	ln     net.Listener
	target string
	cuts   []int

	mu    sync.Mutex
	conns int
}

func newChaosProxy(t *testing.T, target string, cuts []int) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, cuts: cuts}
	go p.accept()
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) close() { p.ln.Close() }

// accepted returns how many connections the proxy has seen.
func (p *chaosProxy) accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conns
}

func (p *chaosProxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		idx := p.conns
		p.conns++
		p.mu.Unlock()
		go p.pipe(conn, idx)
	}
}

// pipe relays one connection, frame-aware in the agent→collector
// direction so the cut lands on a frame boundary (a clean truncation;
// torn frames are frame_test territory).
func (p *chaosProxy) pipe(client net.Conn, idx int) {
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	defer client.Close()
	defer up.Close()
	go func() {
		io.Copy(client, up) // collector→agent: HelloOK and acks flow untouched
		client.Close()
	}()
	limit := -1
	if idx < len(p.cuts) {
		limit = p.cuts[idx]
	}
	var hdr [5]byte
	for forwarded := 0; limit < 0 || forwarded < limit; forwarded++ {
		if _, err := io.ReadFull(client, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		if n == 0 || n > 1<<30 {
			return
		}
		payload := make([]byte, n-1)
		if _, err := io.ReadFull(client, payload); err != nil {
			return
		}
		if _, err := up.Write(hdr[:]); err != nil {
			return
		}
		if _, err := up.Write(payload); err != nil {
			return
		}
	}
}

// partition splits a trace across n agents with the same hash router
// in-process sharding uses, so distributed runs are comparable to an
// n-shard single process.
func partition(t *testing.T, trace [][]flow.Record, n int, cfg core.Config) [][][]flow.Record {
	t.Helper()
	router, err := shard.New(shard.Config{Shards: n, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	parts := make([][][]flow.Record, n)
	for id := range parts {
		parts[id] = make([][]flow.Record, len(trace))
	}
	for i, recs := range trace {
		for j := range recs {
			id := router.ShardOf(&recs[j])
			parts[id][i] = append(parts[id][i], recs[j])
		}
	}
	return parts
}

// runEngineAgent drives one agent end to end — local sharded pipeline,
// streaming engine, wire sink — exactly like production, but through
// DialAgent so the test controls the retry policy and dial target.
func runEngineAgent(t *testing.T, addr string, id int, cfg core.Config, part [][]flow.Record, opts wire.AgentOptions) {
	t.Helper()
	agent, err := wire.DialAgent(addr, id, cfg, opts)
	if err != nil {
		t.Errorf("agent %d: dial: %v", id, err)
		return
	}
	sp, err := shard.New(shard.Config{Shards: 1, Pipeline: cfg})
	if err != nil {
		t.Errorf("agent %d: %v", id, err)
		agent.Close()
		return
	}
	eng, err := engine.NewWithSink(engine.Config{IntervalLen: 15 * time.Minute}, wire.NewAgentSink(agent, sp))
	if err != nil {
		t.Errorf("agent %d: %v", id, err)
		agent.Close()
		return
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Reports() {
		}
	}()
	for _, recs := range part {
		if _, err := eng.SubmitBatch(recs); err != nil {
			t.Errorf("agent %d: submit: %v", id, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Errorf("agent %d: engine close: %v", id, err)
	}
	<-drained
	if err := agent.Close(); err != nil {
		t.Errorf("agent %d: close: %v", id, err)
	}
}

// bnd maps an interval ordinal to an absolute grid boundary for the
// tests that drive agents by hand (15-minute grid in Unix ms, matching
// what the engine would stamp).
func bnd(i int) int64 { return int64(i+1) * 900_000 }

// sessionMetrics decodes a collector's metrics JSON for assertions.
type sessionMetrics struct {
	LastClosedBoundary int64 `json:"last_closed_boundary"`
	ReportsEmitted     int64 `json:"reports_emitted"`
	Agents             []struct {
		Status     string `json:"status"`
		LastAcked  int64  `json:"last_acked_boundary"`
		Reconnects int64  `json:"reconnects"`
		DupDrops   int64  `json:"dup_drops"`
	} `json:"agents"`
}

func decodeMetrics(t *testing.T, coll *wire.Collector) sessionMetrics {
	t.Helper()
	var m sessionMetrics
	if err := json.Unmarshal([]byte(coll.Metrics().String()), &m); err != nil {
		t.Fatalf("decoding collector metrics: %v", err)
	}
	return m
}

// TestReconnectReplayByteIdentical is the headline fault-injection
// check: one agent's transport is cut at scripted frame positions —
// immediately after the handshake, and twice more between interval
// frames — forcing redials and replay, and the collector's report
// stream must still be byte-identical to an undisturbed single-process
// two-shard run, with no interval flagged Partial.
func TestReconnectReplayByteIdentical(t *testing.T) {
	trace := testTrace(10, 2000, 7)
	cfg := testPipelineConfig()

	ref, err := shard.New(shard.Config{Shards: 2, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	alarmed := false
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
		alarmed = alarmed || rep.Alarm
	}
	ref.Close()
	if !alarmed {
		t.Fatal("reference run never alarmed; the test would not cover extraction")
	}
	parts := partition(t, trace, 2, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	var got []string
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v; no agent was abandoned", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	// Cut agent 0's first connection right after the Hello, its second
	// after two more frames, its third a little later; the fourth runs
	// clean.
	proxy := newChaosProxy(t, ln.Addr().String(), []int{1, 3, 6})
	defer proxy.close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		runEngineAgent(t, proxy.addr(), 0, cfg, parts[0], wire.AgentOptions{Retry: fastRetry(1)})
	}()
	go func() {
		defer wg.Done()
		runEngineAgent(t, ln.Addr().String(), 1, cfg, parts[1], wire.AgentOptions{Retry: fastRetry(2)})
	}()
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}

	if proxy.accepted() < 2 {
		t.Fatalf("proxy saw %d connections; the scripted cut never forced a redial", proxy.accepted())
	}
	if len(got) != len(want) {
		t.Fatalf("collector closed %d intervals, reference closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs from undisturbed run after reconnects:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
	m := decodeMetrics(t, coll)
	if m.Agents[0].Reconnects < 1 {
		t.Errorf("agent 0 reconnects = %d, want >= 1", m.Agents[0].Reconnects)
	}
	if m.ReportsEmitted != int64(len(want)) {
		t.Errorf("metrics report %d emitted, want %d", m.ReportsEmitted, len(want))
	}
}

// shipIntervals drains each interval's partition through a local
// pipeline and ships it by hand — the manual-agent harness for tests
// that need precise control over when an agent dies.
func shipIntervals(t *testing.T, agent *wire.Agent, cfg core.Config, part [][]flow.Record, from, to int) {
	t.Helper()
	sp, err := shard.New(shard.Config{Shards: 1, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for i := from; i < to; i++ {
		sp.ObserveBatch(part[i])
		snap, err := sp.DrainSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Ship(bnd(i), snap, wire.KindOpenInterval); err != nil {
			t.Fatalf("ship interval %d: %v", i, err)
		}
	}
}

// TestCloseWithoutFlagsDeadAgentPartial kills one agent permanently
// halfway through a session running the CloseWithout policy: the
// collector must keep closing intervals — flagged Partial with the dead
// agent's ID — and the reports must equal a reference run that simply
// never saw the dead agent's remaining partition.
func TestCloseWithoutFlagsDeadAgentPartial(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	parts := partition(t, trace, 2, cfg)
	const deadFrom = 4 // agent 1's last shipped interval is deadFrom-1

	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := make([]string, 0, len(trace))
	for i := range trace {
		single.ObserveBatch(parts[0][i])
		if i < deadFrom {
			single.ObserveBatch(parts[1][i])
		}
		rep, err := single.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if i >= deadFrom {
			rep.Partial = []int{1}
		}
		want = append(want, renderReport(rep))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 2, Policy: wire.CloseWithout})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	var got []string
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	// Agent 1 ships its first intervals, then its machine dies: the raw
	// connection closes with no Bye and no replay buffer left behind.
	conn1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a1, err := wire.NewAgent(conn1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipIntervals(t, a1, cfg, parts[1], 0, deadFrom)
	conn1.Close()

	// Agent 0 runs the whole trace and ends cleanly.
	a0, err := wire.Dial(ln.Addr().String(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipIntervals(t, a0, cfg, parts[0], 0, len(trace))
	if err := a0.Close(); err != nil {
		t.Fatal(err)
	}

	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("collector closed %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	m := decodeMetrics(t, coll)
	if m.Agents[1].Status != "dead" {
		t.Errorf("agent 1 final status %q, want dead", m.Agents[1].Status)
	}
	if m.Agents[0].Status != "bye" {
		t.Errorf("agent 0 final status %q, want bye", m.Agents[0].Status)
	}
}

// TestHoldTimeoutClosesPartial runs HoldWithTimeout against an agent
// that dies mid-session: the collector holds the next interval until
// the timer fires, then declares the agent dead and closes the rest of
// the trace Partial — the session must still terminate on its own.
func TestHoldTimeoutClosesPartial(t *testing.T) {
	trace := testTrace(6, 1500, 5)
	cfg := testPipelineConfig()
	parts := partition(t, trace, 2, cfg)
	const deadFrom = 2

	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := make([]string, 0, len(trace))
	for i := range trace {
		single.ObserveBatch(parts[0][i])
		if i < deadFrom {
			single.ObserveBatch(parts[1][i])
		}
		rep, err := single.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if i >= deadFrom {
			rep.Partial = []int{1}
		}
		want = append(want, renderReport(rep))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{
		Agents:      2,
		Policy:      wire.HoldWithTimeout,
		HoldTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	var got []string
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	conn1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a1, err := wire.NewAgent(conn1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipIntervals(t, a1, cfg, parts[1], 0, deadFrom)
	conn1.Close()

	a0, err := wire.Dial(ln.Addr().String(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipIntervals(t, a0, cfg, parts[0], 0, len(trace))
	if err := a0.Close(); err != nil {
		t.Fatal(err)
	}

	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("collector closed %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestCollectorRestartResumesFromCheckpoint crashes the collector in
// the middle of a session (the emit callback fails, as a full disk or a
// kill -9 would) and starts a fresh collector process-equivalent from
// the checkpoint on a new listener. The agents — held at a barrier so
// their replay buffers still cover everything past the checkpoint —
// redial, resume, and the concatenated report stream must be
// byte-identical to an undisturbed run.
func TestCollectorRestartResumesFromCheckpoint(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	parts := partition(t, trace, 2, cfg)
	const crashAfter = 3 // reports emitted before the injected crash
	const barrierAt = 4  // agents pause after shipping this many intervals

	ref, err := shard.New(shard.Config{Shards: 2, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
	}
	ref.Close()

	cpPath := filepath.Join(t.TempDir(), "collector.ckpt")
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var addr atomic.Value
	addr.Store(lnA.Addr().String())
	dialer := func() (net.Conn, error) {
		return net.Dial("tcp", addr.Load().(string))
	}

	collA, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 2, CheckpointPath: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	errCrash := errors.New("injected collector crash")
	serveA := make(chan error, 1)
	go func() {
		serveA <- collA.Serve(context.Background(), lnA, func(rep *core.Report) error {
			mu.Lock()
			defer mu.Unlock()
			if len(got) == crashAfter {
				return errCrash
			}
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v before the crash", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	// Agents ship the first half, wait out the restart at a barrier, and
	// ship the rest; their replay buffers carry the frames the crashed
	// collector absorbed but never checkpointed.
	atBarrier := make(chan struct{}, 2)
	resume := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			agent, err := wire.DialAgent(lnA.Addr().String(), id, cfg, wire.AgentOptions{
				Retry:  fastRetry(int64(10 + id)),
				Dialer: dialer,
			})
			if err != nil {
				t.Errorf("agent %d: dial: %v", id, err)
				atBarrier <- struct{}{}
				return
			}
			shipIntervals(t, agent, cfg, parts[id], 0, barrierAt)
			atBarrier <- struct{}{}
			<-resume
			shipIntervals(t, agent, cfg, parts[id], barrierAt, len(trace))
			if err := agent.Close(); err != nil {
				t.Errorf("agent %d: close: %v", id, err)
			}
		}(id)
	}
	<-atBarrier
	<-atBarrier
	if err := <-serveA; !errors.Is(err, errCrash) {
		t.Fatalf("collector A exited with %v, want the injected crash", err)
	}
	collA.Close()

	// "Restart": a brand-new collector resumes from the checkpoint on a
	// new address; the agents' dialer follows.
	collB, err := wire.NewCollector(cfg, wire.CollectorConfig{
		Agents:         2,
		CheckpointPath: cpPath,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer collB.Close()
	addr.Store(lnB.Addr().String())
	serveB := make(chan error, 1)
	go func() {
		serveB <- collB.Serve(context.Background(), lnB, func(rep *core.Report) error {
			mu.Lock()
			defer mu.Unlock()
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v after the restart", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()
	close(resume)
	wg.Wait()
	if err := <-serveB; err != nil {
		t.Fatalf("restarted collector: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("crash+restart emitted %d reports, undisturbed run emitted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs across the restart:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}
