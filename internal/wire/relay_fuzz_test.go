package wire

import (
	"bytes"
	"testing"

	"anomalyx/internal/core"
)

// FuzzRelayFrame fuzzes the relay-tier codecs: the frameRelayInterval
// payload (boundary, leaf-span header, missing-leaf list, open
// interval) and the relay checkpoint blob. The standing invariant is
// the same as the rest of the wire codec: a decoder either rejects its
// input or accepts it, and every accepted parse re-encodes to the exact
// input bytes. That canonicality is what keeps a malformed child frame
// from propagating upstream — a relay only ever ships bytes it produced
// itself from an accepted parse, so garbage either dies at the decoder
// or round-trips to something well-formed. Forward-mode snapshot
// decoding (the relay's full-snapshot → open-interval conversion) is
// additionally pinned to never hand back detection history.
func FuzzRelayFrame(f *testing.F) {
	oi := openIntervalOf(mustSnapshot(core.Config{}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Well-formed relay payloads: a full span, and a shifted span with a
	// missing-leaf list.
	full := appendRelayPayload(nil, 900000, 0, 4, nil, oi)
	f.Add(full)
	f.Add(appendRelayPayload(nil, 1800000, 2, 4, []int{3, 5}, oi))
	f.Add(full[:len(full)/2]) // truncated mid-body
	// Bad codec version byte right after the boundary varint.
	bad := appendRelayPayload(nil, 900000, 0, 1, nil, oi)
	bad[len(appendVarint(nil, 900000))] ^= 0x40
	f.Add(bad)
	// Headers the decoder must reject: a non-ascending missing list and
	// an out-of-span leaf ID.
	head := append(appendVarint(nil, 900000), codecVersion)
	f.Add(appendUvarint(appendUvarint(appendUvarint(append(appendUvarint(head[:len(head):len(head)], 0), 2), 2), 5), 3))
	f.Add(appendUvarint(appendUvarint(append(appendUvarint(head[:len(head):len(head)], 0), 2), 1), 9))
	// A relay checkpoint holding one unacked upstream frame.
	f.Add(appendRelayCheckpoint(nil, relayCheckpoint{
		lastClosed: 900000,
		emitted:    1,
		absorbed:   []int64{900000, 0},
		statuses:   []agentStatus{statusLive, statusDown},
		held:       []replayEntry{{typ: frameRelayInterval, boundary: 900000, payload: full}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if fr, err := decodeIntervalPayload(frameRelayInterval, data, false); err == nil {
			if fr.oi == nil || fr.snap != nil || fr.spanLen < 1 {
				t.Fatalf("accepted relay frame in wrong form: oi=%v snap=%v span=[%d,+%d)",
					fr.oi != nil, fr.snap != nil, fr.spanLo, fr.spanLen)
			}
			re := appendRelayPayload(nil, fr.boundary, fr.spanLo, fr.spanLen, fr.missing, *fr.oi)
			if !bytes.Equal(re, data) {
				t.Fatalf("relay frame re-encode mismatch:\n in  %x\n out %x", data, re)
			}
		}
		// Forward-mode snapshot decoding converts at the relay: an accepted
		// parse must be history-free and already in open-interval form.
		if fr, err := decodeIntervalPayload(frameSnapshot, data, true); err == nil {
			if fr.oi == nil || fr.snap != nil {
				t.Fatalf("forward-mode snapshot kept full form: oi=%v snap=%v", fr.oi != nil, fr.snap != nil)
			}
		}
		if c, err := decodeRelayCheckpoint(data); err == nil {
			if re := appendRelayCheckpoint(nil, c); !bytes.Equal(re, data) {
				t.Fatalf("relay checkpoint re-encode mismatch:\n in  %x\n out %x", data, re)
			}
		}
	})
}
