package wire

import (
	"math/rand"
	"time"
)

// RetryConfig parameterizes an agent's redial behavior after a lost
// collector connection: capped exponential backoff with seeded jitter.
// Determinism note: the jitter source is explicitly seeded (Seed), so a
// given configuration produces the same delay sequence on every run —
// retry timing never reads the wall clock or the global rand source,
// and it only spaces connection attempts; it cannot influence report
// bytes.
type RetryConfig struct {
	// MaxAttempts is the number of redials tried per disconnect before
	// the agent gives up with a permanent error. 0 takes the default
	// (8); negative disables reconnection entirely (one strike and the
	// stream is dead, the pre-v3 behavior).
	MaxAttempts int
	// BaseDelay is the delay before the second attempt (the first retry
	// fires immediately); it doubles per attempt up to MaxDelay.
	// 0 takes the default (100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 takes the default (10s).
	MaxDelay time.Duration
	// Seed seeds the jitter source. The zero seed is a valid seed (all
	// agents may share it; jitter decorrelates by attempt anyway).
	Seed int64
	// Sleep is the delay function, injectable for tests; nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// withDefaults resolves the zero values.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 10 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// backoff returns the delay before redial attempt, for attempt >= 1
// (attempt 0 fires immediately): BaseDelay << (attempt-1), capped at
// MaxDelay, then jittered uniformly into [delay/2, delay] so a fleet of
// agents sharing a restart does not redial in lockstep.
func (c RetryConfig) backoff(attempt int, rng *rand.Rand) time.Duration {
	if attempt < 1 {
		return 0
	}
	d := c.BaseDelay
	for i := 1; i < attempt && d < c.MaxDelay; i++ {
		d *= 2
	}
	if d > c.MaxDelay {
		d = c.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
