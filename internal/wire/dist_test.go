package wire_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/engine"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// runAgent drives one agent over its partition of the trace: a local
// sharded pipeline behind a streaming engine whose sink drains and
// ships every interval to the collector. The partition is submitted in
// interval order, mirroring a collector socket replaying its slice of
// the traffic.
func runAgent(t *testing.T, addr string, id, localShards int, cfg core.Config, part [][]flow.Record) {
	t.Helper()
	agent, err := wire.Dial(addr, id, cfg)
	if err != nil {
		t.Errorf("agent %d: dial: %v", id, err)
		return
	}
	sp, err := shard.New(shard.Config{Shards: localShards, Pipeline: cfg})
	if err != nil {
		t.Errorf("agent %d: %v", id, err)
		agent.Close()
		return
	}
	eng, err := engine.NewWithSink(engine.Config{IntervalLen: 15 * time.Minute}, wire.NewAgentSink(agent, sp))
	if err != nil {
		t.Errorf("agent %d: %v", id, err)
		agent.Close()
		return
	}
	// Drain the local stub reports; detection happens at the collector.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Reports() {
		}
	}()
	for _, recs := range part {
		for j := 0; j < len(recs); j += 512 {
			end := min(j+512, len(recs))
			if _, err := eng.SubmitBatch(recs[j:end]); err != nil {
				t.Errorf("agent %d: submit: %v", id, err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Errorf("agent %d: engine close: %v", id, err)
	}
	<-drained
	// Bye must trail the final flushed snapshot, so close the agent
	// after the engine.
	if err := agent.Close(); err != nil {
		t.Errorf("agent %d: close: %v", id, err)
	}
}

// TestDistributedCollector is the tentpole end-to-end check: N agents
// on loopback TCP, each running a locally sharded pipeline over a
// hash partition of the trace, ship per-interval snapshots to a
// collector — and the collector's reports are byte-identical to a
// single process running the same N partitions as in-process shards
// (which the shard package's own tests tie to the plain unsharded
// pipeline). Verified for N ∈ {2, 4}; agent 0 additionally runs 2
// local shards to cover the merged local drain.
func TestDistributedCollector(t *testing.T) {
	trace := testTrace(10, 3000, 8)
	cfg := testPipelineConfig()

	for _, agents := range []int{2, 4} {
		// Reference: a single-process N-shard run over the same records.
		ref, err := shard.New(shard.Config{Shards: agents, Pipeline: cfg})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, len(trace))
		alarmed := false
		for i, recs := range trace {
			rep, err := ref.ProcessInterval(recs)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = renderReport(rep)
			alarmed = alarmed || rep.Alarm
		}
		ref.Close()
		if !alarmed {
			t.Fatal("reference run never alarmed; the test would not cover extraction")
		}

		// Partition the trace exactly as the in-process shards do.
		parts := make([][][]flow.Record, agents)
		for id := range parts {
			parts[id] = make([][]flow.Record, len(trace))
		}
		for i, recs := range trace {
			for j := range recs {
				id := ref.ShardOf(&recs[j])
				parts[id][i] = append(parts[id][i], recs[j])
			}
		}

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: agents})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		serveErr := make(chan error, 1)
		go func() {
			serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
				got = append(got, renderReport(rep))
				return nil
			})
		}()

		var wg sync.WaitGroup
		for id := 0; id < agents; id++ {
			localShards := 1
			if id == 0 {
				localShards = 2 // cover the locally-sharded drain path too
			}
			wg.Add(1)
			go func(id, localShards int) {
				defer wg.Done()
				runAgent(t, ln.Addr().String(), id, localShards, cfg, parts[id])
			}(id, localShards)
		}
		wg.Wait()
		if err := <-serveErr; err != nil {
			t.Fatalf("agents=%d: collector: %v", agents, err)
		}
		ln.Close()
		coll.Close()

		if len(got) != len(want) {
			t.Fatalf("agents=%d: collector closed %d intervals, single-process run closed %d",
				agents, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("agents=%d interval %d: collector report differs from single-process N-shard run:\n got %s\nwant %s",
					agents, i, got[i], want[i])
			}
		}
	}
}

// TestDistributedLateAndEarlyAgents covers boundary keying: one agent's
// partition is withheld from the first two intervals and another's from
// the last two, so the agents seed their grids at different wall times
// and finish at different boundaries. The collector must still line the
// intervals up by absolute boundary and match a single-process run over
// the union of the partitions.
func TestDistributedLateAndEarlyAgents(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()

	// Build the two partitions first: agent 0 misses intervals 0-1,
	// agent 1 misses the last two.
	ref, err := shard.New(shard.Config{Shards: 2, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][][]flow.Record, 2)
	for id := range parts {
		parts[id] = make([][]flow.Record, len(trace))
	}
	for i, recs := range trace {
		for j := range recs {
			id := ref.ShardOf(&recs[j])
			if (id == 0 && i < 2) || (id == 1 && i >= len(trace)-2) {
				continue
			}
			parts[id][i] = append(parts[id][i], recs[j])
		}
	}
	ref.Close()

	// Reference: a single pipeline over the union, interval for
	// interval.
	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := make([]string, 0, len(trace))
	for i := range trace {
		for id := range parts {
			single.ObserveBatch(parts[id][i])
		}
		rep, err := single.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, renderReport(rep))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	var got []string
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		// Drop the withheld (empty) leading intervals entirely: the late
		// agent's engine must seed its grid at its first real record.
		part := parts[id]
		for len(part) > 0 && len(part[0]) == 0 {
			part = part[1:]
		}
		wg.Add(1)
		go func(id int, part [][]flow.Record) {
			defer wg.Done()
			runAgent(t, ln.Addr().String(), id, 1, cfg, part)
		}(id, part)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("collector: %v", err)
	}
	ln.Close()

	if len(got) != len(want) {
		t.Fatalf("collector closed %d intervals, single-process run closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: collector report differs from single-process run:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}
