package wire_test

import (
	"context"
	"net"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/engine"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// benchSnapshot builds a paper-default pipeline (5 features x 3 clones
// x 1024 bins, value tracking on) holding one partially accumulated
// interval of nFlows records — the state an agent drains and ships
// every interval.
func benchSnapshot(b *testing.B, nFlows int) core.PipelineSnapshot {
	b.Helper()
	p, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	trace := testTrace(1, nFlows, 0)[0]
	p.ObserveBatch(trace)
	return p.Snapshot()
}

// BenchmarkWireSnapshot measures the codec on a drained interval of
// 20k flows: encode, decode, and the bytes produced (reported as
// B/op via SetBytes, so ns/op divided by MB/s is directly comparable).
func BenchmarkWireSnapshot(b *testing.B) {
	snap := benchSnapshot(b, 20000)
	enc := wire.EncodePipelineSnapshot(snap)
	b.Logf("snapshot size: %d bytes (%d buffered flows)", len(enc), snap.Buffer.Len())

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wire.EncodePipelineSnapshot(snap)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodePipelineSnapshot(enc); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The lean open-interval form — what an agent actually ships each
	// boundary (the bench pipeline never closed an interval, so its
	// snapshot qualifies). Logged sizes give the full-vs-lean delta.
	lean, err := wire.EncodeOpenIntervalSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("open-interval size: %d bytes (full: %d, %.1f%% saved)",
		len(lean), len(enc), 100*float64(len(enc)-len(lean))/float64(len(enc)))
	b.Run("encode-open", func(b *testing.B) {
		b.SetBytes(int64(len(lean)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.EncodeOpenIntervalSnapshot(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-open", func(b *testing.B) {
		b.SetBytes(int64(len(lean)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodeOpenIntervalSnapshot(lean); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoopbackInterval measures the distributed interval close end
// to end over loopback TCP: two agents each drain and ship a ~2k-flow
// interval, the collector merges both snapshots in agent-ID order and
// closes detection. One benchmark iteration is one complete interval
// (submit, cut, ship, merge, detect), so ns/op is the added per-interval
// latency of running the shards on separate processes' sockets.
func BenchmarkLoopbackInterval(b *testing.B) {
	const agents = 2
	cfg := core.Config{} // paper defaults
	trace := testTrace(1, 4000, -1)[0]
	parts := make([][]flow.Record, agents)
	for i := range trace {
		parts[i%agents] = append(parts[i%agents], trace[i])
	}
	step := (15 * time.Minute).Milliseconds()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	coll, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: agents})
	if err != nil {
		b.Fatal(err)
	}
	defer coll.Close()
	reports := make(chan *core.Report, 16)
	serveErr := make(chan error, 1)
	go func() {
		defer close(reports)
		serveErr <- coll.Serve(context.Background(), ln, func(rep *core.Report) error {
			reports <- rep
			return nil
		})
	}()

	engines := make([]*engine.Engine, agents)
	agentConns := make([]*wire.Agent, agents)
	for id := 0; id < agents; id++ {
		a, err := wire.Dial(ln.Addr().String(), id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := shard.New(shard.Config{Shards: 1, Pipeline: cfg})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.NewWithSink(engine.Config{IntervalLen: 15 * time.Minute}, wire.NewAgentSink(a, sp))
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for range eng.Reports() {
			}
		}()
		engines[id] = eng
		agentConns[id] = a
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Shift every record into benchmark-interval i, so each iteration
		// fills exactly one grid interval; the next iteration's first
		// record cuts the previous one closed at both agents.
		for id, part := range parts {
			shifted := make([]flow.Record, len(part))
			for j, rec := range part {
				rec.Start = rec.Start%step + int64(i+1)*step
				rec.End = rec.Start
				shifted[j] = rec
			}
			if _, err := engines[id].SubmitBatch(shifted); err != nil {
				b.Fatal(err)
			}
		}
		if i > 0 {
			<-reports // the interval the cut just closed
		}
	}
	b.StopTimer()
	for id := range engines {
		if err := engines[id].Close(); err != nil {
			b.Fatal(err)
		}
		if err := agentConns[id].Close(); err != nil {
			b.Fatal(err)
		}
	}
	for range reports {
	}
	if err := <-serveErr; err != nil {
		b.Fatal(err)
	}
}
