package wire

import (
	"bytes"
	"errors"
	"testing"

	"anomalyx/internal/core"
)

// FuzzAckResume fuzzes the survivable-session control codecs — Hello
// (with its v3 resume boundary), Ack/HelloOK boundaries, Error frames,
// and collector checkpoints — with the codec's standing canonicality
// invariant: a decoder either rejects its input or accepts it, and
// every accepted parse re-encodes to the exact input bytes. The codec
// uses minimal varints only, so decode is the inverse of encode on its
// image and total (panic-free) everywhere else. That property is what
// makes a resumed session byte-deterministic: the collector's dedup
// line, the agent's replay trim, and a rehydrated checkpoint all travel
// through these payloads.
func FuzzAckResume(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// A v2 hello (no resume field) and a v3 hello with a resume offset.
	f.Add(appendHello(nil, 2, 0, 0, 0x1234))
	f.Add(appendHello(nil, 3, 7, 1196640900000, 0xdeadbeef))
	// Ack/HelloOK boundaries: a grid boundary and the -1 "nothing yet".
	f.Add(appendBoundary(nil, 900000))
	f.Add(appendBoundary(nil, -1))
	// Error frames, including the two machine-readable rejections.
	f.Add(appendError(nil, errCodeConfigMismatch, "config mismatch: agent=1234 collector=beef"))
	f.Add(appendError(nil, errCodeSessionEnded, "stream already ended"))
	f.Add(appendError(nil, errCodeBadVersion, "unsupported protocol version 1"))
	// A checkpoint for a 2-agent session over an empty pipeline.
	f.Add(appendCheckpoint(nil, checkpoint{
		lastClosed: 900000,
		emitted:    1,
		absorbed:   []int64{900000, 0},
		statuses:   []agentStatus{statusLive, statusDead},
		snap:       mustSnapshot(core.Config{}),
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := decodeHello(data); err == nil {
			re := appendHello(nil, h.version, h.agentID, h.resume, h.digest)
			if !bytes.Equal(re, data) {
				t.Fatalf("hello re-encode mismatch:\n in  %x\n out %x", data, re)
			}
		}
		if b, err := decodeBoundary(data); err == nil {
			if re := appendBoundary(nil, b); !bytes.Equal(re, data) {
				t.Fatalf("boundary re-encode mismatch:\n in  %x\n out %x", data, re)
			}
		}
		// decodeError is total by design: every payload decodes to SOME
		// error (a malformed rejection still rejects), and the two
		// machine-readable forms must survive a round trip.
		err := decodeError(data)
		if err == nil {
			t.Fatal("decodeError returned nil")
		}
		var mismatch *ConfigMismatchError
		if errors.As(err, &mismatch) {
			again := decodeError(appendError(nil, errCodeConfigMismatch, mismatch.Error()[len("wire: "):]))
			var m2 *ConfigMismatchError
			if !errors.As(again, &m2) || *m2 != *mismatch {
				t.Fatalf("config-mismatch rejection did not round-trip: %v -> %v", mismatch, again)
			}
		}
		if c, err := decodeCheckpoint(data); err == nil {
			if re := appendCheckpoint(nil, c); !bytes.Equal(re, data) {
				t.Fatalf("checkpoint re-encode mismatch:\n in  %x\n out %x", data, re)
			}
		}
	})
}

// mustSnapshot builds a snapshot of a fresh pipeline under cfg for use
// as fuzz-seed material.
func mustSnapshot(cfg core.Config) core.PipelineSnapshot {
	p, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	return p.Snapshot()
}
