package wire

import (
	"math"
	"slices"

	"anomalyx/internal/flow"
)

// The columnar record section. The flow buffer travels column by column
// — all SrcAddrs, then all DstAddrs, and so on — with a per-column
// scheme chosen for what each field's traffic actually looks like:
//
//   - SrcAddr, DstAddr (uint32) and SrcPort, DstPort (uint16):
//     dictionary-coded. The distinct values, sorted ascending, are
//     written as uvarint gaps (first value absolute, then gap-1 to the
//     predecessor, which makes strict ascent a property of the byte
//     form rather than a check), followed by one uvarint dictionary
//     index per row. Real intervals draw these columns from small pools
//     — a few thousand hosts, a handful of service ports — so indices
//     are 1–2 bytes where the raw values were 2–5.
//   - Protocol, TCPFlags (uint8): raw bytes, one per row.
//   - Packets (uint32), Bytes (uint64): absolute uvarints per row.
//   - Start (int64): a zigzag-varint delta chain seeded from 0 — flow
//     export is near-sorted by start time, so deltas are tiny.
//   - End (int64): the zigzag-varint duration End-Start per row.
//
// Canonicality is preserved: the dictionary form is unique for a given
// column (sorted distinct values, deterministic indices), and the
// decoder rejects everything the encoder cannot produce — non-minimal
// varints (the reader's global rule), dictionary values overflowing
// their field's range, empty or oversized dictionaries, out-of-range
// indices, and dictionary entries no row references. Together with the
// wrapping-arithmetic delta chains (encode and decode are exact
// inverses over all of int64), decode∘encode remains the identity on
// every accepted byte string, the FuzzWireRoundTrip/FuzzColumnarRecords
// invariant. The range rejections are load-bearing beyond canonicality:
// the row-wise codec this replaces silently truncated a SrcPort of
// 0x1FFFF to 65535 instead of failing.

// appendRecordSection appends the columnar encoding of buf: the row
// count, then each column in the fixed order above. The empty buffer is
// just a zero count.
func appendRecordSection(b []byte, buf *flow.Buffer) []byte {
	n := buf.Len()
	b = appendUvarint(b, uint64(n))
	if n == 0 {
		return b
	}
	b = appendDictColumn(b, buf.SrcAddr)
	b = appendDictColumn(b, buf.DstAddr)
	b = appendDictColumn(b, buf.SrcPort)
	b = appendDictColumn(b, buf.DstPort)
	b = append(b, buf.Protocol...)
	b = append(b, buf.TCPFlags...)
	for _, v := range buf.Packets {
		b = appendUvarint(b, uint64(v))
	}
	for _, v := range buf.Bytes {
		b = appendUvarint(b, v)
	}
	prev := int64(0)
	for _, v := range buf.Start {
		b = appendVarint(b, v-prev)
		prev = v
	}
	for i, v := range buf.End {
		b = appendVarint(b, v-buf.Start[i])
	}
	return b
}

// appendDictColumn dictionary-codes one unsigned column: dictionary
// size, the sorted distinct values as gap uvarints, then — unless the
// dictionary is a single value, which already determines every row —
// one dictionary index per row.
func appendDictColumn[V uint16 | uint32](b []byte, col []V) []byte {
	dict := make([]V, len(col))
	copy(dict, col)
	slices.Sort(dict)
	dict = slices.Compact(dict)
	b = appendUvarint(b, uint64(len(dict)))
	prev := uint64(0)
	for i, v := range dict {
		if i == 0 {
			b = appendUvarint(b, uint64(v))
		} else {
			b = appendUvarint(b, uint64(v)-prev-1)
		}
		prev = uint64(v)
	}
	if len(dict) == 1 {
		return b
	}
	for _, v := range col {
		idx, _ := slices.BinarySearch(dict, v)
		b = appendUvarint(b, uint64(idx))
	}
	return b
}

// decodeDictColumn parses one dictionary-coded column of n rows whose
// values must fit in max (the field's range — the overflow range check
// decodeRecord lacked). field names the column in errors.
func decodeDictColumn[V uint16 | uint32](r *reader, n int, max uint64, field string) []V {
	d := r.length(1)
	if r.err() != nil {
		return nil
	}
	if d == 0 || d > n {
		r.fail("%s dictionary size %d out of [1,%d]", field, d, n)
		return nil
	}
	dict := make([]V, d)
	prev := uint64(0)
	for i := range dict {
		at := r.off
		g := r.uvarint()
		if r.err() != nil {
			return nil
		}
		v := g
		if i > 0 {
			if prev >= max || g > max-prev-1 {
				r.fail("%s dictionary value overflows %d at byte %d", field, max, at)
				return nil
			}
			v = prev + g + 1
		} else if v > max {
			r.fail("%s value %d overflows %d at byte %d", field, v, max, at)
			return nil
		}
		dict[i] = V(v)
		prev = v
	}
	col := make([]V, n)
	if d == 1 {
		for i := range col {
			col[i] = dict[0]
		}
		return col
	}
	used := make([]bool, d)
	for i := range col {
		at := r.off
		idx := r.uvarint()
		if r.err() != nil {
			return nil
		}
		if idx >= uint64(d) {
			r.fail("%s index %d out of dictionary range %d at byte %d", field, idx, d, at)
			return nil
		}
		col[i] = dict[idx]
		used[idx] = true
	}
	// A dictionary entry no row references cannot come from the encoder
	// (it derives the dictionary from the rows), and accepting one would
	// break decode∘encode identity — the re-encode would drop it.
	for i, u := range used {
		if !u {
			r.fail("%s dictionary entry %d unused", field, i)
			return nil
		}
	}
	return col
}

// decodeRecordSection parses a columnar record section into a buffer.
// Failures — truncation, range overflows, non-canonical dictionaries —
// land in the reader's error as usual.
func decodeRecordSection(r *reader) flow.Buffer {
	var buf flow.Buffer
	// Each row costs at least 6 bytes in the fixed-width columns alone
	// (Protocol, TCPFlags, and one byte each for Packets, Bytes, Start,
	// End), which bounds a forged row count.
	n := r.length(6)
	if n == 0 || r.err() != nil {
		return buf
	}
	buf.SrcAddr = decodeDictColumn[uint32](r, n, math.MaxUint32, "SrcAddr")
	buf.DstAddr = decodeDictColumn[uint32](r, n, math.MaxUint32, "DstAddr")
	buf.SrcPort = decodeDictColumn[uint16](r, n, math.MaxUint16, "SrcPort")
	buf.DstPort = decodeDictColumn[uint16](r, n, math.MaxUint16, "DstPort")
	buf.Protocol = r.bytes(n)
	buf.TCPFlags = r.bytes(n)
	if r.err() != nil {
		return flow.Buffer{}
	}
	buf.Packets = make([]uint32, n)
	for i := range buf.Packets {
		at := r.off
		v := r.uvarint()
		if v > math.MaxUint32 {
			r.fail("Packets value %d overflows %d at byte %d", v, uint64(math.MaxUint32), at)
		}
		if r.err() != nil {
			return flow.Buffer{}
		}
		buf.Packets[i] = uint32(v)
	}
	buf.Bytes = make([]uint64, n)
	for i := range buf.Bytes {
		buf.Bytes[i] = r.uvarint()
	}
	buf.Start = make([]int64, n)
	prev := int64(0)
	for i := range buf.Start {
		prev += r.varint()
		buf.Start[i] = prev
	}
	buf.End = make([]int64, n)
	for i := range buf.End {
		buf.End[i] = buf.Start[i] + r.varint()
	}
	if r.err() != nil {
		return flow.Buffer{}
	}
	return buf
}
