package wire

import (
	"fmt"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/histogram"
)

// appendHistogram encodes one histogram snapshot: bin count, per-bin
// counts, total, and — when value tracking is on — each bin's tracked
// values. The snapshot's canonical form (values ascending per bin) is
// written verbatim, which is what makes the encoding deterministic.
func appendHistogram(b []byte, s histogram.Snapshot) []byte {
	b = appendUvarint(b, uint64(len(s.Counts)))
	for _, c := range s.Counts {
		b = appendUvarint(b, c)
	}
	b = appendUvarint(b, s.Total)
	if s.Values == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	for _, vs := range s.Values {
		b = appendUvarint(b, uint64(len(vs)))
		for _, vc := range vs {
			b = appendUvarint(b, vc.Value)
			b = appendUvarint(b, vc.Count)
		}
	}
	return b
}

func decodeHistogram(r *reader) histogram.Snapshot {
	var s histogram.Snapshot
	k := r.length(1)
	s.Counts = make([]uint64, k)
	for i := range s.Counts {
		s.Counts[i] = r.uvarint()
	}
	s.Total = r.uvarint()
	switch tracked := r.byte(); tracked {
	case 0:
		return s
	case 1:
	default:
		r.fail("invalid value-tracking flag %d", tracked)
		return s
	}
	s.Values = make([][]histogram.ValueCount, k)
	for b := range s.Values {
		n := r.length(2)
		if n == 0 {
			continue
		}
		vs := make([]histogram.ValueCount, n)
		for i := range vs {
			vs[i].Value = r.uvarint()
			vs[i].Count = r.uvarint()
		}
		s.Values[b] = vs
	}
	return s
}

// appendDetector encodes one detector snapshot: the open interval's
// clone histograms, then the detection history (reference counts, KL
// series, pooled first differences, interval counter).
func appendDetector(b []byte, s detector.Snapshot) []byte {
	b = appendUvarint(b, uint64(len(s.Clones)))
	for _, hs := range s.Clones {
		b = appendHistogram(b, hs)
	}
	b = appendUvarint(b, uint64(len(s.Prev)))
	for _, prev := range s.Prev {
		b = appendUvarint(b, uint64(len(prev)))
		for _, c := range prev {
			b = appendUvarint(b, c)
		}
	}
	b = appendUvarint(b, uint64(len(s.KLPrev)))
	for _, kl := range s.KLPrev {
		b = appendFloat64(b, kl)
	}
	b = append(b, boolByte(s.HavePrev), boolByte(s.HaveKL))
	b = appendUvarint(b, uint64(len(s.Diffs)))
	for _, d := range s.Diffs {
		b = appendFloat64(b, d)
	}
	return appendUvarint(b, uint64(s.Interval))
}

func decodeDetector(r *reader) detector.Snapshot {
	var s detector.Snapshot
	s.Clones = make([]histogram.Snapshot, r.length(3))
	for i := range s.Clones {
		s.Clones[i] = decodeHistogram(r)
	}
	s.Prev = make([][]uint64, r.length(1))
	for i := range s.Prev {
		prev := make([]uint64, r.length(1))
		for j := range prev {
			prev[j] = r.uvarint()
		}
		s.Prev[i] = prev
	}
	s.KLPrev = make([]float64, r.length(8))
	for i := range s.KLPrev {
		s.KLPrev[i] = r.float64()
	}
	s.HavePrev = decodeBool(r)
	s.HaveKL = decodeBool(r)
	// nil for empty, matching Detector.Snapshot's append-to-nil shape, so
	// decode(encode(s)) is deeply equal to s, not just equivalent.
	if n := r.length(8); n > 0 {
		s.Diffs = make([]float64, n)
		for i := range s.Diffs {
			s.Diffs[i] = r.float64()
		}
	}
	s.Interval = int(r.uvarint())
	return s
}

// appendBank encodes a bank snapshot: the detectors in feature order.
func appendBank(b []byte, s detector.BankSnapshot) []byte {
	b = appendUvarint(b, uint64(len(s.Detectors)))
	for _, ds := range s.Detectors {
		b = appendDetector(b, ds)
	}
	return b
}

func decodeBank(r *reader) detector.BankSnapshot {
	var s detector.BankSnapshot
	s.Detectors = make([]detector.Snapshot, r.length(8))
	for i := range s.Detectors {
		s.Detectors[i] = decodeDetector(r)
	}
	return s
}

// appendRecord encodes one flow record. Every field is carried —
// including TCP flags and both timestamps — so a restored buffer
// prefilters and mines exactly like the original.
func appendRecord(b []byte, rec *flow.Record) []byte {
	b = appendUvarint(b, uint64(rec.SrcAddr))
	b = appendUvarint(b, uint64(rec.DstAddr))
	b = appendUvarint(b, uint64(rec.SrcPort))
	b = appendUvarint(b, uint64(rec.DstPort))
	b = append(b, rec.Protocol, rec.TCPFlags)
	b = appendUvarint(b, uint64(rec.Packets))
	b = appendUvarint(b, rec.Bytes)
	b = appendVarint(b, rec.Start)
	return appendVarint(b, rec.End)
}

func decodeRecord(r *reader) flow.Record {
	var rec flow.Record
	rec.SrcAddr = uint32(r.uvarint())
	rec.DstAddr = uint32(r.uvarint())
	rec.SrcPort = uint16(r.uvarint())
	rec.DstPort = uint16(r.uvarint())
	rec.Protocol = r.byte()
	rec.TCPFlags = r.byte()
	rec.Packets = uint32(r.uvarint())
	rec.Bytes = r.uvarint()
	rec.Start = r.varint()
	rec.End = r.varint()
	return rec
}

// EncodeBankSnapshot serializes a bank snapshot, prefixed with the codec
// version. The encoding is canonical: equal snapshots yield equal bytes.
func EncodeBankSnapshot(s detector.BankSnapshot) []byte {
	return appendBank([]byte{codecVersion}, s)
}

// DecodeBankSnapshot parses an EncodeBankSnapshot payload. It rejects
// unknown codec versions, truncated input, and trailing bytes.
func DecodeBankSnapshot(b []byte) (detector.BankSnapshot, error) {
	r := &reader{buf: b}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		return detector.BankSnapshot{}, fmt.Errorf("wire: unsupported codec version %d (want %d)", v, codecVersion)
	}
	s := decodeBank(r)
	r.expectEOF()
	return s, r.err()
}

// EncodePipelineSnapshot serializes a pipeline snapshot — bank state
// plus the open interval's flow buffer — prefixed with the codec
// version. The encoding is canonical: equal snapshots yield equal bytes.
func EncodePipelineSnapshot(s core.PipelineSnapshot) []byte {
	return AppendPipelineSnapshot([]byte{codecVersion}, s)
}

// AppendPipelineSnapshot appends the body of a pipeline snapshot
// (without the version byte) to b and returns the extended slice.
func AppendPipelineSnapshot(b []byte, s core.PipelineSnapshot) []byte {
	b = appendBank(b, s.Bank)
	b = appendUvarint(b, uint64(len(s.Buffer)))
	for i := range s.Buffer {
		b = appendRecord(b, &s.Buffer[i])
	}
	return b
}

// DecodePipelineSnapshot parses an EncodePipelineSnapshot payload. It
// rejects unknown codec versions, truncated input, and trailing bytes.
func DecodePipelineSnapshot(b []byte) (core.PipelineSnapshot, error) {
	r := &reader{buf: b}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		return core.PipelineSnapshot{}, fmt.Errorf("wire: unsupported codec version %d (want %d)", v, codecVersion)
	}
	s := decodePipelineBody(r)
	r.expectEOF()
	return s, r.err()
}

// decodePipelineBody parses a pipeline snapshot body (after the version
// byte).
func decodePipelineBody(r *reader) core.PipelineSnapshot {
	var s core.PipelineSnapshot
	s.Bank = decodeBank(r)
	n := r.length(10)
	if n > 0 {
		s.Buffer = make([]flow.Record, n)
		for i := range s.Buffer {
			s.Buffer[i] = decodeRecord(r)
		}
	}
	return s
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func decodeBool(r *reader) bool {
	switch b := r.byte(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %d", b)
		return false
	}
}
