package wire

import (
	"fmt"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/histogram"
)

// appendHistogram encodes one histogram snapshot: bin count, per-bin
// counts, total, and — when value tracking is on — each bin's tracked
// values. The snapshot's canonical form (values ascending per bin) is
// written verbatim, which is what makes the encoding deterministic.
func appendHistogram(b []byte, s histogram.Snapshot) []byte {
	b = appendUvarint(b, uint64(len(s.Counts)))
	for _, c := range s.Counts {
		b = appendUvarint(b, c)
	}
	b = appendUvarint(b, s.Total)
	if s.Values == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	for _, vs := range s.Values {
		b = appendUvarint(b, uint64(len(vs)))
		for _, vc := range vs {
			b = appendUvarint(b, vc.Value)
			b = appendUvarint(b, vc.Count)
		}
	}
	return b
}

func decodeHistogram(r *reader) histogram.Snapshot {
	var s histogram.Snapshot
	k := r.length(1)
	s.Counts = make([]uint64, k)
	for i := range s.Counts {
		s.Counts[i] = r.uvarint()
	}
	s.Total = r.uvarint()
	switch tracked := r.byte(); tracked {
	case 0:
		return s
	case 1:
	default:
		r.fail("invalid value-tracking flag %d", tracked)
		return s
	}
	s.Values = make([][]histogram.ValueCount, k)
	// All bins parse into one slab in a single pass — a handful of
	// allocations per histogram instead of one per non-empty bin, which
	// used to dominate decode's allocation profile (~12k allocs per
	// paper-shaped pipeline snapshot). Total is the sum of the entry
	// counts, so it upper-bounds the distinct-value count on anything
	// the encoder produced (only corrupt inputs carry zero-count
	// entries in bulk, and those merely pay append growth); the bound
	// is clamped by the remaining input so a forged Total cannot force
	// a huge allocation. Bin boundaries are recorded as offsets and
	// sub-sliced once the slab stops moving, capacity-clipped so an
	// append through one bin cannot reach the next bin's entries.
	// reflect.DeepEqual cannot tell slab sub-slices from individually
	// allocated ones, so round-trip equality holds.
	hint := r.rem() / 2 // a value entry is at least two bytes
	if s.Total < uint64(hint) {
		hint = int(s.Total)
	}
	slab := make([]histogram.ValueCount, 0, hint)
	offs := make([]int, k+1)
	for b := 0; b < k; b++ {
		n := r.length(2)
		for i := 0; i < n; i++ {
			slab = append(slab, histogram.ValueCount{Value: r.uvarint(), Count: r.uvarint()})
		}
		offs[b+1] = len(slab)
	}
	if r.err() != nil {
		return s
	}
	for b := 0; b < k; b++ {
		if offs[b+1] > offs[b] {
			s.Values[b] = slab[offs[b]:offs[b+1]:offs[b+1]]
		}
	}
	return s
}

// appendDetector encodes one detector snapshot: the open interval's
// clone histograms, then the detection history (reference counts, KL
// series, pooled first differences, interval counter).
func appendDetector(b []byte, s detector.Snapshot) []byte {
	b = appendUvarint(b, uint64(len(s.Clones)))
	for _, hs := range s.Clones {
		b = appendHistogram(b, hs)
	}
	b = appendUvarint(b, uint64(len(s.Prev)))
	for _, prev := range s.Prev {
		b = appendUvarint(b, uint64(len(prev)))
		for _, c := range prev {
			b = appendUvarint(b, c)
		}
	}
	b = appendUvarint(b, uint64(len(s.KLPrev)))
	for _, kl := range s.KLPrev {
		b = appendFloat64(b, kl)
	}
	b = append(b, boolByte(s.HavePrev), boolByte(s.HaveKL))
	b = appendUvarint(b, uint64(len(s.Diffs)))
	for _, d := range s.Diffs {
		b = appendFloat64(b, d)
	}
	return appendUvarint(b, uint64(s.Interval))
}

func decodeDetector(r *reader) detector.Snapshot {
	var s detector.Snapshot
	s.Clones = make([]histogram.Snapshot, r.length(3))
	for i := range s.Clones {
		s.Clones[i] = decodeHistogram(r)
	}
	s.Prev = make([][]uint64, r.length(1))
	for i := range s.Prev {
		prev := make([]uint64, r.length(1))
		for j := range prev {
			prev[j] = r.uvarint()
		}
		s.Prev[i] = prev
	}
	s.KLPrev = make([]float64, r.length(8))
	for i := range s.KLPrev {
		s.KLPrev[i] = r.float64()
	}
	s.HavePrev = decodeBool(r)
	s.HaveKL = decodeBool(r)
	// nil for empty, matching Detector.Snapshot's append-to-nil shape, so
	// decode(encode(s)) is deeply equal to s, not just equivalent.
	if n := r.length(8); n > 0 {
		s.Diffs = make([]float64, n)
		for i := range s.Diffs {
			s.Diffs[i] = r.float64()
		}
	}
	s.Interval = int(r.uvarint())
	return s
}

// appendBank encodes a bank snapshot: the detectors in feature order.
func appendBank(b []byte, s detector.BankSnapshot) []byte {
	b = appendUvarint(b, uint64(len(s.Detectors)))
	for _, ds := range s.Detectors {
		b = appendDetector(b, ds)
	}
	return b
}

func decodeBank(r *reader) detector.BankSnapshot {
	var s detector.BankSnapshot
	s.Detectors = make([]detector.Snapshot, r.length(8))
	for i := range s.Detectors {
		s.Detectors[i] = decodeDetector(r)
	}
	return s
}

// The record section is columnar — see records.go for the per-column
// schemes and the canonicality argument. Every field is carried —
// including TCP flags and both timestamps — so a restored buffer
// prefilters and mines exactly like the original.

// EncodeBankSnapshot serializes a bank snapshot, prefixed with the codec
// version. The encoding is canonical: equal snapshots yield equal bytes.
func EncodeBankSnapshot(s detector.BankSnapshot) []byte {
	return appendBank([]byte{codecVersion}, s)
}

// DecodeBankSnapshot parses an EncodeBankSnapshot payload. It rejects
// unknown codec versions, truncated input, and trailing bytes.
func DecodeBankSnapshot(b []byte) (detector.BankSnapshot, error) {
	r := &reader{buf: b}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		return detector.BankSnapshot{}, fmt.Errorf("wire: unsupported codec version %d (want %d)", v, codecVersion)
	}
	s := decodeBank(r)
	r.expectEOF()
	return s, r.err()
}

// EncodePipelineSnapshot serializes a pipeline snapshot — bank state
// plus the open interval's flow buffer — prefixed with the codec
// version. The encoding is canonical: equal snapshots yield equal bytes.
func EncodePipelineSnapshot(s core.PipelineSnapshot) []byte {
	return AppendPipelineSnapshot([]byte{codecVersion}, s)
}

// AppendPipelineSnapshot appends the body of a pipeline snapshot
// (without the version byte) to b and returns the extended slice.
func AppendPipelineSnapshot(b []byte, s core.PipelineSnapshot) []byte {
	b = appendBank(b, s.Bank)
	return appendRecordSection(b, &s.Buffer)
}

// DecodePipelineSnapshot parses an EncodePipelineSnapshot payload. It
// rejects unknown codec versions, truncated input, and trailing bytes.
func DecodePipelineSnapshot(b []byte) (core.PipelineSnapshot, error) {
	r := &reader{buf: b}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		return core.PipelineSnapshot{}, fmt.Errorf("wire: unsupported codec version %d (want %d)", v, codecVersion)
	}
	s := decodePipelineBody(r)
	r.expectEOF()
	return s, r.err()
}

// decodePipelineBody parses a pipeline snapshot body (after the version
// byte).
func decodePipelineBody(r *reader) core.PipelineSnapshot {
	var s core.PipelineSnapshot
	s.Bank = decodeBank(r)
	s.Buffer = decodeRecordSection(r)
	return s
}

// The lean open-interval form. An agent's pipeline never closes
// detection, so of a full pipeline snapshot only the open interval
// carries information: the reference counts are all zero, the KL series
// empty, the interval counter zero. The open-interval encoding is
// exactly core.OpenInterval — per detector the clone histograms alone,
// then the flow buffer — matching the lean drain
// (Pipeline.DrainOpenInterval) on the agent side and the additive
// absorb (Pipeline.AbsorbOpenInterval) on the collector side, so the
// dead history is never copied, encoded, or restored anywhere on the
// per-interval path. Full snapshots remain the format for true
// checkpoints, where history is the point.

// openIntervalOnly guards the lean form: encoding a snapshot that
// carries history would silently discard it, so it is refused instead.
func openIntervalOnly(s core.PipelineSnapshot) error {
	for i, ds := range s.Bank.Detectors {
		if ds.HavePrev || ds.HaveKL || len(ds.Diffs) != 0 || ds.Interval != 0 {
			return fmt.Errorf("wire: detector %d carries detection history; ship a full snapshot frame", i)
		}
		if len(ds.Prev) != len(ds.Clones) || len(ds.KLPrev) != len(ds.Clones) {
			return fmt.Errorf("wire: detector %d history shape does not match its %d clones", i, len(ds.Clones))
		}
		for c, prev := range ds.Prev {
			if len(prev) != len(ds.Clones[c].Counts) {
				return fmt.Errorf("wire: detector %d clone %d reference length %d does not match %d bins",
					i, c, len(prev), len(ds.Clones[c].Counts))
			}
			for _, n := range prev {
				if n != 0 {
					return fmt.Errorf("wire: detector %d carries a reference interval; ship a full snapshot frame", i)
				}
			}
		}
		for _, kl := range ds.KLPrev {
			if kl != 0 {
				return fmt.Errorf("wire: detector %d carries a KL history; ship a full snapshot frame", i)
			}
		}
	}
	return nil
}

// appendOpenInterval appends the lean body: per detector the clone
// histograms only, then the buffered flows.
func appendOpenInterval(b []byte, oi core.OpenInterval) []byte {
	b = appendUvarint(b, uint64(len(oi.Clones)))
	for _, clones := range oi.Clones {
		b = appendUvarint(b, uint64(len(clones)))
		for _, hs := range clones {
			b = appendHistogram(b, hs)
		}
	}
	return appendRecordSection(b, &oi.Buffer)
}

// decodeOpenIntervalBody parses a lean body into the drained
// open-interval form the collector absorbs additively.
func decodeOpenIntervalBody(r *reader) core.OpenInterval {
	var oi core.OpenInterval
	oi.Clones = make([][]histogram.Snapshot, r.length(8))
	for i := range oi.Clones {
		clones := make([]histogram.Snapshot, r.length(3))
		for c := range clones {
			clones[c] = decodeHistogram(r)
		}
		oi.Clones[i] = clones
	}
	oi.Buffer = decodeRecordSection(r)
	return oi
}

// openIntervalOf projects a history-free pipeline snapshot onto the
// lean form. Callers must have checked openIntervalOnly.
func openIntervalOf(s core.PipelineSnapshot) core.OpenInterval {
	oi := core.OpenInterval{
		Clones: make([][]histogram.Snapshot, len(s.Bank.Detectors)),
		Buffer: s.Buffer,
	}
	for i, ds := range s.Bank.Detectors {
		oi.Clones[i] = ds.Clones
	}
	return oi
}

// expandOpenInterval reconstructs the full snapshot shape from the lean
// form, with canonical empty history sized from the decoded clones (the
// bin count travels inside each histogram).
func expandOpenInterval(oi core.OpenInterval) core.PipelineSnapshot {
	var s core.PipelineSnapshot
	s.Bank.Detectors = make([]detector.Snapshot, len(oi.Clones))
	for i, clones := range oi.Clones {
		ds := detector.Snapshot{
			Clones: clones,
			Prev:   make([][]uint64, len(clones)),
			KLPrev: make([]float64, len(clones)),
		}
		for c := range clones {
			ds.Prev[c] = make([]uint64, len(clones[c].Counts))
		}
		s.Bank.Detectors[i] = ds
	}
	s.Buffer = oi.Buffer
	return s
}

// EncodeOpenIntervalSnapshot serializes a drained open interval in the
// lean form, prefixed with the codec version. It errors if the snapshot
// carries detection history (reference counts, KL series, closed
// intervals) — use EncodePipelineSnapshot for checkpoints.
func EncodeOpenIntervalSnapshot(s core.PipelineSnapshot) ([]byte, error) {
	if err := openIntervalOnly(s); err != nil {
		return nil, err
	}
	return appendOpenInterval([]byte{codecVersion}, openIntervalOf(s)), nil
}

// DecodeOpenIntervalSnapshot parses an EncodeOpenIntervalSnapshot
// payload into a full pipeline snapshot with canonical empty history.
// It rejects unknown codec versions, truncated input, and trailing
// bytes.
func DecodeOpenIntervalSnapshot(b []byte) (core.PipelineSnapshot, error) {
	r := &reader{buf: b}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		return core.PipelineSnapshot{}, fmt.Errorf("wire: unsupported codec version %d (want %d)", v, codecVersion)
	}
	oi := decodeOpenIntervalBody(r)
	r.expectEOF()
	return expandOpenInterval(oi), r.err()
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func decodeBool(r *reader) bool {
	switch b := r.byte(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %d", b)
		return false
	}
}
