package wire

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
)

func sectionRecords() []flow.Record {
	recs := make([]flow.Record, 200)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr:  uint32(i%13) + 0x0A000000,
			DstAddr:  uint32(i%7) + 0xC0A80000,
			SrcPort:  uint16(1024 + i%50),
			DstPort:  uint16([]int{80, 443, 445, 9100}[i%4]),
			Protocol: uint8(6 + i%2*11),
			TCPFlags: uint8(i % 3 * 16),
			Packets:  uint32(i%9) + 1,
			Bytes:    uint64(i%17)*40 + 40,
			Start:    int64(i) * 3,
			End:      int64(i)*3 + int64(i%5)*100,
		}
	}
	return recs
}

// decodeSection runs the columnar decoder over a full payload, expecting
// it to consume everything.
func decodeSection(b []byte) (flow.Buffer, error) {
	r := &reader{buf: b}
	buf := decodeRecordSection(r)
	r.expectEOF()
	return buf, r.err()
}

// TestRecordSectionRoundTrip: decode∘encode is the identity on the
// column codec, for a realistic batch, edge values, and the empty
// buffer.
func TestRecordSectionRoundTrip(t *testing.T) {
	for _, recs := range [][]flow.Record{
		sectionRecords(),
		{{SrcAddr: math.MaxUint32, DstAddr: 0, SrcPort: math.MaxUint16, DstPort: 0,
			Protocol: 255, TCPFlags: 255, Packets: math.MaxUint32, Bytes: math.MaxUint64,
			Start: math.MinInt64, End: math.MaxInt64}},
		nil,
	} {
		buf := flow.BufferOf(recs)
		enc := appendRecordSection(nil, &buf)
		dec, err := decodeSection(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec, buf) {
			t.Fatalf("decoded buffer differs:\n got %+v\nwant %+v", dec, buf)
		}
		if re := appendRecordSection(nil, &dec); !bytes.Equal(re, enc) {
			t.Fatal("re-encoding the decoded buffer changed the bytes")
		}
	}
}

// overflowSection builds a one-row record section whose SrcPort
// dictionary carries the value v — the regression payload: the row-wise
// codec this replaced accepted v = 0x1FFFF and silently truncated it to
// 65535.
func overflowSection(v uint64) []byte {
	b := appendUvarint(nil, 1) // one row
	for i := 0; i < 2; i++ {   // SrcAddr, DstAddr: single-value dicts
		b = appendUvarint(b, 1)
		b = appendUvarint(b, 9)
	}
	b = appendUvarint(b, 1) // SrcPort dictionary: one entry, the probe value
	b = appendUvarint(b, v)
	b = appendUvarint(b, 1) // DstPort
	b = appendUvarint(b, 4)
	b = append(b, 6, 0)     // Protocol, TCPFlags
	b = appendUvarint(b, 1) // Packets
	b = appendUvarint(b, 40)
	b = appendVarint(b, 0)
	return appendVarint(b, 0)
}

// TestDecodeRejectsRangeOverflow is the failing-first regression for the
// silent-truncation bug: a minimally-encoded varint overflowing its
// field's range must fail with a positioned error naming the field, not
// decode to a truncated value.
func TestDecodeRejectsRangeOverflow(t *testing.T) {
	if _, err := decodeSection(overflowSection(7)); err != nil {
		t.Fatalf("in-range payload rejected: %v", err)
	}
	_, err := decodeSection(overflowSection(0x1FFFF))
	if err == nil {
		t.Fatal("SrcPort 0x1FFFF accepted; the decoder must range-check, not truncate")
	}
	for _, want := range []string{"SrcPort", "overflows", "at byte"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("overflow error %q does not mention %q", err, want)
		}
	}

	// The overflow must also surface through the public snapshot decoder
	// (an empty bank section is a zero detector count).
	payload := append([]byte{codecVersion, 0}, overflowSection(0x1FFFF)...)
	if _, err := DecodePipelineSnapshot(payload); err == nil ||
		!strings.Contains(err.Error(), "SrcPort") {
		t.Fatalf("public decode of overflow payload: %v", err)
	}

	// Packets is a per-row uvarint with the same uint32 range rule.
	b := appendUvarint(nil, 1)
	for i := 0; i < 4; i++ { // single-value dictionaries for the four keys
		b = appendUvarint(b, 1)
		b = appendUvarint(b, 1)
	}
	b = append(b, 6, 0)                    // Protocol, TCPFlags
	b = appendUvarint(b, math.MaxUint32+1) // Packets overflows uint32
	b = appendUvarint(b, 40)
	b = appendVarint(b, 0)
	b = appendVarint(b, 0)
	if _, err := decodeSection(b); err == nil || !strings.Contains(err.Error(), "Packets") {
		t.Fatalf("Packets overflow: %v", err)
	}
}

// TestDecodeRejectsNonCanonicalDictionaries: byte forms the encoder
// cannot produce — oversized or empty dictionaries, out-of-range
// indices, unused entries, gap overflows — are refused, keeping
// decode∘encode the identity on accepted inputs.
func TestDecodeRejectsNonCanonicalDictionaries(t *testing.T) {
	// section builds a full record section for `rows` rows whose SrcAddr
	// column is the given raw bytes; every later column is canonical, so
	// the decode outcome isolates the SrcAddr dictionary under test. (The
	// tail must be present either way: the decoder bounds the row count
	// by the remaining input before touching any column.)
	section := func(rows int, srcAddr []byte) []byte {
		b := appendUvarint(nil, uint64(rows))
		b = append(b, srcAddr...)
		for i := 0; i < 3; i++ { // DstAddr, SrcPort, DstPort: single-value dicts
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 1)
		}
		for i := 0; i < rows; i++ {
			b = append(b, 6) // Protocol
		}
		for i := 0; i < rows; i++ {
			b = append(b, 0) // TCPFlags
		}
		for i := 0; i < rows; i++ {
			b = appendUvarint(b, 1) // Packets
		}
		for i := 0; i < rows; i++ {
			b = appendUvarint(b, 40) // Bytes
		}
		for i := 0; i < 2*rows; i++ {
			b = appendVarint(b, 0) // Start deltas, then End durations
		}
		return b
	}
	uv := func(vs ...uint64) []byte {
		var b []byte
		for _, v := range vs {
			b = appendUvarint(b, v)
		}
		return b
	}
	if _, err := decodeSection(section(2, uv(2, 5, 3, 0, 1))); err != nil {
		t.Fatalf("canonical baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		// 2 dictionary entries for 1 row.
		{"dict larger than rows", section(1, uv(2, 5, 3, 0)), "dictionary size"},
		{"empty dict", section(1, uv(0)), "dictionary size"},
		// Both rows use entry 0; entry 1 ({5,9} via gap) is never referenced.
		{"unused entry", section(2, uv(2, 5, 3, 0, 0)), "unused"},
		// Only entries 0 and 1 exist.
		{"index out of range", section(2, uv(2, 5, 3, 0, 2)), "out of dictionary range"},
		// First entry at the uint32 ceiling: any successor overflows.
		{"gap overflow", section(2, uv(2, math.MaxUint32, 0, 0, 1)), "overflows"},
	}
	for _, tc := range cases {
		_, err := decodeSection(tc.payload)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestRecordSectionCompression pins the tentpole's size win on
// paper-shaped traffic: the columnar record section is at least 1.5×
// smaller than the row-wise encoding it replaced.
func TestRecordSectionCompression(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = 1
	cfg.BaseFlows = 6000
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	recs := tracegen.New(cfg).Interval(0)
	buf := flow.BufferOf(recs)
	col := len(appendRecordSection(nil, &buf))
	row := 0
	for i := range recs {
		row += len(appendRowRecord(nil, &recs[i]))
	}
	t.Logf("record section: %d rows, row-wise %d B (%.1f B/flow), columnar %d B (%.1f B/flow), ratio %.2fx",
		len(recs), row, float64(row)/float64(len(recs)), col, float64(col)/float64(len(recs)),
		float64(row)/float64(col))
	if float64(row) < 1.5*float64(col) {
		t.Fatalf("columnar section %d B not >=1.5x smaller than row-wise %d B", col, row)
	}
}

// appendRowRecord is the retired row-wise record encoding, kept in the
// tests as the size baseline TestRecordSectionCompression measures
// against.
func appendRowRecord(b []byte, rec *flow.Record) []byte {
	b = appendUvarint(b, uint64(rec.SrcAddr))
	b = appendUvarint(b, uint64(rec.DstAddr))
	b = appendUvarint(b, uint64(rec.SrcPort))
	b = appendUvarint(b, uint64(rec.DstPort))
	b = append(b, rec.Protocol, rec.TCPFlags)
	b = appendUvarint(b, uint64(rec.Packets))
	b = appendUvarint(b, rec.Bytes)
	b = appendVarint(b, rec.Start)
	return appendVarint(b, rec.End)
}

// FuzzColumnarRecords fuzzes the columnar record-section decoder with
// the codec's core invariant: any byte string the decoder accepts must
// re-encode to exactly the same bytes (decode∘encode identity), and the
// decoded buffer must be internally consistent (equal column lengths).
func FuzzColumnarRecords(f *testing.F) {
	empty := flow.Buffer{}
	f.Add(appendRecordSection(nil, &empty))
	few := flow.BufferOf(sectionRecords()[:5])
	f.Add(appendRecordSection(nil, &few))
	many := flow.BufferOf(sectionRecords())
	f.Add(appendRecordSection(nil, &many))
	f.Add(overflowSection(0x1FFFF)) // the truncation-bug payload: must stay rejected
	f.Add(overflowSection(65535))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf, err := decodeSection(data)
		if err != nil {
			return
		}
		n := buf.Len()
		for _, l := range []int{len(buf.DstAddr), len(buf.SrcPort), len(buf.DstPort),
			len(buf.Protocol), len(buf.TCPFlags), len(buf.Packets), len(buf.Bytes),
			len(buf.Start), len(buf.End)} {
			if l != n {
				t.Fatalf("decoded buffer has ragged columns: %d vs %d", l, n)
			}
		}
		if re := appendRecordSection(nil, &buf); !bytes.Equal(re, data) {
			t.Fatalf("accepted input re-encodes differently:\n in  %x\n out %x", data, re)
		}
	})
}
