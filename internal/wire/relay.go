package wire

import (
	"context"
	"fmt"
	"net"
	"os"
	"slices"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/wire/metrics"
)

// Hierarchical federation. Because equal-seed histogram clones are
// exact mergeable sketches, absorbing open intervals is associative and
// commutative in the histogram domain (per-bin counter addition) while
// the flow buffers concatenate in absorb order. A relay node therefore
// runs a Collector facing its children and an Agent facing its parent:
// each boundary it absorbs its children's frames in child-ID order,
// drains the merged open interval, and ships it upstream as one
// frameRelayInterval. As long as every tier absorbs in ascending global
// leaf order — which the LeafBase numbering guarantees for contiguous
// trees — the root's reports are byte-identical to a flat deployment of
// the same leaves, and to a single process running them as local
// shards. Only the root owns detection history and emits reports.
//
// The ordering rule that makes a relay crash-safe: a child's frame is
// acked only after the merged frame containing it is acked by the
// parent, or durably written to the relay's checkpoint. Until then the
// boundary survives in either the children's replay buffers or the
// relay checkpoint's held frames, so no tier of the tree can lose or
// duplicate a boundary.

// maxLeafSpan bounds a relay frame's declared leaf span (1M leaves);
// anything larger is treated as stream corruption, keeping a malformed
// header from inflating Partial attribution or overflowing arithmetic.
const maxLeafSpan = 1 << 20

// appendRelayHeader encodes the relay-frame header that follows the
// boundary and codec version: uvarint spanLo, uvarint spanLen (≥ 1),
// then the missing-leaf list as a uvarint count and strictly ascending
// uvarint global leaf IDs, each within [spanLo, spanLo+spanLen).
func appendRelayHeader(b []byte, spanLo, spanLen int, missing []int) []byte {
	b = appendUvarint(b, uint64(spanLo))
	b = appendUvarint(b, uint64(spanLen))
	b = appendUvarint(b, uint64(len(missing)))
	for _, id := range missing {
		b = appendUvarint(b, uint64(id))
	}
	return b
}

// decodeRelayHeader parses and validates a relay-frame header.
func decodeRelayHeader(r *reader) (spanLo, spanLen int, missing []int) {
	lo := r.uvarint()
	n := r.uvarint()
	if r.err() == nil && (n < 1 || lo > maxLeafSpan || n > maxLeafSpan) {
		r.fail("relay leaf span [%d,%d+%d) out of range", lo, lo, n)
		return 0, 0, nil
	}
	spanLo, spanLen = int(lo), int(n)
	count := r.length(1)
	if r.err() == nil && count > spanLen {
		r.fail("relay missing-leaf count %d exceeds span length %d", count, spanLen)
		return 0, 0, nil
	}
	prev := -1
	for i := 0; i < count; i++ {
		id := r.uvarint()
		if r.err() != nil {
			return 0, 0, nil
		}
		if id < uint64(spanLo) || id >= uint64(spanLo+spanLen) || int(id) <= prev {
			r.fail("relay missing leaf %d not ascending within span [%d,%d)", id, spanLo, spanLo+spanLen)
			return 0, 0, nil
		}
		prev = int(id)
		missing = append(missing, int(id))
	}
	return spanLo, spanLen, missing
}

// decodeIntervalPayload parses the payload of one interval-bearing
// frame (frameSnapshot, frameOpenInterval, or frameRelayInterval) into
// the queued form the merge loop absorbs. In forward mode (a relay's
// child-facing collector) a full snapshot is accepted only when it is
// history-free, and is converted to the lean open-interval form — a
// relay never closes detection, so it has nowhere to put history.
func decodeIntervalPayload(typ byte, payload []byte, forward bool) (queuedFrame, error) {
	rd := &reader{buf: payload}
	boundary := rd.varint()
	if v := rd.byte(); rd.err() == nil && v != codecVersion {
		rd.fail("unsupported codec version %d (want %d)", v, codecVersion)
	}
	frame := queuedFrame{boundary: boundary}
	switch typ {
	case frameOpenInterval:
		oi := decodeOpenIntervalBody(rd)
		frame.oi = &oi
	case frameRelayInterval:
		frame.spanLo, frame.spanLen, frame.missing = decodeRelayHeader(rd)
		oi := decodeOpenIntervalBody(rd)
		frame.oi = &oi
	default: // frameSnapshot
		snap := decodePipelineBody(rd)
		if forward {
			if rd.err() == nil {
				if err := openIntervalOnly(snap); err != nil {
					return queuedFrame{}, err
				}
				oi := openIntervalOf(snap)
				frame.oi = &oi
			}
		} else {
			frame.snap = &snap
		}
	}
	rd.expectEOF()
	if rd.err() == nil && boundary <= 0 {
		rd.fail("non-positive snapshot boundary %d", boundary)
	}
	if rd.err() != nil {
		return queuedFrame{}, rd.err()
	}
	return frame, nil
}

// appendRelayPayload encodes a complete frameRelayInterval payload —
// what ship produces from the same parts. It exists so the fuzz target
// can assert decode∘encode is the identity on accepted payloads.
func appendRelayPayload(b []byte, boundary int64, spanLo, spanLen int, missing []int, oi core.OpenInterval) []byte {
	b = appendVarint(b, boundary)
	b = append(b, codecVersion)
	b = appendRelayHeader(b, spanLo, spanLen, missing)
	return appendOpenInterval(b, oi)
}

// relayCheckpointMagic starts every relay checkpoint file, distinct
// from the collector's so the two cannot be confused by a bad path.
var relayCheckpointMagic = [4]byte{'A', 'X', 'R', 'P'}

// relayCheckpoint is a relay's durable state: the merge counters and
// per-child table (as in a collector checkpoint, but with no pipeline
// snapshot — a relay's primary is fully drained at every close), plus
// the shipped-but-unacked upstream frames, re-offered on restart. A
// relay checkpoints after shipping each merged frame and before acking
// its children, so a crash between ship and upstream ack loses nothing.
type relayCheckpoint struct {
	lastClosed int64
	emitted    int64
	absorbed   []int64       // per-child absorbed boundary, indexed by local ID
	statuses   []agentStatus // per-child status at checkpoint time
	held       []replayEntry // upstream frames not yet acked, boundary ascending
}

// appendRelayCheckpoint encodes a relay checkpoint.
func appendRelayCheckpoint(b []byte, c relayCheckpoint) []byte {
	b = append(b, relayCheckpointMagic[:]...)
	b = append(b, codecVersion)
	b = appendVarint(b, c.lastClosed)
	b = appendVarint(b, c.emitted)
	b = appendUvarint(b, uint64(len(c.absorbed)))
	for i := range c.absorbed {
		b = appendVarint(b, c.absorbed[i])
		b = append(b, byte(c.statuses[i]))
	}
	b = appendUvarint(b, uint64(len(c.held)))
	for _, e := range c.held {
		b = append(b, e.typ)
		b = appendVarint(b, e.boundary)
		b = appendUvarint(b, uint64(len(e.payload)))
		b = append(b, e.payload...)
	}
	return b
}

// decodeRelayCheckpoint parses a relay checkpoint file's contents.
func decodeRelayCheckpoint(payload []byte) (relayCheckpoint, error) {
	r := &reader{buf: payload}
	var magic [4]byte
	for i := range magic {
		magic[i] = r.byte()
	}
	if r.err() == nil && magic != relayCheckpointMagic {
		return relayCheckpoint{}, fmt.Errorf("wire: bad relay checkpoint magic %q", magic[:])
	}
	if v := r.byte(); r.err() == nil && v != codecVersion {
		r.fail("unsupported relay checkpoint codec version %d (want %d)", v, codecVersion)
	}
	var c relayCheckpoint
	c.lastClosed = r.varint()
	c.emitted = r.varint()
	n := r.length(2)
	c.absorbed = make([]int64, n)
	c.statuses = make([]agentStatus, n)
	for i := 0; i < n; i++ {
		c.absorbed[i] = r.varint()
		s := agentStatus(r.byte())
		if r.err() == nil && s > statusBye {
			r.fail("invalid agent status %d", s)
		}
		c.statuses[i] = s
	}
	held := r.length(3)
	prev := int64(0)
	for i := 0; i < held; i++ {
		var e replayEntry
		e.typ = r.byte()
		if r.err() == nil && e.typ != frameSnapshot && e.typ != frameOpenInterval && e.typ != frameRelayInterval {
			r.fail("held frame %d has non-interval type %d", i, e.typ)
		}
		e.boundary = r.varint()
		if r.err() == nil && e.boundary <= prev {
			r.fail("held frame boundary %d not after %d", e.boundary, prev)
		}
		prev = e.boundary
		e.payload = r.bytes(r.length(1))
		if e.payload == nil {
			e.payload = []byte{}
		}
		c.held = append(c.held, e)
	}
	r.expectEOF()
	if r.err() != nil {
		return relayCheckpoint{}, r.err()
	}
	return c, nil
}

// writeRelayCheckpointFile atomically replaces path with the encoded
// relay checkpoint (temp + rename, as writeCheckpointFile).
func writeRelayCheckpointFile(path string, c relayCheckpoint) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, appendRelayCheckpoint(nil, c), 0o644); err != nil {
		return fmt.Errorf("wire: writing relay checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wire: committing relay checkpoint: %w", err)
	}
	return nil
}

// loadRelayCheckpointFile reads and decodes the relay checkpoint at
// path.
func loadRelayCheckpointFile(path string) (relayCheckpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return relayCheckpoint{}, fmt.Errorf("wire: reading relay checkpoint: %w", err)
	}
	return decodeRelayCheckpoint(b)
}

// forwarder is a collector's forward mode: instead of closing detection
// and emitting reports, every closed boundary is drained and shipped
// upstream through agent. Non-nil fwd switches the merge loop's close
// path; see closeBoundaryForward.
type forwarder struct {
	agent           *Agent
	spanLo, spanLen int
	ckptPath        string
	restored        *relayCheckpoint
}

// RelayConfig parameterizes a relay node: its child-facing collector
// session and its parent-facing agent stream.
type RelayConfig struct {
	// Children is the relay's fan-in; child agent IDs are local,
	// in [0, Children).
	Children int
	// AgentID is the relay's own ID on its parent, in [0, parent fan-in).
	AgentID int
	// Parent is the parent collector's (or parent relay's) address.
	Parent string
	// LeafBase is the first global leaf ID of this relay's span; the
	// relay's children cover [LeafBase, LeafBase+Children). 0 derives
	// AgentID·Children — the natural numbering for a balanced tree,
	// which makes the root's absorb order identical to a flat
	// deployment's. Set it explicitly for irregular trees.
	LeafBase int
	// Policy selects the partial-interval behavior for the child-facing
	// session; see PartialPolicy.
	Policy PartialPolicy
	// HoldTimeout bounds HoldWithTimeout waits, as in CollectorConfig.
	HoldTimeout time.Duration
	// CheckpointPath, when non-empty, makes the relay write its durable
	// state there after shipping each merged frame and before acking its
	// children — children are then settled immediately instead of
	// waiting for the upstream ack.
	CheckpointPath string
	// Resume makes Serve rehydrate from CheckpointPath before accepting
	// children: merge counters, per-child dedup lines, and the held
	// upstream frames continue where the checkpointed relay stopped.
	Resume bool
	// MetricsAddr, when non-empty, serves the relay's expvar metrics
	// over HTTP on that address for the lifetime of Serve.
	MetricsAddr string
	// Retry is the upstream redial policy; see RetryConfig.
	Retry RetryConfig
	// ReplayBuffer bounds the upstream replay buffer, as in
	// AgentOptions.
	ReplayBuffer int
	// Dialer overrides the upstream dial (tests move the parent between
	// listeners); nil dials Parent over TCP.
	Dialer func() (net.Conn, error)

	// queueCap tunes the child-facing ingest credits, as in
	// CollectorConfig. Unexported: tests set it.
	queueCap int
}

// Relay is a mid-tier federation node: a Collector facing its children
// and an Agent facing its parent. It absorbs each child boundary via
// the same merge path a root collector uses, but instead of closing
// detection it drains the merged open interval and ships it upstream —
// the parent (ultimately the root) owns all detection state. Both faces
// reuse the v3 ack/replay/redial machinery, with the relay's ack to a
// child gated on the upstream ack of the merged frame (or on a durable
// relay checkpoint), so no boundary is lost to a relay crash.
type Relay struct {
	c  *Collector
	rc RelayConfig
}

// NewRelay builds a relay node. cfg must be the same pipeline
// configuration the whole tree runs; its digest is checked on both
// faces' handshakes.
func NewRelay(cfg core.Config, rc RelayConfig) (*Relay, error) {
	if rc.Children < 1 {
		return nil, fmt.Errorf("wire: relay needs at least 1 child, got %d", rc.Children)
	}
	if rc.AgentID < 0 {
		return nil, fmt.Errorf("wire: negative relay agent ID %d", rc.AgentID)
	}
	if rc.Parent == "" && rc.Dialer == nil {
		return nil, fmt.Errorf("wire: relay needs a parent address")
	}
	if rc.Resume && rc.CheckpointPath == "" {
		return nil, fmt.Errorf("wire: Resume requires CheckpointPath")
	}
	if rc.LeafBase == 0 {
		rc.LeafBase = rc.AgentID * rc.Children
	}
	if rc.LeafBase+rc.Children > maxLeafSpan {
		return nil, fmt.Errorf("wire: relay leaf span [%d,%d) exceeds %d",
			rc.LeafBase, rc.LeafBase+rc.Children, maxLeafSpan)
	}
	c, err := NewCollector(cfg, CollectorConfig{
		Agents:      rc.Children,
		Policy:      rc.Policy,
		HoldTimeout: rc.HoldTimeout,
		MetricsAddr: rc.MetricsAddr,
		queueCap:    rc.queueCap,
	})
	if err != nil {
		return nil, err
	}
	dialer := rc.Dialer
	if dialer == nil {
		addr := rc.Parent
		dialer = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	up := newAgent(rc.AgentID, cfg, AgentOptions{
		Retry:        rc.Retry,
		ReplayBuffer: rc.ReplayBuffer,
		Dialer:       dialer,
	}.withDefaults())
	c.fwd = &forwarder{
		agent:    up,
		spanLo:   rc.LeafBase,
		spanLen:  rc.Children,
		ckptPath: rc.CheckpointPath,
	}
	if rc.Resume {
		cp, err := loadRelayCheckpointFile(rc.CheckpointPath)
		if err != nil {
			c.Close()
			return nil, err
		}
		if len(cp.absorbed) != rc.Children {
			c.Close()
			return nil, fmt.Errorf("wire: relay checkpoint has %d children, relay configured for %d",
				len(cp.absorbed), rc.Children)
		}
		up.preloadReplay(cp.held)
		c.fwd.restored = &cp
	}
	return &Relay{c: c, rc: rc}, nil
}

// Metrics returns the relay's metrics surface: the child-facing session
// counters plus the relay's frames_relayed/frames_held.
func (r *Relay) Metrics() *metrics.Session { return r.c.met }

// Serve runs the relay on ln until every child has ended or been
// abandoned: dial the parent (failing fast on a rejected handshake,
// e.g. a config-digest mismatch), run the child-facing session with
// every closed boundary forwarded upstream, then end the upstream
// stream cleanly with Bye. On a session error the upstream connection
// is severed without Bye, so the parent keeps the relay resumable.
func (r *Relay) Serve(ctx context.Context, ln net.Listener) error {
	up := r.c.fwd.agent
	if err := up.connect(); err != nil {
		ln.Close()
		return err
	}
	if err := r.c.Serve(ctx, ln, nil); err != nil {
		up.abort()
		return err
	}
	return up.Close()
}

// Close releases the relay's pipelines and severs any upstream
// connection that Serve left (it must not be called while Serve runs).
func (r *Relay) Close() {
	r.c.fwd.agent.abort()
	r.c.Close()
}

// restoreForward rehydrates the child-facing session from a relay
// checkpoint: merge counters and the per-child table, with no pipeline
// restore — the relay's primary is empty between boundaries by
// construction.
func (c *Collector) restoreForward(s *session, cp *relayCheckpoint) {
	s.lastClosed = cp.lastClosed
	s.emitted = cp.emitted
	// Children were settled through lastClosed when the checkpoint was
	// written (checkpointed relays ack immediately after the write).
	s.acked = cp.lastClosed
	for id, st := range s.ag {
		st.absorbed = cp.absorbed[id]
		st.emittedAtAbsorb = cp.emitted
		switch cp.statuses[id] {
		case statusBye:
			st.status = statusBye
		case statusDead:
			st.status = statusDead
		default:
			st.status = statusDown
		}
		c.met.Agent(id).SetStatus(st.status.metricsName())
	}
	c.met.SetLastClosed(s.lastClosed)
	c.met.SetFramesHeld(int64(c.fwd.agent.unackedFrames()))
}

// watchUpstreamAcks runs beside a forwarding merge loop, turning the
// upstream agent's ack progress into merge events: the merge loop
// settles children (ack-after-upstream) and updates the held-frames
// gauge. It exits when the upstream stream ends or the session does.
func (c *Collector) watchUpstreamAcks(s *session) {
	var last int64
	for {
		line, ok := c.fwd.agent.waitAckedAbove(last)
		if !ok {
			return
		}
		last = line
		select {
		case s.events <- event{kind: evUpstreamAck, boundary: line}:
		case <-s.done:
			return
		}
	}
}

// closeBoundaryForward is the forward-mode close path: absorb every
// child's frame for boundary b in child-ID order, compute the global
// missing-leaf list (expanding silent child relays to their spans),
// drain the merged open interval, ship it upstream, checkpoint when
// configured, and settle the children — immediately after a durable
// checkpoint, otherwise only up to the upstream ack line.
func (c *Collector) closeBoundaryForward(s *session, b int64) error {
	var frameMissing []int
	for id, st := range s.ag {
		if len(st.queue) == 0 || st.queue[0].boundary != b {
			continue
		}
		fr := st.queue[0]
		if err := c.primary.AbsorbOpenInterval(*fr.oi); err != nil {
			return fmt.Errorf("wire: absorbing child %d: %w", id, err)
		}
		frameMissing = append(frameMissing, fr.missing...)
		st.queue[0] = queuedFrame{}
		st.queue = st.queue[1:]
		st.absorbed = b
		st.emittedAtAbsorb = s.emitted + 1
		st.refund()
		c.met.Agent(id).SetQueueDepth(int64(len(st.queue)))
	}
	missing := s.missingFor(b, frameMissing, c.fwd.spanLo)
	oi := c.primary.DrainOpenInterval()
	shipped, err := c.fwd.agent.shipRelayInterval(b, c.fwd.spanLo, c.fwd.spanLen, missing, oi)
	if err != nil {
		return fmt.Errorf("wire: forwarding boundary %d: %w", b, err)
	}
	s.lastClosed = b
	s.emitted++
	c.met.SetLastClosed(b)
	c.met.IncEmitted()
	if shipped {
		c.met.IncFramesRelayed()
	}
	c.met.SetFramesHeld(int64(c.fwd.agent.unackedFrames()))
	for id, st := range s.ag {
		c.met.Agent(id).SetLag(s.emitted - st.emittedAtAbsorb)
	}
	if c.fwd.ckptPath != "" {
		if err := c.writeRelayCheckpoint(s); err != nil {
			return err
		}
		s.acked = b
	} else {
		s.acked = min(c.fwd.agent.Acked(), b)
	}
	c.ackChildren(s)
	return nil
}

// missingFor computes the global leaf IDs boundary b closes without:
// the IDs carried by child relay frames, plus every disconnected child
// with nothing queued and nothing absorbed for b — expanded to its leaf
// span when the child is itself a relay, mapped through spanLo when it
// is a direct child of a relay, or reported as its own ID at the root.
// The result is sorted and deduplicated; nil when complete.
func (s *session) missingFor(b int64, frameMissing []int, spanLo int) []int {
	missing := frameMissing
	for id, st := range s.ag {
		if (st.status != statusDown && st.status != statusDead) || len(st.queue) > 0 || st.absorbed >= b {
			continue
		}
		if st.spanLen > 0 {
			for leaf := st.spanLo; leaf < st.spanLo+st.spanLen; leaf++ {
				missing = append(missing, leaf)
			}
		} else {
			missing = append(missing, spanLo+id)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	slices.Sort(missing)
	return slices.Compact(missing)
}

// ackChildren pushes the session's settled line (s.acked) to every
// connected child — cumulative, so late children catch up on their next
// ack.
func (c *Collector) ackChildren(s *session) {
	if s.acked <= 0 {
		return
	}
	for id, st := range s.ag {
		if st.ackCh != nil {
			pushLatest(st.ackCh, s.acked)
			c.met.Agent(id).SetLastAcked(s.acked)
		}
	}
}

// writeRelayCheckpoint persists the relay's durable state.
func (c *Collector) writeRelayCheckpoint(s *session) error {
	cp := relayCheckpoint{
		lastClosed: s.lastClosed,
		emitted:    s.emitted,
		absorbed:   make([]int64, len(s.ag)),
		statuses:   make([]agentStatus, len(s.ag)),
		held:       c.fwd.agent.replayState(),
	}
	for id, st := range s.ag {
		cp.absorbed[id] = st.absorbed
		cp.statuses[id] = st.status
	}
	return writeRelayCheckpointFile(c.fwd.ckptPath, cp)
}
