package wire_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anomalyx/internal/core"
	"anomalyx/internal/shard"
	"anomalyx/internal/wire"
)

// TestRelayTierCutsByteIdentical extends the chaosProxy fault injection
// to both tiers of a 2×2 relay tree: leaf 0's connection to its relay
// and relay 1's connection to the root are each cut at scripted frame
// positions mid-stream. Every tier redials and replays, and the root's
// report stream must still be byte-identical to an undisturbed
// single-process 4-shard run, with no interval flagged Partial.
func TestRelayTierCutsByteIdentical(t *testing.T) {
	trace := testTrace(10, 2000, 7)
	cfg := testPipelineConfig()

	ref, err := shard.New(shard.Config{Shards: 4, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	alarmed := false
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
		alarmed = alarmed || rep.Alarm
	}
	ref.Close()
	if !alarmed {
		t.Fatal("reference run never alarmed; the test would not cover extraction")
	}
	parts := partition(t, trace, 4, cfg)

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v; no leaf was abandoned", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	// Relay 1 reaches the root only through a proxy that cuts its first
	// connection after the Hello plus one merged frame and its second a
	// few frames later.
	upProxy := newChaosProxy(t, rootLn.Addr().String(), []int{2, 5})
	defer upProxy.close()

	relayLns := make([]net.Listener, 2)
	relays := make([]*wire.Relay, 2)
	relayErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		parent := rootLn.Addr().String()
		if r == 1 {
			parent = upProxy.addr()
		}
		rel, err := wire.NewRelay(cfg, wire.RelayConfig{
			Children: 2,
			AgentID:  r,
			Parent:   parent,
			Retry:    fastRetry(int64(20 + r)),
		})
		if err != nil {
			t.Fatal(err)
		}
		relayLns[r], relays[r] = ln, rel
		go func(rel *wire.Relay, ln net.Listener) {
			relayErr <- rel.Serve(context.Background(), ln)
		}(rel, ln)
	}

	// Leaf 0 reaches relay 0 through its own scripted proxy: cut right
	// after the Hello, then again two frames later.
	leafProxy := newChaosProxy(t, relayLns[0].Addr().String(), []int{1, 3})
	defer leafProxy.close()

	var wg sync.WaitGroup
	for leaf := 0; leaf < 4; leaf++ {
		r, c := leaf/2, leaf%2
		addr := relayLns[r].Addr().String()
		if leaf == 0 {
			addr = leafProxy.addr()
		}
		wg.Add(1)
		go func(addr string, c, leaf int) {
			defer wg.Done()
			runEngineAgent(t, addr, c, cfg, parts[leaf], wire.AgentOptions{Retry: fastRetry(int64(1 + leaf))})
		}(addr, c, leaf)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if err := <-relayErr; err != nil {
			t.Fatalf("relay: %v", err)
		}
	}
	for _, rel := range relays {
		rel.Close()
	}
	if err := <-rootErr; err != nil {
		t.Fatalf("root collector: %v", err)
	}

	if leafProxy.accepted() < 2 {
		t.Fatalf("leaf proxy saw %d connections; the child→relay cut never forced a redial", leafProxy.accepted())
	}
	if upProxy.accepted() < 2 {
		t.Fatalf("upstream proxy saw %d connections; the relay→root cut never forced a redial", upProxy.accepted())
	}
	if len(got) != len(want) {
		t.Fatalf("root closed %d intervals, reference closed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs from undisturbed run after relay-tier cuts:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
}

// TestRelayCrashResumeFromCheckpoint kills a checkpointed relay
// mid-session (context cancellation: the process-equivalent of SIGKILL
// once the upstream connection is severed without Bye) and starts a
// replacement relay from the checkpoint on a new listener. The leaves —
// held at a barrier so their replay buffers still cover everything past
// the relay's checkpoint — redial and resume, the replacement re-offers
// its checkpointed held frames, and the root's report stream must be
// byte-identical to an undisturbed run with no boundary lost or
// duplicated.
func TestRelayCrashResumeFromCheckpoint(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	parts := partition(t, trace, 2, cfg)
	const barrierAt = 4 // leaves pause after shipping this many intervals

	ref, err := shard.New(shard.Config{Shards: 2, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(trace))
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
	}
	ref.Close()

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			if len(rep.Partial) != 0 {
				t.Errorf("interval %d flagged Partial %v across the relay restart", rep.Interval, rep.Partial)
			}
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	cpPath := filepath.Join(t.TempDir(), "relay.ckpt")
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var relayAddr atomic.Value
	relayAddr.Store(lnA.Addr().String())
	leafDialer := func() (net.Conn, error) {
		return net.Dial("tcp", relayAddr.Load().(string))
	}

	relayA, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children:       2,
		AgentID:        0,
		Parent:         rootLn.Addr().String(),
		CheckpointPath: cpPath,
		Retry:          fastRetry(31),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	serveA := make(chan error, 1)
	go func() { serveA <- relayA.Serve(ctxA, lnA) }()

	// Leaves ship the first half and wait for the relay's checkpoint to
	// cover it (a checkpointed relay acks immediately after the durable
	// write, so the ack line is the checkpoint's watermark), then hold at
	// the barrier across the crash.
	atBarrier := make(chan struct{}, 2)
	resume := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			agent, err := wire.DialAgent(lnA.Addr().String(), id, cfg, wire.AgentOptions{
				Retry:  fastRetry(int64(10 + id)),
				Dialer: leafDialer,
			})
			if err != nil {
				t.Errorf("leaf %d: dial: %v", id, err)
				atBarrier <- struct{}{}
				return
			}
			shipIntervals(t, agent, cfg, parts[id], 0, barrierAt)
			for agent.Acked() < bnd(barrierAt-1) {
				time.Sleep(time.Millisecond)
			}
			atBarrier <- struct{}{}
			<-resume
			shipIntervals(t, agent, cfg, parts[id], barrierAt, len(trace))
			if err := agent.Close(); err != nil {
				t.Errorf("leaf %d: close: %v", id, err)
			}
		}(id)
	}
	<-atBarrier
	<-atBarrier
	cancelA()
	if err := <-serveA; !errors.Is(err, context.Canceled) {
		t.Fatalf("relay A exited with %v, want context.Canceled", err)
	}
	relayA.Close()

	// "Restart": a replacement relay resumes from the checkpoint on a new
	// address; the leaves' dialer follows it.
	relayB, err := wire.NewRelay(cfg, wire.RelayConfig{
		Children:       2,
		AgentID:        0,
		Parent:         rootLn.Addr().String(),
		CheckpointPath: cpPath,
		Resume:         true,
		Retry:          fastRetry(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	relayAddr.Store(lnB.Addr().String())
	serveB := make(chan error, 1)
	go func() { serveB <- relayB.Serve(context.Background(), lnB) }()
	close(resume)
	wg.Wait()
	if err := <-serveB; err != nil {
		t.Fatalf("restarted relay: %v", err)
	}
	relayB.Close()
	if err := <-rootErr; err != nil {
		t.Fatalf("root collector: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("crash+restart emitted %d reports, undisturbed run emitted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs across the relay restart:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}
	m := decodeMetrics(t, root)
	if m.Agents[0].Reconnects < 1 {
		t.Errorf("root saw %d relay reconnects, want >= 1", m.Agents[0].Reconnects)
	}
}

// TestRelayLeafDeathPartialNamesLeaf kills one leaf permanently
// mid-session in a 2×2 tree running CloseWithout at the relay tier: the
// root's reports must keep closing and their Partial attribution must
// name the dead leaf's global ID (3 — relay 1, child 1), not the relay
// it sat behind, matching a reference run that simply never saw that
// leaf's remaining partition.
func TestRelayLeafDeathPartialNamesLeaf(t *testing.T) {
	trace := testTrace(8, 2000, 6)
	cfg := testPipelineConfig()
	parts := partition(t, trace, 4, cfg)
	const deadFrom = 4 // leaf 3's last shipped interval is deadFrom-1

	single, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := make([]string, 0, len(trace))
	for i := range trace {
		for leaf := 0; leaf < 4; leaf++ {
			if leaf == 3 && i >= deadFrom {
				continue
			}
			single.ObserveBatch(parts[leaf][i])
		}
		rep, err := single.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if i >= deadFrom {
			rep.Partial = []int{3}
		}
		want = append(want, renderReport(rep))
	}

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root, err := wire.NewCollector(cfg, wire.CollectorConfig{Agents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	var got []string
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- root.Serve(context.Background(), rootLn, func(rep *core.Report) error {
			got = append(got, renderReport(rep))
			return nil
		})
	}()

	relayLns := make([]net.Listener, 2)
	relays := make([]*wire.Relay, 2)
	relayErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rel, err := wire.NewRelay(cfg, wire.RelayConfig{
			Children: 2,
			AgentID:  r,
			Parent:   rootLn.Addr().String(),
			Policy:   wire.CloseWithout,
		})
		if err != nil {
			t.Fatal(err)
		}
		relayLns[r], relays[r] = ln, rel
		go func(rel *wire.Relay, ln net.Listener) {
			relayErr <- rel.Serve(context.Background(), ln)
		}(rel, ln)
	}

	// Leaf 3 (relay 1, local child 1) ships its first intervals, then its
	// machine dies: the raw connection closes with no Bye.
	conn3, err := net.Dial("tcp", relayLns[1].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a3, err := wire.NewAgent(conn3, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipIntervals(t, a3, cfg, parts[3], 0, deadFrom)
	conn3.Close()

	// The surviving leaves run the whole trace and end cleanly. They must
	// run concurrently: a leaf's final ack is gated on the root closing
	// its boundaries, which needs frames from every relay at once.
	var wg sync.WaitGroup
	for leaf := 0; leaf < 3; leaf++ {
		r, c := leaf/2, leaf%2
		wg.Add(1)
		go func(addr string, c, leaf int) {
			defer wg.Done()
			a, err := wire.Dial(addr, c, cfg)
			if err != nil {
				t.Errorf("leaf %d: dial: %v", leaf, err)
				return
			}
			shipIntervals(t, a, cfg, parts[leaf], 0, len(trace))
			if err := a.Close(); err != nil {
				t.Errorf("leaf %d: close: %v", leaf, err)
			}
		}(relayLns[r].Addr().String(), c, leaf)
	}
	wg.Wait()

	for r := 0; r < 2; r++ {
		if err := <-relayErr; err != nil {
			t.Fatalf("relay: %v", err)
		}
	}
	for _, rel := range relays {
		rel.Close()
	}
	if err := <-rootErr; err != nil {
		t.Fatalf("root collector: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("root closed %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: report differs (Partial must name leaf 3):\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}
