package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Headers: []string{"name", "count"},
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta-long-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "count") {
		t.Errorf("header line %q", lines[1])
	}
	// Column alignment: "count" column starts at the same offset in all
	// data rows.
	idx := strings.Index(lines[1], "count")
	if got := strings.Index(lines[3], "1"); got < 0 {
		t.Fatalf("row line %q", lines[3])
	}
	if !strings.HasPrefix(lines[3], "alpha") {
		t.Errorf("row %q", lines[3])
	}
	_ = idx
}

func TestAddRowFormatsFloats(t *testing.T) {
	tbl := Table{Headers: []string{"v"}}
	tbl.AddRow(3.14159)
	tbl.AddRow(2.0)
	tbl.AddRow(1e-9)
	if tbl.Rows[0][0] != "3.142" {
		t.Errorf("float fmt %q", tbl.Rows[0][0])
	}
	if tbl.Rows[1][0] != "2" {
		t.Errorf("integral float fmt %q", tbl.Rows[1][0])
	}
	if !strings.Contains(tbl.Rows[2][0], "e-09") {
		t.Errorf("tiny float fmt %q", tbl.Rows[2][0])
	}
}

func TestFigureRendering(t *testing.T) {
	f := Figure{Title: "fig", XLabel: "x", YLabel: "y"}
	f.Add(Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}})
	f.Add(Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}})
	out := f.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("missing pieces:\n%s", out)
	}
	// Shared x-grid: two data rows.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "10") || !strings.Contains(lines[3], "30") {
		t.Errorf("row 1 missing y values: %q", lines[3])
	}
}

func TestFigureDisjointX(t *testing.T) {
	f := Figure{XLabel: "x"}
	f.Add(Series{Name: "a", X: []float64{1}, Y: []float64{5}})
	f.Add(Series{Name: "b", X: []float64{2}, Y: []float64{6}})
	out := f.String()
	// Union grid has both xs; missing cells are blank.
	if !strings.Contains(out, "5") || !strings.Contains(out, "6") {
		t.Errorf("missing values:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5:       "5",
		-3:      "-3",
		0.25:    "0.25",
		1e-7:    "1.000e-07",
		123456:  "123456",
		3.14159: "3.142",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
