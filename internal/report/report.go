// Package report renders experiment outputs — tables and data series —
// as aligned plain text, the format cmd/experiments prints and
// EXPERIMENTS.md records.
//
// Determinism: rendering preserves the caller's row and column order
// and adds nothing of its own (no maps, no clock), so output bytes are
// a pure function of the input.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named (x, y) data series — a figure line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// String renders the figure as aligned columns: x followed by one y
// column per series.
func (f Figure) String() string {
	t := Table{Title: f.Title + "  [x=" + f.XLabel + ", y=" + f.YLabel + "]"}
	t.Headers = append(t.Headers, f.XLabel)
	for _, s := range f.Series {
		t.Headers = append(t.Headers, s.Name)
	}
	// Collect the union of x values in first-seen order (series usually
	// share the grid).
	var xs []float64
	seen := map[float64]int{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if _, ok := seen[x]; !ok {
				seen[x] = len(xs)
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{FormatFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = FormatFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String()
}

// FormatFloat renders floats compactly: integers without decimals,
// small values in scientific notation.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v < 0.001 && v > -0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
