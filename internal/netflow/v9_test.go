package netflow

import (
	"errors"
	"testing"
	"testing/quick"

	"anomalyx/internal/flow"
)

func v9SampleFlows() []flow.Record {
	const bootMs = int64(1700000000000)
	return []flow.Record{
		{
			SrcAddr: 0x82380a0b, DstAddr: 0x08080808,
			SrcPort: 51515, DstPort: 80, Protocol: 6, TCPFlags: 0x1b,
			Packets: 10, Bytes: 1200,
			Start: bootMs + 1000, End: bootMs + 2500,
		},
		{
			SrcAddr: 1, DstAddr: 2, SrcPort: 53, DstPort: 53, Protocol: 17,
			Packets: 1, Bytes: 80,
			Start: bootMs + 50, End: bootMs + 51,
		},
	}
}

func TestV9RoundTrip(t *testing.T) {
	const bootMs = int64(1700000000000)
	recs := v9SampleFlows()
	enc := NewV9Encoder(bootMs, 42)
	pkt, err := enc.Encode(recs)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewV9Decoder()
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
	if dec.SkippedNoTemplate != 0 {
		t.Errorf("skipped %d despite inline template", dec.SkippedNoTemplate)
	}
}

func TestV9RoundTripProperty(t *testing.T) {
	const bootMs = int64(1700000000000)
	enc := NewV9Encoder(bootMs, 1)
	dec := NewV9Decoder()
	f := func(src, dst uint32, sp, dp uint16, proto, flags uint8, pkts, bytes uint32, startOff, dur uint16) bool {
		rec := flow.Record{
			SrcAddr: src, DstAddr: dst, SrcPort: sp, DstPort: dp,
			Protocol: proto, TCPFlags: flags, Packets: pkts, Bytes: uint64(bytes),
			Start: bootMs + int64(startOff), End: bootMs + int64(startOff) + int64(dur),
		}
		pkt, err := enc.Encode([]flow.Record{rec})
		if err != nil {
			return false
		}
		got, err := dec.Decode(pkt)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestV9DataBeforeTemplateSkipped(t *testing.T) {
	const bootMs = int64(1700000000000)
	recs := v9SampleFlows()
	pkt, err := NewV9Encoder(bootMs, 7).Encode(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the template flowset: header(20) + template set.
	tmplLen := int(uint16(pkt[22])<<8 | uint16(pkt[23]))
	stripped := append(append([]byte{}, pkt[:v9HeaderLen]...), pkt[v9HeaderLen+tmplLen:]...)

	dec := NewV9Decoder()
	got, err := dec.Decode(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d records without a template", len(got))
	}
	if dec.SkippedNoTemplate != 1 {
		t.Errorf("SkippedNoTemplate = %d", dec.SkippedNoTemplate)
	}

	// Once the full packet arrives, the cache is primed and the
	// template-less packet decodes.
	if _, err := dec.Decode(pkt); err != nil {
		t.Fatal(err)
	}
	got, err = dec.Decode(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Errorf("after template learned: %d records, want %d", len(got), len(recs))
	}
}

func TestV9TemplateCachePerSource(t *testing.T) {
	const bootMs = int64(1700000000000)
	recs := v9SampleFlows()
	pktA, _ := NewV9Encoder(bootMs, 1).Encode(recs)
	dec := NewV9Decoder()
	if _, err := dec.Decode(pktA); err != nil {
		t.Fatal(err)
	}
	// Same template id from a different source id must not match the
	// cached template: build a data-only packet with sourceID 2.
	tmplLen := int(uint16(pktA[22])<<8 | uint16(pktA[23]))
	dataOnly := append(append([]byte{}, pktA[:v9HeaderLen]...), pktA[v9HeaderLen+tmplLen:]...)
	dataOnly[16], dataOnly[17], dataOnly[18], dataOnly[19] = 0, 0, 0, 2
	got, err := dec.Decode(dataOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("template leaked across source ids")
	}
}

func TestV9DecodeErrors(t *testing.T) {
	dec := NewV9Decoder()
	if _, err := dec.Decode(make([]byte, 10)); !errors.Is(err, ErrV9Truncated) {
		t.Errorf("short packet: %v", err)
	}
	bad := make([]byte, 20)
	bad[1] = 5 // v5 version
	if _, err := dec.Decode(bad); !errors.Is(err, ErrV9BadVersion) {
		t.Errorf("wrong version: %v", err)
	}
	// Flowset length running past the packet.
	pkt, _ := NewV9Encoder(0, 1).Encode(v9SampleFlows())
	trunc := pkt[:len(pkt)-8]
	if _, err := NewV9Decoder().Decode(trunc); !errors.Is(err, ErrV9Truncated) {
		t.Errorf("truncated flowset: %v", err)
	}
}

func TestV9EncodeEmpty(t *testing.T) {
	if _, err := NewV9Encoder(0, 1).Encode(nil); err == nil {
		t.Error("empty packet accepted")
	}
}

func TestV9SequenceIncrements(t *testing.T) {
	enc := NewV9Encoder(0, 1)
	p1, _ := enc.Encode(v9SampleFlows()[:1])
	p2, _ := enc.Encode(v9SampleFlows()[:1])
	s1 := uint32(p1[12])<<24 | uint32(p1[13])<<16 | uint32(p1[14])<<8 | uint32(p1[15])
	s2 := uint32(p2[12])<<24 | uint32(p2[13])<<16 | uint32(p2[14])<<8 | uint32(p2[15])
	if s2 != s1+1 {
		t.Errorf("sequence %d then %d", s1, s2)
	}
}

func TestV9DecodeDoesNotPanicOnGarbage(t *testing.T) {
	dec := NewV9Decoder()
	f := func(raw []byte) bool {
		// Force a v9 version so parsing proceeds past the header.
		if len(raw) >= 2 {
			raw[0], raw[1] = 0, 9
		}
		_, _ = dec.Decode(raw) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBeUint(t *testing.T) {
	if beUint([]byte{0x12}) != 0x12 {
		t.Error("1 byte")
	}
	if beUint([]byte{0x12, 0x34}) != 0x1234 {
		t.Error("2 bytes")
	}
	if beUint([]byte{1, 2, 3, 4, 5, 6, 7, 8}) != 0x0102030405060708 {
		t.Error("8 bytes")
	}
}
