package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"anomalyx/internal/flow"
)

// NetFlow v9 (RFC 3954) is the template-based successor of v5 and the
// other export format commonly available on backbone routers of the
// paper's era. The codec here understands enough of v9 to interoperate
// with standard exporters for the fields the pipeline consumes: the
// 5-tuple, TCP flags, packet/byte counters, and flow timestamps.
// Templates are cached per (source ID, template ID) as the RFC requires;
// data flowsets arriving before their template are counted and skipped.

// V9Version is the version field value of v9 export packets.
const V9Version = 9

// v9HeaderLen is the 20-byte v9 packet header.
const v9HeaderLen = 20

// RFC 3954 field types used by this codec.
const (
	V9FieldInBytes   = 1
	V9FieldInPkts    = 2
	V9FieldProtocol  = 4
	V9FieldTCPFlags  = 6
	V9FieldL4SrcPort = 7
	V9FieldSrcAddr   = 8
	V9FieldL4DstPort = 11
	V9FieldDstAddr   = 12
	V9FieldLast      = 21 // LAST_SWITCHED, sysUptime ms
	V9FieldFirst     = 22 // FIRST_SWITCHED, sysUptime ms
)

// Errors of the v9 codec.
var (
	ErrV9BadVersion = errors.New("netflow: not a NetFlow v9 packet")
	ErrV9Truncated  = errors.New("netflow: truncated v9 packet")
)

// v9Field is one (type, length) template entry.
type v9Field struct {
	Type   uint16
	Length uint16
}

// v9Template is a cached template.
type v9Template struct {
	fields []v9Field
	width  int // record length in bytes
}

// V9Decoder parses v9 export packets into flow records, maintaining the
// template cache across packets.
type V9Decoder struct {
	templates map[uint64]*v9Template // (sourceID<<16 | templateID)
	// SkippedRecordsNoTemplate counts data flowsets dropped because
	// their template had not been seen yet (normal at stream start).
	SkippedNoTemplate int
}

// NewV9Decoder returns an empty-cache decoder.
func NewV9Decoder() *V9Decoder {
	return &V9Decoder{templates: make(map[uint64]*v9Template)}
}

// Decode parses one v9 export packet, returning the flow records of its
// data flowsets. Template flowsets update the cache and produce no
// records.
func (d *V9Decoder) Decode(buf []byte) ([]flow.Record, error) {
	if len(buf) < v9HeaderLen {
		return nil, ErrV9Truncated
	}
	be := binary.BigEndian
	if v := be.Uint16(buf[0:]); v != V9Version {
		return nil, fmt.Errorf("%w: version %d", ErrV9BadVersion, v)
	}
	sysUptime := be.Uint32(buf[4:])
	unixSecs := be.Uint32(buf[8:])
	sourceID := be.Uint32(buf[16:])
	bootMs := int64(unixSecs)*1000 - int64(sysUptime)

	var out []flow.Record
	off := v9HeaderLen
	for off+4 <= len(buf) {
		setID := int(be.Uint16(buf[off:]))
		setLen := int(be.Uint16(buf[off+2:]))
		if setLen < 4 || off+setLen > len(buf) {
			return out, fmt.Errorf("%w: flowset length %d at offset %d", ErrV9Truncated, setLen, off)
		}
		body := buf[off+4 : off+setLen]
		switch {
		case setID == 0: // template flowset
			if err := d.parseTemplates(sourceID, body); err != nil {
				return out, err
			}
		case setID >= 256: // data flowset
			recs, skipped, err := d.parseData(sourceID, uint16(setID), body, bootMs)
			if err != nil {
				return out, err
			}
			if skipped {
				d.SkippedNoTemplate++
			}
			out = append(out, recs...)
		}
		// setID 1 (options templates) and 2..255 (reserved) are skipped.
		off += setLen
	}
	return out, nil
}

func (d *V9Decoder) parseTemplates(sourceID uint32, body []byte) error {
	be := binary.BigEndian
	off := 0
	for off+4 <= len(body) {
		tid := be.Uint16(body[off:])
		fieldCount := int(be.Uint16(body[off+2:]))
		off += 4
		if tid < 256 {
			return fmt.Errorf("netflow: invalid v9 template id %d", tid)
		}
		if off+fieldCount*4 > len(body) {
			return fmt.Errorf("%w: template %d field list", ErrV9Truncated, tid)
		}
		t := &v9Template{fields: make([]v9Field, fieldCount)}
		for i := 0; i < fieldCount; i++ {
			t.fields[i] = v9Field{
				Type:   be.Uint16(body[off:]),
				Length: be.Uint16(body[off+2:]),
			}
			t.width += int(t.fields[i].Length)
			off += 4
		}
		if t.width == 0 {
			return fmt.Errorf("netflow: v9 template %d has zero width", tid)
		}
		d.templates[templateKey(sourceID, tid)] = t
	}
	return nil
}

func (d *V9Decoder) parseData(sourceID uint32, tid uint16, body []byte, bootMs int64) ([]flow.Record, bool, error) {
	t := d.templates[templateKey(sourceID, tid)]
	if t == nil {
		return nil, true, nil // template not yet seen: skip per RFC
	}
	var out []flow.Record
	for off := 0; off+t.width <= len(body); off += t.width {
		rec, err := t.decodeRecord(body[off:off+t.width], bootMs)
		if err != nil {
			return out, false, err
		}
		out = append(out, rec)
	}
	// Remainder is padding (< template width).
	return out, false, nil
}

func (t *v9Template) decodeRecord(b []byte, bootMs int64) (flow.Record, error) {
	var rec flow.Record
	off := 0
	for _, f := range t.fields {
		v := beUint(b[off : off+int(f.Length)])
		switch f.Type {
		case V9FieldInBytes:
			rec.Bytes = v
		case V9FieldInPkts:
			rec.Packets = uint32(v)
		case V9FieldProtocol:
			rec.Protocol = uint8(v)
		case V9FieldTCPFlags:
			rec.TCPFlags = uint8(v)
		case V9FieldL4SrcPort:
			rec.SrcPort = uint16(v)
		case V9FieldSrcAddr:
			rec.SrcAddr = uint32(v)
		case V9FieldL4DstPort:
			rec.DstPort = uint16(v)
		case V9FieldDstAddr:
			rec.DstAddr = uint32(v)
		case V9FieldFirst:
			rec.Start = bootMs + int64(uint32(v))
		case V9FieldLast:
			rec.End = bootMs + int64(uint32(v))
		default:
			// Unknown fields are skipped by length.
		}
		off += int(f.Length)
	}
	return rec, nil
}

// beUint reads a 1..8-byte big-endian unsigned value.
func beUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func templateKey(sourceID uint32, tid uint16) uint64 {
	return uint64(sourceID)<<16 | uint64(tid)
}

// v9ExportTemplate is the fixed template the encoder uses: the ten
// fields the pipeline consumes, in a layout any RFC 3954 collector can
// parse.
var v9ExportTemplate = []v9Field{
	{V9FieldSrcAddr, 4}, {V9FieldDstAddr, 4},
	{V9FieldL4SrcPort, 2}, {V9FieldL4DstPort, 2},
	{V9FieldProtocol, 1}, {V9FieldTCPFlags, 1},
	{V9FieldInPkts, 4}, {V9FieldInBytes, 4},
	{V9FieldFirst, 4}, {V9FieldLast, 4},
}

// V9TemplateID is the template id the encoder emits.
const V9TemplateID = 260

// V9Encoder serializes flow records as v9 export packets using the fixed
// template above. The template flowset is prepended to every packet
// (collectors tolerate and many exporters do this; it keeps the stream
// self-describing from any offset).
type V9Encoder struct {
	bootMs   int64
	sourceID uint32
	seq      uint32
}

// NewV9Encoder creates an encoder whose exporter booted at bootMs (Unix
// milliseconds).
func NewV9Encoder(bootMs int64, sourceID uint32) *V9Encoder {
	return &V9Encoder{bootMs: bootMs, sourceID: sourceID}
}

// Encode builds one export packet carrying recs (at most ~1300 records
// fit a jumbo buffer; callers batch as needed). The export timestamp is
// the latest flow end.
func (e *V9Encoder) Encode(recs []flow.Record) ([]byte, error) {
	if len(recs) == 0 {
		return nil, errors.New("netflow: empty v9 packet")
	}
	be := binary.BigEndian
	latest := e.bootMs
	for i := range recs {
		if recs[i].End > latest {
			latest = recs[i].End
		}
	}
	// The v9 header timestamps the export with second resolution
	// (unixSecs) plus a millisecond uptime. Rounding the export instant
	// up to a whole second keeps bootMs = unixSecs*1000 - sysUptime
	// exactly recoverable, so flow timestamps survive a round trip.
	exportMs := ((latest + 999) / 1000) * 1000

	recordWidth := 0
	for _, f := range v9ExportTemplate {
		recordWidth += int(f.Length)
	}
	tmplLen := 4 + 4 + len(v9ExportTemplate)*4
	dataLen := 4 + len(recs)*recordWidth
	pad := (4 - dataLen%4) % 4
	dataLen += pad

	buf := make([]byte, v9HeaderLen+tmplLen+dataLen)
	// Header.
	be.PutUint16(buf[0:], V9Version)
	be.PutUint16(buf[2:], uint16(1+len(recs))) // template + data records
	be.PutUint32(buf[4:], uint32(exportMs-e.bootMs))
	be.PutUint32(buf[8:], uint32(exportMs/1000))
	be.PutUint32(buf[12:], e.seq)
	be.PutUint32(buf[16:], e.sourceID)
	e.seq++

	// Template flowset.
	off := v9HeaderLen
	be.PutUint16(buf[off:], 0)
	be.PutUint16(buf[off+2:], uint16(tmplLen))
	be.PutUint16(buf[off+4:], V9TemplateID)
	be.PutUint16(buf[off+6:], uint16(len(v9ExportTemplate)))
	off += 8
	for _, f := range v9ExportTemplate {
		be.PutUint16(buf[off:], f.Type)
		be.PutUint16(buf[off+2:], f.Length)
		off += 4
	}

	// Data flowset. Timestamps are encoded relative to boot; the header
	// carries (sysUptime, unixSecs) consistent with bootMs.
	be.PutUint16(buf[off:], V9TemplateID)
	be.PutUint16(buf[off+2:], uint16(dataLen))
	off += 4
	for i := range recs {
		r := &recs[i]
		be.PutUint32(buf[off:], r.SrcAddr)
		be.PutUint32(buf[off+4:], r.DstAddr)
		be.PutUint16(buf[off+8:], r.SrcPort)
		be.PutUint16(buf[off+10:], r.DstPort)
		buf[off+12] = r.Protocol
		buf[off+13] = r.TCPFlags
		be.PutUint32(buf[off+14:], r.Packets)
		be.PutUint32(buf[off+18:], uint32(min64(r.Bytes, 0xffffffff)))
		be.PutUint32(buf[off+22:], uint32(r.Start-e.bootMs))
		be.PutUint32(buf[off+26:], uint32(r.End-e.bootMs))
		off += recordWidth
	}
	return buf, nil
}
