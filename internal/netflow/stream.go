package netflow

import (
	"bufio"
	"fmt"
	"io"

	"anomalyx/internal/flow"
)

// A trace file is a stream of concatenated NetFlow v5 export packets —
// exactly the byte stream a collector writes when it dumps the UDP export
// payloads of a router back to back. Reader and Writer below stream
// flow.Records out of and into that container without buffering whole
// intervals in memory, which is what lets the two-week experiments run in
// constant space.

// Reader streams flow records from a concatenated-v5-packet stream.
type Reader struct {
	br   *bufio.Reader
	buf  []byte
	pkt  *Packet
	next int // next record index within pkt
	err  error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		br:  bufio.NewReaderSize(r, 64<<10),
		buf: make([]byte, MaxPacketLen),
	}
}

// Next returns the next flow record. It returns io.EOF at a clean end of
// stream and a descriptive error on truncation or corruption.
func (r *Reader) Next() (flow.Record, error) {
	if r.err != nil {
		return flow.Record{}, r.err
	}
	for r.pkt == nil || r.next >= len(r.pkt.Records) {
		if err := r.readPacket(); err != nil {
			r.err = err
			return flow.Record{}, err
		}
	}
	rec := RecordToFlow(&r.pkt.Header, &r.pkt.Records[r.next])
	r.next++
	return rec, nil
}

// ReadAll drains the stream into a slice. Intended for tests and small
// traces; experiments stream with Next.
func (r *Reader) ReadAll() ([]flow.Record, error) {
	var out []flow.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func (r *Reader) readPacket() error {
	hdr := r.buf[:HeaderLen]
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		if err == io.EOF {
			return io.EOF // clean boundary
		}
		return fmt.Errorf("netflow: truncated header: %w", err)
	}
	count := int(uint16(hdr[2])<<8 | uint16(hdr[3]))
	if count < 1 || count > MaxRecords {
		return fmt.Errorf("%w: count %d", ErrBadCount, count)
	}
	body := r.buf[HeaderLen : HeaderLen+count*RecordLen]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return fmt.Errorf("netflow: truncated packet body: %w", err)
	}
	pkt, err := DecodePacket(r.buf[:HeaderLen+count*RecordLen])
	if err != nil {
		return err
	}
	r.pkt = pkt
	r.next = 0
	return nil
}

// Writer batches flow records into maximally filled v5 export packets and
// writes them to the underlying stream.
type Writer struct {
	bw      *bufio.Writer
	bootMs  int64 // simulated device boot time, wall clock ms
	seq     uint32
	pending []flow.Record
	scratch []byte
}

// NewWriter returns a Writer whose simulated export device booted at
// bootMs (milliseconds since the Unix epoch). Flow timestamps must be
// >= bootMs and within uint32 milliseconds of it, mirroring the real
// uptime-relative encoding.
func NewWriter(w io.Writer, bootMs int64) *Writer {
	return &Writer{
		bw:      bufio.NewWriterSize(w, 64<<10),
		bootMs:  bootMs,
		pending: make([]flow.Record, 0, MaxRecords),
		scratch: make([]byte, 0, MaxPacketLen),
	}
}

// Write queues one flow record, flushing a full packet when 30 are
// pending.
func (w *Writer) Write(f flow.Record) error {
	w.pending = append(w.pending, f)
	if len(w.pending) == MaxRecords {
		return w.flushPacket()
	}
	return nil
}

// Flush writes any partially filled packet and flushes the buffered
// writer. Call it exactly once, after the last Write.
func (w *Writer) Flush() error {
	if len(w.pending) > 0 {
		if err := w.flushPacket(); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

func (w *Writer) flushPacket() error {
	// Stamp the header with the latest flow end as the export time, the
	// way a real exporter emits a packet after its newest flow expired.
	var latest int64 = w.bootMs
	for i := range w.pending {
		if w.pending[i].End > latest {
			latest = w.pending[i].End
		}
	}
	pkt := Packet{
		Header: Header{
			SysUptime:    uint32(latest - w.bootMs),
			UnixSecs:     uint32(latest / 1000),
			UnixNsecs:    uint32(latest%1000) * 1e6,
			FlowSequence: w.seq,
		},
		Records: make([]Record, len(w.pending)),
	}
	for i := range w.pending {
		pkt.Records[i] = FlowToRecord(w.bootMs, &w.pending[i])
	}
	w.seq += uint32(len(w.pending))
	w.pending = w.pending[:0]

	buf, err := pkt.AppendEncode(w.scratch[:0])
	if err != nil {
		return err
	}
	_, err = w.bw.Write(buf)
	return err
}
