package netflow

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"anomalyx/internal/flow"
)

// CSV interchange: one record per line with the columns below. This is the
// human-inspectable companion to the binary container and the format the
// cmd/tracegen -format=csv flag emits.

// CSVHeader is the column header written by WriteCSV.
var CSVHeader = []string{
	"start_ms", "end_ms", "src_ip", "dst_ip", "src_port", "dst_port",
	"proto", "tcp_flags", "packets", "bytes",
}

// WriteCSV writes records to w in CSV form, including the header row.
func WriteCSV(w io.Writer, records []flow.Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	row := make([]string, len(CSVHeader))
	for i := range records {
		r := &records[i]
		row[0] = strconv.FormatInt(r.Start, 10)
		row[1] = strconv.FormatInt(r.End, 10)
		row[2] = r.SrcIPAddr().String()
		row[3] = r.DstIPAddr().String()
		row[4] = strconv.FormatUint(uint64(r.SrcPort), 10)
		row[5] = strconv.FormatUint(uint64(r.DstPort), 10)
		row[6] = strconv.FormatUint(uint64(r.Protocol), 10)
		row[7] = strconv.FormatUint(uint64(r.TCPFlags), 10)
		row[8] = strconv.FormatUint(uint64(r.Packets), 10)
		row[9] = strconv.FormatUint(r.Bytes, 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV. It tolerates a missing
// header row only if the first line parses as data.
func ReadCSV(r io.Reader) ([]flow.Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(CSVHeader)
	var out []flow.Record
	first := true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if first {
			first = false
			if row[0] == CSVHeader[0] {
				continue // header row
			}
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func parseCSVRow(row []string) (flow.Record, error) {
	var r flow.Record
	var err error
	fail := func(col string, e error) (flow.Record, error) {
		return flow.Record{}, fmt.Errorf("netflow: csv column %s: %w", col, e)
	}
	if r.Start, err = strconv.ParseInt(row[0], 10, 64); err != nil {
		return fail("start_ms", err)
	}
	if r.End, err = strconv.ParseInt(row[1], 10, 64); err != nil {
		return fail("end_ms", err)
	}
	src, err := parseIPv4(row[2])
	if err != nil {
		return fail("src_ip", err)
	}
	r.SrcAddr = src
	dst, err := parseIPv4(row[3])
	if err != nil {
		return fail("dst_ip", err)
	}
	r.DstAddr = dst
	sp, err := strconv.ParseUint(row[4], 10, 16)
	if err != nil {
		return fail("src_port", err)
	}
	r.SrcPort = uint16(sp)
	dp, err := strconv.ParseUint(row[5], 10, 16)
	if err != nil {
		return fail("dst_port", err)
	}
	r.DstPort = uint16(dp)
	pr, err := strconv.ParseUint(row[6], 10, 8)
	if err != nil {
		return fail("proto", err)
	}
	r.Protocol = uint8(pr)
	fl, err := strconv.ParseUint(row[7], 10, 8)
	if err != nil {
		return fail("tcp_flags", err)
	}
	r.TCPFlags = uint8(fl)
	pk, err := strconv.ParseUint(row[8], 10, 32)
	if err != nil {
		return fail("packets", err)
	}
	r.Packets = uint32(pk)
	if r.Bytes, err = strconv.ParseUint(row[9], 10, 64); err != nil {
		return fail("bytes", err)
	}
	return r, nil
}

func parseIPv4(s string) (uint32, error) {
	var a, b, c, d uint8
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 %q: %w", s, err)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}
