// Package netflow implements the flow-collection substrate: a NetFlow v5
// wire codec plus streaming readers and writers that convert between
// export packets and the pipeline's flow.Record model.
//
// The paper's dataset is non-sampled NetFlow v5 collected from a SWITCH
// (AS559) peering link (§III-A). This package reproduces that ingestion
// path: the synthetic trace generator exports standard v5 packets, and the
// detectors consume records exactly as they would from a router export.
//
// The codecs are deterministic and order-preserving: the same record
// sequence always serializes to the same bytes (records pack into
// packets in write order at a fixed batch size), and readers yield
// records in packet order — so traces are reproducible byte-for-byte
// and a replayed trace drives the pipeline identically every run.
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"anomalyx/internal/flow"
)

// Version is the only NetFlow version this codec speaks.
const Version = 5

// Wire sizes of the v5 export format.
const (
	HeaderLen    = 24
	RecordLen    = 48
	MaxRecords   = 30 // per RFC: v5 exports carry at most 30 records
	MaxPacketLen = HeaderLen + MaxRecords*RecordLen
)

// Errors returned by the codec.
var (
	ErrShortPacket = errors.New("netflow: packet shorter than header")
	ErrBadVersion  = errors.New("netflow: not a NetFlow v5 packet")
	ErrBadCount    = errors.New("netflow: record count out of range or inconsistent with length")
)

// Header is the 24-byte NetFlow v5 export header.
type Header struct {
	Count            uint16 // records in this packet (1..30)
	SysUptime        uint32 // ms since export device boot
	UnixSecs         uint32 // export timestamp, seconds
	UnixNsecs        uint32 // export timestamp, residual nanoseconds
	FlowSequence     uint32 // sequence counter of total flows seen
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16 // sampling mode (2 bits) + interval (14 bits)
}

// Record is the 48-byte NetFlow v5 flow record as it appears on the wire.
// First/Last are in sysUptime milliseconds; conversion to absolute time
// needs the enclosing header (see RecordToFlow).
type Record struct {
	SrcAddr  uint32
	DstAddr  uint32
	NextHop  uint32
	Input    uint16
	Output   uint16
	Packets  uint32
	Octets   uint32
	First    uint32
	Last     uint32
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Protocol uint8
	Tos      uint8
	SrcAS    uint16
	DstAS    uint16
	SrcMask  uint8
	DstMask  uint8
}

// Packet is a decoded v5 export packet.
type Packet struct {
	Header  Header
	Records []Record
}

// AppendEncode appends the wire encoding of p to dst and returns the
// extended slice. It validates the record count against the header.
func (p *Packet) AppendEncode(dst []byte) ([]byte, error) {
	n := len(p.Records)
	if n == 0 || n > MaxRecords {
		return dst, fmt.Errorf("%w: %d records", ErrBadCount, n)
	}
	if p.Header.Count != 0 && int(p.Header.Count) != n {
		return dst, fmt.Errorf("%w: header says %d, packet has %d", ErrBadCount, p.Header.Count, n)
	}
	var hdr [HeaderLen]byte
	be := binary.BigEndian
	be.PutUint16(hdr[0:], Version)
	be.PutUint16(hdr[2:], uint16(n))
	be.PutUint32(hdr[4:], p.Header.SysUptime)
	be.PutUint32(hdr[8:], p.Header.UnixSecs)
	be.PutUint32(hdr[12:], p.Header.UnixNsecs)
	be.PutUint32(hdr[16:], p.Header.FlowSequence)
	hdr[20] = p.Header.EngineType
	hdr[21] = p.Header.EngineID
	be.PutUint16(hdr[22:], p.Header.SamplingInterval)
	dst = append(dst, hdr[:]...)

	var rec [RecordLen]byte
	for i := range p.Records {
		r := &p.Records[i]
		be.PutUint32(rec[0:], r.SrcAddr)
		be.PutUint32(rec[4:], r.DstAddr)
		be.PutUint32(rec[8:], r.NextHop)
		be.PutUint16(rec[12:], r.Input)
		be.PutUint16(rec[14:], r.Output)
		be.PutUint32(rec[16:], r.Packets)
		be.PutUint32(rec[20:], r.Octets)
		be.PutUint32(rec[24:], r.First)
		be.PutUint32(rec[28:], r.Last)
		be.PutUint16(rec[32:], r.SrcPort)
		be.PutUint16(rec[34:], r.DstPort)
		rec[36] = 0 // pad1
		rec[37] = r.TCPFlags
		rec[38] = r.Protocol
		rec[39] = r.Tos
		be.PutUint16(rec[40:], r.SrcAS)
		be.PutUint16(rec[42:], r.DstAS)
		rec[44] = r.SrcMask
		rec[45] = r.DstMask
		be.PutUint16(rec[46:], 0) // pad2
		dst = append(dst, rec[:]...)
	}
	return dst, nil
}

// Encode returns the wire encoding of p.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(make([]byte, 0, HeaderLen+len(p.Records)*RecordLen))
}

// DecodePacket parses a v5 export packet from buf. The returned packet
// does not retain buf.
func DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < HeaderLen {
		return nil, ErrShortPacket
	}
	be := binary.BigEndian
	if v := be.Uint16(buf[0:]); v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	count := int(be.Uint16(buf[2:]))
	if count < 1 || count > MaxRecords {
		return nil, fmt.Errorf("%w: count %d", ErrBadCount, count)
	}
	if len(buf) < HeaderLen+count*RecordLen {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrBadCount, HeaderLen+count*RecordLen, len(buf))
	}
	p := &Packet{
		Header: Header{
			Count:            uint16(count),
			SysUptime:        be.Uint32(buf[4:]),
			UnixSecs:         be.Uint32(buf[8:]),
			UnixNsecs:        be.Uint32(buf[12:]),
			FlowSequence:     be.Uint32(buf[16:]),
			EngineType:       buf[20],
			EngineID:         buf[21],
			SamplingInterval: be.Uint16(buf[22:]),
		},
		Records: make([]Record, count),
	}
	for i := 0; i < count; i++ {
		b := buf[HeaderLen+i*RecordLen:]
		p.Records[i] = Record{
			SrcAddr:  be.Uint32(b[0:]),
			DstAddr:  be.Uint32(b[4:]),
			NextHop:  be.Uint32(b[8:]),
			Input:    be.Uint16(b[12:]),
			Output:   be.Uint16(b[14:]),
			Packets:  be.Uint32(b[16:]),
			Octets:   be.Uint32(b[20:]),
			First:    be.Uint32(b[24:]),
			Last:     be.Uint32(b[28:]),
			SrcPort:  be.Uint16(b[32:]),
			DstPort:  be.Uint16(b[34:]),
			TCPFlags: b[37],
			Protocol: b[38],
			Tos:      b[39],
			SrcAS:    be.Uint16(b[40:]),
			DstAS:    be.Uint16(b[42:]),
			SrcMask:  b[44],
			DstMask:  b[45],
		}
	}
	return p, nil
}

// RecordToFlow converts a wire record, interpreted under h, to the
// pipeline's flow.Record. NetFlow v5 timestamps First/Last are relative to
// device boot; the header carries the export wall-clock and the boot
// uptime, from which absolute flow times follow:
//
//	bootWallMs = unixMs(header) - sysUptime
//	startMs    = bootWallMs + First
func RecordToFlow(h *Header, r *Record) flow.Record {
	exportMs := int64(h.UnixSecs)*1000 + int64(h.UnixNsecs)/1e6
	bootMs := exportMs - int64(h.SysUptime)
	return flow.Record{
		SrcAddr:  r.SrcAddr,
		DstAddr:  r.DstAddr,
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		Protocol: r.Protocol,
		TCPFlags: r.TCPFlags,
		Packets:  r.Packets,
		Bytes:    uint64(r.Octets),
		Start:    bootMs + int64(r.First),
		End:      bootMs + int64(r.Last),
	}
}

// FlowToRecord converts a flow.Record to a wire record relative to the
// given boot wall-clock (milliseconds since epoch). It is the inverse of
// RecordToFlow for flows whose timestamps fall within uint32 uptime range.
func FlowToRecord(bootMs int64, f *flow.Record) Record {
	return Record{
		SrcAddr:  f.SrcAddr,
		DstAddr:  f.DstAddr,
		SrcPort:  f.SrcPort,
		DstPort:  f.DstPort,
		Protocol: f.Protocol,
		TCPFlags: f.TCPFlags,
		Packets:  f.Packets,
		Octets:   uint32(min64(f.Bytes, 0xffffffff)),
		First:    uint32(f.Start - bootMs),
		Last:     uint32(f.End - bootMs),
	}
}

func min64(a uint64, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
