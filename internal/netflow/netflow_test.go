package netflow

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"anomalyx/internal/flow"
)

func samplePacket() *Packet {
	return &Packet{
		Header: Header{
			SysUptime: 3600000, UnixSecs: 1196640000, UnixNsecs: 250e6,
			FlowSequence: 42, EngineType: 1, EngineID: 2, SamplingInterval: 0,
		},
		Records: []Record{
			{
				SrcAddr: 0x82380a0b, DstAddr: 0x08080808, NextHop: 0x0a000001,
				Input: 1, Output: 2, Packets: 10, Octets: 1200,
				First: 3590000, Last: 3599000,
				SrcPort: 51515, DstPort: 80, TCPFlags: 0x1b, Protocol: 6,
				Tos: 0, SrcAS: 559, DstAS: 15169, SrcMask: 24, DstMask: 16,
			},
			{
				SrcAddr: 1, DstAddr: 2, Packets: 1, Octets: 40,
				First: 3500000, Last: 3500001,
				SrcPort: 53, DstPort: 53, Protocol: 17,
			},
		},
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen+2*RecordLen {
		t.Fatalf("encoded length %d", len(buf))
	}
	q, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.SysUptime != p.Header.SysUptime || q.Header.UnixSecs != p.Header.UnixSecs ||
		q.Header.FlowSequence != p.Header.FlowSequence || q.Header.EngineID != p.Header.EngineID {
		t.Errorf("header mismatch: %+v vs %+v", q.Header, p.Header)
	}
	if len(q.Records) != 2 {
		t.Fatalf("record count %d", len(q.Records))
	}
	for i := range q.Records {
		if q.Records[i] != p.Records[i] {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, q.Records[i], p.Records[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodePacket(make([]byte, 10)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short packet: %v", err)
	}
	p := samplePacket()
	buf, _ := p.Encode()
	buf[0], buf[1] = 0, 9 // version 9
	if _, err := DecodePacket(buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	buf, _ = p.Encode()
	buf[2], buf[3] = 0, 31 // count 31 > max
	if _, err := DecodePacket(buf); !errors.Is(err, ErrBadCount) {
		t.Errorf("bad count: %v", err)
	}
	buf, _ = p.Encode()
	if _, err := DecodePacket(buf[:len(buf)-1]); !errors.Is(err, ErrBadCount) {
		t.Errorf("truncated body: %v", err)
	}
}

func TestEncodeValidatesCount(t *testing.T) {
	p := &Packet{}
	if _, err := p.Encode(); !errors.Is(err, ErrBadCount) {
		t.Errorf("empty packet: %v", err)
	}
	p = samplePacket()
	p.Header.Count = 5 // inconsistent
	if _, err := p.Encode(); !errors.Is(err, ErrBadCount) {
		t.Errorf("inconsistent count: %v", err)
	}
	p = &Packet{Records: make([]Record, MaxRecords+1)}
	if _, err := p.Encode(); !errors.Is(err, ErrBadCount) {
		t.Errorf("oversized packet: %v", err)
	}
}

func TestTimestampConversion(t *testing.T) {
	h := &Header{SysUptime: 1000000, UnixSecs: 2000, UnixNsecs: 0}
	r := &Record{First: 999000, Last: 1000000}
	f := RecordToFlow(h, r)
	// boot = 2_000_000ms - 1_000_000ms = 1_000_000ms
	if f.Start != 1999000 || f.End != 2000000 {
		t.Errorf("Start/End = %d/%d, want 1999000/2000000", f.Start, f.End)
	}
}

func TestFlowRecordRoundTripProperty(t *testing.T) {
	const bootMs = int64(1700000000000)
	f := func(src, dst uint32, sp, dp uint16, proto, flags uint8, pkts uint32, bytes uint32, startOff, durMs uint32) bool {
		orig := flow.Record{
			SrcAddr: src, DstAddr: dst, SrcPort: sp, DstPort: dp,
			Protocol: proto, TCPFlags: flags, Packets: pkts, Bytes: uint64(bytes),
			Start: bootMs + int64(startOff%2e9), End: bootMs + int64(startOff%2e9) + int64(durMs%1e6),
		}
		wire := FlowToRecord(bootMs, &orig)
		h := Header{SysUptime: uint32(orig.End - bootMs), UnixSecs: uint32(orig.End / 1000), UnixNsecs: uint32(orig.End%1000) * 1e6}
		back := RecordToFlow(&h, &wire)
		return back == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	const bootMs = int64(1196640000000)
	records := make([]flow.Record, 95) // crosses 3 packet boundaries + partial
	for i := range records {
		records[i] = flow.Record{
			SrcAddr: uint32(i + 1), DstAddr: uint32(2*i + 1),
			SrcPort: uint16(i), DstPort: 80, Protocol: 6,
			Packets: uint32(i%7 + 1), Bytes: uint64(i * 100),
			Start: bootMs + int64(i)*1000,
			End:   bootMs + int64(i)*1000 + 500,
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, bootMs)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, wrote %d", len(got), len(records))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}
}

func TestReaderEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty stream: %v", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Encode()
	r := NewReader(bytes.NewReader(buf[:len(buf)-5]))
	_, err := r.Next()
	if err == nil || err == io.EOF {
		t.Errorf("truncated stream should error, got %v", err)
	}
	// Error must be sticky.
	if _, err2 := r.Next(); err2 != err {
		t.Errorf("error not sticky: %v vs %v", err2, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := []flow.Record{
		{
			SrcAddr: flow.MustParseU32("130.59.10.11"), DstAddr: flow.MustParseU32("8.8.8.8"),
			SrcPort: 51515, DstPort: 80, Protocol: 6, TCPFlags: 0x1b,
			Packets: 10, Bytes: 1200, Start: 1196640000000, End: 1196640001000,
		},
		{
			SrcAddr: 1, DstAddr: 2, SrcPort: 53, DstPort: 53, Protocol: 17,
			Packets: 1, Bytes: 40, Start: 5, End: 6,
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}
}

func TestCSVBadInput(t *testing.T) {
	_, err := ReadCSV(bytes.NewBufferString("start_ms,end_ms,src_ip,dst_ip,src_port,dst_port,proto,tcp_flags,packets,bytes\nx,0,1.2.3.4,5.6.7.8,1,2,6,0,1,40\n"))
	if err == nil {
		t.Error("bad start_ms should error")
	}
	_, err = ReadCSV(bytes.NewBufferString("0,0,notanip,5.6.7.8,1,2,6,0,1,40\n"))
	if err == nil {
		t.Error("bad IP should error")
	}
}

func TestV5DecodeDoesNotPanicOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = DecodePacket(raw) // must not panic, any error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderGarbageStream(t *testing.T) {
	// A stream of plausible-looking but corrupt packets must error out,
	// not loop or panic.
	raw := make([]byte, 500)
	raw[1] = 5  // version 5
	raw[3] = 30 // count 30 -> needs 24+1440 bytes, stream has 500
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("corrupt stream: %v", err)
	}
}
