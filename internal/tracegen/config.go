// Package tracegen synthesizes SWITCH-like backbone NetFlow traffic with
// injected, ground-truth-labeled anomalies.
//
// The paper evaluates on two continuous weeks of non-sampled NetFlow from
// a medium-size backbone (SWITCH, AS559): ~2.2 M internal addresses and on
// the order of 10^6 flows per 15-minute interval, containing 31 manually
// identified anomalous intervals with 36 events in 7 classes (§III-A,
// Table IV). That trace is proprietary, so this package substitutes a
// seeded generative model that reproduces the statistics the pipeline
// actually consumes — heavy-tailed feature popularity that is stable from
// interval to interval, plus class-typical anomaly footprints — at a
// laptop-friendly volume (DESIGN.md §3 documents the substitution).
package tracegen

import (
	"time"

	"anomalyx/internal/flow"
)

// Config parameterizes a synthetic trace. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Seed fixes every stochastic choice; equal seeds give byte-identical
	// traces. The seed plays the role of the fixed December-2007 capture.
	Seed uint64

	// IntervalLen is the measurement interval Δ (paper default: 15 min).
	IntervalLen time.Duration

	// Intervals is the trace length in intervals. Two weeks of 15-minute
	// intervals is 1344.
	Intervals int

	// BaseFlows is the mean number of benign flows per interval before
	// diurnal modulation. The paper observes 0.7–2.6 M flows per 15-min
	// interval; the default scales that down ~20x.
	BaseFlows int

	// DiurnalAmplitude scales the daily sinusoid applied to BaseFlows
	// (0 disables the day/night cycle; 0.35 gives a 0.65x–1.35x swing,
	// matching the relative swing of the paper's Fig. 4 traffic).
	DiurnalAmplitude float64

	// InternalBase/InternalSize delimit the simulated internal address
	// range. The default is a /11 (~2.1 M addresses), mirroring the
	// ~2.2 M-address SWITCH range.
	InternalBase uint32
	InternalSize uint32

	// StartTime anchors interval 0 on the wall clock.
	StartTime time.Time

	// Events is the anomaly schedule. Use Schedule() for the paper's
	// Table IV ground truth, or provide custom events.
	Events []Event
}

// DefaultConfig returns the two-week evaluation configuration with the
// Table IV ground-truth schedule installed.
func DefaultConfig() Config {
	cfg := Config{
		Seed:             20071203, // the paper's trace is from December 2007
		IntervalLen:      15 * time.Minute,
		Intervals:        2 * 7 * 24 * 4, // two weeks of 15-min intervals
		BaseFlows:        60000,
		DiurnalAmplitude: 0.35,
		InternalBase:     flow.MustParseU32("130.56.0.0"),
		InternalSize:     1 << 21, // /11, ~2.1M addresses
		StartTime:        time.Date(2007, time.December, 3, 0, 0, 0, 0, time.UTC),
	}
	cfg.Events = Schedule(cfg.Intervals, cfg.BaseFlows)
	return cfg
}

// SmallConfig returns a reduced configuration (two days, lighter
// intervals) for tests and quick demos; the ground-truth schedule is
// compressed proportionally.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Intervals = 2 * 24 * 4 // two days
	cfg.BaseFlows = 12000
	cfg.Events = Schedule(cfg.Intervals, cfg.BaseFlows)
	return cfg
}

// IntervalStart returns the wall-clock start of interval idx in
// milliseconds since the Unix epoch.
func (c *Config) IntervalStart(idx int) int64 {
	return c.StartTime.UnixMilli() + int64(idx)*c.IntervalLen.Milliseconds()
}
