package tracegen

import (
	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// TableIIScenario reproduces the worked Apriori example of §II-B /
// Table II. The paper took a 15-minute window in which destination port
// 7000 was the only flagged feature value (53 467 candidate flows) and
// artificially added the flows of the three most popular destination
// ports to force false-positive item-sets:
//
//	dstPort 80:   252 069 flows (hosts A, B, C were heavy HTTP proxies)
//	dstPort 9022:  22 667 flows (backscatter: random srcIP/srcPort)
//	dstPort 25:    22 659 flows (SMTP)
//
// for a total input of 350 872 flows mined with minimum support 10 000.
// The function synthesizes exactly that mix, with the flood split over
// four compromised hosts (three above minimum support, one below) so
// that, as in Table II, exactly three maximal item-sets carry dstPort
// 7000.
type TableIIData struct {
	Flows []flow.Record

	VictimE          uint32    // flooding victim (host E)
	Proxies          [3]uint32 // hosts A, B, C
	FloodSources     []uint32
	FloodPort        uint16 // 7000
	BackscatterPort  uint16 // 9022
	MinSupport       int    // 10 000, the paper's setting
	FlaggedMetaValue FeatureValue
}

// Flow-count constants from the paper's example.
const (
	tableIIFlood       = 53467
	tableIIWeb         = 252069
	tableIIBackscatter = 22667
	tableIISMTP        = 22659
	// TableIITotal is the paper's total input size (350 872); the four
	// groups above sum to 350 862 and the residual 10 flows are benign
	// filler on other ports.
	TableIITotal = 350872
)

// TableIIScenario builds the Table II input set deterministically from
// seed.
func TableIIScenario(seed uint64) *TableIIData {
	r := stats.NewRand(seed ^ 0x7ab1e2)
	d := &TableIIData{
		FloodPort:       7000,
		BackscatterPort: 9022,
		MinSupport:      10000,
	}
	internalBase := flow.MustParseU32("130.56.0.0")
	internal := func() uint32 { return internalBase + r.Uint32N(1<<21) }

	d.VictimE = internal()
	for i := range d.Proxies {
		d.Proxies[i] = externalAddr(r)
	}
	for i := 0; i < 4; i++ {
		d.FloodSources = append(d.FloodSources, externalAddr(r))
	}
	d.FlaggedMetaValue = FeatureValue{flow.DstPort, uint64(d.FloodPort)}

	d.Flows = make([]flow.Record, 0, TableIITotal)

	// Flooding of victim E on dstPort 7000 by four compromised hosts;
	// shares chosen so three exceed the 10 000 minimum support.
	// Packet counts spread over six values keep the per-flow-size splits
	// of the flood below minimum support, so exactly three maximal
	// item-sets carry dstPort 7000 (one per above-support host), as in
	// Table II.
	shares := []int{20467, 15000, 10500, 7500} // sums to 53 467
	for h, cnt := range shares {
		for i := 0; i < cnt; i++ {
			pkts := uint32(1 + r.IntN(6))
			d.Flows = append(d.Flows, flow.Record{
				SrcAddr: d.FloodSources[h], DstAddr: d.VictimE,
				SrcPort: ephemeralPort(r), DstPort: d.FloodPort,
				Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN,
				Packets: pkts, Bytes: uint64(pkts) * 40,
			})
		}
	}

	// HTTP: hosts A, B, C are heavy proxies originating traffic toward
	// many web servers on dstPort 80; the remainder is diffuse web
	// traffic from random clients.
	proxyShare := []int{52000, 36000, 27000}
	webServers := make([]uint32, 512)
	for i := range webServers {
		webServers[i] = externalAddr(r)
	}
	webFlow := func(src uint32) flow.Record {
		pkts := uint32(r.BoundedPareto(1.3, 2, 5000))
		return flow.Record{
			SrcAddr: src, DstAddr: webServers[r.IntN(len(webServers))],
			SrcPort: ephemeralPort(r), DstPort: 80,
			Protocol: flow.ProtoTCP,
			TCPFlags: flow.FlagSYN | flow.FlagACK | flow.FlagPSH | flow.FlagFIN,
			Packets:  pkts, Bytes: uint64(pkts) * uint64(60+r.IntN(1400)),
		}
	}
	for p, cnt := range proxyShare {
		for i := 0; i < cnt; i++ {
			d.Flows = append(d.Flows, webFlow(d.Proxies[p]))
		}
	}
	for i := 0; i < tableIIWeb-52000-36000-27000; i++ {
		d.Flows = append(d.Flows, webFlow(externalAddr(r)))
	}

	// Backscatter on dstPort 9022: every flow has a distinct random
	// source IP and source port, single 40-byte packet.
	for i := 0; i < tableIIBackscatter; i++ {
		d.Flows = append(d.Flows, flow.Record{
			SrcAddr: externalAddr(r), DstAddr: internal(),
			SrcPort: ephemeralPort(r), DstPort: d.BackscatterPort,
			Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN | flow.FlagACK,
			Packets: 1, Bytes: 40,
		})
	}

	// SMTP background on dstPort 25 toward a pool of mail servers, none
	// of which individually reaches minimum support.
	mailServers := make([]uint32, 64)
	for i := range mailServers {
		mailServers[i] = internal()
	}
	for i := 0; i < tableIISMTP; i++ {
		pkts := uint32(4 + r.IntN(60))
		d.Flows = append(d.Flows, flow.Record{
			SrcAddr: externalAddr(r), DstAddr: mailServers[r.IntN(len(mailServers))],
			SrcPort: ephemeralPort(r), DstPort: 25,
			Protocol: flow.ProtoTCP,
			TCPFlags: flow.FlagSYN | flow.FlagACK | flow.FlagPSH,
			Packets:  pkts, Bytes: uint64(pkts) * uint64(150+r.IntN(900)),
		})
	}

	// Residual filler so the total matches the paper's 350 872.
	for len(d.Flows) < TableIITotal {
		d.Flows = append(d.Flows, flow.Record{
			SrcAddr: externalAddr(r), DstAddr: internal(),
			SrcPort: ephemeralPort(r), DstPort: uint16(1024 + r.IntN(64512)),
			Protocol: flow.ProtoUDP, Packets: 1, Bytes: 100,
		})
	}
	return d
}
