package tracegen

import (
	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// SasserScenario models the multistage worm propagation of §II-A, the
// paper's argument for taking the union rather than the intersection of
// detector meta-data. Sasser propagates in three stages with pairwise
// flow-disjoint footprints:
//
//	stage 1: SYN scans of dstPort 445 looking for vulnerable hosts;
//	stage 2: connections to the backdoor on dstPort 9996;
//	stage 3: download of the ~16 kB worm executable (FTP port 5554).
//
// A detector bank annotates the alarm with meta-data for the SYN scans,
// for port 9996, and for the characteristic flow size. No single flow
// matches all three meta-data items, so the intersection of matching
// flows is empty while the union covers all stages.
type SasserData struct {
	Flows []flow.Record

	// Meta groups the alarm meta-data by stage: scans, backdoor, and
	// download, in that order. StageFlows counts injected flows per stage.
	Meta       [3][]FeatureValue
	StageFlows [3]int

	WormSource uint32
}

// Sasser stage parameters.
const (
	SasserScanPort     = 445
	SasserBackdoorPort = 9996
	SasserFTPPort      = 5554
	SasserWormBytes    = 16384
)

// SasserScenario builds one interval that mixes benignFlows of background
// traffic with a three-stage Sasser outbreak.
func SasserScenario(seed uint64, benignFlows int) *SasserData {
	cfg := Config{
		Seed:         seed,
		IntervalLen:  DefaultConfig().IntervalLen,
		Intervals:    1,
		BaseFlows:    benignFlows,
		InternalBase: flow.MustParseU32("130.56.0.0"),
		InternalSize: 1 << 21,
		StartTime:    DefaultConfig().StartTime,
	}
	g := New(cfg)
	d := &SasserData{Flows: g.Interval(0)}

	r := stats.NewRand(seed ^ 0x5a55e2)
	d.WormSource = externalAddr(r)
	internal := func() uint32 { return cfg.InternalBase + r.Uint32N(cfg.InternalSize) }
	startMs := cfg.IntervalStart(0)
	endMs := startMs + cfg.IntervalLen.Milliseconds()
	stamp := func(rec *flow.Record) {
		rec.Start = startMs + int64(r.Float64()*float64(endMs-startMs))
		rec.End = rec.Start + int64(r.IntN(5000))
		if rec.End >= endMs {
			rec.End = endMs - 1
		}
	}

	// Stage 1: SYN scans of port 445. Many single-packet probes.
	nScan := benignFlows / 2
	if nScan < 1000 {
		nScan = 1000
	}
	victims := make([]uint32, 0, nScan/20)
	for i := 0; i < nScan; i++ {
		dst := internal()
		if i%20 == 0 {
			victims = append(victims, dst) // every 20th probe finds a host
		}
		rec := flow.Record{
			SrcAddr: d.WormSource, DstAddr: dst,
			SrcPort: ephemeralPort(r), DstPort: SasserScanPort,
			Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN,
			Packets: 1, Bytes: 48,
		}
		stamp(&rec)
		d.Flows = append(d.Flows, rec)
	}
	d.StageFlows[0] = nScan

	// Stage 2: backdoor connections to port 9996 on the responsive hosts.
	nBack := len(victims) * 4
	for i := 0; i < nBack; i++ {
		rec := flow.Record{
			SrcAddr: d.WormSource, DstAddr: victims[r.IntN(len(victims))],
			SrcPort: ephemeralPort(r), DstPort: SasserBackdoorPort,
			Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN | flow.FlagACK | flow.FlagPSH,
			Packets: uint32(4 + r.IntN(6)), Bytes: uint64(200 + r.IntN(400)),
		}
		stamp(&rec)
		d.Flows = append(d.Flows, rec)
	}
	d.StageFlows[1] = nBack

	// Stage 3: the victims download the 16 kB executable from the worm
	// source's FTP server — note these flows originate at the *victims*.
	nDown := len(victims)
	for i := 0; i < nDown; i++ {
		rec := flow.Record{
			SrcAddr: victims[i], DstAddr: d.WormSource,
			SrcPort: ephemeralPort(r), DstPort: SasserFTPPort,
			Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN | flow.FlagACK | flow.FlagPSH | flow.FlagFIN,
			Packets: 14, Bytes: SasserWormBytes,
		}
		stamp(&rec)
		d.Flows = append(d.Flows, rec)
	}
	d.StageFlows[2] = nDown

	d.Meta = [3][]FeatureValue{
		{{flow.DstPort, SasserScanPort}},
		{{flow.DstPort, SasserBackdoorPort}},
		{{flow.Bytes, SasserWormBytes}},
	}
	return d
}
