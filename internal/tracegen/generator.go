package tracegen

import (
	"sort"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// Generator produces the flows of a synthetic trace interval by interval.
// Interval generation is a pure function of (Config, interval index):
// intervals can be generated in any order, repeatedly, or in parallel, and
// always yield the same records — the property that makes the two-week
// experiments reproducible without materializing ~10^8 flows on disk.
type Generator struct {
	cfg    Config
	base   *baseline
	events []*eventState
	byIdx  map[int][]*eventState // interval -> active events
	anom   []int                 // sorted anomalous interval indices
}

// New builds a generator for cfg. The schedule in cfg.Events is
// materialized (endpoints and signatures fixed) at this point.
func New(cfg Config) *Generator {
	g := &Generator{cfg: cfg, base: newBaseline(&cfg), byIdx: map[int][]*eventState{}}
	for _, ev := range cfg.Events {
		st := materialize(&cfg, ev)
		g.events = append(g.events, st)
		for i := ev.Start; i <= ev.End && i < cfg.Intervals; i++ {
			g.byIdx[i] = append(g.byIdx[i], st)
		}
	}
	for idx := range g.byIdx {
		g.anom = append(g.anom, idx)
	}
	sort.Ints(g.anom)
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() *Config { return &g.cfg }

// NumIntervals returns the trace length in intervals.
func (g *Generator) NumIntervals() int { return g.cfg.Intervals }

// Interval generates all flows of interval idx (benign plus injected),
// sorted by start time.
func (g *Generator) Interval(idx int) []flow.Record {
	r := g.intervalRand(idx)
	startMs := g.cfg.IntervalStart(idx)
	endMs := startMs + g.cfg.IntervalLen.Milliseconds()

	n := g.base.count(idx, r)
	recs := make([]flow.Record, 0, n+n/4)
	for i := 0; i < n; i++ {
		recs = append(recs, g.base.flow(r, startMs, endMs))
	}
	for _, ev := range g.byIdx[idx] {
		er := stats.NewRand(g.cfg.Seed ^ 0xabcd0feed ^ uint64(ev.ID)<<32 ^ uint64(idx))
		recs = ev.inject(&g.cfg, idx, er, recs)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	return recs
}

// intervalRand derives the deterministic per-interval stream.
func (g *Generator) intervalRand(idx int) *stats.Rand {
	return stats.NewRand(g.cfg.Seed ^ (uint64(idx)+1)*0xd1342543de82ef95)
}

// GroundTruth returns the materialized events with their signatures.
func (g *Generator) GroundTruth() []GroundTruthEvent {
	out := make([]GroundTruthEvent, len(g.events))
	for i, st := range g.events {
		out[i] = st.GroundTruthEvent
	}
	return out
}

// AnomalousIntervals returns the sorted indices of intervals containing at
// least one active event (the paper's 31 labeled intervals).
func (g *Generator) AnomalousIntervals() []int {
	out := make([]int, len(g.anom))
	copy(out, g.anom)
	return out
}

// IsAnomalous reports whether interval idx contains an active event.
func (g *Generator) IsAnomalous(idx int) bool { return len(g.byIdx[idx]) > 0 }

// EventsAt returns the ground truth of the events active in interval idx.
func (g *Generator) EventsAt(idx int) []GroundTruthEvent {
	states := g.byIdx[idx]
	out := make([]GroundTruthEvent, len(states))
	for i, st := range states {
		out[i] = st.GroundTruthEvent
	}
	return out
}
