package tracegen

import (
	"testing"

	"anomalyx/internal/flow"
)

func TestIntervalDeterministic(t *testing.T) {
	cfg := SmallConfig()
	cfg.BaseFlows = 2000
	g1 := New(cfg)
	g2 := New(cfg)
	a := g1.Interval(5)
	b := g2.Interval(5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestIntervalOrderIndependent(t *testing.T) {
	cfg := SmallConfig()
	cfg.BaseFlows = 1500
	g := New(cfg)
	first := g.Interval(7)
	_ = g.Interval(3) // generating another interval must not disturb 7
	second := g.Interval(7)
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs after other interval generated", i)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	cfg := SmallConfig()
	cfg.BaseFlows = 1000
	g1 := New(cfg)
	cfg2 := cfg
	cfg2.Seed++
	cfg2.Events = Schedule(cfg2.Intervals, cfg2.BaseFlows)
	g2 := New(cfg2)
	a, b := g1.Interval(0), g2.Interval(0)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical interval")
		}
	}
}

func TestFlowTimestampsWithinInterval(t *testing.T) {
	cfg := SmallConfig()
	cfg.BaseFlows = 3000
	g := New(cfg)
	for _, idx := range []int{0, 10, cfg.Intervals - 1} {
		lo := cfg.IntervalStart(idx)
		hi := lo + cfg.IntervalLen.Milliseconds()
		prev := int64(0)
		for _, r := range g.Interval(idx) {
			if r.Start < lo || r.Start >= hi {
				t.Fatalf("interval %d: start %d outside [%d,%d)", idx, r.Start, lo, hi)
			}
			if r.End < r.Start || r.End >= hi {
				t.Fatalf("interval %d: end %d invalid (start %d, hi %d)", idx, r.End, r.Start, hi)
			}
			if r.Start < prev {
				t.Fatal("records not sorted by start time")
			}
			prev = r.Start
		}
	}
}

func TestFlowFieldSanity(t *testing.T) {
	cfg := SmallConfig()
	cfg.BaseFlows = 3000
	g := New(cfg)
	for _, r := range g.Interval(2) {
		if r.Packets == 0 {
			t.Fatal("flow with zero packets")
		}
		if r.Bytes == 0 {
			t.Fatal("flow with zero bytes")
		}
		if r.Protocol != flow.ProtoTCP && r.Protocol != flow.ProtoUDP && r.Protocol != flow.ProtoICMP {
			t.Fatalf("unexpected protocol %d", r.Protocol)
		}
	}
}

func TestScheduleFullShape(t *testing.T) {
	intervals := 1344
	events := Schedule(intervals, 60000)
	if len(events) != 36 {
		t.Fatalf("got %d events, want 36", len(events))
	}
	counts := map[Class]int{}
	anomalous := map[int]bool{}
	for _, e := range events {
		counts[e.Class]++
		if e.Start > e.End || e.End >= intervals {
			t.Fatalf("bad range %d..%d", e.Start, e.End)
		}
		for i := e.Start; i <= e.End; i++ {
			anomalous[i] = true
		}
		if e.Flows <= 0 {
			t.Fatalf("event %d has no flows", e.ID)
		}
	}
	if len(anomalous) != 31 {
		t.Errorf("anomalous intervals = %d, want 31", len(anomalous))
	}
	want := map[Class]int{
		Scanning: 12, Flooding: 5, Backscatter: 5, DDoS: 4, Spam: 4,
		NetworkExperiment: 3, Unknown: 3,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("class %v: %d events, want %d", c, counts[c], n)
		}
	}
	// Exactly one 3-interval and one 2-interval event.
	spans := map[int]int{}
	for _, e := range events {
		spans[e.End-e.Start+1]++
	}
	if spans[3] != 1 || spans[2] != 1 || spans[1] != 34 {
		t.Errorf("span histogram %v, want map[1:34 2:1 3:1]", spans)
	}
}

func TestScheduleCompressed(t *testing.T) {
	events := Schedule(60, 5000)
	if len(events) == 0 {
		t.Fatal("no events for short trace")
	}
	for _, e := range events {
		if e.End >= 60 {
			t.Fatalf("event beyond trace end: %+v", e)
		}
	}
	if len(Schedule(0, 1000)) != 0 {
		t.Error("zero intervals should give empty schedule")
	}
}

func TestGroundTruthSignatures(t *testing.T) {
	cfg := SmallConfig()
	g := New(cfg)
	gts := g.GroundTruth()
	if len(gts) != len(cfg.Events) {
		t.Fatalf("%d ground-truth events, want %d", len(gts), len(cfg.Events))
	}
	for _, gt := range gts {
		if len(gt.Signature) == 0 {
			t.Errorf("event %d (%v) has empty signature", gt.ID, gt.Class)
		}
		if gt.Name == "" {
			t.Errorf("event %d has no name", gt.ID)
		}
	}
}

func TestInjectedFlowsCarrySignature(t *testing.T) {
	cfg := SmallConfig()
	cfg.BaseFlows = 2000
	g := New(cfg)
	for _, idx := range g.AnomalousIntervals() {
		events := g.EventsAt(idx)
		if len(events) == 0 {
			t.Fatalf("interval %d marked anomalous but has no events", idx)
		}
		recs := g.Interval(idx)
		for _, ev := range events {
			matched := 0
			for i := range recs {
				items := make([]FeatureValue, 0, flow.NumFeatures)
				for _, k := range flow.AllFeatures {
					items = append(items, FeatureValue{k, recs[i].Feature(k)})
				}
				if ev.Matches(items) {
					matched++
				}
			}
			// At least half the event's nominal volume should carry a
			// signature value (volume jitter is ±10%).
			if matched < ev.Flows/2 {
				t.Errorf("interval %d event %q: only %d/%d flows match signature",
					idx, ev.Name, matched, ev.Flows)
			}
		}
	}
}

func TestAnomalousIntervalAccounting(t *testing.T) {
	cfg := SmallConfig()
	g := New(cfg)
	marked := map[int]bool{}
	for _, idx := range g.AnomalousIntervals() {
		marked[idx] = true
		if !g.IsAnomalous(idx) {
			t.Fatalf("interval %d in list but IsAnomalous false", idx)
		}
	}
	for i := 0; i < cfg.Intervals; i++ {
		if g.IsAnomalous(i) != marked[i] {
			t.Fatalf("IsAnomalous(%d) inconsistent", i)
		}
	}
}

func TestAnomalousIntervalHasMoreFlows(t *testing.T) {
	cfg := SmallConfig()
	g := New(cfg)
	anom := g.AnomalousIntervals()
	if len(anom) == 0 {
		t.Fatal("no anomalous intervals")
	}
	idx := anom[0]
	// Compare with a neighbouring clean interval at same diurnal phase
	// (±1 interval is close enough for a factor check).
	clean := idx + 1
	for g.IsAnomalous(clean) {
		clean++
	}
	nAnom := len(g.Interval(idx))
	nClean := len(g.Interval(clean))
	if nAnom <= nClean {
		t.Errorf("anomalous interval %d has %d flows, clean %d has %d",
			idx, nAnom, clean, nClean)
	}
}

func TestEventMatches(t *testing.T) {
	gt := GroundTruthEvent{
		Signature: []FeatureValue{{flow.DstPort, 7000}, {flow.DstIP, 42}},
	}
	if !gt.Matches([]FeatureValue{{flow.SrcPort, 1}, {flow.DstPort, 7000}}) {
		t.Error("should match on dstPort 7000")
	}
	if gt.Matches([]FeatureValue{{flow.SrcPort, 7000}}) {
		t.Error("srcPort 7000 must not match dstPort 7000")
	}
	if gt.Matches(nil) {
		t.Error("empty item list must not match")
	}
}

func TestTableIIScenario(t *testing.T) {
	d := TableIIScenario(1)
	if len(d.Flows) != TableIITotal {
		t.Fatalf("total flows %d, want %d", len(d.Flows), TableIITotal)
	}
	byPort := map[uint16]int{}
	floodToVictim := 0
	for i := range d.Flows {
		byPort[d.Flows[i].DstPort]++
		if d.Flows[i].DstPort == 7000 {
			if d.Flows[i].DstAddr != d.VictimE {
				t.Fatal("port-7000 flow not aimed at victim E")
			}
			floodToVictim++
		}
	}
	if byPort[7000] != 53467 {
		t.Errorf("flood flows %d, want 53467", byPort[7000])
	}
	if byPort[80] != 252069 {
		t.Errorf("web flows %d, want 252069", byPort[80])
	}
	if byPort[9022] != 22667 {
		t.Errorf("backscatter flows %d, want 22667", byPort[9022])
	}
	if byPort[25] != 22659 {
		t.Errorf("smtp flows %d, want 22659", byPort[25])
	}
	// Exactly three flood sources above the paper's minimum support.
	bySrc := map[uint32]int{}
	for i := range d.Flows {
		if d.Flows[i].DstPort == 7000 {
			bySrc[d.Flows[i].SrcAddr]++
		}
	}
	above := 0
	for _, n := range bySrc {
		if n >= d.MinSupport {
			above++
		}
	}
	if above != 3 {
		t.Errorf("%d flood sources above minsup, want 3", above)
	}
}

func TestTableIIDeterministic(t *testing.T) {
	a := TableIIScenario(9)
	b := TableIIScenario(9)
	if a.VictimE != b.VictimE || len(a.Flows) != len(b.Flows) {
		t.Fatal("scenario not deterministic")
	}
	for i := 0; i < len(a.Flows); i += 1000 {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestSasserScenario(t *testing.T) {
	d := SasserScenario(3, 5000)
	if d.StageFlows[0] == 0 || d.StageFlows[1] == 0 || d.StageFlows[2] == 0 {
		t.Fatalf("stage flows %v, all must be positive", d.StageFlows)
	}
	// Count flows matching each stage's meta-data; they must be disjoint.
	match := func(r *flow.Record, meta []FeatureValue) bool {
		for _, m := range meta {
			if r.Feature(m.Kind) == m.Value {
				return true
			}
		}
		return false
	}
	counts := [3]int{}
	for i := range d.Flows {
		inStages := 0
		for s := 0; s < 3; s++ {
			if match(&d.Flows[i], d.Meta[s][:]) {
				counts[s]++
				inStages++
			}
		}
		if inStages > 1 {
			t.Fatal("a flow matches two stages; stages must be flow-disjoint")
		}
	}
	for s := 0; s < 3; s++ {
		if counts[s] < d.StageFlows[s] {
			t.Errorf("stage %d: %d matching flows, expected at least %d",
				s, counts[s], d.StageFlows[s])
		}
	}
}

func TestClassString(t *testing.T) {
	if Flooding.String() != "Flooding" || Unknown.String() != "Unknown" {
		t.Error("class names wrong")
	}
	if Class(200).String() != "Class(200)" {
		t.Error("out-of-range class name wrong")
	}
}

func TestDiurnalCycle(t *testing.T) {
	cfg := DefaultConfig()
	b := newBaseline(&cfg)
	perDay := int(24 * 60 / 15)
	peak, trough := 0.0, 2.0
	for i := 0; i < perDay; i++ {
		v := b.diurnal(i)
		if v > peak {
			peak = v
		}
		if v < trough {
			trough = v
		}
	}
	if peak < 1.3 || trough > 0.7 {
		t.Errorf("diurnal range [%.2f, %.2f], want ~[0.65, 1.35]", trough, peak)
	}
	cfg.DiurnalAmplitude = 0
	b2 := newBaseline(&cfg)
	if b2.diurnal(17) != 1 {
		t.Error("zero amplitude should disable the cycle")
	}
}
