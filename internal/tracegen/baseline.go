package tracegen

import (
	"math"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// The baseline model produces the benign backbone mix. Its goals, in order:
//
//  1. Per-feature flow-count distributions that are *stable across
//     intervals* (so the KL distance between consecutive intervals stays
//     small and approximately stationary — the property §II-C's
//     previous-interval reference depends on);
//  2. Heavy-tailed popularity of ports and hosts (so prefilter collisions
//     with popular values produce the characteristic false-positive
//     item-sets of §III-D, e.g. {dstPort 80});
//  3. Realistic flow length marginals (so the #packets detector and the
//     packets/bytes items behave like the paper's).
//
// The model is intentionally simple: a fixed service catalogue with Zipf
// popularity, Zipf server pools inside the internal range, a Zipf pool of
// external peers with a uniform tail, bounded-Pareto packet counts, and
// per-packet sizes depending on service class.

// service describes one catalogue entry of the benign mix.
type service struct {
	port    uint16
	proto   uint8
	weight  float64 // relative share of benign flows
	pktMin  float64 // bounded-Pareto packet count parameters
	pktMax  float64
	pktAlph float64
	payload float64 // mean payload bytes per packet beyond the 40-byte header
}

// catalogue is the benign service mix. Weights approximate the share of
// flows (not bytes) by dominant services on a 2007-era academic backbone:
// web dominates, mail/DNS/SSH follow, with a tail of everything else.
var catalogue = []service{
	{port: 80, proto: flow.ProtoTCP, weight: 0.33, pktMin: 2, pktMax: 5000, pktAlph: 1.30, payload: 700},
	{port: 443, proto: flow.ProtoTCP, weight: 0.13, pktMin: 2, pktMax: 5000, pktAlph: 1.30, payload: 650},
	{port: 53, proto: flow.ProtoUDP, weight: 0.12, pktMin: 1, pktMax: 4, pktAlph: 2.5, payload: 80},
	{port: 25, proto: flow.ProtoTCP, weight: 0.065, pktMin: 4, pktMax: 800, pktAlph: 1.5, payload: 500},
	{port: 22, proto: flow.ProtoTCP, weight: 0.03, pktMin: 5, pktMax: 10000, pktAlph: 1.2, payload: 200},
	{port: 110, proto: flow.ProtoTCP, weight: 0.02, pktMin: 4, pktMax: 400, pktAlph: 1.6, payload: 400},
	{port: 143, proto: flow.ProtoTCP, weight: 0.02, pktMin: 4, pktMax: 600, pktAlph: 1.6, payload: 400},
	{port: 123, proto: flow.ProtoUDP, weight: 0.015, pktMin: 1, pktMax: 2, pktAlph: 3, payload: 48},
	{port: 8080, proto: flow.ProtoTCP, weight: 0.015, pktMin: 2, pktMax: 3000, pktAlph: 1.3, payload: 700},
	{port: 21, proto: flow.ProtoTCP, weight: 0.01, pktMin: 4, pktMax: 2000, pktAlph: 1.4, payload: 300},
	{port: 3389, proto: flow.ProtoTCP, weight: 0.008, pktMin: 10, pktMax: 5000, pktAlph: 1.3, payload: 250},
	{port: 6667, proto: flow.ProtoTCP, weight: 0.005, pktMin: 3, pktMax: 1000, pktAlph: 1.4, payload: 120},
	{port: 1935, proto: flow.ProtoTCP, weight: 0.005, pktMin: 10, pktMax: 8000, pktAlph: 1.2, payload: 900},
	{port: 9022, proto: flow.ProtoTCP, weight: 0.004, pktMin: 2, pktMax: 200, pktAlph: 1.6, payload: 300},
	// Catch-all high-port peer-to-peer-ish traffic; the actual port is
	// randomized per flow (see baseline.flow), keeping a realistic long
	// tail of destination ports.
	{port: 0, proto: flow.ProtoTCP, weight: 0.195, pktMin: 1, pktMax: 3000, pktAlph: 1.15, payload: 550},
}

const (
	nServers       = 4096  // busy internal servers (Zipf popularity)
	nClients       = 65536 // active internal clients per trace
	nExternalPool  = 49152 // recurring external peers (Zipf popularity)
	externalTailPr = 0.25  // share of external endpoints drawn uniformly
)

// baseline holds the immutable popularity tables, built once per
// generator from the trace seed.
type baseline struct {
	cfg *Config

	svcAlias    *stats.Alias
	serverAlias *stats.Alias // rank -> busy internal server
	extAlias    *stats.Alias // rank -> recurring external peer

	servers  []uint32 // internal server addresses
	clients  []uint32 // internal client addresses
	external []uint32 // recurring external peers
}

func newBaseline(cfg *Config) *baseline {
	r := stats.NewRand(cfg.Seed ^ 0xba5e11e5)
	b := &baseline{cfg: cfg}

	weights := make([]float64, len(catalogue))
	for i, s := range catalogue {
		weights[i] = s.weight
	}
	b.svcAlias = stats.NewAlias(weights)
	b.serverAlias = stats.NewZipfAlias(nServers, 1.05)
	b.extAlias = stats.NewZipfAlias(nExternalPool, 1.02)

	b.servers = make([]uint32, nServers)
	for i := range b.servers {
		b.servers[i] = b.internalAddr(r)
	}
	b.clients = make([]uint32, nClients)
	for i := range b.clients {
		b.clients[i] = b.internalAddr(r)
	}
	b.external = make([]uint32, nExternalPool)
	for i := range b.external {
		b.external[i] = externalAddr(r)
	}
	return b
}

func (b *baseline) internalAddr(r *stats.Rand) uint32 {
	return b.cfg.InternalBase + r.Uint32N(b.cfg.InternalSize)
}

// externalAddr draws a routable-looking address outside the internal range.
func externalAddr(r *stats.Rand) uint32 {
	for {
		a := r.Uint32N(0xdfffffff-0x0b000000) + 0x0b000000 // 11.0.0.0 - 223.255.255.255
		first := a >> 24
		if first == 127 || first == 0 || first >= 224 {
			continue
		}
		return a
	}
}

// diurnal returns the day/night load multiplier for interval idx.
func (b *baseline) diurnal(idx int) float64 {
	if b.cfg.DiurnalAmplitude == 0 {
		return 1
	}
	perDay := (24 * 3600 * 1000) / float64(b.cfg.IntervalLen.Milliseconds())
	phase := 2 * math.Pi * (float64(idx)/perDay - 0.25) // peak mid-afternoon
	return 1 + b.cfg.DiurnalAmplitude*math.Sin(phase)
}

// count returns the number of benign flows for interval idx, combining the
// diurnal cycle with ±3% multiplicative noise.
func (b *baseline) count(idx int, r *stats.Rand) int {
	n := float64(b.cfg.BaseFlows) * b.diurnal(idx) * (1 + 0.03*r.NormFloat64())
	if n < 1 {
		n = 1
	}
	return int(n)
}

// flow synthesizes one benign flow inside [startMs, endMs).
func (b *baseline) flow(r *stats.Rand, startMs, endMs int64) flow.Record {
	svc := catalogue[b.svcAlias.Sample(r)]
	port := svc.port
	if port == 0 { // long-tail service: random registered/dynamic port
		port = uint16(1024 + r.IntN(64512))
	}

	var rec flow.Record
	rec.Protocol = svc.proto

	// Pick server and client endpoints; half the flows are inbound
	// (external client -> internal server), half outbound.
	var serverIP, clientIP uint32
	if r.Bernoulli(0.65) {
		serverIP = b.servers[b.serverAlias.Sample(r)]
	} else {
		serverIP = b.internalServerTail(r)
	}
	if r.Bernoulli(externalTailPr) {
		clientIP = externalAddr(r)
	} else {
		clientIP = b.external[b.extAlias.Sample(r)]
	}
	inbound := r.Bernoulli(0.5)
	if inbound {
		rec.SrcAddr, rec.DstAddr = clientIP, serverIP
		rec.SrcPort, rec.DstPort = ephemeralPort(r), port
	} else {
		// Outbound: internal client talks to an external server.
		rec.SrcAddr = b.clients[r.IntN(len(b.clients))]
		rec.DstAddr = clientIP
		rec.SrcPort, rec.DstPort = ephemeralPort(r), port
	}

	pkts := svc.samplePackets(r)
	rec.Packets = pkts
	rec.Bytes = svc.sampleBytes(r, pkts)
	if rec.Protocol == flow.ProtoTCP {
		rec.TCPFlags = flow.FlagSYN | flow.FlagACK | flow.FlagPSH | flow.FlagFIN
	}

	rec.Start = startMs + int64(r.Float64()*float64(endMs-startMs))
	dur := int64(r.LogNormal(6.5, 1.8)) // ~ms scale, heavy-tailed seconds
	rec.End = rec.Start + dur
	if rec.End >= endMs {
		rec.End = endMs - 1
	}
	if rec.End < rec.Start {
		rec.End = rec.Start
	}
	return rec
}

// internalServerTail picks a rarely used internal address, modeling the
// long tail of lightly loaded hosts behind the popular servers.
func (b *baseline) internalServerTail(r *stats.Rand) uint32 {
	return b.cfg.InternalBase + r.Uint32N(b.cfg.InternalSize)
}

func ephemeralPort(r *stats.Rand) uint16 {
	return uint16(1024 + r.IntN(64512))
}

func (s *service) samplePackets(r *stats.Rand) uint32 {
	p := r.BoundedPareto(s.pktAlph, s.pktMin, s.pktMax)
	if p < 1 {
		p = 1
	}
	return uint32(p)
}

func (s *service) sampleBytes(r *stats.Rand, pkts uint32) uint64 {
	// 40-byte headers plus a noisy per-packet payload.
	perPkt := 40 + s.payload*(0.5+r.Float64())
	return uint64(float64(pkts) * perPkt)
}
