package tracegen

import (
	"fmt"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// Class enumerates the seven anomaly classes of the paper's Table IV.
type Class uint8

const (
	Flooding Class = iota
	Backscatter
	NetworkExperiment
	DDoS
	Scanning
	Spam
	Unknown
	numClasses
)

var classNames = [numClasses]string{
	"Flooding", "Backscatter", "Network Experiment", "DDoS",
	"Scanning", "Spam", "Unknown",
}

// String returns the class name as it appears in Table IV.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// FeatureValue is one (feature kind, value) pair — the unit of detector
// meta-data, of item-set items, and of event signatures.
type FeatureValue struct {
	Kind  flow.FeatureKind
	Value uint64
}

// String renders the pair in the paper's item notation, e.g. "dstPort=7000".
func (fv FeatureValue) String() string {
	return fv.Kind.String() + "=" + flow.FormatValue(fv.Kind, fv.Value)
}

// Event is one scheduled anomalous event: a class, an inclusive interval
// range, and a target flow volume per interval. Concrete endpoints (victim
// addresses, scanner hosts, ports) are derived deterministically from the
// trace seed and the event ID when a Generator is built, and exposed via
// GroundTruth.
type Event struct {
	ID    int
	Class Class
	Start int // first affected interval (inclusive)
	End   int // last affected interval (inclusive)
	Flows int // approximate anomalous flows per affected interval
}

// Active reports whether the event injects flows into interval idx.
func (e *Event) Active(idx int) bool { return idx >= e.Start && idx <= e.End }

// GroundTruthEvent augments a scheduled event with its materialized
// parameters and signature, for evaluation against extracted item-sets.
type GroundTruthEvent struct {
	Event
	Name string
	// Signature holds the feature values that define the event. An
	// extracted item-set is a true positive for the event if it contains
	// at least one signature value (§III-A's manual verification, made
	// mechanical — see DESIGN.md §3).
	Signature []FeatureValue
}

// Matches reports whether an item-set containing the given feature values
// matches this event's signature.
func (g *GroundTruthEvent) Matches(items []FeatureValue) bool {
	for _, it := range items {
		for _, sig := range g.Signature {
			if it == sig {
				return true
			}
		}
	}
	return false
}

// eventState carries the materialized per-event parameters used during
// generation.
type eventState struct {
	GroundTruthEvent

	victimIP   uint32   // flooding, ddos, unknown
	victimPort uint16   // flooding, backscatter, experiment, unknown, scanning target port
	sources    []uint32 // flooding attackers, spam bots
	scannerIP  uint32   // scanning, experiment source
	pktCount   uint32   // fixed per-flow packets where the class pins it
	byteCount  uint64   // fixed per-flow bytes where the class pins it
}

// uncommonPorts are target-port choices that do not collide with the
// benign service catalogue, used by classes whose footprint is defined by
// an unusual port (the paper's flooding example used port 7000).
var uncommonPorts = []uint16{7000, 9996, 12543, 27015, 31337, 5061, 16891, 40123}

// scanPorts are classic scanning targets (absent from the benign
// catalogue, like the Sasser/Blaster-era services).
var scanPorts = []uint16{445, 135, 139, 1433, 5900, 4899, 2967, 1025}

// materialize derives the concrete parameters of a scheduled event.
func materialize(cfg *Config, ev Event) *eventState {
	r := stats.NewRand(cfg.Seed ^ 0xe7e27 ^ uint64(ev.ID)*0x9e3779b97f4a7c15)
	st := &eventState{}
	st.Event = ev

	internal := func() uint32 { return cfg.InternalBase + r.Uint32N(cfg.InternalSize) }

	switch ev.Class {
	case Flooding:
		// A small number of compromised hosts flood one victim host and
		// port (§II-B example: hosts flooding victim E on dstPort 7000).
		st.victimIP = internal()
		st.victimPort = uncommonPorts[r.IntN(len(uncommonPorts))]
		n := 3 + r.IntN(5)
		for i := 0; i < n; i++ {
			st.sources = append(st.sources, externalAddr(r))
		}
		st.Signature = []FeatureValue{
			{flow.DstIP, uint64(st.victimIP)},
			{flow.DstPort, uint64(st.victimPort)},
		}
		for _, s := range st.sources {
			st.Signature = append(st.Signature, FeatureValue{flow.SrcIP, uint64(s)})
		}
		st.Name = fmt.Sprintf("flooding of %s:%d by %d hosts",
			flow.U32ToAddr(st.victimIP), st.victimPort, n)

	case Backscatter:
		// Responses of a remote DoS victim to spoofed sources in our
		// range: every flow has a different source IP and a random
		// source port, with a common destination port (§II-B: port 9022).
		st.victimPort = 9022
		if r.Bernoulli(0.5) {
			st.victimPort = uncommonPorts[r.IntN(len(uncommonPorts))]
		}
		st.pktCount = 1
		st.byteCount = 40
		st.Signature = []FeatureValue{{flow.DstPort, uint64(st.victimPort)}}
		st.Name = fmt.Sprintf("backscatter on dstPort %d", st.victimPort)

	case NetworkExperiment:
		// A PlanetLab-style measurement host probing many external
		// destinations on one unusual port with fixed-size flows.
		st.scannerIP = internal()
		st.victimPort = uncommonPorts[r.IntN(len(uncommonPorts))]
		st.pktCount = 3
		st.byteCount = 3 * 64
		st.Signature = []FeatureValue{
			{flow.SrcIP, uint64(st.scannerIP)},
			{flow.DstPort, uint64(st.victimPort)},
		}
		st.Name = fmt.Sprintf("network experiment from %s on dstPort %d",
			flow.U32ToAddr(st.scannerIP), st.victimPort)

	case DDoS:
		// Many distinct sources target one victim. The service port may
		// be a common one (80), in which case only the victim address
		// defines the event — the situation §III-D calls out as FP-prone.
		st.victimIP = internal()
		if r.Bernoulli(0.5) {
			st.victimPort = 80
		} else {
			st.victimPort = uncommonPorts[r.IntN(len(uncommonPorts))]
		}
		st.pktCount = 2
		st.Signature = []FeatureValue{{flow.DstIP, uint64(st.victimIP)}}
		if st.victimPort != 80 {
			st.Signature = append(st.Signature, FeatureValue{flow.DstPort, uint64(st.victimPort)})
		}
		st.Name = fmt.Sprintf("ddos on %s:%d", flow.U32ToAddr(st.victimIP), st.victimPort)

	case Scanning:
		// One scanner sweeps the internal range on a fixed service port
		// with single-packet probes of fixed size.
		st.scannerIP = externalAddr(r)
		st.victimPort = scanPorts[r.IntN(len(scanPorts))]
		st.pktCount = 1
		st.byteCount = 48
		st.Signature = []FeatureValue{
			{flow.SrcIP, uint64(st.scannerIP)},
			{flow.DstPort, uint64(st.victimPort)},
		}
		st.Name = fmt.Sprintf("scan of dstPort %d from %s",
			st.victimPort, flow.U32ToAddr(st.scannerIP))

	case Spam:
		// A handful of bots deliver to many SMTP servers; the footprint
		// is the bots' source addresses plus the spike on dstPort 25.
		st.victimPort = 25
		n := 3 + r.IntN(3)
		for i := 0; i < n; i++ {
			st.sources = append(st.sources, externalAddr(r))
		}
		st.Signature = []FeatureValue{{flow.DstPort, 25}}
		for _, s := range st.sources {
			st.Signature = append(st.Signature, FeatureValue{flow.SrcIP, uint64(s)})
		}
		st.Name = fmt.Sprintf("spam campaign from %d hosts", n)

	case Unknown:
		// An unexplained fixed-size UDP stream toward a few hosts on a
		// high port — the kind of event the analysts could not classify.
		st.victimIP = internal()
		st.victimPort = uint16(20000 + r.IntN(40000))
		st.pktCount = 5
		st.byteCount = 5 * 120
		st.Signature = []FeatureValue{
			{flow.DstPort, uint64(st.victimPort)},
			{flow.DstIP, uint64(st.victimIP)},
		}
		st.Name = fmt.Sprintf("unknown udp stream to %s:%d",
			flow.U32ToAddr(st.victimIP), st.victimPort)

	default:
		panic(fmt.Sprintf("tracegen: invalid class %d", ev.Class))
	}
	return st
}

// inject appends the event's flows for interval idx to dst.
func (st *eventState) inject(cfg *Config, idx int, r *stats.Rand, dst []flow.Record) []flow.Record {
	startMs := cfg.IntervalStart(idx)
	endMs := startMs + cfg.IntervalLen.Milliseconds()
	// ±10% volume jitter so consecutive intervals of a multi-interval
	// event are not byte-identical.
	n := int(float64(st.Flows) * (0.9 + 0.2*r.Float64()))

	internal := func() uint32 { return cfg.InternalBase + r.Uint32N(cfg.InternalSize) }
	stamp := func(rec *flow.Record) {
		rec.Start = startMs + int64(r.Float64()*float64(endMs-startMs))
		rec.End = rec.Start + int64(r.IntN(2000))
		if rec.End >= endMs {
			rec.End = endMs - 1
		}
	}

	for i := 0; i < n; i++ {
		var rec flow.Record
		switch st.Class {
		case Flooding:
			rec = flow.Record{
				SrcAddr: st.sources[r.IntN(len(st.sources))], DstAddr: st.victimIP,
				SrcPort: ephemeralPort(r), DstPort: st.victimPort,
				Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN,
				Packets: uint32(1 + r.IntN(3)),
			}
			rec.Bytes = uint64(rec.Packets) * 40
		case Backscatter:
			rec = flow.Record{
				SrcAddr: externalAddr(r), DstAddr: internal(),
				SrcPort: ephemeralPort(r), DstPort: st.victimPort,
				Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN | flow.FlagACK,
				Packets: st.pktCount, Bytes: st.byteCount,
			}
		case NetworkExperiment:
			rec = flow.Record{
				SrcAddr: st.scannerIP, DstAddr: externalAddr(r),
				SrcPort: ephemeralPort(r), DstPort: st.victimPort,
				Protocol: flow.ProtoUDP,
				Packets:  st.pktCount, Bytes: st.byteCount,
			}
		case DDoS:
			rec = flow.Record{
				SrcAddr: externalAddr(r), DstAddr: st.victimIP,
				SrcPort: ephemeralPort(r), DstPort: st.victimPort,
				Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN,
				Packets: st.pktCount, Bytes: uint64(st.pktCount) * 40,
			}
		case Scanning:
			rec = flow.Record{
				SrcAddr: st.scannerIP, DstAddr: internal(),
				SrcPort: ephemeralPort(r), DstPort: st.victimPort,
				Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN,
				Packets: st.pktCount, Bytes: st.byteCount,
			}
		case Spam:
			rec = flow.Record{
				SrcAddr: st.sources[r.IntN(len(st.sources))], DstAddr: externalAddr(r),
				SrcPort: ephemeralPort(r), DstPort: 25,
				Protocol: flow.ProtoTCP, TCPFlags: flow.FlagSYN | flow.FlagACK | flow.FlagPSH,
				Packets: uint32(10 + r.IntN(50)),
			}
			rec.Bytes = uint64(rec.Packets) * uint64(200+r.IntN(800))
		case Unknown:
			rec = flow.Record{
				SrcAddr: externalAddr(r), DstAddr: st.victimIP,
				SrcPort: ephemeralPort(r), DstPort: st.victimPort,
				Protocol: flow.ProtoUDP,
				Packets:  st.pktCount, Bytes: st.byteCount,
			}
		}
		stamp(&rec)
		dst = append(dst, rec)
	}
	return dst
}
