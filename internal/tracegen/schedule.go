package tracegen

// Schedule builds the ground-truth anomaly schedule modeled on the paper's
// Table IV: 36 events in 31 anomalous intervals over the trace, spread
// across the seven classes. Flow volumes are expressed relative to
// baseFlows (the benign flows per interval) so that the schedule scales
// with the configured trace size.
//
// Structure mirrors the paper's observations:
//   - one backscatter event spans three consecutive intervals (§II-B: the
//     backscatter anomaly "was flagged by the detector in an earlier
//     interval where it had started");
//   - one flooding event spans two intervals;
//   - several intervals contain two simultaneous events (36 events fit in
//     31 intervals).
func Schedule(intervals, baseFlows int) []Event {
	slots := scheduleSlots(intervals)
	if len(slots) == 0 {
		return nil
	}

	frac := func(f float64, id int) int {
		// Deterministic ±20% per-event volume variation.
		v := f * float64(baseFlows) * (0.8 + 0.4*float64((id*37)%100)/100)
		if v < 1 {
			v = 1
		}
		return int(v)
	}

	// Per-class share of baseline volume (see DESIGN.md §3: proportional
	// to Table IV's per-class average flow counts, scaled to our volume).
	classFrac := map[Class]float64{
		Flooding:          0.55,
		Backscatter:       0.30,
		NetworkExperiment: 0.25,
		DDoS:              0.75,
		Scanning:          0.40,
		Spam:              0.28,
		Unknown:           0.16,
	}

	var events []Event
	id := 0
	add := func(c Class, start, end int) {
		events = append(events, Event{
			ID: id, Class: c, Start: start, End: end,
			Flows: frac(classFrac[c], id),
		})
		id++
	}

	if len(slots) < 31 {
		// Compressed schedule for short traces: cycle through the
		// classes, one single-interval event per slot.
		order := []Class{Scanning, Flooding, Backscatter, DDoS, Spam, NetworkExperiment, Unknown}
		for i, s := range slots {
			add(order[i%len(order)], s, s)
		}
		return events
	}

	// Full Table IV schedule over 31 slots. Slots 4..6 and 20..21 are
	// consecutive intervals (see scheduleSlots).
	add(Backscatter, slots[4], slots[6]) // 3-interval backscatter
	add(Flooding, slots[20], slots[21])  // 2-interval flooding

	// Remaining 34 single-interval events over the 26 remaining slots;
	// the 8 slots listed in doubles host two events each.
	singles := make([]int, 0, 26)
	for i, s := range slots {
		if i == 4 || i == 5 || i == 6 || i == 20 || i == 21 {
			continue
		}
		singles = append(singles, s)
	}
	doubles := map[int]bool{0: true, 3: true, 8: true, 12: true, 16: true, 22: true, 24: true, 25: true}
	classSeq := []Class{
		// 12 scanning, 4 flooding, 4 backscatter, 4 ddos, 4 spam,
		// 3 experiments, 3 unknown — interleaved so neighbouring
		// anomalous intervals differ in class.
		Scanning, DDoS, Scanning, Spam, Scanning, Flooding, Backscatter,
		Scanning, NetworkExperiment, Scanning, DDoS, Unknown, Scanning,
		Spam, Flooding, Scanning, Backscatter, Scanning, DDoS, Spam,
		Scanning, NetworkExperiment, Flooding, Scanning, Backscatter,
		Unknown, Scanning, Spam, DDoS, Backscatter, Scanning, Flooding,
		NetworkExperiment, Unknown,
	}
	seq := 0
	for i, s := range singles {
		add(classSeq[seq], s, s)
		seq++
		if doubles[i] {
			add(classSeq[seq], s, s)
			seq++
		}
	}
	return events
}

// scheduleSlots returns the anomalous interval indices: up to 31 slots
// spread over the trace, with the runs at logical slots 4..6 and 20..21
// made consecutive to host the multi-interval events.
func scheduleSlots(intervals int) []int {
	if intervals <= 0 {
		return nil
	}
	n := 31
	if intervals < 4*n {
		n = intervals / 4
		if n == 0 && intervals > 2 {
			n = 1
		}
	}
	// Leave a warmup margin before the first event so detectors can
	// finish MAD training (§II-C needs a handful of clean intervals).
	warmup := 16
	if intervals/10 < warmup {
		warmup = intervals / 10
	}
	slots := make([]int, 0, n)
	step := float64(intervals-warmup) / float64(n+1)
	for i := 0; i < n; i++ {
		slots = append(slots, warmup+int(step*float64(i+1)))
	}
	if n == 31 && step >= 3 {
		slots[5] = slots[4] + 1
		slots[6] = slots[4] + 2
		slots[21] = slots[20] + 1
	}
	// Deduplicate and clamp defensively for tiny traces.
	seen := map[int]bool{}
	out := slots[:0]
	for _, s := range slots {
		if s >= intervals {
			s = intervals - 1
		}
		if s < 0 || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
