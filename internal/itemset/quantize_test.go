package itemset

import (
	"testing"
	"testing/quick"

	"anomalyx/internal/flow"
)

func TestLog2Bucket(t *testing.T) {
	cases := map[uint64]uint64{
		0: 0, 1: 1, 2: 2, 3: 2, 4: 4, 7: 4, 8: 8, 15: 8,
		16: 16, 1023: 512, 1024: 1024, 1 << 40: 1 << 40,
	}
	for in, want := range cases {
		if got := Log2Bucket(in); got != want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLog2BucketProperties(t *testing.T) {
	f := func(v uint64) bool {
		b := Log2Bucket(v)
		if v == 0 {
			return b == 0
		}
		// Bucket is a power of two, <= v, and v < 2*bucket.
		return b&(b-1) == 0 && b <= v && (b > 1<<62 || v < 2*b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeTransaction(t *testing.T) {
	rec := flow.Record{DstPort: 443, Packets: 100, Bytes: 150000}
	tx := QuantizeTransaction(FromFlow(&rec), SizeKinds...)
	if tx[flow.Packets] != 64 {
		t.Errorf("packets bucket %d", tx[flow.Packets])
	}
	if tx[flow.Bytes] != 131072 {
		t.Errorf("bytes bucket %d", tx[flow.Bytes])
	}
	if tx[flow.DstPort] != 443 {
		t.Error("non-size feature modified")
	}
}

func TestQuantizeAllDoesNotMutateInput(t *testing.T) {
	rec := flow.Record{Packets: 9}
	in := []Transaction{FromFlow(&rec)}
	out := QuantizeAll(in, flow.Packets)
	if in[0][flow.Packets] != 9 {
		t.Error("input mutated")
	}
	if out[0][flow.Packets] != 8 {
		t.Errorf("output bucket %d", out[0][flow.Packets])
	}
}
