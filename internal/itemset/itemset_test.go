package itemset

import (
	"testing"
	"testing/quick"

	"anomalyx/internal/flow"
)

func TestFromFlow(t *testing.T) {
	rec := flow.Record{
		SrcAddr: 111, DstAddr: 222, SrcPort: 333, DstPort: 444,
		Protocol: 6, Packets: 7, Bytes: 888,
	}
	tx := FromFlow(&rec)
	if tx[flow.SrcIP] != 111 || tx[flow.DstPort] != 444 || tx[flow.Bytes] != 888 {
		t.Errorf("transaction wrong: %v", tx)
	}
	items := tx.Items()
	if len(items) != flow.NumFeatures {
		t.Fatalf("width %d, want 7", len(items))
	}
	for i := 1; i < len(items); i++ {
		if !items[i-1].Less(items[i]) && items[i-1].Kind >= items[i].Kind {
			t.Error("items not in canonical kind order")
		}
	}
}

func TestTransactionContains(t *testing.T) {
	rec := flow.Record{DstPort: 7000, Protocol: 6, Packets: 1, Bytes: 40}
	tx := FromFlow(&rec)
	s := NewSet([]Item{{flow.DstPort, 7000}, {flow.Proto, 6}}, 0)
	if !tx.Contains(&s) {
		t.Error("transaction should contain {dstPort=7000, proto=6}")
	}
	s2 := NewSet([]Item{{flow.DstPort, 7000}, {flow.Proto, 17}}, 0)
	if tx.Contains(&s2) {
		t.Error("transaction should not contain proto=17")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	items := []Item{{flow.DstPort, 7000}, {flow.SrcIP, 42}, {flow.Bytes, 1 << 40}}
	k := KeyOf(items)
	if k.Size() != 3 {
		t.Fatalf("Size = %d", k.Size())
	}
	back := k.Items()
	if len(back) != 3 {
		t.Fatalf("decoded %d items", len(back))
	}
	// Canonical order: srcIP < dstPort < bytes.
	if back[0].Kind != flow.SrcIP || back[1].Kind != flow.DstPort || back[2].Kind != flow.Bytes {
		t.Errorf("decoded order wrong: %v", back)
	}
	if back[0].Value != 42 || back[1].Value != 7000 || back[2].Value != 1<<40 {
		t.Errorf("decoded values wrong: %v", back)
	}
}

func TestKeyOfPanicsOnDuplicateKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate kind accepted")
		}
	}()
	KeyOf([]Item{{flow.DstPort, 80}, {flow.DstPort, 443}})
}

func TestKeyEqualityIsSetEquality(t *testing.T) {
	f := func(v1, v2 uint32) bool {
		a := KeyOf([]Item{{flow.SrcIP, uint64(v1)}, {flow.DstIP, uint64(v2)}})
		b := KeyOf([]Item{{flow.DstIP, uint64(v2)}, {flow.SrcIP, uint64(v1)}})
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetSubsetOf(t *testing.T) {
	small := NewSet([]Item{{flow.DstPort, 7000}}, 0)
	big := NewSet([]Item{{flow.DstPort, 7000}, {flow.Proto, 6}}, 0)
	other := NewSet([]Item{{flow.DstPort, 80}}, 0)
	if !small.SubsetOf(&big) {
		t.Error("small should be subset of big")
	}
	if big.SubsetOf(&small) {
		t.Error("big is not subset of small")
	}
	if other.SubsetOf(&big) {
		t.Error("other is not subset of big")
	}
	if !small.SubsetOf(&small) {
		t.Error("set is subset of itself")
	}
}

func TestNewSetCanonicalizes(t *testing.T) {
	s := NewSet([]Item{{flow.Bytes, 9}, {flow.SrcIP, 1}}, 5)
	if s.Items[0].Kind != flow.SrcIP || s.Items[1].Kind != flow.Bytes {
		t.Errorf("not canonical: %v", s.Items)
	}
	if s.Support != 5 {
		t.Errorf("support %d", s.Support)
	}
}

func TestNewSetCopiesInput(t *testing.T) {
	in := []Item{{flow.SrcIP, 1}, {flow.Bytes, 9}}
	s := NewSet(in, 0)
	in[0] = Item{flow.SrcIP, 999}
	if s.Items[0].Value == 999 {
		t.Error("NewSet aliases its input")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet([]Item{{flow.DstPort, 7000}, {flow.Proto, 6}}, 53467)
	want := "{dstPort=7000, proto=6} (support 53467)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestItemString(t *testing.T) {
	it := Item{flow.DstIP, uint64(flow.MustParseU32("10.1.2.3"))}
	if it.String() != "dstIP=10.1.2.3" {
		t.Errorf("String = %q", it.String())
	}
}

func TestSortSets(t *testing.T) {
	sets := []Set{
		NewSet([]Item{{flow.DstPort, 80}}, 10),
		NewSet([]Item{{flow.DstPort, 80}, {flow.Proto, 6}}, 30),
		NewSet([]Item{{flow.DstPort, 25}}, 30),
		NewSet([]Item{{flow.DstPort, 7000}}, 100),
	}
	SortSets(sets)
	if sets[0].Support != 100 {
		t.Errorf("first by support: %v", sets[0])
	}
	// Equal support: larger set first.
	if sets[1].Size() != 2 || sets[2].Size() != 1 {
		t.Errorf("tie-break by size failed: %v then %v", sets[1], sets[2])
	}
	if sets[3].Support != 10 {
		t.Errorf("last: %v", sets[3])
	}
}

func TestFromFlows(t *testing.T) {
	recs := []flow.Record{{DstPort: 1}, {DstPort: 2}}
	txs := FromFlows(recs)
	if len(txs) != 2 || txs[0][flow.DstPort] != 1 || txs[1][flow.DstPort] != 2 {
		t.Errorf("FromFlows wrong: %v", txs)
	}
}
