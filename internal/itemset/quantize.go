package itemset

import (
	"math/bits"

	"anomalyx/internal/flow"
)

// Quantitative features like flow size in packets or bytes rarely repeat
// exactly: two downloads of the same object differ by a few packets, so
// exact-value items fragment their support. §V lists "mining on ...
// quantitative features" as an extension; the standard approach is to
// bucket such features before mining. Log2Quantize buckets a value to
// the lower bound of its power-of-two interval — 1, 2-3, 4-7, 8-15, ... —
// which keeps small flow sizes exact (where anomalies such as
// single-packet scans live) while merging the heavy tail.

// Log2Bucket maps v to its bucket representative: the largest power of
// two not exceeding v (0 maps to 0).
func Log2Bucket(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return 1 << (bits.Len64(v) - 1)
}

// QuantizeTransaction buckets the given feature kinds of tx in place and
// returns it.
func QuantizeTransaction(tx Transaction, kinds ...flow.FeatureKind) Transaction {
	for _, k := range kinds {
		tx[k] = Log2Bucket(tx[k])
	}
	return tx
}

// QuantizeAll buckets the given features of every transaction, returning
// a new slice.
func QuantizeAll(txs []Transaction, kinds ...flow.FeatureKind) []Transaction {
	out := make([]Transaction, len(txs))
	for i, tx := range txs {
		out[i] = QuantizeTransaction(tx, kinds...)
	}
	return out
}

// SizeKinds are the quantitative flow-size features usually bucketed
// together.
var SizeKinds = []flow.FeatureKind{flow.Packets, flow.Bytes}
