// Package itemset defines the transaction model of §II-B: every flow
// record maps to a transaction of exactly seven items, one per traffic
// feature, and frequent item-set mining searches for sets of (feature,
// value) pairs shared by at least a minimum-support number of flows.
//
// Ordering guarantees: FromFlows preserves flow order (transaction i is
// flow i), NewSet canonicalizes a set's items into ascending
// feature-kind order, and SortSets orders result slices by descending
// support with size and lexicographic tiebreaks — the deterministic
// shapes the cross-miner equivalence and byte-identical-report tests
// rely on.
package itemset

import (
	"fmt"
	"sort"
	"strings"

	"anomalyx/internal/flow"
)

// Item is one (feature kind, feature value) pair, e.g. dstPort=7000. By
// construction a transaction cannot contain two items of the same kind.
type Item struct {
	Kind  flow.FeatureKind
	Value uint64
}

// String renders the item in the paper's notation, e.g. "dstPort=7000".
func (it Item) String() string {
	return it.Kind.String() + "=" + flow.FormatValue(it.Kind, it.Value)
}

// Less orders items by feature kind, then value — the canonical item-set
// order.
func (it Item) Less(other Item) bool {
	if it.Kind != other.Kind {
		return it.Kind < other.Kind
	}
	return it.Value < other.Value
}

// Transaction is a flow record viewed as a transaction: feature values
// indexed by flow.FeatureKind. The transaction width is always seven.
type Transaction [flow.NumFeatures]uint64

// FromFlow converts a flow record to its transaction.
func FromFlow(rec *flow.Record) Transaction {
	var t Transaction
	for _, k := range flow.AllFeatures {
		t[k] = rec.Feature(k)
	}
	return t
}

// FromFlows converts a batch of flow records.
func FromFlows(recs []flow.Record) []Transaction {
	out := make([]Transaction, len(recs))
	for i := range recs {
		out[i] = FromFlow(&recs[i])
	}
	return out
}

// Item returns the transaction's item of kind k.
func (t *Transaction) Item(k flow.FeatureKind) Item {
	return Item{Kind: k, Value: t[k]}
}

// Items returns all seven items in canonical order.
func (t *Transaction) Items() []Item {
	out := make([]Item, flow.NumFeatures)
	for _, k := range flow.AllFeatures {
		out[k] = Item{Kind: k, Value: t[k]}
	}
	return out
}

// Contains reports whether the transaction contains every item of set.
func (t *Transaction) Contains(set *Set) bool {
	for _, it := range set.Items {
		if t[it.Kind] != it.Value {
			return false
		}
	}
	return true
}

// Key is a canonical, comparable encoding of an item-set: a bitmask of
// the feature kinds present plus the value per kind. It serves as the map
// key in support counting.
type Key struct {
	Mask uint8
	Vals [flow.NumFeatures]uint64
}

// Add returns k extended with item it.
func (k Key) Add(it Item) Key {
	k.Mask |= 1 << it.Kind
	k.Vals[it.Kind] = it.Value
	return k
}

// Size returns the number of items in the key.
func (k Key) Size() int {
	n := 0
	for m := k.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Items decodes the key back to canonical item order.
func (k Key) Items() []Item {
	out := make([]Item, 0, k.Size())
	for _, kind := range flow.AllFeatures {
		if k.Mask&(1<<kind) != 0 {
			out = append(out, Item{Kind: kind, Value: k.Vals[kind]})
		}
	}
	return out
}

// KeyOf builds the canonical key of items. Items must have pairwise
// distinct kinds; it panics otherwise (transactions cannot contain two
// items of the same feature).
func KeyOf(items []Item) Key {
	var k Key
	for _, it := range items {
		if k.Mask&(1<<it.Kind) != 0 {
			panic(fmt.Sprintf("itemset: duplicate feature kind %v", it.Kind))
		}
		k = k.Add(it)
	}
	return k
}

// Set is a frequent item-set with its support count.
type Set struct {
	Items   []Item // canonical order (ascending feature kind)
	Support int    // number of transactions containing the set
}

// NewSet builds a Set from items (copied and canonicalized) and support.
func NewSet(items []Item, support int) Set {
	cp := make([]Item, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	return Set{Items: cp, Support: support}
}

// Key returns the set's canonical key.
func (s *Set) Key() Key { return KeyOf(s.Items) }

// Size returns the number of items (the "k" of a k-item-set).
func (s *Set) Size() int { return len(s.Items) }

// Has reports whether the set contains item it.
func (s *Set) Has(it Item) bool {
	for _, x := range s.Items {
		if x == it {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every item of s appears in t.
func (s *Set) SubsetOf(t *Set) bool {
	if s.Size() > t.Size() {
		return false
	}
	for _, it := range s.Items {
		if !t.Has(it) {
			return false
		}
	}
	return true
}

// String renders the set like "{dstPort=7000, proto=6} (support 53467)".
func (s *Set) String() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, ", ") + fmt.Sprintf("} (support %d)", s.Support)
}

// SortSets orders sets by support (descending), then size (descending),
// then lexicographically — the stable report order used everywhere.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := &sets[i], &sets[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.Size() != b.Size() {
			return a.Size() > b.Size()
		}
		for k := 0; k < a.Size() && k < b.Size(); k++ {
			if a.Items[k] != b.Items[k] {
				return a.Items[k].Less(b.Items[k])
			}
		}
		return false
	})
}
