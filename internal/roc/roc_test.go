package roc

import (
	"math"
	"testing"
)

func TestPerfectSeparation(t *testing.T) {
	scores := []float64{10, 9, 8, 1, 0.5, 0.2}
	labels := []bool{true, true, true, false, false, false}
	c := Compute(scores, labels)
	if auc := c.AUC(); math.Abs(auc-1) > 1e-9 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	if tpr := c.TPRAt(0); tpr != 1 {
		t.Errorf("TPR at FPR 0 = %v, want 1", tpr)
	}
}

func TestRandomScoresAUCHalf(t *testing.T) {
	// Alternating labels with strictly decreasing scores: AUC ≈ 0.5.
	var scores []float64
	var labels []bool
	for i := 0; i < 1000; i++ {
		scores = append(scores, float64(1000-i))
		labels = append(labels, i%2 == 0)
	}
	c := Compute(scores, labels)
	if auc := c.AUC(); math.Abs(auc-0.5) > 0.01 {
		t.Errorf("AUC = %v, want ~0.5", auc)
	}
}

func TestInvertedScores(t *testing.T) {
	scores := []float64{1, 2, 3, 4}
	labels := []bool{true, true, false, false}
	c := Compute(scores, labels)
	if auc := c.AUC(); auc > 0.1 {
		t.Errorf("AUC = %v, want ~0 for inverted scores", auc)
	}
}

func TestCurveMonotone(t *testing.T) {
	scores := []float64{5, 4, 4, 3, 2, 2, 1}
	labels := []bool{true, false, true, true, false, false, true}
	c := Compute(scores, labels)
	prevF, prevT := -1.0, -1.0
	for _, p := range c {
		if p.FPR < prevF || p.TPR < prevT {
			t.Fatalf("curve not monotone: %+v", c)
		}
		prevF, prevT = p.FPR, p.TPR
	}
	last := c[len(c)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
}

func TestTiesGroupedTogether(t *testing.T) {
	// Two rows share a score: they must move the curve in one step.
	scores := []float64{3, 3, 1}
	labels := []bool{true, false, false}
	c := Compute(scores, labels)
	if len(c) != 2 {
		t.Fatalf("got %d points, want 2: %+v", len(c), c)
	}
	if c[0].TPR != 1 || c[0].FPR != 0.5 {
		t.Errorf("tie handling wrong: %+v", c[0])
	}
}

func TestTPRAtAndFPRAtTPR(t *testing.T) {
	scores := []float64{10, 8, 6, 4, 2}
	labels := []bool{true, false, true, false, true}
	c := Compute(scores, labels)
	// Operating points: (0,1/3), (1/2,1/3), (1/2,2/3), (1,2/3), (1,1).
	if got := c.TPRAt(0.4); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("TPRAt(0.4) = %v", got)
	}
	if got := c.FPRAtTPR(0.6); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FPRAtTPR(0.6) = %v", got)
	}
	if got := c.FPRAtTPR(2); !math.IsNaN(got) {
		t.Errorf("unreachable TPR should give NaN, got %v", got)
	}
}

func TestAllOneClass(t *testing.T) {
	c := Compute([]float64{1, 2, 3}, []bool{true, true, true})
	// No negatives: FPR pinned to 0.
	for _, p := range c {
		if p.FPR != 0 {
			t.Errorf("FPR with no negatives: %+v", p)
		}
	}
}

func TestComputePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Compute([]float64{1}, []bool{true, false})
}

func TestEmptyCurveAUC(t *testing.T) {
	var c Curve
	if !math.IsNaN(c.AUC()) {
		t.Error("empty curve AUC should be NaN")
	}
}
