// Package roc computes receiver-operating-characteristic curves for the
// detection evaluation of §III-B: given a per-interval detection score
// (the first difference of the KL time series) and the ground-truth
// labeling of intervals, it sweeps the alarm threshold and reports
// (FPR, TPR) operating points. Curves are deterministic functions of
// the (score, label) pairs: thresholds sweep the scores in descending
// order and equal scores collapse into one operating point, so interval
// order never changes a curve.
package roc

import (
	"math"
	"sort"
)

// Point is one ROC operating point.
type Point struct {
	Threshold float64
	// FPR is the ratio of false-positive intervals to all negative
	// intervals; TPR the ratio of detected to all positive intervals.
	FPR float64
	TPR float64
}

// Curve is a threshold-sorted sequence of operating points (descending
// threshold: from the (0,0) corner toward (1,1)).
type Curve []Point

// Compute builds the ROC curve for scores vs. binary labels (true =
// anomalous interval). Each distinct score value contributes an
// operating point; an interval alarms when score > threshold, matching
// the detector's strict one-sided test.
func Compute(scores []float64, labels []bool) Curve {
	if len(scores) != len(labels) {
		panic("roc: scores and labels length mismatch")
	}
	type sl struct {
		score float64
		label bool
	}
	rows := make([]sl, len(scores))
	positives, negatives := 0, 0
	for i := range scores {
		rows[i] = sl{scores[i], labels[i]}
		if labels[i] {
			positives++
		} else {
			negatives++
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })

	var curve Curve
	tp, fp := 0, 0
	for i := 0; i < len(rows); {
		// Consume ties together: every row with this score alarms at a
		// threshold just below it.
		s := rows[i].score
		for i < len(rows) && rows[i].score == s {
			if rows[i].label {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, Point{
			Threshold: s,
			FPR:       ratio(fp, negatives),
			TPR:       ratio(tp, positives),
		})
	}
	return curve
}

// AUC returns the area under the curve by trapezoidal integration,
// including the implicit (0,0) and (1,1) endpoints.
func (c Curve) AUC() float64 {
	if len(c) == 0 {
		return math.NaN()
	}
	area := 0.0
	prevFPR, prevTPR := 0.0, 0.0
	for _, p := range c {
		area += (p.FPR - prevFPR) * (p.TPR + prevTPR) / 2
		prevFPR, prevTPR = p.FPR, p.TPR
	}
	area += (1 - prevFPR) * (1 + prevTPR) / 2
	return area
}

// TPRAt returns the best TPR achievable with FPR <= maxFPR.
func (c Curve) TPRAt(maxFPR float64) float64 {
	best := 0.0
	for _, p := range c {
		if p.FPR <= maxFPR && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// FPRAtTPR returns the smallest FPR achieving at least the target TPR,
// or NaN when the curve never reaches it.
func (c Curve) FPRAtTPR(minTPR float64) float64 {
	best := math.NaN()
	for _, p := range c {
		if p.TPR >= minTPR && (math.IsNaN(best) || p.FPR < best) {
			best = p.FPR
		}
	}
	return best
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
