package shard

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
)

// testTrace generates a seeded tracegen trace (with the proportionally
// compressed ground-truth schedule) plus an injected dstPort flood in
// interval floodAt, so the extraction stage is exercised even at
// test-friendly volumes.
func testTrace(intervals, baseFlows, floodAt int) [][]flow.Record {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = intervals
	cfg.BaseFlows = baseFlows
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	out := make([][]flow.Record, intervals)
	for i := range out {
		recs := gen.Interval(i)
		if i == floodAt {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		out[i] = recs
	}
	return out
}

func testPipelineConfig() core.Config {
	return core.Config{
		Detector: detector.Config{Bins: 256, TrainIntervals: 4, Seed: 3},
	}
}

// renderReport serializes every deterministic report field — detection
// state, voted meta-data, counts, item-sets, cost reduction — so two
// reports can be compared for byte identity. The KeepSuspicious forensic
// slice is the one field deliberately excluded: sharding regroups it by
// shard.
func renderReport(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "interval=%d alarm=%v total=%d suspicious=%d minsup=%d R=%v\n",
		rep.Interval, rep.Alarm, rep.TotalFlows, rep.SuspiciousFlows,
		rep.MinSupport, rep.CostReduction)
	fmt.Fprintf(&b, "detection=%+v\n", rep.Detection)
	if rep.Mining != nil {
		fmt.Fprintf(&b, "mining=%+v\n", *rep.Mining)
	}
	for i := range rep.ItemSets {
		fmt.Fprintf(&b, "set %s sup=%d\n", rep.ItemSets[i].String(), rep.ItemSets[i].Support)
	}
	return b.String()
}

// TestShardedDeterminism pins the tentpole contract over the full
// (Workers, shards) grid: for shards ∈ {1, 2, 4} and per-shard Workers
// ∈ {1, 2, 4, 8}, a ShardedPipeline — with its distributed per-shard
// prefilter and shard-order suspicious-set merge — produces reports
// byte-identical to a plain sequential core.Pipeline, interval for
// interval.
func TestShardedDeterminism(t *testing.T) {
	trace := testTrace(10, 3000, 8)

	ref, err := core.New(testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]string, len(trace))
	alarmed := false
	for i, recs := range trace {
		rep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderReport(rep)
		alarmed = alarmed || rep.Alarm
	}
	if !alarmed {
		t.Fatal("reference run never alarmed; determinism test would not cover extraction")
	}

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := testPipelineConfig()
			cfg.Workers = workers
			sp, err := New(Config{Shards: shards, Pipeline: cfg})
			if err != nil {
				t.Fatal(err)
			}
			for i, recs := range trace {
				// Feed in alternating small and large chunks so both the
				// sequential small-batch route and the partition + fan-out
				// route contribute to the same interval.
				for j, small := 0, true; j < len(recs); small = !small {
					n := 700
					if small {
						n = 45
					}
					end := min(j+n, len(recs))
					sp.ObserveBatch(recs[j:end])
					j = end
				}
				rep, err := sp.EndInterval()
				if err != nil {
					t.Fatal(err)
				}
				if got := renderReport(rep); got != want[i] {
					t.Fatalf("shards=%d workers=%d interval %d: report diverged from plain pipeline\ngot:  %s\nwant: %s",
						shards, workers, i, got, want[i])
				}
			}
			sp.Close()
		}
	}
}

// TestShardOfStableAndSpread verifies the partitioner: equal flow keys
// always land in the same shard, and a realistic trace actually spreads
// across all shards (no degenerate hashing).
func TestShardOfStableAndSpread(t *testing.T) {
	sp, err := New(Config{Shards: 4, Pipeline: testPipelineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	trace := testTrace(1, 4000, -1)
	counts := make([]int, sp.NumShards())
	for i := range trace[0] {
		rec := trace[0][i]
		sh := sp.ShardOf(&rec)
		counts[sh]++
		clone := rec
		clone.Packets, clone.Bytes, clone.Start = 999, 999, 999 // non-key fields
		if got := sp.ShardOf(&clone); got != sh {
			t.Fatalf("shard assignment depends on non-key fields: %d vs %d", got, sh)
		}
	}
	for sh, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no flows of %d: degenerate partitioning %v",
				sh, len(trace[0]), counts)
		}
	}
}

// TestShardedConcurrentProducers exercises the race-freedom of parallel
// ingestion: several goroutines ObserveBatch disjoint slices of an
// interval concurrently, and the lockstep close must still match the
// sequential reference (detection and extraction are ingestion-order
// insensitive). Run with -race.
func TestShardedConcurrentProducers(t *testing.T) {
	trace := testTrace(8, 2000, 6)

	ref, err := core.New(testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	sp, err := New(Config{Shards: 4, Pipeline: testPipelineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	for i, recs := range trace {
		wantRep, err := ref.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}

		const producers = 4
		var wg sync.WaitGroup
		chunk := (len(recs) + producers - 1) / producers
		for p := 0; p < producers; p++ {
			lo := p * chunk
			hi := min(lo+chunk, len(recs))
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(part []flow.Record) {
				defer wg.Done()
				sp.ObserveBatch(part)
			}(recs[lo:hi])
		}
		wg.Wait()
		gotRep, err := sp.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderReport(gotRep), renderReport(wantRep); got != want {
			t.Fatalf("interval %d: concurrent sharded report diverged\ngot:  %s\nwant: %s", i, got, want)
		}
	}
}

// TestShardedRejectsNegative covers config validation and the absorb
// mismatch path.
func TestShardedRejectsNegative(t *testing.T) {
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := New(Config{Shards: 2, Pipeline: core.Config{MinSupport: -5}}); err == nil {
		t.Fatal("invalid pipeline config accepted")
	}
}

// BenchmarkShardedPipeline sweeps the shard count over one interval's
// ingestion plus the lockstep close. On multi-core hardware throughput
// scales with shards until the cores are saturated; -cpu sweeps contrast
// the fan-out with the single-threaded baseline.
func BenchmarkShardedPipeline(b *testing.B) {
	trace := testTrace(1, 20000, -1)
	recs := trace[0]
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sp, err := New(Config{Shards: shards, Pipeline: testPipelineConfig()})
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			b.SetBytes(int64(len(recs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.ProcessInterval(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestShardedDrainSnapshot: draining a sharded pipeline merges every
// shard's open interval into one snapshot — absorbing it elsewhere
// reproduces a plain pipeline's report over the same records — and
// leaves all shards empty for the next interval.
func TestShardedDrainSnapshot(t *testing.T) {
	trace := testTrace(6, 2000, 4)
	cfg := testPipelineConfig()

	direct, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	sharded, err := New(Config{Shards: 3, Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	primary, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	scratch, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close()

	for i, recs := range trace {
		direct.ObserveBatch(recs)
		sharded.ObserveBatch(recs)

		snap, err := sharded.DrainSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Buffer.Len() != len(recs) {
			t.Fatalf("interval %d: drained %d records, want %d", i, snap.Buffer.Len(), len(recs))
		}
		if redrain, err := sharded.DrainSnapshot(); err != nil || redrain.Buffer.Len() != 0 {
			t.Fatalf("interval %d: re-drain returned %d records, err %v", i, redrain.Buffer.Len(), err)
		}
		if err := scratch.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		if err := primary.Absorb(scratch); err != nil {
			t.Fatal(err)
		}
		wantRep, err := direct.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := primary.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderReport(gotRep), renderReport(wantRep); got != want {
			t.Fatalf("interval %d: drained shard report diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}
