// Package shard implements hash-partitioned multi-pipeline sharding:
// N independent extraction pipelines each own a partition of the flow
// stream, assigned by a stable hash of the flow key, and a lockstep
// interval close merges the per-shard state into one deterministic
// report.
//
// The partitioning exploits that the paper's per-interval detection
// state is a set of randomized histograms (§II-D) — exact mergeable
// sketches: clones built from the same seed hash a value to the same bin
// in every shard, so adding the per-bin counts (and unioning the
// bin→value maps) of N shard histograms yields precisely the histogram
// one pipeline would have built from the whole stream. EndInterval
// therefore absorbs the N-1 sibling banks into the primary shard and
// runs detection (KL, thresholds, anomalous-bin identification, l-of-n
// voting) over the merged state; the extraction stage stays distributed
// — on an alarm each shard prefilters its own local flow buffer
// concurrently and the suspicious sets merge in shard order before one
// mining pass — and the resulting report is byte-identical to an
// unsharded run over the same records, the property the determinism
// tests pin down. Both ingestion (the hot path) and the per-alarm
// prefilter scan run fully in parallel: each shard locks only its own
// pipeline and scans only its own buffer, so throughput and the
// per-shard value-tracking working set both scale with the shard count.
//
//	sp, _ := shard.New(shard.Config{Shards: 8})
//	for batch := range source {
//		sp.ObserveBatch(batch) // partitioned + ingested in parallel
//	}
//	rep, _ := sp.EndInterval() // lockstep close + cross-shard merge
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
	"anomalyx/internal/hash"
)

// minParallelBatch is the batch size below which ObserveBatch skips the
// partition + goroutine fan-out and routes records sequentially.
const minParallelBatch = 128

// partitionSeed derives the partitioner's hash function. A fixed
// constant keeps the record→shard assignment stable across runs and
// processes — rebalancing would silently split a flow key's traffic
// across shards mid-stream.
const partitionSeed = 0x5ca1ab1ec0ffee

// Config parameterizes a sharded pipeline.
type Config struct {
	// Shards is the number of independent pipelines the stream is
	// partitioned across (default: GOMAXPROCS at construction).
	Shards int
	// Pipeline configures each shard's pipeline; zero-value fields take
	// the paper's defaults (see core.Config). When Pipeline.Workers is 0
	// each shard's detector bank runs sequentially (Workers = 1):
	// parallelism comes from the shard fan-out, and one worker pool per
	// shard on top of it would oversubscribe the CPUs. Set Workers
	// explicitly to also parallelize inside each shard.
	Pipeline core.Config
}

// ShardedPipeline partitions flows across N core.Pipeline instances and
// closes intervals in lockstep with a cross-shard merge. Like the plain
// pipeline it is safe for concurrent use — observes may run from
// multiple goroutines and interval closes are serialized — but callers
// needing a well-defined flow-to-interval assignment must serialize
// observes against EndInterval themselves (the engine package does).
type ShardedPipeline struct {
	cfg    Config
	fn     hash.Func
	shards []*core.Pipeline

	mu sync.Mutex // serializes interval closes against each other
}

// New builds a sharded pipeline from cfg.
func New(cfg Config) (*ShardedPipeline, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Pipeline.Workers == 0 {
		cfg.Pipeline.Workers = 1
	}
	s := &ShardedPipeline{cfg: cfg, fn: hash.New(partitionSeed)}
	for i := 0; i < cfg.Shards; i++ {
		p, err := core.New(cfg.Pipeline)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, p)
	}
	return s, nil
}

// Config returns the effective configuration.
func (s *ShardedPipeline) Config() Config { return s.cfg }

// NumShards returns the shard count.
func (s *ShardedPipeline) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index rec is partitioned to: the seeded hash
// of the stable flow key, reduced to [0, NumShards). All records of one
// flow key land in one shard.
func (s *ShardedPipeline) ShardOf(rec *flow.Record) int {
	return s.fn.Bin(rec.Key(), len(s.shards))
}

// Observe feeds one flow of the current interval to its shard.
func (s *ShardedPipeline) Observe(rec flow.Record) {
	s.shards[s.ShardOf(&rec)].Observe(rec)
}

// ObserveBatch partitions a batch across the shards and ingests the
// sub-batches in parallel, one goroutine per non-empty shard; each shard
// fans its sub-batch out to its own detector bank. The detector state
// after the call is identical to an unsharded ObserveBatch: histogram
// updates commute and each (shard, clone) histogram is owned by one
// goroutine.
func (s *ShardedPipeline) ObserveBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	if len(s.shards) == 1 {
		s.shards[0].ObserveBatch(recs)
		return
	}
	if len(recs) < minParallelBatch {
		// Partition slices and per-shard goroutines cost more than they
		// save on small batches (the engine flushes a few pending
		// records before every pre-formed batch, for example); route the
		// records one by one instead.
		for i := range recs {
			s.shards[s.fn.Bin(recs[i].Key(), len(s.shards))].Observe(recs[i])
		}
		return
	}
	parts := make([][]flow.Record, len(s.shards))
	est := len(recs)/len(s.shards) + 8
	for i := range parts {
		parts[i] = make([]flow.Record, 0, est)
	}
	for i := range recs {
		sh := s.fn.Bin(recs[i].Key(), len(s.shards))
		parts[sh] = append(parts[sh], recs[i])
	}
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []flow.Record) {
			defer wg.Done()
			s.shards[i].ObserveBatch(part)
		}(i, part)
	}
	wg.Wait()
}

// EndInterval closes the current interval in lockstep across the
// shards (core.EndIntervalGroup): the primary shard absorbs every
// sibling's clone histograms (the cross-shard merge, exact because
// equal-seed histogram clones are mergeable sketches) and closes
// detection over the merged state; on an alarm each shard then
// prefilters its own local flow buffer concurrently and the per-shard
// suspicious sets merge in shard order before one mining pass — the
// flow buffers never funnel through the primary. Detection results,
// voted meta-data (deduplicated by the merge's value-set union),
// prefilter counts, mined item-sets and cost reduction are
// byte-identical to an unsharded pipeline over the same records; only
// the order of the KeepSuspicious forensic slice differs (records
// regroup by shard).
func (s *ShardedPipeline) EndInterval() (*core.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.EndIntervalGroup(s.shards)
}

// BeginClose drains the open interval from every shard in lockstep —
// the pipelined counterpart of EndInterval. The drain swaps each shard's
// clone histograms and flow buffer for reset recycled ones under the
// sharded pipeline's lock; the returned PendingClose's Finish runs the
// cross-shard merge, detection and extraction later, producing a report
// byte-identical to EndInterval's (see core.BeginIntervalGroup).
func (s *ShardedPipeline) BeginClose() (*core.PendingClose, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.BeginIntervalGroup(s.shards)
}

// ProcessInterval is the batch convenience: ObserveBatch all recs, then
// EndInterval.
func (s *ShardedPipeline) ProcessInterval(recs []flow.Record) (*core.Report, error) {
	s.ObserveBatch(recs)
	return s.EndInterval()
}

// DrainSnapshot merges every sibling shard's open interval into the
// primary (the same Absorb path EndInterval uses) and drains the
// primary: the returned snapshot holds the whole sharded pipeline's open
// interval — merged clone histograms plus the concatenated flow buffers
// in shard order — and every shard is left empty, ready for the next
// interval. No detection runs; this is the distributed agent's interval
// close, where an agent machine runs a locally sharded pipeline and
// ships the merged interval to a collector that owns detection. Callers
// must not observe flows concurrently with a drain (the engine
// serializes this, as it does for EndInterval).
func (s *ShardedPipeline) DrainSnapshot() (core.PipelineSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	primary := s.shards[0]
	for _, sh := range s.shards[1:] {
		if err := primary.Absorb(sh); err != nil {
			return core.PipelineSnapshot{}, err
		}
	}
	return primary.DrainSnapshot(), nil
}

// DrainOpenInterval is DrainSnapshot in the lean open-interval form: the
// sibling shards merge into the primary exactly as above, but the drain
// carries only the merged clone histograms and concatenated flow buffer
// (core.OpenInterval), skipping the copy of detection history that an
// agent — which never closes detection — keeps permanently empty. This
// is the preferred distributed agent close.
func (s *ShardedPipeline) DrainOpenInterval() (core.OpenInterval, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	primary := s.shards[0]
	for _, sh := range s.shards[1:] {
		if err := primary.Absorb(sh); err != nil {
			return core.OpenInterval{}, err
		}
	}
	return primary.DrainOpenInterval(), nil
}

// Close releases every shard's detector-bank worker pool. It is
// idempotent. The sharded pipeline must not be used after Close.
func (s *ShardedPipeline) Close() {
	for _, sh := range s.shards {
		sh.Close()
	}
}
