package experiments

import (
	"fmt"
	"math"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/report"
	"anomalyx/internal/roc"
	"anomalyx/internal/stats"
	"anomalyx/internal/tracegen"
)

// Fig4Result carries the KL time series of Fig. 4: raw KL distance (top
// plot) and its first difference with the MAD threshold (bottom plot) for
// the source-IP feature.
type Fig4Result struct {
	Intervals []int
	KL        []float64
	Diff      []float64
	Threshold []float64
	Figure    report.Figure
	// AlarmsAboveThreshold counts intervals whose first difference
	// exceeded the threshold (the positive spikes of the bottom plot).
	AlarmsAboveThreshold int
}

// Fig4 extracts the srcIP KL time series (clone 0) over the first two
// days of the run, or the whole run when shorter.
func Fig4(tr *TraceRun) (*Fig4Result, error) {
	fi := tr.featureIndex(flow.SrcIP)
	if fi < 0 {
		return nil, fmt.Errorf("experiments: srcIP not monitored")
	}
	n := len(tr.Intervals)
	twoDays := int((48 * 3600 * 1000) / tr.Gen.Config().IntervalLen.Milliseconds())
	if n > twoDays {
		n = twoDays
	}
	out := &Fig4Result{}
	for i := 0; i < n; i++ {
		it := &tr.Intervals[i]
		out.Intervals = append(out.Intervals, i)
		out.KL = append(out.KL, it.KL[fi][0])
		out.Diff = append(out.Diff, it.Diff[fi][0])
		out.Threshold = append(out.Threshold, it.Threshold[fi])
		if it.Threshold[fi] > 0 && it.Diff[fi][0] > it.Threshold[fi] {
			out.AlarmsAboveThreshold++
		}
	}
	xs := make([]float64, len(out.Intervals))
	for i, v := range out.Intervals {
		xs[i] = float64(v)
	}
	out.Figure = report.Figure{
		Title: "Fig 4: KL distance time series (srcIP, clone 0)", XLabel: "interval", YLabel: "bits",
	}
	out.Figure.Add(report.Series{Name: "KL", X: xs, Y: out.KL})
	out.Figure.Add(report.Series{Name: "diff", X: xs, Y: out.Diff})
	out.Figure.Add(report.Series{Name: "threshold", X: xs, Y: out.Threshold})
	return out, nil
}

// Fig5Result is the iterative anomalous-bin identification convergence of
// Fig. 5: the KL distance after each removal round.
type Fig5Result struct {
	Interval    int
	Feature     flow.FeatureKind
	KLSeries    []float64
	BinsRemoved int
	Converged   bool
	Figure      report.Figure
}

// Fig5 reruns detection up to the first flooding event's start interval
// and records the per-round KL series of the identification on the
// destination-IP feature (the feature a flooding victim disrupts most).
func Fig5(tr *TraceRun) (*Fig5Result, error) {
	// Pick the earliest flooding/DDoS event that is alone in its start
	// interval: a concentrated, single-event disruption converges in a
	// few rounds like the paper's Fig. 5, whereas an interval that also
	// hosts a distributed event (e.g. a scan) keeps the cleaned
	// histogram above threshold (§III-C's multi-bin caveat).
	var target *tracegen.GroundTruthEvent
	for i := range tr.GroundTruth {
		ev := &tr.GroundTruth[i]
		if ev.Class != tracegen.Flooding && ev.Class != tracegen.DDoS {
			continue
		}
		if len(tr.EventsAt(ev.Start)) != 1 {
			continue
		}
		if target == nil || ev.Start < target.Start {
			target = ev
		}
	}
	if target == nil {
		return nil, fmt.Errorf("experiments: no single-event flooding/ddos interval in schedule")
	}

	dcfg := tr.Pipeline.Detector
	dcfg.Feature = flow.DstIP
	det, err := detector.New(dcfg)
	if err != nil {
		return nil, err
	}
	var res detector.Result
	for idx := 0; idx <= target.Start; idx++ {
		recs := tr.Gen.Interval(idx)
		for i := range recs {
			det.Observe(&recs[i])
		}
		res = det.EndInterval()
	}
	out := &Fig5Result{Interval: target.Start, Feature: flow.DstIP}
	for _, rep := range res.Clones {
		if rep.Alarm {
			out.KLSeries = rep.Identification.KLSeries
			out.BinsRemoved = len(rep.Identification.Bins)
			out.Converged = rep.Identification.Converged
			break
		}
	}
	if out.KLSeries == nil {
		return nil, fmt.Errorf("experiments: event at interval %d raised no dstIP alarm", target.Start)
	}
	xs := make([]float64, len(out.KLSeries))
	for i := range xs {
		xs[i] = float64(i)
	}
	out.Figure = report.Figure{
		Title:  fmt.Sprintf("Fig 5: iterative bin identification (interval %d, dstIP)", out.Interval),
		XLabel: "round", YLabel: "KL distance (bits)",
	}
	out.Figure.Add(report.Series{Name: "KL", X: xs, Y: out.KLSeries})
	return out, nil
}

// Fig6Result holds per-clone ROC curves.
type Fig6Result struct {
	Curves []roc.Curve
	AUC    []float64
	Figure report.Figure
}

// Fig6 computes one ROC curve per histogram clone. The per-interval
// detection score of clone c is the maximum over features of the KL
// first difference normalized by that feature's robust sigma; sweeping a
// threshold over this score reproduces the paper's threshold sweep.
// Training intervals (no threshold yet) are excluded.
func Fig6(tr *TraceRun) (*Fig6Result, error) {
	if len(tr.Intervals) == 0 {
		return nil, fmt.Errorf("experiments: empty run")
	}
	clones := tr.Pipeline.Detector.Clones
	if clones == 0 {
		clones = 3
	}
	alpha := tr.Pipeline.Detector.Alpha
	if alpha == 0 {
		alpha = 3
	}
	out := &Fig6Result{}
	out.Figure = report.Figure{
		Title: "Fig 6: ROC curves per histogram clone", XLabel: "FPR", YLabel: "TPR",
	}
	for c := 0; c < clones; c++ {
		var scores []float64
		var labels []bool
		for i := range tr.Intervals {
			it := &tr.Intervals[i]
			trained := true
			score := math.Inf(-1)
			for f := range it.Diff {
				if it.Threshold[f] <= 0 {
					trained = false
					break
				}
				sigma := it.Threshold[f] / alpha
				if s := it.Diff[f][c] / sigma; s > score {
					score = s
				}
			}
			if !trained {
				continue
			}
			scores = append(scores, score)
			labels = append(labels, it.Anomalous)
		}
		curve := roc.Compute(scores, labels)
		out.Curves = append(out.Curves, curve)
		out.AUC = append(out.AUC, curve.AUC())
		fpr := make([]float64, len(curve))
		tpr := make([]float64, len(curve))
		for i, p := range curve {
			fpr[i] = p.FPR
			tpr[i] = p.TPR
		}
		out.Figure.Add(report.Series{Name: fmt.Sprintf("clone %d", c), X: fpr, Y: tpr})
	}
	return out, nil
}

// Fig7Result holds the analytic voting-miss bound of Eq. (2).
type Fig7Result struct {
	N      []int
	Beta   map[string][]float64 // series name -> beta per n
	Figure report.Figure
}

// Fig7 evaluates the upper bound beta that an anomalous feature value is
// eliminated by l-of-n voting, for p = 0.97 (the paper's setting,
// corresponding to a detection false-positive rate of ~0.03) and
// n ∈ [1, 25], with the l=1, l=ceil(n/2) and l=n curves.
func Fig7(p float64) *Fig7Result {
	if p == 0 {
		p = 0.97
	}
	out := &Fig7Result{Beta: map[string][]float64{}}
	names := []string{"l=1", "l=n/2", "l=n"}
	lOf := func(name string, n int) int {
		switch name {
		case "l=1":
			return 1
		case "l=n/2":
			l := (n + 1) / 2
			if l < 1 {
				l = 1
			}
			return l
		default:
			return n
		}
	}
	xs := make([]float64, 0, 25)
	for n := 1; n <= 25; n++ {
		out.N = append(out.N, n)
		xs = append(xs, float64(n))
	}
	out.Figure = report.Figure{
		Title:  fmt.Sprintf("Fig 7: upper bound beta (anomalous value missed), p=%.2f", p),
		XLabel: "n (clones)", YLabel: "beta",
	}
	for _, name := range names {
		ys := make([]float64, 0, 25)
		for _, n := range out.N {
			ys = append(ys, stats.VoteMissUB(n, lOf(name, n), p))
		}
		out.Beta[name] = ys
		out.Figure.Add(report.Series{Name: name, X: xs, Y: ys})
	}
	return out
}

// Fig8Result holds the analytic normal-value leak probability of Eq. (3).
type Fig8Result struct {
	B      int
	N      []int
	Gamma  map[string][]float64
	Figure report.Figure
}

// Fig8 evaluates gamma — the probability that a normal feature value
// survives l-of-n voting — for b anomalous bins out of k = 1024 total
// (the paper plots b=1 and b=5), n ∈ [1, 25].
func Fig8(b, k int) *Fig8Result {
	if k == 0 {
		k = 1024
	}
	out := &Fig8Result{B: b, Gamma: map[string][]float64{}}
	names := []string{"l=1", "l=n/2", "l=n"}
	lOf := func(name string, n int) int {
		switch name {
		case "l=1":
			return 1
		case "l=n/2":
			l := (n + 1) / 2
			if l < 1 {
				l = 1
			}
			return l
		default:
			return n
		}
	}
	xs := make([]float64, 0, 25)
	for n := 1; n <= 25; n++ {
		out.N = append(out.N, n)
		xs = append(xs, float64(n))
	}
	out.Figure = report.Figure{
		Title:  fmt.Sprintf("Fig 8: gamma (normal value survives voting), b=%d, k=%d", b, k),
		XLabel: "n (clones)", YLabel: "gamma",
	}
	for _, name := range names {
		ys := make([]float64, 0, 25)
		for _, n := range out.N {
			ys = append(ys, stats.NormalLeak(n, lOf(name, n), b, k))
		}
		out.Gamma[name] = ys
		out.Figure.Add(report.Series{Name: name, X: xs, Y: ys})
	}
	return out
}
