package experiments

import (
	"fmt"
	"math"

	"anomalyx/internal/core"
	"anomalyx/internal/cost"
	"anomalyx/internal/itemset"
	"anomalyx/internal/report"
	"anomalyx/internal/tracegen"
)

// SupportsFor returns the minimum-support sweep for Figs. 9 and 10. At
// Full scale it is the paper's own axis (3000–10000 flows); at Quick
// scale the range shrinks proportionally to the smaller intervals.
func SupportsFor(s Scale) []int {
	if s == Quick {
		return []int{300, 500, 750, 1000, 1250, 1500, 2000, 2500}
	}
	return []int{3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
}

// IntervalSweep is the mining outcome of one anomalous interval at one
// minimum support.
type IntervalSweep struct {
	Interval   int
	MinSupport int
	ItemSets   int
	TP         int
	FP         int
	TotalFlows int
	Suspicious int
}

// SweepResult aggregates the support sweep over every ground-truth
// anomalous interval — the shared computation behind Fig. 9 and Fig. 10.
type SweepResult struct {
	Supports []int
	// Cells[i][s] is the outcome of anomalous interval i at support
	// index s.
	Cells [][]IntervalSweep
	// Missed counts anomalous intervals with no usable meta-data (the
	// detector never alarmed during the event).
	Missed int
}

// RunSweep regenerates each anomalous interval, prefilters it with its
// effective meta-data, and mines it at every support in supports.
// Item-sets are classified against the interval's active events: TP if
// matching any signature, FP otherwise (§III-A's manual classification,
// made mechanical).
func RunSweep(tr *TraceRun, supports []int) (*SweepResult, error) {
	if len(supports) == 0 {
		supports = SupportsFor(tr.Scale)
	}
	out := &SweepResult{Supports: supports}
	for _, it := range tr.AnomalousIntervals() {
		if it.EffectiveMeta == nil {
			out.Missed++
			continue
		}
		events := tr.EventsAt(it.Index)
		recs := tr.Gen.Interval(it.Index)

		cfg := tr.Pipeline
		cfg.KeepSuspicious = true
		row := make([]IntervalSweep, 0, len(supports))
		for _, s := range supports {
			cfg.MinSupport = s
			rep, err := core.ExtractOffline(cfg, recs, it.EffectiveMeta)
			if err != nil {
				return nil, err
			}
			cell := IntervalSweep{
				Interval: it.Index, MinSupport: s,
				ItemSets: len(rep.ItemSets), TotalFlows: rep.TotalFlows,
				Suspicious: rep.SuspiciousFlows,
			}
			for i := range rep.ItemSets {
				if anyEventMatches(events, &rep.ItemSets[i]) {
					cell.TP++
				} else {
					cell.FP++
				}
			}
			row = append(row, cell)
		}
		out.Cells = append(out.Cells, row)
	}
	if len(out.Cells) == 0 {
		return nil, fmt.Errorf("experiments: no anomalous interval had meta-data")
	}
	return out, nil
}

func anyEventMatches(events []tracegen.GroundTruthEvent, s *itemset.Set) bool {
	for i := range events {
		if matchesEvent(&events[i], s) {
			return true
		}
	}
	return false
}

// Fig9Result is the false-positive item-set analysis of Fig. 9.
type Fig9Result struct {
	Supports []int
	// AvgFP[s] is the mean FP item-set count over all anomalous
	// intervals at support index s; MaxFP the worst interval.
	AvgFP []float64
	MaxFP []int
	// ZeroFPIntervals counts intervals with no FP item-sets at any
	// support (the paper reports 70%); ZeroFPPerSupport the per-support
	// counts.
	ZeroFPIntervals  int
	ZeroFPPerSupport []int
	Intervals        int
	// MissedEvents counts intervals where signature-matching item-sets
	// were absent at the smallest support (extraction misses).
	MissedEvents int
	Figure       report.Figure
}

// Fig9 aggregates the sweep into the paper's FP-item-set figure.
func Fig9(sw *SweepResult) *Fig9Result {
	out := &Fig9Result{Supports: sw.Supports, Intervals: len(sw.Cells)}
	out.AvgFP = make([]float64, len(sw.Supports))
	out.MaxFP = make([]int, len(sw.Supports))
	out.ZeroFPPerSupport = make([]int, len(sw.Supports))
	for _, row := range sw.Cells {
		zero := true
		for s, cell := range row {
			out.AvgFP[s] += float64(cell.FP)
			if cell.FP > out.MaxFP[s] {
				out.MaxFP[s] = cell.FP
			}
			if cell.FP > 0 {
				zero = false
			} else {
				out.ZeroFPPerSupport[s]++
			}
		}
		if zero {
			out.ZeroFPIntervals++
		}
		if row[0].TP == 0 {
			out.MissedEvents++
		}
	}
	for s := range out.AvgFP {
		out.AvgFP[s] /= float64(len(sw.Cells))
	}
	xs := make([]float64, len(sw.Supports))
	for i, s := range sw.Supports {
		xs[i] = float64(s)
	}
	out.Figure = report.Figure{
		Title:  "Fig 9: false-positive item-sets vs minimum support",
		XLabel: "minsup", YLabel: "FP item-sets",
	}
	avg := report.Series{Name: "average", X: xs, Y: out.AvgFP}
	max := report.Series{Name: "max", X: xs}
	for _, m := range out.MaxFP {
		max.Y = append(max.Y, float64(m))
	}
	out.Figure.Add(avg)
	out.Figure.Add(max)
	return out
}

// Fig10Result is the classification-cost reduction of Fig. 10.
type Fig10Result struct {
	Supports []int
	AvgR     []float64
	Figure   report.Figure
}

// Fig10 computes the average decrease in classification cost R = F/I per
// minimum support over the anomalous intervals (intervals whose mining
// output was empty are skipped in the average, as division by zero).
func Fig10(sw *SweepResult) *Fig10Result {
	out := &Fig10Result{Supports: sw.Supports}
	out.AvgR = make([]float64, len(sw.Supports))
	for s := range sw.Supports {
		flows := make([]int, 0, len(sw.Cells))
		sets := make([]int, 0, len(sw.Cells))
		for _, row := range sw.Cells {
			flows = append(flows, row[s].TotalFlows)
			sets = append(sets, row[s].ItemSets)
		}
		r := cost.MeanReduction(flows, sets)
		if math.IsNaN(r) {
			r = 0
		}
		out.AvgR[s] = r
	}
	xs := make([]float64, len(sw.Supports))
	for i, s := range sw.Supports {
		xs[i] = float64(s)
	}
	out.Figure = report.Figure{
		Title:  "Fig 10: average decrease in classification cost vs minimum support",
		XLabel: "minsup", YLabel: "R = flows/item-sets",
	}
	out.Figure.Add(report.Series{Name: "avg R", X: xs, Y: out.AvgR})
	return out
}
