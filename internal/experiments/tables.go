package experiments

import (
	"fmt"
	"sort"

	"anomalyx/internal/core"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/report"
	"anomalyx/internal/tracegen"
)

// TableIIResult reproduces the worked Apriori example of §II-B.
type TableIIResult struct {
	Input  *tracegen.TableIIData
	Mining *mining.Result
	// PortSevenK counts maximal item-sets carrying dstPort=7000 — the
	// paper verifies exactly three.
	PortSevenK int
	Report     report.Table
	Levels     report.Table
}

// TableII generates the paper's example input (350 872 flows; flooding on
// dstPort 7000 plus the three most popular ports added as forced false
// positives) and mines it with the modified Apriori at minimum support
// 10 000.
func TableII(seed uint64) (*TableIIResult, error) {
	data := tracegen.TableIIScenario(seed)
	res, err := apriori.New().Mine(itemset.FromFlows(data.Flows), data.MinSupport)
	if err != nil {
		return nil, err
	}
	out := &TableIIResult{Input: data, Mining: res}
	out.Report = report.Table{
		Title:   fmt.Sprintf("Table II: maximal frequent item-sets (input %d flows, minsup %d)", len(data.Flows), data.MinSupport),
		Headers: []string{"item-set", "support"},
	}
	for i := range res.Maximal {
		s := &res.Maximal[i]
		items := ""
		for j, it := range s.Items {
			if j > 0 {
				items += ", "
			}
			items += it.String()
		}
		out.Report.AddRow("{"+items+"}", s.Support)
		for _, it := range s.Items {
			if it.Kind == flow.DstPort && it.Value == uint64(data.FloodPort) {
				out.PortSevenK++
			}
		}
	}
	out.Levels = report.Table{
		Title:   "Table II rounds: frequent k-item-sets found vs kept as maximal",
		Headers: []string{"k", "frequent", "maximal", "pruned as subsets"},
	}
	for _, l := range res.Levels {
		out.Levels.AddRow(l.Level, l.Frequent, l.Maximal, l.Frequent-l.Maximal)
	}
	return out, nil
}

// TableIII renders the parameter table (Table III) from the paper-default
// pipeline configuration.
func TableIII(s Scale) report.Table {
	pc := PipelineConfig(s)
	t := report.Table{
		Title:   "Table III: parameters",
		Headers: []string{"param", "meaning", "default", "paper range"},
	}
	tc := TraceConfig(s)
	t.AddRow("d", "number of histogram detectors (features)", 5, "5")
	t.AddRow("Delta", "interval length", tc.IntervalLen.String(), "5-15 min")
	t.AddRow("m", "hash length (k = 2^m bins)", pc.Detector.Bins, "512-2048 bins")
	t.AddRow("n", "histogram clones", pc.Detector.Clones, "1-25")
	t.AddRow("l", "votes required", pc.Detector.Votes, "1-n")
	t.AddRow("s", "minimum support", fmt.Sprintf("%.0f%% of suspicious flows", pc.RelativeSupport*100), "3000-10000 flows (1-10%)")
	t.AddRow("alpha", "MAD threshold multiplier", pc.Detector.Alpha, "3")
	return t
}

// TableIVRow is one anomaly class of Table IV.
type TableIVRow struct {
	Class     tracegen.Class
	Events    int
	AvgFlows  float64
	Detected  int // events with >= 1 alarming interval
	Extracted int // detected events whose mining output matches the signature
}

// TableIVResult is the ground-truth inventory plus measured detection and
// extraction per class.
type TableIVResult struct {
	Rows               []TableIVRow
	TotalEvents        int
	AnomalousIntervals int
	Report             report.Table
}

// TableIV summarizes the injected ground truth of a completed trace run
// and measures, per class, how many events the pipeline detected and
// extracted (an event is extracted when at least one maximal item-set of
// an affected interval matches its signature).
func TableIV(tr *TraceRun) (*TableIVResult, error) {
	type agg struct {
		events    int
		flows     int
		detected  int
		extracted int
	}
	byClass := map[tracegen.Class]*agg{}

	for _, ev := range tr.GroundTruth {
		a := byClass[ev.Class]
		if a == nil {
			a = &agg{}
			byClass[ev.Class] = a
		}
		a.events++
		a.flows += ev.Flows

		detected, extracted := false, false
		for idx := ev.Start; idx <= ev.End && idx < len(tr.Intervals); idx++ {
			it := &tr.Intervals[idx]
			if it.Alarm {
				detected = true
			}
			if extracted || it.EffectiveMeta == nil {
				continue
			}
			sets, err := mineInterval(tr, idx, 0) // default relative support
			if err != nil {
				return nil, err
			}
			for i := range sets {
				if matchesEvent(&ev, &sets[i]) {
					extracted = true
					break
				}
			}
		}
		if detected {
			a.detected++
		}
		if extracted {
			a.extracted++
		}
	}

	out := &TableIVResult{}
	seen := map[int]bool{}
	for _, ev := range tr.GroundTruth {
		out.TotalEvents++
		for i := ev.Start; i <= ev.End; i++ {
			if !seen[i] {
				seen[i] = true
				out.AnomalousIntervals++
			}
		}
	}
	var classes []tracegen.Class
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	out.Report = report.Table{
		Title:   fmt.Sprintf("Table IV: %d events in %d anomalous intervals", out.TotalEvents, out.AnomalousIntervals),
		Headers: []string{"class", "events", "avg flows/interval", "detected", "extracted"},
	}
	for _, c := range classes {
		a := byClass[c]
		row := TableIVRow{
			Class: c, Events: a.events,
			AvgFlows: float64(a.flows) / float64(a.events),
			Detected: a.detected, Extracted: a.extracted,
		}
		out.Rows = append(out.Rows, row)
		out.Report.AddRow(c.String(), row.Events, row.AvgFlows, row.Detected, row.Extracted)
	}
	return out, nil
}

// mineInterval regenerates interval idx, prefilters it with the recorded
// effective meta-data, and mines it. minsup 0 selects the pipeline's
// relative default.
func mineInterval(tr *TraceRun, idx int, minsup int) ([]itemset.Set, error) {
	it := &tr.Intervals[idx]
	if it.EffectiveMeta == nil {
		return nil, nil
	}
	cfg := tr.Pipeline
	cfg.MinSupport = minsup
	rep, err := core.ExtractOffline(cfg, tr.Gen.Interval(idx), it.EffectiveMeta)
	if err != nil {
		return nil, err
	}
	return rep.ItemSets, nil
}

// matchesEvent converts an item-set to feature values and tests it
// against the event signature.
func matchesEvent(ev *tracegen.GroundTruthEvent, s *itemset.Set) bool {
	fvs := make([]tracegen.FeatureValue, len(s.Items))
	for i, it := range s.Items {
		fvs[i] = tracegen.FeatureValue{Kind: it.Kind, Value: it.Value}
	}
	return ev.Matches(fvs)
}
