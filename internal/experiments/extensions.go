package experiments

import (
	"fmt"
	"sort"

	"anomalyx/internal/flow"
	"anomalyx/internal/hhh"
	"anomalyx/internal/report"
	"anomalyx/internal/sketch"
	"anomalyx/internal/tracegen"
)

// SketchVsClonesResult contrasts histogram cloning with a count-min
// sketch for identifying the feature values of an anomaly (footnote 1 /
// DESIGN.md §5). Both use random projections; the sketch answers point
// queries over an externally supplied candidate list, while the clones
// enumerate the disrupted values themselves.
type SketchVsClonesResult struct {
	Interval int
	Feature  flow.FeatureKind
	// Clone results: values the voted meta-data identified.
	CloneValues    int
	ClonePrecision float64
	CloneRecall    float64
	// Sketch results over the same interval.
	SketchValues    int
	SketchPrecision float64
	SketchRecall    float64
	Report          report.Table
}

// SketchVsClones compares, on the first anomalous interval with dstPort
// meta-data, the clone-voted values against a count-min-based change
// detector (estimate the per-value count increase vs the previous
// interval; flag values whose increase exceeds share*interval flows).
func SketchVsClones(tr *TraceRun, share float64) (*SketchVsClonesResult, error) {
	if share == 0 {
		share = 0.02
	}
	const feature = flow.DstPort
	var target *IntervalTrace
	for _, it := range tr.AnomalousIntervals() {
		if it.Meta != nil && len(it.Meta.Values(feature)) > 0 {
			target = it
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("experiments: no anomalous interval with dstPort meta-data")
	}

	// Ground truth: dstPort signature values of the active events.
	truth := map[uint64]bool{}
	for _, ev := range tr.EventsAt(target.Index) {
		for _, fv := range ev.Signature {
			if fv.Kind == feature {
				truth[fv.Value] = true
			}
		}
	}
	if len(truth) == 0 {
		return nil, fmt.Errorf("experiments: interval %d events have no dstPort signature", target.Index)
	}

	// Sketch side: one sketch per interval, candidates tracked
	// externally (the clone approach needs no such list — that is the
	// structural difference the ablation shows).
	prev := sketch.New(4096, 4, tr.Gen.Config().Seed)
	cur := sketch.New(4096, 4, tr.Gen.Config().Seed)
	candidates := map[uint64]bool{}
	for _, rec := range tr.Gen.Interval(target.Index - 1) {
		prev.Add(rec.Feature(feature), 1)
	}
	recs := tr.Gen.Interval(target.Index)
	for i := range recs {
		v := recs[i].Feature(feature)
		cur.Add(v, 1)
		candidates[v] = true
	}
	threshold := uint64(share * float64(len(recs)))
	var sketchFlagged []uint64
	for v := range candidates {
		c, p := cur.Estimate(v), prev.Estimate(v)
		if c > p && c-p >= threshold {
			sketchFlagged = append(sketchFlagged, v)
		}
	}
	sort.Slice(sketchFlagged, func(i, j int) bool { return sketchFlagged[i] < sketchFlagged[j] })

	cloneFlagged := target.Meta.Values(feature)

	pr := func(flagged []uint64) (prec, rec float64) {
		if len(flagged) == 0 {
			return 0, 0
		}
		hit := 0
		for _, v := range flagged {
			if truth[v] {
				hit++
			}
		}
		return float64(hit) / float64(len(flagged)), float64(hit) / float64(len(truth))
	}

	out := &SketchVsClonesResult{Interval: target.Index, Feature: feature}
	out.CloneValues = len(cloneFlagged)
	out.ClonePrecision, out.CloneRecall = pr(cloneFlagged)
	out.SketchValues = len(sketchFlagged)
	out.SketchPrecision, out.SketchRecall = pr(sketchFlagged)

	out.Report = report.Table{
		Title: fmt.Sprintf("Histogram cloning vs count-min sketch (interval %d, %s)",
			target.Index, feature),
		Headers: []string{"method", "values flagged", "precision", "recall", "needs candidate list"},
	}
	out.Report.AddRow("clones+voting", out.CloneValues, out.ClonePrecision, out.CloneRecall, "no")
	out.Report.AddRow("count-min diff", out.SketchValues, out.SketchPrecision, out.SketchRecall, "yes")
	return out, nil
}

// HHHBaselineResult compares hierarchical heavy-hitter detection against
// item-set mining on one anomalous interval (§III-D / §IV).
type HHHBaselineResult struct {
	Interval int
	Class    tracegen.Class
	// VictimHit reports whether an HHH pinpoints the event's address
	// footprint (a /32 for flooding/DDoS victims, a covering prefix for
	// scans).
	VictimHit bool
	Hitters   []hhh.HeavyHitter
	Report    report.Table
}

// HHHBaseline runs exact HHH over the destination addresses of the first
// DDoS/Flooding interval's suspicious flows and checks whether the victim
// surfaces — the paper's suggested complement for range anomalies.
func HHHBaseline(tr *TraceRun, phi float64) (*HHHBaselineResult, error) {
	if phi == 0 {
		phi = 0.1
	}
	for _, it := range tr.AnomalousIntervals() {
		for _, ev := range tr.EventsAt(it.Index) {
			if ev.Class != tracegen.DDoS && ev.Class != tracegen.Flooding {
				continue
			}
			var victim uint32
			for _, fv := range ev.Signature {
				if fv.Kind == flow.DstIP {
					victim = uint32(fv.Value)
				}
			}
			if victim == 0 {
				continue
			}
			d := hhh.New(nil)
			if err := d.AddFlows(tr.Gen.Interval(it.Index), flow.DstIP); err != nil {
				return nil, err
			}
			hitters := d.Detect(phi)
			out := &HHHBaselineResult{Interval: it.Index, Class: ev.Class, Hitters: hitters}
			for _, h := range hitters {
				if h.Prefix.Contains(hhh.Prefix{Addr: victim, Len: 32}) || h.Prefix == (hhh.Prefix{Addr: victim, Len: 32}) {
					out.VictimHit = true
				}
			}
			out.Report = report.Table{
				Title: fmt.Sprintf("HHH baseline (interval %d, %s, phi=%.2f): victim hit = %v",
					it.Index, ev.Class, phi, out.VictimHit),
				Headers: []string{"prefix", "count", "discounted"},
			}
			for _, h := range hitters {
				out.Report.AddRow(h.Prefix.String(), h.Count, h.Discounted)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("experiments: no DDoS/flooding interval found")
}
