package experiments

import (
	"fmt"
	"time"

	"anomalyx/internal/detector"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/mining/fpgrowth"
	"anomalyx/internal/prefilter"
	"anomalyx/internal/report"
	"anomalyx/internal/tracegen"
)

// SasserResult is the union-vs-intersection comparison of §II-A on the
// multistage Sasser scenario.
type SasserResult struct {
	Data              *tracegen.SasserData
	UnionFlows        int
	IntersectionFlows int
	UnionItemSets     []itemset.Set
	// StagesExtracted counts worm stages represented in the union's
	// item-sets (the paper's point: all three; the intersection: none).
	StagesExtracted int
	Report          report.Table
}

// Sasser runs the §II-A experiment: prefilter the worm interval with both
// strategies and mine the union's selection.
func Sasser(seed uint64, benignFlows, minsup int) (*SasserResult, error) {
	d := tracegen.SasserScenario(seed, benignFlows)
	meta := detector.NewMetaData()
	for _, stage := range d.Meta {
		for _, fv := range stage {
			meta.Add(fv.Kind, fv.Value)
		}
	}
	out := &SasserResult{Data: d}
	out.UnionFlows = prefilter.Count(prefilter.Union{}, meta, d.Flows)
	out.IntersectionFlows = prefilter.Count(prefilter.Intersection{}, meta, d.Flows)

	suspicious := prefilter.Filter(prefilter.Union{}, meta, d.Flows)
	res, err := apriori.New().Mine(itemset.FromFlows(suspicious), minsup)
	if err != nil {
		return nil, err
	}
	out.UnionItemSets = res.Maximal
	for s, stage := range d.Meta {
		for i := range res.Maximal {
			found := false
			for _, it := range res.Maximal[i].Items {
				if it.Kind == stage[0].Kind && it.Value == stage[0].Value {
					found = true
				}
			}
			if found {
				out.StagesExtracted++
				break
			}
		}
		_ = s
	}

	out.Report = report.Table{
		Title:   "§II-A: union vs intersection on a multistage (Sasser-like) worm",
		Headers: []string{"strategy", "suspicious flows", "stages covered"},
	}
	out.Report.AddRow("union", out.UnionFlows, out.StagesExtracted)
	out.Report.AddRow("intersection", out.IntersectionFlows, 0)
	return out, nil
}

// MinerTiming is one algorithm's wall-clock on one input size.
type MinerTiming struct {
	Miner        string
	Transactions int
	MinSupport   int
	Elapsed      time.Duration
	FrequentSets int
}

// MinerComparisonResult is the §III-E computational-overhead comparison.
type MinerComparisonResult struct {
	Timings []MinerTiming
	Report  report.Table
}

// MinerComparison mines prefixes of the Table II input with all three
// algorithms, reproducing §III-E's qualitative claims: FP-tree (and
// vertical) miners outperform Apriori, and cost grows with the number of
// transactions.
func MinerComparison(seed uint64, sizes []int, minsupFrac float64) (*MinerComparisonResult, error) {
	if len(sizes) == 0 {
		sizes = []int{50000, 150000, tracegen.TableIITotal}
	}
	if minsupFrac == 0 {
		minsupFrac = 10000.0 / float64(tracegen.TableIITotal)
	}
	data := tracegen.TableIIScenario(seed)
	txs := itemset.FromFlows(data.Flows)
	miners := []mining.Miner{apriori.New(), fpgrowth.New(), eclat.New()}

	out := &MinerComparisonResult{}
	out.Report = report.Table{
		Title:   "§III-E: miner wall-clock comparison (Table II workload)",
		Headers: []string{"transactions", "minsup", "miner", "elapsed", "frequent sets"},
	}
	for _, size := range sizes {
		if size > len(txs) {
			size = len(txs)
		}
		in := txs[:size]
		minsup := int(minsupFrac * float64(size))
		if minsup < 1 {
			minsup = 1
		}
		var ref *mining.Result
		for _, m := range miners {
			t0 := time.Now()
			res, err := m.Mine(in, minsup)
			if err != nil {
				return nil, err
			}
			el := time.Since(t0)
			if ref == nil {
				ref = res
			} else if !mining.Equal(res, ref) {
				return nil, fmt.Errorf("experiments: %s disagrees with apriori on %d transactions", m.Name(), size)
			}
			out.Timings = append(out.Timings, MinerTiming{
				Miner: m.Name(), Transactions: size, MinSupport: minsup,
				Elapsed: el, FrequentSets: len(res.All),
			})
			out.Report.AddRow(size, minsup, m.Name(), el.Round(time.Millisecond).String(), len(res.All))
		}
	}
	return out, nil
}

// VotingAblationResult sweeps the votes parameter l on one anomalous
// interval, showing the meta-data size tradeoff of §III-C.
type VotingAblationResult struct {
	L         []int
	MetaCount []int
	Report    report.Table
}

// VotingAblation reruns detection on the trace prefix up to the first
// anomalous interval for each l in 1..n and reports the meta-data size.
func VotingAblation(tr *TraceRun) (*VotingAblationResult, error) {
	anom := tr.AnomalousIntervals()
	if len(anom) == 0 {
		return nil, fmt.Errorf("experiments: no anomalous intervals")
	}
	target := anom[0].Index
	n := tr.Pipeline.Detector.Clones
	if n == 0 {
		n = 3
	}
	out := &VotingAblationResult{}
	out.Report = report.Table{
		Title:   "Voting ablation: meta-data size vs votes l (first anomalous interval)",
		Headers: []string{"l", "meta-data values"},
	}
	for l := 1; l <= n; l++ {
		bcfg := detector.BankConfig{
			Features: tr.Features,
			Template: tr.Pipeline.Detector,
		}
		bcfg.Template.Votes = l
		bank, err := detector.NewBank(bcfg)
		if err != nil {
			return nil, err
		}
		var res detector.BankResult
		for idx := 0; idx <= target; idx++ {
			recs := tr.Gen.Interval(idx)
			for i := range recs {
				bank.Observe(&recs[i])
			}
			res = bank.EndInterval()
		}
		bank.Close()
		count := res.Meta.Count()
		out.L = append(out.L, l)
		out.MetaCount = append(out.MetaCount, count)
		out.Report.AddRow(l, count)
	}
	return out, nil
}
