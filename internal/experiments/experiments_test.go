package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
)

// The quick trace pass takes a few seconds; share one across tests.
var (
	runOnce sync.Once
	quickTR *TraceRun
	runErr  error
)

func quickRun(t *testing.T) *TraceRun {
	t.Helper()
	if testing.Short() {
		t.Skip("trace pass skipped in -short mode")
	}
	runOnce.Do(func() { quickTR, runErr = Run(Quick) })
	if runErr != nil {
		t.Fatal(runErr)
	}
	return quickTR
}

func TestTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("350k-flow Table II regeneration skipped in -short mode")
	}
	res, err := TableII(20071203)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mining.Transactions != tracegen.TableIITotal {
		t.Errorf("transactions %d", res.Mining.Transactions)
	}
	// The paper verifies exactly three maximal item-sets with dstPort
	// 7000 (the three above-support flooding hosts).
	if res.PortSevenK != 3 {
		t.Errorf("dstPort-7000 item-sets = %d, want 3", res.PortSevenK)
	}
	// Table II has 15 item-sets total; the synthetic mix lands close.
	if n := len(res.Mining.Maximal); n < 8 || n > 20 {
		t.Errorf("maximal item-sets = %d, want near the paper's 15", n)
	}
	// The pruning cascade: every level reports more frequent sets than
	// maximal ones at levels below the deepest.
	if len(res.Mining.Levels) < 3 {
		t.Fatalf("levels: %v", res.Mining.Levels)
	}
	l1 := res.Mining.Levels[0]
	if l1.Maximal != 0 {
		t.Errorf("all frequent 1-item-sets should be subsumed, %d maximal", l1.Maximal)
	}
	if !strings.Contains(res.Report.String(), "dstPort=7000") {
		t.Error("report missing the flood")
	}
}

func TestTableIII(t *testing.T) {
	out := TableIII(Full).String()
	for _, want := range []string{"d", "Delta", "m", "n", "l", "s", "alpha", "15m0s", "1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestQuickRunDetection(t *testing.T) {
	tr := quickRun(t)
	anom := tr.AnomalousIntervals()
	if len(anom) == 0 {
		t.Fatal("no anomalous intervals")
	}
	alarmed, withMeta := 0, 0
	for _, it := range anom {
		if it.Alarm {
			alarmed++
		}
		if it.EffectiveMeta != nil {
			withMeta++
		}
	}
	// The paper misses none of its 31 intervals; allow a small slack on
	// the compressed trace.
	if float64(alarmed) < 0.8*float64(len(anom)) {
		t.Errorf("alarmed %d of %d anomalous intervals", alarmed, len(anom))
	}
	if withMeta < alarmed {
		t.Errorf("meta-data (%d) fewer than alarms (%d)", withMeta, alarmed)
	}
	// False-alarm rate at the 3-sigma operating point should be small.
	falseAlarms, negatives := 0, 0
	for i := range tr.Intervals {
		if tr.Intervals[i].Anomalous {
			continue
		}
		negatives++
		if tr.Intervals[i].Alarm {
			falseAlarms++
		}
	}
	if fpr := float64(falseAlarms) / float64(negatives); fpr > 0.15 {
		t.Errorf("interval FPR %.3f too high", fpr)
	}
}

func TestTableIV(t *testing.T) {
	tr := quickRun(t)
	res, err := TableIV(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents != len(tr.GroundTruth) {
		t.Errorf("events %d, want %d", res.TotalEvents, len(tr.GroundTruth))
	}
	classes := map[tracegen.Class]bool{}
	totalDetected, totalExtracted, totalEvents := 0, 0, 0
	for _, row := range res.Rows {
		classes[row.Class] = true
		totalDetected += row.Detected
		totalExtracted += row.Extracted
		totalEvents += row.Events
		if row.AvgFlows <= 0 {
			t.Errorf("class %v: avg flows %v", row.Class, row.AvgFlows)
		}
	}
	if totalEvents != res.TotalEvents {
		t.Errorf("row events sum %d != %d", totalEvents, res.TotalEvents)
	}
	if float64(totalDetected) < 0.8*float64(totalEvents) {
		t.Errorf("detected %d of %d events", totalDetected, totalEvents)
	}
	if float64(totalExtracted) < 0.75*float64(totalEvents) {
		t.Errorf("extracted %d of %d events", totalExtracted, totalEvents)
	}
}

func TestFig4(t *testing.T) {
	tr := quickRun(t)
	res, err := Fig4(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KL) != len(res.Diff) || len(res.KL) != len(res.Threshold) {
		t.Fatal("series lengths differ")
	}
	if len(res.KL) == 0 {
		t.Fatal("empty series")
	}
	// KL distances are non-negative; differences mix signs.
	sawNeg := false
	for i := range res.KL {
		if res.KL[i] < 0 {
			t.Fatalf("negative KL at %d", i)
		}
		if res.Diff[i] < 0 {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Error("first differences never negative — suspicious")
	}
	if res.AlarmsAboveThreshold == 0 {
		t.Error("no threshold crossings in a window containing events")
	}
}

func TestFig5(t *testing.T) {
	tr := quickRun(t)
	res, err := Fig5(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KLSeries) < 2 {
		t.Fatalf("KL series too short: %v", res.KLSeries)
	}
	// Fig. 5 shape: the series trends downward and converges. Small
	// upward wiggles are possible because aligning a bin with the
	// reference renormalizes both distributions.
	tol := 0.02 * res.KLSeries[0]
	for i := 1; i < len(res.KLSeries); i++ {
		if res.KLSeries[i] > res.KLSeries[i-1]+tol {
			t.Errorf("KL increased at round %d: %v", i, res.KLSeries)
		}
	}
	if last := res.KLSeries[len(res.KLSeries)-1]; last >= res.KLSeries[0] {
		t.Errorf("series did not decrease overall: %v", res.KLSeries)
	}
	if !res.Converged {
		t.Error("identification did not converge")
	}
	// "Already after the first round, the KL distance decreases
	// significantly": at least 30% drop.
	if res.KLSeries[1] > 0.7*res.KLSeries[0] {
		t.Errorf("first-round drop too small: %v", res.KLSeries[:2])
	}
}

func TestFig6(t *testing.T) {
	tr := quickRun(t)
	res, err := Fig6(tr)
	if err != nil {
		t.Fatal(err)
	}
	clones := tr.Pipeline.Detector.Clones
	if len(res.Curves) != clones {
		t.Fatalf("%d curves, want %d", len(res.Curves), clones)
	}
	for c, auc := range res.AUC {
		// The detector must be far better than chance.
		if auc < 0.75 {
			t.Errorf("clone %d AUC %.3f too low", c, auc)
		}
	}
	// Paper shape: high TPR reachable at moderate FPR.
	if tpr := res.Curves[0].TPRAt(0.10); tpr < 0.7 {
		t.Errorf("TPR at FPR 0.10 = %.2f", tpr)
	}
}

func TestFig7(t *testing.T) {
	res := Fig7(0.97)
	if len(res.N) != 25 {
		t.Fatalf("N = %v", res.N)
	}
	lEqN := res.Beta["l=n"]
	lEq1 := res.Beta["l=1"]
	// beta(l=n) increases with n; beta(l=1) decreases with n.
	for i := 1; i < len(lEqN); i++ {
		if lEqN[i] < lEqN[i-1]-1e-12 {
			t.Error("beta(l=n) not increasing")
		}
		if lEq1[i] > lEq1[i-1]+1e-12 {
			t.Error("beta(l=1) not decreasing")
		}
	}
	// Anchor from the paper's setting: beta(n=l=5) = 1-0.97^5 ≈ 0.141.
	if got := lEqN[4]; math.Abs(got-(1-math.Pow(0.97, 5))) > 1e-9 {
		t.Errorf("beta(5,5) = %v", got)
	}
}

func TestFig8(t *testing.T) {
	b1 := Fig8(1, 1024)
	b5 := Fig8(5, 1024)
	g1 := b1.Gamma["l=n"]
	g5 := b5.Gamma["l=n"]
	for i := range g1 {
		// More anomalous bins leak more normal values.
		if g5[i] < g1[i] {
			t.Errorf("gamma(b=5) < gamma(b=1) at n=%d", i+1)
		}
	}
	// gamma(l=n) decreases steeply with n.
	if !(g1[0] > g1[4] && g1[4] > g1[9]) {
		t.Errorf("gamma(l=n) not decreasing: %v", g1[:10])
	}
	// Anchor: n=l=3, b=1 -> (1/1024)^3.
	want := math.Pow(1.0/1024, 3)
	if math.Abs(b1.Gamma["l=n"][2]-want) > want*1e-6 {
		t.Errorf("gamma(3,3,1,1024) = %v, want %v", b1.Gamma["l=n"][2], want)
	}
}

func TestSweepAndFig9Fig10(t *testing.T) {
	tr := quickRun(t)
	sw, err := RunSweep(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Missed+len(sw.Cells) != len(tr.AnomalousIntervals()) {
		t.Error("sweep interval accounting wrong")
	}
	f9 := Fig9(sw)
	// Paper shape: average FP item-sets decrease as support grows.
	first, last := f9.AvgFP[0], f9.AvgFP[len(f9.AvgFP)-1]
	if last > first {
		t.Errorf("avg FP grew with support: %v", f9.AvgFP)
	}
	if first > 12 {
		t.Errorf("avg FP at lowest support %v, paper scale is 2-8.5", first)
	}
	if f9.MissedEvents > len(sw.Cells)/5 {
		t.Errorf("extraction missed %d of %d intervals", f9.MissedEvents, len(sw.Cells))
	}
	// Zero-FP intervals become more common at higher support.
	if f9.ZeroFPPerSupport[len(f9.ZeroFPPerSupport)-1] < f9.ZeroFPPerSupport[0] {
		t.Errorf("zero-FP counts: %v", f9.ZeroFPPerSupport)
	}

	f10 := Fig10(sw)
	// Paper shape: cost reduction increases with support and saturates.
	if f10.AvgR[len(f10.AvgR)-1] < f10.AvgR[0] {
		t.Errorf("cost reduction decreased: %v", f10.AvgR)
	}
	for _, r := range f10.AvgR {
		if r <= 1 {
			t.Errorf("reduction %v not > 1", r)
		}
	}
}

func TestSasserExperiment(t *testing.T) {
	res, err := Sasser(20071203, 10000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntersectionFlows != 0 {
		t.Errorf("intersection selected %d flows", res.IntersectionFlows)
	}
	if res.UnionFlows == 0 {
		t.Fatal("union selected nothing")
	}
	if res.StagesExtracted != 3 {
		t.Errorf("stages extracted = %d, want 3", res.StagesExtracted)
	}
}

func TestMinerComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("three-miner timing comparison skipped in -short mode")
	}
	res, err := MinerComparison(1, []int{20000, 60000}, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) != 6 {
		t.Fatalf("timings: %d", len(res.Timings))
	}
	// All miners found the same number of frequent sets per size.
	bySize := map[int]int{}
	for _, tm := range res.Timings {
		if prev, ok := bySize[tm.Transactions]; ok && prev != tm.FrequentSets {
			t.Errorf("miners disagree at %d transactions", tm.Transactions)
		}
		bySize[tm.Transactions] = tm.FrequentSets
	}
}

func TestVotingAblation(t *testing.T) {
	tr := quickRun(t)
	res, err := VotingAblation(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.L) != tr.Pipeline.Detector.Clones {
		t.Fatalf("L = %v", res.L)
	}
	// §III-C: meta-data shrinks (or stays) as l grows.
	for i := 1; i < len(res.MetaCount); i++ {
		if res.MetaCount[i] > res.MetaCount[i-1] {
			t.Errorf("meta grew with l: %v", res.MetaCount)
		}
	}
}

func TestCarryForwardMeta(t *testing.T) {
	tr := quickRun(t)
	// Find a multi-interval event; its later intervals should have
	// effective meta-data even without their own alarm.
	for _, ev := range tr.GroundTruth {
		if ev.End == ev.Start {
			continue
		}
		for idx := ev.Start + 1; idx <= ev.End && idx < len(tr.Intervals); idx++ {
			it := &tr.Intervals[idx]
			if it.Meta == nil && it.EffectiveMeta == nil {
				// Only a failure if some earlier interval of the event
				// alarmed.
				alarmed := false
				for back := ev.Start; back < idx; back++ {
					if tr.Intervals[back].Meta != nil {
						alarmed = true
					}
				}
				if alarmed {
					t.Errorf("interval %d of event %q lacks carried meta-data", idx, ev.Name)
				}
			}
		}
	}
}

func TestFeatureIndex(t *testing.T) {
	tr := quickRun(t)
	if tr.featureIndex(flow.SrcIP) != 0 {
		t.Error("srcIP should be feature 0 in the default bank")
	}
	if tr.featureIndex(flow.Bytes) != -1 {
		t.Error("bytes is not monitored by default")
	}
}

func TestSketchVsClones(t *testing.T) {
	tr := quickRun(t)
	res, err := SketchVsClones(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both random-projection methods should identify the anomalous
	// dstPort values on a clear event.
	if res.CloneRecall < 0.5 {
		t.Errorf("clone recall %.2f", res.CloneRecall)
	}
	if res.SketchRecall < 0.5 {
		t.Errorf("sketch recall %.2f", res.SketchRecall)
	}
	if res.ClonePrecision == 0 {
		t.Error("clone precision zero")
	}
}

func TestHHHBaseline(t *testing.T) {
	tr := quickRun(t)
	res, err := HHHBaseline(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.VictimHit {
		t.Errorf("HHH did not surface the victim: %v", res.Hitters)
	}
	if len(res.Hitters) == 0 {
		t.Fatal("no heavy hitters at all")
	}
}
