// Package experiments regenerates every table and figure of the paper's
// evaluation (§III) over the synthetic SWITCH-like trace. Each experiment
// has one entry point returning structured data plus a rendered report;
// cmd/experiments prints them and EXPERIMENTS.md records the measured
// outcomes next to the paper's. The per-experiment index lives in
// DESIGN.md §4.
//
// Determinism: every experiment is seeded — traces come from
// internal/tracegen with fixed seeds and detection runs through the
// deterministic pipeline — so regenerated tables and figures are
// reproducible run to run. (Elapsed-time progress messages are the one
// wall-clock read, and they never enter results.)
package experiments

import (
	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/tracegen"
)

// Scale selects the trace size experiments run on.
type Scale int

const (
	// Full is the two-week evaluation trace (Table IV schedule). One
	// full pipeline pass takes on the order of two minutes.
	Full Scale = iota
	// Quick is a two-day trace with a proportionally compressed
	// schedule, for tests and benchmarks.
	Quick
)

// TraceConfig returns the generator configuration for a scale.
func TraceConfig(s Scale) tracegen.Config {
	if s == Quick {
		return tracegen.SmallConfig()
	}
	return tracegen.DefaultConfig()
}

// PipelineConfig returns the paper-default pipeline parameters (Table
// III): five features, k=1024 bins, n=3 clones, l=3 votes, alpha=3,
// minimum support resolved per experiment.
func PipelineConfig(s Scale) core.Config {
	cfg := core.Config{
		Detector: detector.Config{
			Bins:           1024,
			Clones:         3,
			Votes:          3,
			Alpha:          3,
			TrainIntervals: 12,
			HistoryWindow:  192,
			MaxRemoveBins:  32,
		},
		RelativeSupport: 0.05,
	}
	if s == Quick {
		cfg.Detector.Bins = 512
		cfg.Detector.TrainIntervals = 8
	}
	return cfg
}

// IntervalTrace is the per-interval record a full pipeline pass leaves
// behind — everything the figure experiments need without a second pass.
type IntervalTrace struct {
	Index      int
	TotalFlows int
	Anomalous  bool // ground truth
	Alarm      bool // detector outcome

	// Diff[f][c] is the first difference of the KL series for feature f
	// (run order) and clone c; KL[f][c] the raw distance; Threshold[f]
	// the per-feature alarm threshold (0 while training).
	Diff      [][]float64
	KL        [][]float64
	Threshold []float64

	// Meta is the alarm meta-data (nil unless Alarm). EffectiveMeta is
	// Meta, or — for continuing anomalies that only spiked at their
	// start — the carried-forward meta-data of the event's first alarm
	// (§II-B: the backscatter anomaly "was flagged by the detector in an
	// earlier interval where it had started").
	Meta          detector.MetaData
	EffectiveMeta detector.MetaData
}

// TraceRun is the artifact of one pipeline pass over a trace.
type TraceRun struct {
	Scale       Scale
	Gen         *tracegen.Generator
	Pipeline    core.Config
	Features    []flow.FeatureKind
	Intervals   []IntervalTrace
	GroundTruth []tracegen.GroundTruthEvent
}

// Run executes one full pipeline pass over the trace at the given scale,
// recording per-interval detection state.
func Run(s Scale) (*TraceRun, error) {
	return RunWith(TraceConfig(s), PipelineConfig(s), s)
}

// RunWith is Run with explicit configurations.
func RunWith(tc tracegen.Config, pc core.Config, s Scale) (*TraceRun, error) {
	gen := tracegen.New(tc)
	p, err := core.New(pc)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	features := pc.Features
	if len(features) == 0 {
		features = flow.DetectorFeatures[:]
	}

	tr := &TraceRun{
		Scale:       s,
		Gen:         gen,
		Pipeline:    pc,
		Features:    features,
		GroundTruth: gen.GroundTruth(),
	}

	for idx := 0; idx < tc.Intervals; idx++ {
		rep, err := p.ProcessInterval(gen.Interval(idx))
		if err != nil {
			return nil, err
		}
		it := IntervalTrace{
			Index:      idx,
			TotalFlows: rep.TotalFlows,
			Anomalous:  gen.IsAnomalous(idx),
			Alarm:      rep.Alarm,
		}
		it.Diff = make([][]float64, len(features))
		it.KL = make([][]float64, len(features))
		it.Threshold = make([]float64, len(features))
		for f, fres := range rep.Detection.PerFeature {
			it.Threshold[f] = fres.Threshold
			it.Diff[f] = make([]float64, len(fres.Clones))
			it.KL[f] = make([]float64, len(fres.Clones))
			for c, cres := range fres.Clones {
				it.Diff[f][c] = cres.Diff
				it.KL[f][c] = cres.KL
			}
		}
		if rep.Alarm && rep.Detection.Meta.Count() > 0 {
			it.Meta = rep.Detection.Meta
		}
		tr.Intervals = append(tr.Intervals, it)
	}

	tr.carryForwardMeta()
	return tr, nil
}

// carryForwardMeta fills EffectiveMeta: an anomalous interval that did
// not alarm inherits the meta-data of the most recent alarming interval
// covered by the same event.
func (tr *TraceRun) carryForwardMeta() {
	for i := range tr.Intervals {
		it := &tr.Intervals[i]
		if it.Meta != nil {
			it.EffectiveMeta = it.Meta
			continue
		}
		if !it.Anomalous {
			continue
		}
		for _, ev := range tr.GroundTruth {
			if !ev.Active(it.Index) || ev.Start == it.Index {
				continue
			}
			for back := it.Index - 1; back >= ev.Start; back-- {
				if m := tr.Intervals[back].Meta; m != nil {
					if it.EffectiveMeta == nil {
						it.EffectiveMeta = detector.NewMetaData()
					}
					it.EffectiveMeta.Merge(m)
					break
				}
			}
		}
	}
}

// AnomalousIntervals returns the ground-truth anomalous interval traces.
func (tr *TraceRun) AnomalousIntervals() []*IntervalTrace {
	var out []*IntervalTrace
	for i := range tr.Intervals {
		if tr.Intervals[i].Anomalous {
			out = append(out, &tr.Intervals[i])
		}
	}
	return out
}

// EventsAt returns the ground-truth events active at interval idx.
func (tr *TraceRun) EventsAt(idx int) []tracegen.GroundTruthEvent {
	var out []tracegen.GroundTruthEvent
	for _, ev := range tr.GroundTruth {
		if ev.Active(idx) {
			out = append(out, ev)
		}
	}
	return out
}

// featureIndex returns the run-order index of feature k, or -1.
func (tr *TraceRun) featureIndex(k flow.FeatureKind) int {
	for i, f := range tr.Features {
		if f == k {
			return i
		}
	}
	return -1
}
