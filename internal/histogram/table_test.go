package histogram

import (
	"reflect"
	"slices"
	"sort"
	"testing"

	"anomalyx/internal/hash"
)

// mapHistogram is the reference model for the valueTable: the literal
// map-per-bin implementation this package shipped before the arena
// refactor. The differential tests drive a Histogram and a mapHistogram
// through the same program and require identical observable state —
// snapshots, per-bin values, counts — so the table swap is proven
// behaviour-preserving rather than assumed.
type mapHistogram struct {
	fn     hash.Func
	k      int
	counts []uint64
	total  uint64
	values []map[uint64]uint64
}

func newMapHistogram(k int, fn hash.Func) *mapHistogram {
	return &mapHistogram{fn: fn, k: k, counts: make([]uint64, k), values: make([]map[uint64]uint64, k)}
}

func (m *mapHistogram) addN(v, n uint64) {
	b := m.fn.Bin(v, m.k)
	m.counts[b] += n
	m.total += n
	mm := m.values[b]
	if mm == nil {
		mm = make(map[uint64]uint64)
		m.values[b] = mm
	}
	mm[v] += n
}

func (m *mapHistogram) merge(other *mapHistogram) {
	for b, n := range other.counts {
		m.counts[b] += n
	}
	m.total += other.total
	for b, src := range other.values {
		if src == nil {
			continue
		}
		dst := m.values[b]
		if dst == nil {
			dst = make(map[uint64]uint64, len(src))
			m.values[b] = dst
		}
		for v, n := range src {
			dst[v] += n
		}
	}
}

func (m *mapHistogram) reset() {
	for i := range m.counts {
		m.counts[i] = 0
	}
	m.total = 0
	for i := range m.values {
		m.values[i] = nil
	}
}

// snapshot flattens the model into the canonical Snapshot form with the
// pre-refactor algorithm (sort each bin's map independently).
func (m *mapHistogram) snapshot() Snapshot {
	s := Snapshot{Counts: append([]uint64(nil), m.counts...), Total: m.total}
	s.Values = make([][]ValueCount, m.k)
	for b, mm := range m.values {
		if len(mm) == 0 {
			continue
		}
		vs := make([]ValueCount, 0, len(mm))
		for v, n := range mm {
			vs = append(vs, ValueCount{Value: v, Count: n})
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].Value < vs[j].Value })
		s.Values[b] = vs
	}
	return s
}

// checkParity compares every observable of the histogram against the
// model: canonical snapshot, totals, per-bin counts and values.
func checkParity(t *testing.T, h *Histogram, m *mapHistogram) {
	t.Helper()
	hs, ms := h.Snapshot(), m.snapshot()
	if !reflect.DeepEqual(hs, ms) {
		t.Fatalf("snapshot parity broken:\n table %+v\n model %+v", hs, ms)
	}
	if h.Total() != m.total {
		t.Fatalf("total %d, model %d", h.Total(), m.total)
	}
	for b := 0; b < h.K(); b++ {
		if h.Count(b) != m.counts[b] {
			t.Fatalf("bin %d count %d, model %d", b, h.Count(b), m.counts[b])
		}
		var want []uint64
		for v := range m.values[b] {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if got := h.ValuesInBin(b); !reflect.DeepEqual(got, want) {
			t.Fatalf("bin %d values %v, model %v", b, got, want)
		}
	}
}

// runParityProgram interprets data as a program over two histograms and
// their models: adds (including n=0, which must still create the
// entry), merges between tables of mismatched occupancy, resets, and
// snapshot/restore round trips. It is shared by the deterministic
// differential test and FuzzValueTableParity.
func runParityProgram(t *testing.T, data []byte) {
	const k = 16
	fn := hash.New(42)
	hs := [2]*Histogram{New(k, fn, true), New(k, fn, true)}
	ms := [2]*mapHistogram{newMapHistogram(k, fn), newMapHistogram(k, fn)}

	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	for len(data) > 0 {
		op := next()
		tgt := int(op>>4) & 1
		switch op % 5 {
		case 0, 1: // add: small value space forces slot collisions
			v := uint64(next()) % 64
			n := uint64(next()) % 4 // n = 0 must still create the entry
			hs[tgt].AddN(v, n)
			ms[tgt].addN(v, n)
		case 2: // add a wide value (exercises high slot hashes)
			v := uint64(next())<<56 | uint64(next())<<24 | uint64(next())
			hs[tgt].AddN(v, 1)
			ms[tgt].addN(v, 1)
		case 3: // merge into tgt from the other table (occupancies differ)
			hs[tgt].Merge(hs[1-tgt])
			ms[tgt].merge(ms[1-tgt])
		case 4:
			switch next() % 3 {
			case 0:
				hs[tgt].Reset()
				ms[tgt].reset()
			case 1: // snapshot/restore into a fresh histogram
				fresh := New(k, fn, true)
				if err := fresh.RestoreSnapshot(hs[tgt].Snapshot()); err != nil {
					t.Fatal(err)
				}
				hs[tgt] = fresh
			case 2: // restore over live state (stale entries must vanish)
				if err := hs[tgt].RestoreSnapshot(hs[1-tgt].Snapshot()); err != nil {
					t.Fatal(err)
				}
				// Model restore = rebuild from the source model (merge
				// into a zeroed model deep-copies its maps).
				*ms[tgt] = *newMapHistogram(k, fn)
				ms[tgt].merge(ms[1-tgt])
			}
		}
	}
	checkParity(t, hs[0], ms[0])
	checkParity(t, hs[1], ms[1])
}

// TestValueTableParityVsMap drives long pseudo-random programs through
// runParityProgram — the map-reference differential test locking down
// the arena refactor.
func TestValueTableParityVsMap(t *testing.T) {
	state := uint64(0x9e3779b97f4a7c15)
	rnd := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for round := 0; round < 20; round++ {
		prog := make([]byte, 400)
		for i := range prog {
			prog[i] = byte(rnd())
		}
		runParityProgram(t, prog)
	}
}

// TestValueTableGrowthAndReset exercises the arena directly: growth
// across several doublings, reset recycling, and zero-count entries.
func TestValueTableGrowthAndReset(t *testing.T) {
	var vt valueTable
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		vt.add(i*2654435761, i%7) // i%7 is 0 sometimes: entry must exist
	}
	if vt.n != n {
		t.Fatalf("occupancy %d, want %d", vt.n, n)
	}
	for i := uint64(0); i < n; i++ {
		c, ok := vt.get(i * 2654435761)
		if !ok || c != i%7 {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", i, c, ok, i%7)
		}
	}
	if _, ok := vt.get(1); ok {
		t.Fatal("absent key reported present")
	}
	capBefore := len(vt.keys)
	vt.reset()
	if vt.n != 0 {
		t.Fatalf("occupancy %d after reset", vt.n)
	}
	if len(vt.keys) != capBefore {
		t.Fatalf("reset shrank the arena: %d -> %d", capBefore, len(vt.keys))
	}
	if _, ok := vt.get(2654435761); ok {
		t.Fatal("stale entry visible after reset")
	}
	// Refilling the same population must not grow the arena again.
	for i := uint64(0); i < n; i++ {
		vt.add(i*2654435761, 1)
	}
	if len(vt.keys) != capBefore {
		t.Fatalf("refill grew the arena: %d -> %d", capBefore, len(vt.keys))
	}
	// set overwrites; add accumulates.
	vt.set(7, 5)
	vt.set(7, 9)
	if c, _ := vt.get(7); c != 9 {
		t.Fatalf("set did not overwrite: %d", c)
	}
	vt.add(7, 1)
	if c, _ := vt.get(7); c != 10 {
		t.Fatalf("add did not accumulate: %d", c)
	}
}

// TestValueTableShrinkAfterSpike: a cardinality spike must not pin its
// arena forever — sustained low occupancy decays capacity to the recent
// working set — while busy steady state keeps the arena untouched.
func TestValueTableShrinkAfterSpike(t *testing.T) {
	var vt valueTable
	fill := func(n uint64) {
		for i := uint64(0); i < n; i++ {
			vt.add(i*0x9e3779b97f4a7c15+1, 1)
		}
	}
	fill(100_000) // the spike
	peak := len(vt.keys)
	for r := 0; r < 2*tableShrinkAfter; r++ { // busy intervals: no decay
		vt.reset()
		fill(100_000)
		if len(vt.keys) != peak {
			t.Fatalf("busy reset %d changed capacity %d -> %d", r, peak, len(vt.keys))
		}
	}
	for r := 0; r < 4*tableShrinkAfter; r++ { // quiet intervals: decay
		vt.reset()
		fill(100)
	}
	if len(vt.keys) >= peak {
		t.Fatalf("arena did not shrink after sustained low occupancy: %d slots", len(vt.keys))
	}
	if vt.n != 100 {
		t.Fatalf("occupancy %d after shrink-era fills, want 100", vt.n)
	}
	for i := uint64(0); i < 100; i++ { // still a working table
		if c, ok := vt.get(i*0x9e3779b97f4a7c15 + 1); !ok || c != 1 {
			t.Fatalf("key %d lost after shrink: (%d,%v)", i, c, ok)
		}
	}
}

// TestAppendValuesInBinsMatchesPerBin: the one-pass multi-bin sweep is
// exactly the concatenation of per-bin queries — grouped in list order,
// ascending within each bin — for arbitrary bin lists, including bins
// with no values.
func TestAppendValuesInBinsMatchesPerBin(t *testing.T) {
	const k = 32
	h := New(k, hash.New(9), true)
	state := uint64(7)
	for i := 0; i < 3000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		h.AddN(state%700, state%3) // collisions, repeats, zero counts
	}
	binLists := [][]int{
		nil,
		{0},
		{31, 0, 17},
		{5, 4, 3, 2, 1, 0},
		{17, 16, 15, 30, 2, 9, 25, 11},
	}
	for _, bins := range binLists {
		var want []uint64
		for _, b := range bins {
			want = h.AppendValuesInBin(want, b)
		}
		got := h.AppendValuesInBins(nil, bins)
		if !slices.Equal(got, want) {
			t.Fatalf("bins %v: sweep %v, per-bin %v", bins, got, want)
		}
		// Appending after existing content leaves it untouched.
		pre := []uint64{999}
		got = h.AppendValuesInBins(pre, bins)
		if got[0] != 999 || !slices.Equal(got[1:], want) {
			t.Fatalf("bins %v: sweep with prefix %v, want 999+%v", bins, got, want)
		}
	}
}

// TestValueTableReserve pins the bulk-fill contract: after reserve(n),
// n inserts perform no further allocation (observed via capacity).
func TestValueTableReserve(t *testing.T) {
	var vt valueTable
	vt.reserve(1000)
	capBefore := len(vt.keys)
	if capBefore == 0 {
		t.Fatal("reserve allocated nothing")
	}
	for i := uint64(0); i < 1000; i++ {
		vt.set(i*0x9e3779b9, i)
	}
	if len(vt.keys) != capBefore {
		t.Fatalf("inserts after reserve grew the arena: %d -> %d", capBefore, len(vt.keys))
	}
}
