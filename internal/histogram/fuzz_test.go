package histogram

import "testing"

// FuzzValueTableParity feeds arbitrary op programs to the
// table-vs-map differential harness (see runParityProgram): adds with
// clustered and wide values, zero-count adds, merges between tables of
// mismatched occupancy, resets, and snapshot/restore round trips. Any
// divergence between the arena-backed valueTable and the map reference
// model — in snapshots, totals, per-bin counts, or per-bin values — is
// a crash, so the fuzzer searches directly for violations of the
// determinism contract the refactor must preserve.
func FuzzValueTableParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	// A merge-heavy program: op%5==3 merges, alternating targets.
	f.Add([]byte{3, 19, 3, 19, 0, 7, 1, 16, 2, 40, 41, 42, 3, 19, 3})
	// Reset/restore churn with interleaved adds.
	f.Add([]byte{4, 0, 0, 5, 2, 4, 3, 1, 9, 3, 4, 6, 20, 4, 3, 4, 0, 0, 3})
	f.Fuzz(runParityProgram)
}
