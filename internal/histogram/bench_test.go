package histogram

import (
	"testing"

	"anomalyx/internal/hash"
)

// benchValues is a deterministic pseudo-random value population shaped
// like an interval's worth of one feature: n draws from a space of
// width distinct values (so bins collect multiple values and values
// repeat, as ports and addresses do).
func benchValues(n int, width uint64) []uint64 {
	vals := make([]uint64, n)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range vals {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		vals[i] = state % width
	}
	return vals
}

// BenchmarkHistogramAddTracked measures steady-state tracked ingestion:
// the first interval warms the value table's arena, Reset recycles it,
// and every subsequent interval's adds must allocate nothing (0 B/op —
// the acceptance bar for the arena refactor). The i%len wrap plus the
// periodic Reset reproduce the per-interval lifecycle inside the timer.
func BenchmarkHistogramAddTracked(b *testing.B) {
	h := New(1024, hash.New(1), true)
	vals := benchValues(20_000, 50_000)
	for _, v := range vals { // interval 0: warm the arena
		h.Add(v)
	}
	h.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j := i % len(vals); j == 0 {
			h.Reset()
			h.Add(vals[0])
		} else {
			h.Add(vals[j])
		}
	}
}

// BenchmarkSnapshotRestore measures the canonical snapshot of a tracked
// histogram (flatten + sort into the per-bin slab) and the bulk arena
// restore, the two halves of the wire path's per-interval state copy.
func BenchmarkSnapshotRestore(b *testing.B) {
	h := New(1024, hash.New(1), true)
	for _, v := range benchValues(20_000, 50_000) {
		h.Add(v)
	}
	s := h.Snapshot()
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Snapshot()
		}
	})
	b.Run("restore", func(b *testing.B) {
		r := New(1024, hash.New(1), true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.RestoreSnapshot(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
