package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"anomalyx/internal/hash"
)

func newTestHist(k int, track bool) *Histogram {
	return New(k, hash.New(1), track)
}

func TestAddAndCount(t *testing.T) {
	h := newTestHist(16, false)
	h.Add(5)
	h.Add(5)
	h.AddN(9, 3)
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if got := h.Count(h.Bin(5)); got < 2 {
		t.Errorf("bin of 5 has %d, want >= 2", got)
	}
	var sum uint64
	for i := 0; i < h.K(); i++ {
		sum += h.Count(i)
	}
	if sum != 5 {
		t.Errorf("bin sum %d, want 5", sum)
	}
}

func TestValueTracking(t *testing.T) {
	h := newTestHist(8, true)
	h.Add(100)
	h.Add(100)
	h.Add(200)
	b := h.Bin(100)
	vals := h.ValuesInBin(b)
	found := false
	for _, v := range vals {
		if v == 100 {
			found = true
		}
	}
	if !found {
		t.Errorf("value 100 not tracked in its bin; got %v", vals)
	}
}

func TestValueTrackingDisabled(t *testing.T) {
	h := newTestHist(8, false)
	h.Add(100)
	if h.ValuesInBin(h.Bin(100)) != nil {
		t.Error("untracked histogram returned values")
	}
}

func TestReset(t *testing.T) {
	h := newTestHist(8, true)
	h.Add(1)
	h.Add(2)
	h.Reset()
	if h.Total() != 0 {
		t.Errorf("Total after reset = %d", h.Total())
	}
	for i := 0; i < h.K(); i++ {
		if h.Count(i) != 0 {
			t.Errorf("bin %d non-zero after reset", i)
		}
		if h.ValuesInBin(i) != nil {
			t.Errorf("bin %d still has values after reset", i)
		}
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, hash.New(1), false)
}

func TestKLIdentityIsZero(t *testing.T) {
	p := []uint64{10, 20, 0, 5}
	if d := KL(p, p); d != 0 {
		t.Errorf("KL(p,p) = %v, want 0", d)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b [8]uint16) bool {
		p := make([]uint64, 8)
		q := make([]uint64, 8)
		for i := 0; i < 8; i++ {
			p[i] = uint64(a[i])
			q[i] = uint64(b[i])
		}
		return KL(p, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKLDetectsShift(t *testing.T) {
	// Moving mass into one bin must increase the distance.
	base := []uint64{100, 100, 100, 100}
	spiked := []uint64{100, 100, 100, 5000}
	mild := []uint64{110, 95, 100, 100}
	if KL(spiked, base) <= KL(mild, base) {
		t.Errorf("KL(spiked)=%v should exceed KL(mild)=%v",
			KL(spiked, base), KL(mild, base))
	}
}

func TestKLAsymmetric(t *testing.T) {
	p := []uint64{1000, 10, 10, 10}
	q := []uint64{10, 1000, 500, 10}
	if math.Abs(KL(p, q)-KL(q, p)) < 1e-12 {
		t.Error("KL should generally be asymmetric for these inputs")
	}
}

func TestKLEmptyReference(t *testing.T) {
	// Entirely new traffic in a bin empty in the reference must stay
	// finite (smoothing) but large-ish.
	p := []uint64{0, 0, 0, 10000}
	q := []uint64{2500, 2500, 2500, 2500}
	d := KL(p, q)
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("KL not finite: %v", d)
	}
	if d <= 0 {
		t.Fatalf("KL = %v, want > 0", d)
	}
}

func TestKLScaleInvariance(t *testing.T) {
	// KL compares distributions: doubling all counts should barely move
	// the distance (smoothing introduces a tiny wobble).
	p := []uint64{100, 300, 50, 550}
	q := []uint64{200, 200, 200, 400}
	p2 := make([]uint64, 4)
	q2 := make([]uint64, 4)
	for i := range p {
		p2[i], q2[i] = 2*p[i], 2*q[i]
	}
	if math.Abs(KL(p, q)-KL(p2, q2)) > 0.01 {
		t.Errorf("KL not scale invariant: %v vs %v", KL(p, q), KL(p2, q2))
	}
}

func TestKLPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	KL([]uint64{1}, []uint64{1, 2})
}

func TestDistance(t *testing.T) {
	a := newTestHist(16, false)
	b := newTestHist(16, false)
	for v := uint64(0); v < 100; v++ {
		a.Add(v)
		b.Add(v)
	}
	if d := Distance(a, b); d != 0 {
		t.Errorf("identical histograms: distance %v", d)
	}
	for i := 0; i < 1000; i++ {
		a.Add(7777)
	}
	if d := Distance(a, b); d <= 0 {
		t.Errorf("spiked histogram: distance %v", d)
	}
}

func TestIdentifyConvergesOnSingleSpike(t *testing.T) {
	k := 64
	ref := make([]uint64, k)
	cur := make([]uint64, k)
	for i := 0; i < k; i++ {
		ref[i] = 100
		cur[i] = 100
	}
	cur[17] = 5000 // the anomaly

	id := IdentifyAnomalousBins(cur, ref, 0, 0.01, 0)
	if !id.Converged {
		t.Fatal("did not converge")
	}
	if len(id.Bins) != 1 || id.Bins[0] != 17 {
		t.Fatalf("identified bins %v, want [17]", id.Bins)
	}
	if len(id.KLSeries) != 2 {
		t.Fatalf("KL series %v, want length 2", id.KLSeries)
	}
	if id.KLSeries[1] >= id.KLSeries[0] {
		t.Error("KL did not decrease after removal")
	}
	if id.KLSeries[1] > 0.01 {
		t.Errorf("final KL %v above threshold", id.KLSeries[1])
	}
}

func TestIdentifyMultipleSpikesInOrder(t *testing.T) {
	k := 32
	ref := make([]uint64, k)
	cur := make([]uint64, k)
	for i := 0; i < k; i++ {
		ref[i] = 1000
		cur[i] = 1000
	}
	cur[3] = 9000  // largest difference
	cur[20] = 5000 // second

	id := IdentifyAnomalousBins(cur, ref, 0, 0.005, 0)
	if !id.Converged {
		t.Fatal("did not converge")
	}
	if len(id.Bins) < 2 {
		t.Fatalf("bins %v, want both spikes", id.Bins)
	}
	if id.Bins[0] != 3 || id.Bins[1] != 20 {
		t.Errorf("removal order %v, want [3 20 ...]", id.Bins)
	}
	// Fig. 5 shape: monotone decreasing KL series.
	for i := 1; i < len(id.KLSeries); i++ {
		if id.KLSeries[i] > id.KLSeries[i-1]+1e-12 {
			t.Errorf("KL series not decreasing at %d: %v", i, id.KLSeries)
		}
	}
}

func TestIdentifyNoAlarmNeedsNoRemoval(t *testing.T) {
	ref := []uint64{10, 10, 10, 10}
	cur := []uint64{11, 9, 10, 10}
	id := IdentifyAnomalousBins(cur, ref, 0, 10, 0)
	if !id.Converged || len(id.Bins) != 0 {
		t.Errorf("calm histogram: bins %v converged %v", id.Bins, id.Converged)
	}
}

func TestIdentifyRespectsMaxRounds(t *testing.T) {
	k := 16
	ref := make([]uint64, k)
	cur := make([]uint64, k)
	for i := 0; i < k; i++ {
		ref[i] = 10
		cur[i] = 10000 // everything is anomalous
	}
	id := IdentifyAnomalousBins(cur, ref, 0, 1e-9, 4)
	if len(id.Bins) > 4 {
		t.Errorf("removed %d bins, cap was 4", len(id.Bins))
	}
}

func TestIdentifyDoesNotMutateInput(t *testing.T) {
	ref := []uint64{10, 10, 10, 10}
	cur := []uint64{10, 10, 10, 10000}
	curCopy := []uint64{10, 10, 10, 10000}
	IdentifyAnomalousBins(cur, ref, 0, 0.001, 0)
	for i := range cur {
		if cur[i] != curCopy[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestIdentifyIdenticalHistogramsStall(t *testing.T) {
	// klPrev very negative makes the alarm condition unsatisfiable, but
	// with zero differences everywhere the search must stop gracefully.
	ref := []uint64{5, 5, 5}
	cur := []uint64{5, 5, 5}
	id := IdentifyAnomalousBins(cur, ref, -100, 1, 0)
	if id.Converged {
		t.Error("cannot converge when threshold is unsatisfiable")
	}
	if len(id.Bins) != 0 {
		t.Errorf("no bins should be removed, got %v", id.Bins)
	}
}
