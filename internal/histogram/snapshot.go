package histogram

import (
	"fmt"
	"sort"
)

// ValueCount is one (feature value, observation count) pair of a bin's
// tracked values.
type ValueCount struct {
	Value uint64
	Count uint64
}

// Snapshot is the exported, plain-data state of a Histogram: everything
// that accumulates between Resets, in a canonical form suitable for
// serialization. Counts is always a private copy (never an alias of the
// live histogram) and each bin's Values slice is sorted ascending by
// Value, so two histograms holding the same observations always yield
// deeply equal — and, once serialized, byte-identical — snapshots
// regardless of insertion or map-iteration order.
//
// A Snapshot does not carry the hash function or bin count as
// configuration: restoring requires a histogram already constructed with
// the matching parameters (both sides of a wire transfer build their
// histograms from the same detector Config and Seed).
type Snapshot struct {
	// Counts holds the per-bin counts; its length is the bin count K.
	Counts []uint64
	// Total is the observation count (the sum of Counts).
	Total uint64
	// Values is nil when value tracking is disabled; otherwise one slice
	// per bin (nil for untouched bins), sorted ascending by Value.
	Values [][]ValueCount
}

// Snapshot captures the histogram's current-interval state. The result
// shares no memory with the histogram: Counts is a copy (the CountsCopy
// contract — snapshots outlive the interval) and value maps are
// flattened into sorted ValueCount slices.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Counts: h.CountsCopy(), Total: h.total}
	if h.values == nil {
		return s
	}
	s.Values = make([][]ValueCount, len(h.values))
	for b, m := range h.values {
		if len(m) == 0 {
			continue
		}
		vs := make([]ValueCount, 0, len(m))
		for v, n := range m {
			vs = append(vs, ValueCount{Value: v, Count: n})
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].Value < vs[j].Value })
		s.Values[b] = vs
	}
	return s
}

// RestoreSnapshot replaces the histogram's accumulated state with s,
// discarding whatever the current interval held. The histogram must have
// been constructed with the snapshot's bin count and the same
// value-tracking mode; the hash function is not checked (it is not part
// of a snapshot) — restoring into a histogram built from a different
// seed silently yields a histogram whose future Adds disagree with its
// restored past, so callers must guarantee matching construction
// parameters (the wire protocol does so with a config digest).
func (h *Histogram) RestoreSnapshot(s Snapshot) error {
	if len(s.Counts) != len(h.counts) {
		return fmt.Errorf("histogram: restore snapshot with %d bins into histogram with %d", len(s.Counts), len(h.counts))
	}
	if (s.Values != nil) != (h.values != nil) {
		return fmt.Errorf("histogram: restore snapshot with mismatched value tracking")
	}
	if s.Values != nil && len(s.Values) != len(h.counts) {
		return fmt.Errorf("histogram: restore snapshot with %d value bins into histogram with %d", len(s.Values), len(h.counts))
	}
	copy(h.counts, s.Counts)
	h.total = s.Total
	if h.values == nil {
		return nil
	}
	for b := range h.values {
		h.values[b] = nil
		if b >= len(s.Values) || len(s.Values[b]) == 0 {
			continue
		}
		m := make(map[uint64]uint64, len(s.Values[b]))
		for _, vc := range s.Values[b] {
			m[vc.Value] = vc.Count
		}
		h.values[b] = m
	}
	return nil
}
