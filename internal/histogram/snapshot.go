package histogram

import (
	"cmp"
	"fmt"
	"slices"
)

// ValueCount is one (feature value, observation count) pair of a bin's
// tracked values.
type ValueCount struct {
	Value uint64
	Count uint64
}

// Snapshot is the exported, plain-data state of a Histogram: everything
// that accumulates between Resets, in a canonical form suitable for
// serialization. Counts is always a private copy (never an alias of the
// live histogram) and each bin's Values slice is sorted ascending by
// Value, so two histograms holding the same observations always yield
// deeply equal — and, once serialized, byte-identical — snapshots
// regardless of insertion or table-iteration order.
//
// The per-bin Values slices share one backing array (they are adjacent
// sub-slices of a single slab, capacity-clipped so appends cannot bleed
// across bins). That is invisible to readers and to DeepEqual; it only
// means a caller must not grow one bin's slice in place and expect the
// slab to stay intact — treat a Snapshot as immutable plain data.
//
// A Snapshot does not carry the hash function or bin count as
// configuration: restoring requires a histogram already constructed with
// the matching parameters (both sides of a wire transfer build their
// histograms from the same detector Config and Seed).
type Snapshot struct {
	// Counts holds the per-bin counts; its length is the bin count K.
	Counts []uint64
	// Total is the observation count (the sum of Counts).
	Total uint64
	// Values is nil when value tracking is disabled; otherwise one slice
	// per bin (nil for untouched bins), sorted ascending by Value.
	Values [][]ValueCount
}

// Snapshot captures the histogram's current-interval state. The result
// shares no memory with the histogram: Counts is a copy (the CountsCopy
// contract — snapshots outlive the interval) and tracked values are
// flattened into one sorted slab, sub-sliced per bin (a handful of
// allocations total, not one per bin). The flatten is a counting sort:
// one table pass tallies entries per bin, the prefix sum carves the
// slab into per-bin ranges, a second pass places entries, and each
// (small) range sorts ascending by value — O(n + Σ_b n_b·log n_b),
// the same sort work the per-bin maps paid, without their allocations.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Counts: h.CountsCopy(), Total: h.total}
	if !h.track {
		return s
	}
	k := len(h.counts)
	s.Values = make([][]ValueCount, k)
	n := h.values.n
	if n == 0 {
		return s
	}
	offs := make([]int, k+1)
	h.values.forEach(func(v, _ uint64) {
		offs[h.fn.Bin(v, k)+1]++
	})
	for b := 0; b < k; b++ {
		offs[b+1] += offs[b]
	}
	slab := make([]ValueCount, n)
	// offs[b] doubles as bin b's placement cursor; after this pass it
	// holds bin b's end, and bin b-1's end is its start.
	h.values.forEach(func(v, c uint64) {
		b := h.fn.Bin(v, k)
		slab[offs[b]] = ValueCount{Value: v, Count: c}
		offs[b]++
	})
	for b := 0; b < k; b++ {
		start := 0
		if b > 0 {
			start = offs[b-1]
		}
		if end := offs[b]; end > start {
			vs := slab[start:end:end]
			slices.SortFunc(vs, func(a, b ValueCount) int { return cmp.Compare(a.Value, b.Value) })
			s.Values[b] = vs
		}
	}
	return s
}

// MergeSnapshot folds a snapshot's observations into the histogram
// additively — per-bin counts add, the total adds, and tracked values
// accumulate into the value table. It is Merge with a Snapshot on the
// right-hand side: when both sides were built with the same hash
// function, merging a sibling's snapshot is identical to having added
// every one of its observations directly (the mergeable-sketch
// invariant), which lets a distributed collector absorb a shipped
// interval without first restoring it into a scratch histogram. The
// same configuration-matching caveat as RestoreSnapshot applies: bin
// count and value-tracking mode are checked, the hash function cannot
// be.
func (h *Histogram) MergeSnapshot(s Snapshot) error {
	if len(s.Counts) != len(h.counts) {
		return fmt.Errorf("histogram: merge snapshot with %d bins into histogram with %d", len(s.Counts), len(h.counts))
	}
	if (s.Values != nil) != h.track {
		return fmt.Errorf("histogram: merge snapshot with mismatched value tracking")
	}
	if s.Values != nil && len(s.Values) != len(h.counts) {
		return fmt.Errorf("histogram: merge snapshot with %d value bins into histogram with %d", len(s.Values), len(h.counts))
	}
	for b, n := range s.Counts {
		h.counts[b] += n
	}
	h.total += s.Total
	if !h.track {
		return nil
	}
	extra := 0
	for _, vs := range s.Values {
		extra += len(vs)
	}
	h.values.ensure(extra)
	for _, vs := range s.Values {
		for _, vc := range vs {
			h.values.add(vc.Value, vc.Count)
		}
	}
	return nil
}

// RestoreSnapshot replaces the histogram's accumulated state with s,
// discarding whatever the current interval held. The histogram must have
// been constructed with the snapshot's bin count and the same
// value-tracking mode; the hash function is not checked (it is not part
// of a snapshot) — restoring into a histogram built from a different
// seed silently yields a histogram whose future Adds disagree with its
// restored past, so callers must guarantee matching construction
// parameters (the wire protocol does so with a config digest).
//
// Because snapshots carry each bin's values pre-sorted, restore is a
// single bulk fill of the value table: one reserve sized to the
// snapshot's entry count (at most one arena allocation), then straight
// inserts — no per-bin structures are rebuilt.
func (h *Histogram) RestoreSnapshot(s Snapshot) error {
	if len(s.Counts) != len(h.counts) {
		return fmt.Errorf("histogram: restore snapshot with %d bins into histogram with %d", len(s.Counts), len(h.counts))
	}
	if (s.Values != nil) != h.track {
		return fmt.Errorf("histogram: restore snapshot with mismatched value tracking")
	}
	if s.Values != nil && len(s.Values) != len(h.counts) {
		return fmt.Errorf("histogram: restore snapshot with %d value bins into histogram with %d", len(s.Values), len(h.counts))
	}
	copy(h.counts, s.Counts)
	h.total = s.Total
	if !h.track {
		return nil
	}
	h.values.reset()
	total := 0
	for _, vs := range s.Values {
		total += len(vs)
	}
	h.values.reserve(total)
	for _, vs := range s.Values {
		for _, vc := range vs {
			h.values.set(vc.Value, vc.Count)
		}
	}
	return nil
}
