package histogram

import "math"

// Entropy returns the Shannon entropy (bits) of the distribution induced
// by the per-bin counts. Empty histograms have zero entropy. Entropy is
// the alternative detection metric of Table I's entropy-based detectors
// (Wagner & Plattner [33], Lakhina et al. [18]): worm outbreaks and
// scans disperse feature distributions (entropy rises), floods and DDoS
// concentrate them (entropy falls).
func Entropy(counts []uint64) float64 {
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyDistance is the entropy-based analogue of the KL distance used
// by the detector: the absolute entropy difference between the current
// and reference distributions. Like the KL distance it is zero for
// coinciding distributions and grows with disruption, in either
// direction (dispersion or concentration).
func EntropyDistance(p, q []uint64) float64 {
	return math.Abs(Entropy(p) - Entropy(q))
}

// Metric is a distance between two per-bin count vectors.
type Metric func(p, q []uint64) float64

// IdentifyAnomalousBinsMetric generalizes IdentifyAnomalousBins to any
// distance metric: bins with the largest absolute count difference are
// aligned with the reference until metric(cleaned, ref) - prevDist drops
// to the threshold.
func IdentifyAnomalousBinsMetric(cur, ref []uint64, prevDist, threshold float64, maxRounds int, metric Metric) Identification {
	if len(cur) != len(ref) {
		panic("histogram: IdentifyAnomalousBinsMetric over different bin counts")
	}
	k := len(cur)
	if maxRounds <= 0 || maxRounds > k {
		maxRounds = k
	}
	work := make([]uint64, k)
	copy(work, cur)

	id := Identification{KLSeries: []float64{metric(work, ref)}}
	removed := make([]bool, k)

	for len(id.Bins) < maxRounds {
		if id.KLSeries[len(id.KLSeries)-1]-prevDist <= threshold {
			id.Converged = true
			return id
		}
		best, bestDiff := -1, uint64(0)
		for i := 0; i < k; i++ {
			if removed[i] {
				continue
			}
			d := absDiff(work[i], ref[i])
			if best == -1 || d > bestDiff {
				best, bestDiff = i, d
			}
		}
		if best == -1 || bestDiff == 0 {
			return id
		}
		removed[best] = true
		work[best] = ref[best]
		id.Bins = append(id.Bins, best)
		id.KLSeries = append(id.KLSeries, metric(work, ref))
	}
	id.Converged = id.KLSeries[len(id.KLSeries)-1]-prevDist <= threshold
	return id
}
