package histogram

import "math/bits"

// valueTable is the histogram's value-tracking store: a specialized
// open-addressing hash table from feature value to observation count
// (uint64 → uint64, linear probing, power-of-two capacity). It replaces
// the literal per-bin map[uint64]uint64 of §II-D's "map of bins and
// corresponding feature values": because a value's bin is a pure
// function of the value (the clone's seeded hash), one flat value →
// count table per histogram carries exactly the same information as a
// map per bin, and per-bin views are recovered by filtering on
// Histogram.Bin.
//
// All storage lives in one arena — a single []uint64 allocation holding
// the key slots, the count slots, and the occupancy bitmap. reset
// clears only the bitmap and keeps the arena, so a histogram that has
// seen one full interval allocates nothing on the next: steady-state
// AddN is allocation-free, which is what removes the map churn from the
// ingestion hot path (every interval used to rebuild ~one map per
// non-empty bin, each with its own growth reallocations).
//
// Determinism: the table's iteration order depends on insertion history
// (like a map's, though it is at least stable), so it is never exposed.
// Every reader that feeds report or snapshot bytes — AppendValuesInBin,
// Snapshot — sorts before returning, exactly as the map-based code did.
type valueTable struct {
	keys   []uint64 // arena[0:cap]; stale slots are masked by the bitmap
	counts []uint64 // arena[cap:2cap]
	bits   []uint64 // arena[2cap:]; one occupancy bit per slot
	mask   uint64   // len(keys) - 1 (capacity is a power of two)
	n      int      // occupied slots

	// Shrink bookkeeping (see reset): consecutive resets whose
	// occupancy stayed far below capacity, and the largest such
	// occupancy — the recent working set the arena decays to.
	lowStreak int
	lowMax    int
}

// tableMinSlots is the capacity of the first arena. Small, because many
// histograms see few distinct values; the table doubles as needed and
// keeps its capacity across Resets (the arena is the point), decaying
// only after a sustained occupancy drop — see reset.
const tableMinSlots = 16

// The shrink policy: after tableShrinkAfter consecutive resets whose
// occupancy stayed below capacity/tableShrinkFraction, the arena
// reallocates down to fit the largest of those intervals (with 2x
// headroom). A cardinality spike — a spoofed-source flood is exactly
// the traffic this detector exists to flag — would otherwise pin its
// worst-case arena in every clone forever; decay restores the
// transient-peak memory profile the per-bin maps had, while the
// steady-state reset stays allocation-free (a stable traffic mix never
// trips the fraction).
const (
	tableShrinkFraction = 8
	tableShrinkAfter    = 4
)

// tableSlot mixes a feature value into a slot hash. Feature values are
// heavily structured (sequential ports, adjacent addresses), so linear
// probing needs a finalizer with full avalanche to avoid clustering;
// this is the murmur3 fmix64, the same mixer the histogram's bin hash
// builds on.
func tableSlot(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// occupied reports whether slot i holds a live entry.
func (t *valueTable) occupied(i uint64) bool {
	return t.bits[i>>6]&(1<<(i&63)) != 0
}

// init allocates a fresh arena with capSlots slots (a power of two).
func (t *valueTable) init(capSlots int) {
	words := (capSlots + 63) >> 6
	arena := make([]uint64, 2*capSlots+words)
	t.keys = arena[:capSlots:capSlots]
	t.counts = arena[capSlots : 2*capSlots : 2*capSlots]
	t.bits = arena[2*capSlots:]
	t.mask = uint64(capSlots - 1)
	t.n = 0
}

// slot returns the index where v lives (found) or would be inserted
// (!found). The load-factor bound guarantees an empty slot exists, so
// the probe always terminates.
func (t *valueTable) slot(v uint64) (i uint64, found bool) {
	i = tableSlot(v) & t.mask
	for {
		if !t.occupied(i) {
			return i, false
		}
		if t.keys[i] == v {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

// ensure makes room for extra more entries, growing the arena so the
// load factor stays below 3/4. Growth is the only allocation the table
// ever performs, and reset never undoes it.
func (t *valueTable) ensure(extra int) {
	need := t.n + extra
	if t.keys != nil && 4*need <= 3*len(t.keys) {
		return
	}
	capSlots := tableMinSlots
	for 4*need > 3*capSlots {
		capSlots <<= 1
	}
	if capSlots <= len(t.keys) {
		return
	}
	oldKeys, oldCounts, oldBits := t.keys, t.counts, t.bits
	t.init(capSlots)
	for w, word := range oldBits {
		for ; word != 0; word &= word - 1 {
			i := uint64(w<<6) + uint64(bits.TrailingZeros64(word))
			j, _ := t.slot(oldKeys[i])
			t.keys[j] = oldKeys[i]
			t.counts[j] = oldCounts[i]
			t.bits[j>>6] |= 1 << (j & 63)
			t.n++
		}
	}
}

// add inserts v with count n, or adds n to v's existing count. Like the
// map code it replaces (m[v] += n), adding zero still creates the
// entry — a zero-count value is present, and snapshots carry it.
func (t *valueTable) add(v, n uint64) {
	t.ensure(1)
	i, found := t.slot(v)
	if found {
		t.counts[i] += n
		return
	}
	t.keys[i] = v
	t.counts[i] = n
	t.bits[i>>6] |= 1 << (i & 63)
	t.n++
}

// set inserts v with count n, or overwrites v's existing count — the
// restore primitive (m[v] = n in the map code), so restoring a snapshot
// that repeats a value keeps the last occurrence, exactly as before.
func (t *valueTable) set(v, n uint64) {
	t.ensure(1)
	i, found := t.slot(v)
	if found {
		t.counts[i] = n
		return
	}
	t.keys[i] = v
	t.counts[i] = n
	t.bits[i>>6] |= 1 << (i & 63)
	t.n++
}

// get returns v's count and whether v is present.
func (t *valueTable) get(v uint64) (uint64, bool) {
	if t.n == 0 {
		return 0, false
	}
	i, found := t.slot(v)
	if !found {
		return 0, false
	}
	return t.counts[i], true
}

// reset empties the table, normally keeping the arena: only the
// occupancy bitmap is cleared (stale keys and counts are unreachable
// through it). This is the per-interval recycle — after the first
// interval warms the arena, Reset + the next interval's adds allocate
// nothing. The one exception is sustained shrink (see the
// tableShrinkFraction commentary): when occupancy has stayed far below
// capacity for several consecutive intervals, the arena reallocates
// down to the recent working set so a one-off cardinality spike does
// not pin its peak memory for the process lifetime.
func (t *valueTable) reset() {
	if len(t.keys) > tableMinSlots && t.n < len(t.keys)/tableShrinkFraction {
		if t.lowMax < t.n {
			t.lowMax = t.n
		}
		if t.lowStreak++; t.lowStreak >= tableShrinkAfter {
			capSlots := tableMinSlots
			for need := 2 * t.lowMax; 4*need > 3*capSlots; {
				capSlots <<= 1
			}
			t.lowStreak, t.lowMax = 0, 0
			if capSlots < len(t.keys) {
				t.init(capSlots) // fresh arena: already empty
				return
			}
		}
	} else {
		t.lowStreak, t.lowMax = 0, 0
	}
	for i := range t.bits {
		t.bits[i] = 0
	}
	t.n = 0
}

// forEach calls f for every live (value, count) entry, in slot order.
// Slot order depends on insertion history, so callers that expose the
// result must sort first — see the determinism note on the type.
func (t *valueTable) forEach(f func(v, n uint64)) {
	for w, word := range t.bits {
		for ; word != 0; word &= word - 1 {
			i := uint64(w<<6) + uint64(bits.TrailingZeros64(word))
			f(t.keys[i], t.counts[i])
		}
	}
}

// reserve grows the arena (if needed) to hold total entries within the
// load-factor bound, so a bulk fill of known size — RestoreSnapshot —
// performs at most one allocation and no mid-fill rehash.
func (t *valueTable) reserve(total int) {
	if total > t.n {
		t.ensure(total - t.n)
	}
}
