// Package histogram implements the randomized histograms ("clones") of
// §II-C/D: fixed-width count histograms whose bins are assigned by a
// seeded hash of the feature value, the Kullback–Leibler distance between
// interval distributions, and the iterative identification of the bins
// responsible for a KL spike.
package histogram

import (
	"math"
	"slices"

	"anomalyx/internal/hash"
)

// Histogram counts flows per hash bin for one feature over one
// measurement interval, optionally remembering which feature values fell
// into each bin (needed to map anomalous bins back to feature values —
// §II-D "keeping a map of bins and corresponding feature values").
//
// Value tracking is backed by one arena-recycling valueTable per
// histogram rather than a map per bin: a value's bin is a pure function
// of the value, so the flat value → count table carries the same
// information, and Reset recycles its arena instead of freeing it —
// steady-state intervals add observations without allocating. See
// docs/ARCHITECTURE.md, "Memory layout & allocation discipline".
type Histogram struct {
	fn     hash.Func
	counts []uint64
	total  uint64
	track  bool       // value tracking enabled
	values valueTable // value -> flow count; empty when not tracked
	binPos []int32    // AppendValuesInBins scratch: bin -> list position
	binCnt []int      // AppendValuesInBins scratch: per-position tallies
}

// New creates a histogram with k bins using hash function fn. When
// trackValues is true the histogram records the feature values per bin.
func New(k int, fn hash.Func, trackValues bool) *Histogram {
	if k <= 0 {
		panic("histogram: k must be positive")
	}
	return &Histogram{fn: fn, counts: make([]uint64, k), track: trackValues}
}

// K returns the number of bins.
func (h *Histogram) K() int { return len(h.counts) }

// Total returns the number of observations added since the last Reset.
func (h *Histogram) Total() uint64 { return h.total }

// Bin returns the bin index value v maps to.
func (h *Histogram) Bin(v uint64) int { return h.fn.Bin(v, len(h.counts)) }

// Add records one observation of feature value v.
func (h *Histogram) Add(v uint64) { h.AddN(v, 1) }

// AddN records n observations of feature value v. On a warmed-up
// tracked histogram (second interval onward, similar traffic mix) it
// allocates nothing: the value table's arena survives Reset.
func (h *Histogram) AddN(v uint64, n uint64) {
	h.counts[h.Bin(v)] += n
	h.total += n
	if h.track {
		h.values.add(v, n)
	}
}

// Count returns the count of bin b.
func (h *Histogram) Count(b int) uint64 { return h.counts[b] }

// Counts returns the live backing count slice — a borrowed view, not a
// copy. The caller must not modify it and must not retain it past the
// next Add, Merge, Reset, or RestoreSnapshot: the slice aliases the
// histogram's state, so a retained reference silently mutates under the
// caller (Reset zeroes it in place). It exists for transient, read-only
// hot-path use — computing a KL distance over the current bins without
// an allocation. Any caller that stores the counts (interval rotation,
// snapshots, reports) must use CountsCopy.
func (h *Histogram) Counts() []uint64 { return h.counts }

// CountsCopy returns a freshly allocated copy of the per-bin counts,
// safe to retain and modify independently of the histogram. This is the
// required accessor whenever the counts outlive the current interval —
// see Counts for the borrowed-view alternative and its aliasing hazard.
func (h *Histogram) CountsCopy() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// ValuesInBin returns the distinct feature values observed in bin b during
// the current interval, in ascending order (deterministic regardless of
// table iteration order — detector reports must be byte-identical across
// runs and across the sequential/parallel bank paths). It returns nil
// when value tracking is disabled or the bin saw no values. The result
// is freshly allocated and safe to retain; hot-path callers that query
// many bins should use AppendValuesInBin with a reused scratch buffer.
func (h *Histogram) ValuesInBin(b int) []uint64 {
	return h.AppendValuesInBin(nil, b)
}

// AppendValuesInBin appends bin b's distinct feature values to dst in
// ascending order and returns the extended slice — the allocation-free
// form of ValuesInBin for callers that sweep several bins (the
// detector's anomalous-bin → value mapping reuses one scratch buffer
// across bins and intervals). Only the appended region dst[len(dst):]
// is sorted; existing elements are left untouched. The returned slice
// aliases dst's backing array (like append), so a caller that retains
// the result across calls must copy it — the usual append contract, in
// contrast to ValuesInBin's always-fresh result.
func (h *Histogram) AppendValuesInBin(dst []uint64, b int) []uint64 {
	if !h.track || h.values.n == 0 {
		return dst
	}
	start := len(dst)
	k := len(h.counts)
	h.values.forEach(func(v, _ uint64) {
		if h.fn.Bin(v, k) == b {
			dst = append(dst, v)
		}
	})
	slices.Sort(dst[start:])
	return dst
}

// AppendValuesInBins appends the values of every listed bin to dst —
// grouped in list order, each group ascending, exactly the
// concatenation of AppendValuesInBin over bins — and returns the
// extended slice. It passes over the value table a constant number of
// times regardless of len(bins), where per-bin calls would rescan the
// table per bin; this is the accessor for the detector's anomalous-bin
// sweep, whose bin lists can reach MaxRemoveBins per clone. bins must
// not repeat (the identification's removal sequence never does); a
// repeated bin contributes its values once, at its first position. The
// returned slice aliases dst's backing array — the same contract as
// AppendValuesInBin — and the bin-position marks live in a scratch
// buffer reused across calls, another reason the histogram is not safe
// for concurrent use.
func (h *Histogram) AppendValuesInBins(dst []uint64, bins []int) []uint64 {
	if !h.track || h.values.n == 0 || len(bins) == 0 {
		return dst
	}
	k := len(h.counts)
	if h.binPos == nil {
		h.binPos = make([]int32, k)
	}
	// pos maps bin -> 1 + its position in bins; 0 means unlisted.
	pos := h.binPos
	for i, b := range bins {
		if pos[b] == 0 {
			pos[b] = int32(i + 1)
		}
	}
	// Counting sort by list position: tally, prefix-sum, place, then
	// sort each bin's range by plain value compare.
	if cap(h.binCnt) < len(bins)+1 {
		h.binCnt = make([]int, len(bins)+1)
	}
	cnt := h.binCnt[:len(bins)+1]
	for i := range cnt {
		cnt[i] = 0
	}
	h.values.forEach(func(v, _ uint64) {
		if p := pos[h.fn.Bin(v, k)]; p != 0 {
			cnt[p]++
		}
	})
	total := 0
	for i := 1; i < len(cnt); i++ {
		c := cnt[i]
		cnt[i] = total
		total += c
	}
	start := len(dst)
	dst = slices.Grow(dst, total)[:start+total]
	h.values.forEach(func(v, _ uint64) {
		if p := pos[h.fn.Bin(v, k)]; p != 0 {
			dst[start+cnt[p]] = v
			cnt[p]++
		}
	})
	prev := 0
	for i := 1; i < len(cnt); i++ { // cnt[i] is now position i's end
		slices.Sort(dst[start+prev : start+cnt[i]])
		prev = cnt[i]
	}
	for _, b := range bins { // clear the marks for the next call
		pos[b] = 0
	}
	return dst
}

// Merge folds other's current-interval observations into h: per-bin
// counts add and tracked value maps union (summing per-value counts).
// Histograms are exact mergeable sketches — when both were built with
// the same hash function, the merged state is identical to having added
// every observation to h directly, which is what makes cross-shard
// report merges byte-identical to an unsharded run. Merge panics when
// the bin counts or hash functions differ, or when exactly one side
// tracks values (the merged value map would silently lose observations).
// other is left unchanged.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.counts) != len(other.counts) {
		panic("histogram: Merge over different bin counts")
	}
	if h.fn != other.fn {
		panic("histogram: Merge over different hash functions")
	}
	if h.track != other.track {
		panic("histogram: Merge with mismatched value tracking")
	}
	for b, n := range other.counts {
		h.counts[b] += n
	}
	h.total += other.total
	if !h.track {
		return
	}
	other.values.forEach(func(v, n uint64) { h.values.add(v, n) })
}

// Reset clears all counts and tracked values for the next interval. The
// value table's arena is recycled, not freed: the next interval's adds
// reuse its capacity, so steady-state ingestion does not allocate.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	if h.track {
		h.values.reset()
	}
}

// smoothingAlpha is the Laplace pseudo-count used when normalizing bin
// counts into distributions. The paper does not specify its zero-bin
// handling; additive smoothing keeps D(p||q) finite when a bin is empty
// in the reference interval — exactly the "new traffic appears in a bin"
// case an anomaly produces — while preserving D(p||p) = 0.
const smoothingAlpha = 0.5

// KL returns the Kullback–Leibler distance D(p || q) between two per-bin
// count vectors of equal length, after Laplace smoothing:
//
//	D(p||q) = Σ_i p_i log2(p_i / q_i)
//
// Coinciding distributions give 0; deviations give positive values
// (§II-C). The logarithm is base 2, so the distance is in bits.
func KL(p, q []uint64) float64 {
	if len(p) != len(q) {
		panic("histogram: KL over different bin counts")
	}
	k := float64(len(p))
	var np, nq float64
	for i := range p {
		np += float64(p[i])
		nq += float64(q[i])
	}
	np += smoothingAlpha * k
	nq += smoothingAlpha * k
	var d float64
	for i := range p {
		pi := (float64(p[i]) + smoothingAlpha) / np
		qi := (float64(q[i]) + smoothingAlpha) / nq
		d += pi * math.Log2(pi/qi)
	}
	if d < 0 {
		d = 0 // numerical floor; KL is non-negative
	}
	return d
}

// Distance returns D(h || ref) for two histograms of equal bin count.
func Distance(h, ref *Histogram) float64 { return KL(h.counts, ref.counts) }
