// Package histogram implements the randomized histograms ("clones") of
// §II-C/D: fixed-width count histograms whose bins are assigned by a
// seeded hash of the feature value, the Kullback–Leibler distance between
// interval distributions, and the iterative identification of the bins
// responsible for a KL spike.
package histogram

import (
	"math"
	"sort"

	"anomalyx/internal/hash"
)

// Histogram counts flows per hash bin for one feature over one
// measurement interval, optionally remembering which feature values fell
// into each bin (needed to map anomalous bins back to feature values —
// §II-D "keeping a map of bins and corresponding feature values").
type Histogram struct {
	fn     hash.Func
	counts []uint64
	total  uint64
	values []map[uint64]uint64 // per bin: value -> flow count; nil when not tracked
}

// New creates a histogram with k bins using hash function fn. When
// trackValues is true the histogram records the feature values per bin.
func New(k int, fn hash.Func, trackValues bool) *Histogram {
	if k <= 0 {
		panic("histogram: k must be positive")
	}
	h := &Histogram{fn: fn, counts: make([]uint64, k)}
	if trackValues {
		h.values = make([]map[uint64]uint64, k)
	}
	return h
}

// K returns the number of bins.
func (h *Histogram) K() int { return len(h.counts) }

// Total returns the number of observations added since the last Reset.
func (h *Histogram) Total() uint64 { return h.total }

// Bin returns the bin index value v maps to.
func (h *Histogram) Bin(v uint64) int { return h.fn.Bin(v, len(h.counts)) }

// Add records one observation of feature value v.
func (h *Histogram) Add(v uint64) { h.AddN(v, 1) }

// AddN records n observations of feature value v.
func (h *Histogram) AddN(v uint64, n uint64) {
	b := h.Bin(v)
	h.counts[b] += n
	h.total += n
	if h.values != nil {
		m := h.values[b]
		if m == nil {
			m = make(map[uint64]uint64)
			h.values[b] = m
		}
		m[v] += n
	}
}

// Count returns the count of bin b.
func (h *Histogram) Count(b int) uint64 { return h.counts[b] }

// Counts returns the live backing count slice — a borrowed view, not a
// copy. The caller must not modify it and must not retain it past the
// next Add, Merge, Reset, or RestoreSnapshot: the slice aliases the
// histogram's state, so a retained reference silently mutates under the
// caller (Reset zeroes it in place). It exists for transient, read-only
// hot-path use — computing a KL distance over the current bins without
// an allocation. Any caller that stores the counts (interval rotation,
// snapshots, reports) must use CountsCopy.
func (h *Histogram) Counts() []uint64 { return h.counts }

// CountsCopy returns a freshly allocated copy of the per-bin counts,
// safe to retain and modify independently of the histogram. This is the
// required accessor whenever the counts outlive the current interval —
// see Counts for the borrowed-view alternative and its aliasing hazard.
func (h *Histogram) CountsCopy() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// ValuesInBin returns the distinct feature values observed in bin b during
// the current interval, in ascending order (deterministic regardless of
// map iteration order — detector reports must be byte-identical across
// runs and across the sequential/parallel bank paths). It returns nil
// when value tracking is disabled.
func (h *Histogram) ValuesInBin(b int) []uint64 {
	if h.values == nil || h.values[b] == nil {
		return nil
	}
	out := make([]uint64, 0, len(h.values[b]))
	for v := range h.values[b] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds other's current-interval observations into h: per-bin
// counts add and tracked value maps union (summing per-value counts).
// Histograms are exact mergeable sketches — when both were built with
// the same hash function, the merged state is identical to having added
// every observation to h directly, which is what makes cross-shard
// report merges byte-identical to an unsharded run. Merge panics when
// the bin counts or hash functions differ, or when exactly one side
// tracks values (the merged value map would silently lose observations).
// other is left unchanged.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.counts) != len(other.counts) {
		panic("histogram: Merge over different bin counts")
	}
	if h.fn != other.fn {
		panic("histogram: Merge over different hash functions")
	}
	if (h.values == nil) != (other.values == nil) {
		panic("histogram: Merge with mismatched value tracking")
	}
	for b, n := range other.counts {
		h.counts[b] += n
	}
	h.total += other.total
	if h.values == nil {
		return
	}
	for b, src := range other.values {
		if src == nil {
			continue
		}
		dst := h.values[b]
		if dst == nil {
			dst = make(map[uint64]uint64, len(src))
			h.values[b] = dst
		}
		for v, n := range src {
			dst[v] += n
		}
	}
}

// Reset clears all counts and value maps for the next interval.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	if h.values != nil {
		for i := range h.values {
			h.values[i] = nil
		}
	}
}

// smoothingAlpha is the Laplace pseudo-count used when normalizing bin
// counts into distributions. The paper does not specify its zero-bin
// handling; additive smoothing keeps D(p||q) finite when a bin is empty
// in the reference interval — exactly the "new traffic appears in a bin"
// case an anomaly produces — while preserving D(p||p) = 0.
const smoothingAlpha = 0.5

// KL returns the Kullback–Leibler distance D(p || q) between two per-bin
// count vectors of equal length, after Laplace smoothing:
//
//	D(p||q) = Σ_i p_i log2(p_i / q_i)
//
// Coinciding distributions give 0; deviations give positive values
// (§II-C). The logarithm is base 2, so the distance is in bits.
func KL(p, q []uint64) float64 {
	if len(p) != len(q) {
		panic("histogram: KL over different bin counts")
	}
	k := float64(len(p))
	var np, nq float64
	for i := range p {
		np += float64(p[i])
		nq += float64(q[i])
	}
	np += smoothingAlpha * k
	nq += smoothingAlpha * k
	var d float64
	for i := range p {
		pi := (float64(p[i]) + smoothingAlpha) / np
		qi := (float64(q[i]) + smoothingAlpha) / nq
		d += pi * math.Log2(pi/qi)
	}
	if d < 0 {
		d = 0 // numerical floor; KL is non-negative
	}
	return d
}

// Distance returns D(h || ref) for two histograms of equal bin count.
func Distance(h, ref *Histogram) float64 { return KL(h.counts, ref.counts) }
