package histogram

import (
	"reflect"
	"testing"

	"anomalyx/internal/hash"
)

// TestSnapshotRestoreRoundTrip: a restored histogram is indistinguishable
// from the original — counts, total, tracked values, and subsequent
// behaviour all match — and the snapshot shares no memory with either.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	fn := hash.New(7)
	h := New(16, fn, true)
	for v := uint64(0); v < 300; v++ {
		h.AddN(v%37, v%5+1)
	}
	s := h.Snapshot()

	// The snapshot must be a private copy: mutating the histogram must
	// not change it (the CountsCopy contract).
	before := append([]uint64(nil), s.Counts...)
	h.Add(1)
	if !reflect.DeepEqual(s.Counts, before) {
		t.Fatal("snapshot counts alias the live histogram")
	}
	h.RestoreSnapshot(s) // undo the extra Add

	r := New(16, fn, true)
	if err := r.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), s) {
		t.Fatal("restored histogram re-snapshots differently")
	}
	if r.Total() != h.Total() {
		t.Fatalf("restored total %d != %d", r.Total(), h.Total())
	}
	for b := 0; b < 16; b++ {
		if r.Count(b) != h.Count(b) {
			t.Fatalf("bin %d: restored %d != %d", b, r.Count(b), h.Count(b))
		}
		if !reflect.DeepEqual(r.ValuesInBin(b), h.ValuesInBin(b)) {
			t.Fatalf("bin %d: restored values differ", b)
		}
	}
	// Subsequent adds agree too.
	h.AddN(99, 3)
	r.AddN(99, 3)
	if !reflect.DeepEqual(r.Snapshot(), h.Snapshot()) {
		t.Fatal("histograms diverge after post-restore adds")
	}
}

// TestSnapshotCanonicalOrder: tracked values appear sorted ascending
// per bin, regardless of insertion order.
func TestSnapshotCanonicalOrder(t *testing.T) {
	fn := hash.New(1)
	a := New(4, fn, true)
	b := New(4, fn, true)
	vals := []uint64{9, 2, 700, 14, 3, 3, 9}
	for _, v := range vals {
		a.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Add(vals[i])
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("equal observation multisets snapshot differently")
	}
	for bin, vs := range sa.Values {
		for i := 1; i < len(vs); i++ {
			if vs[i-1].Value >= vs[i].Value {
				t.Fatalf("bin %d values not strictly ascending: %v", bin, vs)
			}
		}
	}
}

// TestRestoreSnapshotRejectsShape: bin-count and tracking-mode
// mismatches error instead of silently corrupting state.
func TestRestoreSnapshotRejectsShape(t *testing.T) {
	fn := hash.New(2)
	tracked := New(8, fn, true)
	tracked.Add(5)
	s := tracked.Snapshot()

	if err := New(16, fn, true).RestoreSnapshot(s); err == nil {
		t.Error("restore across bin counts accepted")
	}
	if err := New(8, fn, false).RestoreSnapshot(s); err == nil {
		t.Error("restore of a tracked snapshot into an untracked histogram accepted")
	}
	untracked := New(8, fn, false)
	untracked.Add(5)
	if err := tracked.RestoreSnapshot(untracked.Snapshot()); err == nil {
		t.Error("restore of an untracked snapshot into a tracked histogram accepted")
	}
	bad := s
	bad.Values = bad.Values[:4]
	if err := New(8, fn, true).RestoreSnapshot(bad); err == nil {
		t.Error("restore with truncated value bins accepted")
	}
}

// TestRestoreSnapshotOverwrites: restoring discards whatever the
// current interval held, including stale value maps.
func TestRestoreSnapshotOverwrites(t *testing.T) {
	fn := hash.New(3)
	h := New(8, fn, true)
	for v := uint64(0); v < 64; v++ {
		h.Add(v)
	}
	fresh := New(8, fn, true)
	fresh.Add(1)
	if err := h.RestoreSnapshot(fresh.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Snapshot(), fresh.Snapshot()) {
		t.Fatal("restore left stale state behind")
	}
}
