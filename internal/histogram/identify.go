package histogram

// Identification is the outcome of the iterative anomalous-bin search of
// §II-C / Fig. 5.
type Identification struct {
	// Bins are the identified anomalous bins, in removal order (largest
	// absolute count difference first).
	Bins []int
	// KLSeries records the KL distance before any removal (element 0)
	// and after each successive bin removal; it is the series Fig. 5
	// plots. len(KLSeries) == len(Bins)+1.
	KLSeries []float64
	// Converged reports whether the cleaned histogram stopped alarming
	// before maxRounds bins were removed.
	Converged bool
}

// IdentifyAnomalousBins simulates the removal of suspicious flows until
// the histogram no longer generates an alert (§II-C): in each round the
// bin with the largest absolute count difference between the current and
// reference histograms is aligned with its reference value, and the KL
// distance is recomputed. The alarm condition matches the detector's:
// a spike in the first difference of the KL time series, i.e.
//
//	KL(cleaned || ref) - klPrev > threshold
//
// where klPrev is the KL distance observed at the previous interval.
// maxRounds bounds the number of removed bins (≤ 0 means no bound).
func IdentifyAnomalousBins(cur, ref []uint64, klPrev, threshold float64, maxRounds int) Identification {
	return IdentifyAnomalousBinsMetric(cur, ref, klPrev, threshold, maxRounds, KL)
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
