package histogram

import (
	"math"
	"testing"
)

func TestEntropyKnownValues(t *testing.T) {
	// Uniform over 4 bins: H = 2 bits.
	if got := Entropy([]uint64{5, 5, 5, 5}); math.Abs(got-2) > 1e-12 {
		t.Errorf("uniform H = %v, want 2", got)
	}
	// All mass in one bin: H = 0.
	if got := Entropy([]uint64{0, 100, 0}); got != 0 {
		t.Errorf("degenerate H = %v, want 0", got)
	}
	// Empty histogram: 0.
	if got := Entropy([]uint64{0, 0}); got != 0 {
		t.Errorf("empty H = %v", got)
	}
	// Fair coin: 1 bit.
	if got := Entropy([]uint64{7, 7}); math.Abs(got-1) > 1e-12 {
		t.Errorf("coin H = %v, want 1", got)
	}
}

func TestEntropyBounds(t *testing.T) {
	// 0 <= H <= log2(k).
	counts := []uint64{1, 9, 22, 5, 0, 13, 2, 8}
	h := Entropy(counts)
	if h < 0 || h > 3 {
		t.Errorf("H = %v outside [0, 3]", h)
	}
}

func TestEntropyDistance(t *testing.T) {
	uniform := []uint64{10, 10, 10, 10}
	spiked := []uint64{1000, 1, 1, 1}
	if d := EntropyDistance(uniform, uniform); d != 0 {
		t.Errorf("identical distance = %v", d)
	}
	d := EntropyDistance(spiked, uniform)
	if d <= 0 {
		t.Errorf("concentration distance = %v", d)
	}
	// Symmetric, unlike KL.
	if EntropyDistance(uniform, spiked) != d {
		t.Error("entropy distance should be symmetric")
	}
}

func TestEntropyDetectsDispersionAndConcentration(t *testing.T) {
	base := []uint64{100, 100, 100, 100, 0, 0, 0, 0}
	dispersed := []uint64{50, 50, 50, 50, 50, 50, 50, 50}
	concentrated := []uint64{400, 0, 0, 0, 0, 0, 0, 0}
	if EntropyDistance(dispersed, base) <= 0 {
		t.Error("dispersion not detected")
	}
	if EntropyDistance(concentrated, base) <= 0 {
		t.Error("concentration not detected")
	}
}

func TestIdentifyMetricEntropy(t *testing.T) {
	k := 32
	ref := make([]uint64, k)
	cur := make([]uint64, k)
	for i := 0; i < k; i++ {
		ref[i] = 100
		cur[i] = 100
	}
	cur[9] = 8000 // concentration anomaly

	id := IdentifyAnomalousBinsMetric(cur, ref, 0, 0.01, 0, EntropyDistance)
	if !id.Converged {
		t.Fatal("did not converge")
	}
	if len(id.Bins) != 1 || id.Bins[0] != 9 {
		t.Fatalf("bins = %v, want [9]", id.Bins)
	}
}

func TestIdentifyDelegatesToKL(t *testing.T) {
	ref := []uint64{100, 100, 100, 100}
	cur := []uint64{100, 100, 100, 5000}
	a := IdentifyAnomalousBins(cur, ref, 0, 0.01, 0)
	b := IdentifyAnomalousBinsMetric(cur, ref, 0, 0.01, 0, KL)
	if len(a.Bins) != len(b.Bins) || a.Converged != b.Converged {
		t.Error("wrapper disagrees with metric version")
	}
	for i := range a.KLSeries {
		if a.KLSeries[i] != b.KLSeries[i] {
			t.Error("series differ")
		}
	}
}
