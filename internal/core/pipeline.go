// Package core assembles the paper's end-to-end anomaly-extraction
// pipeline (Fig. 3): histogram-based detectors monitor per-feature flow
// distributions online; on an alarm, the union of the detectors' voted
// meta-data prefilters the interval's flows to a suspicious set, and
// frequent item-set mining summarizes the suspicious set into the maximal
// item-sets an operator inspects.
//
// Determinism: a pipeline's reports are byte-identical for the same
// input regardless of Workers, sharding, or agent/collector topology —
// per-shard suspicious sets concatenate in shard order, report fields
// are sorted at the boundary, and mining is order-insensitive (see
// docs/ARCHITECTURE.md "The determinism contract").
package core

import (
	"fmt"
	"sync"

	"anomalyx/internal/cost"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/prefilter"
)

// Config carries the pipeline parameters (Table III).
type Config struct {
	// Features lists the monitored traffic features (default: the
	// paper's five — srcIP, dstIP, srcPort, dstPort, packets).
	Features []flow.FeatureKind
	// Detector is the per-feature detector template (bins k, clones n,
	// votes l, threshold multiplier alpha, training window).
	Detector detector.Config
	// MinSupport is the absolute Apriori minimum support s. When 0,
	// RelativeSupport applies.
	MinSupport int
	// RelativeSupport expresses s as a fraction of the suspicious-flow
	// count; the paper's guidance is 1–10% of the input flows (§II-E).
	// Default 0.05.
	RelativeSupport float64
	// Miner is the frequent item-set algorithm (default: the modified
	// Apriori of §II-B).
	Miner mining.Miner
	// Prefilter selects the suspicious flows from the meta-data
	// (default: union, the paper's choice).
	Prefilter prefilter.Strategy
	// KeepSuspicious retains the suspicious flows in each report (for
	// forensics and tests; costs memory on big intervals).
	KeepSuspicious bool
	// QuantizeSizes buckets the packets and bytes items to powers of two
	// before mining (§V's quantitative-features extension): flow-size
	// anomalies with slightly varying sizes then aggregate into one
	// item-set instead of fragmenting below the minimum support.
	QuantizeSizes bool
	// Workers bounds the detector bank's worker pool for ObserveBatch
	// and EndInterval, and the chunked parallel prefilter scan of the
	// extraction stage. 0 means GOMAXPROCS — resolved when the bank's
	// pool is created at construction, and at call time for the
	// prefilter scan; 1 forces the sequential path. The parallel paths
	// produce reports byte-identical to the sequential ones.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.RelativeSupport == 0 {
		c.RelativeSupport = 0.05
	}
	if c.Miner == nil {
		c.Miner = apriori.New()
	}
	if c.Prefilter == nil {
		c.Prefilter = prefilter.Union{}
	}
	return c
}

// Report is the outcome of one measurement interval.
type Report struct {
	Interval int
	// Detection is the raw detector-bank outcome, including per-clone
	// KL distances and the voted meta-data.
	Detection detector.BankResult
	// Alarm mirrors Detection.Alarm.
	Alarm bool
	// TotalFlows is the interval's flow count; SuspiciousFlows the
	// prefiltered count (0 unless Alarm).
	TotalFlows      int
	SuspiciousFlows int
	// MinSupport is the absolute support used for mining this interval.
	MinSupport int
	// Mining holds the full mining result; ItemSets the maximal
	// item-sets (the operator-facing summary). Both nil/empty unless
	// Alarm.
	Mining   *mining.Result
	ItemSets []itemset.Set
	// CostReduction is R = TotalFlows / len(ItemSets) (§III-F); +Inf
	// when mining returned nothing, 0 when there was no alarm.
	CostReduction float64
	// Suspicious holds the prefiltered flows when KeepSuspicious is set.
	Suspicious []flow.Record
	// Partial lists, sorted ascending, the agent IDs a distributed
	// collector closed this interval without (their connections were
	// down and their frames never arrived). Nil for local runs and for
	// distributed intervals that merged every agent — the byte-identical
	// determinism guarantee applies exactly to reports with a nil
	// Partial.
	Partial []int
}

// Pipeline is the online anomaly-extraction engine. Feed flows with
// Observe or ObserveBatch and close intervals with EndInterval. It is
// safe for concurrent use: observes may run from multiple goroutines and
// EndInterval linearizes the interval boundary, though callers that need
// a well-defined flow-to-interval assignment must still serialize
// observes against interval closes themselves (the engine package does).
type Pipeline struct {
	cfg  Config
	bank *detector.Bank

	mu sync.Mutex
	// buffer holds the open interval's flows in columnar (SoA) form; see
	// flow.Buffer. Rows append in observation order, and every consumer —
	// prefilter scan, snapshot, wire encode — walks it column-wise.
	buffer flow.Buffer

	// selfGroup is the single-element group BeginClose drains, built once
	// so the pipelined hot path allocates nothing per close.
	selfGroup []*Pipeline

	// spares is the freelist of reset interval states (clone histograms +
	// flow buffers) cycled through pipelined closes; spareMu guards it
	// because Finish recycles from the close worker while BeginClose pops
	// from the ingest goroutine.
	spareMu sync.Mutex
	spares  []intervalState
}

// New builds a pipeline from cfg.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if cfg.MinSupport < 0 {
		return nil, fmt.Errorf("core: negative minimum support %d", cfg.MinSupport)
	}
	if cfg.MinSupport == 0 && (cfg.RelativeSupport <= 0 || cfg.RelativeSupport > 1) {
		return nil, fmt.Errorf("core: relative support %v out of (0,1]", cfg.RelativeSupport)
	}
	bank, err := detector.NewBank(detector.BankConfig{
		Features: cfg.Features,
		Template: cfg.Detector,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{cfg: cfg, bank: bank}
	p.selfGroup = []*Pipeline{p}
	return p, nil
}

// Config returns the pipeline's effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Observe feeds one flow of the current interval.
func (p *Pipeline) Observe(rec flow.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buffer.Append(rec)
	p.bank.Observe(&rec)
}

// ObserveBatch feeds a batch of flows of the current interval. It
// amortizes per-record overhead and fans the detector-bank updates out
// over the configured worker pool; the resulting detector state is
// identical to observing each record with Observe.
func (p *Pipeline) ObserveBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buffer.AppendRecords(recs)
	p.bank.ObserveBatch(recs)
}

// EndInterval closes the current interval: runs detection and, on an
// alarm, extraction (prefilter + mining). The flow buffer is cleared.
func (p *Pipeline) EndInterval() (*Report, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	det := p.bank.EndInterval()
	rep := &Report{
		Interval:   det.Interval,
		Detection:  det,
		Alarm:      det.Alarm,
		TotalFlows: p.buffer.Len(),
	}
	if det.Alarm && det.Meta.Count() > 0 {
		if err := p.extract(rep, det.Meta); err != nil {
			return nil, err
		}
	}
	p.buffer.Reset()
	return rep, nil
}

// Absorb folds other's in-progress interval into p: other's buffered
// flows move to the end of p's flow buffer and other's detector-bank
// clone histograms merge additively into p's (see detector.Bank.Absorb),
// leaving other empty and ready for the next interval. Both pipelines
// must share the detector configuration. This is the cross-shard merge:
// because histogram clones with equal seeds are exact mergeable
// sketches, a primary pipeline that absorbs N-1 siblings and then runs
// EndInterval produces a report identical to one pipeline having
// observed the whole stream — only the flow-buffer order differs (p's
// records first, then other's), which no report field other than the
// KeepSuspicious forensic slice depends on.
func (p *Pipeline) Absorb(other *Pipeline) error {
	if other == p {
		return fmt.Errorf("core: pipeline cannot absorb itself")
	}
	// Lock in caller order; absorbs fan in toward one primary (the shard
	// merge), so no cycle can form.
	p.mu.Lock()
	defer p.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	if err := p.bank.Absorb(other.bank); err != nil {
		return err
	}
	p.buffer.AppendBuffer(&other.buffer)
	other.buffer.Reset()
	return nil
}

// Close releases the detector bank's worker pool. It is idempotent. The
// pipeline must not observe flows or close intervals after Close.
func (p *Pipeline) Close() { p.bank.Close() }

// ProcessInterval is the batch convenience: ObserveBatch all recs, then
// EndInterval.
func (p *Pipeline) ProcessInterval(recs []flow.Record) (*Report, error) {
	p.ObserveBatch(recs)
	return p.EndInterval()
}

// extract runs prefiltering and mining for an alarming interval. The
// prefilter scan fans out over cfg.Workers chunks; the chunked output is
// concatenated in range order, so the report is byte-identical to a
// sequential scan.
func (p *Pipeline) extract(rep *Report, meta detector.MetaData) error {
	suspicious := prefilter.FilterBufferParallel(p.cfg.Prefilter, meta, &p.buffer, p.cfg.Workers)
	return finishExtract(p.cfg, rep, suspicious)
}

// finishExtract populates rep's extraction fields from an
// already-prefiltered suspicious set: counts, resolved minimum support,
// mining result, maximal item-sets, and cost reduction. Every extraction
// entry point — the online interval close, the offline post-mortem, and
// the distributed sharded close — funnels through here so their reports
// stay field-for-field comparable.
func finishExtract(cfg Config, rep *Report, suspicious []flow.Record) error {
	rep.SuspiciousFlows = len(suspicious)
	if cfg.KeepSuspicious {
		rep.Suspicious = suspicious
	}
	if len(suspicious) == 0 {
		rep.CostReduction = cost.Reduction(rep.TotalFlows, 0)
		return nil
	}
	minsup := supportFor(cfg, len(suspicious))
	rep.MinSupport = minsup

	txs := itemset.FromFlows(suspicious)
	if cfg.QuantizeSizes {
		txs = itemset.QuantizeAll(txs, itemset.SizeKinds...)
	}
	res, err := cfg.Miner.Mine(txs, minsup)
	if err != nil {
		return fmt.Errorf("core: mining interval %d: %w", rep.Interval, err)
	}
	rep.Mining = res
	rep.ItemSets = res.Maximal
	rep.CostReduction = cost.Reduction(rep.TotalFlows, len(rep.ItemSets))
	return nil
}

// supportFor resolves the absolute minimum support for a suspicious-flow
// count.
func supportFor(cfg Config, suspicious int) int {
	if cfg.MinSupport > 0 {
		return cfg.MinSupport
	}
	s := int(cfg.RelativeSupport * float64(suspicious))
	if s < 1 {
		s = 1
	}
	return s
}

// ExtractOffline runs the extraction stage alone — the post-mortem mode
// of §II: given an interval's flows and the alarm meta-data an operator
// wants to investigate, prefilter and mine without touching detector
// state. Like the online path it fans the prefilter scan out over
// cfg.Workers chunks with output identical to a sequential scan.
func ExtractOffline(cfg Config, recs []flow.Record, meta detector.MetaData) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{TotalFlows: len(recs), Alarm: true}
	suspicious := prefilter.FilterParallel(cfg.Prefilter, meta, recs, cfg.Workers)
	if err := finishExtract(cfg, rep, suspicious); err != nil {
		return nil, err
	}
	return rep, nil
}

// EndIntervalGroup closes one measurement interval in lockstep across a
// group of shard pipelines, with the extraction stage distributed over
// the shards instead of funneled through one merged buffer:
//
//  1. the primary (first) pipeline absorbs every sibling's detector-bank
//     clone histograms (exact mergeable sketches — see Absorb) and
//     closes detection over the merged state;
//  2. on an alarm, every shard prefilters its own local flow buffer
//     concurrently (one goroutine per shard, each fanning further out
//     over its pipeline's Workers), and the per-shard suspicious sets
//     concatenate in shard order — the same flows the former
//     merge-then-scan produced, in the same order, found by one parallel
//     pass over buffers that never leave their shard;
//  3. the merged suspicious set is mined once.
//
// All buffers are cleared before returning. Every pipeline must share
// the detector configuration; the pipelines must not observe flows
// concurrently with the group close (the shard package serializes this).
// The report is byte-identical to a single pipeline having observed the
// whole stream — only the KeepSuspicious forensic slice regroups by
// shard.
func EndIntervalGroup(group []*Pipeline) (*Report, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("core: empty pipeline group")
	}
	if len(group) == 1 {
		return group[0].EndInterval()
	}
	// Reject duplicates before taking any lock: locking the same
	// pipeline twice would self-deadlock instead of erroring.
	for i := range group {
		for j := i + 1; j < len(group); j++ {
			if group[i] == group[j] {
				return nil, fmt.Errorf("core: duplicate pipeline in group")
			}
		}
	}
	for _, p := range group {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	primary := group[0]
	siblings := make([]*detector.Bank, len(group)-1)
	for i, sh := range group[1:] {
		siblings[i] = sh.bank
	}
	// Parallel fold (one task per detector) — byte-identical to absorbing
	// each shard in turn, without serializing the merge on this goroutine.
	if err := primary.bank.AbsorbGroup(siblings); err != nil {
		return nil, err
	}
	det := primary.bank.EndInterval()
	total := 0
	for _, sh := range group {
		total += sh.buffer.Len()
	}
	rep := &Report{
		Interval:   det.Interval,
		Detection:  det,
		Alarm:      det.Alarm,
		TotalFlows: total,
	}
	if det.Alarm && det.Meta.Count() > 0 {
		parts := make([][]flow.Record, len(group))
		var wg sync.WaitGroup
		for i, sh := range group {
			if sh.buffer.Len() == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, sh *Pipeline) {
				defer wg.Done()
				parts[i] = prefilter.FilterBufferParallel(sh.cfg.Prefilter, det.Meta, &sh.buffer, sh.cfg.Workers)
			}(i, sh)
		}
		wg.Wait()
		n := 0
		for _, part := range parts {
			n += len(part)
		}
		// Keep the no-match case nil, as the sequential Filter returns it.
		var suspicious []flow.Record
		if n > 0 {
			suspicious = make([]flow.Record, 0, n)
			for _, part := range parts {
				suspicious = append(suspicious, part...)
			}
		}
		if err := finishExtract(primary.cfg, rep, suspicious); err != nil {
			return nil, err
		}
	}
	for _, sh := range group {
		sh.buffer.Reset()
	}
	return rep, nil
}
