// Package core assembles the paper's end-to-end anomaly-extraction
// pipeline (Fig. 3): histogram-based detectors monitor per-feature flow
// distributions online; on an alarm, the union of the detectors' voted
// meta-data prefilters the interval's flows to a suspicious set, and
// frequent item-set mining summarizes the suspicious set into the maximal
// item-sets an operator inspects.
package core

import (
	"fmt"
	"sync"

	"anomalyx/internal/cost"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
	"anomalyx/internal/mining/apriori"
	"anomalyx/internal/prefilter"
)

// Config carries the pipeline parameters (Table III).
type Config struct {
	// Features lists the monitored traffic features (default: the
	// paper's five — srcIP, dstIP, srcPort, dstPort, packets).
	Features []flow.FeatureKind
	// Detector is the per-feature detector template (bins k, clones n,
	// votes l, threshold multiplier alpha, training window).
	Detector detector.Config
	// MinSupport is the absolute Apriori minimum support s. When 0,
	// RelativeSupport applies.
	MinSupport int
	// RelativeSupport expresses s as a fraction of the suspicious-flow
	// count; the paper's guidance is 1–10% of the input flows (§II-E).
	// Default 0.05.
	RelativeSupport float64
	// Miner is the frequent item-set algorithm (default: the modified
	// Apriori of §II-B).
	Miner mining.Miner
	// Prefilter selects the suspicious flows from the meta-data
	// (default: union, the paper's choice).
	Prefilter prefilter.Strategy
	// KeepSuspicious retains the suspicious flows in each report (for
	// forensics and tests; costs memory on big intervals).
	KeepSuspicious bool
	// QuantizeSizes buckets the packets and bytes items to powers of two
	// before mining (§V's quantitative-features extension): flow-size
	// anomalies with slightly varying sizes then aggregate into one
	// item-set instead of fragmenting below the minimum support.
	QuantizeSizes bool
	// Workers bounds the detector bank's worker pool for ObserveBatch
	// and EndInterval. 0 means GOMAXPROCS (tracking -cpu sweeps at call
	// time); 1 forces the sequential path.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.RelativeSupport == 0 {
		c.RelativeSupport = 0.05
	}
	if c.Miner == nil {
		c.Miner = apriori.New()
	}
	if c.Prefilter == nil {
		c.Prefilter = prefilter.Union{}
	}
	return c
}

// Report is the outcome of one measurement interval.
type Report struct {
	Interval int
	// Detection is the raw detector-bank outcome, including per-clone
	// KL distances and the voted meta-data.
	Detection detector.BankResult
	// Alarm mirrors Detection.Alarm.
	Alarm bool
	// TotalFlows is the interval's flow count; SuspiciousFlows the
	// prefiltered count (0 unless Alarm).
	TotalFlows      int
	SuspiciousFlows int
	// MinSupport is the absolute support used for mining this interval.
	MinSupport int
	// Mining holds the full mining result; ItemSets the maximal
	// item-sets (the operator-facing summary). Both nil/empty unless
	// Alarm.
	Mining   *mining.Result
	ItemSets []itemset.Set
	// CostReduction is R = TotalFlows / len(ItemSets) (§III-F); +Inf
	// when mining returned nothing, 0 when there was no alarm.
	CostReduction float64
	// Suspicious holds the prefiltered flows when KeepSuspicious is set.
	Suspicious []flow.Record
}

// Pipeline is the online anomaly-extraction engine. Feed flows with
// Observe or ObserveBatch and close intervals with EndInterval. It is
// safe for concurrent use: observes may run from multiple goroutines and
// EndInterval linearizes the interval boundary, though callers that need
// a well-defined flow-to-interval assignment must still serialize
// observes against interval closes themselves (the engine package does).
type Pipeline struct {
	cfg  Config
	bank *detector.Bank

	mu     sync.Mutex
	buffer []flow.Record
}

// New builds a pipeline from cfg.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if cfg.MinSupport < 0 {
		return nil, fmt.Errorf("core: negative minimum support %d", cfg.MinSupport)
	}
	if cfg.MinSupport == 0 && (cfg.RelativeSupport <= 0 || cfg.RelativeSupport > 1) {
		return nil, fmt.Errorf("core: relative support %v out of (0,1]", cfg.RelativeSupport)
	}
	bank, err := detector.NewBank(detector.BankConfig{
		Features: cfg.Features,
		Template: cfg.Detector,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg, bank: bank}, nil
}

// Config returns the pipeline's effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Observe feeds one flow of the current interval.
func (p *Pipeline) Observe(rec flow.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buffer = append(p.buffer, rec)
	p.bank.Observe(&rec)
}

// ObserveBatch feeds a batch of flows of the current interval. It
// amortizes per-record overhead and fans the detector-bank updates out
// over the configured worker pool; the resulting detector state is
// identical to observing each record with Observe.
func (p *Pipeline) ObserveBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buffer = append(p.buffer, recs...)
	p.bank.ObserveBatch(recs)
}

// EndInterval closes the current interval: runs detection and, on an
// alarm, extraction (prefilter + mining). The flow buffer is cleared.
func (p *Pipeline) EndInterval() (*Report, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	det := p.bank.EndInterval()
	rep := &Report{
		Interval:   det.Interval,
		Detection:  det,
		Alarm:      det.Alarm,
		TotalFlows: len(p.buffer),
	}
	if det.Alarm && det.Meta.Count() > 0 {
		if err := p.extract(rep, det.Meta); err != nil {
			return nil, err
		}
	}
	p.buffer = p.buffer[:0]
	return rep, nil
}

// Absorb folds other's in-progress interval into p: other's buffered
// flows move to the end of p's flow buffer and other's detector-bank
// clone histograms merge additively into p's (see detector.Bank.Absorb),
// leaving other empty and ready for the next interval. Both pipelines
// must share the detector configuration. This is the cross-shard merge:
// because histogram clones with equal seeds are exact mergeable
// sketches, a primary pipeline that absorbs N-1 siblings and then runs
// EndInterval produces a report identical to one pipeline having
// observed the whole stream — only the flow-buffer order differs (p's
// records first, then other's), which no report field other than the
// KeepSuspicious forensic slice depends on.
func (p *Pipeline) Absorb(other *Pipeline) error {
	if other == p {
		return fmt.Errorf("core: pipeline cannot absorb itself")
	}
	// Lock in caller order; absorbs fan in toward one primary (the shard
	// merge), so no cycle can form.
	p.mu.Lock()
	defer p.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	if err := p.bank.Absorb(other.bank); err != nil {
		return err
	}
	p.buffer = append(p.buffer, other.buffer...)
	other.buffer = other.buffer[:0]
	return nil
}

// Close releases the detector bank's worker pool. It is idempotent. The
// pipeline must not observe flows or close intervals after Close.
func (p *Pipeline) Close() { p.bank.Close() }

// ProcessInterval is the batch convenience: ObserveBatch all recs, then
// EndInterval.
func (p *Pipeline) ProcessInterval(recs []flow.Record) (*Report, error) {
	p.ObserveBatch(recs)
	return p.EndInterval()
}

// extract runs prefiltering and mining for an alarming interval.
func (p *Pipeline) extract(rep *Report, meta detector.MetaData) error {
	suspicious := prefilter.Filter(p.cfg.Prefilter, meta, p.buffer)
	rep.SuspiciousFlows = len(suspicious)
	if p.cfg.KeepSuspicious {
		rep.Suspicious = suspicious
	}
	if len(suspicious) == 0 {
		rep.CostReduction = cost.Reduction(rep.TotalFlows, 0)
		return nil
	}
	minsup := p.supportFor(len(suspicious))
	rep.MinSupport = minsup

	txs := itemset.FromFlows(suspicious)
	if p.cfg.QuantizeSizes {
		txs = itemset.QuantizeAll(txs, itemset.SizeKinds...)
	}
	res, err := p.cfg.Miner.Mine(txs, minsup)
	if err != nil {
		return fmt.Errorf("core: mining interval %d: %w", rep.Interval, err)
	}
	rep.Mining = res
	rep.ItemSets = res.Maximal
	rep.CostReduction = cost.Reduction(rep.TotalFlows, len(rep.ItemSets))
	return nil
}

// supportFor resolves the absolute minimum support for a suspicious-flow
// count.
func (p *Pipeline) supportFor(suspicious int) int {
	if p.cfg.MinSupport > 0 {
		return p.cfg.MinSupport
	}
	s := int(p.cfg.RelativeSupport * float64(suspicious))
	if s < 1 {
		s = 1
	}
	return s
}

// ExtractOffline runs the extraction stage alone — the post-mortem mode
// of §II: given an interval's flows and the alarm meta-data an operator
// wants to investigate, prefilter and mine without touching detector
// state.
func ExtractOffline(cfg Config, recs []flow.Record, meta detector.MetaData) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{TotalFlows: len(recs), Alarm: true}
	suspicious := prefilter.Filter(cfg.Prefilter, meta, recs)
	rep.SuspiciousFlows = len(suspicious)
	if cfg.KeepSuspicious {
		rep.Suspicious = suspicious
	}
	if len(suspicious) == 0 {
		rep.CostReduction = cost.Reduction(rep.TotalFlows, 0)
		return rep, nil
	}
	minsup := cfg.MinSupport
	if minsup == 0 {
		minsup = int(cfg.RelativeSupport * float64(len(suspicious)))
		if minsup < 1 {
			minsup = 1
		}
	}
	rep.MinSupport = minsup
	txs := itemset.FromFlows(suspicious)
	if cfg.QuantizeSizes {
		txs = itemset.QuantizeAll(txs, itemset.SizeKinds...)
	}
	res, err := cfg.Miner.Mine(txs, minsup)
	if err != nil {
		return nil, err
	}
	rep.Mining = res
	rep.ItemSets = res.Maximal
	rep.CostReduction = cost.Reduction(rep.TotalFlows, len(rep.ItemSets))
	return rep, nil
}
